// Ablation: why not "treat time as another dimension"? (Section 1 /
// related work [26].)
//
// The 3DR-tree indexes each OG by the 3-D minimum bounding box of its
// trajectory in (x, y, t). This bench retrieves k-NN candidates by MBR
// distance and compares the quality against the STRG-Index's EGED-based
// answers at equal result size — reproducing the paper's argument that MBR
// proximity with time as a plain third axis is a poor surrogate for
// spatio-temporal similarity (same-box != same-motion: a U-turn and a
// straight pass can share an MBR).

#include <iostream>
#include <set>

#include "bench_common.h"
#include "distance/eged.h"
#include "index/strg_index.h"
#include "rtree3d/rtree3d.h"
#include "synth/generator.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace strg;
  bench::Banner("Ablation (related work [26])",
                "STRG-Index vs 3DR-tree candidate quality");

  synth::SynthParams params;
  params.items_per_cluster = static_cast<size_t>(
      bench::EnvInt("STRG_ABL_PER_CLUSTER", bench::FullScale() ? 20 : 10));
  params.noise_pct = 10.0;
  synth::SynthDataset ds = synth::GenerateSyntheticOgs(params);
  auto db = ds.Sequences(synth::SynthScaling());
  std::cout << "Database: " << db.size() << " OGs\n";

  // Index both ways. (The OGs all start at frame 0 here, so the t axis
  // spans only the durations — the regime most favourable to the 3DR-tree.)
  rtree3d::RTree3D rtree;
  for (size_t i = 0; i < ds.ogs.size(); ++i) {
    rtree.Insert(rtree3d::Box3::OfOg(ds.ogs[i]), i);
  }
  index::StrgIndexParams ip;
  ip.num_clusters = 48;
  ip.cluster_params.max_iterations = 5;
  index::StrgIndex sx(ip);
  sx.AddSegment(core::BackgroundGraph{}, db);

  synth::SynthParams qp = params;
  qp.items_per_cluster = 1;
  qp.seed = params.seed + 3;
  synth::SynthDataset qds = synth::GenerateSyntheticOgs(qp);
  auto queries = qds.Sequences(synth::SynthScaling());

  Table table({"k", "STRG-Index precision", "3DR-tree precision"});
  for (size_t k : {5, 10, 20}) {
    double p_sx = 0, p_rt = 0;
    for (size_t qi = 0; qi < qds.ogs.size(); ++qi) {
      int truth = qds.labels[qi];
      auto sx_hits = sx.Knn(queries[qi], k);
      size_t rel = 0;
      for (const auto& h : sx_hits.hits) {
        if (ds.labels[h.og_id] == truth) ++rel;
      }
      p_sx += static_cast<double>(rel) / static_cast<double>(k);

      auto rt_hits = rtree.Knn(rtree3d::Box3::OfOg(qds.ogs[qi]), k);
      rel = 0;
      for (const auto& h : rt_hits) {
        if (ds.labels[h.id] == truth) ++rel;
      }
      p_rt += static_cast<double>(rel) / static_cast<double>(k);
    }
    double nq = static_cast<double>(qds.ogs.size());
    table.AddNumericRow({static_cast<double>(k), p_sx / nq, p_rt / nq}, 3);
  }
  table.Print(std::cout);

  bench::JsonReport report("BENCH_ablation_3drtree.json");
  report.AddTable("knn_precision", table);
  report.AddScalar("db_size", static_cast<double>(db.size()));
  report.Write();

  std::cout << "\nExpected shape: the 3DR-tree's MBR-distance candidates mix"
               " patterns that merely\nshare screen area (opposite"
               " directions, U-turns vs passes), so its precision\nfalls"
               " well below the STRG-Index's EGED-ranked answers — the"
               " paper's rationale for\nnot treating time as just another"
               " R-tree dimension.\n";
  return 0;
}
