// Ablation: verifies the Section 4.1 complexity claim — one EM iteration
// with EGED costs O(KM) distance computations (the covariance d^2 factor
// of the full Gaussian reduces to 1) — by measuring per-iteration time
// while scaling K and M independently.

#include <iostream>

#include "bench_common.h"
#include "cluster/em.h"
#include "distance/distance.h"
#include "distance/eged.h"
#include "synth/generator.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace strg;

double TimePerIteration(const std::vector<dist::Sequence>& data, size_t k,
                        size_t* distance_calls) {
  dist::EgedDistance eged;
  dist::CountingDistance counted(&eged);
  cluster::ClusterParams cp;
  cp.max_iterations = 4;
  cp.convergence_tol = 0.0;  // run all iterations
  Timer t;
  cluster::EmCluster(data, k, counted, cp);
  *distance_calls = counted.count();
  return t.Seconds() / 4.0;
}

}  // namespace

int main() {
  using namespace strg;
  bench::Banner("Ablation (Section 4.1)", "EM iteration cost is O(KM)");
  bench::JsonReport report("BENCH_ablation_complexity.json");

  synth::SynthParams sp;
  sp.items_per_cluster = static_cast<size_t>(
      bench::EnvInt("STRG_ABL_PER_CLUSTER", bench::FullScale() ? 20 : 10));
  sp.noise_pct = 10.0;
  synth::SynthDataset ds = synth::GenerateSyntheticOgs(sp);
  auto all = ds.Sequences(synth::SynthScaling());

  std::cout << "\nScaling M (K fixed at 8): per-iteration time should grow"
               " ~linearly in M\n";
  {
    Table table({"M", "sec/iter", "distance calls", "calls/(K*M*iters)"});
    for (size_t m : {100ul, 200ul, 400ul, 480ul}) {
      std::vector<dist::Sequence> data(all.begin(),
                                       all.begin() + std::min(m, all.size()));
      size_t calls = 0;
      double sec = TimePerIteration(data, 8, &calls);
      table.AddRow({std::to_string(data.size()), FormatDouble(sec, 4),
                    std::to_string(calls),
                    FormatDouble(static_cast<double>(calls) /
                                     (8.0 * data.size() * 4.0),
                                 2)});
    }
    table.Print(std::cout);
    report.AddTable("scaling_m", table);
  }

  std::cout << "\nScaling K (M fixed): per-iteration time should grow"
               " ~linearly in K\n";
  {
    Table table({"K", "sec/iter", "distance calls", "calls/(K*M*iters)"});
    for (size_t k : {4ul, 8ul, 16ul, 32ul}) {
      size_t calls = 0;
      double sec = TimePerIteration(all, k, &calls);
      table.AddRow({std::to_string(k), FormatDouble(sec, 4),
                    std::to_string(calls),
                    FormatDouble(static_cast<double>(calls) /
                                     (static_cast<double>(k) * all.size() * 4.0),
                                 2)});
    }
    table.Print(std::cout);
    report.AddTable("scaling_k", table);
  }
  report.Write();

  std::cout << "\nExpected shape: the calls/(K*M*iters) column stays O(1)"
               " (~1-2; seeding and the\nanti-collapse guard add a small"
               " constant), confirming O(KM) per iteration.\n";
  return 0;
}
