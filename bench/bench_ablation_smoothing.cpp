// Ablation: OG trajectory smoothing before indexing.
//
// Segmentation jitter puts high-frequency noise on OG trajectories that
// every alignment distance pays for. This bench measures how pre-index
// smoothing (a centered moving average, src/strg/smoothing.h) changes
// clustering error on the synthetic workload across noise levels — the
// kind of front-end design decision DESIGN.md calls out.

#include <iostream>

#include "bench_common.h"
#include "cluster/em.h"
#include "cluster/metrics.h"
#include "distance/eged.h"
#include "strg/smoothing.h"
#include "synth/generator.h"
#include "util/table.h"

int main() {
  using namespace strg;
  bench::Banner("Ablation (front end)",
                "trajectory smoothing before clustering/indexing");

  const int per_cluster =
      bench::EnvInt("STRG_ABL_PER_CLUSTER", bench::FullScale() ? 10 : 5);
  dist::EgedDistance eged;

  Table table({"noise%", "raw err%", "smooth w=1", "smooth w=2",
               "smooth w=3"});
  for (double noise : {5.0, 15.0, 30.0}) {
    synth::SynthParams sp;
    sp.items_per_cluster = static_cast<size_t>(per_cluster);
    sp.noise_pct = noise;
    sp.seed = 3000;
    synth::SynthDataset ds = synth::GenerateSyntheticOgs(sp);

    std::vector<double> row{noise};
    for (int window : {0, 1, 2, 3}) {
      std::vector<core::Og> ogs = ds.ogs;
      if (window > 0) {
        for (core::Og& og : ogs) {
          og = core::SmoothOg(og, {.window = window, .strength = 1.0});
        }
      }
      std::vector<dist::Sequence> seqs;
      seqs.reserve(ogs.size());
      for (const core::Og& og : ogs) {
        seqs.push_back(dist::OgToSequence(og, synth::SynthScaling()));
      }
      cluster::ClusterParams cp;
      cp.max_iterations = 12;
      auto model = cluster::EmCluster(seqs, ds.NumClusters(), eged, cp);
      row.push_back(cluster::ClusteringErrorRate(model.assignment, ds.labels));
    }
    table.AddNumericRow(row, 1);
  }
  table.Print(std::cout);

  bench::JsonReport report("BENCH_ablation_smoothing.json");
  report.AddTable("error_rate_by_window", table);
  report.Write();

  std::cout << "\nExpected shape: smoothing recovers part of the error the"
               " per-point noise causes,\nwith diminishing (or negative)"
               " returns once the window starts blurring genuine\nmotion"
               " (U-turn apexes).\n";
  return 0;
}
