// Ablation: graph-based tracking quality (Algorithm 1) vs the similarity
// threshold T_sim, on rendered scenes with known object identities.
//
// Sweeps T_sim and reports how many OGs the pipeline recovers against the
// true object count, plus fragmentation (extra OGs per true object). The
// DESIGN.md design-choice being ablated: tracking links a non-isomorphic
// best match only when SimGraph exceeds T_sim.

#include <iostream>

#include "bench_common.h"
#include "core/pipeline.h"
#include "util/table.h"
#include "video/scenes.h"

int main() {
  using namespace strg;
  bench::Banner("Ablation (Algorithm 1)", "tracking quality vs T_sim");
  bench::JsonReport report("BENCH_ablation_tracking.json");

  const int num_objects = bench::EnvInt("STRG_ABL_OBJECTS", 12);
  for (bool crowded : {false, true}) {
    video::SceneParams sp;
    sp.num_objects = num_objects;
    sp.object_lifetime = 20;
    // Non-overlapping objects give unambiguous ground truth; the crowded
    // variant makes people cross and occlude, which changes the region
    // structure between frames — exactly when isomorphism fails and the
    // SimGraph > T_sim fallback decides the temporal edges.
    sp.spawn_gap = crowded ? 6 : 24;
    sp.noise_stddev = crowded ? 2.0 : 0.0;
    video::SceneSpec scene = video::MakeLabScene(sp);

    std::cout << "\n" << (crowded
                      ? "Crowded scene (occlusions: SimGraph > T_sim path)"
                      : "Sparse clean scene (isomorphism short-circuits)")
              << "\n";
    Table table({"T_sim", "OGs found", "true objects", "fragmentation",
                 "temporal edges"});
    for (double t_sim : {0.2, 0.35, 0.5, 0.65, 0.8, 0.95}) {
      api::PipelineParams pp;
      pp.segmenter.use_mean_shift = false;
      pp.tracking.t_sim = t_sim;

      api::VideoPipeline pipeline(pp);
      for (int t = 0; t < scene.num_frames; ++t) {
        pipeline.PushFrame(video::RenderFrame(scene, t));
      }
      api::SegmentResult result = pipeline.Finish();
      size_t found = result.decomposition.object_graphs.size();
      double frag = static_cast<double>(found) / num_objects;
      table.AddRow({FormatDouble(t_sim, 2), std::to_string(found),
                    std::to_string(num_objects), FormatDouble(frag, 2),
                    std::to_string(pipeline.strg().TotalTemporalEdges())});
    }
    table.Print(std::cout);
    report.AddTable(crowded ? "crowded_scene" : "sparse_scene", table);
  }
  report.Write();

  std::cout << "\nExpected shape: on the sparse scene every threshold"
               " recovers exactly one OG per\nobject. On the crowded scene"
               " low T_sim merges crossing objects into shared\ntracks"
               " (found < true), while raising T_sim cuts more tracks at"
               " occlusions\n(fewer temporal edges, more OG fragments) —"
               " the precision/continuity trade-off\nAlgorithm 1's"
               " threshold controls.\n";
  return 0;
}
