// Bounded-clustering ablation: Elkan/Hamerly triangle-inequality bounds
// (src/cluster/bounds.h) vs the exhaustive assignment path, A/B'd via
// ClusterParams::use_bounds on the metric EGED (the only measure where the
// bounds are admissible).
//
// Three claims are checked, not just reported:
//   1. equivalence — both modes return bit-identical Clusterings;
//   2. work — assignment distance computations drop >= 2x at k >= 16
//      (the SLO floor; enforced by exit code);
//   3. time — the build-time speedup is recorded per k (informational:
//      small workloads can be seeding- or kernel-bound, which the table
//      shows honestly rather than hiding).

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/em.h"
#include "cluster/kmeans.h"
#include "distance/eged.h"
#include "synth/generator.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace strg;

bool Identical(const cluster::Clustering& a, const cluster::Clustering& b) {
  if (a.assignment != b.assignment || a.iterations != b.iterations) {
    return false;
  }
  if (a.log_likelihood != b.log_likelihood ||
      a.classification_log_likelihood != b.classification_log_likelihood) {
    return false;
  }
  if (a.weights != b.weights || a.sigmas != b.sigmas) return false;
  if (a.centroids.size() != b.centroids.size()) return false;
  for (size_t c = 0; c < a.centroids.size(); ++c) {
    if (a.centroids[c] != b.centroids[c]) return false;
  }
  return true;
}

struct AbResult {
  cluster::ClusterStats on;
  cluster::ClusterStats off;
  double on_s = 0.0;
  double off_s = 0.0;
  bool identical = false;
};

template <typename RunFn>
AbResult RunAb(RunFn run) {
  AbResult r;
  Timer t_on;
  cluster::Clustering m_on = run(/*use_bounds=*/true, &r.on);
  r.on_s = t_on.Seconds();
  Timer t_off;
  cluster::Clustering m_off = run(/*use_bounds=*/false, &r.off);
  r.off_s = t_off.Seconds();
  r.identical = Identical(m_on, m_off);
  return r;
}

double Ratio(uint64_t off, uint64_t on) {
  return on == 0 ? 0.0
                 : static_cast<double>(off) / static_cast<double>(on);
}

}  // namespace

int main() {
  bench::Banner("Bounded clustering",
                "Elkan/Hamerly bounds vs exhaustive assignment (A/B)");
  bench::JsonReport report("BENCH_cluster.json");

  const int per_cluster =
      bench::EnvInt("STRG_CLUSTER_PER_CLUSTER", bench::FullScale() ? 10 : 4);
  const int restarts = bench::EnvInt("STRG_CLUSTER_RESTARTS", 2);
  const int iterations = bench::EnvInt("STRG_CLUSTER_ITERS", 12);

  synth::SynthParams sp;
  sp.items_per_cluster = static_cast<size_t>(per_cluster);
  sp.noise_pct = 15.0;
  sp.seed = 777;
  synth::SynthDataset ds = synth::GenerateSyntheticOgs(sp);
  auto seqs = ds.Sequences(synth::SynthScaling());
  const size_t m = seqs.size();
  std::cout << "\nworkload: " << m << " OGs, restarts=" << restarts
            << ", max_iterations=" << iterations << ", metric EGED\n";

  dist::EgedMetricDistance metric;
  bool all_identical = true;
  bool slo_pass = true;
  bool slo_applicable = false;

  // ---- EM: the fit StrgIndex's split clustering runs ------------------
  std::cout << "\nEM assignment distance computations, bounds on vs off\n";
  Table em_table({"k", "assign_on", "assign_off", "ratio", "prunes",
                  "hamerly", "time_on_s", "time_off_s", "speedup"});
  for (size_t k : {4u, 8u, 16u, 32u}) {
    if (k > m) continue;
    AbResult r = RunAb([&](bool bounds, cluster::ClusterStats* stats) {
      cluster::ClusterParams cp;
      cp.max_iterations = iterations;
      cp.restarts = restarts;
      cp.seed = 99;
      cp.use_bounds = bounds;
      cp.stats = stats;
      return cluster::EmCluster(seqs, k, metric, cp);
    });
    all_identical = all_identical && r.identical;
    const double ratio =
        Ratio(r.off.AssignmentDistances(), r.on.AssignmentDistances());
    em_table.AddNumericRow(
        {static_cast<double>(k),
         static_cast<double>(r.on.AssignmentDistances()),
         static_cast<double>(r.off.AssignmentDistances()), ratio,
         static_cast<double>(r.on.assign_prunes),
         static_cast<double>(r.on.hamerly_skips), r.on_s, r.off_s,
         r.on_s > 0.0 ? r.off_s / r.on_s : 0.0},
        3);
    // SLO floor: >= 2x fewer assignment distances at k >= 16. Only
    // applicable when the workload gives each centroid enough items for
    // bounds to have anything to prune; otherwise the row is recorded but
    // the floor is n/a (marked in the JSON).
    if (k >= 16 && m >= 4 * k) {
      slo_applicable = true;
      if (ratio < 2.0) slo_pass = false;
    }
  }
  em_table.Print(std::cout);
  report.AddTable("em_assignment_distances", em_table);

  // ---- k-means: the Lloyd loop with the same bounds -------------------
  std::cout << "\nk-means assignment distance computations, bounds on/off\n";
  Table km_table({"k", "assign_on", "assign_off", "ratio", "prunes",
                  "hamerly", "time_on_s", "time_off_s", "speedup"});
  for (size_t k : {4u, 16u}) {
    if (k > m) continue;
    AbResult r = RunAb([&](bool bounds, cluster::ClusterStats* stats) {
      cluster::ClusterParams cp;
      cp.max_iterations = iterations;
      cp.seed = 99;
      cp.use_bounds = bounds;
      cp.stats = stats;
      return cluster::KMeansCluster(seqs, k, metric, cp);
    });
    // KMeansCluster returns no likelihoods; Identical() compares the
    // infinity defaults, which is exactly the equality we want there.
    all_identical = all_identical && r.identical;
    km_table.AddNumericRow(
        {static_cast<double>(k),
         static_cast<double>(r.on.AssignmentDistances()),
         static_cast<double>(r.off.AssignmentDistances()),
         Ratio(r.off.AssignmentDistances(), r.on.AssignmentDistances()),
         static_cast<double>(r.on.assign_prunes),
         static_cast<double>(r.on.hamerly_skips), r.on_s, r.off_s,
         r.on_s > 0.0 ? r.off_s / r.on_s : 0.0},
        3);
  }
  km_table.Print(std::cout);
  report.AddTable("kmeans_assignment_distances", km_table);

  report.AddScalar("num_items", static_cast<double>(m));
  report.AddScalar("restarts", static_cast<double>(restarts));
  report.AddString("bound_mode", "ab_on_vs_off");
  report.AddScalar("bit_identical", all_identical ? 1.0 : 0.0);
  report.AddString("slo_2x_at_k16",
                   !slo_applicable ? "n/a" : (slo_pass ? "pass" : "FAIL"));
  report.Write();

  if (!all_identical) {
    std::cout << "\nFAIL: bounded and exhaustive paths diverged "
                 "(bit-identity contract broken)\n";
    return 1;
  }
  if (!slo_applicable) {
    std::cout << "\nSLO n/a: workload too small for the k >= 16 floor "
                 "(need m >= 4k); counters recorded above.\n";
    return 0;
  }
  if (!slo_pass) {
    std::cout << "\nFAIL: assignment distance reduction below the 2x floor "
                 "at k >= 16\n";
    return 1;
  }
  std::cout << "\nSLO pass: >= 2x fewer assignment distance computations at "
               "k >= 16, bit-identical results.\n";
  return 0;
}
