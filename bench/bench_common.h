#ifndef STRG_BENCH_BENCH_COMMON_H_
#define STRG_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <iostream>
#include <string>

namespace strg::bench {

/// Reads an integer scale knob from the environment. Benchmarks default to
/// a laptop-friendly scale; set e.g. STRG_BENCH_SCALE=3 or
/// STRG_BENCH_FULL=1 to approach the paper's full workload sizes.
inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

inline bool FullScale() { return EnvInt("STRG_BENCH_FULL", 0) != 0; }

/// Common banner so every harness identifies which paper artifact it
/// regenerates.
inline void Banner(const std::string& figure, const std::string& what) {
  std::cout << "==================================================\n"
            << figure << " — " << what << "\n"
            << "(STRG-Index reproduction; shapes, not absolute\n"
            << " numbers, are the comparison target)\n"
            << "==================================================\n";
}

}  // namespace strg::bench

#endif  // STRG_BENCH_BENCH_COMMON_H_
