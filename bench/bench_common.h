#ifndef STRG_BENCH_BENCH_COMMON_H_
#define STRG_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "distance/simd/dispatch.h"
#include "util/table.h"

namespace strg::bench {

/// Reads an integer scale knob from the environment. Benchmarks default to
/// a laptop-friendly scale; set e.g. STRG_BENCH_SCALE=3 or
/// STRG_BENCH_FULL=1 to approach the paper's full workload sizes.
inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

inline bool FullScale() { return EnvInt("STRG_BENCH_FULL", 0) != 0; }

/// Common banner so every harness identifies which paper artifact it
/// regenerates.
inline void Banner(const std::string& figure, const std::string& what) {
  std::cout << "==================================================\n"
            << figure << " — " << what << "\n"
            << "(STRG-Index reproduction; shapes, not absolute\n"
            << " numbers, are the comparison target)\n"
            << "==================================================\n";
}

/// Accumulates named tables/scalars and writes them as a BENCH_*.json —
/// the machine-readable twin of the stdout report every harness prints.
/// Each bench passes the literal artifact name (e.g. "BENCH_fig7.json") so
/// the repo linter (strg-bench-json) can see which report the file owns.
///
/// Every report leads with the host/kernel context that makes its numbers
/// comparable across machines and dispatch tiers: the active simd tier, the
/// host's hardware_concurrency, and the padded point stride (the
/// strg-bench-simd-tier linter rule; hand-rolled reports record the same
/// fields themselves).
class JsonReport {
 public:
  explicit JsonReport(std::string path) : path_(std::move(path)) {
    json_ = "{";
    AddString("simd_tier", dist::simd::TierName(dist::simd::ActiveTier()));
    AddScalar("hardware_concurrency",
              static_cast<double>(std::thread::hardware_concurrency()));
    AddScalar("padded_stride", static_cast<double>(dist::simd::kPaddedDim));
  }

  void AddTable(const std::string& key, const Table& table) {
    Sep();
    AppendJsonString(key, &json_);
    json_.push_back(':');
    table.AppendJson(&json_);
  }

  void AddScalar(const std::string& key, double value) {
    Sep();
    AppendJsonString(key, &json_);
    json_.push_back(':');
    json_ += FormatDouble(value, 6);
  }

  void AddString(const std::string& key, const std::string& value) {
    Sep();
    AppendJsonString(key, &json_);
    json_.push_back(':');
    AppendJsonString(value, &json_);
  }

  /// Writes the report into the working directory and logs the path.
  void Write() {
    std::ofstream out(path_);
    out << json_ << "}\n";
    std::cout << "report written to " << path_ << "\n";
  }

 private:
  void Sep() {
    if (json_.size() > 1) json_.push_back(',');
  }

  std::string path_;
  std::string json_;
};

}  // namespace strg::bench

#endif  // STRG_BENCH_BENCH_COMMON_H_
