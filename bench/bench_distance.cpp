// Distance-kernel benchmark: the fast EGED path vs the reference DP, and
// the SIMD dispatch tiers against each other IN-PROCESS (cross-process
// comparisons are hopelessly noisy on small containers; ForceTier swaps the
// kernel table between timed sections instead).
//
// Part 1 — kernel micro: ref vs flat(exact) vs bounded(tau) across sequence
// lengths, with the flat/bounded columns measured twice: forced-scalar and
// the detected SIMD tier. Exact values are bit-identical across tiers by
// design; only the time may differ.
//
// Part 2 — per-kernel scalar-vs-SIMD micro: the batched point distance, the
// lower-bound cascade, the batched bounded DP, and the DTW/EDR baselines.
//
// Part 3 — batched one-vs-many: EgedBatchBounded against the equivalent
// one-at-a-time loop (same tier), plus the steady-state allocation check:
// after warm-up the batch entry point must perform ZERO heap allocations —
// the bench fails loudly (exit 1) if it allocates.
//
// Part 4 — kNN cold path: reference kernel, fast kernel forced scalar, fast
// kernel at the detected tier. knn_p50_speedup tracks fast-vs-reference;
// knn_simd_p50_speedup tracks SIMD-vs-scalar on the same fast path.
//
// Output: human-readable stdout + BENCH_distance.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "distance/dtw.h"
#include "distance/edr.h"
#include "distance/eged.h"
#include "distance/eged_fast.h"
#include "distance/simd/dispatch.h"
#include "index/strg_index.h"
#include "synth/generator.h"
#include "util/random.h"

// ---- global allocation counter (part 3) ---------------------------------
//
// Same pattern as bench_ingest: replacing the global operator new/delete
// lets the bench prove the steady-state claim instead of asserting it in a
// comment. Counting is gated so the rest of the benchmark is unaffected.

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace strg {
namespace {

using Clock = std::chrono::steady_clock;
using dist::EgedBatchBounded;
using dist::EgedKernelStats;
using dist::EgedLowerBoundBatch;
using dist::EgedMetric;
using dist::EgedMetricBounded;
using dist::EgedMetricFlat;
using dist::EgedWorkspace;
using dist::FeatureVec;
using dist::FlatSequence;
using dist::Sequence;
namespace simd = dist::simd;

/// Forces a dispatch tier for one timed section and restores the previous
/// tier on scope exit.
class ScopedTier {
 public:
  explicit ScopedTier(simd::Tier tier)
      : saved_(simd::ActiveTier()), ok_(simd::ForceTier(tier)) {}
  ~ScopedTier() { simd::ForceTier(saved_); }
  bool ok() const { return ok_; }

 private:
  simd::Tier saved_;
  bool ok_;
};

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

Sequence RandomSequence(Rng* rng, size_t len) {
  Sequence s(len);
  FeatureVec cur{};
  for (size_t k = 0; k < dist::kFeatureDim; ++k) {
    cur[k] = rng->Uniform(0.0, 10.0);
  }
  for (size_t i = 0; i < len; ++i) {
    for (size_t k = 0; k < dist::kFeatureDim; ++k) {
      cur[k] += rng->Gaussian(0.0, 0.5);
    }
    s[i] = cur;
  }
  return s;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p / 100.0 *
                                   static_cast<double>(v.size() - 1));
  return v[idx];
}

struct MicroRow {
  size_t length = 0;
  double ref_us = 0.0;
  double scalar_flat_us = 0.0;
  double simd_flat_us = 0.0;
  double scalar_bounded_us = 0.0;
  double simd_bounded_us = 0.0;
  double prune_rate = 0.0;    // fraction of bounded calls with no DP
  double abandon_rate = 0.0;  // fraction of bounded calls truncated
};

MicroRow MicroBench(size_t length, int pairs, int reps) {
  Rng rng(1000 + length);
  std::vector<Sequence> a(pairs), b(pairs);
  std::vector<FlatSequence> fa(pairs), fb(pairs);
  for (int i = 0; i < pairs; ++i) {
    a[i] = RandomSequence(&rng, length);
    b[i] = RandomSequence(&rng, length);
    fa[i].Assign(a[i], FeatureVec{});
    fb[i].Assign(b[i], FeatureVec{});
  }
  // Realistic tau: the 10th percentile of the pairwise distances — the
  // regime a kNN search settles into once its heap is warm.
  std::vector<double> exact(pairs);
  for (int i = 0; i < pairs; ++i) exact[i] = EgedMetric(a[i], b[i]);
  double tau = Percentile(exact, 10.0);

  MicroRow row;
  row.length = length;
  volatile double sink = 0.0;

  auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    for (int i = 0; i < pairs; ++i) sink = sink + EgedMetric(a[i], b[i]);
  }
  row.ref_us = MicrosSince(t0) / static_cast<double>(pairs * reps);

  EgedWorkspace ws;
  EgedKernelStats stats;
  for (simd::Tier tier : {simd::Tier::kScalar, simd::DetectedTier()}) {
    ScopedTier scoped(tier);
    const bool is_scalar = tier == simd::Tier::kScalar;
    t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      for (int i = 0; i < pairs; ++i) {
        sink = sink + EgedMetricFlat(fa[i], fb[i], &ws);
      }
    }
    const double flat = MicrosSince(t0) / static_cast<double>(pairs * reps);
    stats = EgedKernelStats{};
    t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      for (int i = 0; i < pairs; ++i) {
        sink = sink + EgedMetricBounded(fa[i], fb[i], tau, &ws, &stats);
      }
    }
    const double bounded =
        MicrosSince(t0) / static_cast<double>(pairs * reps);
    if (is_scalar) {
      row.scalar_flat_us = flat;
      row.scalar_bounded_us = bounded;
    }
    // On a scalar-only host the detected tier IS scalar; the simd columns
    // then repeat the scalar measurement rather than going missing.
    if (tier == simd::DetectedTier()) {
      row.simd_flat_us = flat;
      row.simd_bounded_us = bounded;
    }
  }
  double calls = static_cast<double>(pairs) * reps;
  row.prune_rate = static_cast<double>(stats.lb_prunes) / calls;
  row.abandon_rate = static_cast<double>(stats.early_abandons) / calls;
  (void)sink;
  return row;
}

// ---- part 2: per-kernel scalar-vs-SIMD ----------------------------------

struct KernelRow {
  std::string name;
  double scalar_us = 0.0;  // per unit (point or call)
  double simd_us = 0.0;
};

/// Times `body(reps)` once per tier; returns {scalar_us, simd_us} per unit.
template <typename Body>
KernelRow TimeKernel(const std::string& name, int reps, double units,
                     Body body) {
  KernelRow row;
  row.name = name;
  for (simd::Tier tier : {simd::Tier::kScalar, simd::DetectedTier()}) {
    ScopedTier scoped(tier);
    body(1);  // warm-up / touch
    auto t0 = Clock::now();
    body(reps);
    const double us = MicrosSince(t0) / (static_cast<double>(reps) * units);
    if (tier == simd::Tier::kScalar) row.scalar_us = us;
    if (tier == simd::DetectedTier()) row.simd_us = us;
  }
  return row;
}

struct BatchBench {
  std::vector<KernelRow> kernels;
  double loop_us = 0.0;        // one-at-a-time bounded, per candidate
  double batch_us = 0.0;       // EgedBatchBounded, per candidate
  uint64_t steady_allocs = 0;  // EgedBatchBounded allocations after warm-up
};

BatchBench KernelBench(int reps) {
  Rng rng(4242);
  constexpr size_t kLen = 64;
  constexpr size_t kCands = 64;
  Sequence qs = RandomSequence(&rng, kLen);
  FlatSequence query(qs, FeatureVec{});
  std::vector<Sequence> seqs(kCands);
  std::vector<FlatSequence> flats(kCands);
  std::vector<const FlatSequence*> cands(kCands);
  for (size_t i = 0; i < kCands; ++i) {
    seqs[i] = RandomSequence(&rng, kLen);
    flats[i].Assign(seqs[i], FeatureVec{});
    cands[i] = &flats[i];
  }
  // Mixed taus, as a kNN frontier would present: some generous, some tight.
  std::vector<double> dists(kCands), taus(kCands), out(kCands);
  EgedWorkspace ws;
  for (size_t i = 0; i < kCands; ++i) {
    dists[i] = EgedMetricFlat(query, flats[i], &ws);
  }
  const double tight = Percentile(dists, 10.0);
  for (size_t i = 0; i < kCands; ++i) {
    taus[i] = (i % 2 == 0) ? tight : dists[i] * 1.05;
  }

  BatchBench bench;
  volatile double sink = 0.0;

  bench.kernels.push_back(TimeKernel(
      "point_distance_batch", reps * 50, static_cast<double>(kCands * kLen),
      [&](int n) {
        const simd::KernelOps& ops = simd::ActiveOps();
        for (int r = 0; r < n; ++r) {
          for (size_t i = 0; i < kCands; ++i) {
            ops.point_distance_batch(query.point(0), flats[i].points(), kLen,
                                     out.data());
            sink = sink + out[0];
          }
        }
      }));
  bench.kernels.push_back(TimeKernel(
      "eged_lower_bound_batch", reps * 50, static_cast<double>(kCands),
      [&](int n) {
        for (int r = 0; r < n; ++r) {
          EgedLowerBoundBatch(query, cands.data(), kCands, out.data());
          sink = sink + out[0];
        }
      }));
  bench.kernels.push_back(TimeKernel(
      "eged_exact_dp", reps, static_cast<double>(kCands), [&](int n) {
        for (int r = 0; r < n; ++r) {
          for (size_t i = 0; i < kCands; ++i) {
            sink = sink + EgedMetricFlat(query, flats[i], &ws);
          }
        }
      }));
  bench.kernels.push_back(TimeKernel(
      "eged_batch_bounded", reps, static_cast<double>(kCands), [&](int n) {
        for (int r = 0; r < n; ++r) {
          EgedBatchBounded(query, cands.data(), taus.data(), kCands,
                           out.data(), &ws);
          sink = sink + out[0];
        }
      }));
  bench.kernels.push_back(TimeKernel(
      "dtw", reps, static_cast<double>(kCands), [&](int n) {
        for (int r = 0; r < n; ++r) {
          for (size_t i = 0; i < kCands; ++i) {
            sink = sink + dist::Dtw(qs, seqs[i]);
          }
        }
      }));
  bench.kernels.push_back(TimeKernel(
      "edr", reps, static_cast<double>(kCands), [&](int n) {
        for (int r = 0; r < n; ++r) {
          for (size_t i = 0; i < kCands; ++i) {
            sink = sink + dist::Edr(qs, seqs[i], 0.5);
          }
        }
      }));

  // Batch vs one-at-a-time, both at the detected tier.
  {
    ScopedTier scoped(simd::DetectedTier());
    auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      for (size_t i = 0; i < kCands; ++i) {
        sink = sink + EgedMetricBounded(query, flats[i], taus[i], &ws);
      }
    }
    bench.loop_us =
        MicrosSince(t0) / static_cast<double>(reps) / kCands;
    t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      EgedBatchBounded(query, cands.data(), taus.data(), kCands, out.data(),
                       &ws);
      sink = sink + out[0];
    }
    bench.batch_us =
        MicrosSince(t0) / static_cast<double>(reps) / kCands;

    // Steady-state allocation proof: the batch call above warmed every
    // buffer (workspace rows, reversed-query scratch); from here on the
    // batch entry point must not touch the heap at all.
    g_allocs.store(0);
    g_count_allocs.store(true);
    for (int r = 0; r < 3; ++r) {
      EgedBatchBounded(query, cands.data(), taus.data(), kCands, out.data(),
                       &ws);
      sink = sink + out[0];
    }
    g_count_allocs.store(false);
    bench.steady_allocs = g_allocs.load();
  }
  (void)sink;
  return bench;
}

// ---- part 4: kNN cold path ----------------------------------------------

struct KnnPhase {
  std::string name;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_dp = 0.0;        // DP evaluations per query
  double mean_prunes = 0.0;    // lower-bound prunes per query
  double mean_abandons = 0.0;  // early abandons per query
};

KnnPhase KnnBench(const std::string& name, bool use_fast, simd::Tier tier,
                  const std::vector<Sequence>& db,
                  const std::vector<Sequence>& queries, int reps) {
  index::StrgIndexParams params;
  params.num_clusters = 12;
  params.cluster_params.max_iterations = 8;
  params.use_fast_kernel = use_fast;
  index::StrgIndex idx(params);
  idx.AddSegment(core::BackgroundGraph{}, db);

  KnnPhase phase;
  phase.name = name;
  std::vector<double> lat;
  lat.reserve(queries.size() * static_cast<size_t>(reps));
  double dp = 0.0, prunes = 0.0, abandons = 0.0;
  size_t n = 0;
  ScopedTier scoped(tier);
  for (int r = 0; r < reps; ++r) {
    for (const Sequence& q : queries) {
      auto t0 = Clock::now();
      auto result = idx.Knn(q, 10);
      lat.push_back(MicrosSince(t0));
      dp += static_cast<double>(result.distance_computations);
      prunes += static_cast<double>(result.lb_prunes);
      abandons += static_cast<double>(result.early_abandons);
      ++n;
    }
  }
  phase.p50_us = Percentile(lat, 50.0);
  phase.p99_us = Percentile(lat, 99.0);
  phase.mean_dp = dp / static_cast<double>(n);
  phase.mean_prunes = prunes / static_cast<double>(n);
  phase.mean_abandons = abandons / static_cast<double>(n);
  return phase;
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace
}  // namespace strg

int main() {
  using namespace strg;
  bench::Banner("BENCH distance",
                "fast EGED kernel + SIMD dispatch tiers: flat, lower-bound "
                "cascade, early abandoning, batched scans");

  const simd::Tier detected = simd::DetectedTier();
  const char* tier_name = simd::TierName(detected);
  const bool simd_active = detected != simd::Tier::kScalar;
  std::printf("simd tier: %s   hardware_concurrency: %u   padded stride: "
              "%zu doubles\n\n",
              tier_name, std::thread::hardware_concurrency(),
              simd::kPaddedDim);
  if (!simd_active) {
    std::printf("NOTE: scalar-only host — simd columns repeat the scalar "
                "measurement and speedups read 1.0x.\n\n");
  }

  const int scale = bench::EnvInt("STRG_BENCH_SCALE", 1);
  const int pairs = 200 * scale;
  const int reps = 20 * scale;

  std::vector<MicroRow> micro;
  std::printf("%-8s %9s | %9s %11s | %9s %11s | %7s %7s\n", "length",
              "ref_us", "sc_flat", "sc_bounded", "simd_flat", "simd_bound",
              "flat_x", "bound_x");
  for (size_t length : {8u, 16u, 32u, 64u}) {
    MicroRow row = MicroBench(length, pairs, reps);
    micro.push_back(row);
    std::printf("%-8zu %9.3f | %9.3f %11.3f | %9.3f %11.3f | %6.2fx %6.2fx\n",
                row.length, row.ref_us, row.scalar_flat_us,
                row.scalar_bounded_us, row.simd_flat_us, row.simd_bounded_us,
                row.scalar_flat_us / row.simd_flat_us,
                row.scalar_bounded_us / row.simd_bounded_us);
  }

  std::printf("\n%-24s %12s %12s %9s\n", "kernel", "scalar_us", "simd_us",
              "speedup");
  BatchBench batch = KernelBench(4 * reps);
  for (const KernelRow& k : batch.kernels) {
    std::printf("%-24s %12.4f %12.4f %8.2fx\n", k.name.c_str(), k.scalar_us,
                k.simd_us, k.scalar_us / k.simd_us);
  }
  std::printf("\nbatched one-vs-many (64 candidates, len 64, %s tier):\n",
              tier_name);
  std::printf("  one-at-a-time bounded: %.3f us/cand\n", batch.loop_us);
  std::printf("  EgedBatchBounded:      %.3f us/cand (%.2fx)\n",
              batch.batch_us, batch.loop_us / batch.batch_us);
  std::printf("  steady-state heap allocations after warm-up: %llu\n",
              static_cast<unsigned long long>(batch.steady_allocs));
  if (batch.steady_allocs != 0) {
    std::printf("FAIL: EgedBatchBounded allocated on the steady-state "
                "path\n");
    return 1;
  }

  // kNN cold path: identical index structure (builds always use the flat
  // exact kernel), only the query kernel and dispatch tier differ.
  synth::SynthParams sp;
  sp.items_per_cluster = 20;
  sp.noise_pct = 8.0;
  sp.seed = 77;
  auto db = synth::GenerateSyntheticOgs(sp).Sequences(synth::SynthScaling());
  sp.items_per_cluster = 1;
  sp.seed = 78;
  auto qall = synth::GenerateSyntheticOgs(sp).Sequences(
      synth::SynthScaling());
  std::vector<dist::Sequence> queries(qall.begin(),
                                      qall.begin() + 24);

  KnnPhase ref = KnnBench("knn_reference_kernel", false,
                          simd::Tier::kScalar, db, queries, 4 * scale);
  KnnPhase fast_scalar = KnnBench("knn_fast_scalar", true,
                                  simd::Tier::kScalar, db, queries,
                                  4 * scale);
  KnnPhase fast_simd = KnnBench("knn_fast_simd", true, detected, db, queries,
                                4 * scale);
  double speedup_p50 = ref.p50_us / fast_simd.p50_us;
  double simd_speedup_p50 = fast_scalar.p50_us / fast_simd.p50_us;
  std::printf("\n%-22s %10s %10s %10s %10s %10s\n", "knn phase", "p50_us",
              "p99_us", "dp/query", "prunes/q", "abandon/q");
  for (const KnnPhase* p : {&ref, &fast_scalar, &fast_simd}) {
    std::printf("%-22s %10.1f %10.1f %10.1f %10.1f %10.1f\n",
                p->name.c_str(), p->p50_us, p->p99_us, p->mean_dp,
                p->mean_prunes, p->mean_abandons);
  }
  std::printf("\nuncached kNN p50 speedup vs reference: %.2fx "
              "(acceptance floor 3x)\n",
              speedup_p50);
  if (simd_active) {
    std::printf("uncached kNN p50 speedup, simd vs scalar fast path: %.2fx\n"
                "  (expected ~1x: tight-tau kNN DPs are band-pruned to "
                "narrow rows whose\n   horizontal min-chain is scalar-bound; "
                "the 2x acceptance floor applies to\n   the wide-band "
                "kernels above — exact DP, point batch — where the "
                "wavefront\n   and lane-parallel forms actually run)\n",
                simd_speedup_p50);
  } else {
    std::printf("uncached kNN simd speedup: n/a — scalar-only host\n");
  }

  std::string json = "{\"simd_tier\":\"" + std::string(tier_name) + "\"";
  json += ",\"simd_active\":" + std::string(simd_active ? "true" : "false");
  json += ",\"hardware_concurrency\":" +
          std::to_string(std::thread::hardware_concurrency());
  json += ",\"padded_stride\":" + std::to_string(simd::kPaddedDim);
  json += ",\"micro\":[";
  for (size_t i = 0; i < micro.size(); ++i) {
    const MicroRow& r = micro[i];
    if (i != 0) json += ",";
    json += "{\"length\":" + std::to_string(r.length);
    json += ",\"ref_us\":" + Num(r.ref_us);
    json += ",\"scalar_flat_us\":" + Num(r.scalar_flat_us);
    json += ",\"scalar_bounded_us\":" + Num(r.scalar_bounded_us);
    json += ",\"simd_flat_us\":" + Num(r.simd_flat_us);
    json += ",\"simd_bounded_us\":" + Num(r.simd_bounded_us);
    json += ",\"flat_speedup\":" + Num(r.ref_us / r.simd_flat_us);
    json += ",\"bounded_speedup\":" + Num(r.ref_us / r.simd_bounded_us);
    json += ",\"simd_flat_speedup\":" + Num(r.scalar_flat_us /
                                            r.simd_flat_us);
    json += ",\"simd_bounded_speedup\":" + Num(r.scalar_bounded_us /
                                               r.simd_bounded_us);
    json += ",\"prune_rate\":" + Num(r.prune_rate);
    json += ",\"abandon_rate\":" + Num(r.abandon_rate) + "}";
  }
  json += "],\"kernels\":[";
  for (size_t i = 0; i < batch.kernels.size(); ++i) {
    const KernelRow& k = batch.kernels[i];
    if (i != 0) json += ",";
    json += "{\"kernel\":\"" + k.name + "\"";
    json += ",\"scalar_us\":" + Num(k.scalar_us);
    json += ",\"simd_us\":" + Num(k.simd_us);
    json += ",\"simd_speedup\":" + Num(k.scalar_us / k.simd_us) + "}";
  }
  json += "],\"batch\":{\"loop_us_per_candidate\":" + Num(batch.loop_us);
  json += ",\"batch_us_per_candidate\":" + Num(batch.batch_us);
  json += ",\"batch_speedup\":" + Num(batch.loop_us / batch.batch_us);
  json += ",\"steady_state_allocations\":" +
          std::to_string(batch.steady_allocs);
  json += "},\"knn\":[";
  bool first = true;
  for (const KnnPhase* p : {&ref, &fast_scalar, &fast_simd}) {
    if (!first) json += ",";
    first = false;
    json += "{\"phase\":\"" + p->name + "\"";
    json += ",\"p50_us\":" + Num(p->p50_us);
    json += ",\"p99_us\":" + Num(p->p99_us);
    json += ",\"mean_distance_computations\":" + Num(p->mean_dp);
    json += ",\"mean_lb_prunes\":" + Num(p->mean_prunes);
    json += ",\"mean_early_abandons\":" + Num(p->mean_abandons) + "}";
  }
  json += "],\"knn_p50_speedup\":" + Num(speedup_p50);
  json += ",\"knn_simd_p50_speedup\":" + Num(simd_speedup_p50) + "}";

  std::ofstream out("BENCH_distance.json");
  out << json << "\n";
  std::cout << "report written to BENCH_distance.json\n";
  return 0;
}
