// Distance-kernel benchmark: the fast EGED path vs the reference DP.
//
// Part 1 — kernel micro: ref vs flat(exact) vs bounded(tau) across sequence
// lengths. The flat kernel isolates what precomputed gap costs + zero
// allocation buy; the bounded kernel adds the lower-bound cascade and early
// abandoning under a realistic tau (the true 10-NN radius of the probe).
//
// Part 2 — kNN cold path: the same index queried with
// use_fast_kernel=false (the pre-optimization query path) and =true.
// Per-query latencies give p50/p99; the counters show how much of the
// speedup is pruned candidates vs abandoned DPs. Acceptance: >= 3x on
// uncached p50.
//
// Output: human-readable stdout + BENCH_distance.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "distance/eged.h"
#include "distance/eged_fast.h"
#include "index/strg_index.h"
#include "synth/generator.h"
#include "util/random.h"

namespace strg {
namespace {

using Clock = std::chrono::steady_clock;
using dist::EgedKernelStats;
using dist::EgedMetric;
using dist::EgedMetricBounded;
using dist::EgedMetricFlat;
using dist::EgedWorkspace;
using dist::FeatureVec;
using dist::FlatSequence;
using dist::Sequence;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

Sequence RandomSequence(Rng* rng, size_t len) {
  Sequence s(len);
  FeatureVec cur{};
  for (size_t k = 0; k < dist::kFeatureDim; ++k) {
    cur[k] = rng->Uniform(0.0, 10.0);
  }
  for (size_t i = 0; i < len; ++i) {
    for (size_t k = 0; k < dist::kFeatureDim; ++k) {
      cur[k] += rng->Gaussian(0.0, 0.5);
    }
    s[i] = cur;
  }
  return s;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p / 100.0 *
                                   static_cast<double>(v.size() - 1));
  return v[idx];
}

struct MicroRow {
  size_t length = 0;
  double ref_us = 0.0;
  double flat_us = 0.0;
  double bounded_us = 0.0;
  double prune_rate = 0.0;    // fraction of bounded calls with no DP
  double abandon_rate = 0.0;  // fraction of bounded calls truncated
};

MicroRow MicroBench(size_t length, int pairs, int reps) {
  Rng rng(1000 + length);
  std::vector<Sequence> a(pairs), b(pairs);
  std::vector<FlatSequence> fa(pairs), fb(pairs);
  for (int i = 0; i < pairs; ++i) {
    a[i] = RandomSequence(&rng, length);
    b[i] = RandomSequence(&rng, length);
    fa[i].Assign(a[i], FeatureVec{});
    fb[i].Assign(b[i], FeatureVec{});
  }
  // Realistic tau: the 10th percentile of the pairwise distances — the
  // regime a kNN search settles into once its heap is warm.
  std::vector<double> exact(pairs);
  for (int i = 0; i < pairs; ++i) exact[i] = EgedMetric(a[i], b[i]);
  double tau = Percentile(exact, 10.0);

  MicroRow row;
  row.length = length;
  volatile double sink = 0.0;

  auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    for (int i = 0; i < pairs; ++i) sink += EgedMetric(a[i], b[i]);
  }
  row.ref_us = MicrosSince(t0) / static_cast<double>(pairs * reps);

  EgedWorkspace ws;
  t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    for (int i = 0; i < pairs; ++i) sink += EgedMetricFlat(fa[i], fb[i], &ws);
  }
  row.flat_us = MicrosSince(t0) / static_cast<double>(pairs * reps);

  EgedKernelStats stats;
  t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    for (int i = 0; i < pairs; ++i) {
      sink += EgedMetricBounded(fa[i], fb[i], tau, &ws, &stats);
    }
  }
  row.bounded_us = MicrosSince(t0) / static_cast<double>(pairs * reps);
  double calls = static_cast<double>(pairs) * reps;
  row.prune_rate = static_cast<double>(stats.lb_prunes) / calls;
  row.abandon_rate = static_cast<double>(stats.early_abandons) / calls;
  (void)sink;
  return row;
}

struct KnnPhase {
  std::string name;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_dp = 0.0;       // DP evaluations per query
  double mean_prunes = 0.0;   // lower-bound prunes per query
  double mean_abandons = 0.0; // early abandons per query
};

KnnPhase KnnBench(const std::string& name, bool use_fast,
                  const std::vector<Sequence>& db,
                  const std::vector<Sequence>& queries, int reps) {
  index::StrgIndexParams params;
  params.num_clusters = 12;
  params.cluster_params.max_iterations = 8;
  params.use_fast_kernel = use_fast;
  index::StrgIndex idx(params);
  idx.AddSegment(core::BackgroundGraph{}, db);

  KnnPhase phase;
  phase.name = name;
  std::vector<double> lat;
  lat.reserve(queries.size() * static_cast<size_t>(reps));
  double dp = 0.0, prunes = 0.0, abandons = 0.0;
  size_t n = 0;
  for (int r = 0; r < reps; ++r) {
    for (const Sequence& q : queries) {
      auto t0 = Clock::now();
      auto result = idx.Knn(q, 10);
      lat.push_back(MicrosSince(t0));
      dp += static_cast<double>(result.distance_computations);
      prunes += static_cast<double>(result.lb_prunes);
      abandons += static_cast<double>(result.early_abandons);
      ++n;
    }
  }
  phase.p50_us = Percentile(lat, 50.0);
  phase.p99_us = Percentile(lat, 99.0);
  phase.mean_dp = dp / static_cast<double>(n);
  phase.mean_prunes = prunes / static_cast<double>(n);
  phase.mean_abandons = abandons / static_cast<double>(n);
  return phase;
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace
}  // namespace strg

int main() {
  using namespace strg;
  bench::Banner("BENCH distance",
                "fast EGED kernel: flat + lower-bound cascade + early "
                "abandoning vs reference DP");

  const int scale = bench::EnvInt("STRG_BENCH_SCALE", 1);
  const int pairs = 200 * scale;
  const int reps = 20 * scale;

  std::vector<MicroRow> micro;
  std::printf("%-8s %10s %10s %12s %8s %8s %8s\n", "length", "ref_us",
              "flat_us", "bounded_us", "flat_x", "bound_x", "prune%");
  for (size_t length : {8u, 16u, 32u, 64u}) {
    MicroRow row = MicroBench(length, pairs, reps);
    micro.push_back(row);
    std::printf("%-8zu %10.3f %10.3f %12.3f %7.2fx %7.2fx %7.1f%%\n",
                row.length, row.ref_us, row.flat_us, row.bounded_us,
                row.ref_us / row.flat_us, row.ref_us / row.bounded_us,
                100.0 * (row.prune_rate + row.abandon_rate));
  }

  // kNN cold path: identical index structure (builds always use the flat
  // exact kernel), only the query kernel differs.
  synth::SynthParams sp;
  sp.items_per_cluster = 20;
  sp.noise_pct = 8.0;
  sp.seed = 77;
  auto db = synth::GenerateSyntheticOgs(sp).Sequences(synth::SynthScaling());
  sp.items_per_cluster = 1;
  sp.seed = 78;
  auto qall = synth::GenerateSyntheticOgs(sp).Sequences(
      synth::SynthScaling());
  std::vector<dist::Sequence> queries(qall.begin(),
                                      qall.begin() + 24);

  KnnPhase ref = KnnBench("knn_reference_kernel", false, db, queries,
                          4 * scale);
  KnnPhase fast = KnnBench("knn_fast_kernel", true, db, queries, 4 * scale);
  double speedup_p50 = ref.p50_us / fast.p50_us;
  std::printf("\n%-22s %10s %10s %10s %10s %10s\n", "knn phase", "p50_us",
              "p99_us", "dp/query", "prunes/q", "abandon/q");
  for (const KnnPhase* p : {&ref, &fast}) {
    std::printf("%-22s %10.1f %10.1f %10.1f %10.1f %10.1f\n",
                p->name.c_str(), p->p50_us, p->p99_us, p->mean_dp,
                p->mean_prunes, p->mean_abandons);
  }
  std::printf("\nuncached kNN p50 speedup: %.2fx (acceptance floor 3x)\n",
              speedup_p50);

  std::string json = "{\"micro\":[";
  for (size_t i = 0; i < micro.size(); ++i) {
    const MicroRow& r = micro[i];
    if (i != 0) json += ",";
    json += "{\"length\":" + std::to_string(r.length);
    json += ",\"ref_us\":" + Num(r.ref_us);
    json += ",\"flat_us\":" + Num(r.flat_us);
    json += ",\"bounded_us\":" + Num(r.bounded_us);
    json += ",\"flat_speedup\":" + Num(r.ref_us / r.flat_us);
    json += ",\"bounded_speedup\":" + Num(r.ref_us / r.bounded_us);
    json += ",\"prune_rate\":" + Num(r.prune_rate);
    json += ",\"abandon_rate\":" + Num(r.abandon_rate) + "}";
  }
  json += "],\"knn\":[";
  bool first = true;
  for (const KnnPhase* p : {&ref, &fast}) {
    if (!first) json += ",";
    first = false;
    json += "{\"phase\":\"" + p->name + "\"";
    json += ",\"p50_us\":" + Num(p->p50_us);
    json += ",\"p99_us\":" + Num(p->p99_us);
    json += ",\"mean_distance_computations\":" + Num(p->mean_dp);
    json += ",\"mean_lb_prunes\":" + Num(p->mean_prunes);
    json += ",\"mean_early_abandons\":" + Num(p->mean_abandons) + "}";
  }
  json += "],\"knn_p50_speedup\":" + Num(speedup_p50) + "}";

  std::ofstream out("BENCH_distance.json");
  out << json << "\n";
  std::cout << "report written to BENCH_distance.json\n";
  return 0;
}
