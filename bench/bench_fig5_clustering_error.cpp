// Reproduces Figure 5 (a), (b), (c): clustering error rate vs noise
// variance for {EM, KM, KHM} x {EGED, LCS, DTW} on the Section 6.1
// synthetic workload (48 moving patterns).
//
// Paper shape to reproduce: EGED-based clustering beats LCS- and DTW-based
// clustering at every noise level, and EM-EGED is the most robust overall.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cluster/em.h"
#include "cluster/khm.h"
#include "cluster/kmeans.h"
#include "cluster/metrics.h"
#include "distance/dtw.h"
#include "distance/edr.h"
#include "distance/eged.h"
#include "distance/lcs.h"
#include "synth/generator.h"
#include "util/table.h"

namespace {

using namespace strg;

using ClusterFn = cluster::Clustering (*)(const std::vector<dist::Sequence>&,
                                          size_t,
                                          const dist::SequenceDistance&,
                                          const cluster::ClusterParams&);

cluster::Clustering RunKhm(const std::vector<dist::Sequence>& data, size_t k,
                           const dist::SequenceDistance& d,
                           const cluster::ClusterParams& p) {
  return cluster::KhmCluster(data, k, d, p);
}

struct Algo {
  std::string name;
  ClusterFn fn;
};

struct Measure {
  std::string name;
  std::unique_ptr<dist::SequenceDistance> distance;
};

}  // namespace

int main() {
  bench::Banner("Figure 5", "clustering error rate vs noise variance");
  bench::JsonReport report("BENCH_fig5.json");
  const int per_cluster =
      bench::EnvInt("STRG_FIG5_PER_CLUSTER", bench::FullScale() ? 10 : 5);
  const int repeats = bench::EnvInt("STRG_FIG5_REPEATS", 2);
  const std::vector<double> noise_levels{5, 10, 15, 20, 25, 30};

  std::vector<Algo> algos{
      {"EM", &cluster::EmCluster},
      {"KM", &cluster::KMeansCluster},
      {"KHM", &RunKhm},
  };
  std::vector<Measure> measures;
  measures.push_back({"EGED", std::make_unique<dist::EgedDistance>()});
  measures.push_back({"LCS", std::make_unique<dist::LcsDistance>(1.0)});
  measures.push_back({"DTW", std::make_unique<dist::DtwDistance>()});
  // Extension beyond the paper's three curves: the trajectory edit
  // distance it cites as [4] (EDR).
  measures.push_back({"EDR", std::make_unique<dist::EdrDistance>(1.0)});

  for (const Algo& algo : algos) {
    cluster::ClusterStats algo_stats;
    std::cout << "\nFigure 5 (" << (algo.name == "EM"   ? "a"
                                    : algo.name == "KM" ? "b"
                                                        : "c")
              << "): " << algo.name
              << " clustering error rate (%) by distance function\n";
    Table table({"noise%", algo.name + "-EGED", algo.name + "-LCS",
                 algo.name + "-DTW", algo.name + "-EDR (ext.)"});
    for (double noise : noise_levels) {
      std::vector<double> row{noise};
      for (const Measure& measure : measures) {
        double err_acc = 0.0;
        for (int rep = 0; rep < repeats; ++rep) {
          synth::SynthParams sp;
          sp.items_per_cluster = static_cast<size_t>(per_cluster);
          sp.noise_pct = noise;
          sp.seed = 1000 + static_cast<uint64_t>(rep);
          synth::SynthDataset ds = synth::GenerateSyntheticOgs(sp);
          auto seqs = ds.Sequences(synth::SynthScaling());

          cluster::ClusterParams cp;
          cp.max_iterations = 12;
          cp.seed = 77 + static_cast<uint64_t>(rep);
          cp.stats = &algo_stats;
          cluster::Clustering model =
              algo.fn(seqs, ds.NumClusters(), *measure.distance, cp);
          err_acc += cluster::ClusteringErrorRate(model.assignment, ds.labels);
        }
        row.push_back(err_acc / repeats);
      }
      table.AddNumericRow(row, 1);
    }
    table.Print(std::cout);
    report.AddTable("fig5_" + algo.name + "_error_rate_pct", table);
    // Build cost across the whole sweep, in the paper's unit. All four
    // measures here are the non-metric variants, so the bounded path never
    // engages (prunes stay zero) — the scalar exists to make that honest.
    report.AddScalar(
        "fig5_" + algo.name + "_distance_computations",
        static_cast<double>(algo_stats.TotalDistances()));
  }
  report.Write();

  std::cout << "\nExpected shape (paper): each *-EGED curve lies below the"
               " corresponding *-LCS and *-DTW curves;\nEM-EGED stays lowest"
               " and degrades most gracefully with noise.\n";
  return 0;
}
