// Reproduces Figure 6: EM-EGED against KM-EGED and KHM-EGED.
//   (a) clustering error rate vs noise variance
//   (b) cluster building time vs number of iterations
//   (c) distortion (pixels) vs noise variance
//
// Paper shapes: (a) EM slightly better than KHM, both better than KM at
// high noise; (b) EM builds clusters ~1.5-2x faster; (c) EM's distortion
// tracks KM and is ~2x better than KHM.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "cluster/em.h"
#include "cluster/khm.h"
#include "cluster/kmeans.h"
#include "cluster/metrics.h"
#include "distance/eged.h"
#include "synth/generator.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace strg;

synth::SynthDataset MakeData(double noise, uint64_t seed, int per_cluster) {
  synth::SynthParams sp;
  sp.items_per_cluster = static_cast<size_t>(per_cluster);
  sp.noise_pct = noise;
  sp.seed = seed;
  return synth::GenerateSyntheticOgs(sp);
}

}  // namespace

int main() {
  bench::Banner("Figure 6", "EM-EGED vs KM-EGED vs KHM-EGED");
  bench::JsonReport report("BENCH_fig6.json");
  const int per_cluster =
      bench::EnvInt("STRG_FIG6_PER_CLUSTER", bench::FullScale() ? 10 : 5);
  dist::EgedDistance eged;

  // ---- (a) clustering error rate ------------------------------------
  std::cout << "\nFigure 6 (a): clustering error rate (%) vs noise\n";
  {
    Table table({"noise%", "EM-EGED", "KM-EGED", "KHM-EGED"});
    for (double noise : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
      synth::SynthDataset ds = MakeData(noise, 2000, per_cluster);
      auto seqs = ds.Sequences(synth::SynthScaling());
      cluster::ClusterParams cp;
      cp.max_iterations = 12;
      auto em = cluster::EmCluster(seqs, ds.NumClusters(), eged, cp);
      auto km = cluster::KMeansCluster(seqs, ds.NumClusters(), eged, cp);
      auto khm = cluster::KhmCluster(seqs, ds.NumClusters(), eged, cp);
      table.AddNumericRow(
          {noise, cluster::ClusteringErrorRate(em.assignment, ds.labels),
           cluster::ClusteringErrorRate(km.assignment, ds.labels),
           cluster::ClusteringErrorRate(khm.assignment, ds.labels)},
          1);
    }
    table.Print(std::cout);
    report.AddTable("fig6a_error_rate_pct", table);
  }

  // ---- (b) cluster building time vs iterations ----------------------
  std::cout << "\nFigure 6 (b): cluster building time (s) vs iterations\n";
  {
    // Noisy data keeps all three algorithms churning for the full
    // iteration budget (on easy data they reach a fixed point early and
    // the timing curve flattens).
    synth::SynthDataset ds = MakeData(25.0, 2024, per_cluster);
    auto seqs = ds.Sequences(synth::SynthScaling());
    Table table({"iterations", "EM-EGED", "KM-EGED", "KHM-EGED"});
    for (int iters : {2, 4, 6, 8, 10, 12, 14, 16}) {
      cluster::ClusterParams cp;
      cp.max_iterations = iters;
      cp.convergence_tol = -1.0;  // never declare convergence
      Timer t_em;
      cluster::EmCluster(seqs, ds.NumClusters(), eged, cp);
      double em_s = t_em.Seconds();
      Timer t_km;
      cluster::KMeansCluster(seqs, ds.NumClusters(), eged, cp);
      double km_s = t_km.Seconds();
      Timer t_khm;
      cluster::KhmCluster(seqs, ds.NumClusters(), eged, cp);
      double khm_s = t_khm.Seconds();
      table.AddNumericRow({static_cast<double>(iters), em_s, km_s, khm_s}, 3);
    }
    table.Print(std::cout);
    report.AddTable("fig6b_build_time_s", table);
  }

  // ---- (c) distortion vs noise ---------------------------------------
  std::cout << "\nFigure 6 (c): distortion (pixels) vs noise\n";
  {
    Table table({"noise%", "EM-EGED", "KM-EGED", "KHM-EGED"});
    dist::EgedMetricDistance metric;
    for (double noise : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
      synth::SynthDataset ds = MakeData(noise, 4242, per_cluster);
      auto seqs = ds.Sequences(synth::SynthScaling());
      auto truth = ds.TrueSequences(synth::SynthScaling());
      cluster::ClusterParams cp;
      cp.max_iterations = 12;
      auto em = cluster::EmCluster(seqs, ds.NumClusters(), eged, cp);
      auto km = cluster::KMeansCluster(seqs, ds.NumClusters(), eged, cp);
      auto khm = cluster::KhmCluster(seqs, ds.NumClusters(), eged, cp);
      // Feature position units are field/10 pixels.
      const double px_per_unit = 100.0 / 10.0;
      table.AddNumericRow(
          {noise,
           cluster::Distortion(em.centroids, truth, metric, px_per_unit),
           cluster::Distortion(km.centroids, truth, metric, px_per_unit),
           cluster::Distortion(khm.centroids, truth, metric, px_per_unit)},
          1);
    }
    table.Print(std::cout);
    report.AddTable("fig6c_distortion_px", table);
  }
  report.Write();

  std::cout << "\nExpected shapes (paper): (a) EM <= KHM < KM at high noise;"
               "\n(b) the EM curve grows ~1.5-2x slower than KM/KHM;"
               "\n(c) EM tracks KM closely and stays well below KHM.\n";
  return 0;
}
