// Reproduces Figure 6: EM-EGED against KM-EGED and KHM-EGED.
//   (a) clustering error rate vs noise variance
//   (b) cluster building time vs number of iterations
//   (c) distortion (pixels) vs noise variance
//
// Paper shapes: (a) EM slightly better than KHM, both better than KM at
// high noise; (b) EM builds clusters ~1.5-2x faster; (c) EM's distortion
// tracks KM and is ~2x better than KHM.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/em.h"
#include "cluster/khm.h"
#include "cluster/kmeans.h"
#include "cluster/metrics.h"
#include "distance/eged.h"
#include "synth/generator.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace strg;

synth::SynthDataset MakeData(double noise, uint64_t seed, int per_cluster) {
  synth::SynthParams sp;
  sp.items_per_cluster = static_cast<size_t>(per_cluster);
  sp.noise_pct = noise;
  sp.seed = seed;
  return synth::GenerateSyntheticOgs(sp);
}

}  // namespace

int main() {
  bench::Banner("Figure 6", "EM-EGED vs KM-EGED vs KHM-EGED");
  bench::JsonReport report("BENCH_fig6.json");
  const int per_cluster =
      bench::EnvInt("STRG_FIG6_PER_CLUSTER", bench::FullScale() ? 10 : 5);
  dist::EgedDistance eged;

  // ---- (a) clustering error rate ------------------------------------
  std::cout << "\nFigure 6 (a): clustering error rate (%) vs noise\n";
  {
    Table table({"noise%", "EM-EGED", "KM-EGED", "KHM-EGED"});
    for (double noise : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
      synth::SynthDataset ds = MakeData(noise, 2000, per_cluster);
      auto seqs = ds.Sequences(synth::SynthScaling());
      cluster::ClusterParams cp;
      cp.max_iterations = 12;
      auto em = cluster::EmCluster(seqs, ds.NumClusters(), eged, cp);
      auto km = cluster::KMeansCluster(seqs, ds.NumClusters(), eged, cp);
      auto khm = cluster::KhmCluster(seqs, ds.NumClusters(), eged, cp);
      table.AddNumericRow(
          {noise, cluster::ClusteringErrorRate(em.assignment, ds.labels),
           cluster::ClusteringErrorRate(km.assignment, ds.labels),
           cluster::ClusteringErrorRate(khm.assignment, ds.labels)},
          1);
    }
    table.Print(std::cout);
    report.AddTable("fig6a_error_rate_pct", table);
  }

  // ---- (b) cluster building time vs iterations ----------------------
  std::cout << "\nFigure 6 (b): cluster building time (s) vs iterations\n";
  {
    // Noisy data keeps all three algorithms churning for the full
    // iteration budget (on easy data they reach a fixed point early and
    // the timing curve flattens).
    synth::SynthDataset ds = MakeData(25.0, 2024, per_cluster);
    auto seqs = ds.Sequences(synth::SynthScaling());
    Table table({"iterations", "EM-EGED", "KM-EGED", "KHM-EGED"});
    for (int iters : {2, 4, 6, 8, 10, 12, 14, 16}) {
      cluster::ClusterParams cp;
      cp.max_iterations = iters;
      cp.convergence_tol = -1.0;  // never declare convergence
      Timer t_em;
      cluster::EmCluster(seqs, ds.NumClusters(), eged, cp);
      double em_s = t_em.Seconds();
      Timer t_km;
      cluster::KMeansCluster(seqs, ds.NumClusters(), eged, cp);
      double km_s = t_km.Seconds();
      Timer t_khm;
      cluster::KhmCluster(seqs, ds.NumClusters(), eged, cp);
      double khm_s = t_khm.Seconds();
      table.AddNumericRow({static_cast<double>(iters), em_s, km_s, khm_s}, 3);
    }
    table.Print(std::cout);
    report.AddTable("fig6b_build_time_s", table);
  }

  // ---- (c) distortion vs noise ---------------------------------------
  std::cout << "\nFigure 6 (c): distortion (pixels) vs noise\n";
  {
    Table table({"noise%", "EM-EGED", "KM-EGED", "KHM-EGED"});
    dist::EgedMetricDistance metric;
    for (double noise : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
      synth::SynthDataset ds = MakeData(noise, 4242, per_cluster);
      auto seqs = ds.Sequences(synth::SynthScaling());
      auto truth = ds.TrueSequences(synth::SynthScaling());
      cluster::ClusterParams cp;
      cp.max_iterations = 12;
      auto em = cluster::EmCluster(seqs, ds.NumClusters(), eged, cp);
      auto km = cluster::KMeansCluster(seqs, ds.NumClusters(), eged, cp);
      auto khm = cluster::KhmCluster(seqs, ds.NumClusters(), eged, cp);
      // Feature position units are field/10 pixels.
      const double px_per_unit = 100.0 / 10.0;
      table.AddNumericRow(
          {noise,
           cluster::Distortion(em.centroids, truth, metric, px_per_unit),
           cluster::Distortion(km.centroids, truth, metric, px_per_unit),
           cluster::Distortion(khm.centroids, truth, metric, px_per_unit)},
          1);
    }
    table.Print(std::cout);
    report.AddTable("fig6c_distortion_px", table);
  }

  // ---- (d) distance computations (extension) -------------------------
  // Build cost in the unit the paper reports (number of distance
  // computations), plus the Elkan/Hamerly saving on the metric EGED.
  std::cout << "\nFigure 6 (d, ext.): distance computations per fit\n";
  {
    synth::SynthDataset ds = MakeData(15.0, 2024, per_cluster);
    auto seqs = ds.Sequences(synth::SynthScaling());
    const size_t k = ds.NumClusters();

    // The paper's clustering measure is the non-metric EGED, where
    // triangle-inequality bounds are inadmissible and stay off — an honest
    // negative: prunes are structurally zero on these three rows.
    Table table({"algo", "distance_computations", "prunes"});
    auto add_row = [&](const std::string& name,
                       const cluster::ClusterStats& st) {
      table.AddRow({name, std::to_string(st.TotalDistances()),
                    std::to_string(st.assign_prunes + st.hamerly_skips)});
    };
    cluster::ClusterParams cp;
    cp.max_iterations = 12;
    cluster::ClusterStats em_st, km_st, khm_st;
    cp.stats = &em_st;
    cluster::EmCluster(seqs, k, eged, cp);
    cp.stats = &km_st;
    cluster::KMeansCluster(seqs, k, eged, cp);
    cp.stats = &khm_st;
    cluster::KhmCluster(seqs, k, eged, cp);
    add_row("EM-EGED", em_st);
    add_row("KM-EGED", km_st);
    add_row("KHM-EGED", khm_st);
    table.Print(std::cout);
    report.AddTable("fig6d_distance_computations", table);

    // Metric-EGED twin of the EM fit with bounds A/B'd: the Elkan saving
    // alongside the error curves (bench_cluster has the full k sweep).
    dist::EgedMetricDistance metric;
    Table elkan({"bound_mode", "assign_distances", "prunes", "ratio"});
    cluster::ClusterStats on_st, off_st;
    cp.stats = &on_st;
    cp.use_bounds = true;
    cluster::EmCluster(seqs, k, metric, cp);
    cp.stats = &off_st;
    cp.use_bounds = false;
    cluster::EmCluster(seqs, k, metric, cp);
    const double ratio =
        on_st.AssignmentDistances() == 0
            ? 0.0
            : static_cast<double>(off_st.AssignmentDistances()) /
                  static_cast<double>(on_st.AssignmentDistances());
    elkan.AddRow({"on", std::to_string(on_st.AssignmentDistances()),
                  std::to_string(on_st.assign_prunes + on_st.hamerly_skips),
                  FormatDouble(ratio, 2)});
    elkan.AddRow({"off", std::to_string(off_st.AssignmentDistances()),
                  std::to_string(off_st.assign_prunes), "1.00"});
    elkan.Print(std::cout);
    report.AddTable("fig6e_elkan_em_eged_m", elkan);
  }
  report.Write();

  std::cout << "\nExpected shapes (paper): (a) EM <= KHM < KM at high noise;"
               "\n(b) the EM curve grows ~1.5-2x slower than KM/KHM;"
               "\n(c) EM tracks KM closely and stays well below KHM.\n";
  return 0;
}
