// Reproduces Figure 7: STRG-Index vs M-tree (MT-RA, MT-SA).
//   (a) index building time vs database size
//   (b) number of distance computations for k-NN queries, k = 5..30
//   (c) precision / recall of k-NN results
//
// Both indexes store the same OG sequences and use the metric EGED, so a
// "distance computation" costs the same on either side (the Section 6.1
// fairness setup).

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "distance/eged.h"
#include "index/strg_index.h"
#include "mtree/mtree.h"
#include "synth/generator.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace strg;

struct Dataset {
  std::vector<dist::Sequence> db;
  std::vector<int> labels;
  std::vector<dist::Sequence> queries;
  std::vector<int> query_labels;
  size_t per_cluster = 0;
};

Dataset MakeDataset(size_t db_size, uint64_t seed) {
  Dataset out;
  synth::SynthParams sp;
  sp.items_per_cluster = (db_size + 47) / 48;
  sp.noise_pct = 10.0;
  sp.seed = seed;
  synth::SynthDataset ds = synth::GenerateSyntheticOgs(sp);
  out.db = ds.Sequences(synth::SynthScaling());
  out.labels = ds.labels;
  out.db.resize(db_size);
  out.labels.resize(db_size);
  out.per_cluster = sp.items_per_cluster;

  synth::SynthParams qp = sp;
  qp.items_per_cluster = 1;
  qp.seed = seed + 7;
  synth::SynthDataset qs = synth::GenerateSyntheticOgs(qp);
  out.queries = qs.Sequences(synth::SynthScaling());
  out.query_labels = qs.labels;
  return out;
}

index::StrgIndex BuildStrgIndex(const Dataset& data) {
  index::StrgIndexParams params;
  params.num_clusters = 48;  // the workload's known pattern count
  params.cluster_params.max_iterations = 5;
  index::StrgIndex idx(params);
  idx.AddSegment(core::BackgroundGraph{}, data.db);
  return idx;
}

mtree::MTree BuildMTree(const Dataset& data, mtree::Promotion promotion,
                        const dist::SequenceDistance* metric) {
  mtree::MTreeParams params;
  params.promotion = promotion;
  mtree::MTree tree(metric, params);
  for (size_t i = 0; i < data.db.size(); ++i) tree.Insert(data.db[i], i);
  return tree;
}

}  // namespace

int main() {
  bench::Banner("Figure 7", "STRG-Index vs M-tree (MT-RA / MT-SA)");
  bench::JsonReport report("BENCH_fig7.json");
  dist::EgedMetricDistance metric;

  std::vector<size_t> sizes{1000, 2000, 3000, 4000, 5000};
  if (bench::FullScale()) {
    sizes = {1000, 2500, 5000, 7500, 10000};
  }

  // ---- (a) index building time ---------------------------------------
  std::cout << "\nFigure 7 (a): index building time (s) vs database size\n";
  {
    Table table({"db size", "STRG-Index", "MT-RA", "MT-SA"});
    for (size_t n : sizes) {
      Dataset data = MakeDataset(n, 900 + n);
      Timer t_sx;
      auto sx = BuildStrgIndex(data);
      double sx_s = t_sx.Seconds();
      Timer t_ra;
      auto ra = BuildMTree(data, mtree::Promotion::kRandom, &metric);
      double ra_s = t_ra.Seconds();
      Timer t_sa;
      auto sa = BuildMTree(data, mtree::Promotion::kSampling, &metric);
      double sa_s = t_sa.Seconds();
      table.AddNumericRow(
          {static_cast<double>(n), sx_s, ra_s, sa_s}, 3);
    }
    table.Print(std::cout);
    report.AddTable("fig7a_build_time_s", table);
  }

  // ---- (b) + (c) on one mid-size database -----------------------------
  const size_t query_db_size = sizes[sizes.size() / 2];
  Dataset data = MakeDataset(query_db_size, 1234);
  auto sx = BuildStrgIndex(data);
  auto ra = BuildMTree(data, mtree::Promotion::kRandom, &metric);
  auto sa = BuildMTree(data, mtree::Promotion::kSampling, &metric);

  std::cout << "\nFigure 7 (b): avg # distance computations per k-NN query"
            << " (db size " << query_db_size << ")\n";
  {
    Table table({"k", "STRG-Index", "MT-RA", "MT-SA"});
    for (size_t k : {5, 10, 15, 20, 25, 30}) {
      double sx_acc = 0, ra_acc = 0, sa_acc = 0;
      for (const auto& q : data.queries) {
        sx_acc += static_cast<double>(sx.Knn(q, k).distance_computations);
        ra_acc += static_cast<double>(ra.Knn(q, k).distance_computations);
        sa_acc += static_cast<double>(sa.Knn(q, k).distance_computations);
      }
      double nq = static_cast<double>(data.queries.size());
      table.AddNumericRow({static_cast<double>(k), sx_acc / nq, ra_acc / nq,
                           sa_acc / nq},
                          1);
    }
    table.Print(std::cout);
    report.AddTable("fig7b_distance_computations", table);
  }

  // Exact k-NN would return identical answers from any correct metric
  // index, so (c) compares retrieval quality at a fixed search budget
  // (number of distance computations): the better-organized index reaches
  // the true neighbors sooner.
  const size_t budget = static_cast<size_t>(
      bench::EnvInt("STRG_FIG7_BUDGET", static_cast<int>(query_db_size / 20)));
  std::cout << "\nFigure 7 (c): precision / recall of k-NN results"
            << " (relevant = same moving pattern;\n  search budget "
            << budget << " distance computations per query)\n";
  {
    Table table({"k", "SX-prec", "SX-rec", "RA-prec", "RA-rec", "SA-prec",
                 "SA-rec"});
    size_t per_cluster = data.per_cluster;
    for (size_t k : {5, 10, 15, 20, 25, 30}) {
      double p[3] = {0, 0, 0}, r[3] = {0, 0, 0};
      for (size_t qi = 0; qi < data.queries.size(); ++qi) {
        const auto& q = data.queries[qi];
        int truth = data.query_labels[qi];
        size_t total_relevant = 0;
        for (int l : data.labels) {
          if (l == truth) ++total_relevant;
        }
        auto count_sx = [&](const index::KnnResult& res) {
          size_t rel = 0;
          for (const auto& h : res.hits) {
            if (data.labels[h.og_id] == truth) ++rel;
          }
          return rel;
        };
        auto count_mt = [&](const mtree::MTreeKnnResult& res) {
          size_t rel = 0;
          for (const auto& h : res.hits) {
            if (data.labels[h.id] == truth) ++rel;
          }
          return rel;
        };
        size_t rel[3] = {count_sx(sx.Knn(q, k, nullptr, budget)),
                         count_mt(ra.Knn(q, k, budget)),
                         count_mt(sa.Knn(q, k, budget))};
        for (int i = 0; i < 3; ++i) {
          auto pr = ComputePrecisionRecall(rel[i], k, total_relevant);
          p[i] += pr.precision;
          r[i] += pr.recall;
        }
      }
      double nq = static_cast<double>(data.queries.size());
      table.AddNumericRow({static_cast<double>(k), p[0] / nq, r[0] / nq,
                           p[1] / nq, r[1] / nq, p[2] / nq, r[2] / nq},
                          3);
    }
    table.Print(std::cout);
    report.AddTable("fig7c_precision_recall", table);
    (void)per_cluster;
  }
  report.AddScalar("query_db_size", static_cast<double>(query_db_size));
  report.AddScalar("search_budget", static_cast<double>(budget));
  report.Write();

  std::cout << "\nExpected shapes (paper): (a) STRG-Index builds faster than"
               " MT-SA (and MT-RA at scale);\n(b) STRG-Index needs ~20%+"
               " fewer distance computations than MT-RA;\n(c) STRG-Index"
               " dominates both M-tree variants on precision/recall.\n";
  return 0;
}
