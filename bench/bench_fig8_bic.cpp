// Reproduces Figure 8: BIC value vs number of clusters for each video
// stream; the peak of each curve is the selected (optimal) cluster count
// (Section 4.2 / Table 2's "found cluster" column).

#include <iostream>

#include "bench_common.h"
#include "cluster/bic.h"
#include "distance/eged.h"
#include "util/table.h"
#include "video_bench.h"

int main() {
  using namespace strg;
  bench::Banner("Figure 8", "BIC vs number of clusters per video stream");
  const int divisor = bench::Table1Divisor();
  const int k_max = bench::EnvInt("STRG_FIG8_KMAX", 15);

  auto runs = bench::RunTable1Videos(divisor);
  dist::EgedDistance eged;

  std::vector<std::string> headers{"K"};
  for (const auto& run : runs) headers.push_back(run.name);
  Table table(headers);

  std::vector<cluster::BicSweepResult> sweeps;
  std::vector<cluster::ClusterStats> sweep_stats(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    auto seqs = runs[i].result.ObjectSequences();
    cluster::ClusterParams cp;
    cp.max_iterations = 10;
    cp.restarts = 5;
    cp.stats = &sweep_stats[i];  // build cost of the whole K sweep
    sweeps.push_back(cluster::FindOptimalK(
        seqs, 1, std::min<size_t>(static_cast<size_t>(k_max), seqs.size()),
        eged, cp));
  }

  for (int k = 1; k <= k_max; ++k) {
    std::vector<std::string> row{std::to_string(k)};
    for (const auto& sweep : sweeps) {
      if (static_cast<size_t>(k) <= sweep.bic_values.size()) {
        row.push_back(FormatDouble(sweep.bic_values[static_cast<size_t>(k) - 1], 1));
      } else {
        row.push_back("-");
      }
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  bench::JsonReport report("BENCH_fig8.json");
  report.AddTable("fig8_bic_vs_k", table);
  std::cout << "\nPeak (selected K) per stream:\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    std::cout << "  " << runs[i].name << ": BIC peak at K=" << sweeps[i].best_k
              << "  (distinct motion categories present: "
              << runs[i].num_categories << ")\n";
    report.AddScalar("best_k_" + runs[i].name,
                     static_cast<double>(sweeps[i].best_k));
    report.AddScalar("sweep_distance_computations_" + runs[i].name,
                     static_cast<double>(sweep_stats[i].TotalDistances()));
  }
  report.Write();
  std::cout << "\nExpected shape (paper): each curve rises to a peak near the"
               " stream's true pattern count\nand falls beyond it; lab"
               " streams peak higher (more diverse motion) than traffic.\n";
  return 0;
}
