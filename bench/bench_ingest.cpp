// Ingest benchmark: fast mean-shift kernel + staged parallel pipeline.
//
// Part 1 — kernel micro: MeanShiftReference (the seed implementation) vs
// the optimized workspace kernel, us/frame on the bench scene. Acceptance:
// >= 1.5x single-threaded from the kernel alone.
//
// Part 2 — steady-state allocation check: after warm-up on a fixed
// geometry, SegmentFrameInto must perform zero heap allocations (the whole
// point of SegmenterWorkspace). The bench fails loudly if it allocates.
//
// Part 3 — end-to-end frames/sec through VideoPipeline: the seed path
// (reference kernel, serial), the optimized serial path, and the pooled
// frame stage at 2 and 4 threads, with the per-stage breakdown from
// IngestStats. Acceptance: >= 3x on 4 threads vs the seed path.
//
// Output: human-readable stdout + BENCH_ingest.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "segment/mean_shift.h"
#include "segment/segmenter.h"
#include "util/thread_pool.h"
#include "video/renderer.h"
#include "video/scenes.h"

// ---- global allocation counter (part 2) ---------------------------------
//
// Replacing the global operator new/delete lets the bench prove the
// steady-state claim instead of asserting it in a comment. Counting is
// gated so the rest of the benchmark is unaffected.

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace strg {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

struct EndToEndRow {
  std::string config;
  size_t threads = 0;  // 0 = serial
  size_t frames = 0;
  double wall_ms = 0.0;
  double fps = 0.0;
  double speedup = 1.0;  // vs the seed row
  api::IngestStats stats;
};

EndToEndRow RunPipeline(const std::string& config,
                        const std::vector<video::Frame>& frames,
                        const api::PipelineParams& params, size_t threads) {
  api::VideoPipeline pipeline(params);
  auto t0 = Clock::now();
  for (const video::Frame& f : frames) pipeline.PushFrame(f);
  pipeline.Finish();
  EndToEndRow row;
  row.config = config;
  row.threads = threads;
  row.frames = frames.size();
  row.wall_ms = MillisSince(t0);
  row.fps = 1000.0 * static_cast<double>(frames.size()) / row.wall_ms;
  row.stats = pipeline.stats();
  return row;
}

}  // namespace
}  // namespace strg

int main() {
  using namespace strg;
  bench::Banner("BENCH ingest",
                "fast mean-shift kernel + staged parallel ingest pipeline "
                "vs the serial seed path");

  const int scale = bench::EnvInt("STRG_BENCH_SCALE", 1);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware concurrency: %u%s\n", hw,
              hw < 4 ? " (pooled rows are core-bound below 4 threads)" : "");

  // The bench stream: the lab scene at 160x120 with sensor noise, so the
  // mean-shift filter does real work on every pixel.
  video::SceneParams sp;
  sp.num_objects = 4;
  sp.width = 160;
  sp.height = 120;
  sp.noise_stddev = 2.0;
  sp.seed = 17;
  video::SceneSpec scene = video::MakeLabScene(sp);
  std::vector<video::Frame> frames;
  for (int rep = 0; rep < scale; ++rep) {
    for (int t = 0; t < scene.num_frames; ++t) {
      frames.push_back(video::RenderFrame(scene, t));
    }
  }
  std::printf("stream: %zu frames of %dx%d\n\n", frames.size(), sp.width,
              sp.height);

  // ---- part 1: kernel micro ---------------------------------------------
  const segment::MeanShiftParams ms_params;
  const int kernel_frames = std::min<int>(static_cast<int>(frames.size()),
                                          8 * scale);
  segment::MeanShiftWorkspace ws;
  video::Frame filtered;
  // Warm up both paths (page in buffers, stabilize the clock).
  segment::MeanShiftFilter(frames[0], ms_params, &ws, &filtered);
  (void)segment::MeanShiftReference(frames[0], ms_params);

  auto t0 = Clock::now();
  for (int i = 0; i < kernel_frames; ++i) {
    (void)segment::MeanShiftReference(frames[static_cast<size_t>(i)],
                                      ms_params);
  }
  double ref_us =
      1000.0 * MillisSince(t0) / static_cast<double>(kernel_frames);

  t0 = Clock::now();
  for (int i = 0; i < kernel_frames; ++i) {
    segment::MeanShiftFilter(frames[static_cast<size_t>(i)], ms_params, &ws,
                             &filtered);
  }
  double opt_us =
      1000.0 * MillisSince(t0) / static_cast<double>(kernel_frames);
  double kernel_speedup = ref_us / opt_us;
  std::printf("mean-shift kernel (us/frame over %d frames)\n", kernel_frames);
  std::printf("  %-22s %10.1f\n", "reference (seed)", ref_us);
  std::printf("  %-22s %10.1f\n", "optimized", opt_us);
  std::printf("  speedup: %.2fx (acceptance floor 1.5x)\n\n", kernel_speedup);

  // ---- part 2: steady-state allocation check ----------------------------
  segment::SegmenterParams seg_params;  // mean shift on
  segment::SegmenterWorkspace seg_ws;
  segment::Segmentation seg_out;
  for (int i = 0; i < 3; ++i) {  // warm-up sizes every scratch buffer
    segment::SegmentFrameInto(frames[0], seg_params, &seg_ws, &seg_out);
  }
  g_allocs.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 5; ++i) {
    segment::SegmentFrameInto(frames[0], seg_params, &seg_ws, &seg_out);
  }
  g_count_allocs.store(false, std::memory_order_relaxed);
  const uint64_t steady_allocs = g_allocs.load(std::memory_order_relaxed);
  std::printf("steady-state SegmentFrameInto heap allocations: %llu\n\n",
              static_cast<unsigned long long>(steady_allocs));
  if (steady_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: SegmentFrameInto allocated %llu times after warm-up "
                 "(workspace regression)\n",
                 static_cast<unsigned long long>(steady_allocs));
    return 1;
  }

  // ---- part 3: end-to-end frames/sec ------------------------------------
  std::vector<EndToEndRow> rows;
  {
    api::PipelineParams seed;
    seed.segmenter.use_reference_kernel = true;
    rows.push_back(RunPipeline("serial_seed_kernel", frames, seed, 0));
  }
  {
    api::PipelineParams serial;
    rows.push_back(RunPipeline("serial_optimized", frames, serial, 0));
  }
  for (size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    api::PipelineParams pooled;
    pooled.pool = &pool;
    rows.push_back(RunPipeline("pooled_" + std::to_string(threads), frames,
                               pooled, threads));
  }
  const double seed_fps = rows[0].fps;
  for (EndToEndRow& r : rows) r.speedup = r.fps / seed_fps;

  std::printf("%-20s %8s %10s %10s %8s %12s %12s %12s %8s\n", "config",
              "threads", "wall_ms", "fps", "speedup", "segment_us",
              "track_us", "decomp_us", "stalls");
  for (const EndToEndRow& r : rows) {
    std::printf("%-20s %8zu %10.1f %10.2f %7.2fx %12llu %12llu %12llu %8llu\n",
                r.config.c_str(), r.threads, r.wall_ms, r.fps, r.speedup,
                static_cast<unsigned long long>(r.stats.segment_us),
                static_cast<unsigned long long>(r.stats.track_us),
                static_cast<unsigned long long>(r.stats.decompose_us),
                static_cast<unsigned long long>(r.stats.queue_full_stalls));
  }
  const double single_thread_speedup = rows[1].speedup;
  const double pooled4_speedup = rows.back().speedup;
  std::printf(
      "\nsingle-thread speedup (kernel alone): %.2fx (floor 1.5x)\n"
      "4-thread end-to-end speedup vs seed:  %.2fx (floor 3x, needs >= 4 "
      "physical cores)\n",
      single_thread_speedup, pooled4_speedup);

  std::string json =
      "{\"simd_tier\":\"" +
      std::string(dist::simd::TierName(dist::simd::ActiveTier())) + "\"";
  json += ",\"hardware_concurrency\":" + std::to_string(hw);
  json += ",\"kernel\":{\"reference_us_per_frame\":" + Num(ref_us);
  json += ",\"optimized_us_per_frame\":" + Num(opt_us);
  json += ",\"speedup\":" + Num(kernel_speedup) + "}";
  json += ",\"steady_state_allocs\":" + std::to_string(steady_allocs);
  json += ",\"end_to_end\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    const EndToEndRow& r = rows[i];
    if (i != 0) json += ",";
    json += "{\"config\":\"" + r.config + "\"";
    json += ",\"threads\":" + std::to_string(r.threads);
    json += ",\"frames\":" + std::to_string(r.frames);
    json += ",\"wall_ms\":" + Num(r.wall_ms);
    json += ",\"fps\":" + Num(r.fps);
    json += ",\"speedup_vs_seed\":" + Num(r.speedup);
    json += ",\"stage_us\":{\"segment\":" +
            std::to_string(r.stats.segment_us);
    json += ",\"track\":" + std::to_string(r.stats.track_us);
    json += ",\"decompose\":" + std::to_string(r.stats.decompose_us) + "}";
    json += ",\"queue_stalls\":" + std::to_string(r.stats.queue_full_stalls);
    json += "}";
  }
  json += "],\"single_thread_speedup\":" + Num(single_thread_speedup);
  json += ",\"pooled4_speedup\":" + Num(pooled4_speedup) + "}";

  std::ofstream out("BENCH_ingest.json");
  out << json << "\n";
  std::cout << "report written to BENCH_ingest.json\n";
  return 0;
}
