// Google-benchmark microbenchmarks of the distance kernels (EGED,
// EGED_M, DTW, LCS, L2) across sequence lengths — the per-distance cost
// that dominates every figure's wall time (Section 6.3's T formula).
//
// NOLINT(strg-bench-json): google-benchmark harness; machine-readable
// output comes from its own --benchmark_out=<file> --benchmark_out_format
// flags rather than a hand-rolled BENCH_*.json.

#include <benchmark/benchmark.h>

#include "distance/dtw.h"
#include "distance/eged.h"
#include "distance/lcs.h"
#include "distance/lp.h"
#include "util/random.h"

namespace {

using namespace strg;

dist::Sequence MakeSeq(size_t len, uint64_t seed) {
  Rng rng(seed);
  dist::Sequence s(len);
  for (auto& v : s) {
    for (size_t k = 0; k < dist::kFeatureDim; ++k) {
      v[k] = rng.Uniform(0.0, 10.0);
    }
  }
  return s;
}

void BM_EgedNonMetric(benchmark::State& state) {
  auto a = MakeSeq(static_cast<size_t>(state.range(0)), 1);
  auto b = MakeSeq(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::EgedNonMetric(a, b));
  }
}
BENCHMARK(BM_EgedNonMetric)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_EgedMetric(benchmark::State& state) {
  auto a = MakeSeq(static_cast<size_t>(state.range(0)), 1);
  auto b = MakeSeq(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::EgedMetric(a, b));
  }
}
BENCHMARK(BM_EgedMetric)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_Dtw(benchmark::State& state) {
  auto a = MakeSeq(static_cast<size_t>(state.range(0)), 1);
  auto b = MakeSeq(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::Dtw(a, b));
  }
}
BENCHMARK(BM_Dtw)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_Lcs(benchmark::State& state) {
  auto a = MakeSeq(static_cast<size_t>(state.range(0)), 1);
  auto b = MakeSeq(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::LcsDistanceValue(a, b, 1.0));
  }
}
BENCHMARK(BM_Lcs)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_L2(benchmark::State& state) {
  auto a = MakeSeq(static_cast<size_t>(state.range(0)), 1);
  auto b = MakeSeq(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::LpDistanceValue(a, b, 2.0));
  }
}
BENCHMARK(BM_L2)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
