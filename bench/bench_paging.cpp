// Out-of-core storage engine: kNN latency vs buffer-cache budget.
//
// A synthetic OG dataset is indexed through a PagedRecordStore whose page
// file grows to many times the cache budget; the sweep shrinks the budget
// from "everything resident" down to ~1/16 of the dataset and measures
// uncached kNN p50/p99 plus the cache's own hit/miss/eviction counters at
// each point. The proof obligations:
//
//   * resident page memory equals the configured frame pool at every
//     point (bounded by construction, never by luck), and
//   * the smallest budget serves a dataset >= 10x its size with answers
//     identical to the fully-resident run.
//
// Output: human-readable stdout + BENCH_paging.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/video_database.h"
#include "index/strg_index.h"
#include "storage/pager/paged_record_store.h"
#include "storage/pager/storage_params.h"
#include "synth/generator.h"
#include "util/table.h"

namespace strg {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p / 100.0 *
                                   static_cast<double>(v.size() - 1));
  return v[idx];
}

api::SegmentResult MakeSegment(const synth::SynthDataset& ds) {
  api::SegmentResult segment;
  segment.frame_width = 100;
  segment.frame_height = 100;
  size_t frames = 0;
  for (const core::Og& og : ds.ogs) {
    frames = std::max(frames,
                      static_cast<size_t>(og.start_frame) + og.Length());
    segment.decomposition.object_graphs.push_back(og);
  }
  segment.num_frames = frames;
  return segment;
}

struct SweepPoint {
  uint64_t cache_bytes = 0;
  size_t frames = 0;
  uint64_t dataset_bytes = 0;
  double ratio = 0.0;  ///< dataset bytes / resident bytes
  double p50_us = 0.0;
  double p99_us = 0.0;
  storage::BufferCacheStats stats;
  std::vector<size_t> first_hit_ids;  ///< top answer per probe (equivalence)
};

SweepPoint RunSweepPoint(const api::SegmentResult& segment,
                         const std::vector<dist::Sequence>& probes,
                         uint64_t cache_bytes, size_t page_size) {
  std::string path = "bench_paging.pages";
  std::remove(path.c_str());
  storage::StorageParams params;
  params.paged = true;
  params.page_size = page_size;
  params.cache_bytes = cache_bytes;
  params.cache_shards = 4;
  auto store = storage::PagedRecordStore::Create(path, params).value();

  index::StrgIndexParams ip;
  ip.num_clusters = 8;
  ip.paged_store = store.get();
  api::VideoDatabase db(ip);
  db.AddVideo("synth", segment);

  SweepPoint point;
  point.cache_bytes = cache_bytes;
  point.frames = store->cache()->num_frames();
  point.dataset_bytes = store->file().num_pages() * page_size;
  point.ratio = static_cast<double>(point.dataset_bytes) /
                static_cast<double>(store->cache()->resident_bytes());

  std::vector<double> lat;
  lat.reserve(probes.size());
  for (const dist::Sequence& probe : probes) {
    auto t0 = Clock::now();
    auto hits = db.FindSimilar(probe, 10);
    lat.push_back(MicrosSince(t0));
    point.first_hit_ids.push_back(hits.empty() ? ~size_t{0}
                                               : hits.front().og_id);
  }
  point.p50_us = Percentile(lat, 50.0);
  point.p99_us = Percentile(lat, 99.0);
  point.stats = store->cache_stats();
  store.reset();
  std::remove(path.c_str());
  return point;
}

int Run() {
  bench::Banner("Paging sweep",
                "kNN latency vs buffer-cache budget (out-of-core engine)");

  synth::SynthParams sp;
  sp.items_per_cluster =
      static_cast<size_t>(bench::EnvInt("STRG_BENCH_SCALE", 0) > 0
                              ? 4 * bench::EnvInt("STRG_BENCH_SCALE", 1)
                              : (bench::FullScale() ? 10 : 4));
  synth::SynthDataset ds = synth::GenerateSyntheticOgs(sp);
  api::SegmentResult segment = MakeSegment(ds);
  std::vector<dist::Sequence> probes = ds.TrueSequences(synth::SynthScaling());

  const size_t page_size = 512;

  // Size the sweep off the fully-resident run: its file size is the
  // dataset footprint every smaller budget must still serve.
  SweepPoint resident =
      RunSweepPoint(segment, probes, /*cache_bytes=*/256ull << 20, page_size);
  std::cout << "dataset: " << ds.ogs.size() << " OGs, "
            << resident.dataset_bytes / 1024 << " KiB in pages\n\n";

  std::vector<uint64_t> budgets;
  for (uint64_t div : {1, 2, 4, 8, 16}) {
    uint64_t b = resident.dataset_bytes / div;
    budgets.push_back(std::max<uint64_t>(b, 4 * page_size));
  }

  Table table({"cache_kb", "frames", "resident_kb", "dataset_x",
                     "p50_us", "p99_us", "hit_rate", "hits", "misses",
                     "evictions"});
  std::vector<SweepPoint> points;
  for (uint64_t budget : budgets) {
    SweepPoint p = RunSweepPoint(segment, probes, budget, page_size);
    points.push_back(p);
    table.AddNumericRow(
        {static_cast<double>(budget) / 1024.0, static_cast<double>(p.frames),
         static_cast<double>(p.frames * page_size) / 1024.0, p.ratio,
         p.p50_us, p.p99_us, p.stats.HitRate(),
         static_cast<double>(p.stats.hits),
         static_cast<double>(p.stats.misses),
         static_cast<double>(p.stats.evictions)});
  }
  table.Print(std::cout);

  // Proof obligations (see file comment).
  const SweepPoint& tiniest = points.back();
  bool answers_identical = true;
  for (const SweepPoint& p : points) {
    if (p.first_hit_ids != resident.first_hit_ids) answers_identical = false;
  }
  std::cout << "\nsmallest budget serves " << tiniest.ratio
            << "x its resident memory";
  std::cout << (tiniest.ratio >= 10.0 ? " (>= 10x target met)\n"
                                      : " (< 10x target MISSED)\n");
  std::cout << "answers identical across all budgets: "
            << (answers_identical ? "yes" : "NO — paging changed results")
            << "\n";

  bench::JsonReport report("BENCH_paging.json");
  report.AddTable("sweep", table);
  report.AddScalar("dataset_bytes",
                   static_cast<double>(resident.dataset_bytes));
  report.AddScalar("num_ogs", static_cast<double>(ds.ogs.size()));
  report.AddScalar("page_size", static_cast<double>(page_size));
  report.AddScalar("min_budget_dataset_ratio", tiniest.ratio);
  report.AddScalar("answers_identical", answers_identical ? 1.0 : 0.0);
  report.AddScalar("resident_p50_us", resident.p50_us);
  report.AddScalar("resident_p99_us", resident.p99_us);
  report.Write();

  return (answers_identical && tiniest.ratio >= 10.0) ? 0 : 1;
}

}  // namespace
}  // namespace strg

int main() { return strg::Run(); }
