// Durability cost / recovery speed harness for the WAL layer
// (src/storage/wal + server::DurableQueryEngine). Reports JSON to stdout
// and BENCH_recovery.json:
//
//   ingest   — per-op ingest latency for the no-WAL QueryEngine baseline
//              and for each fsync policy (every_record / every_n /
//              on_publish), i.e. what each durability window costs.
//   replay   — crash-recovery throughput: reopen after ingesting N
//              streamed OGs with compaction disabled (pure log replay,
//              generations/s) and with periodic compaction (snapshot +
//              short log tail), plus wall seconds for each.
//
// Scale knobs: STRG_BENCH_RECOVERY_OPS (streamed ops per phase, default
// 192), STRG_BENCH_SCALE multiplies it.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "server/durable_engine.h"
#include "synth/generator.h"

namespace strg {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

struct Workload {
  api::SegmentResult segment;
  std::vector<core::Og> stream;
};

Workload MakeWorkload(size_t base, size_t stream_ops) {
  synth::SynthParams sp;
  sp.items_per_cluster =
      static_cast<int>((base + stream_ops) / 48 + 1);  // 48 patterns/cluster
  sp.seed = 20260805;
  synth::SynthDataset ds = synth::GenerateSyntheticOgs(sp);

  Workload w;
  w.segment.frame_width = 100;
  w.segment.frame_height = 100;
  size_t frames = 0;
  for (size_t i = 0; i < ds.ogs.size() && i < base + stream_ops; ++i) {
    frames = std::max(frames, static_cast<size_t>(ds.ogs[i].start_frame) +
                                  ds.ogs[i].Length());
    if (i < base) {
      w.segment.decomposition.object_graphs.push_back(ds.ogs[i]);
    } else {
      w.stream.push_back(ds.ogs[i]);
    }
  }
  w.segment.num_frames = frames;
  return w;
}

index::StrgIndexParams IndexParams() {
  index::StrgIndexParams p;
  p.num_clusters = 8;
  p.cluster_params.max_iterations = 10;
  return p;
}

std::string FreshDir(const std::string& tag) {
  std::string dir = fs::temp_directory_path().string() + "/strg_bench_" + tag;
  fs::remove_all(dir);
  return dir;
}

struct IngestRow {
  std::string name;
  size_t ops = 0;
  double micros_per_op = 0.0;
  uint64_t syncs = 0;
};

struct ReplayRow {
  std::string name;
  size_t records = 0;       // log records replayed on reopen
  uint64_t generations = 0;  // generation reached after recovery
  double seconds = 0.0;      // snapshot load + replay wall time
  double generations_per_sec = 0.0;
};

/// Streams the workload through a DurableQueryEngine in `dir`; returns the
/// per-op ingest cost and leaves the directory populated for a replay run.
IngestRow RunIngest(const std::string& name, const std::string& dir,
                    const Workload& w,
                    const server::DurableEngineOptions& opts) {
  auto engine = server::DurableQueryEngine::Open(dir, IndexParams(), opts);
  if (!engine.ok()) {
    std::cerr << "open failed: " << engine.status().ToString() << "\n";
    std::exit(1);
  }
  int segment_id = -1;
  (*engine)->AddVideo("bench", w.segment, &segment_id).value();

  const auto start = Clock::now();
  for (const core::Og& og : w.stream) {
    (*engine)
        ->AddObjectGraph(segment_id, "bench", og, synth::SynthScaling())
        .value();
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();

  IngestRow row;
  row.name = name;
  row.ops = w.stream.size();
  row.micros_per_op = w.stream.empty() ? 0.0 : secs * 1e6 / w.stream.size();
  row.syncs = (*engine)->engine().metrics().wal_syncs.load();
  return row;
}

/// Baseline: the same stream through the bare QueryEngine (no WAL at all).
IngestRow RunBaseline(const Workload& w) {
  server::EngineOptions eopts;
  eopts.num_threads = 2;
  server::QueryEngine engine(IndexParams(), eopts);
  int segment_id = -1;
  engine.AddVideo("bench", w.segment, &segment_id);

  const auto start = Clock::now();
  for (const core::Og& og : w.stream) {
    engine.AddObjectGraph(segment_id, "bench", og, synth::SynthScaling());
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();

  IngestRow row;
  row.name = "no_wal_baseline";
  row.ops = w.stream.size();
  row.micros_per_op = w.stream.empty() ? 0.0 : secs * 1e6 / w.stream.size();
  return row;
}

ReplayRow RunReplay(const std::string& name, const std::string& dir,
                    const server::DurableEngineOptions& opts) {
  auto engine = server::DurableQueryEngine::Open(dir, IndexParams(), opts);
  if (!engine.ok()) {
    std::cerr << "reopen failed: " << engine.status().ToString() << "\n";
    std::exit(1);
  }
  const server::RecoveryStats& rec = (*engine)->recovery();
  ReplayRow row;
  row.name = name;
  row.records = rec.replayed_records;
  row.generations = (*engine)->Generation();
  row.seconds = rec.replay_seconds;
  row.generations_per_sec =
      rec.replay_seconds > 0 ? row.generations / rec.replay_seconds : 0.0;
  return row;
}

}  // namespace
}  // namespace strg

int main() {
  using namespace strg;
  bench::Banner("BENCH recovery",
                "WAL append overhead per fsync policy + replay throughput");

  const size_t ops = static_cast<size_t>(
      bench::EnvInt("STRG_BENCH_RECOVERY_OPS", 192) *
      std::max(1, bench::EnvInt("STRG_BENCH_SCALE", 1)));
  Workload w = MakeWorkload(/*base=*/48, ops);
  std::cout << "base OGs: 48, streamed ops: " << w.stream.size() << "\n\n";

  // ---- Ingest cost per fsync policy (compaction off: pure append). ----
  std::vector<IngestRow> ingest;
  ingest.push_back(RunBaseline(w));

  struct Policy {
    const char* name;
    storage::WalSyncPolicy policy;
  };
  const Policy kPolicies[] = {
      {"every_record", storage::WalSyncPolicy::kEveryRecord},
      {"every_n", storage::WalSyncPolicy::kEveryN},
      {"on_publish", storage::WalSyncPolicy::kOnPublish},
  };
  std::string every_record_dir;
  for (const Policy& p : kPolicies) {
    server::DurableEngineOptions opts;
    opts.wal.sync_policy = p.policy;
    opts.wal.sync_every_n = 32;
    opts.compact_every = 0;
    opts.engine.num_threads = 2;
    const std::string dir = FreshDir(std::string("ingest_") + p.name);
    if (p.policy == storage::WalSyncPolicy::kEveryRecord)
      every_record_dir = dir;
    ingest.push_back(RunIngest(p.name, dir, w, opts));
  }
  const double base_us = ingest.front().micros_per_op;
  std::printf("%-18s %10s %14s %12s %8s\n", "ingest", "ops", "us/op",
              "overhead", "fsyncs");
  for (const IngestRow& r : ingest) {
    std::printf("%-18s %10zu %14.1f %11.2fx %8llu\n", r.name.c_str(), r.ops,
                r.micros_per_op,
                base_us > 0 ? r.micros_per_op / base_us : 0.0,
                static_cast<unsigned long long>(r.syncs));
  }

  // ---- Replay throughput: pure log vs snapshot + tail. ----
  std::vector<ReplayRow> replay;
  {
    // Pure log replay: reuse the every_record directory (compaction off).
    server::DurableEngineOptions opts;
    opts.compact_every = 0;
    opts.engine.num_threads = 2;
    replay.push_back(RunReplay("pure_log", every_record_dir, opts));
  }
  {
    // Snapshot-dominant replay: ingest with periodic compaction, reopen.
    server::DurableEngineOptions opts;
    opts.wal.sync_policy = storage::WalSyncPolicy::kEveryN;
    opts.compact_every = 64;
    opts.engine.num_threads = 2;
    const std::string dir = FreshDir("ingest_compacting");
    RunIngest("compacting", dir, w, opts);
    replay.push_back(RunReplay("snapshot_plus_tail", dir, opts));
  }
  std::printf("\n%-18s %10s %12s %10s %14s\n", "replay", "records",
              "generations", "seconds", "gens/sec");
  for (const ReplayRow& r : replay) {
    std::printf("%-18s %10zu %12llu %10.4f %14.0f\n", r.name.c_str(),
                r.records, static_cast<unsigned long long>(r.generations),
                r.seconds, r.generations_per_sec);
  }

  // ---- JSON report. ----
  std::ostringstream json;
  json << "{\"bench\":\"recovery\",\"simd_tier\":\""
       << dist::simd::TierName(dist::simd::ActiveTier())
       << "\",\"streamed_ops\":" << w.stream.size()
       << ",\"ingest\":[";
  for (size_t i = 0; i < ingest.size(); ++i) {
    const IngestRow& r = ingest[i];
    json << (i ? "," : "") << "{\"policy\":\"" << r.name
         << "\",\"ops\":" << r.ops << ",\"micros_per_op\":" << r.micros_per_op
         << ",\"overhead_vs_no_wal\":"
         << (base_us > 0 ? r.micros_per_op / base_us : 0.0)
         << ",\"fsyncs\":" << r.syncs << "}";
  }
  json << "],\"replay\":[";
  for (size_t i = 0; i < replay.size(); ++i) {
    const ReplayRow& r = replay[i];
    json << (i ? "," : "") << "{\"mode\":\"" << r.name
         << "\",\"replayed_records\":" << r.records
         << ",\"generations\":" << r.generations
         << ",\"seconds\":" << r.seconds
         << ",\"generations_per_sec\":" << r.generations_per_sec << "}";
  }
  json << "]}";

  std::ofstream out("BENCH_recovery.json");
  out << json.str() << "\n";
  std::cout << "\n" << json.str() << "\n"
            << "report written to BENCH_recovery.json\n";
  return 0;
}
