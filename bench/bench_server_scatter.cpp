// Scatter-gather serving bench: sharded vs single-engine QueryEngine on an
// identical mixed workload, plus an open-loop overload phase that checks
// the admission bound turns 2x oversubscription into typed kOverloaded
// rejections with a Little's-law-bounded p99 for the accepted requests
// (BENCH_server_sharded.json).
//
// Phases (each on freshly built engines so metrics are per-phase):
//   equivalence     — every pool query (kNN / range / temporal) answered by
//                     a single engine and a 1/2/4/8-shard engine; answers
//                     must be bit-identical (the scatter-gather exactness
//                     contract, asserted here on the bench workload too).
//   single_closed   — C closed-loop clients replaying the mix through one
//                     QueryEngine (the baseline).
//   sharded_closed  — the same replay through a ShardedQueryEngine.
//   sharded_overload— open-loop arrivals at 2x the measured sharded
//                     capacity against a small admission bound: overload
//                     must shed as typed kOverloaded (never queue without
//                     bound), and accepted-request p99 must stay within the
//                     admission-cap sojourn bound.
//
// Workload: 16 videos hash-spread over the shards; 85% kNN / 5% range /
// 5% temporal-window / 5% ingest. Ingest is where sharding pays even on
// one core: a publish clones 1/N of the catalog; temporal queries scan
// 1/N of the records. The kNN scatter adds intra-query parallelism on
// multi-core hosts and tau-seeded pruning everywhere; the speedup SLO
// (>= 2x at >= 4 shards) therefore records hardware_concurrency and is
// marked not-applicable on single-core machines, where the honest ceiling
// is the ingest/temporal fraction.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/query_engine.h"
#include "server/sharded_engine.h"
#include "synth/generator.h"

namespace strg {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kNumVideos = 16;
constexpr size_t kKnnK = 10;
constexpr double kRangeRadius = 2.0;

struct Workload {
  std::vector<std::string> names;                // video names, ingest order
  std::vector<api::SegmentResult> segments;      // one per video
  std::vector<core::Og> stream;                  // OGs ingest ops draw from
  std::vector<dist::Sequence> queries;           // probe pool
};

Workload MakeWorkload(int scale) {
  synth::SynthParams sp;
  // Big enough that per-request work dominates scatter bookkeeping even on
  // one core (48 patterns * 12 = 576 OGs, 1/4 held back for ingest).
  sp.items_per_cluster = 12 * scale;
  sp.seed = 4242;
  synth::SynthDataset ds = synth::GenerateSyntheticOgs(sp);

  Workload w;
  w.segments.resize(kNumVideos);
  for (size_t v = 0; v < kNumVideos; ++v) {
    w.names.push_back("cam-" + std::to_string(v));
    w.segments[v].frame_width = 100;
    w.segments[v].frame_height = 100;
  }
  // Round-robin the synthetic OGs over the videos; hold back 1 in 4 as the
  // ingest stream.
  size_t frames = 0;
  for (size_t i = 0; i < ds.ogs.size(); ++i) {
    frames = std::max(frames, static_cast<size_t>(ds.ogs[i].start_frame) +
                                  ds.ogs[i].Length());
    if (i % 4 == 3) {
      w.stream.push_back(ds.ogs[i]);
    } else {
      w.segments[i % kNumVideos].decomposition.object_graphs.push_back(
          ds.ogs[i]);
    }
  }
  for (auto& seg : w.segments) seg.num_frames = frames;
  auto all = ds.Sequences(synth::SynthScaling());
  w.queries.assign(all.begin(),
                   all.begin() + std::min<size_t>(64, all.size()));
  return w;
}

index::StrgIndexParams IndexParams() {
  index::StrgIndexParams p;
  p.num_clusters = 8;
  p.cluster_params.max_iterations = 10;
  return p;
}

/// One deterministic request decided by the driver's seeded RNG.
struct Request {
  enum Kind { kKnn, kRange, kActive, kIngest } kind;
  size_t query;  // index into queries / stream
  size_t video;  // kActive / kIngest target
};

Request PickRequest(std::mt19937* rng, const Workload& w) {
  std::uniform_int_distribution<int> pct(0, 99);
  Request r;
  int op = pct(*rng);
  if (op < 85) {
    r.kind = Request::kKnn;
  } else if (op < 90) {
    r.kind = Request::kRange;
  } else if (op < 95) {
    r.kind = Request::kActive;
  } else {
    r.kind = Request::kIngest;
  }
  r.query = std::uniform_int_distribution<size_t>(
      0, (r.kind == Request::kIngest ? w.stream.size() : w.queries.size()) -
             1)(*rng);
  r.video =
      std::uniform_int_distribution<size_t>(0, kNumVideos - 1)(*rng);
  return r;
}

api::QuerySpec SpecFor(const Request& r, const Workload& w) {
  switch (r.kind) {
    case Request::kKnn:
      return api::QuerySpec::Similar(w.queries[r.query], kKnnK);
    case Request::kRange:
      return api::QuerySpec::WithinRadius(w.queries[r.query], kRangeRadius);
    default:
      return api::QuerySpec::Active(w.names[r.video], 0, 1 << 20);
  }
}

double PercentileUs(std::vector<double>* lat, double p) {
  if (lat->empty()) return 0.0;
  std::sort(lat->begin(), lat->end());
  size_t idx = static_cast<size_t>(p / 100.0 * (lat->size() - 1) + 0.5);
  return (*lat)[std::min(idx, lat->size() - 1)];
}

/// Feeds the base catalog in a fixed global order (so single and sharded
/// engines assign identical global og ids) and returns per-video segment
/// ids for the ingest ops.
template <typename Engine>
std::vector<int> FeedBase(Engine* engine, const Workload& w) {
  std::vector<int> segment_ids(kNumVideos, -1);
  for (size_t v = 0; v < kNumVideos; ++v) {
    engine->AddVideo(w.names[v], w.segments[v], &segment_ids[v]);
  }
  return segment_ids;
}

struct PhaseResult {
  std::string name;
  size_t clients = 0;
  size_t requests = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  size_t errors = 0;
};

/// Closed loop: C clients, each issuing the next request the moment the
/// previous one completes. Measures sustained throughput at fixed offered
/// concurrency plus client-observed latency percentiles.
template <typename Engine>
PhaseResult RunClosedLoop(const std::string& name, Engine* engine,
                          const std::vector<int>& segment_ids,
                          const Workload& w, size_t clients,
                          size_t requests) {
  std::atomic<size_t> errors{0};
  const size_t per_client = requests / clients;
  std::vector<std::vector<double>> lat(clients);
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::mt19937 rng(2000 + 31 * c);
      server::QueryOptions qo;
      qo.use_cache = false;  // measure scatter work, not cache hits
      lat[c].reserve(per_client);
      for (size_t i = 0; i < per_client; ++i) {
        Request r = PickRequest(&rng, w);
        const auto t0 = Clock::now();
        if (r.kind == Request::kIngest) {
          engine->AddObjectGraph(segment_ids[r.video], w.names[r.video],
                                 w.stream[r.query], synth::SynthScaling());
        } else {
          server::QueryResult qr = engine->Query(SpecFor(r, w), qo);
          if (qr.status != server::StatusCode::kOk) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
        lat[c].push_back(std::chrono::duration<double, std::micro>(
                             Clock::now() - t0)
                             .count());
      }
    });
  }
  for (auto& t : threads) t.join();

  PhaseResult res;
  res.name = name;
  res.clients = clients;
  res.requests = per_client * clients;
  res.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  res.qps = static_cast<double>(res.requests) / res.seconds;
  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  res.p50_us = PercentileUs(&all, 50.0);
  res.p95_us = PercentileUs(&all, 95.0);
  res.p99_us = PercentileUs(&all, 99.0);
  res.errors = errors.load();
  return res;
}

struct OverloadResult {
  double offered_qps = 0.0;
  size_t submitted = 0;
  size_t ok = 0;
  size_t shed_overloaded = 0;
  size_t other = 0;
  double accepted_p99_us = 0.0;
  double p99_bound_us = 0.0;  // admission-cap sojourn bound (Little's law)
};

/// Open loop: a dispatcher paces Submit() calls at a fixed arrival rate
/// regardless of completions (the non-blocking half of the API). Overload
/// must surface as immediate typed kOverloaded, never as unbounded queueing.
OverloadResult RunOpenLoopOverload(server::ShardedQueryEngine* engine,
                                   const Workload& w, double offered_qps,
                                   size_t n_requests, size_t max_pending,
                                   double capacity_qps) {
  OverloadResult res;
  res.offered_qps = offered_qps;
  res.submitted = n_requests;

  std::vector<Clock::time_point> t0(n_requests);
  std::vector<double> ok_lat(n_requests, -1.0);
  std::atomic<size_t> ok{0}, shed{0}, other{0}, done{0};

  std::mt19937 rng(777);
  server::QueryOptions qo;
  qo.use_cache = false;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / offered_qps));
  auto next = Clock::now();
  for (size_t i = 0; i < n_requests; ++i) {
    std::this_thread::sleep_until(next);
    next += interval;
    Request r = PickRequest(&rng, w);
    if (r.kind == Request::kIngest) {  // queries only in the open loop
      r.kind = Request::kKnn;
      r.query %= w.queries.size();  // was drawn from the ingest stream
    }
    t0[i] = Clock::now();
    engine->Submit(SpecFor(r, w), qo,
                   [&, i](const server::QueryResult& qr) {
                     if (qr.status == server::StatusCode::kOk) {
                       ok_lat[i] = std::chrono::duration<double, std::micro>(
                                       Clock::now() - t0[i])
                                       .count();
                       ok.fetch_add(1, std::memory_order_relaxed);
                     } else if (qr.status ==
                                server::StatusCode::kOverloaded) {
                       shed.fetch_add(1, std::memory_order_relaxed);
                     } else {
                       other.fetch_add(1, std::memory_order_relaxed);
                     }
                     done.fetch_add(1, std::memory_order_release);
                   });
  }
  // Completion callbacks fire on runtime workers; wait for the tail.
  for (int spins = 0; done.load(std::memory_order_acquire) < n_requests &&
                      spins < 30000;
       ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<double> accepted;
  for (double us : ok_lat) {
    if (us >= 0.0) accepted.push_back(us);
  }
  res.ok = ok.load();
  res.shed_overloaded = shed.load();
  res.other = other.load();
  res.accepted_p99_us = PercentileUs(&accepted, 99.0);
  // With at most max_pending requests admitted and the engine draining at
  // capacity_qps, an accepted request waits < max_pending/capacity behind
  // the queue; double it for scheduling slop and add a fixed floor.
  res.p99_bound_us =
      2.0 * static_cast<double>(max_pending) / capacity_qps * 1e6 + 1e4;
  return res;
}

bool SameHits(const std::vector<api::VideoDatabase::QueryHit>& a,
              const std::vector<api::VideoDatabase::QueryHit>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].video != b[i].video || a[i].og_id != b[i].og_id ||
        a[i].distance != b[i].distance ||
        a[i].start_frame != b[i].start_frame || a[i].length != b[i].length) {
      return false;
    }
  }
  return true;
}

/// Every pool query answered by both engines, compared field-for-field and
/// bit-for-bit on distances (the scatter-gather exactness contract).
bool CheckEquivalence(const Workload& w, size_t num_shards) {
  server::EngineOptions so;
  so.num_threads = 1;
  server::QueryEngine single(IndexParams(), so);
  server::ShardedEngineOptions sh;
  sh.num_shards = num_shards;
  server::ShardedQueryEngine sharded(IndexParams(), sh);
  FeedBase(&single, w);
  FeedBase(&sharded, w);

  server::QueryOptions qo;
  qo.use_cache = false;
  for (const auto& q : w.queries) {
    auto a = single.Query(api::QuerySpec::Similar(q, kKnnK), qo);
    auto b = sharded.Query(api::QuerySpec::Similar(q, kKnnK), qo);
    if (!SameHits(a.hits, b.hits)) return false;
    a = single.Query(api::QuerySpec::WithinRadius(q, kRangeRadius), qo);
    b = sharded.Query(api::QuerySpec::WithinRadius(q, kRangeRadius), qo);
    if (!SameHits(a.hits, b.hits)) return false;
  }
  for (const auto& name : w.names) {
    auto a = single.Query(api::QuerySpec::Active(name, 0, 1 << 20), qo);
    auto b = sharded.Query(api::QuerySpec::Active(name, 0, 1 << 20), qo);
    if (!SameHits(a.hits, b.hits)) return false;
  }
  return true;
}

void AppendPhaseJson(std::string* out, const PhaseResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"clients\":%zu,\"requests\":%zu,"
                "\"seconds\":%.4f,\"qps\":%.1f,\"p50_us\":%.1f,"
                "\"p95_us\":%.1f,\"p99_us\":%.1f,\"errors\":%zu}",
                r.name.c_str(), r.clients, r.requests, r.seconds, r.qps,
                r.p50_us, r.p95_us, r.p99_us, r.errors);
  out->append(buf);
}

}  // namespace
}  // namespace strg

int main() {
  using namespace strg;
  bench::Banner("BENCH server scatter",
                "sharded scatter-gather vs single engine: closed-loop "
                "throughput, open-loop overload shedding");

  const int scale = std::max(1, bench::EnvInt("STRG_BENCH_SCALE", 1));
  const size_t shards = static_cast<size_t>(
      std::max(1, bench::EnvInt("STRG_BENCH_SHARDS", 4)));
  const unsigned cores = std::thread::hardware_concurrency();
  const size_t clients = static_cast<size_t>(
      std::max(1, bench::EnvInt("STRG_BENCH_CLIENTS",
                                static_cast<int>(std::max(2u, cores)))));
  const size_t closed_requests = 1800 * static_cast<size_t>(scale);

  Workload w = MakeWorkload(scale);
  size_t base_ogs = 0;
  for (const auto& s : w.segments) {
    base_ogs += s.decomposition.object_graphs.size();
  }
  std::cout << "workload: " << kNumVideos << " videos, " << base_ogs
            << " base OGs, " << w.stream.size() << " streamable OGs, "
            << w.queries.size() << " query pool\n"
            << "shards=" << shards << " clients=" << clients
            << " cores=" << cores << " closed-loop requests="
            << closed_requests << "\n\n";

  // -- Phase 0: exactness across shard counts (incl. the headline one). --
  bool equivalent = true;
  for (size_t n : {size_t{2}, shards}) {
    const bool ok = CheckEquivalence(w, n);
    std::cout << "equivalence vs " << n << " shards: "
              << (ok ? "bit-identical" : "MISMATCH") << "\n";
    equivalent = equivalent && ok;
  }

  // -- Phase 1: closed-loop baseline (one engine, one snapshot chain). --
  PhaseResult single;
  {
    server::EngineOptions so;
    so.num_threads = 0;  // hardware concurrency
    so.max_pending = 4096;
    server::QueryEngine engine(IndexParams(), so);
    auto ids = FeedBase(&engine, w);
    single = RunClosedLoop("single_closed", &engine, ids, w, clients,
                           closed_requests);
  }
  std::cout << "single_closed:  " << single.qps << " qps, p99 "
            << single.p99_us << " us, errors " << single.errors << "\n";

  // -- Phase 2: the same replay, scatter-gathered over the shards. --
  PhaseResult sharded;
  {
    server::ShardedEngineOptions sh;
    sh.num_shards = shards;
    sh.max_pending = 4096;
    server::ShardedQueryEngine engine(IndexParams(), sh);
    auto ids = FeedBase(&engine, w);
    sharded = RunClosedLoop("sharded_closed", &engine, ids, w, clients,
                            closed_requests);
  }
  std::cout << "sharded_closed: " << sharded.qps << " qps, p99 "
            << sharded.p99_us << " us, errors " << sharded.errors << "\n";

  const double speedup = sharded.qps / single.qps;
  const double p99_ratio =
      single.p99_us > 0.0 ? sharded.p99_us / single.p99_us : 0.0;

  // -- Phase 3: open loop at 2x the measured sharded capacity. --
  OverloadResult over;
  const size_t over_pending = 64;
  {
    server::ShardedEngineOptions sh;
    sh.num_shards = shards;
    sh.max_pending = over_pending;
    server::ShardedQueryEngine engine(IndexParams(), sh);
    FeedBase(&engine, w);
    const double offered = 2.0 * sharded.qps;
    const size_t n = std::min<size_t>(
        static_cast<size_t>(offered * 2.0) + 1, 20000);
    over = RunOpenLoopOverload(&engine, w, offered, n, over_pending,
                               sharded.qps);
  }
  std::cout << "sharded_overload: offered " << over.offered_qps
            << " qps -> ok " << over.ok << ", shed(kOverloaded) "
            << over.shed_overloaded << ", other " << over.other
            << ", accepted p99 " << over.accepted_p99_us << " us (bound "
            << over.p99_bound_us << ")\n";

  // -- SLOs. The parallel-speedup target needs cores to parallelize over:
  // on a single-core host the scatter still must not *lose* (and overload
  // shedding / exactness still apply), but >= 2x is marked n/a.
  const bool speedup_applicable = cores >= 2 && shards >= 4;
  const bool slo_speedup = speedup >= 2.0;
  const bool slo_p99 = p99_ratio <= 1.10 || sharded.p99_us <= single.p99_us;
  const bool slo_shed_typed = over.shed_overloaded > 0 && over.other == 0;
  const bool slo_p99_bounded = over.accepted_p99_us <= over.p99_bound_us;

  char head[256];
  std::snprintf(head, sizeof(head),
                "{\"bench\":\"server_scatter\",\"simd_tier\":\"%s\","
                "\"shards\":%zu,"
                "\"hardware_concurrency\":%u,\"clients\":%zu,"
                "\"equivalent\":%s,",
                dist::simd::TierName(dist::simd::ActiveTier()), shards, cores,
                clients, equivalent ? "true" : "false");
  std::string json = head;
  AppendPhaseJson(&json, single);
  json.push_back(',');
  AppendPhaseJson(&json, sharded);
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      ",\"speedup_sharded_vs_single\":%.3f,\"p99_ratio\":%.3f,"
      "\"overload\":{\"offered_qps\":%.1f,\"submitted\":%zu,\"ok\":%zu,"
      "\"shed_overloaded\":%zu,\"other_errors\":%zu,"
      "\"accepted_p99_us\":%.1f,\"p99_bound_us\":%.1f,"
      "\"max_pending\":%zu},"
      "\"slo\":{\"speedup_target\":2.0,\"speedup_ok\":%s,"
      "\"speedup_applicable\":%s,\"equal_p99_ok\":%s,"
      "\"shed_typed_ok\":%s,\"overload_p99_bounded_ok\":%s}}",
      speedup, p99_ratio, over.offered_qps, over.submitted, over.ok,
      over.shed_overloaded, over.other, over.accepted_p99_us,
      over.p99_bound_us, over_pending, slo_speedup ? "true" : "false",
      speedup_applicable ? "true" : "false", slo_p99 ? "true" : "false",
      slo_shed_typed ? "true" : "false",
      slo_p99_bounded ? "true" : "false");
  json.append(buf);

  std::cout << "\n" << json << "\n";
  std::ofstream out("BENCH_server_sharded.json");
  out << json << "\n";
  std::cout << "report written to BENCH_server_sharded.json\n"
            << "speedup (sharded_closed vs single_closed): " << speedup
            << "x on " << shards << " shards, " << cores << " core(s)"
            << (speedup_applicable
                    ? "  [acceptance: >= 2x at equal p99]"
                    : "  [>= 2x SLO n/a: needs >= 2 cores and >= 4 shards]")
            << "\n";
  return equivalent ? 0 : 1;
}
