// Load driver for the serving layer (src/server): replays a mixed
// query/ingest workload against the QueryEngine at configurable driver
// thread counts and reports QPS, latency percentiles, and cache hit rate
// as JSON (stdout + BENCH_server.json).
//
// Phases (each on a freshly built engine so metrics are per-phase):
//   serial_direct      — 1 thread, raw api::VideoDatabase replay: no server,
//                        no cache. The single-threaded baseline.
//   server_1thread     — 1 driver through the QueryEngine, cache on.
//   server_multithread — STRG_BENCH_THREADS drivers (default 8), cache on.
//   server_multithread_nocache — same drivers, cache off (honesty check:
//                        isolates what the cache vs. concurrency buys).
//
// Workload: zipf-ish repetition (90% of queries from a hot set of 8, rest
// uniform over a 64-query pool), 90% kNN / 5% range / 5% temporal-window,
// and 1% ingest ops interleaved (each publishing a new index generation,
// which re-keys the result cache). All phases replay the identical mix so
// the QPS comparison is apples-to-apples.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/query_engine.h"
#include "synth/generator.h"

namespace strg {
namespace {

using Clock = std::chrono::steady_clock;

struct Workload {
  api::SegmentResult segment;           // base OGs, indexed at phase start
  std::vector<core::Og> stream;         // OGs ingest ops draw from
  std::vector<dist::Sequence> queries;  // probe pool
};

Workload MakeWorkload(size_t base) {
  synth::SynthParams sp;
  sp.items_per_cluster = 4;  // 48 patterns * 4 = 192 OGs
  sp.seed = 1234;
  synth::SynthDataset ds = synth::GenerateSyntheticOgs(sp);

  Workload w;
  w.segment.frame_width = 100;
  w.segment.frame_height = 100;
  size_t frames = 0;
  for (size_t i = 0; i < ds.ogs.size(); ++i) {
    frames = std::max(frames, static_cast<size_t>(ds.ogs[i].start_frame) +
                                  ds.ogs[i].Length());
    if (i < base) {
      w.segment.decomposition.object_graphs.push_back(ds.ogs[i]);
    } else {
      w.stream.push_back(ds.ogs[i]);
    }
  }
  w.segment.num_frames = frames;
  auto all = ds.Sequences(synth::SynthScaling());
  w.queries.assign(all.begin(), all.begin() + std::min<size_t>(64, all.size()));
  return w;
}

index::StrgIndexParams IndexParams() {
  index::StrgIndexParams p;
  p.num_clusters = 8;
  p.cluster_params.max_iterations = 10;
  return p;
}

/// One deterministic request decided by (phase_seed, request index).
struct Request {
  enum Kind { kKnn, kRange, kActive, kIngest } kind;
  size_t query;  // index into Workload::queries / stream
};

Request PickRequest(std::mt19937* rng, const Workload& w, bool allow_ingest) {
  std::uniform_int_distribution<int> pct(0, 99);
  Request r;
  int op = pct(*rng);
  if (allow_ingest && op < 1) {
    r.kind = Request::kIngest;
    r.query = std::uniform_int_distribution<size_t>(
        0, w.stream.size() - 1)(*rng);
    return r;
  }
  if (op < 91) {
    r.kind = Request::kKnn;
  } else if (op < 96) {
    r.kind = Request::kRange;
  } else {
    r.kind = Request::kActive;
  }
  // 90% of queries come from a hot set of 8 -> repeated requests that a
  // result cache can serve.
  if (pct(*rng) < 90) {
    r.query = std::uniform_int_distribution<size_t>(0, 7)(*rng);
  } else {
    r.query = std::uniform_int_distribution<size_t>(
        0, w.queries.size() - 1)(*rng);
  }
  return r;
}

constexpr size_t kKnnK = 10;
constexpr double kRangeRadius = 2.0;

struct PhaseResult {
  std::string name;
  size_t threads = 0;
  size_t requests = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double hit_rate = 0.0;
  double knn_p50_us = 0.0;
  double knn_p95_us = 0.0;
  double knn_p99_us = 0.0;
  size_t errors = 0;  // non-OK statuses (should stay 0 at these bounds)
};

/// Serial replay against the bare database: the no-server baseline.
PhaseResult RunSerialDirect(const Workload& w, size_t requests) {
  api::VideoDatabase db{IndexParams()};
  db.AddVideo("lab1", w.segment);

  std::mt19937 rng(99);
  const auto start = Clock::now();
  size_t sink = 0;
  for (size_t i = 0; i < requests; ++i) {
    Request r = PickRequest(&rng, w, /*allow_ingest=*/true);
    switch (r.kind) {
      case Request::kKnn:
        sink += db.FindSimilar(w.queries[r.query], kKnnK).size();
        break;
      case Request::kRange:
        sink += db.FindWithinRadius(w.queries[r.query], kRangeRadius).size();
        break;
      case Request::kActive:
        sink += db.FindActive("lab1", 0, 1 << 20).size();
        break;
      case Request::kIngest:
        db.AddObjectGraph(0, "lab1", w.stream[r.query],
                          synth::SynthScaling());
        break;
    }
  }
  PhaseResult res;
  res.name = "serial_direct";
  res.threads = 1;
  res.requests = requests;
  res.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  res.qps = static_cast<double>(requests) / res.seconds;
  if (sink == SIZE_MAX) std::cout << "";  // keep the work observable
  return res;
}

PhaseResult RunServerPhase(const std::string& name, const Workload& w,
                           size_t drivers, size_t requests, bool use_cache) {
  server::EngineOptions opts;
  opts.num_threads =
      std::max<size_t>(2, std::thread::hardware_concurrency());
  opts.max_pending = 512;
  server::QueryEngine engine(IndexParams(), opts);
  int segment_id = -1;
  engine.AddVideo("lab1", w.segment, &segment_id);

  std::atomic<size_t> errors{0};
  const size_t per_driver = requests / drivers;
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (size_t t = 0; t < drivers; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(1000 + 17 * t);
      server::QueryOptions qo;
      qo.use_cache = use_cache;
      for (size_t i = 0; i < per_driver; ++i) {
        Request r = PickRequest(&rng, w, /*allow_ingest=*/true);
        server::QueryResult qr;
        switch (r.kind) {
          case Request::kKnn:
            qr = engine.FindSimilar(w.queries[r.query], kKnnK, qo);
            break;
          case Request::kRange:
            qr = engine.FindWithinRadius(w.queries[r.query], kRangeRadius,
                                         qo);
            break;
          case Request::kActive:
            qr = engine.FindActive("lab1", 0, 1 << 20, qo);
            break;
          case Request::kIngest:
            engine.AddObjectGraph(segment_id, "lab1", w.stream[r.query],
                                  synth::SynthScaling());
            continue;
        }
        if (qr.status != server::StatusCode::kOk) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  PhaseResult res;
  res.name = name;
  res.threads = drivers;
  res.requests = per_driver * drivers;
  res.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  res.qps = static_cast<double>(res.requests) / res.seconds;
  const server::ServerMetrics& m = engine.metrics();
  res.hit_rate = m.CacheHitRate();
  res.knn_p50_us = m.knn_latency.PercentileMicros(50.0);
  res.knn_p95_us = m.knn_latency.PercentileMicros(95.0);
  res.knn_p99_us = m.knn_latency.PercentileMicros(99.0);
  res.errors = errors.load();
  return res;
}

void AppendPhaseJson(std::string* out, const PhaseResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"threads\":%zu,\"requests\":%zu,"
                "\"seconds\":%.4f,\"qps\":%.1f,\"cache_hit_rate\":%.4f,"
                "\"knn_p50_us\":%.1f,\"knn_p95_us\":%.1f,"
                "\"knn_p99_us\":%.1f,\"errors\":%zu}",
                r.name.c_str(), r.threads, r.requests, r.seconds, r.qps,
                r.hit_rate, r.knn_p50_us, r.knn_p95_us, r.knn_p99_us,
                r.errors);
  out->append(buf);
}

}  // namespace
}  // namespace strg

int main() {
  using namespace strg;
  bench::Banner("BENCH server",
                "serving-layer throughput: mixed query/ingest replay "
                "through server::QueryEngine");

  const int scale = std::max(1, bench::EnvInt("STRG_BENCH_SCALE", 1));
  const size_t drivers = static_cast<size_t>(
      std::max(1, bench::EnvInt("STRG_BENCH_THREADS", 4)));
  const size_t serial_requests = 400 * static_cast<size_t>(scale);
  const size_t multi_requests = 4000 * static_cast<size_t>(scale);

  Workload w = MakeWorkload(/*base=*/128);
  std::cout << "workload: " << w.segment.decomposition.object_graphs.size()
            << " base OGs, " << w.stream.size() << " streamable OGs, "
            << w.queries.size() << " query pool (hot set 8)\n"
            << "phases: serial=" << serial_requests
            << " reqs, server=" << multi_requests << " reqs, drivers="
            << drivers << "\n";

  PhaseResult serial = RunSerialDirect(w, serial_requests);
  PhaseResult one =
      RunServerPhase("server_1thread", w, 1, serial_requests, true);
  PhaseResult multi =
      RunServerPhase("server_multithread", w, drivers, multi_requests, true);
  PhaseResult nocache = RunServerPhase("server_multithread_nocache", w,
                                       drivers, serial_requests, false);

  const double speedup = multi.qps / serial.qps;

  // Machine-readable context every BENCH_server*.json must carry (a
  // scripts/strg_lint.py rule): shard count and the host's concurrency, so
  // runs are comparable across machines and against the sharded bench.
  char ctx[160];
  std::snprintf(ctx, sizeof(ctx),
                "\"simd_tier\":\"%s\",\"shards\":1,"
                "\"hardware_concurrency\":%u,",
                dist::simd::TierName(dist::simd::ActiveTier()),
                std::thread::hardware_concurrency());
  std::string json = std::string("{\"bench\":\"server_throughput\",") + ctx;
  AppendPhaseJson(&json, serial);
  json.push_back(',');
  AppendPhaseJson(&json, one);
  json.push_back(',');
  AppendPhaseJson(&json, multi);
  json.push_back(',');
  AppendPhaseJson(&json, nocache);
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                ",\"speedup_multi_vs_serial\":%.2f}", speedup);
  json.append(buf);

  std::cout << json << "\n";
  std::ofstream out("BENCH_server.json");
  out << json << "\n";
  std::cout << "report written to BENCH_server.json\n"
            << "speedup (server_multithread vs serial_direct): " << speedup
            << "x  [acceptance: >= 3x via result cache on repeated "
               "queries]\n";
  return 0;
}
