// Reproduces Table 1: description of the four camera streams.
//
// The paper captured ~45 hours of real video (Lab1/Lab2/Traffic1/Traffic2)
// with 956 OGs in total. We simulate the four streams with the synthetic
// renderer: the same stationary-camera setting, matched object (OG) counts,
// and matched lab/traffic movement regimes. Wall-clock duration is not
// simulated 1:1 — the paper's hours are dominated by idle time between
// events, which carries no information for the index; the row reports the
// simulated frame count instead, next to the paper's figures.

#include <iostream>

#include "bench_common.h"
#include "util/table.h"
#include "video_bench.h"

int main() {
  using namespace strg;
  bench::Banner("Table 1", "description of the (simulated) video streams");
  const int divisor = bench::Table1Divisor();
  std::cout << "scale divisor " << divisor
            << " (STRG_VIDEO_DIVISOR=1 or STRG_BENCH_FULL=1 for the paper's"
               " OG counts)\n\n";

  const int paper_ogs[4] = {411, 147, 195, 203};
  const char* paper_durations[4] = {"40h 38m", "4h 12m", "15m", "12m"};

  Table table({"Video", "#objects", "#OGs found", "paper #OGs", "frames",
               "paper duration", "pipeline time"});
  auto runs = bench::RunTable1Videos(divisor);
  size_t total_ogs = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    const bench::VideoRun& run = runs[i];
    size_t ogs = run.result.decomposition.object_graphs.size();
    total_ogs += ogs;
    table.AddRow({run.name, std::to_string(run.scene.objects.size()),
                  std::to_string(ogs), std::to_string(paper_ogs[i] / divisor),
                  std::to_string(run.scene.num_frames), paper_durations[i],
                  FormatDouble(run.pipeline_seconds, 2) + "s"});
  }
  table.Print(std::cout);
  bench::JsonReport report("BENCH_table1.json");
  report.AddTable("table1_streams", table);
  report.AddScalar("total_ogs", static_cast<double>(total_ogs));
  report.AddScalar("divisor", divisor);
  report.Write();
  std::cout << "\nTotal OGs: " << total_ogs << " (paper: 956 at divisor 1)\n";
  std::cout << "\nExpected shape: the pipeline recovers approximately one OG"
               " per scene object\n(tracking + ORG merging working end to"
               " end), with lab streams contributing most OGs.\n";
  return 0;
}
