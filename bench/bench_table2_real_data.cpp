// Reproduces Table 2: per-stream clustering error rate (EM-EGED), the
// optimal vs BIC-found number of clusters, and STRG vs STRG-Index size.
//
// Paper shapes: traffic streams cluster with lower error than lab streams
// (more uniform motion); the BIC-found K is close to the true pattern
// count; the STRG-Index is 10-15x smaller than the raw STRG (Section 5.4,
// Equations 9 and 10).

#include <iostream>

#include "bench_common.h"
#include "cluster/bic.h"
#include "cluster/em.h"
#include "cluster/metrics.h"
#include "distance/eged.h"
#include "index/strg_index.h"
#include "util/table.h"
#include "video_bench.h"

int main() {
  using namespace strg;
  bench::Banner("Table 2", "clustering error, cluster counts, index size");
  const int divisor = bench::Table1Divisor();
  auto runs = bench::RunTable1Videos(divisor);
  dist::EgedDistance eged;

  Table table({"Video", "EM-EGED err%", "paper err%", "Optimal K", "Found K",
               "STRG size", "STRG-Idx size", "ratio", "paper ratio"});
  const double paper_err[4] = {16.8, 14.4, 8.8, 9.5};
  const double paper_ratio[4] = {72.2 / 0.4, 6.4 / 0.1, 1.4 / 0.2, 1.2 / 0.2};

  double lab_err_sum = 0, traffic_err_sum = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    const bench::VideoRun& run = runs[i];
    auto seqs = run.result.ObjectSequences();

    // Dense-remap the ground-truth categories.
    std::vector<int> truth = run.og_labels;
    {
      std::vector<int> mapping;
      for (int& l : truth) {
        int found = -1;
        for (size_t m = 0; m < mapping.size(); ++m) {
          if (mapping[m] == l) found = static_cast<int>(m);
        }
        if (found < 0) {
          mapping.push_back(l);
          found = static_cast<int>(mapping.size()) - 1;
        }
        l = found;
      }
    }

    cluster::ClusterParams cp;
    cp.max_iterations = 12;
    cp.restarts = 5;
    auto model = cluster::EmCluster(
        seqs, static_cast<size_t>(run.num_categories), eged, cp);
    double err = cluster::ClusteringErrorRate(model.assignment, truth);
    if (run.traffic) {
      traffic_err_sum += err;
    } else {
      lab_err_sum += err;
    }

    auto sweep = cluster::FindOptimalK(
        seqs, 1, std::min<size_t>(15, seqs.size()), eged, cp);

    // Sizes: Eq. 9 for the raw STRG, the built index for Eq. 10.
    size_t strg_size = core::PaperStrgSizeBytes(run.result.decomposition,
                                                run.result.num_frames);
    index::StrgIndexParams ip;
    ip.num_clusters = sweep.best_k;
    ip.cluster_params.max_iterations = 8;
    index::StrgIndex idx(ip);
    idx.AddSegment(run.result.decomposition.background, seqs);
    size_t index_size = idx.SizeBytes();

    table.AddRow({run.name, FormatDouble(err, 1), FormatDouble(paper_err[i], 1),
                  std::to_string(run.num_categories),
                  std::to_string(sweep.best_k), FormatBytes(strg_size),
                  FormatBytes(index_size),
                  FormatDouble(static_cast<double>(strg_size) /
                                   static_cast<double>(index_size),
                               1) + "x",
                  FormatDouble(paper_ratio[i], 1) + "x"});
  }
  table.Print(std::cout);

  bench::JsonReport report("BENCH_table2.json");
  report.AddTable("table2_per_stream", table);
  report.AddScalar("lab_avg_err_pct", lab_err_sum / 2);
  report.AddScalar("traffic_avg_err_pct", traffic_err_sum / 2);
  report.Write();

  std::cout << "\nLab avg error: " << FormatDouble(lab_err_sum / 2, 1)
            << "%  Traffic avg error: " << FormatDouble(traffic_err_sum / 2, 1)
            << "%\n";
  std::cout << "\nExpected shapes (paper): traffic error < lab error; found K"
               " within ~1 of the optimal K;\nSTRG-Index an order of"
               " magnitude smaller than the raw STRG.\n";
  return 0;
}
