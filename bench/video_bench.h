#ifndef STRG_BENCH_VIDEO_BENCH_H_
#define STRG_BENCH_VIDEO_BENCH_H_

#include <cmath>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "util/timer.h"
#include "video/scenes.h"

namespace strg::bench {

/// One simulated camera stream standing in for a Table 1 video, processed
/// end-to-end through the STRG pipeline.
struct VideoRun {
  std::string name;
  bool traffic = false;
  video::SceneSpec scene;
  api::SegmentResult result;
  double pipeline_seconds = 0.0;
  std::vector<int> og_labels;  ///< ground-truth motion category per OG
  int num_categories = 0;      ///< distinct categories present in the scene
};

/// Ground-truth motion category of a scene object: U-turns are their own
/// class; straight movers are bucketed by direction octant. This mirrors
/// how the paper hand-labeled the "pre-defined moving patterns" of its
/// real streams for the Table 2 error rates.
inline int ObjectCategory(const video::ObjectSpec& obj) {
  const auto& wps = obj.path.waypoints();
  video::Point a = wps.front(), b = wps.back();
  double net = video::Distance(a, b);
  if (obj.path.Length() > 0.0 && net < 0.5 * obj.path.Length()) {
    return 8;  // U-turn
  }
  double ang = std::atan2(b.y - a.y, b.x - a.x);  // (-pi, pi]
  int oct = static_cast<int>(std::floor((ang + M_PI) / (M_PI / 4.0)));
  if (oct < 0) oct = 0;
  if (oct > 7) oct = 7;
  return oct;
}

/// Matches an extracted OG back to the scene object it came from (closest
/// mean trajectory distance over the OG's frame span).
inline int MatchObject(const core::Og& og, const video::SceneSpec& scene) {
  int best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t o = 0; o < scene.objects.size(); ++o) {
    const video::ObjectSpec& obj = scene.objects[o];
    double acc = 0.0;
    int n = 0;
    for (size_t i = 0; i < og.sequence.size(); ++i) {
      int f = og.start_frame + static_cast<int>(i);
      if (!obj.ActiveAt(f)) continue;
      video::Point p = obj.PositionAt(f);
      acc += std::hypot(og.sequence[i].cx - p.x, og.sequence[i].cy - p.y);
      ++n;
    }
    if (n < static_cast<int>(og.sequence.size()) / 2) continue;
    double mean = acc / n;
    if (mean < best_d) {
      best_d = mean;
      best = static_cast<int>(o);
    }
  }
  return best;
}

/// Renders + processes one simulated stream and derives ground truth.
inline VideoRun RunVideo(const std::string& name, bool traffic,
                         int num_objects, uint64_t seed) {
  VideoRun run;
  run.name = name;
  run.traffic = traffic;

  video::SceneParams sp;
  sp.num_objects = num_objects;
  sp.object_lifetime = 20;
  // Lab people overlap in time (occlusions and track breaks are what made
  // the paper's lab streams harder to cluster than the uniform traffic);
  // the spawn gap still leaves idle background frames between most events.
  sp.spawn_gap = traffic ? 24 : 40;
  if (traffic) sp.height = 100;  // room for 2 directions x 3 lanes
  sp.noise_stddev = 0.0;  // fast path; the mean-shift path is exercised in
                          // tests and examples
  sp.seed = seed;
  run.scene = traffic ? video::MakeTrafficScene(sp) : video::MakeLabScene(sp);

  api::PipelineParams pp;
  pp.segmenter.use_mean_shift = false;
  Timer t;
  run.result = api::ProcessScene(run.scene, pp);
  run.pipeline_seconds = t.Seconds();

  // Ground truth: map each OG back to its source object and take that
  // object's route (the scene's motion-pattern id); the octant heuristic is
  // the fallback for unmatched OGs.
  for (const core::Og& og : run.result.decomposition.object_graphs) {
    int obj = MatchObject(og, run.scene);
    run.og_labels.push_back(
        obj < 0 ? 99 : run.scene.objects[static_cast<size_t>(obj)].route);
  }
  // Count distinct categories present.
  std::vector<int> seen;
  for (int l : run.og_labels) {
    bool found = false;
    for (int s : seen) {
      if (s == l) found = true;
    }
    if (!found) seen.push_back(l);
  }
  run.num_categories = static_cast<int>(seen.size());
  return run;
}

/// The four Table 1 streams at a configurable scale (1 = paper's OG
/// counts; larger divisors shrink the workload).
inline std::vector<VideoRun> RunTable1Videos(int divisor) {
  auto n = [&](int paper_count) {
    return std::max(8, paper_count / divisor);
  };
  std::vector<VideoRun> runs;
  runs.push_back(RunVideo("Lab1", false, n(411), 101));
  runs.push_back(RunVideo("Lab2", false, n(147), 202));
  runs.push_back(RunVideo("Traffic1", true, n(195), 303));
  runs.push_back(RunVideo("Traffic2", true, n(203), 404));
  return runs;
}

inline int Table1Divisor() {
  return EnvInt("STRG_VIDEO_DIVISOR", FullScale() ? 1 : 2);
}

}  // namespace strg::bench

#endif  // STRG_BENCH_VIDEO_BENCH_H_
