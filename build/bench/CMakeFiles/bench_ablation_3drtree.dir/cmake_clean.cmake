file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_3drtree.dir/bench_ablation_3drtree.cpp.o"
  "CMakeFiles/bench_ablation_3drtree.dir/bench_ablation_3drtree.cpp.o.d"
  "bench_ablation_3drtree"
  "bench_ablation_3drtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_3drtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
