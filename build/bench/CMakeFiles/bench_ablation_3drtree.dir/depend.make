# Empty dependencies file for bench_ablation_3drtree.
# This may be replaced when dependencies are built.
