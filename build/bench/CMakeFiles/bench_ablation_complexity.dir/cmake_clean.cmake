file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_complexity.dir/bench_ablation_complexity.cpp.o"
  "CMakeFiles/bench_ablation_complexity.dir/bench_ablation_complexity.cpp.o.d"
  "bench_ablation_complexity"
  "bench_ablation_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
