# Empty compiler generated dependencies file for bench_ablation_tracking.
# This may be replaced when dependencies are built.
