# Empty dependencies file for bench_fig6_em_vs_kmeans.
# This may be replaced when dependencies are built.
