file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_indexing.dir/bench_fig7_indexing.cpp.o"
  "CMakeFiles/bench_fig7_indexing.dir/bench_fig7_indexing.cpp.o.d"
  "bench_fig7_indexing"
  "bench_fig7_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
