# Empty dependencies file for bench_fig7_indexing.
# This may be replaced when dependencies are built.
