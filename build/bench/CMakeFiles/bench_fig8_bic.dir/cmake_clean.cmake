file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_bic.dir/bench_fig8_bic.cpp.o"
  "CMakeFiles/bench_fig8_bic.dir/bench_fig8_bic.cpp.o.d"
  "bench_fig8_bic"
  "bench_fig8_bic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
