# Empty dependencies file for bench_fig8_bic.
# This may be replaced when dependencies are built.
