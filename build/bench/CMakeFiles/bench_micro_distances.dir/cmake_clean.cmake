file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_distances.dir/bench_micro_distances.cpp.o"
  "CMakeFiles/bench_micro_distances.dir/bench_micro_distances.cpp.o.d"
  "bench_micro_distances"
  "bench_micro_distances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_distances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
