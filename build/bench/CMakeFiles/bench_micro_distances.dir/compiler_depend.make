# Empty compiler generated dependencies file for bench_micro_distances.
# This may be replaced when dependencies are built.
