# Empty dependencies file for bench_table1_videos.
# This may be replaced when dependencies are built.
