file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_real_data.dir/bench_table2_real_data.cpp.o"
  "CMakeFiles/bench_table2_real_data.dir/bench_table2_real_data.cpp.o.d"
  "bench_table2_real_data"
  "bench_table2_real_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_real_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
