file(REMOVE_RECURSE
  "CMakeFiles/strgtool.dir/strgtool.cpp.o"
  "CMakeFiles/strgtool.dir/strgtool.cpp.o.d"
  "strgtool"
  "strgtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strgtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
