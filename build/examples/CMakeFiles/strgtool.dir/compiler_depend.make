# Empty compiler generated dependencies file for strgtool.
# This may be replaced when dependencies are built.
