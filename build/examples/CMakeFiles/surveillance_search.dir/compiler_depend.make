# Empty compiler generated dependencies file for surveillance_search.
# This may be replaced when dependencies are built.
