# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("video")
subdirs("segment")
subdirs("graph")
subdirs("strg")
subdirs("distance")
subdirs("cluster")
subdirs("synth")
subdirs("storage")
subdirs("eval")
subdirs("index")
subdirs("mtree")
subdirs("rtree3d")
subdirs("core")
