
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/bic.cpp" "src/cluster/CMakeFiles/strg_cluster.dir/bic.cpp.o" "gcc" "src/cluster/CMakeFiles/strg_cluster.dir/bic.cpp.o.d"
  "/root/repo/src/cluster/centroid.cpp" "src/cluster/CMakeFiles/strg_cluster.dir/centroid.cpp.o" "gcc" "src/cluster/CMakeFiles/strg_cluster.dir/centroid.cpp.o.d"
  "/root/repo/src/cluster/em.cpp" "src/cluster/CMakeFiles/strg_cluster.dir/em.cpp.o" "gcc" "src/cluster/CMakeFiles/strg_cluster.dir/em.cpp.o.d"
  "/root/repo/src/cluster/khm.cpp" "src/cluster/CMakeFiles/strg_cluster.dir/khm.cpp.o" "gcc" "src/cluster/CMakeFiles/strg_cluster.dir/khm.cpp.o.d"
  "/root/repo/src/cluster/kmeans.cpp" "src/cluster/CMakeFiles/strg_cluster.dir/kmeans.cpp.o" "gcc" "src/cluster/CMakeFiles/strg_cluster.dir/kmeans.cpp.o.d"
  "/root/repo/src/cluster/metrics.cpp" "src/cluster/CMakeFiles/strg_cluster.dir/metrics.cpp.o" "gcc" "src/cluster/CMakeFiles/strg_cluster.dir/metrics.cpp.o.d"
  "/root/repo/src/cluster/seeding.cpp" "src/cluster/CMakeFiles/strg_cluster.dir/seeding.cpp.o" "gcc" "src/cluster/CMakeFiles/strg_cluster.dir/seeding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/distance/CMakeFiles/strg_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/strg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/strg/CMakeFiles/strg_strg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/strg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/segment/CMakeFiles/strg_segment.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/strg_video.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
