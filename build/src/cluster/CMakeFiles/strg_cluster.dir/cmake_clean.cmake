file(REMOVE_RECURSE
  "CMakeFiles/strg_cluster.dir/bic.cpp.o"
  "CMakeFiles/strg_cluster.dir/bic.cpp.o.d"
  "CMakeFiles/strg_cluster.dir/centroid.cpp.o"
  "CMakeFiles/strg_cluster.dir/centroid.cpp.o.d"
  "CMakeFiles/strg_cluster.dir/em.cpp.o"
  "CMakeFiles/strg_cluster.dir/em.cpp.o.d"
  "CMakeFiles/strg_cluster.dir/khm.cpp.o"
  "CMakeFiles/strg_cluster.dir/khm.cpp.o.d"
  "CMakeFiles/strg_cluster.dir/kmeans.cpp.o"
  "CMakeFiles/strg_cluster.dir/kmeans.cpp.o.d"
  "CMakeFiles/strg_cluster.dir/metrics.cpp.o"
  "CMakeFiles/strg_cluster.dir/metrics.cpp.o.d"
  "CMakeFiles/strg_cluster.dir/seeding.cpp.o"
  "CMakeFiles/strg_cluster.dir/seeding.cpp.o.d"
  "libstrg_cluster.a"
  "libstrg_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strg_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
