file(REMOVE_RECURSE
  "libstrg_cluster.a"
)
