# Empty dependencies file for strg_cluster.
# This may be replaced when dependencies are built.
