file(REMOVE_RECURSE
  "CMakeFiles/strg_core.dir/persistence.cpp.o"
  "CMakeFiles/strg_core.dir/persistence.cpp.o.d"
  "CMakeFiles/strg_core.dir/pipeline.cpp.o"
  "CMakeFiles/strg_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/strg_core.dir/video_database.cpp.o"
  "CMakeFiles/strg_core.dir/video_database.cpp.o.d"
  "libstrg_core.a"
  "libstrg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
