file(REMOVE_RECURSE
  "libstrg_core.a"
)
