# Empty dependencies file for strg_core.
# This may be replaced when dependencies are built.
