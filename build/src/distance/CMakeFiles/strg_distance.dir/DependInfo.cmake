
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/distance/dtw.cpp" "src/distance/CMakeFiles/strg_distance.dir/dtw.cpp.o" "gcc" "src/distance/CMakeFiles/strg_distance.dir/dtw.cpp.o.d"
  "/root/repo/src/distance/edr.cpp" "src/distance/CMakeFiles/strg_distance.dir/edr.cpp.o" "gcc" "src/distance/CMakeFiles/strg_distance.dir/edr.cpp.o.d"
  "/root/repo/src/distance/eged.cpp" "src/distance/CMakeFiles/strg_distance.dir/eged.cpp.o" "gcc" "src/distance/CMakeFiles/strg_distance.dir/eged.cpp.o.d"
  "/root/repo/src/distance/lcs.cpp" "src/distance/CMakeFiles/strg_distance.dir/lcs.cpp.o" "gcc" "src/distance/CMakeFiles/strg_distance.dir/lcs.cpp.o.d"
  "/root/repo/src/distance/lp.cpp" "src/distance/CMakeFiles/strg_distance.dir/lp.cpp.o" "gcc" "src/distance/CMakeFiles/strg_distance.dir/lp.cpp.o.d"
  "/root/repo/src/distance/sequence.cpp" "src/distance/CMakeFiles/strg_distance.dir/sequence.cpp.o" "gcc" "src/distance/CMakeFiles/strg_distance.dir/sequence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/strg/CMakeFiles/strg_strg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/strg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/strg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/segment/CMakeFiles/strg_segment.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/strg_video.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
