file(REMOVE_RECURSE
  "CMakeFiles/strg_distance.dir/dtw.cpp.o"
  "CMakeFiles/strg_distance.dir/dtw.cpp.o.d"
  "CMakeFiles/strg_distance.dir/edr.cpp.o"
  "CMakeFiles/strg_distance.dir/edr.cpp.o.d"
  "CMakeFiles/strg_distance.dir/eged.cpp.o"
  "CMakeFiles/strg_distance.dir/eged.cpp.o.d"
  "CMakeFiles/strg_distance.dir/lcs.cpp.o"
  "CMakeFiles/strg_distance.dir/lcs.cpp.o.d"
  "CMakeFiles/strg_distance.dir/lp.cpp.o"
  "CMakeFiles/strg_distance.dir/lp.cpp.o.d"
  "CMakeFiles/strg_distance.dir/sequence.cpp.o"
  "CMakeFiles/strg_distance.dir/sequence.cpp.o.d"
  "libstrg_distance.a"
  "libstrg_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strg_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
