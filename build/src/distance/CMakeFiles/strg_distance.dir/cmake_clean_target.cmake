file(REMOVE_RECURSE
  "libstrg_distance.a"
)
