# Empty compiler generated dependencies file for strg_distance.
# This may be replaced when dependencies are built.
