file(REMOVE_RECURSE
  "CMakeFiles/strg_eval.dir/retrieval_metrics.cpp.o"
  "CMakeFiles/strg_eval.dir/retrieval_metrics.cpp.o.d"
  "libstrg_eval.a"
  "libstrg_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strg_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
