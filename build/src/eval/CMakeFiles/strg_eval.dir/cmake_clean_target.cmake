file(REMOVE_RECURSE
  "libstrg_eval.a"
)
