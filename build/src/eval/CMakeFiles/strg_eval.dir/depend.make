# Empty dependencies file for strg_eval.
# This may be replaced when dependencies are built.
