
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/common_subgraph.cpp" "src/graph/CMakeFiles/strg_graph.dir/common_subgraph.cpp.o" "gcc" "src/graph/CMakeFiles/strg_graph.dir/common_subgraph.cpp.o.d"
  "/root/repo/src/graph/edit_distance.cpp" "src/graph/CMakeFiles/strg_graph.dir/edit_distance.cpp.o" "gcc" "src/graph/CMakeFiles/strg_graph.dir/edit_distance.cpp.o.d"
  "/root/repo/src/graph/isomorphism.cpp" "src/graph/CMakeFiles/strg_graph.dir/isomorphism.cpp.o" "gcc" "src/graph/CMakeFiles/strg_graph.dir/isomorphism.cpp.o.d"
  "/root/repo/src/graph/neighborhood.cpp" "src/graph/CMakeFiles/strg_graph.dir/neighborhood.cpp.o" "gcc" "src/graph/CMakeFiles/strg_graph.dir/neighborhood.cpp.o.d"
  "/root/repo/src/graph/rag.cpp" "src/graph/CMakeFiles/strg_graph.dir/rag.cpp.o" "gcc" "src/graph/CMakeFiles/strg_graph.dir/rag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/segment/CMakeFiles/strg_segment.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/strg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/strg_video.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
