file(REMOVE_RECURSE
  "CMakeFiles/strg_graph.dir/common_subgraph.cpp.o"
  "CMakeFiles/strg_graph.dir/common_subgraph.cpp.o.d"
  "CMakeFiles/strg_graph.dir/edit_distance.cpp.o"
  "CMakeFiles/strg_graph.dir/edit_distance.cpp.o.d"
  "CMakeFiles/strg_graph.dir/isomorphism.cpp.o"
  "CMakeFiles/strg_graph.dir/isomorphism.cpp.o.d"
  "CMakeFiles/strg_graph.dir/neighborhood.cpp.o"
  "CMakeFiles/strg_graph.dir/neighborhood.cpp.o.d"
  "CMakeFiles/strg_graph.dir/rag.cpp.o"
  "CMakeFiles/strg_graph.dir/rag.cpp.o.d"
  "libstrg_graph.a"
  "libstrg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
