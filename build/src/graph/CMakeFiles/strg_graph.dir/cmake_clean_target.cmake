file(REMOVE_RECURSE
  "libstrg_graph.a"
)
