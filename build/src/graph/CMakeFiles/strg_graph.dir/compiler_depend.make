# Empty compiler generated dependencies file for strg_graph.
# This may be replaced when dependencies are built.
