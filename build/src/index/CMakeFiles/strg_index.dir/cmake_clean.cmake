file(REMOVE_RECURSE
  "CMakeFiles/strg_index.dir/strg_index.cpp.o"
  "CMakeFiles/strg_index.dir/strg_index.cpp.o.d"
  "libstrg_index.a"
  "libstrg_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strg_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
