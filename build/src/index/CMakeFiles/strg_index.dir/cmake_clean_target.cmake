file(REMOVE_RECURSE
  "libstrg_index.a"
)
