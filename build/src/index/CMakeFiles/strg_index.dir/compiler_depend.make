# Empty compiler generated dependencies file for strg_index.
# This may be replaced when dependencies are built.
