file(REMOVE_RECURSE
  "CMakeFiles/strg_mtree.dir/mtree.cpp.o"
  "CMakeFiles/strg_mtree.dir/mtree.cpp.o.d"
  "libstrg_mtree.a"
  "libstrg_mtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strg_mtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
