file(REMOVE_RECURSE
  "libstrg_mtree.a"
)
