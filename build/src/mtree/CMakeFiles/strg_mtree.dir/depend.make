# Empty dependencies file for strg_mtree.
# This may be replaced when dependencies are built.
