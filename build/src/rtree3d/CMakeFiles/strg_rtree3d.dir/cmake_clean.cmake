file(REMOVE_RECURSE
  "CMakeFiles/strg_rtree3d.dir/rtree3d.cpp.o"
  "CMakeFiles/strg_rtree3d.dir/rtree3d.cpp.o.d"
  "libstrg_rtree3d.a"
  "libstrg_rtree3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strg_rtree3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
