file(REMOVE_RECURSE
  "libstrg_rtree3d.a"
)
