# Empty compiler generated dependencies file for strg_rtree3d.
# This may be replaced when dependencies are built.
