
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/segment/connected_components.cpp" "src/segment/CMakeFiles/strg_segment.dir/connected_components.cpp.o" "gcc" "src/segment/CMakeFiles/strg_segment.dir/connected_components.cpp.o.d"
  "/root/repo/src/segment/mean_shift.cpp" "src/segment/CMakeFiles/strg_segment.dir/mean_shift.cpp.o" "gcc" "src/segment/CMakeFiles/strg_segment.dir/mean_shift.cpp.o.d"
  "/root/repo/src/segment/segmenter.cpp" "src/segment/CMakeFiles/strg_segment.dir/segmenter.cpp.o" "gcc" "src/segment/CMakeFiles/strg_segment.dir/segmenter.cpp.o.d"
  "/root/repo/src/segment/shot_detector.cpp" "src/segment/CMakeFiles/strg_segment.dir/shot_detector.cpp.o" "gcc" "src/segment/CMakeFiles/strg_segment.dir/shot_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/video/CMakeFiles/strg_video.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/strg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
