file(REMOVE_RECURSE
  "CMakeFiles/strg_segment.dir/connected_components.cpp.o"
  "CMakeFiles/strg_segment.dir/connected_components.cpp.o.d"
  "CMakeFiles/strg_segment.dir/mean_shift.cpp.o"
  "CMakeFiles/strg_segment.dir/mean_shift.cpp.o.d"
  "CMakeFiles/strg_segment.dir/segmenter.cpp.o"
  "CMakeFiles/strg_segment.dir/segmenter.cpp.o.d"
  "CMakeFiles/strg_segment.dir/shot_detector.cpp.o"
  "CMakeFiles/strg_segment.dir/shot_detector.cpp.o.d"
  "libstrg_segment.a"
  "libstrg_segment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strg_segment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
