file(REMOVE_RECURSE
  "libstrg_segment.a"
)
