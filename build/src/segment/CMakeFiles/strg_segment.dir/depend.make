# Empty dependencies file for strg_segment.
# This may be replaced when dependencies are built.
