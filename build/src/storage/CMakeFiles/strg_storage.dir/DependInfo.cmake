
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cpp" "src/storage/CMakeFiles/strg_storage.dir/catalog.cpp.o" "gcc" "src/storage/CMakeFiles/strg_storage.dir/catalog.cpp.o.d"
  "/root/repo/src/storage/serializer.cpp" "src/storage/CMakeFiles/strg_storage.dir/serializer.cpp.o" "gcc" "src/storage/CMakeFiles/strg_storage.dir/serializer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/strg/CMakeFiles/strg_strg.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/strg_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/strg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/strg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/segment/CMakeFiles/strg_segment.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/strg_video.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
