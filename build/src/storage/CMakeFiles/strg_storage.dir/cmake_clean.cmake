file(REMOVE_RECURSE
  "CMakeFiles/strg_storage.dir/catalog.cpp.o"
  "CMakeFiles/strg_storage.dir/catalog.cpp.o.d"
  "CMakeFiles/strg_storage.dir/serializer.cpp.o"
  "CMakeFiles/strg_storage.dir/serializer.cpp.o.d"
  "libstrg_storage.a"
  "libstrg_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strg_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
