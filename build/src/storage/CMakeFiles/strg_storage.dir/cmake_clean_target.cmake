file(REMOVE_RECURSE
  "libstrg_storage.a"
)
