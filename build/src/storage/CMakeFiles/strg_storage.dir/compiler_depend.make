# Empty compiler generated dependencies file for strg_storage.
# This may be replaced when dependencies are built.
