
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strg/decompose.cpp" "src/strg/CMakeFiles/strg_strg.dir/decompose.cpp.o" "gcc" "src/strg/CMakeFiles/strg_strg.dir/decompose.cpp.o.d"
  "/root/repo/src/strg/object_graph.cpp" "src/strg/CMakeFiles/strg_strg.dir/object_graph.cpp.o" "gcc" "src/strg/CMakeFiles/strg_strg.dir/object_graph.cpp.o.d"
  "/root/repo/src/strg/smoothing.cpp" "src/strg/CMakeFiles/strg_strg.dir/smoothing.cpp.o" "gcc" "src/strg/CMakeFiles/strg_strg.dir/smoothing.cpp.o.d"
  "/root/repo/src/strg/strg.cpp" "src/strg/CMakeFiles/strg_strg.dir/strg.cpp.o" "gcc" "src/strg/CMakeFiles/strg_strg.dir/strg.cpp.o.d"
  "/root/repo/src/strg/tracking.cpp" "src/strg/CMakeFiles/strg_strg.dir/tracking.cpp.o" "gcc" "src/strg/CMakeFiles/strg_strg.dir/tracking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/strg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/strg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/segment/CMakeFiles/strg_segment.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/strg_video.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
