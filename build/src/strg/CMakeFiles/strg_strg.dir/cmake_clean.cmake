file(REMOVE_RECURSE
  "CMakeFiles/strg_strg.dir/decompose.cpp.o"
  "CMakeFiles/strg_strg.dir/decompose.cpp.o.d"
  "CMakeFiles/strg_strg.dir/object_graph.cpp.o"
  "CMakeFiles/strg_strg.dir/object_graph.cpp.o.d"
  "CMakeFiles/strg_strg.dir/smoothing.cpp.o"
  "CMakeFiles/strg_strg.dir/smoothing.cpp.o.d"
  "CMakeFiles/strg_strg.dir/strg.cpp.o"
  "CMakeFiles/strg_strg.dir/strg.cpp.o.d"
  "CMakeFiles/strg_strg.dir/tracking.cpp.o"
  "CMakeFiles/strg_strg.dir/tracking.cpp.o.d"
  "libstrg_strg.a"
  "libstrg_strg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strg_strg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
