file(REMOVE_RECURSE
  "libstrg_strg.a"
)
