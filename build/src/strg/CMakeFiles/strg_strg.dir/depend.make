# Empty dependencies file for strg_strg.
# This may be replaced when dependencies are built.
