file(REMOVE_RECURSE
  "CMakeFiles/strg_synth.dir/generator.cpp.o"
  "CMakeFiles/strg_synth.dir/generator.cpp.o.d"
  "CMakeFiles/strg_synth.dir/patterns.cpp.o"
  "CMakeFiles/strg_synth.dir/patterns.cpp.o.d"
  "libstrg_synth.a"
  "libstrg_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strg_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
