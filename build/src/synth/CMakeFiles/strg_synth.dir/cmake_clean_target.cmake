file(REMOVE_RECURSE
  "libstrg_synth.a"
)
