# Empty compiler generated dependencies file for strg_synth.
# This may be replaced when dependencies are built.
