file(REMOVE_RECURSE
  "CMakeFiles/strg_util.dir/hungarian.cpp.o"
  "CMakeFiles/strg_util.dir/hungarian.cpp.o.d"
  "CMakeFiles/strg_util.dir/random.cpp.o"
  "CMakeFiles/strg_util.dir/random.cpp.o.d"
  "CMakeFiles/strg_util.dir/stats.cpp.o"
  "CMakeFiles/strg_util.dir/stats.cpp.o.d"
  "CMakeFiles/strg_util.dir/table.cpp.o"
  "CMakeFiles/strg_util.dir/table.cpp.o.d"
  "CMakeFiles/strg_util.dir/thread_pool.cpp.o"
  "CMakeFiles/strg_util.dir/thread_pool.cpp.o.d"
  "libstrg_util.a"
  "libstrg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
