file(REMOVE_RECURSE
  "libstrg_util.a"
)
