# Empty dependencies file for strg_util.
# This may be replaced when dependencies are built.
