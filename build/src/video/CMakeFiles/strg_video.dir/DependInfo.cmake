
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/frame.cpp" "src/video/CMakeFiles/strg_video.dir/frame.cpp.o" "gcc" "src/video/CMakeFiles/strg_video.dir/frame.cpp.o.d"
  "/root/repo/src/video/motion.cpp" "src/video/CMakeFiles/strg_video.dir/motion.cpp.o" "gcc" "src/video/CMakeFiles/strg_video.dir/motion.cpp.o.d"
  "/root/repo/src/video/ppm_io.cpp" "src/video/CMakeFiles/strg_video.dir/ppm_io.cpp.o" "gcc" "src/video/CMakeFiles/strg_video.dir/ppm_io.cpp.o.d"
  "/root/repo/src/video/renderer.cpp" "src/video/CMakeFiles/strg_video.dir/renderer.cpp.o" "gcc" "src/video/CMakeFiles/strg_video.dir/renderer.cpp.o.d"
  "/root/repo/src/video/scenes.cpp" "src/video/CMakeFiles/strg_video.dir/scenes.cpp.o" "gcc" "src/video/CMakeFiles/strg_video.dir/scenes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/strg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
