file(REMOVE_RECURSE
  "CMakeFiles/strg_video.dir/frame.cpp.o"
  "CMakeFiles/strg_video.dir/frame.cpp.o.d"
  "CMakeFiles/strg_video.dir/motion.cpp.o"
  "CMakeFiles/strg_video.dir/motion.cpp.o.d"
  "CMakeFiles/strg_video.dir/ppm_io.cpp.o"
  "CMakeFiles/strg_video.dir/ppm_io.cpp.o.d"
  "CMakeFiles/strg_video.dir/renderer.cpp.o"
  "CMakeFiles/strg_video.dir/renderer.cpp.o.d"
  "CMakeFiles/strg_video.dir/scenes.cpp.o"
  "CMakeFiles/strg_video.dir/scenes.cpp.o.d"
  "libstrg_video.a"
  "libstrg_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strg_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
