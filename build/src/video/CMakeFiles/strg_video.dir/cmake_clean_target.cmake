file(REMOVE_RECURSE
  "libstrg_video.a"
)
