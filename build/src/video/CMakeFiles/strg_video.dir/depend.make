# Empty dependencies file for strg_video.
# This may be replaced when dependencies are built.
