file(REMOVE_RECURSE
  "CMakeFiles/bic_test.dir/bic_test.cpp.o"
  "CMakeFiles/bic_test.dir/bic_test.cpp.o.d"
  "bic_test"
  "bic_test.pdb"
  "bic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
