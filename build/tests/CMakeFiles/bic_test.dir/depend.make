# Empty dependencies file for bic_test.
# This may be replaced when dependencies are built.
