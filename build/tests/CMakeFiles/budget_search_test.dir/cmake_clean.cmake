file(REMOVE_RECURSE
  "CMakeFiles/budget_search_test.dir/budget_search_test.cpp.o"
  "CMakeFiles/budget_search_test.dir/budget_search_test.cpp.o.d"
  "budget_search_test"
  "budget_search_test.pdb"
  "budget_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/budget_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
