# Empty compiler generated dependencies file for budget_search_test.
# This may be replaced when dependencies are built.
