file(REMOVE_RECURSE
  "CMakeFiles/eged_property_test.dir/eged_property_test.cpp.o"
  "CMakeFiles/eged_property_test.dir/eged_property_test.cpp.o.d"
  "eged_property_test"
  "eged_property_test.pdb"
  "eged_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eged_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
