# Empty compiler generated dependencies file for eged_property_test.
# This may be replaced when dependencies are built.
