file(REMOVE_RECURSE
  "CMakeFiles/index_remove_test.dir/index_remove_test.cpp.o"
  "CMakeFiles/index_remove_test.dir/index_remove_test.cpp.o.d"
  "index_remove_test"
  "index_remove_test.pdb"
  "index_remove_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_remove_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
