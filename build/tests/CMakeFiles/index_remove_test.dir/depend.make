# Empty dependencies file for index_remove_test.
# This may be replaced when dependencies are built.
