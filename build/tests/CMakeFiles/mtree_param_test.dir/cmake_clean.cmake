file(REMOVE_RECURSE
  "CMakeFiles/mtree_param_test.dir/mtree_param_test.cpp.o"
  "CMakeFiles/mtree_param_test.dir/mtree_param_test.cpp.o.d"
  "mtree_param_test"
  "mtree_param_test.pdb"
  "mtree_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtree_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
