file(REMOVE_RECURSE
  "CMakeFiles/mtree_test.dir/mtree_test.cpp.o"
  "CMakeFiles/mtree_test.dir/mtree_test.cpp.o.d"
  "mtree_test"
  "mtree_test.pdb"
  "mtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
