file(REMOVE_RECURSE
  "CMakeFiles/ppm_io_test.dir/ppm_io_test.cpp.o"
  "CMakeFiles/ppm_io_test.dir/ppm_io_test.cpp.o.d"
  "ppm_io_test"
  "ppm_io_test.pdb"
  "ppm_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
