
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/query_types_test.cpp" "tests/CMakeFiles/query_types_test.dir/query_types_test.cpp.o" "gcc" "tests/CMakeFiles/query_types_test.dir/query_types_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/strg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/strg_index.dir/DependInfo.cmake"
  "/root/repo/build/src/mtree/CMakeFiles/strg_mtree.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree3d/CMakeFiles/strg_rtree3d.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/strg_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/strg_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/strg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/strg_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/strg/CMakeFiles/strg_strg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/strg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/segment/CMakeFiles/strg_segment.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/strg_video.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/strg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/strg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
