file(REMOVE_RECURSE
  "CMakeFiles/query_types_test.dir/query_types_test.cpp.o"
  "CMakeFiles/query_types_test.dir/query_types_test.cpp.o.d"
  "query_types_test"
  "query_types_test.pdb"
  "query_types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
