# Empty dependencies file for query_types_test.
# This may be replaced when dependencies are built.
