file(REMOVE_RECURSE
  "CMakeFiles/rtree3d_test.dir/rtree3d_test.cpp.o"
  "CMakeFiles/rtree3d_test.dir/rtree3d_test.cpp.o.d"
  "rtree3d_test"
  "rtree3d_test.pdb"
  "rtree3d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtree3d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
