file(REMOVE_RECURSE
  "CMakeFiles/scenes_test.dir/scenes_test.cpp.o"
  "CMakeFiles/scenes_test.dir/scenes_test.cpp.o.d"
  "scenes_test"
  "scenes_test.pdb"
  "scenes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
