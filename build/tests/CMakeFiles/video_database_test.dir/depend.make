# Empty dependencies file for video_database_test.
# This may be replaced when dependencies are built.
