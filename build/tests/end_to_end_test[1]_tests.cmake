add_test([=[EndToEnd.MultiShotPersistenceAndRetrieval]=]  /root/repo/build/tests/end_to_end_test [==[--gtest_filter=EndToEnd.MultiShotPersistenceAndRetrieval]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[EndToEnd.MultiShotPersistenceAndRetrieval]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  end_to_end_test_TESTS EndToEnd.MultiShotPersistenceAndRetrieval)
