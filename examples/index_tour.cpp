// Index tour: STRG-Index vs M-tree vs linear scan on the same workload.
//
// A guided walk through the retrieval layer: build all three access paths
// over one set of synthetic OGs and compare the cost (distance
// computations) and the answers of the same k-NN query. The answers must
// agree — both indexes are exact under the metric EGED — while the costs
// show why indexing matters (Section 6.3).

#include <algorithm>
#include <iostream>

#include "distance/eged.h"
#include "index/strg_index.h"
#include "mtree/mtree.h"
#include "synth/generator.h"
#include "util/table.h"

int main() {
  using namespace strg;

  synth::SynthParams params;
  params.items_per_cluster = 12;  // 48 patterns x 12 = 576 OGs
  params.noise_pct = 10.0;
  synth::SynthDataset dataset = synth::GenerateSyntheticOgs(params);
  auto db = dataset.Sequences(synth::SynthScaling());
  std::cout << "Database: " << db.size() << " OGs from "
            << dataset.NumClusters() << " moving patterns\n";

  // Fresh query OGs (not in the database).
  synth::SynthParams qp = params;
  qp.items_per_cluster = 1;
  qp.seed = params.seed + 1;
  auto queries = synth::GenerateSyntheticOgs(qp).Sequences(
      synth::SynthScaling());
  queries.resize(10);

  // --- Build the three access paths. ------------------------------------
  index::StrgIndexParams sx_params;
  sx_params.num_clusters = 48;
  sx_params.cluster_params.max_iterations = 5;
  index::StrgIndex strg_index(sx_params);
  strg_index.AddSegment(core::BackgroundGraph{}, db);

  dist::EgedMetricDistance metric;
  mtree::MTree mtree(&metric);
  for (size_t i = 0; i < db.size(); ++i) mtree.Insert(db[i], i);

  dist::CountingDistance linear(&metric);

  // --- Same query through all three. -------------------------------------
  Table table({"method", "avg distance computations", "top-1 agrees"});
  size_t sx_cost = 0, mt_cost = 0, lin_cost = 0, agree = 0;
  for (const auto& q : queries) {
    auto sx = strg_index.Knn(q, 5);
    auto mt = mtree.Knn(q, 5);

    // Linear scan ground truth.
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    size_t before = linear.count();
    for (size_t i = 0; i < db.size(); ++i) {
      double d = linear(q, db[i]);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    lin_cost += linear.count() - before;
    sx_cost += sx.distance_computations;
    mt_cost += mt.distance_computations;
    if (!sx.hits.empty() && !mt.hits.empty() && sx.hits[0].og_id == best &&
        mt.hits[0].id == best) {
      ++agree;
    }
  }
  auto avg = [&](size_t total) {
    return FormatDouble(static_cast<double>(total) / queries.size(), 1);
  };
  table.AddRow({"linear scan", avg(lin_cost), "-"});
  table.AddRow({"M-tree", avg(mt_cost),
                std::to_string(agree) + "/" + std::to_string(queries.size())});
  table.AddRow({"STRG-Index", avg(sx_cost),
                std::to_string(agree) + "/" + std::to_string(queries.size())});
  table.Print(std::cout);

  std::cout << "\nAll three return the same nearest neighbor; the indexes"
               " just reach it with far\nfewer EGED evaluations — and the"
               " STRG-Index's EM clusters prune best.\n";
  return 0;
}
