// Quickstart: the whole system in ~60 lines.
//
//  1. Render a short synthetic surveillance clip (stand-in for camera
//     frames — plug in your own frames via video::Frame).
//  2. Run the STRG pipeline: segmentation -> RAG -> tracking -> OG/BG
//     decomposition (Sections 2.1-2.3 of the paper).
//  3. Index the extracted object graphs in a VideoDatabase (STRG-Index).
//  4. Ask "what moved like this?" with a k-NN query (Algorithm 3).

#include <iostream>

#include "core/video_database.h"
#include "util/table.h"
#include "video/scenes.h"

int main() {
  using namespace strg;

  // --- 1. A synthetic lab scene: 6 people walking through a room. -------
  video::SceneParams scene_params;
  scene_params.num_objects = 6;
  scene_params.spawn_gap = 28;
  scene_params.noise_stddev = 1.5;
  video::SceneSpec scene = video::MakeLabScene(scene_params);
  std::cout << "Rendered scene: " << scene.num_frames << " frames, "
            << scene.objects.size() << " moving objects\n";

  // --- 2. Frames -> STRG -> object graphs + background graph. -----------
  api::PipelineParams pipeline_params;  // defaults: mean-shift front end
  api::SegmentResult segment = api::ProcessScene(scene, pipeline_params);
  std::cout << "Pipeline extracted "
            << segment.decomposition.object_graphs.size()
            << " object graphs (OGs) and a background graph with "
            << segment.decomposition.background.rag.NumNodes()
            << " regions\n";

  // --- 3. Build the STRG-Index. -----------------------------------------
  index::StrgIndexParams index_params;
  index_params.num_clusters = 3;
  api::VideoDatabase db(index_params);
  db.AddVideo("lab-demo", segment);
  std::cout << "Indexed " << db.NumObjectGraphs() << " OGs; index size "
            << FormatBytes(db.IndexSizeBytes()) << "\n";

  // --- 4. Query: find clips similar to the first extracted OG. ----------
  const core::Og& probe = segment.decomposition.object_graphs[0];
  auto hits = db.FindSimilar(probe, 3, segment.Scaling());
  std::cout << "\n3-NN for OG starting at frame " << probe.start_frame
            << ":\n";
  for (const auto& hit : hits) {
    std::cout << "  video=" << hit.video << " start_frame=" << hit.start_frame
              << " length=" << hit.length
              << " EGED_M=" << FormatDouble(hit.distance, 2) << "\n";
  }
  std::cout << "\n(The top hit at distance 0 is the probe itself — the "
               "database contains it.)\n";
  return 0;
}
