// strgtool: command-line front end for the library.
//
//   strgtool ingest <catalog> <lab|traffic> <name> <num_objects> [seed]
//       Render + process a simulated stream and append it to a catalog
//       file (creates the catalog if absent).
//   strgtool info <catalog>
//       Describe the catalog's segments.
//   strgtool stats <catalog>
//       Rebuild the index and print its structural health (clusters, leaf
//       occupancancy, covering radii).
//   strgtool query <catalog> <video> <og_index> [k]
//       Rebuild the database from the catalog and run a k-NN query using
//       one of the stored OGs as the probe.
//   strgtool ingest-ppm <catalog> <name> <dir>
//       Ingest a real frame sequence (sorted .ppm files, e.g. exported by
//       `ffmpeg -i clip.mp4 frames/%06d.ppm`): shot detection splits the
//       stream, each shot becomes its own catalog segment.
//   strgtool serve [--shards=N] [--paged] [--cache-mb=N] <wal-dir>
//                  [lab|traffic <name> <num_objects> [seed]]
//       Open a crash-durable engine on <wal-dir> (recovering any prior
//       state), optionally ingest one rendered scene through the WAL, run
//       a sample query, and print recovery stats + server metrics. Run it
//       twice with the same <wal-dir> to watch state survive a restart.
//       --paged routes bulk records through the out-of-core page store with
//       a --cache-mb buffer-cache budget (default 8 MiB). --shards=N also
//       serves the recovered catalog through an N-way scatter-gather
//       ShardedQueryEngine and prints its per-shard metrics.
//   strgtool save <wal-dir> <catalog-out>
//       Recover the durable state in <wal-dir> and export it as a plain
//       catalog file usable by info/stats/query.
//   strgtool stat <page-file>
//       Audit a page file (store.pages / catalog.pages) offline: header
//       fields, page-type counts, free-list health, and live/dead record
//       occupancy per record type.
//   strgtool simd
//       Print the detected simd dispatch tier for the distance kernels and
//       micro-time the point-distance batch and exact EGED DP on every tier
//       this host can run (scalar is always available; vector tiers must be
//       bit-identical, so the timings are the only observable difference).
//
// Demonstrates persistence (storage::Catalog + the WAL-backed
// DurableQueryEngine) plus the retrieval API; a real deployment would
// ingest camera frames instead of rendered scenes.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/persistence.h"
#include "distance/eged_fast.h"
#include "distance/sequence.h"
#include "distance/simd/dispatch.h"
#include "server/durable_engine.h"
#include "server/serve_options.h"
#include "server/sharded_engine.h"
#include "storage/catalog.h"
#include "storage/pager/paged_record_store.h"
#include "util/random.h"
#include "util/table.h"
#include "video/ppm_io.h"
#include "video/scenes.h"

namespace {

using namespace strg;

int Usage() {
  std::cerr <<
      "usage:\n"
      "  strgtool ingest <catalog> <lab|traffic> <name> <num_objects> [seed]\n"
      "  strgtool ingest-ppm <catalog> <name> <dir>\n"
      "  strgtool info <catalog>\n"
      "  strgtool stats <catalog>\n"
      "  strgtool query <catalog> <video> <og_index> [k]\n"
      "  strgtool serve [--shards=N] [--paged] [--cache-mb=N] <wal-dir>\n"
      "                 [lab|traffic <name> <num_objects> [seed]]\n"
      "  strgtool save <wal-dir> <catalog-out>\n"
      "  strgtool stat <page-file>\n"
      "  strgtool simd\n";
  return 2;
}

storage::Catalog LoadOrEmpty(const std::string& path) {
  auto loaded = storage::Catalog::TryLoadFromFile(path);
  return loaded.ok() ? std::move(loaded).value() : storage::Catalog{};
}

/// Loads into *out, printing the error itself. Returns false on failure.
bool MustLoadCatalog(const std::string& path, storage::Catalog* out) {
  auto loaded = storage::Catalog::TryLoadFromFile(path);
  if (!loaded.ok()) {
    std::cerr << "cannot load " << path << ": " << loaded.status().ToString()
              << "\n";
    return false;
  }
  *out = std::move(loaded).value();
  return true;
}

bool MustSaveCatalog(const storage::Catalog& catalog,
                     const std::string& path) {
  api::Status st = catalog.TrySaveToFile(path);
  if (!st.ok()) {
    std::cerr << "cannot save " << path << ": " << st.ToString() << "\n";
    return false;
  }
  return true;
}

int Ingest(const std::string& path, const std::string& kind,
           const std::string& name, int num_objects, uint64_t seed) {
  video::SceneParams sp;
  sp.num_objects = num_objects;
  sp.seed = seed;
  sp.noise_stddev = 0.0;
  if (kind == "traffic") sp.height = 100;
  video::SceneSpec scene =
      kind == "traffic" ? video::MakeTrafficScene(sp) : video::MakeLabScene(sp);

  api::PipelineParams pp;
  pp.segmenter.use_mean_shift = false;
  api::SegmentResult segment = api::ProcessScene(scene, pp);

  storage::Catalog catalog = LoadOrEmpty(path);
  catalog.AddSegment(api::ToCatalogSegment(name, segment));
  if (!MustSaveCatalog(catalog, path)) return 1;
  std::cout << "ingested '" << name << "': " << scene.num_frames
            << " frames -> " << segment.decomposition.object_graphs.size()
            << " OGs; catalog now has " << catalog.NumSegments()
            << " segment(s), " << catalog.TotalOgs() << " OGs\n";
  return 0;
}

int IngestPpm(const std::string& path, const std::string& name,
              const std::string& dir) {
  std::vector<video::Frame> frames = video::LoadPpmDirectory(dir);
  if (frames.empty()) {
    std::cerr << "no .ppm frames found in " << dir << "\n";
    return 1;
  }
  api::PipelineParams pp;  // mean-shift front end for real footage
  std::vector<api::SegmentResult> segments = api::ProcessFrames(frames, pp);
  storage::Catalog catalog = LoadOrEmpty(path);
  for (size_t i = 0; i < segments.size(); ++i) {
    std::string seg_name =
        segments.size() == 1 ? name : name + "#" + std::to_string(i);
    catalog.AddSegment(api::ToCatalogSegment(seg_name, segments[i]));
    std::cout << "  shot " << i << ": " << segments[i].num_frames
              << " frames, "
              << segments[i].decomposition.object_graphs.size() << " OGs\n";
  }
  if (!MustSaveCatalog(catalog, path)) return 1;
  std::cout << "ingested " << frames.size() << " frames as "
            << segments.size() << " segment(s)\n";
  return 0;
}

int Info(const std::string& path) {
  storage::Catalog catalog;
  if (!MustLoadCatalog(path, &catalog)) return 1;
  Table table({"video", "frames", "OGs", "BG regions", "frame size"});
  for (const auto& s : catalog.segments()) {
    table.AddRow({s.video_name, std::to_string(s.num_frames),
                  std::to_string(s.ogs.size()),
                  std::to_string(s.background.rag.NumNodes()),
                  std::to_string(s.frame_width) + "x" +
                      std::to_string(s.frame_height)});
  }
  table.Print(std::cout);
  return 0;
}

int Stats(const std::string& path) {
  storage::Catalog catalog;
  if (!MustLoadCatalog(path, &catalog)) return 1;
  api::VideoDatabase db = api::RestoreVideoDatabase(catalog);
  auto stats = db.index().ComputeStats();
  std::cout << "segments: " << stats.segments
            << "\nclusters: " << stats.clusters
            << "\nOGs: " << stats.ogs
            << "\nleaf occupancy: min " << stats.min_leaf << " mean "
            << FormatDouble(stats.mean_leaf, 1) << " max " << stats.max_leaf
            << "\ncovering radius: mean "
            << FormatDouble(stats.mean_covering_radius, 2) << " max "
            << FormatDouble(stats.max_covering_radius, 2)
            << "\nindex size: " << FormatBytes(db.IndexSizeBytes()) << "\n";
  return 0;
}

int Query(const std::string& path, const std::string& video, size_t og_index,
          size_t k) {
  storage::Catalog catalog;
  if (!MustLoadCatalog(path, &catalog)) return 1;
  const storage::CatalogSegment* segment = nullptr;
  for (const auto& s : catalog.segments()) {
    if (s.video_name == video) segment = &s;
  }
  if (segment == nullptr || og_index >= segment->ogs.size()) {
    std::cerr << "no such video / OG index\n";
    return 1;
  }

  index::StrgIndexParams params;
  params.num_clusters = 0;  // let BIC choose
  params.k_max = 10;
  api::VideoDatabase db = api::RestoreVideoDatabase(catalog, params);

  dist::FeatureScaling scaling;
  scaling.frame_width = segment->frame_width;
  scaling.frame_height = segment->frame_height;
  auto hits = db.FindSimilar(segment->ogs[og_index], k, scaling);

  std::cout << "query: OG " << og_index << " of '" << video << "' (starts at"
            << " frame " << segment->ogs[og_index].start_frame << ")\n";
  Table table({"rank", "video", "start frame", "length", "EGED_M"});
  for (size_t i = 0; i < hits.size(); ++i) {
    table.AddRow({std::to_string(i + 1), hits[i].video,
                  std::to_string(hits[i].start_frame),
                  std::to_string(hits[i].length),
                  FormatDouble(hits[i].distance, 2)});
  }
  table.Print(std::cout);
  return 0;
}

std::string RecordTypeName(uint8_t type) {
  switch (type) {
    case storage::kRecOgSequence: return "og-sequence";
    case storage::kRecBackground: return "background";
    case storage::kRecCatalogMeta: return "catalog-meta";
    case storage::kRecIndexNode: return "index-node";
    default: return "type-" + std::to_string(type);
  }
}

int Stat(const std::string& path) {
  auto computed = storage::ComputePageFileStats(path);
  if (!computed.ok()) {
    std::cerr << "cannot audit " << path << ": "
              << computed.status().ToString() << "\n";
    return 1;
  }
  const storage::PageFileStats& s = computed.value();
  std::cout << "page file: " << path
            << "\npage size: " << s.page_size << " bytes"
            << "\npages: " << s.num_pages << " (" << s.data_pages << " data, "
            << s.overflow_pages << " overflow, " << s.free_pages
            << " free, 1 header) — "
            << FormatBytes(s.num_pages * s.page_size) << " total"
            << "\nfree list: " << s.free_list_len << " page(s) walked, "
            << s.free_count << " claimed by header"
            << (s.free_list_len == s.free_count ? "" : "  <-- MISMATCH")
            << "\nroot record: ";
  if (s.root == storage::PageFile::kNoRoot) {
    std::cout << "(unset)";
  } else {
    std::cout << s.root << " (page " << (s.root >> 16) << " slot "
              << (s.root & 0xFFFF) << ")";
  }
  std::cout << "\ndead slots: " << s.dead_slots << "\n";

  Table table({"record type", "live records", "live bytes"});
  for (const auto& t : s.by_type) {
    table.AddRow({RecordTypeName(t.record_type),
                  std::to_string(t.live_records),
                  std::to_string(t.live_bytes)});
  }
  if (s.by_type.empty()) {
    std::cout << "(no live records)\n";
  } else {
    table.Print(std::cout);
  }
  return 0;
}

/// `strgtool simd`: the CLI face of the dispatch layer. Prints which tier
/// the host detected (and which is active, since STRG_SIMD_TIER /
/// STRG_FORCE_SCALAR can override it), then micro-times the two hot
/// kernels on every runnable tier. Timings are best-of-5 means so a
/// background blip does not masquerade as a speedup.
int Simd() {
  namespace simd = dist::simd;
  using Clock = std::chrono::steady_clock;
  std::cout << "detected tier: " << simd::TierName(simd::DetectedTier())
            << "\nactive tier:   " << simd::TierName(simd::ActiveTier())
            << "  (override: STRG_SIMD_TIER=scalar|avx2|neon, "
               "STRG_FORCE_SCALAR=1)\n"
            << "padded stride: " << simd::kPaddedDim << " doubles/point\n";

  constexpr size_t kLen = 64;
  Rng rng(7);
  auto make_seq = [&rng] {
    dist::Sequence s(kLen);
    dist::FeatureVec cur{};
    for (size_t k = 0; k < dist::kFeatureDim; ++k) {
      cur[k] = rng.Uniform(0.0, 10.0);
    }
    for (size_t i = 0; i < kLen; ++i) {
      for (size_t k = 0; k < dist::kFeatureDim; ++k) {
        cur[k] += rng.Gaussian(0.0, 0.5);
      }
      s[i] = cur;
    }
    return s;
  };
  const dist::Sequence a = make_seq();
  const dist::Sequence b = make_seq();
  dist::FlatSequence fa, fb;
  dist::EgedWorkspace ws;
  std::vector<double> out(kLen);
  double checksum = 0.0;

  auto time_us = [](auto&& fn) {
    constexpr int kReps = 400;
    double best = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 5; ++round) {
      const auto t0 = Clock::now();
      for (int r = 0; r < kReps; ++r) fn();
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count() /
          kReps;
      best = std::min(best, us);
    }
    return best;
  };

  const simd::Tier saved = simd::ActiveTier();
  double scalar_dp_us = 0.0;
  Table table({"tier", "point batch (us)", "exact EGED 64x64 (us)",
               "DP speedup"});
  for (simd::Tier tier :
       {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kNeon}) {
    const simd::KernelOps* ops = simd::OpsForTier(tier);
    if (ops == nullptr) continue;
    simd::ForceTier(tier);
    // Rebuild the flat forms under this tier so the whole pipeline — gap
    // costs included — runs through the kernel being timed.
    fa.Assign(a, {});
    fb.Assign(b, {});
    const double pd_us = time_us([&] {
      ops->point_distance_batch(fa.point(0), fb.points(), kLen, out.data());
      checksum += out[kLen - 1];
    });
    const double dp_us =
        time_us([&] { checksum += dist::EgedMetricFlat(fa, fb, &ws); });
    if (tier == simd::Tier::kScalar) scalar_dp_us = dp_us;
    table.AddRow({simd::TierName(tier), FormatDouble(pd_us, 3),
                  FormatDouble(dp_us, 2),
                  FormatDouble(scalar_dp_us / dp_us, 2) + "x"});
  }
  simd::ForceTier(saved);
  table.Print(std::cout);
  std::cout << "(checksum " << FormatDouble(checksum, 3)
            << " — identical on every tier by the bit-identity contract)\n";
  return 0;
}

server::DurableQueryEngine* MustOpenDurable(
    const std::string& wal_dir, const server::DurableEngineOptions& opts,
    std::unique_ptr<server::DurableQueryEngine>* holder) {
  auto opened = server::DurableQueryEngine::Open(wal_dir, {}, opts);
  if (!opened.ok()) {
    std::cerr << "cannot open " << wal_dir << ": "
              << opened.status().ToString() << "\n";
    return nullptr;
  }
  *holder = std::move(opened).value();
  return holder->get();
}

/// Mirrors the recovered catalog into an N-shard scatter-gather engine,
/// runs the sample probe through it, and prints its per-shard metrics —
/// the CLI face of ShardedQueryEngine.
void ServeSharded(const storage::Catalog& catalog,
                  const server::ServeOptions& serve) {
  server::ShardedQueryEngine sharded(index::StrgIndexParams{},
                                     serve.ToShardedOptions());
  for (const storage::CatalogSegment& s : catalog.segments()) {
    api::SegmentResult segment;
    segment.num_frames = s.num_frames;
    segment.frame_width = s.frame_width;
    segment.frame_height = s.frame_height;
    segment.decomposition.background = s.background;
    segment.decomposition.object_graphs = s.ogs;
    size_t shard = 0;
    sharded.AddVideo(s.video_name, segment, nullptr, &shard);
    std::cout << "  shard " << shard << " <- '" << s.video_name << "' ("
              << s.ogs.size() << " OGs)\n";
  }
  if (catalog.NumSegments() > 0 && !catalog.segments()[0].ogs.empty()) {
    const storage::CatalogSegment& s = catalog.segments()[0];
    dist::FeatureScaling scaling;
    scaling.frame_width = s.frame_width;
    scaling.frame_height = s.frame_height;
    server::QueryResult qr = sharded.Query(api::QuerySpec::Similar(
        dist::OgToSequence(s.ogs[0], scaling), 3));
    std::cout << "sample scatter-gather 3-NN ("
              << StatusCodeName(qr.status) << "): " << qr.hits.size()
              << " hit(s) across " << sharded.NumShards() << " shard(s)\n";
  }
  std::cout << sharded.MetricsJson() << "\n";
}

int Serve(const std::string& wal_dir, const std::string& kind,
          const std::string& name, int num_objects, uint64_t seed,
          const server::ServeOptions& serve) {
  const server::DurableEngineOptions opts = serve.ToDurableOptions();
  std::unique_ptr<server::DurableQueryEngine> holder;
  server::DurableQueryEngine* engine = MustOpenDurable(wal_dir, opts, &holder);
  if (engine == nullptr) return 1;

  const server::RecoveryStats& rec = engine->recovery();
  std::cout << "recovered from " << wal_dir << ": "
            << rec.snapshot_segments << " segment(s) from snapshot, "
            << rec.replayed_records << " WAL record(s) replayed"
            << (rec.tail_truncated ? " (torn tail truncated)" : "") << " in "
            << FormatDouble(rec.replay_seconds * 1e3, 1)
            << " ms; generation " << engine->Generation() << "\n";
  if (engine->paged_store() != nullptr) {
    std::cout << "paged mode: cache budget "
              << FormatBytes(engine->paged_store()->cache()->resident_bytes())
              << " over " << engine->paged_store()->cache()->num_frames()
              << " frames of " << opts.storage.page_size << " bytes\n";
  }

  if (!kind.empty()) {
    video::SceneParams sp;
    sp.num_objects = num_objects;
    sp.seed = seed;
    sp.noise_stddev = 0.0;
    if (kind == "traffic") sp.height = 100;
    video::SceneSpec scene = kind == "traffic" ? video::MakeTrafficScene(sp)
                                               : video::MakeLabScene(sp);
    api::PipelineParams pp;
    pp.segmenter.use_mean_shift = false;
    api::SegmentResult segment = api::ProcessScene(scene, pp);
    auto gen = engine->AddVideo(name, segment);
    if (!gen.ok()) {
      std::cerr << "ingest failed: " << gen.status().ToString() << "\n";
      return 1;
    }
    std::cout << "ingested '" << name << "' durably: "
              << segment.decomposition.object_graphs.size()
              << " OGs, now at generation " << gen.value() << "\n";
  }

  // Probe the serving path with the first stored OG so a restart visibly
  // answers from recovered state.
  const storage::Catalog& catalog = engine->catalog();
  if (catalog.NumSegments() > 0 && !catalog.segments()[0].ogs.empty()) {
    const storage::CatalogSegment& s = catalog.segments()[0];
    dist::FeatureScaling scaling;
    scaling.frame_width = s.frame_width;
    scaling.frame_height = s.frame_height;
    server::QueryResult qr = engine->Query(api::QuerySpec::Similar(
        dist::OgToSequence(s.ogs[0], scaling), 3));
    std::cout << "sample 3-NN query (" << StatusCodeName(qr.status)
              << "): " << qr.hits.size() << " hit(s) against generation "
              << qr.generation << "\n";
  }
  std::cout << engine->MetricsJson() << "\n";

  if (serve.shards > 1) {
    std::cout << "sharded serving (" << serve.shards << " shards):\n";
    ServeSharded(engine->catalog(), serve);
  }

  // Commit pending state (WAL fsync + paged-store header) so `strgtool
  // stat` on the page file sees this run's occupancy.
  api::Status st = engine->Sync();
  if (!st.ok()) {
    std::cerr << "sync failed: " << st.ToString() << "\n";
    return 1;
  }
  return 0;
}

int Save(const std::string& wal_dir, const std::string& out) {
  std::unique_ptr<server::DurableQueryEngine> holder;
  server::DurableQueryEngine* engine = MustOpenDurable(wal_dir, {}, &holder);
  if (engine == nullptr) return 1;
  api::Status st = engine->catalog().TrySaveToFile(out);
  if (!st.ok()) {
    std::cerr << "save failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "exported " << engine->catalog().NumSegments()
            << " segment(s), " << engine->catalog().TotalOgs() << " OGs to "
            << out << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Flags may appear anywhere; everything else is positional. The flag
  // vocabulary lives in server::ServeOptions, shared with library callers.
  server::ServeOptions serve_opts;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (!serve_opts.ParseFlag(a)) args.push_back(std::move(a));
  }
  if (args.size() == 1 && args[0] == "simd") return Simd();
  if (args.size() < 2) return Usage();
  const std::string& cmd = args[0];
  const std::string& path = args[1];
  try {
    if (cmd == "ingest" && args.size() >= 5) {
      return Ingest(path, args[2], args[3], std::atoi(args[4].c_str()),
                    args.size() > 5
                        ? static_cast<uint64_t>(std::atoll(args[5].c_str()))
                        : 7u);
    }
    if (cmd == "ingest-ppm" && args.size() >= 4) {
      return IngestPpm(path, args[2], args[3]);
    }
    if (cmd == "info") return Info(path);
    if (cmd == "stats") return Stats(path);
    if (cmd == "stat") return Stat(path);
    if (cmd == "query" && args.size() >= 4) {
      return Query(path, args[2],
                   static_cast<size_t>(std::atoll(args[3].c_str())),
                   args.size() > 4
                       ? static_cast<size_t>(std::atoll(args[4].c_str()))
                       : 5u);
    }
    if (cmd == "serve") {
      if (args.size() >= 5) {
        return Serve(path, args[2], args[3], std::atoi(args[4].c_str()),
                     args.size() > 5
                         ? static_cast<uint64_t>(std::atoll(args[5].c_str()))
                         : 7u,
                     serve_opts);
      }
      if (args.size() == 2) return Serve(path, "", "", 0, 0, serve_opts);
      return Usage();
    }
    if (cmd == "save" && args.size() >= 3) return Save(path, args[2]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return Usage();
}
