// Surveillance search: multi-camera retrieval with background routing.
//
// Two cameras (a lab and a traffic intersection) feed one VideoDatabase.
// Because each video segment's background graph becomes a root record of
// the STRG-Index, a query that carries its own background is routed to the
// matching camera before any object comparison happens (Algorithm 3,
// step 2) — the paper's surveillance use case.
//
// The example also dumps one frame of each stream as a PPM file so you can
// eyeball what the simulated cameras see.

#include <fstream>
#include <iostream>

#include "core/video_database.h"
#include "util/table.h"
#include "video/renderer.h"
#include "video/scenes.h"

namespace {

strg::api::SegmentResult Process(const strg::video::SceneSpec& scene) {
  strg::api::PipelineParams params;
  params.segmenter.use_mean_shift = false;  // clean synthetic frames
  return strg::api::ProcessScene(scene, params);
}

void DumpFrame(const strg::video::SceneSpec& scene, int t,
               const std::string& path) {
  std::ofstream out(path);
  out << strg::video::RenderFrame(scene, t).ToPpm();
  std::cout << "  wrote " << path << "\n";
}

}  // namespace

int main() {
  using namespace strg;

  video::SceneParams lab_params;
  lab_params.num_objects = 10;
  lab_params.spawn_gap = 26;
  lab_params.seed = 11;
  video::SceneSpec lab = video::MakeLabScene(lab_params);

  video::SceneParams traffic_params;
  traffic_params.num_objects = 10;
  traffic_params.height = 100;
  traffic_params.seed = 22;
  video::SceneSpec traffic = video::MakeTrafficScene(traffic_params);

  std::cout << "Simulated cameras:\n";
  DumpFrame(lab, lab.num_frames / 2, "camera_lab.ppm");
  DumpFrame(traffic, traffic.num_frames / 2, "camera_traffic.ppm");

  api::SegmentResult lab_seg = Process(lab);
  api::SegmentResult traffic_seg = Process(traffic);

  index::StrgIndexParams params;
  params.num_clusters = 4;
  api::VideoDatabase db(params);
  db.AddVideo("cam-lab", lab_seg);
  db.AddVideo("cam-traffic", traffic_seg);
  std::cout << "\nDatabase: " << db.NumVideos() << " cameras, "
            << db.NumObjectGraphs() << " OGs, index "
            << FormatBytes(db.IndexSizeBytes()) << "\n";

  // Query with background routing: the query clip comes from the traffic
  // camera, so its BG should route the search to cam-traffic's subtree.
  const core::Og& probe = traffic_seg.decomposition.object_graphs[2];
  dist::Sequence probe_seq =
      dist::OgToSequence(probe, traffic_seg.Scaling());
  index::KnnResult routed =
      db.index().Knn(probe_seq, 5, &traffic_seg.decomposition.background);

  std::cout << "\n5-NN with BG routing (every hit should be cam-traffic):\n";
  for (const auto& h : routed.hits) {
    std::cout << "  og_id=" << h.og_id
              << " EGED_M=" << FormatDouble(h.distance, 2) << "\n";
  }
  std::cout << "Distance computations: " << routed.distance_computations
            << " (routing skipped the lab subtree entirely)\n";

  // The same query without a background searches both cameras.
  index::KnnResult global = db.index().Knn(probe_seq, 5);
  std::cout << "\nWithout BG routing: " << global.distance_computations
            << " distance computations across both cameras\n";
  return 0;
}
