// Traffic pattern mining: discover the motion patterns of an intersection
// with EM clustering over EGED, and let BIC pick how many there are.
//
// This exercises the analysis half of the paper (Sections 3-4): the
// pipeline watches a simulated traffic camera, extracts one OG per
// vehicle, clusters them without knowing the true number of lanes or
// directions, and reports what it found.

#include <iostream>
#include <map>
#include <vector>

#include "cluster/bic.h"
#include "cluster/em.h"
#include "core/pipeline.h"
#include "distance/eged.h"
#include "util/table.h"
#include "video/scenes.h"

int main() {
  using namespace strg;

  video::SceneParams params;
  params.num_objects = 60;
  params.height = 100;  // room for 2 directions x 3 lanes
  params.spawn_gap = 24;
  params.seed = 5;
  video::SceneSpec scene = video::MakeTrafficScene(params);

  api::PipelineParams pp;
  pp.segmenter.use_mean_shift = false;
  api::SegmentResult segment = api::ProcessScene(scene, pp);
  auto sequences = segment.ObjectSequences();
  std::cout << "Observed " << sequences.size() << " vehicle tracks over "
            << segment.num_frames << " frames\n";

  // Let BIC choose the number of motion patterns (Section 4.2).
  dist::EgedDistance eged;
  cluster::ClusterParams cp;
  cp.max_iterations = 12;
  cp.restarts = 5;
  auto sweep = cluster::FindOptimalK(sequences, 1, 12, eged, cp);
  std::cout << "BIC selected " << sweep.best_k << " motion patterns\n\n";

  const cluster::Clustering& model =
      sweep.models[sweep.best_k - 1];

  // Describe each discovered pattern from its centroid OG.
  Table table({"pattern", "#vehicles", "direction", "mean lane (y px)",
               "mean size (px)"});
  for (size_t c = 0; c < model.NumClusters(); ++c) {
    int members = 0;
    for (int a : model.assignment) {
      if (a == static_cast<int>(c)) ++members;
    }
    if (members == 0) continue;
    const dist::Sequence& centroid = model.centroids[c];
    double dx = centroid.back()[4] - centroid.front()[4];
    double y_px = 0.0, size_px = 0.0;
    for (const auto& v : centroid) {
      y_px += v[5] / 10.0 * params.height;
      // size feature = 10*sqrt(area/frame_area)
      double ratio = v[0] / 10.0;
      size_px += ratio * ratio * params.width * params.height;
    }
    y_px /= static_cast<double>(centroid.size());
    size_px /= static_cast<double>(centroid.size());
    table.AddRow({std::to_string(c), std::to_string(members),
                  dx > 0 ? "eastbound" : "westbound", FormatDouble(y_px, 1),
                  FormatDouble(size_px, 0)});
  }
  table.Print(std::cout);

  std::cout << "\nGround truth: 6 patterns — cars/vans/trucks (growing size,"
               " outer lanes) in each\ndirection. Compare the direction /"
               " lane / size columns against that structure.\n";
  return 0;
}
