#!/usr/bin/env bash
# Repo verification: tier-1 build + full test suite, then an AddressSanitizer
# pass over the concurrency-sensitive tests (serving layer + thread pool +
# the WAL crash-recovery matrix + the distance-kernel and parallel-ingest
# equivalence suites), then a UBSan pass over the recovery-, distance- and
# ingest-labeled tests (the durability layer does raw byte punning; the fast
# EGED kernel does banded DP over raw row pointers; the mean-shift kernel
# does integral-image index arithmetic — exactly where UB hides).
# A dedicated `server` stage runs the server-labeled suites (sharded
# scatter-gather, async runtime, metrics JSON) under ASan, and — with
# STRG_CHECK_TSAN=1 — the cancellation/deadline race and tau-pruning tests
# under TSan. A `simd` stage re-runs the distance|simd suites under ASan and
# UBSan with STRG_FORCE_SCALAR=1, covering both dispatch tiers and the env
# override plumbing. A `cluster` stage runs the cluster|seeding suites under
# ASan and UBSan (the Elkan/Hamerly bound bookkeeping and its batched
# kernel hand-off), and the TSan pass adds the parallel-restart equivalence
# test.
#
# A `deadlock` stage rebuilds with STRG_DEADLOCK_CHECK=ON and runs the
# rank-checker's own matrix (tests/deadlock_rank_test.cpp, death tests
# included) plus the deep-chain stress tests with every acquisition checked
# against the LockRank hierarchy (DESIGN.md §15).
#
#   scripts/check.sh                 # static + tier-1 + ASan + UBSan passes
#   STRG_CHECK_ASAN_ALL=1 scripts/check.sh   # ASan over the whole suite
#   STRG_CHECK_TSAN=1 scripts/check.sh       # also a ThreadSanitizer pass
#   STRG_CHECK_STATIC=0 scripts/check.sh     # skip the static pass
#   STRG_CHECK_DEADLOCK_ALL=1 scripts/check.sh  # full suite under the
#                                               # runtime rank checker
#   STRG_REQUIRE_CLANG=1 scripts/check.sh    # static pass treats missing
#                                            # clang/libclang as FAILURES
#                                            # instead of loud skips
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${STRG_CHECK_STATIC:-1}" == "1" ]]; then
  echo "== static pass (scripts/static.sh: linter + thread-safety + clang-tidy) =="
  # static.sh itself skips the Clang-only legs loudly when the tools are
  # absent; the invariant linter always runs.
  scripts/static.sh
  echo
else
  echo "== static pass skipped (STRG_CHECK_STATIC=0) =="
  echo
fi

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo
echo "== ASan pass (STRG_SANITIZE=address) =="
cmake -B build-asan -S . -DSTRG_SANITIZE=address \
  -DSTRG_BUILD_BENCHMARKS=OFF -DSTRG_BUILD_EXAMPLES=OFF >/dev/null
if [[ "${STRG_CHECK_ASAN_ALL:-0}" == "1" ]]; then
  cmake --build build-asan -j
  ctest --test-dir build-asan --output-on-failure -j
else
  cmake --build build-asan -j \
    --target server_concurrency_test thread_pool_test wal_recovery_test \
    distance_kernel_test ingest_parallel_test paging_test \
    serializer_property_test
  ./build-asan/tests/server_concurrency_test
  ./build-asan/tests/thread_pool_test
  ./build-asan/tests/wal_recovery_test
  ./build-asan/tests/distance_kernel_test
  ./build-asan/tests/ingest_parallel_test
fi
# Out-of-core storage under ASan: the pin protocol hands out views into
# cache frames, exactly where a use-after-evict or off-by-one in the slot
# walk would hide. Runs the storage- and paging-labeled suites.
ctest --test-dir build-asan -L 'storage|paging' --output-on-failure -j

echo
echo "== server stage (ASan): sharded scatter-gather + async runtime =="
# The serving layer's submit/complete lifecycle hands QueryResult objects
# across threads (worker -> completion callback -> waiter) and the sharded
# engine merges per-shard legs under a shared tau bound — exactly where a
# use-after-free on an abandoned request or gather would hide.
cmake --build build-asan -j --target sharded_engine_test \
  server_metrics_json_test
ctest --test-dir build-asan -L server --output-on-failure -j

echo
echo "== cluster stage (ASan + UBSan): bounded-assignment equivalence =="
# The Elkan/Hamerly layer (src/cluster/bounds.h) keeps m x k bound arrays
# hot across iterations and hands flat-form rows to the batched DP kernels
# — an off-by-one in the lb row indexing or a stale flat pointer after a
# reseed is exactly the bug class ASan catches; the score-space pruning
# does log/sqrt radius arithmetic where UBSan would see a domain slip.
cmake --build build-asan -j --target cluster_bounds_test cluster_test \
  seeding_test
cmake --build build-ubsan -j --target cluster_bounds_test cluster_test \
  seeding_test
ctest --test-dir build-asan -L 'cluster|seeding' --output-on-failure -j
ctest --test-dir build-ubsan -L 'cluster|seeding' --output-on-failure -j

echo
echo "== deadlock stage (STRG_DEADLOCK_CHECK=ON): runtime rank checker =="
# Every Lock()/LockShared() is checked against the thread-local held-rank
# stack: an inversion aborts with both rank names instead of deadlocking.
# The death tests prove the aborts fire; the deep-chain stress drives the
# longest legal chains (ingest -> writer -> paged store -> buffer cache,
# with live queries) with checking on.
cmake -B build-deadlock -S . -DSTRG_DEADLOCK_CHECK=ON \
  -DSTRG_BUILD_BENCHMARKS=OFF -DSTRG_BUILD_EXAMPLES=OFF >/dev/null
if [[ "${STRG_CHECK_DEADLOCK_ALL:-0}" == "1" ]]; then
  cmake --build build-deadlock -j
  ctest --test-dir build-deadlock --output-on-failure -j
else
  cmake --build build-deadlock -j --target deadlock_rank_test \
    sharded_engine_test
  ./build-deadlock/tests/deadlock_rank_test
  ./build-deadlock/tests/sharded_engine_test \
    --gtest_filter='ShardedEngine.DeepLockChainStressWithLiveWriter:ShardedEngine.CancellationAndDeadlineRaceIsClean'
fi

echo
echo "== UBSan pass over recovery+distance+ingest-labeled tests (STRG_SANITIZE=undefined) =="
cmake -B build-ubsan -S . -DSTRG_SANITIZE=undefined \
  -DSTRG_BUILD_BENCHMARKS=OFF -DSTRG_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-ubsan -j --target wal_recovery_test distance_kernel_test \
  ingest_parallel_test
ctest --test-dir build-ubsan -L 'recovery|distance|ingest' --output-on-failure -j

echo
echo "== simd stage: dispatch-tier equivalence under ASan + UBSan, both tiers =="
# The distance|simd suites force tiers internally (scalar vs detected), so
# one run already covers the vector kernels' memory/UB behavior; running
# them again under STRG_FORCE_SCALAR=1 additionally proves the env override
# plumbing and the scalar-initial-state path. The unaligned _mm256_loadu /
# vld1q tails and the wavefront DP's offset arithmetic are exactly where an
# out-of-bounds lane or pointer-wrap UB would hide.
cmake --build build-asan -j --target simd_dispatch_test
cmake --build build-ubsan -j --target simd_dispatch_test
ctest --test-dir build-asan -L 'distance|simd' --output-on-failure -j
STRG_FORCE_SCALAR=1 ctest --test-dir build-asan -L 'distance|simd' \
  --output-on-failure -j
STRG_FORCE_SCALAR=1 ctest --test-dir build-ubsan -L 'distance|simd' \
  --output-on-failure -j

if [[ "${STRG_CHECK_TSAN:-0}" == "1" ]]; then
  echo
  echo "== TSan pass (STRG_SANITIZE=thread) =="
  cmake -B build-tsan -S . -DSTRG_SANITIZE=thread \
    -DSTRG_BUILD_BENCHMARKS=OFF -DSTRG_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-tsan -j --target server_concurrency_test \
    thread_pool_test distance_kernel_test ingest_parallel_test paging_test \
    sharded_engine_test
  ./build-tsan/tests/server_concurrency_test
  ./build-tsan/tests/thread_pool_test
  # Server stage under TSan: scatter-gather legs racing cancellation,
  # deadlines, and a live writer — the exactly-once finalize CAS and the
  # tau-bound publication are the contested atomics. The deep-chain stress
  # adds paged per-shard stores so the full ingest -> writer -> record
  # store -> buffer cache lock chain runs under the race checker.
  ./build-tsan/tests/sharded_engine_test \
    --gtest_filter='ShardedEngine.CancellationAndDeadlineRaceIsClean:ShardedEngine.TauPruningFiresAndStaysExact:ShardedEngine.DeepLockChainStressWithLiveWriter'
  # Fast/reference equivalence with the thread pool engaged (parallel build
  # + concurrent queries) — the data-race check for the kernel's thread-local
  # workspaces and the per-query counter plumbing.
  ./build-tsan/tests/distance_kernel_test
  # Pooled ingest equivalence under TSan: the ordered-stage merge, the
  # per-worker thread_local segmenter workspaces, and shot-parallel
  # ProcessFrames all race-checked while asserting bit-identical output.
  ./build-tsan/tests/ingest_parallel_test
  # Buffer-cache pin/unpin + copy-on-write frame handoff race-checked while
  # a writer rewrites pages under concurrent readers.
  ./build-tsan/tests/paging_test \
    --gtest_filter='BufferCache.ConcurrentPinUnpinWithWriterIsConsistent'
  # Parallel EM restarts with the bounded assigner engaged: each restart
  # owns its BoundedAssigner and ClusterStats, merged serially afterward —
  # TSan proves the per-restart state really is private while the test
  # asserts pooled == serial bit-identically.
  cmake --build build-tsan -j --target cluster_bounds_test
  ./build-tsan/tests/cluster_bounds_test \
    --gtest_filter='ClusterBoundsParallel.RestartEquivalence'
fi

echo
echo "check.sh: all passes green"
