#!/usr/bin/env bash
# CI entry point: tier-1 (configure + build + full ctest) plus the complete
# static-analysis gate (lint -> thread-safety build -> clang-tidy -> lock
# graph), each run as a separately timed stage. Writes a machine-readable
# per-stage report — name, status (pass|fail), exit code, wall-clock
# seconds — so a CI frontend can chart where the time goes and which gate
# broke without parsing logs.
#
#   scripts/ci.sh                         # all stages, report to
#                                         # build/ci_report.json
#   STRG_CI_REPORT=out.json scripts/ci.sh # report path override
#   STRG_REQUIRE_CLANG=1 scripts/ci.sh   # Clang-only static legs must RUN
#                                         # (their loud skips become stage
#                                         # failures — real CI mode)
#
# Exit status: 0 iff every stage passed. Stages keep running after a
# failure so one report covers the whole pipeline.
set -uo pipefail
cd "$(dirname "$0")/.."

REPORT="${STRG_CI_REPORT:-build/ci_report.json}"
STAGE_JSON=()
FAILED=0

run_stage() {
  # run_stage <name> <cmd...> — times the command, records one report row.
  local name="$1"
  shift
  echo
  echo "=== ci stage: $name ==="
  local start end rc status
  start="$(date +%s)"
  "$@"
  rc=$?
  end="$(date +%s)"
  if [[ "$rc" == 0 ]]; then
    status="pass"
  else
    status="fail"
    FAILED=1
  fi
  echo "=== ci stage: $name -> $status (${rc}) in $((end - start))s ==="
  STAGE_JSON+=("{\"stage\":\"$name\",\"status\":\"$status\",\"exit_code\":$rc,\"seconds\":$((end - start))}")
}

run_stage configure cmake -B build -S .
run_stage build cmake --build build -j
run_stage test ctest --test-dir build --output-on-failure -j

# The four static legs individually (see scripts/static.sh for what each
# proves); STRG_REQUIRE_CLANG passes through so CI can insist the
# Clang-only legs actually ran.
run_stage static_lint env STRG_STATIC_LEG=lint scripts/static.sh
run_stage static_thread_safety env STRG_STATIC_LEG=thread-safety scripts/static.sh
run_stage static_clang_tidy env STRG_STATIC_LEG=tidy scripts/static.sh
run_stage static_lock_graph env STRG_STATIC_LEG=lock-graph scripts/static.sh

mkdir -p "$(dirname "$REPORT")"
{
  printf '{"stages":['
  for i in "${!STAGE_JSON[@]}"; do
    [[ "$i" -gt 0 ]] && printf ','
    printf '%s' "${STAGE_JSON[$i]}"
  done
  printf '],"ok":%s}\n' "$([[ "$FAILED" == 0 ]] && echo true || echo false)"
} > "$REPORT"
echo
echo "ci.sh: report written to $REPORT"
if [[ "$FAILED" != 0 ]]; then
  echo "ci.sh: FAILED (see report)"
  exit 1
fi
echo "ci.sh: all stages green"
