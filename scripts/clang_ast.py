#!/usr/bin/env python3
"""Shared libclang harness for the repo's AST-grade analyses.

Two consumers:
  - scripts/lock_graph.py  — harvests MutexLock/ReaderLock/WriterLock sites
    and STRG_REQUIRES/STRG_ACQUIRE edges to build the cross-TU
    lock-acquisition graph.
  - scripts/strg_lint.py   — promotes its most fragile regex rules to AST
    checks (token-exact, comment/string-proof) when libclang is importable.

The harness degrades loudly, never silently: `availability()` returns
(ok, reason); consumers print the reason on skip, and STRG_REQUIRE_CLANG=1
turns the skip into a hard failure (scripts/static.sh wires this for CI).

Nothing here requires clang at import time — `import clang.cindex` happens
lazily inside availability()/index() so the pure-Python legs of both
consumers keep working on GCC-only containers.
"""

from __future__ import annotations

import json
import os
import shlex
from pathlib import Path

_CANDIDATE_LIBCLANG = [
    # Distro locations, newest first. cindex also probes its own defaults;
    # these cover Debian/Ubuntu llvm-N packaging where the default misses.
    "/usr/lib/llvm-20/lib/libclang.so",
    "/usr/lib/llvm-19/lib/libclang.so",
    "/usr/lib/llvm-18/lib/libclang.so",
    "/usr/lib/llvm-17/lib/libclang.so",
    "/usr/lib/llvm-16/lib/libclang.so",
    "/usr/lib/llvm-15/lib/libclang.so",
    "/usr/lib/llvm-14/lib/libclang.so",
    "/usr/lib/x86_64-linux-gnu/libclang-14.so.1",
]

_availability = None  # cached (ok, reason)
_index = None


def availability():
    """(ok, reason): can this environment run the AST-grade analyses?

    ok=False reasons distinguish the two failure modes a CI log needs to
    tell apart: the python bindings are missing vs. the bindings import but
    no loadable libclang.so exists.
    """
    global _availability
    if _availability is not None:
        return _availability
    try:
        import clang.cindex as cindex  # noqa: F401  (probe only)
    except ImportError:
        _availability = (
            False,
            "python module clang.cindex not importable (install the "
            "python3-clang package matching your LLVM, or pip 'libclang')",
        )
        return _availability
    import clang.cindex as cindex

    override = os.environ.get("STRG_LIBCLANG")
    candidates = [override] if override else [None] + _CANDIDATE_LIBCLANG
    last_err = None
    for cand in candidates:
        try:
            if cand:
                cindex.Config.library_file = cand
            cindex.Index.create()
            _availability = (True, cand or "default libclang search path")
            return _availability
        except Exception as e:  # cindex raises LibclangError subclasses
            last_err = e
            # Config is latched after first successful create; reset for
            # the next candidate (cindex allows reassignment until loaded).
            try:
                cindex.Config.loaded = False
            except Exception:
                pass
    _availability = (
        False,
        "clang.cindex imports but no loadable libclang.so found "
        f"(last error: {last_err}); set STRG_LIBCLANG=/path/to/libclang.so",
    )
    return _availability


def require(context):
    """Abort-or-return gate: honors STRG_REQUIRE_CLANG=1.

    Returns True when AST analysis can run. When it cannot: prints the loud
    skip (and raises SystemExit(1) under STRG_REQUIRE_CLANG=1 so CI cannot
    go green on a silently skipped leg).
    """
    ok, reason = availability()
    if ok:
        return True
    msg = f"[{context}] SKIP AST leg: {reason}"
    if os.environ.get("STRG_REQUIRE_CLANG") == "1":
        print(f"{msg}\n[{context}] STRG_REQUIRE_CLANG=1: treating the "
              "skipped Clang leg as a FAILURE")
        raise SystemExit(1)
    print(msg)
    return False


def index():
    """The process-wide cindex.Index (availability() must have passed)."""
    global _index
    if _index is None:
        import clang.cindex as cindex

        _index = cindex.Index.create()
    return _index


def load_compile_commands(build_dir):
    """[(source_path, [args...])] from build_dir/compile_commands.json.

    Parsed by hand rather than through cindex.CompilationDatabase so the
    caller can filter/patch args (drop -o, -c, the source operand) the same
    way regardless of libclang version.
    """
    db = Path(build_dir) / "compile_commands.json"
    if not db.is_file():
        return None
    entries = []
    for entry in json.loads(db.read_text()):
        src = str(Path(entry["directory"]) / entry["file"]) \
            if not os.path.isabs(entry["file"]) else entry["file"]
        if "arguments" in entry:
            argv = list(entry["arguments"])
        else:
            argv = shlex.split(entry["command"])
        args = []
        skip_next = False
        for a in argv[1:]:  # drop the compiler itself
            if skip_next:
                skip_next = False
                continue
            if a in ("-o", "-c"):
                skip_next = a == "-o"
                continue
            if a == entry["file"] or a == src:
                continue
            args.append(a)
        entries.append((src, args))
    return entries


def parse_tu(src, args):
    """TranslationUnit for src, raising on hard parse failure."""
    import clang.cindex as cindex

    tu = index().parse(
        src, args=args,
        options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    fatal = [d for d in tu.diagnostics if d.severity >= d.Error]
    if fatal:
        raise RuntimeError(
            f"{src}: {len(fatal)} parse error(s); first: {fatal[0].spelling}")
    return tu


def walk(cursor, predicate):
    """Depth-first yield of cursors matching predicate."""
    stack = [cursor]
    while stack:
        c = stack.pop()
        if predicate(c):
            yield c
        stack.extend(reversed(list(c.get_children())))


def enclosing_function(cursor):
    """Nearest enclosing function/method cursor, or None."""
    import clang.cindex as cindex

    kinds = (
        cindex.CursorKind.FUNCTION_DECL,
        cindex.CursorKind.CXX_METHOD,
        cindex.CursorKind.CONSTRUCTOR,
        cindex.CursorKind.DESTRUCTOR,
        cindex.CursorKind.FUNCTION_TEMPLATE,
        cindex.CursorKind.LAMBDA_EXPR,
    )
    c = cursor.semantic_parent
    while c is not None:
        if c.kind in kinds:
            return c
        c = c.semantic_parent
    return None
