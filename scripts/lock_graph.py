#!/usr/bin/env python3
"""Whole-repo lock-acquisition-graph analysis (deadlock-freedom gate).

Three layers, strongest-available wins:

  1. Declared graph (always runs, pure Python): docs/lock_graph.json lists
     every direct nesting edge (lock B acquired while A is top of the held
     stack) with a where/why justification. This script validates it
     against the single source of truth for ranks — the LockRank enum in
     src/util/sync.h — and fails on:
       - edge endpoints that are not declared ranks,
       - cycles in the acquisition graph (DFS over declared edges),
       - any edge whose direction contradicts the ranks
         (rank(from) must be strictly less than rank(to)).
     It also emits docs/lock_graph.dot for visual review.

  2. Observed graph (libclang leg): when clang.cindex + a
     compile_commands.json are available, every MutexLock/ReaderLock/
     WriterLock construction and STRG_REQUIRES/STRG_ACQUIRE annotation is
     harvested from the AST, RAII scopes give intra-procedural nesting,
     and held-sets propagate across calls to a fixed point. Observed edges
     missing from the declared graph (or contradicting ranks) fail the
     run. Loud skip when libclang is absent; STRG_REQUIRE_CLANG=1 makes
     the skip a hard failure (CI mode).

  3. Runtime: the same hierarchy is enforced dynamically under
     -DSTRG_DEADLOCK_CHECK=ON (src/util/sync.h) — an inversion aborts.

Usage:
  scripts/lock_graph.py                  # validate repo graph, write .dot
  scripts/lock_graph.py --self-test      # run the fixture matrix
  scripts/lock_graph.py --graph F.json   # validate an explicit graph file
  scripts/lock_graph.py --no-ast         # declared-graph checks only
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SYNC_H = REPO_ROOT / "src" / "util" / "sync.h"
DEFAULT_GRAPH = REPO_ROOT / "docs" / "lock_graph.json"
DEFAULT_DOT = REPO_ROOT / "docs" / "lock_graph.dot"
FIXTURE_DIR = REPO_ROOT / "tests" / "lock_graph"

RANK_LINE_RE = re.compile(r"^\s*(k[A-Za-z0-9]+)\s*=\s*(\d+)\s*,")


def parse_ranks(sync_h=SYNC_H):
    """{rank name: value} parsed from the LockRank enum in sync.h.

    The enum is the single source of truth; this parse fails loudly if the
    enum moves or the `kName = value,` shape changes, rather than returning
    an empty table that would vacuously pass every check.
    """
    text = sync_h.read_text()
    m = re.search(r"enum class LockRank : int \{(.*?)\};", text, re.S)
    if not m:
        raise SystemExit(
            f"lock_graph: cannot find 'enum class LockRank' in {sync_h}; "
            "the rank parser and the enum must move together")
    ranks = {}
    for line in m.group(1).splitlines():
        lm = RANK_LINE_RE.match(line)
        if lm:
            ranks[lm.group(1)] = int(lm.group(2))
    if "kUnranked" not in ranks or len(ranks) < 2:
        raise SystemExit(
            f"lock_graph: parsed only {sorted(ranks)} from {sync_h}; "
            "the enum body no longer matches the 'kName = value,' shape")
    return ranks


def load_graph(path):
    data = json.loads(Path(path).read_text())
    edges = [(e["from"], e["to"], e.get("where", "")) for e in data["edges"]]
    extra_ranks = {k: int(v) for k, v in data.get("ranks", {}).items()}
    standalone = [s["name"] for s in data.get("standalone", [])]
    return edges, extra_ranks, standalone


def find_cycles(edges):
    """One representative cycle as [n0, n1, ..., n0], or None."""
    adj = {}
    for frm, to, _ in edges:
        adj.setdefault(frm, []).append(to)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in adj}
    stack = []

    def dfs(n):
        color[n] = GRAY
        stack.append(n)
        for nxt in adj.get(n, []):
            c = color.get(nxt, WHITE)
            if c == GRAY:
                return stack[stack.index(nxt):] + [nxt]
            if c == WHITE:
                cyc = dfs(nxt)
                if cyc:
                    return cyc
        stack.pop()
        color[n] = BLACK
        return None

    for n in list(adj):
        if color.get(n, WHITE) == WHITE:
            cyc = dfs(n)
            if cyc:
                return cyc
    return None


def check_graph(edges, ranks, label="declared graph"):
    """Validates edges against ranks; returns a list of error strings."""
    errors = []
    known = set(ranks)
    for frm, to, where in edges:
        for name in (frm, to):
            if name not in known:
                errors.append(
                    f"{label}: edge {frm} -> {to} names unknown rank "
                    f"'{name}' — every endpoint must be a LockRank "
                    f"enumerator in src/util/sync.h (known: "
                    f"{', '.join(sorted(known))})")
    cyc = find_cycles(edges)
    if cyc:
        errors.append(
            f"{label}: acquisition CYCLE {' -> '.join(cyc)} — two threads "
            "taking these locks in different orders can deadlock. Break "
            "the cycle by releasing the outer lock first (hand-over-hand) "
            "or re-ranking so one global order exists.")
    for frm, to, where in edges:
        if frm in known and to in known:
            if ranks[frm] >= ranks[to]:
                site = f" at {where}" if where else ""
                errors.append(
                    f"{label}: edge {frm}({ranks[frm]}) -> {to}({ranks[to]})"
                    f"{site} CONTRADICTS the declared ranks — an inner "
                    "acquisition must have a strictly greater rank. Either "
                    "the code takes these locks in the wrong order, or the "
                    "LockRank table in src/util/sync.h needs re-ordering "
                    "(then update docs/lock_graph.json to match).")
    return errors


def emit_dot(edges, ranks, standalone, out):
    lines = ["digraph lock_graph {", "  rankdir=TB;",
             '  node [shape=box, fontname="monospace"];']
    nodes = sorted(
        {n for e in edges for n in e[:2]} | set(standalone),
        key=lambda n: ranks.get(n, 1 << 30))
    for n in nodes:
        r = ranks.get(n, "?")
        lines.append(f'  "{n}" [label="{n}\\nrank {r}"];')
    for frm, to, where in edges:
        tip = where.replace('"', "'")
        lines.append(f'  "{frm}" -> "{to}" [tooltip="{tip}"];')
    lines.append("}")
    text = "\n".join(lines) + "\n"
    if out == "-":
        sys.stdout.write(text)
    else:
        Path(out).write_text(text)


# ---------------------------------------------------------------------------
# AST leg: observed acquisition graph via libclang.

LOCK_TYPES = ("MutexLock", "ReaderLock", "WriterLock")


def _member_rank_table(tu_cursor, src_root):
    """(class usr, field name) -> rank, from `{LockRank::kX}` initializers.

    Also locals: VAR_DECL of Mutex/SharedMutex with a rank argument maps
    var-usr -> rank.
    """
    import clang.cindex as cindex

    table = {}
    rank_re = re.compile(r"LockRank::(k[A-Za-z0-9]+)")
    for c in tu_cursor.walk_preorder():
        if c.kind not in (cindex.CursorKind.FIELD_DECL,
                          cindex.CursorKind.VAR_DECL):
            continue
        if not c.location.file:
            continue
        if not str(c.location.file).startswith(str(src_root)):
            continue
        t = c.type.spelling
        if not t.endswith(("Mutex", "SharedMutex")) and \
           "strg::Mutex" not in t and "strg::SharedMutex" not in t:
            continue
        toks = " ".join(tok.spelling for tok in c.get_tokens())
        m = rank_re.search(toks)
        if m:
            table[c.get_usr()] = m.group(1)
    return table


def _function_summaries(tu_cursor, rank_by_usr, src_root):
    """fn-usr -> {'acquires': [(rank, order)], 'entry': [ranks],
                  'calls': [(callee usr, held ranks at call)]}

    Intra-procedural: a RAII lock guard's scope is its enclosing compound
    statement; anything lexically after the guard decl inside that scope is
    'under' it. STRG_REQUIRES/STRG_ACQUIRE annotations contribute entry
    holds. Good enough for this codebase's guard-per-scope idiom; the
    runtime checker is the backstop for exotic shapes.
    """
    import clang.cindex as cindex

    fn_kinds = (cindex.CursorKind.FUNCTION_DECL, cindex.CursorKind.CXX_METHOD,
                cindex.CursorKind.CONSTRUCTOR, cindex.CursorKind.DESTRUCTOR)
    summaries = {}

    def ranks_of_guard(var_cursor):
        # MutexLock lock(some_mu_): resolve the argument's referenced decl.
        for ref in var_cursor.walk_preorder():
            if ref.kind in (cindex.CursorKind.MEMBER_REF_EXPR,
                            cindex.CursorKind.DECL_REF_EXPR):
                d = ref.referenced
                if d is not None and d.get_usr() in rank_by_usr:
                    return rank_by_usr[d.get_usr()]
        return None

    def entry_ranks(fn):
        out = []
        for ch in fn.get_children():
            if ch.kind == cindex.CursorKind.ANNOTATE_ATTR or \
               "requires_capability" in ch.spelling or \
               "acquire_capability" in ch.spelling:
                for ref in ch.walk_preorder():
                    d = getattr(ref, "referenced", None)
                    if d is not None and d.get_usr() in rank_by_usr:
                        out.append(rank_by_usr[d.get_usr()])
        return out

    def visit_body(node, held, summary):
        """held: list of ranks active at this point (lexical order)."""
        local_held = list(held)
        for ch in node.get_children():
            if ch.kind == cindex.CursorKind.DECL_STMT:
                for d in ch.get_children():
                    if d.kind == cindex.CursorKind.VAR_DECL and \
                       any(d.type.spelling.endswith(t) for t in LOCK_TYPES):
                        r = ranks_of_guard(d)
                        if r:
                            if local_held:
                                summary["edges"].append((local_held[-1], r,
                                                         str(d.location)))
                            local_held.append(r)
            elif ch.kind == cindex.CursorKind.CALL_EXPR:
                callee = ch.referenced
                if callee is not None:
                    summary["calls"].append(
                        (callee.get_usr(), tuple(local_held),
                         str(ch.location)))
                visit_body(ch, local_held, summary)
            elif ch.kind == cindex.CursorKind.COMPOUND_STMT:
                visit_body(ch, local_held, summary)  # fresh guard scope
            else:
                visit_body(ch, local_held, summary)

    for c in tu_cursor.walk_preorder():
        if c.kind in fn_kinds and c.is_definition():
            if not c.location.file or \
               not str(c.location.file).startswith(str(src_root)):
                continue
            summary = {"edges": [], "calls": [], "entry": entry_ranks(c),
                       "first": []}
            body = next((ch for ch in c.get_children()
                         if ch.kind == cindex.CursorKind.COMPOUND_STMT), None)
            if body is not None:
                visit_body(body, summary["entry"], summary)
            # direct acquisitions not under another guard, for propagation
            summary["first"] = [e[1] for e in summary["edges"]] or []
            summaries[c.get_usr()] = summary
    return summaries


def observed_edges(build_dir, src_root):
    """Cross-TU observed edge set [(from, to, where)] via libclang."""
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    import clang_ast

    entries = clang_ast.load_compile_commands(build_dir)
    if entries is None:
        return None, f"no compile_commands.json under {build_dir}"

    all_edges = []
    rank_by_usr = {}
    summaries = {}
    for src, args in entries:
        if not src.startswith(str(src_root)):
            continue
        tu = clang_ast.parse_tu(src, args)
        rank_by_usr.update(_member_rank_table(tu.cursor, src_root))
        summaries.update(
            _function_summaries(tu.cursor, rank_by_usr, src_root))

    # Fixed-point propagation: a call made while holding H reaches every
    # rank the callee (transitively) acquires first.
    acquires = {usr: set(s["first"]) | {e[1] for e in s["edges"]}
                for usr, s in summaries.items()}
    changed = True
    while changed:
        changed = False
        for usr, s in summaries.items():
            for callee, held, where in s["calls"]:
                for r in acquires.get(callee, ()):
                    if r not in acquires[usr]:
                        acquires[usr].add(r)
                        changed = True

    for usr, s in summaries.items():
        all_edges.extend(s["edges"])
        for callee, held, where in s["calls"]:
            if held:
                top = held[-1]
                for r in acquires.get(callee, ()):
                    all_edges.append((top, r, where))
    # dedupe, keep first witness
    seen = {}
    for frm, to, where in all_edges:
        seen.setdefault((frm, to), where)
    return [(f, t, w) for (f, t), w in sorted(seen.items())], None


def run_ast_leg(build_dir, declared, ranks):
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    import clang_ast

    if not clang_ast.require("lock_graph"):
        return []
    edges, err = observed_edges(build_dir, REPO_ROOT / "src")
    if err:
        msg = f"[lock_graph] SKIP AST leg: {err}"
        if os.environ.get("STRG_REQUIRE_CLANG") == "1":
            print(msg)
            print("[lock_graph] STRG_REQUIRE_CLANG=1: hard failure")
            return ["AST leg unavailable under STRG_REQUIRE_CLANG=1"]
        print(msg)
        return []
    errors = check_graph(edges, ranks, label="observed graph")
    declared_set = {(f, t) for f, t, _ in declared}
    for frm, to, where in edges:
        if (frm, to) not in declared_set:
            errors.append(
                f"observed graph: edge {frm} -> {to} (at {where}) is NOT "
                "declared in docs/lock_graph.json — add it there with a "
                "where/why justification (and check its rank order)")
    print(f"[lock_graph] AST leg: {len(edges)} observed edge(s) verified")
    return errors


# ---------------------------------------------------------------------------


def validate(graph_path, dot_out=None, use_ast=True, build_dir=None,
             quiet=False):
    """Returns a list of error strings (empty = pass)."""
    ranks = parse_ranks()
    edges, extra_ranks, standalone = load_graph(graph_path)
    ranks = {**ranks, **extra_ranks}
    errors = check_graph(edges, ranks)
    if dot_out and not errors:
        emit_dot(edges, ranks, standalone, dot_out)
        if not quiet:
            print(f"[lock_graph] wrote {dot_out}")
    if use_ast and not errors:
        bd = build_dir or next(
            (d for d in (REPO_ROOT / "build-static", REPO_ROOT / "build")
             if (d / "compile_commands.json").is_file()),
            REPO_ROOT / "build-static")
        errors += run_ast_leg(bd, edges, ranks)
    if not errors and not quiet:
        print(f"[lock_graph] OK: {len(edges)} declared edge(s), "
              f"{len(ranks) - 1} ranked lock(s), cycle-free, "
              "ranks consistent")
    return errors


def self_test():
    """Fixture matrix: clean passes; cycle and contradiction fail with
    actionable messages."""
    cases = [
        ("clean.json", None),
        ("cycle.json", "CYCLE"),
        ("rank_contradiction.json", "CONTRADICTS"),
    ]
    failures = []
    for name, want in cases:
        path = FIXTURE_DIR / name
        errors = validate(path, dot_out=None, use_ast=False, quiet=True)
        if want is None:
            if errors:
                failures.append(f"{name}: expected PASS, got: {errors}")
        else:
            if not errors:
                failures.append(f"{name}: expected failure mentioning "
                                f"'{want}', but it passed")
            elif not any(want in e for e in errors):
                failures.append(f"{name}: failure did not mention '{want}': "
                                f"{errors}")
    # The real graph must also pass (declared leg only — self-test must be
    # environment-independent).
    real = validate(DEFAULT_GRAPH, dot_out=None, use_ast=False, quiet=True)
    if real:
        failures.append(f"docs/lock_graph.json: {real}")
    if failures:
        print("lock_graph --self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"lock_graph --self-test OK ({len(cases)} fixtures + repo graph)")
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--graph", default=str(DEFAULT_GRAPH))
    ap.add_argument("--dot", default=str(DEFAULT_DOT),
                    help="output .dot path, '-' for stdout, '' to skip")
    ap.add_argument("--build-dir", default=None,
                    help="directory holding compile_commands.json")
    ap.add_argument("--no-ast", action="store_true",
                    help="declared-graph checks only (skip libclang leg)")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()

    errors = validate(args.graph, dot_out=args.dot or None,
                      use_ast=not args.no_ast, build_dir=args.build_dir)
    if errors:
        print("lock_graph: FAILED")
        for e in errors:
            print(f"  {e}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
