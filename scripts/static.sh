#!/usr/bin/env bash
# Static-analysis gate: three legs, each independently loud about skipping.
#
#   1. strg_lint.py        repo invariant linter (self-test first, then the
#                          tree) — pure python, always runs.
#   2. -Wthread-safety     Clang build of the whole tree with
#                          STRG_STATIC_ANALYSIS=ON (-Wthread-safety
#                          -Wthread-safety-beta -Werror). Requires clang++;
#                          skipped loudly when absent.
#   3. clang-tidy          curated .clang-tidy over src/, findings diffed
#                          against scripts/clang_tidy_baseline.txt (empty:
#                          the tree is expected clean). Requires clang-tidy
#                          and the compile_commands.json from leg 2; skipped
#                          loudly when absent.
#
#   scripts/static.sh            # run everything available
#   STRG_STATIC_JOBS=4 ...       # cap build parallelism
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${STRG_STATIC_JOBS:-$(nproc 2>/dev/null || echo 4)}"
FAILED=0

find_tool() {
  # find_tool <base-name> — prints the first of base, base-20..base-14 on PATH.
  local base="$1" v
  if command -v "$base" >/dev/null 2>&1; then echo "$base"; return 0; fi
  for v in 20 19 18 17 16 15 14; do
    if command -v "$base-$v" >/dev/null 2>&1; then echo "$base-$v"; return 0; fi
  done
  return 1
}

echo "== leg 1: repo invariant linter (scripts/strg_lint.py) =="
python3 scripts/strg_lint.py --self-test
python3 scripts/strg_lint.py

echo
echo "== leg 2: Clang thread-safety build (STRG_STATIC_ANALYSIS=ON) =="
if CLANGXX="$(find_tool clang++)"; then
  CLANGC="$(find_tool clang || echo "${CLANGXX/clang++/clang}")"
  cmake -B build-static -S . \
    -DCMAKE_C_COMPILER="$CLANGC" -DCMAKE_CXX_COMPILER="$CLANGXX" \
    -DSTRG_STATIC_ANALYSIS=ON >/dev/null
  cmake --build build-static -j "$JOBS"
  echo "thread-safety build: clean (no -Wthread-safety findings)"
else
  echo "------------------------------------------------------------------"
  echo "SKIP: thread-safety build NOT run — no clang++ (or clang++-NN) on"
  echo "PATH. The STRG_* annotations are no-op macros under other compilers,"
  echo "so this leg can only be proven with Clang. Install clang to run it."
  echo "------------------------------------------------------------------"
fi

echo
echo "== leg 3: clang-tidy over src/ vs baseline =="
if TIDY="$(find_tool clang-tidy)"; then
  if [[ ! -f build-static/compile_commands.json ]]; then
    echo "------------------------------------------------------------------"
    echo "SKIP: clang-tidy NOT run — build-static/compile_commands.json is"
    echo "missing (leg 2 must succeed first to export it)."
    echo "------------------------------------------------------------------"
  else
    mapfile -t TIDY_SOURCES < <(find src -name '*.cpp' -o -name '*.cc' | sort)
    RAW="build-static/clang_tidy_findings.raw"
    : > "$RAW"
    # || true: clang-tidy exits nonzero on findings; the diff below is the gate.
    "$TIDY" -p build-static --quiet "${TIDY_SOURCES[@]}" >> "$RAW" 2>/dev/null || true
    # Normalize: keep only finding lines, strip the absolute path prefix so
    # the baseline is machine-independent.
    sed -n 's|^.*/src/|src/|p' "$RAW" | grep -E ':[0-9]+:[0-9]+: (warning|error):' \
      | LC_ALL=C sort > build-static/clang_tidy_findings.txt || true
    if diff -u scripts/clang_tidy_baseline.txt build-static/clang_tidy_findings.txt; then
      echo "clang-tidy: findings match baseline ($(wc -l < scripts/clang_tidy_baseline.txt) entries)"
    else
      echo "clang-tidy: NEW findings vs scripts/clang_tidy_baseline.txt (see diff above)"
      FAILED=1
    fi
  fi
else
  echo "------------------------------------------------------------------"
  echo "SKIP: clang-tidy NOT run — no clang-tidy (or clang-tidy-NN) on PATH."
  echo "Install clang-tools to run the curated .clang-tidy gate."
  echo "------------------------------------------------------------------"
fi

echo
if [[ "$FAILED" != 0 ]]; then
  echo "static.sh: FAILED"
  exit 1
fi
echo "static.sh: all available legs green"
