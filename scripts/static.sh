#!/usr/bin/env bash
# Static-analysis gate: four legs, each independently loud about skipping.
#
#   1. strg_lint.py        repo invariant linter (self-test first, then the
#                          tree) — pure python, always runs. AST-grade rule
#                          variants engage automatically when libclang is
#                          importable; regex fallbacks otherwise.
#   2. -Wthread-safety     Clang build of the whole tree with
#                          STRG_STATIC_ANALYSIS=ON (-Wthread-safety
#                          -Wthread-safety-beta -Werror). Requires clang++;
#                          skipped loudly when absent.
#   3. clang-tidy          curated .clang-tidy over src/, findings diffed
#                          against scripts/clang_tidy_baseline.txt (empty:
#                          the tree is expected clean). Requires clang-tidy
#                          and the compile_commands.json from leg 2; skipped
#                          loudly when absent.
#   4. lock_graph.py       deadlock-freedom gate: validates the declared
#                          lock-acquisition graph (docs/lock_graph.json)
#                          against the LockRank hierarchy in sync.h — cycle
#                          and rank-contradiction checks always run (pure
#                          python); the libclang observed-graph leg engages
#                          when available. Emits docs/lock_graph.dot.
#
#   scripts/static.sh            # run everything available
#   STRG_STATIC_JOBS=4 ...       # cap build parallelism
#   STRG_REQUIRE_CLANG=1 ...     # CI mode: any "loud skip" of a Clang-only
#                                # leg becomes a hard failure instead of a
#                                # silent green
#   STRG_STATIC_LEG=<name> ...   # run ONE leg (lint | thread-safety | tidy
#                                # | lock-graph) — scripts/ci.sh uses this
#                                # to time and report each leg separately
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${STRG_STATIC_JOBS:-$(nproc 2>/dev/null || echo 4)}"
REQUIRE_CLANG="${STRG_REQUIRE_CLANG:-0}"
LEG="${STRG_STATIC_LEG:-all}"
case "$LEG" in
  all|lint|thread-safety|tidy|lock-graph) ;;
  *) echo "static.sh: unknown STRG_STATIC_LEG '$LEG'" >&2; exit 2 ;;
esac
FAILED=0

leg_enabled() { [[ "$LEG" == "all" || "$LEG" == "$1" ]]; }

find_tool() {
  # find_tool <base-name> — prints the first of base, base-20..base-14 on PATH.
  local base="$1" v
  if command -v "$base" >/dev/null 2>&1; then echo "$base"; return 0; fi
  for v in 20 19 18 17 16 15 14; do
    if command -v "$base-$v" >/dev/null 2>&1; then echo "$base-$v"; return 0; fi
  done
  return 1
}

require_clang_failed() {
  # require_clang_failed <leg> — under STRG_REQUIRE_CLANG=1 a skipped Clang
  # leg is a failure, not a warning (CI must not go green without proof).
  if [[ "$REQUIRE_CLANG" == "1" ]]; then
    echo "STRG_REQUIRE_CLANG=1: the skipped '$1' leg is a HARD FAILURE"
    FAILED=1
  fi
}

if leg_enabled lint; then
echo "== leg 1: repo invariant linter (scripts/strg_lint.py) =="
python3 scripts/strg_lint.py --self-test
python3 scripts/strg_lint.py
fi

if leg_enabled thread-safety; then
echo
echo "== leg 2: Clang thread-safety build (STRG_STATIC_ANALYSIS=ON) =="
if CLANGXX="$(find_tool clang++)"; then
  CLANGC="$(find_tool clang || echo "${CLANGXX/clang++/clang}")"
  cmake -B build-static -S . \
    -DCMAKE_C_COMPILER="$CLANGC" -DCMAKE_CXX_COMPILER="$CLANGXX" \
    -DSTRG_STATIC_ANALYSIS=ON >/dev/null
  cmake --build build-static -j "$JOBS"
  echo "thread-safety build: clean (no -Wthread-safety findings)"
else
  echo "------------------------------------------------------------------"
  echo "SKIP: thread-safety build NOT run — no clang++ (or clang++-NN) on"
  echo "PATH. The STRG_* annotations are no-op macros under other compilers,"
  echo "so this leg can only be proven with Clang. Install clang to run it."
  echo "------------------------------------------------------------------"
  require_clang_failed "thread-safety build"
fi
fi

if leg_enabled tidy; then
echo
echo "== leg 3: clang-tidy over src/ vs baseline =="
if TIDY="$(find_tool clang-tidy)"; then
  if [[ ! -f build-static/compile_commands.json ]]; then
    echo "------------------------------------------------------------------"
    echo "SKIP: clang-tidy NOT run — build-static/compile_commands.json is"
    echo "missing (leg 2 must succeed first to export it)."
    echo "------------------------------------------------------------------"
    require_clang_failed "clang-tidy"
  else
    mapfile -t TIDY_SOURCES < <(find src -name '*.cpp' -o -name '*.cc' | sort)
    RAW="build-static/clang_tidy_findings.raw"
    : > "$RAW"
    # || true: clang-tidy exits nonzero on findings; the diff below is the gate.
    "$TIDY" -p build-static --quiet "${TIDY_SOURCES[@]}" >> "$RAW" 2>/dev/null || true
    # Normalize: keep only finding lines, strip the absolute path prefix so
    # the baseline is machine-independent.
    sed -n 's|^.*/src/|src/|p' "$RAW" | grep -E ':[0-9]+:[0-9]+: (warning|error):' \
      | LC_ALL=C sort > build-static/clang_tidy_findings.txt || true
    if diff -u scripts/clang_tidy_baseline.txt build-static/clang_tidy_findings.txt; then
      echo "clang-tidy: findings match baseline ($(wc -l < scripts/clang_tidy_baseline.txt) entries)"
    else
      echo "clang-tidy: NEW findings vs scripts/clang_tidy_baseline.txt (see diff above)"
      FAILED=1
    fi
  fi
else
  echo "------------------------------------------------------------------"
  echo "SKIP: clang-tidy NOT run — no clang-tidy (or clang-tidy-NN) on PATH."
  echo "Install clang-tools to run the curated .clang-tidy gate."
  echo "------------------------------------------------------------------"
  require_clang_failed "clang-tidy"
fi
fi

if leg_enabled lock-graph; then
echo
echo "== leg 4: lock-acquisition-graph analysis (scripts/lock_graph.py) =="
# The declared-graph checks (cycles, rank contradictions, dot emission) are
# pure python and always gate; the libclang observed-graph leg skips loudly
# on its own (and hard-fails itself under STRG_REQUIRE_CLANG=1).
python3 scripts/lock_graph.py --self-test
if ! python3 scripts/lock_graph.py; then
  FAILED=1
fi
fi

echo
if [[ "$FAILED" != 0 ]]; then
  echo "static.sh: FAILED"
  exit 1
fi
if [[ "$LEG" == "all" ]]; then
  echo "static.sh: all available legs green"
else
  echo "static.sh: leg '$LEG' green"
fi
