#!/usr/bin/env python3
"""Repo-invariant linter: rules the generic tools cannot express.

clang-tidy and -Wthread-safety check what code *does*; this linter checks
what the repo has *decided* — contracts that live across files:

  strg-naked-mutex      No std::mutex / std::condition_variable (or their
                        lock wrappers, or their headers) outside
                        src/util/sync.h. Everything goes through the
                        annotated strg:: wrappers so the capability analysis
                        sees every lock.
  strg-no-throw         No `throw` in src/api or src/storage: those layers
                        speak Status/StatusOr, and an exception sneaking up
                        a StatusOr path skips the typed-error contract.
  strg-no-wallclock-rand  No rand()/srand()/time() in src/: results must be
                        deterministic given the seeded util/random.h RNGs
                        (the PR3/PR4 bit-identical-parallelism contract).
  strg-direct-io        No direct file I/O (fopen / ::open / std::fstream)
                        in src/ outside src/storage/: every durable byte
                        goes through the storage layer so fsync discipline,
                        tmp+rename publication, and CRC framing live in one
                        place.
  strg-bench-json       Every bench/bench_*.cpp must write (or at least
                        name) its BENCH_*.json machine-readable report.
  strg-bench-server-shards  A bench that writes a BENCH_server*.json report
                        must record the shard count and the host's
                        hardware_concurrency in it — serving throughput
                        numbers are meaningless without both.
  strg-bench-simd-tier  A bench that writes any BENCH_*.json must record the
                        active simd dispatch tier (bench::JsonReport emits
                        it automatically; hand-rolled reports name a
                        "simd_tier" field themselves) — kernel timings are
                        incomparable without knowing which tier ran.
  strg-bench-cluster-stamp  A bench that writes a BENCH_cluster*.json report
                        must stamp "k", "restarts", and "bound_mode" —
                        clustering distance counts mean nothing without the
                        centroid count, the restart multiplier, and which
                        side of the use_bounds A/B produced them.
  strg-simd-intrinsics  No vendor intrinsics (immintrin.h / arm_neon.h,
                        _mm*/__m*/v*q_f64 tokens) in src/ outside
                        src/distance/simd/: every vectorized loop goes
                        through the dispatched KernelOps table so the
                        scalar-equivalence proof and the per-TU ISA flags
                        stay in one audited place.
  strg-test-label       Every tests/*_test.cpp declares `// ctest-labels:`,
                        which tests/CMakeLists.txt applies — so label-driven
                        suites (ctest -L recovery|distance|ingest|static)
                        can never silently miss a new test file.
  strg-deprecated-catalog  No new uses of the deprecated throwing Catalog
                        wrappers (Deserialize / SaveToFile / LoadFromFile)
                        under src/: internal code speaks Status/StatusOr
                        (the Try* forms); the wrappers exist only for
                        external callers during the deprecation window.

Suppressions are allowed but never bare: `NOLINT(<rule>): <why>` on the
offending line (a missing rule tag or empty justification is itself an
error), and every STRG_NO_THREAD_SAFETY_ANALYSIS needs a justification
comment within the five lines above it.

Usage:
  scripts/strg_lint.py              # lint the tree; exit 0 iff clean
  scripts/strg_lint.py --self-test  # prove each rule fires on bad fixtures
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CXX_EXTS = (".h", ".hpp", ".cc", ".cpp")

NOLINT_RE = re.compile(r"NOLINT\(([a-z0-9-]+)\):\s*(\S.*)?")
BARE_NOLINT_RE = re.compile(r"NOLINT(?!\([a-z0-9-]+\):\s*\S)")

NAKED_MUTEX_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|recursive_timed_mutex"
    r"|timed_mutex|condition_variable(?:_any)?|lock_guard|unique_lock"
    r"|scoped_lock|shared_lock)\b"
    r"|#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>")
THROW_RE = re.compile(r"\bthrow\b")
WALLCLOCK_RE = re.compile(r"(?<![A-Za-z0-9_:])(?:rand|srand|time)\s*\(")
# Case-sensitive on purpose: `::open(` is the POSIX call; `PageFile::Open(`
# and friends are the sanctioned storage-layer wrappers.
DIRECT_IO_RE = re.compile(
    r"\bfopen\s*\(|::open\s*\(|\bstd::[io]?fstream\b"
    r"|#\s*include\s*<fstream>")
BENCH_JSON_RE = re.compile(r"BENCH_[A-Za-z0-9_]+\.json")
BENCH_SERVER_JSON_RE = re.compile(r"BENCH_server[A-Za-z0-9_]*\.json")
BENCH_CLUSTER_JSON_RE = re.compile(r"BENCH_cluster[A-Za-z0-9_]*\.json")
HW_CONCURRENCY_RE = re.compile(r"hardware_concurrency")
SHARD_FIELD_RE = re.compile(r'\\?"shards\\?"')
K_FIELD_RE = re.compile(r'\\?"k\\?"')
RESTARTS_FIELD_RE = re.compile(r'\\?"restarts\\?"')
BOUND_MODE_FIELD_RE = re.compile(r'\\?"bound_mode\\?"')
# "TryDeserialize" etc. do not match: no word boundary after "Try".
DEPRECATED_CATALOG_RE = re.compile(
    r"\b(?:Deserialize|SaveToFile|LoadFromFile)\s*\(")
TEST_LABEL_RE = re.compile(r"//\s*ctest-labels:\s*([a-z][a-z0-9_]*)")
OPTOUT_RE = re.compile(r"STRG_NO_THREAD_SAFETY_ANALYSIS")
SIMD_TIER_RE = re.compile(r"simd_tier")
JSON_REPORT_RE = re.compile(r"\bJsonReport\b")
SIMD_INTRINSICS_RE = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin|arm_neon|emmintrin|xmmintrin"
    r"|smmintrin|tmmintrin|nmmintrin|wmmintrin|avxintrin|avx2intrin)\.h>"
    r"|\b_mm(?:256|512)?_[A-Za-z0-9_]+"
    r"|\b__m(?:128|256|512)[di]?\b"
    r"|\b(?:float|int|uint)(?:8|16|32|64)x(?:1|2|4|8|16)_t\b"
    r"|\bv[a-z0-9]+q?_[fsu](?:8|16|32|64)\b")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        rel = os.path.relpath(self.path, REPO)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(lines: list[str]) -> list[str]:
    """Returns lines with // and /* */ comment text blanked (string-literal
    agnostic on purpose: the patterns we match do not occur in literals
    here, and a false positive is suppressible with a justified NOLINT)."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    i = end + 2
                    in_block = False
            else:
                slash = line.find("//", i)
                block = line.find("/*", i)
                if slash >= 0 and (block < 0 or slash < block):
                    result.append(line[i:slash])
                    i = len(line)
                elif block >= 0:
                    result.append(line[i:block])
                    i = block + 2
                    in_block = True
                else:
                    result.append(line[i:])
                    i = len(line)
        out.append("".join(result))
    return out


def suppressed(raw_line: str, rule: str, findings: list, path: str,
               lineno: int) -> bool:
    """True if the line carries a justified NOLINT for `rule`. A NOLINT
    that is bare (no rule, or no justification text) is itself a finding."""
    m = NOLINT_RE.search(raw_line)
    if m and m.group(1) == rule and m.group(2):
        return True
    if "NOLINT" in raw_line and BARE_NOLINT_RE.search(raw_line):
        findings.append(Finding(
            path, lineno, "strg-bare-suppression",
            "NOLINT must name its rule and justify itself: "
            "`NOLINT(<rule>): <why>`"))
    return False


def file_suppressed(text: str, rule: str) -> bool:
    """True if the file carries a justified NOLINT for `rule` anywhere
    (whole-file rules like the bench-report checks)."""
    return any(m.group(1) == rule and m.group(2)
               for m in NOLINT_RE.finditer(text))


def walk(root: str, subdir: str):
    base = os.path.join(root, subdir)
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(CXX_EXTS):
                yield os.path.join(dirpath, name)


def lint_tree(root: str) -> list:
    findings: list = []
    sync_h = os.path.join(root, "src", "util", "sync.h")
    catalog_h = os.path.join(root, "src", "storage", "catalog.h")

    for path in walk(root, "src"):
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
        code = strip_comments(raw)
        rel = os.path.relpath(path, root)
        in_api_or_storage = rel.startswith(("src/api", "src/storage"))
        in_storage = rel.startswith("src/storage")
        in_simd = rel.startswith("src/distance/simd")

        for idx, (raw_line, code_line) in enumerate(zip(raw, code), 1):
            if os.path.abspath(path) != os.path.abspath(sync_h):
                if NAKED_MUTEX_RE.search(code_line) and not suppressed(
                        raw_line, "strg-naked-mutex", findings, path, idx):
                    findings.append(Finding(
                        path, idx, "strg-naked-mutex",
                        "naked std sync primitive; use the annotated "
                        "strg::Mutex/MutexLock/CondVar from util/sync.h"))
            if in_api_or_storage:
                if THROW_RE.search(code_line) and not suppressed(
                        raw_line, "strg-no-throw", findings, path, idx):
                    findings.append(Finding(
                        path, idx, "strg-no-throw",
                        "`throw` on a Status/StatusOr code path; return a "
                        "typed api::Status instead"))
            if not in_storage:
                if DIRECT_IO_RE.search(code_line) and not suppressed(
                        raw_line, "strg-direct-io", findings, path, idx):
                    findings.append(Finding(
                        path, idx, "strg-direct-io",
                        "direct file I/O outside src/storage/; route bytes "
                        "through the storage layer (storage/file_io.h, "
                        "PageFile, WalWriter) so fsync discipline and CRC "
                        "framing stay in one place"))
            if os.path.abspath(path) != os.path.abspath(catalog_h):
                if DEPRECATED_CATALOG_RE.search(code_line) and not suppressed(
                        raw_line, "strg-deprecated-catalog", findings, path,
                        idx):
                    findings.append(Finding(
                        path, idx, "strg-deprecated-catalog",
                        "deprecated throwing Catalog wrapper; use "
                        "TryDeserialize/TrySaveToFile/TryLoadFromFile "
                        "(Status/StatusOr) instead"))
            if not in_simd:
                if SIMD_INTRINSICS_RE.search(code_line) and not suppressed(
                        raw_line, "strg-simd-intrinsics", findings, path, idx):
                    findings.append(Finding(
                        path, idx, "strg-simd-intrinsics",
                        "vendor intrinsics outside src/distance/simd/; add "
                        "a kernel to the dispatched KernelOps table so the "
                        "bit-identity proof and per-TU ISA flags stay in "
                        "one place"))
            if WALLCLOCK_RE.search(code_line) and not suppressed(
                    raw_line, "strg-no-wallclock-rand", findings, path, idx):
                findings.append(Finding(
                    path, idx, "strg-no-wallclock-rand",
                    "rand()/srand()/time() break the determinism contract; "
                    "use util/random.h RNGs and steady_clock"))
            if OPTOUT_RE.search(code_line):
                context = " ".join(raw[max(0, idx - 6):idx - 1])
                if ("//" not in context and "*" not in context) or \
                        not re.search(r"(//|\*)\s*\S+\s+\S+", context):
                    findings.append(Finding(
                        path, idx, "strg-bare-suppression",
                        "STRG_NO_THREAD_SAFETY_ANALYSIS needs a "
                        "justification comment within the 5 lines above"))

    bench_dir = os.path.join(root, "bench")
    if os.path.isdir(bench_dir):
        for name in sorted(os.listdir(bench_dir)):
            if not (name.startswith("bench_") and name.endswith(".cpp")):
                continue
            path = os.path.join(bench_dir, name)
            with open(path, encoding="utf-8") as f:
                text = f.read()
            if BENCH_SERVER_JSON_RE.search(text):
                if not (HW_CONCURRENCY_RE.search(text)
                        and SHARD_FIELD_RE.search(text)):
                    m = NOLINT_RE.search(text)
                    if not (m and m.group(1) == "strg-bench-server-shards"
                            and m.group(2)):
                        findings.append(Finding(
                            path, 1, "strg-bench-server-shards",
                            'BENCH_server*.json report must record a '
                            '"shards" field and hardware_concurrency '
                            "(serving numbers are incomparable without "
                            "both), or justify with "
                            "NOLINT(strg-bench-server-shards): <why>"))
            if BENCH_CLUSTER_JSON_RE.search(text):
                if not (K_FIELD_RE.search(text)
                        and RESTARTS_FIELD_RE.search(text)
                        and BOUND_MODE_FIELD_RE.search(text)):
                    m = NOLINT_RE.search(text)
                    if not (m and m.group(1) == "strg-bench-cluster-stamp"
                            and m.group(2)):
                        findings.append(Finding(
                            path, 1, "strg-bench-cluster-stamp",
                            'BENCH_cluster*.json report must stamp "k", '
                            '"restarts", and "bound_mode" (distance counts '
                            "are meaningless without the centroid count, "
                            "the restart multiplier, and the use_bounds "
                            "side), or justify with "
                            "NOLINT(strg-bench-cluster-stamp): <why>"))
            if BENCH_JSON_RE.search(text):
                if not (SIMD_TIER_RE.search(text)
                        or JSON_REPORT_RE.search(text)) and \
                        not file_suppressed(text, "strg-bench-simd-tier"):
                    findings.append(Finding(
                        path, 1, "strg-bench-simd-tier",
                        'BENCH_*.json report must record the active simd '
                        'dispatch tier (use bench::JsonReport, which emits '
                        '"simd_tier" automatically, or write the field '
                        "yourself), or justify with "
                        "NOLINT(strg-bench-simd-tier): <why>"))
                continue
            m = NOLINT_RE.search(text)
            if m and m.group(1) == "strg-bench-json" and m.group(2):
                continue
            findings.append(Finding(
                path, 1, "strg-bench-json",
                "benchmark never names a BENCH_*.json report; write one "
                "(bench::JsonReport) or justify with "
                "NOLINT(strg-bench-json): <why>"))

    tests_dir = os.path.join(root, "tests")
    if os.path.isdir(tests_dir):
        for name in sorted(os.listdir(tests_dir)):
            if not name.endswith("_test.cpp"):
                continue
            path = os.path.join(tests_dir, name)
            with open(path, encoding="utf-8") as f:
                head = f.read(4096)
            if not TEST_LABEL_RE.search(head):
                findings.append(Finding(
                    path, 1, "strg-test-label",
                    "test file must declare `// ctest-labels: <label>` near "
                    "the top (tests/CMakeLists.txt applies it to ctest)"))

    return findings


# ---------------------------------------------------------------------------
# Self-test: seed one bad fixture per rule into a scratch tree and require
# the linter to report exactly the planted rule; then check the justified
# suppression of the same pattern passes.
# ---------------------------------------------------------------------------

FIXTURES = {
    "strg-naked-mutex": (
        "src/server/bad.h",
        "#include <mutex>\nstd::mutex mu;\n",
        "// NOLINT(strg-naked-mutex): adapter pinned to a C API demo\n"
        "struct ok {};\n",
    ),
    "strg-no-throw": (
        "src/api/bad.cc",
        "void f() { throw 1; }\n",
        "void f() { throw 1; }  "
        "// NOLINT(strg-no-throw): legacy wrapper, documented\n",
    ),
    "strg-no-wallclock-rand": (
        "src/core/bad.cc",
        "int f() { return rand(); }\n",
        "int f() { return 4; }  // chosen by fair dice roll\n",
    ),
    "strg-direct-io": (
        "src/core/bad_io.cc",
        '#include <fstream>\nvoid f() { std::ofstream o("x"); }\n',
        'void f() { std::ofstream o("x"); }  '
        "// NOLINT(strg-direct-io): demo sink, bytes are not durable state\n",
    ),
    "strg-bench-json": (
        "bench/bench_bad.cpp",
        "int main() { return 0; }\n",
        "// NOLINT(strg-bench-json): emits via --benchmark_out\n"
        "int main() { return 0; }\n",
    ),
    "strg-bench-server-shards": (
        "bench/bench_server_bad.cpp",
        'int main() { const char* p = "BENCH_server_bad.json"; '
        "return p != nullptr; }\n",
        'int main() { const char* p = "BENCH_server_bad.json"; '
        'const char* j = "\\"shards\\":1"; '
        "unsigned c = 0; (void)c;  // hardware_concurrency goes here\n"
        "  return p != nullptr && j != nullptr; }\n",
    ),
    "strg-bench-cluster-stamp": (
        "bench/bench_cluster_bad.cpp",
        'int main() { const char* p = "BENCH_cluster_bad.json"; '
        "return p != nullptr; }\n",
        'int main() { const char* p = "BENCH_cluster_bad.json"; '
        'const char* s = "\\"k\\":4,\\"restarts\\":2,'
        '\\"bound_mode\\":\\"on\\""; '
        "return p != nullptr && s != nullptr; }\n",
    ),
    "strg-bench-simd-tier": (
        "bench/bench_tierless.cpp",
        'int main() { const char* p = "BENCH_tierless.json"; '
        "return p != nullptr; }\n",
        'int main() { const char* p = "BENCH_tierless.json"; '
        'const char* t = "\\"simd_tier\\":\\"scalar\\""; '
        "return p != nullptr && t != nullptr; }\n",
    ),
    "strg-simd-intrinsics": (
        "src/core/bad_vec.cc",
        "#include <immintrin.h>\n"
        "__m256d f(__m256d a) { return _mm256_add_pd(a, a); }\n",
        "#include <immintrin.h>  "
        "// NOLINT(strg-simd-intrinsics): ISA probe pinned to this TU\n"
        "int f() { return 0; }\n",
    ),
    "strg-test-label": (
        "tests/bad_test.cpp",
        "int main() { return 0; }\n",
        "// ctest-labels: unit\nint main() { return 0; }\n",
    ),
    "strg-deprecated-catalog": (
        "src/core/bad_catalog.cc",
        "void f() { auto c = Catalog::LoadFromFile(p); }\n",
        "void f() { auto c = Catalog::TryLoadFromFile(p).value(); }\n",
    ),
    "strg-bare-suppression": (
        "src/util/bad.h",
        "void f() STRG_NO_THREAD_SAFETY_ANALYSIS;\n",
        "// justified: init path, object not yet shared\n"
        "void f() STRG_NO_THREAD_SAFETY_ANALYSIS;\n",
    ),
}


def self_test() -> int:
    failures = 0
    for rule, (rel, bad, good) in FIXTURES.items():
        for variant, text, expect_hit in (("bad", bad, True),
                                          ("good", good, False)):
            with tempfile.TemporaryDirectory() as scratch:
                path = os.path.join(scratch, rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as f:
                    f.write(text)
                hits = [f for f in lint_tree(scratch) if f.rule == rule]
                if bool(hits) != expect_hit:
                    failures += 1
                    print(f"self-test FAIL: {rule}/{variant}: expected "
                          f"{'a finding' if expect_hit else 'clean'}, got "
                          f"{[str(h) for h in hits]}")
                else:
                    print(f"self-test ok: {rule}/{variant}")
    if failures:
        print(f"self-test: {failures} failure(s)")
        return 1
    print(f"self-test: all {len(FIXTURES)} rules fire and suppress correctly")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on seeded bad fixtures")
    parser.add_argument("--root", default=REPO, help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"strg_lint: {len(findings)} finding(s)")
        return 1
    print("strg_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
