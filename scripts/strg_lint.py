#!/usr/bin/env python3
"""Repo-invariant linter: rules the generic tools cannot express.

clang-tidy and -Wthread-safety check what code *does*; this linter checks
what the repo has *decided* — contracts that live across files:

  strg-naked-mutex      No std::mutex / std::condition_variable (or their
                        lock wrappers, or their headers) outside
                        src/util/sync.h. Everything goes through the
                        annotated strg:: wrappers so the capability analysis
                        sees every lock.
  strg-no-throw         No `throw` in src/api or src/storage: those layers
                        speak Status/StatusOr, and an exception sneaking up
                        a StatusOr path skips the typed-error contract.
  strg-no-wallclock-rand  No rand()/srand()/time() in src/: results must be
                        deterministic given the seeded util/random.h RNGs
                        (the PR3/PR4 bit-identical-parallelism contract).
  strg-direct-io        No direct file I/O (fopen / ::open / std::fstream)
                        in src/ outside src/storage/: every durable byte
                        goes through the storage layer so fsync discipline,
                        tmp+rename publication, and CRC framing live in one
                        place.
  strg-bench-json       Every bench/bench_*.cpp must write (or at least
                        name) its BENCH_*.json machine-readable report.
  strg-bench-server-shards  A bench that writes a BENCH_server*.json report
                        must record the shard count and the host's
                        hardware_concurrency in it — serving throughput
                        numbers are meaningless without both.
  strg-bench-simd-tier  A bench that writes any BENCH_*.json must record the
                        active simd dispatch tier (bench::JsonReport emits
                        it automatically; hand-rolled reports name a
                        "simd_tier" field themselves) — kernel timings are
                        incomparable without knowing which tier ran.
  strg-bench-cluster-stamp  A bench that writes a BENCH_cluster*.json report
                        must stamp "k", "restarts", and "bound_mode" —
                        clustering distance counts mean nothing without the
                        centroid count, the restart multiplier, and which
                        side of the use_bounds A/B produced them.
  strg-simd-intrinsics  No vendor intrinsics (immintrin.h / arm_neon.h,
                        _mm*/__m*/v*q_f64 tokens) in src/ outside
                        src/distance/simd/: every vectorized loop goes
                        through the dispatched KernelOps table so the
                        scalar-equivalence proof and the per-TU ISA flags
                        stay in one audited place.
  strg-test-label       Every tests/*_test.cpp declares `// ctest-labels:`,
                        which tests/CMakeLists.txt applies — so label-driven
                        suites (ctest -L recovery|distance|ingest|static)
                        can never silently miss a new test file.
  strg-deprecated-catalog  The throwing Catalog wrappers (Deserialize /
                        SaveToFile / LoadFromFile) were deprecated in PR 7
                        and REMOVED in PR 10; this rule forbids their
                        reintroduction anywhere under src/ — catalog.h
                        included. The Catalog speaks Status/StatusOr only
                        (the Try* forms).
  strg-lock-excludes    Any public method whose body constructs a lock
                        guard (MutexLock / ReaderLock / WriterLock) must
                        declare what it takes: STRG_EXCLUDES(mu) for a
                        statically nameable mutex, STRG_EXCLUDES_DYNAMIC(
                        Family::mu) for a runtime-selected shard lock, or
                        STRG_REQUIRES/STRG_ACQUIRE when the caller holds
                        it. Constructors/destructors are exempt (single-
                        owner by contract). The annotation is how callers
                        — and scripts/lock_graph.py — know the method
                        participates in the lock hierarchy.

Two rules are AST-grade when libclang is available (scripts/clang_ast.py):
strg-no-wallclock-rand and strg-deprecated-catalog. The AST pass reparses
the tree via compile_commands.json, drops regex false positives (a member
function that happens to be called `time`, a non-Catalog `Deserialize`)
and adds true calls the regex missed. Without libclang the regex verdicts
stand — fallback, never silent skip (STRG_REQUIRE_CLANG=1 hard-fails).

Suppressions are allowed but never bare: `NOLINT(<rule>): <why>` on the
offending line (a missing rule tag or empty justification is itself an
error), and every STRG_NO_THREAD_SAFETY_ANALYSIS needs a justification
comment within the five lines above it.

Usage:
  scripts/strg_lint.py              # lint the tree; exit 0 iff clean
  scripts/strg_lint.py --self-test  # prove each rule fires on bad fixtures
  scripts/strg_lint.py --no-ast     # regex/textual verdicts only
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CXX_EXTS = (".h", ".hpp", ".cc", ".cpp")

NOLINT_RE = re.compile(r"NOLINT\(([a-z0-9-]+)\):\s*(\S.*)?")
BARE_NOLINT_RE = re.compile(r"NOLINT(?!\([a-z0-9-]+\):\s*\S)")

NAKED_MUTEX_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|recursive_timed_mutex"
    r"|timed_mutex|condition_variable(?:_any)?|lock_guard|unique_lock"
    r"|scoped_lock|shared_lock)\b"
    r"|#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>")
THROW_RE = re.compile(r"\bthrow\b")
WALLCLOCK_RE = re.compile(r"(?<![A-Za-z0-9_:])(?:rand|srand|time)\s*\(")
# Case-sensitive on purpose: `::open(` is the POSIX call; `PageFile::Open(`
# and friends are the sanctioned storage-layer wrappers.
DIRECT_IO_RE = re.compile(
    r"\bfopen\s*\(|::open\s*\(|\bstd::[io]?fstream\b"
    r"|#\s*include\s*<fstream>")
BENCH_JSON_RE = re.compile(r"BENCH_[A-Za-z0-9_]+\.json")
BENCH_SERVER_JSON_RE = re.compile(r"BENCH_server[A-Za-z0-9_]*\.json")
BENCH_CLUSTER_JSON_RE = re.compile(r"BENCH_cluster[A-Za-z0-9_]*\.json")
HW_CONCURRENCY_RE = re.compile(r"hardware_concurrency")
SHARD_FIELD_RE = re.compile(r'\\?"shards\\?"')
K_FIELD_RE = re.compile(r'\\?"k\\?"')
RESTARTS_FIELD_RE = re.compile(r'\\?"restarts\\?"')
BOUND_MODE_FIELD_RE = re.compile(r'\\?"bound_mode\\?"')
# "TryDeserialize" etc. do not match: no word boundary after "Try".
DEPRECATED_CATALOG_RE = re.compile(
    r"\b(?:Deserialize|SaveToFile|LoadFromFile)\s*\(")
GUARD_DECL_RE = re.compile(
    r"\b(?:MutexLock|ReaderLock|WriterLock)\s+[A-Za-z_]\w*\s*[({]")
LOCK_ANNOT_RE = re.compile(
    r"STRG_EXCLUDES(?:_DYNAMIC)?\s*\(|STRG_REQUIRES(?:_SHARED)?\s*\("
    r"|STRG_ACQUIRE")
ACCESS_RE = re.compile(r"^\s*(public|private|protected)\s*:")
CLASS_HEAD_RE = re.compile(
    r"\b(class|struct)\s+(?:STRG_[A-Z_]+\s*\([^)]*\)\s*)?"
    r"([A-Za-z_]\w*)\s*(?:final\b)?\s*(?::|$)?")
OUTLINE_DEF_RE = re.compile(r"\b([A-Za-z_]\w*)::(~?[A-Za-z_]\w*)\s*\(")
METHOD_NAME_RE = re.compile(r"(~?[A-Za-z_]\w*)\s*\(")
CONTROL_KEYWORDS = {"if", "for", "while", "switch", "return", "sizeof",
                    "decltype", "catch", "do", "else", "new", "delete",
                    "throw", "alignas", "alignof", "static_assert",
                    "noexcept", "void"}
TEST_LABEL_RE = re.compile(r"//\s*ctest-labels:\s*([a-z][a-z0-9_]*)")
OPTOUT_RE = re.compile(r"STRG_NO_THREAD_SAFETY_ANALYSIS")
SIMD_TIER_RE = re.compile(r"simd_tier")
JSON_REPORT_RE = re.compile(r"\bJsonReport\b")
SIMD_INTRINSICS_RE = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin|arm_neon|emmintrin|xmmintrin"
    r"|smmintrin|tmmintrin|nmmintrin|wmmintrin|avxintrin|avx2intrin)\.h>"
    r"|\b_mm(?:256|512)?_[A-Za-z0-9_]+"
    r"|\b__m(?:128|256|512)[di]?\b"
    r"|\b(?:float|int|uint)(?:8|16|32|64)x(?:1|2|4|8|16)_t\b"
    r"|\bv[a-z0-9]+q?_[fsu](?:8|16|32|64)\b")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        rel = os.path.relpath(self.path, REPO)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(lines: list[str]) -> list[str]:
    """Returns lines with // and /* */ comment text blanked (string-literal
    agnostic on purpose: the patterns we match do not occur in literals
    here, and a false positive is suppressible with a justified NOLINT)."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    i = end + 2
                    in_block = False
            else:
                slash = line.find("//", i)
                block = line.find("/*", i)
                if slash >= 0 and (block < 0 or slash < block):
                    result.append(line[i:slash])
                    i = len(line)
                elif block >= 0:
                    result.append(line[i:block])
                    i = block + 2
                    in_block = True
                else:
                    result.append(line[i:])
                    i = len(line)
        out.append("".join(result))
    return out


def suppressed(raw_line: str, rule: str, findings: list, path: str,
               lineno: int) -> bool:
    """True if the line carries a justified NOLINT for `rule`. A NOLINT
    that is bare (no rule, or no justification text) is itself a finding."""
    m = NOLINT_RE.search(raw_line)
    if m and m.group(1) == rule and m.group(2):
        return True
    if "NOLINT" in raw_line and BARE_NOLINT_RE.search(raw_line):
        findings.append(Finding(
            path, lineno, "strg-bare-suppression",
            "NOLINT must name its rule and justify itself: "
            "`NOLINT(<rule>): <why>`"))
    return False


def file_suppressed(text: str, rule: str) -> bool:
    """True if the file carries a justified NOLINT for `rule` anywhere
    (whole-file rules like the bench-report checks)."""
    return any(m.group(1) == rule and m.group(2)
               for m in NOLINT_RE.finditer(text))


def strip_strings(line: str) -> str:
    """Blanks the contents of "..." and '...' literals (keeps the quotes)
    so the brace/paren scanner below never trips on a brace in a string."""
    out = []
    i, n = 0, len(line)
    while i < n:
        ch = line[i]
        if ch in "\"'":
            quote = ch
            out.append(ch)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _method_name(stmt: str):
    """Name of the method a declaration/definition statement declares: the
    identifier immediately before the first call-less '(' — skipping
    control keywords so `if (...)` never reads as a method."""
    for m in METHOD_NAME_RE.finditer(stmt):
        name = m.group(1)
        if name.lstrip("~") in CONTROL_KEYWORDS or name.startswith("STRG_"):
            continue
        return name
    return None


def check_lock_excludes(root: str, findings: list) -> None:
    """strg-lock-excludes: every PUBLIC method whose body constructs a lock
    guard must carry STRG_EXCLUDES / STRG_EXCLUDES_DYNAMIC / STRG_REQUIRES
    / STRG_ACQUIRE on its declaration (or definition). Structural scan:
    brace-depth tracking with a scope stack (namespace/class/method/block),
    class access-section tracking, and out-of-line `Class::Method` bodies
    mapped back to their header declaration. Constructors and destructors
    are exempt — they run single-owner by contract."""
    method_index: dict = {}   # (class, method) -> {decl, access, path, line}
    candidates: list = []     # method scopes that constructed a guard
    raw_by_path: dict = {}

    def index_method(key, entry):
        # An in-class declaration (access known) always beats an out-of-line
        # definition (access None) regardless of file walk order; the first
        # access-known entry wins among themselves.
        cur = method_index.get(key)
        if cur is None or (cur["access"] is None
                           and entry["access"] is not None):
            method_index[key] = entry

    def classify(stmt, scopes, path, lineno):
        stmt = stmt.strip()
        inner = scopes[-1] if scopes else None
        if not stmt or stmt.startswith(("namespace", "extern")):
            return {"kind": "block"}
        if "enum" not in stmt.split():
            cm = CLASS_HEAD_RE.search(stmt)
            # A '(' before the class keyword means this is a parameter or
            # expression mentioning `class`, not a type definition head.
            if cm and "(" not in stmt[:cm.start()]:
                return {"kind": "class", "name": cm.group(2),
                        "access": "private" if cm.group(1) == "class"
                        else "public"}
        if inner is not None and inner["kind"] in ("method", "block"):
            return {"kind": "block"}  # control flow / lambda / init list
        if "(" not in stmt:
            return {"kind": "block"}
        if inner is not None and inner["kind"] == "class":
            name = _method_name(stmt)
            if name is None:
                return {"kind": "block"}
            return {"kind": "method", "class_name": inner["name"],
                    "name": name, "decl": stmt, "access": inner["access"],
                    "path": path, "line": lineno, "guards": []}
        om = OUTLINE_DEF_RE.search(stmt)
        if om:
            return {"kind": "method", "class_name": om.group(1),
                    "name": om.group(2), "decl": stmt, "access": None,
                    "path": path, "line": lineno, "guards": []}
        return {"kind": "block"}

    for path in walk(root, "src"):
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
        raw_by_path[path] = raw
        code = [strip_strings(l) for l in strip_comments(raw)]
        scopes: list = []
        stmt_chars: list = []
        for lineno, line in enumerate(code, 1):
            if line.lstrip().startswith("#"):
                continue
            am = ACCESS_RE.match(line)
            if am:
                for sc in reversed(scopes):
                    if sc["kind"] == "class":
                        sc["access"] = am.group(1)
                        break
                line = line.split(":", 1)[1]
            if GUARD_DECL_RE.search(line):
                for sc in reversed(scopes):
                    if sc["kind"] == "method":
                        sc["guards"].append(lineno)
                        break
            for ch in line:
                if ch == "{":
                    sc = classify("".join(stmt_chars), scopes, path, lineno)
                    if sc["kind"] == "method":
                        index_method(
                            (sc["class_name"], sc["name"]),
                            {"decl": sc["decl"],
                             "access": sc["access"],
                             "path": path, "line": sc["line"]})
                    scopes.append(sc)
                    stmt_chars = []
                elif ch == "}":
                    if scopes:
                        done = scopes.pop()
                        if done["kind"] == "method" and done["guards"]:
                            candidates.append(done)
                    stmt_chars = []
                elif ch == ";":
                    stmt = "".join(stmt_chars).strip()
                    inner = scopes[-1] if scopes else None
                    if inner is not None and inner["kind"] == "class" and \
                            "(" in stmt:
                        name = _method_name(stmt)
                        if name is not None:
                            index_method(
                                (inner["name"], name),
                                {"decl": stmt, "access": inner["access"],
                                 "path": path, "line": lineno})
                    stmt_chars = []
                else:
                    stmt_chars.append(ch)
            stmt_chars.append(" ")

    for cand in candidates:
        name, cls = cand["name"], cand["class_name"]
        if name.startswith("~") or name == cls:
            continue  # ctor/dtor: single-owner by contract
        entry = method_index.get((cls, name))
        access = cand["access"]
        if access is None:
            if entry is None:
                continue  # free function or unindexed class: out of scope
            access = entry["access"]
        if access != "public":
            continue
        texts = [cand["decl"]] + ([entry["decl"]] if entry else [])
        if any(LOCK_ANNOT_RE.search(t) for t in texts):
            continue
        sup_sites = [(cand["path"], cand["line"])]
        if entry:
            sup_sites.append((entry["path"], entry["line"]))
        if any(suppressed(raw_by_path.get(p, [""] * ln)[ln - 1],
                          "strg-lock-excludes", findings, p, ln)
               for p, ln in sup_sites
               if ln - 1 < len(raw_by_path.get(p, []))):
            continue
        findings.append(Finding(
            cand["path"], cand["line"], "strg-lock-excludes",
            f"public method {cls}::{name} constructs a lock guard (line "
            f"{cand['guards'][0]}) but its declaration carries no "
            "STRG_EXCLUDES/STRG_EXCLUDES_DYNAMIC/STRG_REQUIRES — callers "
            "and scripts/lock_graph.py need the locking contract visible "
            "at the signature"))


def walk(root: str, subdir: str):
    base = os.path.join(root, subdir)
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(CXX_EXTS):
                yield os.path.join(dirpath, name)


def lint_tree(root: str) -> list:
    findings: list = []
    sync_h = os.path.join(root, "src", "util", "sync.h")

    for path in walk(root, "src"):
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
        code = strip_comments(raw)
        rel = os.path.relpath(path, root)
        in_api_or_storage = rel.startswith(("src/api", "src/storage"))
        in_storage = rel.startswith("src/storage")
        in_simd = rel.startswith("src/distance/simd")

        for idx, (raw_line, code_line) in enumerate(zip(raw, code), 1):
            if os.path.abspath(path) != os.path.abspath(sync_h):
                if NAKED_MUTEX_RE.search(code_line) and not suppressed(
                        raw_line, "strg-naked-mutex", findings, path, idx):
                    findings.append(Finding(
                        path, idx, "strg-naked-mutex",
                        "naked std sync primitive; use the annotated "
                        "strg::Mutex/MutexLock/CondVar from util/sync.h"))
            if in_api_or_storage:
                if THROW_RE.search(code_line) and not suppressed(
                        raw_line, "strg-no-throw", findings, path, idx):
                    findings.append(Finding(
                        path, idx, "strg-no-throw",
                        "`throw` on a Status/StatusOr code path; return a "
                        "typed api::Status instead"))
            if not in_storage:
                if DIRECT_IO_RE.search(code_line) and not suppressed(
                        raw_line, "strg-direct-io", findings, path, idx):
                    findings.append(Finding(
                        path, idx, "strg-direct-io",
                        "direct file I/O outside src/storage/; route bytes "
                        "through the storage layer (storage/file_io.h, "
                        "PageFile, WalWriter) so fsync discipline and CRC "
                        "framing stay in one place"))
            # No exemption for catalog.h: the wrappers are removed, and the
            # rule now guards against their REINTRODUCTION at the source.
            if DEPRECATED_CATALOG_RE.search(code_line) and not suppressed(
                    raw_line, "strg-deprecated-catalog", findings, path,
                    idx):
                findings.append(Finding(
                    path, idx, "strg-deprecated-catalog",
                    "the throwing Catalog wrappers (Deserialize/SaveToFile/"
                    "LoadFromFile) were removed in PR 10 — do not "
                    "reintroduce them; use TryDeserialize/TrySaveToFile/"
                    "TryLoadFromFile (Status/StatusOr)"))
            if not in_simd:
                if SIMD_INTRINSICS_RE.search(code_line) and not suppressed(
                        raw_line, "strg-simd-intrinsics", findings, path, idx):
                    findings.append(Finding(
                        path, idx, "strg-simd-intrinsics",
                        "vendor intrinsics outside src/distance/simd/; add "
                        "a kernel to the dispatched KernelOps table so the "
                        "bit-identity proof and per-TU ISA flags stay in "
                        "one place"))
            if WALLCLOCK_RE.search(code_line) and not suppressed(
                    raw_line, "strg-no-wallclock-rand", findings, path, idx):
                findings.append(Finding(
                    path, idx, "strg-no-wallclock-rand",
                    "rand()/srand()/time() break the determinism contract; "
                    "use util/random.h RNGs and steady_clock"))
            if OPTOUT_RE.search(code_line):
                context = " ".join(raw[max(0, idx - 6):idx - 1])
                if ("//" not in context and "*" not in context) or \
                        not re.search(r"(//|\*)\s*\S+\s+\S+", context):
                    findings.append(Finding(
                        path, idx, "strg-bare-suppression",
                        "STRG_NO_THREAD_SAFETY_ANALYSIS needs a "
                        "justification comment within the 5 lines above"))

    bench_dir = os.path.join(root, "bench")
    if os.path.isdir(bench_dir):
        for name in sorted(os.listdir(bench_dir)):
            if not (name.startswith("bench_") and name.endswith(".cpp")):
                continue
            path = os.path.join(bench_dir, name)
            with open(path, encoding="utf-8") as f:
                text = f.read()
            if BENCH_SERVER_JSON_RE.search(text):
                if not (HW_CONCURRENCY_RE.search(text)
                        and SHARD_FIELD_RE.search(text)):
                    m = NOLINT_RE.search(text)
                    if not (m and m.group(1) == "strg-bench-server-shards"
                            and m.group(2)):
                        findings.append(Finding(
                            path, 1, "strg-bench-server-shards",
                            'BENCH_server*.json report must record a '
                            '"shards" field and hardware_concurrency '
                            "(serving numbers are incomparable without "
                            "both), or justify with "
                            "NOLINT(strg-bench-server-shards): <why>"))
            if BENCH_CLUSTER_JSON_RE.search(text):
                if not (K_FIELD_RE.search(text)
                        and RESTARTS_FIELD_RE.search(text)
                        and BOUND_MODE_FIELD_RE.search(text)):
                    m = NOLINT_RE.search(text)
                    if not (m and m.group(1) == "strg-bench-cluster-stamp"
                            and m.group(2)):
                        findings.append(Finding(
                            path, 1, "strg-bench-cluster-stamp",
                            'BENCH_cluster*.json report must stamp "k", '
                            '"restarts", and "bound_mode" (distance counts '
                            "are meaningless without the centroid count, "
                            "the restart multiplier, and the use_bounds "
                            "side), or justify with "
                            "NOLINT(strg-bench-cluster-stamp): <why>"))
            if BENCH_JSON_RE.search(text):
                if not (SIMD_TIER_RE.search(text)
                        or JSON_REPORT_RE.search(text)) and \
                        not file_suppressed(text, "strg-bench-simd-tier"):
                    findings.append(Finding(
                        path, 1, "strg-bench-simd-tier",
                        'BENCH_*.json report must record the active simd '
                        'dispatch tier (use bench::JsonReport, which emits '
                        '"simd_tier" automatically, or write the field '
                        "yourself), or justify with "
                        "NOLINT(strg-bench-simd-tier): <why>"))
                continue
            m = NOLINT_RE.search(text)
            if m and m.group(1) == "strg-bench-json" and m.group(2):
                continue
            findings.append(Finding(
                path, 1, "strg-bench-json",
                "benchmark never names a BENCH_*.json report; write one "
                "(bench::JsonReport) or justify with "
                "NOLINT(strg-bench-json): <why>"))

    check_lock_excludes(root, findings)

    tests_dir = os.path.join(root, "tests")
    if os.path.isdir(tests_dir):
        for name in sorted(os.listdir(tests_dir)):
            if not name.endswith("_test.cpp"):
                continue
            path = os.path.join(tests_dir, name)
            with open(path, encoding="utf-8") as f:
                head = f.read(4096)
            if not TEST_LABEL_RE.search(head):
                findings.append(Finding(
                    path, 1, "strg-test-label",
                    "test file must declare `// ctest-labels: <label>` near "
                    "the top (tests/CMakeLists.txt applies it to ctest)"))

    return findings


# ---------------------------------------------------------------------------
# AST-grade promotion (scripts/clang_ast.py): when libclang can parse the
# tree, strg-no-wallclock-rand and strg-deprecated-catalog are re-decided on
# the AST — regex false positives (a member function named `time`, a
# non-Catalog `Deserialize`) are dropped, and true calls the regex missed
# (e.g. through an alias) are added. The regex verdicts stand unchanged when
# libclang is absent: fallback, never a silent skip.
# ---------------------------------------------------------------------------

AST_PROMOTED_RULES = ("strg-no-wallclock-rand", "strg-deprecated-catalog")
WALLCLOCK_FNS = ("rand", "srand", "time")
CATALOG_WRAPPERS = ("Deserialize", "SaveToFile", "LoadFromFile")


def _ast_true_positives(tu, src_root):
    """((file,line) sets) of AST-confirmed wallclock calls and deprecated
    Catalog wrapper mentions, plus the set of files this TU covers."""
    import clang.cindex as cindex

    wall, catalog, covered = set(), set(), set()
    covered.add(os.path.abspath(str(tu.spelling)))
    for inc in tu.get_includes():
        p = os.path.abspath(str(inc.include))
        if p.startswith(src_root):
            covered.add(p)
    for c in tu.cursor.walk_preorder():
        f = c.location.file
        if f is None:
            continue
        fp = os.path.abspath(str(f))
        if not fp.startswith(src_root):
            continue
        loc = (fp, c.location.line)
        if c.kind == cindex.CursorKind.DECL_REF_EXPR and \
                c.spelling in WALLCLOCK_FNS:
            ref = c.referenced
            if ref is not None and \
                    ref.kind == cindex.CursorKind.FUNCTION_DECL:
                sp = ref.semantic_parent
                # Only the global C functions break determinism; a member
                # or namespaced `time`/`rand` is someone else's name.
                if sp is None or \
                        sp.kind == cindex.CursorKind.TRANSLATION_UNIT:
                    wall.add(loc)
        if c.spelling in CATALOG_WRAPPERS:
            if c.kind in (cindex.CursorKind.MEMBER_REF_EXPR,
                          cindex.CursorKind.DECL_REF_EXPR):
                ref = c.referenced
                if ref is not None and ref.semantic_parent is not None and \
                        ref.semantic_parent.spelling == "Catalog":
                    catalog.add(loc)
            elif c.kind == cindex.CursorKind.CXX_METHOD and \
                    c.semantic_parent is not None and \
                    c.semantic_parent.spelling == "Catalog":
                catalog.add(loc)
    return wall, catalog, covered


def ast_refine(findings: list, root: str) -> list:
    """Re-decides the AST-promoted rules when libclang is available; returns
    the (possibly) adjusted finding list. Loud in every degraded mode."""
    sys.path.insert(0, os.path.join(REPO, "scripts"))
    try:
        import clang_ast
    except Exception as e:  # harness itself broken: fall back loudly
        print(f"strg_lint: AST layer unavailable ({e}); regex verdicts stand")
        return findings
    if not clang_ast.require("strg_lint"):
        return findings  # require() already printed (or exited under CI)

    src_root = os.path.abspath(os.path.join(root, "src"))
    build_dir = next(
        (d for d in (os.path.join(root, "build-static"),
                     os.path.join(root, "build"))
         if os.path.isfile(os.path.join(d, "compile_commands.json"))), None)
    if build_dir is None:
        msg = ("strg_lint: SKIP AST leg — no compile_commands.json under "
               "build-static/ or build/ (run scripts/static.sh leg 2 first)")
        if os.environ.get("STRG_REQUIRE_CLANG") == "1":
            print(msg)
            raise SystemExit(1)
        print(msg)
        return findings

    try:
        entries = clang_ast.load_compile_commands(build_dir)
        wall, catalog, covered = set(), set(), set()
        for src, args in entries:
            if not os.path.abspath(src).startswith(src_root):
                continue
            w, c, cov = _ast_true_positives(
                clang_ast.parse_tu(src, args), src_root)
            wall |= w
            catalog |= c
            covered |= cov
    except Exception as e:
        print(f"strg_lint: AST pass FAILED ({e}); regex verdicts stand")
        return findings

    truth = {"strg-no-wallclock-rand": wall,
             "strg-deprecated-catalog": catalog}
    kept = []
    dropped = 0
    for f in findings:
        fp = os.path.abspath(f.path)
        if f.rule in AST_PROMOTED_RULES and fp in covered and \
                (fp, f.line) not in truth[f.rule]:
            dropped += 1  # regex false positive, disproven on the AST
            continue
        kept.append(f)
    have = {(os.path.abspath(f.path), f.line, f.rule) for f in kept}
    added = 0
    for rule, locs in truth.items():
        for fp, line in sorted(locs):
            if (fp, line, rule) in have:
                continue
            with open(fp, encoding="utf-8") as fh:
                raw = fh.read().splitlines()
            raw_line = raw[line - 1] if line - 1 < len(raw) else ""
            if suppressed(raw_line, rule, kept, fp, line):
                continue
            kept.append(Finding(
                fp, line, rule,
                "AST-confirmed violation the textual scan missed "
                f"({rule}); see the rule's entry in this script's header"))
            added += 1
    print(f"strg_lint: AST leg over {len(covered)} file(s): "
          f"{dropped} regex false positive(s) dropped, {added} added")
    return kept


# ---------------------------------------------------------------------------
# Self-test: seed one bad fixture per rule into a scratch tree and require
# the linter to report exactly the planted rule; then check the justified
# suppression of the same pattern passes.
# ---------------------------------------------------------------------------

FIXTURES = {
    "strg-naked-mutex": (
        "src/server/bad.h",
        "#include <mutex>\nstd::mutex mu;\n",
        "// NOLINT(strg-naked-mutex): adapter pinned to a C API demo\n"
        "struct ok {};\n",
    ),
    "strg-no-throw": (
        "src/api/bad.cc",
        "void f() { throw 1; }\n",
        "void f() { throw 1; }  "
        "// NOLINT(strg-no-throw): legacy wrapper, documented\n",
    ),
    "strg-no-wallclock-rand": (
        "src/core/bad.cc",
        "int f() { return rand(); }\n",
        "int f() { return 4; }  // chosen by fair dice roll\n",
    ),
    "strg-direct-io": (
        "src/core/bad_io.cc",
        '#include <fstream>\nvoid f() { std::ofstream o("x"); }\n',
        'void f() { std::ofstream o("x"); }  '
        "// NOLINT(strg-direct-io): demo sink, bytes are not durable state\n",
    ),
    "strg-bench-json": (
        "bench/bench_bad.cpp",
        "int main() { return 0; }\n",
        "// NOLINT(strg-bench-json): emits via --benchmark_out\n"
        "int main() { return 0; }\n",
    ),
    "strg-bench-server-shards": (
        "bench/bench_server_bad.cpp",
        'int main() { const char* p = "BENCH_server_bad.json"; '
        "return p != nullptr; }\n",
        'int main() { const char* p = "BENCH_server_bad.json"; '
        'const char* j = "\\"shards\\":1"; '
        "unsigned c = 0; (void)c;  // hardware_concurrency goes here\n"
        "  return p != nullptr && j != nullptr; }\n",
    ),
    "strg-bench-cluster-stamp": (
        "bench/bench_cluster_bad.cpp",
        'int main() { const char* p = "BENCH_cluster_bad.json"; '
        "return p != nullptr; }\n",
        'int main() { const char* p = "BENCH_cluster_bad.json"; '
        'const char* s = "\\"k\\":4,\\"restarts\\":2,'
        '\\"bound_mode\\":\\"on\\""; '
        "return p != nullptr && s != nullptr; }\n",
    ),
    "strg-bench-simd-tier": (
        "bench/bench_tierless.cpp",
        'int main() { const char* p = "BENCH_tierless.json"; '
        "return p != nullptr; }\n",
        'int main() { const char* p = "BENCH_tierless.json"; '
        'const char* t = "\\"simd_tier\\":\\"scalar\\""; '
        "return p != nullptr && t != nullptr; }\n",
    ),
    "strg-simd-intrinsics": (
        "src/core/bad_vec.cc",
        "#include <immintrin.h>\n"
        "__m256d f(__m256d a) { return _mm256_add_pd(a, a); }\n",
        "#include <immintrin.h>  "
        "// NOLINT(strg-simd-intrinsics): ISA probe pinned to this TU\n"
        "int f() { return 0; }\n",
    ),
    "strg-test-label": (
        "tests/bad_test.cpp",
        "int main() { return 0; }\n",
        "// ctest-labels: unit\nint main() { return 0; }\n",
    ),
    # Placed in catalog.h itself: the old rule exempted that file (the
    # wrappers lived there); the retargeted rule must catch reintroduction
    # at the source.
    "strg-deprecated-catalog": (
        "src/storage/catalog.h",
        "class Catalog {\n public:\n"
        "  static Catalog LoadFromFile(const std::string& path);\n};\n",
        "class Catalog {\n public:\n"
        "  static api::StatusOr<Catalog> TryLoadFromFile("
        "const std::string& path);\n};\n",
    ),
    "strg-lock-excludes": (
        "src/server/bad_lock.h",
        "class Widget {\n public:\n"
        "  void Poke() {\n    MutexLock lock(mu_);\n  }\n"
        " private:\n  Mutex mu_{LockRank::kUnranked};\n};\n",
        "class Widget {\n public:\n"
        "  void Poke() STRG_EXCLUDES(mu_) {\n    MutexLock lock(mu_);\n  }\n"
        " private:\n  Mutex mu_{LockRank::kUnranked};\n"
        "  void PokeLocked() {\n    MutexLock lock(mu_);\n  }\n};\n",
    ),
    # Out-of-line regression: the definition lives in a .cc that the walk
    # visits BEFORE the header declaring the method public — the index must
    # still resolve the access section from the header.
    "strg-lock-excludes#outline": (
        None,
        {"src/server/a_widget.cc":
            '#include "server/z_widget.h"\n'
            "void Widget::Poke() {\n  MutexLock lock(mu_);\n}\n",
         "src/server/z_widget.h":
            "class Widget {\n public:\n  void Poke();\n"
            " private:\n  Mutex mu_{LockRank::kUnranked};\n};\n"},
        {"src/server/a_widget.cc":
            '#include "server/z_widget.h"\n'
            "void Widget::Poke() {\n  MutexLock lock(mu_);\n}\n",
         "src/server/z_widget.h":
            "class Widget {\n public:\n  void Poke() STRG_EXCLUDES(mu_);\n"
            " private:\n  Mutex mu_{LockRank::kUnranked};\n};\n"},
    ),
    "strg-bare-suppression": (
        "src/util/bad.h",
        "void f() STRG_NO_THREAD_SAFETY_ANALYSIS;\n",
        "// justified: init path, object not yet shared\n"
        "void f() STRG_NO_THREAD_SAFETY_ANALYSIS;\n",
    ),
}


def self_test() -> int:
    failures = 0
    for key, (rel, bad, good) in FIXTURES.items():
        rule = key.split("#")[0]  # "#suffix" names extra fixtures per rule
        for variant, text, expect_hit in (("bad", bad, True),
                                          ("good", good, False)):
            files = text if isinstance(text, dict) else {rel: text}
            with tempfile.TemporaryDirectory() as scratch:
                for frel, body in files.items():
                    path = os.path.join(scratch, frel)
                    os.makedirs(os.path.dirname(path), exist_ok=True)
                    with open(path, "w", encoding="utf-8") as f:
                        f.write(body)
                hits = [f for f in lint_tree(scratch) if f.rule == rule]
                if bool(hits) != expect_hit:
                    failures += 1
                    print(f"self-test FAIL: {key}/{variant}: expected "
                          f"{'a finding' if expect_hit else 'clean'}, got "
                          f"{[str(h) for h in hits]}")
                else:
                    print(f"self-test ok: {key}/{variant}")
    if failures:
        print(f"self-test: {failures} failure(s)")
        return 1
    print(f"self-test: all {len(FIXTURES)} fixtures fire and suppress "
          "correctly")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on seeded bad fixtures")
    parser.add_argument("--no-ast", action="store_true",
                        help="skip the libclang promotion of the AST-grade "
                             "rules (regex/textual verdicts only)")
    parser.add_argument("--root", default=REPO, help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(args.root)
    if not args.no_ast:
        findings = ast_refine(findings, args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"strg_lint: {len(findings)} finding(s)")
        return 1
    print("strg_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
