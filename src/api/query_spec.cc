#include "api/query_spec.h"

namespace strg::api {

namespace {

// Per-kind digest seeds and the exact FNV-1a chaining the serving layer
// used before digest computation moved here — digests stay bit-identical
// across the migration.
constexpr uint64_t kKnnSeed = 0x6b6e6e5f71756572ULL;
constexpr uint64_t kRangeSeed = 0x72616e67655f7175ULL;
constexpr uint64_t kActiveSeed = 0x6163746976655f71ULL;

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  // FNV-1a, 64-bit.
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t HashSequence(const dist::Sequence& seq, uint64_t seed) {
  uint64_t h = HashBytes(&seed, sizeof(seed), seq.size());
  for (const dist::FeatureVec& v : seq) {
    h = HashBytes(v.data(), sizeof(double) * v.size(), h);
  }
  return h;
}

}  // namespace

uint64_t QuerySpec::Digest() const {
  switch (kind) {
    case Kind::kSimilar: {
      uint64_t h = HashSequence(sequence, kKnnSeed);
      return HashBytes(&k, sizeof(k), h);
    }
    case Kind::kRange: {
      uint64_t h = HashSequence(sequence, kRangeSeed);
      return HashBytes(&radius, sizeof(radius), h);
    }
    case Kind::kActive: {
      uint64_t h = HashBytes(video.data(), video.size(), kActiveSeed);
      const int window[2] = {first_frame, last_frame};
      return HashBytes(window, sizeof(window), h);
    }
  }
  return 0;
}

}  // namespace strg::api
