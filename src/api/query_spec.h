#ifndef STRG_API_QUERY_SPEC_H_
#define STRG_API_QUERY_SPEC_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "distance/sequence.h"

namespace strg::api {

/// Per-request options of the submit/complete query surface. One options
/// vocabulary across the stack: the bare VideoDatabase, the single
/// QueryEngine, and the ShardedQueryEngine all take this struct, so a
/// request keeps its deadline and routing hints as it crosses layers.
/// (server::QueryOptions is an alias of this type — the historical spelling
/// kept for source compatibility.)
struct SubmitOptions {
  /// Per-request deadline measured from submission. 0 = none. Negative =
  /// already expired (deterministic deadline handling, used by tests).
  std::chrono::microseconds timeout{0};
  /// Consult/fill the serving layer's result cache. Ignored by layers that
  /// have no cache (the bare VideoDatabase).
  bool use_cache = true;
  /// Restrict a scatter-gather query to one shard (>= 0); -1 = fan out to
  /// every shard. Layers without shards ignore it.
  int shard_hint = -1;
};

/// One value describing any retrieval request the system answers. The three
/// historical entry points (FindSimilar / FindWithinRadius / FindActive)
/// collapse into a tagged kind plus the union of their parameters, so every
/// layer — database dispatch, result-cache keying, metrics attribution —
/// consumes the same object instead of re-encoding the request per call
/// site.
struct QuerySpec {
  enum class Kind {
    kSimilar = 0,  ///< k-NN over stored OGs (Algorithm 3)
    kRange,        ///< all OGs within `radius` (EGED_M), ascending
    kActive,       ///< OGs of `video` alive inside the frame window
  };

  Kind kind = Kind::kSimilar;

  /// Probe sequence for kSimilar / kRange (ignored by kActive).
  dist::Sequence sequence;
  size_t k = 10;        ///< kSimilar: neighbours requested
  double radius = 0.0;  ///< kRange: EGED_M cutoff

  std::string video;    ///< kActive: camera/clip name
  int first_frame = 0;  ///< kActive: window start (inclusive)
  int last_frame = 0;   ///< kActive: window end (inclusive)

  static QuerySpec Similar(dist::Sequence query, size_t k) {
    QuerySpec s;
    s.kind = Kind::kSimilar;
    s.sequence = std::move(query);
    s.k = k;
    return s;
  }
  static QuerySpec WithinRadius(dist::Sequence query, double radius) {
    QuerySpec s;
    s.kind = Kind::kRange;
    s.sequence = std::move(query);
    s.radius = radius;
    return s;
  }
  static QuerySpec Active(std::string video, int first_frame,
                          int last_frame) {
    QuerySpec s;
    s.kind = Kind::kActive;
    s.video = std::move(video);
    s.first_frame = first_frame;
    s.last_frame = last_frame;
    return s;
  }

  /// Request digest for result-cache keying: FNV-1a over the kind seed and
  /// the kind's live parameters only, so "kNN k=3" and "range r=3" over the
  /// same probe never collide. Computed once per request, at the API edge.
  uint64_t Digest() const;
};

}  // namespace strg::api

#endif  // STRG_API_QUERY_SPEC_H_
