#ifndef STRG_API_STATUS_H_
#define STRG_API_STATUS_H_

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace strg::api {

/// One typed outcome vocabulary for the whole system. The serving layer's
/// admission verdicts (kOverloaded / kDeadlineExceeded) and the storage
/// layer's durability verdicts (kIoError / kCorruption / kNotFound) share
/// this enum, so a request that crosses both layers carries one code end to
/// end instead of being translated between per-module enums.
enum class StatusCode {
  kOk = 0,
  kOverloaded,        ///< admission queue full; request was never executed
  kDeadlineExceeded,  ///< deadline hit while queued or while executing
  kIoError,           ///< the OS refused a read/write/sync/rename
  kCorruption,        ///< bytes parsed but failed validation (magic, CRC,
                      ///< truncation mid-record)
  kNotFound,          ///< named file/segment/video does not exist
  kInvalidArgument,   ///< the caller's request is malformed
  kCancelled,         ///< the caller cancelled the request via its handle
};

inline constexpr size_t kNumStatusCodes = 8;

inline std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

/// Value-type status: a code plus a human-readable message for non-OK
/// outcomes. Deliberately tiny (no payload slots, no stack traces) — it is
/// copied across threads on every request.
class Status {
 public:
  Status() = default;  ///< OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string out(StatusCodeName(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  /// Bridge to an exception surface for callers that want one: any Status
  /// is one `ThrowIfError()` away from std::runtime_error. (The Catalog's
  /// own throwing wrappers are gone — internal code never calls this.)
  void ThrowIfError() const {
    if (!ok()) throw std::runtime_error(ToString());  // NOLINT(strg-no-throw): the documented legacy-exception bridge itself
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or a non-OK Status. Accessing value() on an error throws
/// std::runtime_error carrying the status text — which is exactly the
/// behaviour the legacy throwing wrappers need, so they are one-liners.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {}  // NOLINT: implicit
  StatusOr(T value) : rep_(std::move(value)) {}         // NOLINT: implicit

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  T& value() & {
    EnsureOk();
    return std::get<T>(rep_);
  }
  const T& value() const& {
    EnsureOk();
    return std::get<T>(rep_);
  }
  T&& value() && {
    EnsureOk();
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void EnsureOk() const {
    if (!ok()) throw std::runtime_error(std::get<Status>(rep_).ToString());  // NOLINT(strg-no-throw): value()-on-error is a caller bug, not an I/O outcome
  }
  std::variant<Status, T> rep_;
};

}  // namespace strg::api

#endif  // STRG_API_STATUS_H_
