#include "cluster/bic.h"

#include <cmath>
#include <stdexcept>

#include "cluster/em.h"

namespace strg::cluster {

double Bic(double log_likelihood, size_t k, size_t num_items) {
  // d = 1: each component carries a mean and a variance -> d(d+3)/2 = 2
  // parameters, plus K-1 free mixture weights.
  double eta = static_cast<double>(k - 1) + 2.0 * static_cast<double>(k);
  return log_likelihood - eta * std::log(static_cast<double>(num_items));
}

BicSweepResult FindOptimalK(const std::vector<dist::Sequence>& data,
                            size_t k_min, size_t k_max,
                            const dist::SequenceDistance& distance,
                            const ClusterParams& params) {
  if (k_min == 0 || k_min > k_max) {
    throw std::invalid_argument("FindOptimalK: bad k range");
  }
  BicSweepResult result;
  double best_bic = -std::numeric_limits<double>::infinity();
  for (size_t k = k_min; k <= k_max; ++k) {
    Clustering model = EmCluster(data, k, distance, params);
    // Score the classification likelihood — what the CEM fit optimizes
    // (see Clustering::classification_log_likelihood).
    double bic = Bic(model.classification_log_likelihood, k, data.size());
    result.bic_values.push_back(bic);
    result.models.push_back(std::move(model));
    if (bic > best_bic) {
      best_bic = bic;
      result.best_k = k;
    }
  }
  return result;
}

}  // namespace strg::cluster
