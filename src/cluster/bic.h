#ifndef STRG_CLUSTER_BIC_H_
#define STRG_CLUSTER_BIC_H_

#include "cluster/clustering.h"

namespace strg::cluster {

/// Bayesian Information Criterion of a fitted mixture model (Equation 8):
///   BIC(M_K) = l̂_K(Y) - eta_{M_K} * log(M)
/// with eta = (K - 1) + K * d(d+3)/2 independent parameters and d = 1
/// (EGED reduces the Gaussian to one dimension, Section 4.2). Larger is
/// better.
double Bic(double log_likelihood, size_t k, size_t num_items);

/// Result of the optimal-K sweep.
struct BicSweepResult {
  size_t best_k = 0;
  std::vector<double> bic_values;     ///< indexed by k - k_min
  std::vector<Clustering> models;     ///< fitted model per k
};

/// Fits EM for every K in [k_min, k_max] and returns the K that maximizes
/// BIC — the paper's model-selection procedure (Section 4.2, Figure 8).
BicSweepResult FindOptimalK(const std::vector<dist::Sequence>& data,
                            size_t k_min, size_t k_max,
                            const dist::SequenceDistance& distance,
                            const ClusterParams& params = {});

}  // namespace strg::cluster

#endif  // STRG_CLUSTER_BIC_H_
