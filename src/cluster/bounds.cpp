#include "cluster/bounds.h"

#include <algorithm>

namespace strg::cluster {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Rounding margins for bound maintenance (nonnegative inputs only): a
/// stored bound may only ever move toward "looser" under floating-point
/// error, mirroring the 1e-12 shave EgedLowerBound applies for the same
/// reason (see the admissibility note in bounds.h).
double ShaveDown(double x) { return x * (1.0 - 1e-12); }
double InflateUp(double x) { return x * (1.0 + 1e-12); }

/// Largest distance whose classification score could still reach
/// `best_score`: score(sigma, d) >= B  <=>  d^2 <= 2 sigma^2 *
/// (-log sigma - kLogSqrt2Pi - B) in exact arithmetic; inflated so rounding
/// cannot shrink the window. The scans re-check inconclusive bounded results
/// in score space afterwards, so this radius only tunes how often the DP may
/// abandon — it never decides a comparison.
double ScoreTau(double sigma, double best_score) {
  double rad =
      2.0 * sigma * sigma * (-std::log(sigma) - kLogSqrt2Pi - best_score);
  double tau = rad > 0.0 ? std::sqrt(rad) : 0.0;
  return tau * (1.0 + 1e-9) + 1e-9;
}

void AddKernel(const dist::EgedKernelStats& ks, ClusterStats* stats) {
  stats->kernel_dp_evals += ks.dp_evals;
  stats->kernel_lb_prunes += ks.lb_prunes;
  stats->kernel_early_abandons += ks.early_abandons;
}

}  // namespace

BoundedAssigner::BoundedAssigner(const std::vector<dist::Sequence>& data,
                                 const dist::SequenceDistance& distance,
                                 bool use_bounds)
    : data_(&data),
      distance_(&distance),
      eged_(dynamic_cast<const dist::EgedMetricDistance*>(&distance)),
      bounds_(use_bounds && distance.IsMetric()),
      m_(data.size()) {
  if (eged_ != nullptr) {
    data_flats_.resize(m_);
    for (size_t j = 0; j < m_; ++j) {
      data_flats_[j].Assign(data[j], eged_->gap());
    }
  }
}

void BoundedAssigner::ColdReset() {
  ub_.assign(m_, kInf);
  assign_.assign(m_, kInvalid);
  lb_.assign(m_ * k_, 0.0);
}

void BoundedAssigner::SetCentroids(const std::vector<dist::Sequence>& centroids,
                                   ClusterStats* stats) {
  const size_t kk = centroids.size();
  const bool warm = bounds_ && k_ == kk && !cents_.empty();
  if (warm) {
    drift_.assign(kk, 0.0);
    for (size_t c = 0; c < kk; ++c) {
      if (cents_[c] == centroids[c]) continue;  // unmoved: drift is 0
      ++stats->drift_distances;
      if (eged_ != nullptr) {
        scratch_flat_.Assign(centroids[c], eged_->gap());
        drift_[c] = dist::EgedMetricFlat(cent_flats_[c], scratch_flat_,
                                         &dist::ThreadLocalEgedWorkspace());
        std::swap(cent_flats_[c], scratch_flat_);
      } else {
        drift_[c] = (*distance_)(cents_[c], centroids[c]);
      }
    }
    for (size_t j = 0; j < m_; ++j) {
      const uint32_t a = assign_[j];
      if (a != kInvalid && drift_[a] > 0.0 && ub_[j] != kInf) {
        ub_[j] = InflateUp(ub_[j] + drift_[a]);
      }
      double* row = &lb_[j * k_];
      for (size_t c = 0; c < kk; ++c) {
        if (drift_[c] <= 0.0) continue;
        double t = row[c] - drift_[c];
        row[c] = t <= 0.0 ? 0.0 : ShaveDown(t);
      }
    }
    cents_ = centroids;
    return;
  }
  cents_ = centroids;
  k_ = kk;
  if (eged_ != nullptr) {
    cent_flats_.resize(kk);
    for (size_t c = 0; c < kk; ++c) {
      cent_flats_[c].Assign(centroids[c], eged_->gap());
    }
  }
  if (bounds_) ColdReset();
}

void BoundedAssigner::ReplaceCentroid(size_t c, const dist::Sequence& seq,
                                      ClusterStats* stats) {
  (void)stats;
  cents_[c] = seq;
  if (eged_ != nullptr) cent_flats_[c].Assign(seq, eged_->gap());
  if (!bounds_) return;
  for (size_t j = 0; j < m_; ++j) {
    Lb(j, c) = 0.0;
    if (assign_[j] == c) ub_[j] = kInf;
  }
}

double BoundedAssigner::Eval(size_t j, size_t c, double tau,
                             ClusterStats* stats) {
  ++stats->assign_distances;
  if (eged_ != nullptr) {
    dist::EgedKernelStats ks;
    double v = dist::EgedMetricBounded(data_flats_[j], cent_flats_[c], tau,
                                       &dist::ThreadLocalEgedWorkspace(), &ks);
    AddKernel(ks, stats);
    return v;
  }
  return distance_->Bounded((*data_)[j], cents_[c], tau);
}

/// Evaluates cand_ with taus_ into outs_ (batched on the flat path;
/// bitwise identical to per-candidate Eval calls either way).
void BoundedAssigner::EvalBatch(size_t j, ClusterStats* stats) {
  const size_t n = cand_.size();
  outs_.resize(n);
  if (n == 0) return;
  stats->assign_distances += n;
  if (eged_ != nullptr) {
    cand_ptrs_.clear();
    for (uint32_t c : cand_) cand_ptrs_.push_back(&cent_flats_[c]);
    dist::EgedKernelStats ks;
    dist::EgedBatchBounded(data_flats_[j], cand_ptrs_.data(), taus_.data(), n,
                           outs_.data(), &dist::ThreadLocalEgedWorkspace(),
                           &ks);
    AddKernel(ks, stats);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    outs_[i] = distance_->Bounded((*data_)[j], cents_[cand_[i]], taus_[i]);
  }
}

BoundedAssigner::Nearest BoundedAssigner::NearestCentroid(size_t j,
                                                          bool need_exact,
                                                          ClusterStats* stats) {
  if (!bounds_ || assign_[j] == kInvalid) {
    // Cold / unbounded: sequential running-tau scan. Bounded(tau) is exact
    // whenever d <= tau, so every strict improvement is exact and the
    // lowest-index argmin matches the exhaustive strict-< loop.
    size_t b_idx = 0;
    double best = kInf;
    for (size_t c = 0; c < k_; ++c) {
      double v = Eval(j, c, best, stats);
      if (bounds_) Lb(j, c) = v;
      if (v < best) {
        best = v;
        b_idx = c;
      }
    }
    if (bounds_) {
      assign_[j] = static_cast<uint32_t>(b_idx);
      ub_[j] = best;
    }
    return {b_idx, best};
  }

  const size_t a = assign_[j];
  double lbmin = kInf;
  for (size_t c = 0; c < k_; ++c) {
    if (c != a) lbmin = std::min(lbmin, LbV(j, c));
  }
  // Hamerly whole-scan skip: d(j,a) <= ub < lbmin <= d(j,c) for all c != a
  // makes the anchor the strict unique argmin — no evaluation needed.
  if (!need_exact && ub_[j] < lbmin) {
    ++stats->hamerly_skips;
    return {a, ub_[j]};
  }
  double d_a = Eval(j, a, ub_[j], stats);  // d <= ub, so this is exact
  Lb(j, a) = d_a;
  ub_[j] = d_a;
  if (d_a < lbmin) {
    ++stats->hamerly_skips;
    return {a, d_a};
  }

  size_t b_idx = a;
  double best = d_a;
  cand_.clear();
  for (size_t c = 0; c < k_; ++c) {
    if (c == a) continue;
    double l = LbV(j, c);
    // Tie-aware prune: d(j,c) >= l, so l > best loses outright; at l ==
    // best, c can at most tie and loses unless its index beats the current
    // winner's.
    if (l > best || (l == best && b_idx < c)) {
      ++stats->assign_prunes;
      continue;
    }
    cand_.push_back(static_cast<uint32_t>(c));
  }
  // Fixed tau = d_a (the batch takes per-candidate taus up front; best only
  // shrinks below it, and a result above d_a can never win).
  taus_.assign(cand_.size(), d_a);
  EvalBatch(j, stats);
  for (size_t i = 0; i < cand_.size(); ++i) {
    size_t c = cand_[i];
    double v = outs_[i];
    Lb(j, c) = v;
    if (v <= taus_[i] && (v < best || (v == best && c < b_idx))) {
      best = v;
      b_idx = c;
    }
  }
  assign_[j] = static_cast<uint32_t>(b_idx);
  ub_[j] = best;
  return {b_idx, best};
}

BoundedAssigner::Scored BoundedAssigner::BestScoringComponent(
    size_t j, const std::vector<double>& sigmas, ClusterStats* stats) {
  if (!bounds_ || assign_[j] == kInvalid) {
    // Cold / unbounded: ascending scan with score-derived radii. An
    // abandoned evaluation still returns a distance lower bound, whose
    // score is an upper bound; only when that cannot settle the comparison
    // is one exact re-evaluation spent.
    size_t b_idx = 0;
    double best_s = -kInf;
    double b_d = 0.0;
    for (size_t c = 0; c < k_; ++c) {
      double tau = best_s == -kInf ? kInf : ScoreTau(sigmas[c], best_s);
      double v = Eval(j, c, tau, stats);
      if (bounds_) Lb(j, c) = v;
      if (v > tau) {
        double sv = ScoreLogDensity(sigmas[c], v);
        if (sv < best_s || (sv == best_s && b_idx < c)) continue;
        ++stats->bound_reevals;
        v = Eval(j, c, kInf, stats);
        if (bounds_) Lb(j, c) = v;
      }
      double s = ScoreLogDensity(sigmas[c], v);
      if (s > best_s || (s == best_s && c < b_idx)) {
        best_s = s;
        b_idx = c;
        b_d = v;
      }
    }
    if (bounds_) {
      assign_[j] = static_cast<uint32_t>(b_idx);
      ub_[j] = b_d;
    }
    return {b_idx, best_s, b_d};
  }

  const size_t a = assign_[j];
  double d_a = Eval(j, a, ub_[j], stats);  // exact (d <= ub)
  Lb(j, a) = d_a;
  ub_[j] = d_a;
  size_t b_idx = a;
  double best_s = ScoreLogDensity(sigmas[a], d_a);
  double b_d = d_a;

  cand_.clear();
  taus_.clear();
  for (size_t c = 0; c < k_; ++c) {
    if (c == a) continue;
    // The compiled score expression is monotone non-increasing in d (each
    // of square, divide, subtract rounds monotonically), so a distance
    // lower bound yields a score upper bound — comparisons stay in score
    // space and inherit the exhaustive scan's tie semantics.
    double sbar = ScoreLogDensity(sigmas[c], LbV(j, c));
    if (sbar < best_s || (sbar == best_s && b_idx < c)) {
      ++stats->assign_prunes;
      continue;
    }
    cand_.push_back(static_cast<uint32_t>(c));
    taus_.push_back(ScoreTau(sigmas[c], best_s));
  }
  EvalBatch(j, stats);
  for (size_t i = 0; i < cand_.size(); ++i) {
    size_t c = cand_[i];
    double v = outs_[i];
    Lb(j, c) = v;
    if (v > taus_[i]) {
      double sv = ScoreLogDensity(sigmas[c], v);
      if (sv < best_s || (sv == best_s && b_idx < c)) continue;
      ++stats->bound_reevals;
      v = Eval(j, c, kInf, stats);
      Lb(j, c) = v;
    }
    double s = ScoreLogDensity(sigmas[c], v);
    if (s > best_s || (s == best_s && c < b_idx)) {
      best_s = s;
      b_idx = c;
      b_d = v;
    }
  }
  assign_[j] = static_cast<uint32_t>(b_idx);
  ub_[j] = b_d;
  return {b_idx, best_s, b_d};
}

double BoundedAssigner::NearestDistance(size_t j, ClusterStats* stats) {
  if (!bounds_ || assign_[j] == kInvalid) {
    double best = kInf;
    for (size_t c = 0; c < k_; ++c) {
      double v = Eval(j, c, best, stats);
      if (bounds_) Lb(j, c) = v;
      best = std::min(best, v);
    }
    return best;
  }
  const size_t a = assign_[j];
  double d_a = Eval(j, a, ub_[j], stats);
  Lb(j, a) = d_a;
  ub_[j] = d_a;
  double best = d_a;
  // Sequential shrinking-tau scan (value only; the guard fires rarely, so
  // the tighter per-candidate tau beats batch amortization here).
  for (size_t c = 0; c < k_; ++c) {
    if (c == a) continue;
    if (LbV(j, c) >= best) {
      ++stats->assign_prunes;
      continue;
    }
    double v = Eval(j, c, best, stats);
    Lb(j, c) = v;
    if (v < best) best = v;
  }
  return best;
}

double BoundedAssigner::CentroidDistance(size_t c1, size_t c2,
                                         ClusterStats* stats) const {
  ++stats->guard_distances;
  if (eged_ != nullptr) {
    return dist::EgedMetricFlat(cent_flats_[c1], cent_flats_[c2],
                                &dist::ThreadLocalEgedWorkspace());
  }
  return (*distance_)(cents_[c1], cents_[c2]);
}

void BoundedAssigner::ExactMatrix(const std::vector<dist::Sequence>& centroids,
                                  ThreadPool* pool,
                                  std::vector<std::vector<double>>* out,
                                  ClusterStats* stats) const {
  const size_t kk = centroids.size();
  out->assign(m_, std::vector<double>(kk, 0.0));
  stats->matrix_distances += static_cast<uint64_t>(m_) * kk;
  if (eged_ != nullptr) {
    std::vector<dist::FlatSequence> flats(kk);
    std::vector<const dist::FlatSequence*> ptrs(kk);
    for (size_t c = 0; c < kk; ++c) {
      flats[c].Assign(centroids[c], eged_->gap());
      ptrs[c] = &flats[c];
    }
    std::vector<double> taus(kk, kInf);
    auto row = [&](size_t j) {
      dist::EgedBatchBounded(data_flats_[j], ptrs.data(), taus.data(), kk,
                             (*out)[j].data(),
                             &dist::ThreadLocalEgedWorkspace());
    };
    if (pool != nullptr) {
      pool->ParallelFor(0, m_, row);
    } else {
      for (size_t j = 0; j < m_; ++j) row(j);
    }
    return;
  }
  auto row = [&](size_t j) {
    for (size_t c = 0; c < kk; ++c) {
      (*out)[j][c] = (*distance_)((*data_)[j], centroids[c]);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, m_, row);
  } else {
    for (size_t j = 0; j < m_; ++j) row(j);
  }
}

}  // namespace strg::cluster
