#ifndef STRG_CLUSTER_BOUNDS_H_
#define STRG_CLUSTER_BOUNDS_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "cluster/clustering.h"
#include "distance/eged.h"
#include "util/thread_pool.h"

namespace strg::cluster {

/// log(sqrt(2*pi)), shared by the EM density and the bounded score scans so
/// the two paths evaluate the exact same expression.
inline constexpr double kLogSqrt2Pi = 0.9189385332046727;

/// log of a component's weighted density at distance d (Equation 3). Lives
/// here (not in em.cpp) because the bounded classification scan must compute
/// scores with bit-identical arithmetic to the exhaustive E-step.
inline double LogComponentDensity(double w, double sigma, double d) {
  return std::log(w) - std::log(sigma) - kLogSqrt2Pi -
         (d * d) / (2.0 * sigma * sigma);
}

/// Uniform-prior classification score. log(1.0) is +0.0 and 0.0 - x == -x
/// exactly, so this is the same double LogComponentDensity(1.0, sigma, d)
/// produces.
inline double ScoreLogDensity(double sigma, double d) {
  return LogComponentDensity(1.0, sigma, d);
}

/// Triangle-inequality bounded centroid assignment (Elkan 2003 / Hamerly
/// 2010), specialized for the cluster module's scans.
///
/// State per item j: an anchor centroid assign_[j] with an upper bound
/// ub_[j] >= d(j, anchor), and per-(item, centroid) lower bounds
/// lb_[j*k + c] <= d(j, c). After every centroid move the bounds are
/// loosened by the centroid's drift delta = d(old_c, new_c): by the triangle
/// inequality d(j, new_c) ∈ [d(j, old_c) - delta, d(j, old_c) + delta], so
/// lb -= delta and ub += delta stay admissible for ANY displacement —
/// including M-step dead-component reseeds. The anti-collapse guard instead
/// calls ReplaceCentroid, which zeroes that centroid's lower bounds and
/// widens the affected anchors (the reseed target is arbitrary, and a huge
/// drift would poison every item's bound for that centroid anyway).
///
/// A scan then skips any centroid whose lower bound already exceeds the
/// current best (or whole scans, Hamerly-style, when ub < min lb), and
/// evaluates the survivors through the batched early-abandoning DP
/// (EgedBatchBounded) with tau = current best.
///
/// Admissibility in floating point: the triangle inequality holds for the
/// TRUE metric values, while both the stored bounds and the scan comparands
/// are computed (rounded) values. Each computed EGED carries a relative
/// error of at most ~(m+n) ulp (sums of <= m+n point distances; min() does
/// not amplify), about 3e-14 at the sequence lengths this repo produces, so
/// every bound update is shaved/inflated by a 1e-12 relative margin — the
/// same margin EgedLowerBound already uses — leaving ~30x headroom. The
/// equivalence tests exercise this with adversarial duplicates and ties.
///
/// Results are bit-identical to the exhaustive scans: every pruning rule is
/// tie-aware (tracking the would-be winner index) so the lowest-index
/// argmin/argmax of the exhaustive loop is reproduced exactly, and winner
/// distances are always exact evaluations (Bounded(tau) is exact whenever
/// d <= tau, and the winner satisfies that by construction).
///
/// Modes:
///  - bounded(): use_bounds && distance.IsMetric() — full Elkan/Hamerly
///    machinery. Never enabled for non-metric measures (inadmissible).
///  - batched(): the distance is a bare EgedMetricDistance — scans and
///    matrices run on cached flat forms through the PR 8 batch kernels
///    (bitwise identical to the scalar calls). Otherwise evaluations go
///    through SequenceDistance::Bounded.
///
/// Not thread-safe: scans mutate shared bound state. ExactMatrix is const
/// and may use a pool internally (rows are independent).
class BoundedAssigner {
 public:
  BoundedAssigner(const std::vector<dist::Sequence>& data,
                  const dist::SequenceDistance& distance, bool use_bounds);

  bool bounded() const { return bounds_; }
  bool batched() const { return eged_ != nullptr; }

  /// Installs a full centroid set. First call (or a k change) cold-resets
  /// the bounds; subsequent calls compute per-centroid drift and loosen the
  /// existing bounds instead of discarding them.
  void SetCentroids(const std::vector<dist::Sequence>& centroids,
                    ClusterStats* stats);

  /// Replaces one centroid with an arbitrary sequence (anti-collapse
  /// reseed): lb[*][c] = 0, and ub widens to +inf for items anchored on c.
  void ReplaceCentroid(size_t c, const dist::Sequence& seq,
                       ClusterStats* stats);

  struct Nearest {
    size_t index;
    /// Exact d(j, index) when the scan ran (or need_exact was set); on a
    /// Hamerly whole-scan skip with !need_exact this is only the upper
    /// bound ub_[j] (the index is still the exact argmin).
    double distance;
  };
  /// Lowest-index argmin over the installed centroids, bit-identical to the
  /// exhaustive strict-< ascending scan.
  Nearest NearestCentroid(size_t j, bool need_exact, ClusterStats* stats);

  struct Scored {
    size_t index;
    double score;     ///< ScoreLogDensity(sigmas[index], distance)
    double distance;  ///< exact d(j, index)
  };
  /// Lowest-index argmax of ScoreLogDensity(sigmas[c], d(j, c)) — the CEM
  /// classification scan — bit-identical to the exhaustive strict-> loop.
  /// Pruning happens in score space: a distance lower bound gives a score
  /// upper bound because the compiled score expression is monotone
  /// non-increasing in d (each of square, divide, subtract rounds
  /// monotonically).
  Scored BestScoringComponent(size_t j, const std::vector<double>& sigmas,
                              ClusterStats* stats);

  /// Exact min_c d(j, c) (value only, for the guard's worst-covered-item
  /// scan). Sequential shrinking-tau scan with lower-bound skips.
  double NearestDistance(size_t j, ClusterStats* stats);

  /// Exact d(centroid c1, centroid c2) between installed centroids, the
  /// same double the scalar distance() call produces.
  double CentroidDistance(size_t c1, size_t c2, ClusterStats* stats) const;

  /// Full exact item x centroid matrix for an arbitrary centroid set
  /// (deferred EM log-likelihood, KHM's soft-membership scan). Batched
  /// per-row when batched(); rows fan out over `pool` when provided.
  void ExactMatrix(const std::vector<dist::Sequence>& centroids,
                   ThreadPool* pool, std::vector<std::vector<double>>* out,
                   ClusterStats* stats) const;

 private:
  static constexpr uint32_t kInvalid = std::numeric_limits<uint32_t>::max();

  double Eval(size_t j, size_t c, double tau, ClusterStats* stats);
  void EvalBatch(size_t j, ClusterStats* stats);
  double& Lb(size_t j, size_t c) { return lb_[j * k_ + c]; }
  double LbV(size_t j, size_t c) const { return lb_[j * k_ + c]; }
  void ColdReset();

  const std::vector<dist::Sequence>* data_;
  const dist::SequenceDistance* distance_;
  const dist::EgedMetricDistance* eged_;  ///< non-null => flat batch kernels
  bool bounds_;
  size_t m_;
  size_t k_ = 0;

  std::vector<dist::FlatSequence> data_flats_;  ///< batch mode only
  std::vector<dist::Sequence> cents_;           ///< installed centroids
  std::vector<dist::FlatSequence> cent_flats_;  ///< batch mode only

  std::vector<double> ub_;        ///< per item, +inf when unknown
  std::vector<uint32_t> assign_;  ///< anchor centroid per item
  std::vector<double> lb_;        ///< m_ x k_, row-major, 0 when unknown
  std::vector<double> drift_;     ///< scratch for SetCentroids

  // Scan scratch (scans are sequential; ExactMatrix builds its own).
  std::vector<uint32_t> cand_;
  std::vector<double> taus_;
  std::vector<double> outs_;
  std::vector<const dist::FlatSequence*> cand_ptrs_;
  dist::FlatSequence scratch_flat_;
};

}  // namespace strg::cluster

#endif  // STRG_CLUSTER_BOUNDS_H_
