#include "cluster/centroid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace strg::cluster {

dist::Sequence WeightedCentroid(const std::vector<dist::Sequence>& data,
                                const std::vector<double>& weights) {
  if (data.size() != weights.size()) {
    throw std::invalid_argument("WeightedCentroid: size mismatch");
  }
  double total = 0.0, length_acc = 0.0;
  for (size_t j = 0; j < data.size(); ++j) {
    if (weights[j] <= 0.0) continue;
    total += weights[j];
    length_acc += weights[j] * static_cast<double>(data[j].size());
  }
  if (total <= 0.0) {
    throw std::invalid_argument("WeightedCentroid: no positive weight");
  }
  size_t length = std::max<size_t>(1, static_cast<size_t>(
                                          std::lround(length_acc / total)));

  dist::Sequence centroid(length);
  for (auto& v : centroid) v.fill(0.0);
  for (size_t j = 0; j < data.size(); ++j) {
    if (weights[j] <= 0.0) continue;
    dist::Sequence r = dist::Resample(data[j], length);
    double w = weights[j] / total;
    for (size_t i = 0; i < length; ++i) {
      for (size_t k = 0; k < dist::kFeatureDim; ++k) {
        centroid[i][k] += w * r[i][k];
      }
    }
  }
  return centroid;
}

dist::Sequence CentroidOfSubset(const std::vector<dist::Sequence>& data,
                                const std::vector<size_t>& member_indices) {
  std::vector<double> weights(data.size(), 0.0);
  for (size_t idx : member_indices) weights[idx] = 1.0;
  return WeightedCentroid(data, weights);
}

}  // namespace strg::cluster
