#ifndef STRG_CLUSTER_CENTROID_H_
#define STRG_CLUSTER_CENTROID_H_

#include <vector>

#include "distance/sequence.h"

namespace strg::cluster {

/// Synthesizes a weighted-mean sequence ("centroid OG") from variable-length
/// member sequences.
///
/// Equation 6's mu_k = sum_j h_jk Y_j / sum_j h_jk averages sequences of
/// different time lengths, which the paper leaves unspecified; we realize it
/// by resampling every member to the weighted-mean length and averaging
/// pointwise (documented in DESIGN.md). Members with non-positive weight are
/// ignored; at least one positive weight is required.
dist::Sequence WeightedCentroid(const std::vector<dist::Sequence>& data,
                                const std::vector<double>& weights);

/// Unweighted convenience overload over a subset of items.
dist::Sequence CentroidOfSubset(const std::vector<dist::Sequence>& data,
                                const std::vector<size_t>& member_indices);

}  // namespace strg::cluster

#endif  // STRG_CLUSTER_CENTROID_H_
