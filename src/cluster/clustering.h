#ifndef STRG_CLUSTER_CLUSTERING_H_
#define STRG_CLUSTER_CLUSTERING_H_

#include <limits>
#include <vector>

#include "distance/distance.h"
#include "util/thread_pool.h"

namespace strg::cluster {

/// Result shared by every clustering algorithm in this module.
struct Clustering {
  std::vector<int> assignment;            ///< cluster id per input item
  std::vector<dist::Sequence> centroids;  ///< one synthesized OG per cluster
  std::vector<double> weights;            ///< mixture weights w_k (EM)
  std::vector<double> sigmas;             ///< component sigma_k (EM)
  double log_likelihood = -std::numeric_limits<double>::infinity();
  /// Classification log-likelihood: sum over items of the log density of
  /// their assigned component (uniform prior). This is the likelihood the
  /// classification-EM fit actually optimizes, and the one model selection
  /// (BIC, Section 4.2) scores — the mixture likelihood's log w_k term
  /// penalizes every extra component by log K per item, which would mask
  /// genuine cluster structure at moderate separations.
  double classification_log_likelihood =
      -std::numeric_limits<double>::infinity();
  int iterations = 0;  ///< E/M (or Lloyd) iterations actually run

  size_t NumClusters() const { return centroids.size(); }
};

/// Shared knobs for the iterative clusterers.
struct ClusterParams {
  int max_iterations = 30;
  double convergence_tol = 1e-4;  ///< on mixture weights / assignment churn
  uint64_t seed = 13;             ///< centroid initialization seed
  /// Independent restarts (different seeds); the fit with the best
  /// classification likelihood wins. CEM converges to local optima — e.g.
  /// two seeds landing in one natural cluster merge two others — and
  /// restarts are the standard remedy.
  int restarts = 1;
  /// Optional worker pool: when set, the K x M distance matrix of each
  /// EM iteration is computed in parallel (the distance functions are
  /// pure; CountingDistance is atomic). Not owned.
  ThreadPool* pool = nullptr;
  /// Floor on each component's sigma. Features live on a ~[0, 10] scale
  /// (FeatureScaling), so this guards against the classic GMM singularity
  /// (a component collapsing onto near-duplicate OGs with sigma -> 0 and
  /// unbounded likelihood), which would make BIC over-select K.
  double min_sigma = 0.05;
};

}  // namespace strg::cluster

#endif  // STRG_CLUSTER_CLUSTERING_H_
