#ifndef STRG_CLUSTER_CLUSTERING_H_
#define STRG_CLUSTER_CLUSTERING_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "distance/distance.h"
#include "util/thread_pool.h"

namespace strg::cluster {

/// Distance-computation accounting for a clustering run (the quantity the
/// paper reports as build cost). Split by call site so the bounded-assignment
/// ablation (DESIGN.md section 14) can show where triangle-inequality pruning
/// saves work and where it merely shifts it (drift evaluations, exact
/// log-likelihood matrices).
struct ClusterStats {
  uint64_t seeding_distances = 0;  ///< D^2 pass Bounded() evaluations
  uint64_t assign_distances = 0;   ///< assignment/classification scan evals
  uint64_t assign_prunes = 0;      ///< centroids skipped via lower bounds
  uint64_t hamerly_skips = 0;      ///< whole scans answered by ub < min lb
  uint64_t bound_reevals = 0;      ///< exact re-evals after an inconclusive
                                   ///< bounded eval in score space
  uint64_t matrix_distances = 0;   ///< full exact-matrix refreshes
  uint64_t drift_distances = 0;    ///< old-vs-new centroid drift evals
  uint64_t guard_distances = 0;    ///< anti-collapse pairwise centroid evals
  uint64_t reseeds = 0;            ///< dead-component + coinciding reseeds
  /// Bounded-kernel internals (flat path only), forwarded from
  /// dist::EgedKernelStats: DPs entered, cascade prunes, row abandons.
  uint64_t kernel_dp_evals = 0;
  uint64_t kernel_lb_prunes = 0;
  uint64_t kernel_early_abandons = 0;

  /// Every distance evaluation the run performed, of any kind.
  uint64_t TotalDistances() const {
    return seeding_distances + assign_distances + matrix_distances +
           drift_distances + guard_distances;
  }
  /// Evaluations attributable to centroid assignment (the term the bounds
  /// attack): scans plus the full matrices the unbounded path assigns from,
  /// plus the drift evals the bounded path spends to maintain its bounds.
  uint64_t AssignmentDistances() const {
    return assign_distances + matrix_distances + drift_distances;
  }

  void Merge(const ClusterStats& o) {
    seeding_distances += o.seeding_distances;
    assign_distances += o.assign_distances;
    assign_prunes += o.assign_prunes;
    hamerly_skips += o.hamerly_skips;
    bound_reevals += o.bound_reevals;
    matrix_distances += o.matrix_distances;
    drift_distances += o.drift_distances;
    guard_distances += o.guard_distances;
    reseeds += o.reseeds;
    kernel_dp_evals += o.kernel_dp_evals;
    kernel_lb_prunes += o.kernel_lb_prunes;
    kernel_early_abandons += o.kernel_early_abandons;
  }
};

/// Result shared by every clustering algorithm in this module.
struct Clustering {
  std::vector<int> assignment;            ///< cluster id per input item
  std::vector<dist::Sequence> centroids;  ///< one synthesized OG per cluster
  std::vector<double> weights;            ///< mixture weights w_k (EM)
  std::vector<double> sigmas;             ///< component sigma_k (EM)
  double log_likelihood = -std::numeric_limits<double>::infinity();
  /// Classification log-likelihood: sum over items of the log density of
  /// their assigned component (uniform prior). This is the likelihood the
  /// classification-EM fit actually optimizes, and the one model selection
  /// (BIC, Section 4.2) scores — the mixture likelihood's log w_k term
  /// penalizes every extra component by log K per item, which would mask
  /// genuine cluster structure at moderate separations.
  double classification_log_likelihood =
      -std::numeric_limits<double>::infinity();
  int iterations = 0;  ///< E/M (or Lloyd) iterations actually run

  size_t NumClusters() const { return centroids.size(); }
};

/// Shared knobs for the iterative clusterers.
struct ClusterParams {
  int max_iterations = 30;
  double convergence_tol = 1e-4;  ///< on mixture weights / assignment churn
  uint64_t seed = 13;             ///< centroid initialization seed
  /// Independent restarts (different seeds); the fit with the best
  /// classification likelihood wins. CEM converges to local optima — e.g.
  /// two seeds landing in one natural cluster merge two others — and
  /// restarts are the standard remedy.
  int restarts = 1;
  /// Optional worker pool: when set, the K x M distance matrix of each
  /// EM iteration is computed in parallel (the distance functions are
  /// pure; CountingDistance is atomic). Not owned.
  ThreadPool* pool = nullptr;
  /// Floor on each component's sigma. Features live on a ~[0, 10] scale
  /// (FeatureScaling), so this guards against the classic GMM singularity
  /// (a component collapsing onto near-duplicate OGs with sigma -> 0 and
  /// unbounded likelihood), which would make BIC over-select K.
  double min_sigma = 0.05;
  /// A/B knob for the triangle-inequality bounded assignment path
  /// (src/cluster/bounds.h), mirroring the use_fast_kernel pattern: results
  /// are bit-identical either way (cluster_bounds_test pins this), so the
  /// knob exists to prove it and to measure the saving, not to trade
  /// accuracy. Only engages when the distance reports IsMetric(); non-metric
  /// measures always take the exhaustive path.
  bool use_bounds = true;
  /// Optional sink for distance-computation counters. Not owned; accumulated
  /// into (never reset) so a caller can aggregate across runs. Must not be
  /// shared across threads — EmCluster's parallel restarts merge per-restart
  /// counters serially before touching it.
  ClusterStats* stats = nullptr;
};

}  // namespace strg::cluster

#endif  // STRG_CLUSTER_CLUSTERING_H_
