#include "cluster/em.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cluster/bounds.h"
#include "cluster/centroid.h"
#include "cluster/seeding.h"
#include "util/random.h"

namespace strg::cluster {

namespace {

/// Row-wise softmax with log-sum-exp; returns the log evidence.
double PosteriorRow(const std::vector<double>& log_p, std::vector<double>* h) {
  double mx = *std::max_element(log_p.begin(), log_p.end());
  double sum = 0.0;
  for (double lp : log_p) sum += std::exp(lp - mx);
  double log_evidence = mx + std::log(sum);
  h->resize(log_p.size());
  for (size_t k = 0; k < log_p.size(); ++k) {
    (*h)[k] = std::exp(log_p[k] - log_evidence);
  }
  return log_evidence;
}

/// Initialization shared by both E-step variants: hard-assign every item to
/// its nearest seed centroid and derive per-component weights and sigmas
/// from that partition. Starting from a hard assignment breaks the symmetry
/// that otherwise lets EM collapse all components onto the global mean when
/// the seed sigma is large (near-uniform posteriors -> identical M-step
/// centroids). Accumulations run in ascending item order, so both callers
/// (matrix argmin and bounded scan) produce the same doubles.
double DeriveInitModel(const std::vector<dist::Sequence>& data, size_t k,
                       const ClusterParams& params,
                       const std::vector<size_t>& init_assign,
                       const std::vector<double>& init_d, Clustering* model) {
  const size_t m = data.size();
  double init_acc = 0.0;
  std::vector<size_t> init_count(k, 0);
  std::vector<double> init_sq(k, 0.0);
  for (size_t j = 0; j < m; ++j) {
    size_t best = init_assign[j];
    init_count[best] += 1;
    init_sq[best] += init_d[j] * init_d[j];
    init_acc += init_d[j] * init_d[j];
  }
  double init_sigma =
      std::max(params.min_sigma, std::sqrt(init_acc / static_cast<double>(m)));
  model->sigmas.assign(k, init_sigma);
  for (size_t c = 0; c < k; ++c) {
    if (init_count[c] > 0) {
      model->weights[c] = std::max(1.0, static_cast<double>(init_count[c])) /
                          static_cast<double>(m);
      model->sigmas[c] = std::max(
          params.min_sigma,
          std::sqrt(init_sq[c] / static_cast<double>(init_count[c])));
      std::vector<double> w(m, 0.0);
      for (size_t j = 0; j < m; ++j) {
        if (init_assign[j] == c) w[j] = 1.0;
      }
      model->centroids[c] = WeightedCentroid(data, w);
    } else {
      model->weights[c] = 1.0 / static_cast<double>(m);
    }
  }
  // Renormalize the weights after the count-based estimate.
  double sum = 0.0;
  for (double w : model->weights) sum += w;
  for (double& w : model->weights) w /= sum;
  return init_sigma;
}

/// Exhaustive-scan CEM: every iteration refreshes the full K x M distance
/// matrix and the E-step/classification read from it. This is the reference
/// the bounded variant below must match bit-for-bit.
Clustering EmClusterOnce(const std::vector<dist::Sequence>& data, size_t k,
                         const dist::SequenceDistance& distance,
                         const ClusterParams& params, ClusterStats* stats) {
  const size_t m = data.size();
  if (m == 0 || k == 0) throw std::invalid_argument("EmCluster: empty input");
  k = std::min(k, m);

  Clustering model;
  Rng rng(params.seed);

  // Init: K distinct random OGs become the initial centroids (Section 4.1:
  // "OGs are selected randomly").
  for (size_t idx : SeedCentroidIndices(data, k, distance, &rng,
                                        std::max<size_t>(4 * k, 512), stats)) {
    model.centroids.push_back(data[idx]);
  }
  model.weights.assign(k, 1.0 / static_cast<double>(k));

  // Distance matrix for the current centroids.
  std::vector<std::vector<double>> d(m, std::vector<double>(k, 0.0));
  auto refresh_distances = [&]() {
    stats->matrix_distances += static_cast<uint64_t>(m) * k;
    auto row = [&](size_t j) {
      for (size_t c = 0; c < k; ++c) {
        d[j][c] = distance(data[j], model.centroids[c]);
      }
    };
    if (params.pool != nullptr) {
      params.pool->ParallelFor(0, m, row);
    } else {
      for (size_t j = 0; j < m; ++j) row(j);
    }
  };
  refresh_distances();

  std::vector<size_t> init_assign(m, 0);
  std::vector<double> init_d(m, 0.0);
  for (size_t j = 0; j < m; ++j) {
    size_t best = 0;
    for (size_t c = 1; c < k; ++c) {
      if (d[j][c] < d[j][best]) best = c;
    }
    init_assign[j] = best;
    init_d[j] = d[j][best];
  }
  double init_sigma =
      DeriveInitModel(data, k, params, init_assign, init_d, &model);
  refresh_distances();

  std::vector<std::vector<double>> h(m, std::vector<double>(k, 0.0));
  std::vector<double> log_p(k);

  for (int iter = 0; iter < params.max_iterations; ++iter) {
    model.iterations = iter + 1;

    // E-step (Equation 5).
    double ll = 0.0;
    for (size_t j = 0; j < m; ++j) {
      for (size_t c = 0; c < k; ++c) {
        log_p[c] =
            LogComponentDensity(model.weights[c], model.sigmas[c], d[j][c]);
      }
      ll += PosteriorRow(log_p, &h[j]);
    }
    model.log_likelihood = ll;

    // Classification step: responsibilities are hardened to the maximum-
    // posterior component before the M-step (CEM, Celeux & Govaert). With
    // trajectory centroids synthesized by averaging, fully soft updates
    // drag every centroid toward the global mean and the mixture collapses;
    // the classification variant keeps the component structure while still
    // optimizing the same mixture objective. The soft posteriors above are
    // retained for the reported log-likelihood (Equation 4).
    // Items are classified by component density alone (uniform prior): at
    // the sigma levels OG data produces, the log w_k term otherwise
    // dominates the d^2/(2 sigma^2) signal and the heaviest component
    // absorbs everything (rich-get-richer collapse).
    std::vector<size_t> hard(m);
    for (size_t j = 0; j < m; ++j) {
      size_t best = 0;
      double best_lp = -std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k; ++c) {
        double lp = LogComponentDensity(1.0, model.sigmas[c], d[j][c]);
        if (lp > best_lp) {
          best_lp = lp;
          best = c;
        }
      }
      hard[j] = best;
    }

    // M-step (Equation 6).
    std::vector<double> new_weights(k, 0.0);
    bool converged = true;
    for (size_t c = 0; c < k; ++c) {
      double hs = 0.0, hd2 = 0.0;
      std::vector<double> col(m);
      for (size_t j = 0; j < m; ++j) {
        col[j] = hard[j] == c ? 1.0 : 0.0;
        hs += col[j];
        hd2 += col[j] * d[j][c] * d[j][c];
      }
      new_weights[c] = hs / static_cast<double>(m);
      if (hs > 1e-12) {
        model.centroids[c] = WeightedCentroid(data, col);
        model.sigmas[c] = std::max(params.min_sigma, std::sqrt(hd2 / hs));
      } else {
        // Dead component: reseed on a random item.
        model.centroids[c] = data[rng.Index(m)];
        model.sigmas[c] = init_sigma;
        new_weights[c] = 1.0 / static_cast<double>(m);
        ++stats->reseeds;
      }
      if (std::fabs(new_weights[c] - model.weights[c]) >
          params.convergence_tol) {
        converged = false;
      }
    }
    model.weights = new_weights;
    refresh_distances();

    // Anti-collapse guard: averaging trajectories pulls every centroid
    // toward the global mean, and once two components coincide the mixture
    // can never separate them again (their posteriors stay proportional
    // forever). Detect coinciding centroids and reseed the lighter twin on
    // the item the model currently covers worst — the x-means-style
    // refinement step. Without this, K >= 2 fits on heterogeneous OG data
    // collapse to a single effective component.
    bool reseeded = false;
    for (size_t c1 = 0; c1 < k && !reseeded; ++c1) {
      for (size_t c2 = c1 + 1; c2 < k; ++c2) {
        ++stats->guard_distances;
        double sep = distance(model.centroids[c1], model.centroids[c2]);
        double scale = std::min(model.sigmas[c1], model.sigmas[c2]);
        if (sep >= std::max(params.min_sigma, 0.2 * scale)) continue;
        size_t weak = model.weights[c1] <= model.weights[c2] ? c1 : c2;
        // Worst-covered item: the one farthest from every centroid.
        size_t far_j = 0;
        double far_d = -1.0;
        for (size_t j = 0; j < m; ++j) {
          double nearest = *std::min_element(d[j].begin(), d[j].end());
          if (nearest > far_d) {
            far_d = nearest;
            far_j = j;
          }
        }
        model.centroids[weak] = data[far_j];
        model.sigmas[weak] =
            std::max(params.min_sigma, 0.5 * model.sigmas[weak]);
        model.weights[weak] = 1.0 / static_cast<double>(k);
        double sum = 0.0;
        for (double w : model.weights) sum += w;
        for (double& w : model.weights) w /= sum;
        ++stats->reseeds;
        reseeded = true;
        break;
      }
    }
    if (reseeded) {
      refresh_distances();
      converged = false;
    }
    if (converged) break;
  }

  // Final assignment by maximum posterior (Equation 7), with the same
  // uniform-prior classification used during fitting.
  model.assignment.resize(m);
  double cl = 0.0;
  for (size_t j = 0; j < m; ++j) {
    int best = 0;
    double best_lp = -std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      double lp = LogComponentDensity(1.0, model.sigmas[c], d[j][c]);
      if (lp > best_lp) {
        best_lp = lp;
        best = static_cast<int>(c);
      }
    }
    model.assignment[j] = best;
    cl += best_lp;
  }
  model.classification_log_likelihood = cl;
  return model;
}

/// Triangle-inequality bounded CEM (DESIGN.md section 14): identical
/// control flow and arithmetic to EmClusterOnce — same rng stream, same
/// iterate sequence, same final Clustering bit for bit — but assignment
/// scans go through BoundedAssigner instead of a full matrix refresh, and
/// the mixture log-likelihood is deferred to one exact matrix after the
/// loop (the per-iteration soft posteriors feed nothing else in CEM, and
/// the reported value is the last iteration's).
Clustering EmClusterOnceBounded(const std::vector<dist::Sequence>& data,
                                size_t k,
                                const dist::SequenceDistance& distance,
                                const ClusterParams& params,
                                ClusterStats* stats) {
  const size_t m = data.size();
  if (m == 0 || k == 0) throw std::invalid_argument("EmCluster: empty input");
  k = std::min(k, m);

  Clustering model;
  Rng rng(params.seed);
  for (size_t idx : SeedCentroidIndices(data, k, distance, &rng,
                                        std::max<size_t>(4 * k, 512), stats)) {
    model.centroids.push_back(data[idx]);
  }
  model.weights.assign(k, 1.0 / static_cast<double>(k));

  BoundedAssigner assigner(data, distance, /*use_bounds=*/true);
  assigner.SetCentroids(model.centroids, stats);

  // Init: nearest seed per item through the (cold) running-tau scan, which
  // returns the exact winner distance — DeriveInitModel sees the same
  // doubles the matrix argmin feeds it.
  std::vector<size_t> init_assign(m, 0);
  std::vector<double> init_d(m, 0.0);
  for (size_t j = 0; j < m; ++j) {
    auto n = assigner.NearestCentroid(j, /*need_exact=*/true, stats);
    init_assign[j] = n.index;
    init_d[j] = n.distance;
  }
  double init_sigma =
      DeriveInitModel(data, k, params, init_assign, init_d, &model);
  assigner.SetCentroids(model.centroids, stats);

  std::vector<size_t> hard(m, 0);
  std::vector<double> win_d(m, 0.0);
  std::vector<double> snap_weights;
  std::vector<double> snap_sigmas;
  std::vector<dist::Sequence> snap_centroids;
  bool have_snapshot = false;

  for (int iter = 0; iter < params.max_iterations; ++iter) {
    model.iterations = iter + 1;
    // Snapshot the mixture entering this iteration for the deferred
    // log-likelihood: the E-step of the exhaustive path evaluates Equation
    // 4 against exactly these weights/sigmas/centroids.
    snap_weights = model.weights;
    snap_sigmas = model.sigmas;
    snap_centroids = model.centroids;
    have_snapshot = true;

    // Classification step (uniform prior) through the bounded score scan.
    for (size_t j = 0; j < m; ++j) {
      auto s = assigner.BestScoringComponent(j, model.sigmas, stats);
      hard[j] = s.index;
      win_d[j] = s.distance;
    }

    // M-step (Equation 6). The exhaustive path folds col[j] * d^2 over
    // every item, but col[j] is exactly 0.0 or 1.0 and adding 0.0 * x ==
    // +0.0 to a nonnegative accumulator is a bitwise no-op, so members-only
    // accumulation over the exact winner distances produces the same
    // doubles in the same order.
    std::vector<double> new_weights(k, 0.0);
    bool converged = true;
    for (size_t c = 0; c < k; ++c) {
      double hs = 0.0, hd2 = 0.0;
      std::vector<double> col(m);
      for (size_t j = 0; j < m; ++j) {
        col[j] = hard[j] == c ? 1.0 : 0.0;
        hs += col[j];
        if (col[j] != 0.0) hd2 += col[j] * win_d[j] * win_d[j];
      }
      new_weights[c] = hs / static_cast<double>(m);
      if (hs > 1e-12) {
        model.centroids[c] = WeightedCentroid(data, col);
        model.sigmas[c] = std::max(params.min_sigma, std::sqrt(hd2 / hs));
      } else {
        model.centroids[c] = data[rng.Index(m)];
        model.sigmas[c] = init_sigma;
        new_weights[c] = 1.0 / static_cast<double>(m);
        ++stats->reseeds;
      }
      if (std::fabs(new_weights[c] - model.weights[c]) >
          params.convergence_tol) {
        converged = false;
      }
    }
    model.weights = new_weights;
    // Drift update replaces the full matrix refresh. Dead-component
    // reseeds ride along: the triangle inequality bounds the change in
    // d(j, c) by the centroid's displacement regardless of how far it
    // jumped.
    assigner.SetCentroids(model.centroids, stats);

    // Anti-collapse guard — same pair order and exact separations as the
    // exhaustive path, so the same reseeds fire on the same iterations.
    bool reseeded = false;
    for (size_t c1 = 0; c1 < k && !reseeded; ++c1) {
      for (size_t c2 = c1 + 1; c2 < k; ++c2) {
        double sep = assigner.CentroidDistance(c1, c2, stats);
        double scale = std::min(model.sigmas[c1], model.sigmas[c2]);
        if (sep >= std::max(params.min_sigma, 0.2 * scale)) continue;
        size_t weak = model.weights[c1] <= model.weights[c2] ? c1 : c2;
        size_t far_j = 0;
        double far_d = -1.0;
        for (size_t j = 0; j < m; ++j) {
          double nearest = assigner.NearestDistance(j, stats);
          if (nearest > far_d) {
            far_d = nearest;
            far_j = j;
          }
        }
        model.centroids[weak] = data[far_j];
        model.sigmas[weak] =
            std::max(params.min_sigma, 0.5 * model.sigmas[weak]);
        model.weights[weak] = 1.0 / static_cast<double>(k);
        double sum = 0.0;
        for (double w : model.weights) sum += w;
        for (double& w : model.weights) w /= sum;
        // The reseed target is arbitrary, so the reseeded centroid's
        // bounds are invalidated rather than drift-updated.
        assigner.ReplaceCentroid(weak, model.centroids[weak], stats);
        ++stats->reseeds;
        reseeded = true;
        break;
      }
    }
    if (reseeded) converged = false;
    if (converged) break;
  }

  // Deferred mixture log-likelihood (Equation 4) of the last iteration.
  if (have_snapshot) {
    std::vector<std::vector<double>> dll;
    assigner.ExactMatrix(snap_centroids, params.pool, &dll, stats);
    std::vector<double> log_p(k);
    std::vector<double> h;
    double ll = 0.0;
    for (size_t j = 0; j < m; ++j) {
      for (size_t c = 0; c < k; ++c) {
        log_p[c] =
            LogComponentDensity(snap_weights[c], snap_sigmas[c], dll[j][c]);
      }
      ll += PosteriorRow(log_p, &h);
    }
    model.log_likelihood = ll;
  }

  // Final assignment by maximum posterior (Equation 7).
  model.assignment.resize(m);
  double cl = 0.0;
  for (size_t j = 0; j < m; ++j) {
    auto s = assigner.BestScoringComponent(j, model.sigmas, stats);
    model.assignment[j] = static_cast<int>(s.index);
    cl += s.score;
  }
  model.classification_log_likelihood = cl;
  return model;
}

Clustering RunOnce(const std::vector<dist::Sequence>& data, size_t k,
                   const dist::SequenceDistance& distance,
                   const ClusterParams& params, ClusterStats* stats) {
  if (params.use_bounds && distance.IsMetric()) {
    return EmClusterOnceBounded(data, k, distance, params, stats);
  }
  return EmClusterOnce(data, k, distance, params, stats);
}

}  // namespace

Clustering EmCluster(const std::vector<dist::Sequence>& data, size_t k,
                     const dist::SequenceDistance& distance,
                     const ClusterParams& params) {
  int restarts = std::max(1, params.restarts);
  if (params.pool != nullptr && restarts > 1 && !data.empty() && k > 0) {
    // Restarts are independent fits, so they fan out over the pool. Each
    // restart runs with pool = nullptr inside: ParallelFor blocks the
    // calling worker, so a nested ParallelFor from inside a restart would
    // deadlock the pool — restart-level parallelism replaces the
    // matrix-level parallelism of the serial path. Counters accumulate into
    // per-restart locals and merge in restart order, so the totals are
    // deterministic and params.stats is never touched concurrently.
    std::vector<Clustering> models(static_cast<size_t>(restarts));
    std::vector<ClusterStats> restart_stats(static_cast<size_t>(restarts));
    params.pool->ParallelFor(
        0, static_cast<size_t>(restarts), [&](size_t r) {
          ClusterParams p = params;
          p.pool = nullptr;
          p.stats = nullptr;
          p.seed = params.seed + 0x9E3779B9ull * static_cast<uint64_t>(r);
          models[r] = RunOnce(data, k, distance, p, &restart_stats[r]);
        });
    if (params.stats != nullptr) {
      for (const ClusterStats& s : restart_stats) params.stats->Merge(s);
    }
    // Serial reduction in restart order (strict >): same winner as the
    // serial loop, so the build is deterministic with or without a pool.
    Clustering best = std::move(models[0]);
    for (size_t r = 1; r < models.size(); ++r) {
      if (models[r].classification_log_likelihood >
          best.classification_log_likelihood) {
        best = std::move(models[r]);
      }
    }
    return best;
  }
  Clustering best;
  ClusterStats local;
  for (int r = 0; r < restarts; ++r) {
    ClusterParams p = params;
    p.stats = nullptr;
    p.seed = params.seed + 0x9E3779B9ull * static_cast<uint64_t>(r);
    Clustering model = RunOnce(data, k, distance, p, &local);
    if (r == 0 || model.classification_log_likelihood >
                      best.classification_log_likelihood) {
      best = std::move(model);
    }
  }
  if (params.stats != nullptr) params.stats->Merge(local);
  return best;
}

double EmLogLikelihood(const std::vector<dist::Sequence>& data,
                       const Clustering& model,
                       const dist::SequenceDistance& distance) {
  const size_t k = model.centroids.size();
  std::vector<double> log_p(k);
  std::vector<double> scratch;
  double ll = 0.0;
  for (const dist::Sequence& y : data) {
    for (size_t c = 0; c < k; ++c) {
      log_p[c] = LogComponentDensity(model.weights[c], model.sigmas[c],
                                     distance(y, model.centroids[c]));
    }
    ll += PosteriorRow(log_p, &scratch);
  }
  return ll;
}

}  // namespace strg::cluster
