#ifndef STRG_CLUSTER_EM_H_
#define STRG_CLUSTER_EM_H_

#include "cluster/clustering.h"

namespace strg::cluster {

/// Expectation-Maximization clustering of OGs (Section 4).
///
/// Implements the paper's one-dimensional Gaussian mixture over a sequence
/// distance (Equation 3): component k has weight w_k, centroid OG mu_k, and
/// scalar sigma_k, with density
///   p_k(Y_j) = 1/(sqrt(2 pi) sigma_k) exp(-d(Y_j, mu_k)^2 / (2 sigma_k^2)).
/// Replacing the Mahalanobis distance with EGED removes the covariance
/// matrix, so one E+M iteration costs O(K M) distance computations — the
/// complexity claim of Section 4.1 (verified by bench_ablation_complexity).
///
/// `distance` is typically the non-metric EGED, but any SequenceDistance
/// works — Figure 5 swaps in DTW and LCS here.
Clustering EmCluster(const std::vector<dist::Sequence>& data, size_t k,
                     const dist::SequenceDistance& distance,
                     const ClusterParams& params = {});

/// Log-likelihood of data under a fitted model (Equation 4); exposed for
/// BIC (Equation 8) and the index's split test.
double EmLogLikelihood(const std::vector<dist::Sequence>& data,
                       const Clustering& model,
                       const dist::SequenceDistance& distance);

}  // namespace strg::cluster

#endif  // STRG_CLUSTER_EM_H_
