#include "cluster/khm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "cluster/centroid.h"
#include "cluster/seeding.h"
#include "util/random.h"

namespace strg::cluster {

Clustering KhmCluster(const std::vector<dist::Sequence>& data, size_t k,
                      const dist::SequenceDistance& distance,
                      const ClusterParams& params, double p) {
  const size_t m = data.size();
  if (m == 0 || k == 0) throw std::invalid_argument("KhmCluster: empty input");
  k = std::min(k, m);

  Clustering model;
  Rng rng(params.seed);
  for (size_t idx : SeedCentroidIndices(data, k, distance, &rng,
                                        std::max<size_t>(4 * k, 512))) {
    model.centroids.push_back(data[idx]);
  }

  const double kEps = 1e-8;
  std::vector<std::vector<double>> d(m, std::vector<double>(k, 0.0));

  for (int iter = 0; iter < params.max_iterations; ++iter) {
    model.iterations = iter + 1;
    for (size_t j = 0; j < m; ++j) {
      for (size_t c = 0; c < k; ++c) {
        d[j][c] = std::max(kEps, distance(data[j], model.centroids[c]));
      }
    }

    // Soft membership m(c|x_j) ∝ d_jc^{-p-2}, point weight
    // w(x_j) = sum d^{-p-2} / (sum d^{-p})^2  (Hamerly & Elkan).
    double shift = 0.0;
    for (size_t c = 0; c < k; ++c) {
      std::vector<double> w(m, 0.0);
      for (size_t j = 0; j < m; ++j) {
        double denom_m = 0.0, denom_w = 0.0;
        for (size_t cc = 0; cc < k; ++cc) {
          denom_m += std::pow(d[j][cc], -p - 2.0);
          denom_w += std::pow(d[j][cc], -p);
        }
        double membership = std::pow(d[j][c], -p - 2.0) / denom_m;
        double weight = denom_m / (denom_w * denom_w);
        w[j] = membership * weight;
      }
      dist::Sequence updated = WeightedCentroid(data, w);
      shift += distance(model.centroids[c], updated);
      model.centroids[c] = updated;
    }
    if (shift / static_cast<double>(k) < params.convergence_tol) break;
  }

  // Hard assignment for evaluation.
  model.assignment.resize(m);
  for (size_t j = 0; j < m; ++j) {
    int best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      double dd = distance(data[j], model.centroids[c]);
      if (dd < best_d) {
        best_d = dd;
        best = static_cast<int>(c);
      }
    }
    model.assignment[j] = best;
  }
  return model;
}

}  // namespace strg::cluster
