#include "cluster/khm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "cluster/bounds.h"
#include "cluster/centroid.h"
#include "cluster/seeding.h"
#include "util/random.h"

namespace strg::cluster {

Clustering KhmCluster(const std::vector<dist::Sequence>& data, size_t k,
                      const dist::SequenceDistance& distance,
                      const ClusterParams& params, double p) {
  const size_t m = data.size();
  if (m == 0 || k == 0) throw std::invalid_argument("KhmCluster: empty input");
  k = std::min(k, m);

  Clustering model;
  ClusterStats local;
  Rng rng(params.seed);
  for (size_t idx : SeedCentroidIndices(data, k, distance, &rng,
                                        std::max<size_t>(4 * k, 512),
                                        &local)) {
    model.centroids.push_back(data[idx]);
  }

  // KHM's soft memberships weight EVERY centroid per item (d^{-p-2} terms),
  // so triangle-inequality pruning has nothing to skip; the win here is the
  // batched exact matrix — one-vs-many flat kernels when the metric EGED is
  // in play, scalar calls otherwise (bitwise identical values either way).
  BoundedAssigner assigner(data, distance, /*use_bounds=*/false);

  const double kEps = 1e-8;
  std::vector<std::vector<double>> raw;
  std::vector<std::vector<double>> d(m, std::vector<double>(k, 0.0));

  for (int iter = 0; iter < params.max_iterations; ++iter) {
    model.iterations = iter + 1;
    assigner.ExactMatrix(model.centroids, params.pool, &raw, &local);
    for (size_t j = 0; j < m; ++j) {
      for (size_t c = 0; c < k; ++c) {
        d[j][c] = std::max(kEps, raw[j][c]);
      }
    }

    // Soft membership m(c|x_j) ∝ d_jc^{-p-2}, point weight
    // w(x_j) = sum d^{-p-2} / (sum d^{-p})^2  (Hamerly & Elkan).
    double shift = 0.0;
    for (size_t c = 0; c < k; ++c) {
      std::vector<double> w(m, 0.0);
      for (size_t j = 0; j < m; ++j) {
        double denom_m = 0.0, denom_w = 0.0;
        for (size_t cc = 0; cc < k; ++cc) {
          denom_m += std::pow(d[j][cc], -p - 2.0);
          denom_w += std::pow(d[j][cc], -p);
        }
        double membership = std::pow(d[j][c], -p - 2.0) / denom_m;
        double weight = denom_m / (denom_w * denom_w);
        w[j] = membership * weight;
      }
      dist::Sequence updated = WeightedCentroid(data, w);
      ++local.drift_distances;
      shift += distance(model.centroids[c], updated);
      model.centroids[c] = updated;
    }
    if (shift / static_cast<double>(k) < params.convergence_tol) break;
  }

  // Hard assignment for evaluation: running-tau scan (exact for the winner
  // by the Bounded contract, same lowest-index argmin as the exhaustive
  // loop).
  assigner.SetCentroids(model.centroids, &local);
  model.assignment.resize(m);
  for (size_t j = 0; j < m; ++j) {
    model.assignment[j] = static_cast<int>(
        assigner.NearestCentroid(j, /*need_exact=*/true, &local).index);
  }
  if (params.stats != nullptr) params.stats->Merge(local);
  return model;
}

}  // namespace strg::cluster
