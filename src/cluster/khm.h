#ifndef STRG_CLUSTER_KHM_H_
#define STRG_CLUSTER_KHM_H_

#include "cluster/clustering.h"

namespace strg::cluster {

/// K-Harmonic-Means [12] — the "KHM" baseline in Figures 5 and 6.
///
/// Minimizes the harmonic average of the K distances per point; its soft
/// membership m(c|x) ∝ d^{-p-2} and per-point weight make it insensitive to
/// centroid initialization. `p` is the harmonic exponent (p > 2; Hamerly &
/// Elkan recommend ~3.5).
Clustering KhmCluster(const std::vector<dist::Sequence>& data, size_t k,
                      const dist::SequenceDistance& distance,
                      const ClusterParams& params = {}, double p = 3.5);

}  // namespace strg::cluster

#endif  // STRG_CLUSTER_KHM_H_
