#include "cluster/kmeans.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "cluster/bounds.h"
#include "cluster/centroid.h"
#include "cluster/seeding.h"
#include "util/random.h"

namespace strg::cluster {

Clustering KMeansCluster(const std::vector<dist::Sequence>& data, size_t k,
                         const dist::SequenceDistance& distance,
                         const ClusterParams& params) {
  const size_t m = data.size();
  if (m == 0 || k == 0) {
    throw std::invalid_argument("KMeansCluster: empty input");
  }
  k = std::min(k, m);

  Clustering model;
  ClusterStats local;
  Rng rng(params.seed);
  for (size_t idx : SeedCentroidIndices(data, k, distance, &rng,
                                        std::max<size_t>(4 * k, 512),
                                        &local)) {
    model.centroids.push_back(data[idx]);
  }
  model.assignment.assign(m, -1);

  const bool use_bounds = params.use_bounds && distance.IsMetric();
  BoundedAssigner assigner(data, distance, use_bounds);
  if (use_bounds) assigner.SetCentroids(model.centroids, &local);

  for (int iter = 0; iter < params.max_iterations; ++iter) {
    model.iterations = iter + 1;

    // Assignment step: Elkan/Hamerly-bounded scan when the metric admits
    // it, exhaustive strict-< scan otherwise — the winner index is
    // identical either way (cluster_bounds_test pins the equivalence).
    bool changed = false;
    for (size_t j = 0; j < m; ++j) {
      int best;
      if (use_bounds) {
        best = static_cast<int>(
            assigner.NearestCentroid(j, /*need_exact=*/false, &local).index);
      } else {
        best = 0;
        double best_d = std::numeric_limits<double>::infinity();
        for (size_t c = 0; c < k; ++c) {
          ++local.assign_distances;
          double d = distance(data[j], model.centroids[c]);
          if (d < best_d) {
            best_d = d;
            best = static_cast<int>(c);
          }
        }
      }
      if (model.assignment[j] != best) {
        model.assignment[j] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    // Update step.
    for (size_t c = 0; c < k; ++c) {
      std::vector<double> w(m, 0.0);
      size_t members = 0;
      for (size_t j = 0; j < m; ++j) {
        if (model.assignment[j] == static_cast<int>(c)) {
          w[j] = 1.0;
          ++members;
        }
      }
      if (members == 0) {
        model.centroids[c] = data[rng.Index(m)];  // reseed empty cluster
        ++local.reseeds;
      } else {
        model.centroids[c] = WeightedCentroid(data, w);
      }
    }
    // Drift-update the bounds for the moved (or reseeded — any
    // displacement obeys the triangle inequality) centroids.
    if (use_bounds) assigner.SetCentroids(model.centroids, &local);
  }
  if (params.stats != nullptr) params.stats->Merge(local);
  return model;
}

}  // namespace strg::cluster
