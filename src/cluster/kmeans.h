#ifndef STRG_CLUSTER_KMEANS_H_
#define STRG_CLUSTER_KMEANS_H_

#include "cluster/clustering.h"

namespace strg::cluster {

/// K-Means (Lloyd's algorithm) over OG sequences — the "KM" baseline in
/// Figures 5 and 6. Hard assignment to the nearest centroid under the given
/// distance, centroid resynthesis via the shared weighted-average rule.
Clustering KMeansCluster(const std::vector<dist::Sequence>& data, size_t k,
                         const dist::SequenceDistance& distance,
                         const ClusterParams& params = {});

}  // namespace strg::cluster

#endif  // STRG_CLUSTER_KMEANS_H_
