#include "cluster/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/hungarian.h"

namespace strg::cluster {

double ClusteringErrorRate(const std::vector<int>& predicted,
                           const std::vector<int>& truth) {
  if (predicted.size() != truth.size() || predicted.empty()) {
    throw std::invalid_argument("ClusteringErrorRate: size mismatch");
  }
  int max_pred = *std::max_element(predicted.begin(), predicted.end());
  int max_true = *std::max_element(truth.begin(), truth.end());
  size_t np = static_cast<size_t>(max_pred) + 1;
  size_t nt = static_cast<size_t>(max_true) + 1;

  // Confusion counts, negated so the min-cost assignment maximizes
  // agreement.
  std::vector<std::vector<double>> cost(np, std::vector<double>(nt, 0.0));
  for (size_t j = 0; j < predicted.size(); ++j) {
    cost[static_cast<size_t>(predicted[j])][static_cast<size_t>(truth[j])] -=
        1.0;
  }
  std::vector<int> match = SolveAssignment(cost);

  size_t correct = 0;
  for (size_t j = 0; j < predicted.size(); ++j) {
    int mapped = match[static_cast<size_t>(predicted[j])];
    if (mapped == truth[j]) ++correct;
  }
  return (1.0 - static_cast<double>(correct) /
                    static_cast<double>(predicted.size())) *
         100.0;
}

double Distortion(const std::vector<dist::Sequence>& detected,
                  const std::vector<dist::Sequence>& truth,
                  const dist::SequenceDistance& distance,
                  double pixels_per_unit) {
  if (detected.empty() || truth.empty()) {
    throw std::invalid_argument("Distortion: empty input");
  }
  std::vector<std::vector<double>> cost(
      detected.size(), std::vector<double>(truth.size(), 0.0));
  for (size_t i = 0; i < detected.size(); ++i) {
    for (size_t j = 0; j < truth.size(); ++j) {
      cost[i][j] = distance(detected[i], truth[j]);
    }
  }
  std::vector<int> match = SolveAssignment(cost);

  double total = 0.0;
  for (size_t i = 0; i < detected.size(); ++i) {
    if (match[i] < 0) continue;
    const dist::Sequence& t = truth[static_cast<size_t>(match[i])];
    // Mean pointwise gap after resampling to the truth length.
    dist::Sequence r = dist::Resample(detected[i], t.size());
    double acc = 0.0;
    for (size_t p = 0; p < t.size(); ++p) {
      acc += dist::PointDistance(r[p], t[p]);
    }
    total += pixels_per_unit * acc / static_cast<double>(t.size());
  }
  return total;
}

}  // namespace strg::cluster
