#ifndef STRG_CLUSTER_METRICS_H_
#define STRG_CLUSTER_METRICS_H_

#include <vector>

#include "cluster/clustering.h"

namespace strg::cluster {

/// Clustering Error Rate (Equation 11):
///   (1 - correctly_clustered / total) * 100.
///
/// Predicted cluster ids are first matched one-to-one to ground-truth
/// labels by maximizing agreement (Hungarian assignment on the confusion
/// matrix); an OG is "correctly clustered" when its predicted cluster maps
/// to its true label.
double ClusteringErrorRate(const std::vector<int>& predicted,
                           const std::vector<int>& truth);

/// Distortion (Figure 6c): the sum of distances, in pixels, between each
/// detected centroid and its matched true centroid. Centroids are matched
/// by Hungarian assignment on the given distance; the per-pair distance is
/// the mean pointwise gap after resampling to a common length, converted
/// from feature scale to pixels with `pixels_per_unit`.
double Distortion(const std::vector<dist::Sequence>& detected,
                  const std::vector<dist::Sequence>& truth,
                  const dist::SequenceDistance& distance,
                  double pixels_per_unit);

}  // namespace strg::cluster

#endif  // STRG_CLUSTER_METRICS_H_
