#include "cluster/seeding.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "distance/eged.h"

namespace strg::cluster {

std::vector<size_t> SeedCentroidIndices(
    const std::vector<dist::Sequence>& data, size_t k,
    const dist::SequenceDistance& distance, Rng* rng, size_t sample_cap,
    ClusterStats* stats) {
  const size_t m = data.size();
  if (k == 0 || m == 0) {
    throw std::invalid_argument("SeedCentroidIndices: empty input");
  }
  k = std::min(k, m);

  if (sample_cap > 0 && m > sample_cap && sample_cap >= k) {
    // Seed on a uniform sample, then translate back to full-set indices.
    std::vector<size_t> sample_idx = rng->SampleIndices(m, sample_cap);
    std::vector<dist::Sequence> sample;
    sample.reserve(sample_cap);
    for (size_t idx : sample_idx) sample.push_back(data[idx]);
    std::vector<size_t> local =
        SeedCentroidIndices(sample, k, distance, rng, 0, stats);
    std::vector<size_t> out;
    out.reserve(local.size());
    for (size_t l : local) out.push_back(sample_idx[l]);
    return out;
  }

  std::vector<size_t> seeds;
  seeds.reserve(k);
  seeds.push_back(rng->Index(m));

  // Bare metric-EGED fast path: flatten every item once and run the D^2
  // updates on cached flat forms (EgedMetricBounded over the same operands
  // is bitwise identical to distance.Bounded, which flattens per call).
  const auto* eged = dynamic_cast<const dist::EgedMetricDistance*>(&distance);
  std::vector<dist::FlatSequence> flats;
  if (eged != nullptr && k > 1) {
    flats.resize(m);
    for (size_t j = 0; j < m; ++j) flats[j].Assign(data[j], eged->gap());
  }

  std::vector<double> best_sq(m, std::numeric_limits<double>::infinity());
  while (seeds.size() < k) {
    // Update nearest-seed distances with the most recent seed only. The
    // current nearest distance bounds the evaluation: whenever the new seed
    // is farther than sqrt(best_sq[j]), Bounded may stop early and return
    // any v with tau < v <= d — then v*v > best_sq[j] and the min keeps the
    // old value, so the D^2 weights stay exact.
    const dist::Sequence& last = data[seeds.back()];
    const dist::FlatSequence* last_flat =
        flats.empty() ? nullptr : &flats[seeds.back()];
    double total = 0.0;
    for (size_t j = 0; j < m; ++j) {
      double tau = std::sqrt(best_sq[j]);
      double d = last_flat != nullptr
                     ? dist::EgedMetricBounded(flats[j], *last_flat, tau,
                                               &dist::ThreadLocalEgedWorkspace())
                     : distance.Bounded(data[j], last, tau);
      if (stats != nullptr) ++stats->seeding_distances;
      best_sq[j] = std::min(best_sq[j], d * d);
      total += best_sq[j];
    }
    if (total <= 0.0) {
      // All remaining points coincide with seeds; fill with fresh indices.
      for (size_t j = 0; j < m && seeds.size() < k; ++j) {
        if (std::find(seeds.begin(), seeds.end(), j) == seeds.end()) {
          seeds.push_back(j);
        }
      }
      break;
    }
    double r = rng->Uniform(0.0, total);
    size_t pick = m - 1;
    double acc = 0.0;
    for (size_t j = 0; j < m; ++j) {
      acc += best_sq[j];
      if (acc >= r) {
        pick = j;
        break;
      }
    }
    seeds.push_back(pick);
  }
  return seeds;
}

}  // namespace strg::cluster
