#ifndef STRG_CLUSTER_SEEDING_H_
#define STRG_CLUSTER_SEEDING_H_

#include <vector>

#include "cluster/clustering.h"
#include "distance/distance.h"
#include "util/random.h"

namespace strg::cluster {

/// k-means++ (D^2-weighted) seeding: picks k item indices, each subsequent
/// seed drawn with probability proportional to its squared distance to the
/// nearest already-chosen seed. Shared by EM / KM / KHM so all three start
/// from comparable, well-spread centroids (random seeding tends to place
/// every seed near the data's center of mass on trajectory workloads, which
/// collapses mixture models).
/// `sample_cap` (0 = no cap) bounds the seeding cost: when the data set is
/// larger, D^2 seeding runs on a uniform sample of that size — the standard
/// scalable-k-means++ shortcut; quality is preserved because seeds only
/// need to land in distinct dense regions.
/// The D^2 pass runs each update through Bounded(sqrt(best_sq)) — and, for a
/// bare metric-EGED distance, through the flat kernel on cached flat forms
/// (bitwise identical, no per-call flattening). `stats` (optional) accrues
/// one seeding_distances count per evaluation.
std::vector<size_t> SeedCentroidIndices(
    const std::vector<dist::Sequence>& data, size_t k,
    const dist::SequenceDistance& distance, Rng* rng, size_t sample_cap = 0,
    ClusterStats* stats = nullptr);

}  // namespace strg::cluster

#endif  // STRG_CLUSTER_SEEDING_H_
