#ifndef STRG_CORE_INGEST_STATS_H_
#define STRG_CORE_INGEST_STATS_H_

#include <cstdint>

namespace strg::api {

/// Counters of the frames -> object-graphs ingest pipeline. Accumulated by
/// VideoPipeline / ProcessFrames on the ingesting thread (worker timings
/// are carried back with each stage result, so no atomics are needed) and
/// surfaced through server::ServerMetrics::ToJson next to the distance
/// counters.
struct IngestStats {
  uint64_t frames_segmented = 0;   ///< segmentation + RAG builds completed
  uint64_t shots_processed = 0;    ///< shots fed through ProcessFrames
  uint64_t queue_full_stalls = 0;  ///< pushes that blocked on a full queue

  // Cumulative stage latencies (microseconds). `segment_us` sums the
  // per-frame segmentation+RAG work wherever it ran (so with a pool it can
  // exceed wall clock); `track_us` and `decompose_us` are the serial
  // tracking merge and Finish()-time decomposition.
  uint64_t segment_us = 0;
  uint64_t track_us = 0;
  uint64_t decompose_us = 0;

  IngestStats& operator+=(const IngestStats& o) {
    frames_segmented += o.frames_segmented;
    shots_processed += o.shots_processed;
    queue_full_stalls += o.queue_full_stalls;
    segment_us += o.segment_us;
    track_us += o.track_us;
    decompose_us += o.decompose_us;
    return *this;
  }
};

}  // namespace strg::api

#endif  // STRG_CORE_INGEST_STATS_H_
