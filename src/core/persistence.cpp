#include "core/persistence.h"

namespace strg::api {

storage::CatalogSegment ToCatalogSegment(const std::string& video_name,
                                         const SegmentResult& segment) {
  storage::CatalogSegment out;
  out.video_name = video_name;
  out.frame_width = segment.frame_width;
  out.frame_height = segment.frame_height;
  out.num_frames = segment.num_frames;
  out.background = segment.decomposition.background;
  out.ogs = segment.decomposition.object_graphs;
  return out;
}

VideoDatabase RestoreVideoDatabase(const storage::Catalog& catalog,
                                   const index::StrgIndexParams& params) {
  return VideoDatabase(catalog, params);
}

}  // namespace strg::api
