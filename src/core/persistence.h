#ifndef STRG_CORE_PERSISTENCE_H_
#define STRG_CORE_PERSISTENCE_H_

#include <string>

#include "core/pipeline.h"
#include "core/video_database.h"
#include "storage/catalog.h"

namespace strg::api {

/// Converts a processed segment into its durable catalog form.
storage::CatalogSegment ToCatalogSegment(const std::string& video_name,
                                         const SegmentResult& segment);

/// Rebuilds a VideoDatabase from a catalog: every stored segment is
/// re-registered (and re-clustered — the index build is deterministic for
/// fixed parameters, so reloads reproduce the same index).
VideoDatabase RestoreVideoDatabase(const storage::Catalog& catalog,
                                   const index::StrgIndexParams& params = {});

}  // namespace strg::api

#endif  // STRG_CORE_PERSISTENCE_H_
