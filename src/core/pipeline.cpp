#include "core/pipeline.h"

#include <chrono>
#include <utility>

#include "graph/rag.h"

namespace strg::api {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   Clock::now() - start)
                                   .count());
}

dist::FeatureScaling DeriveScaling(int frame_width, int frame_height) {
  dist::FeatureScaling s;
  s.frame_width = frame_width > 0 ? frame_width : 1;
  s.frame_height = frame_height > 0 ? frame_height : 1;
  return s;
}

}  // namespace

VideoPipeline::VideoPipeline(PipelineParams params)
    : params_(params), strg_(params.tracking) {}

int VideoPipeline::PushFrame(const video::Frame& frame) {
  if (width_ == 0 && height_ == 0) {
    // Frame geometry is cached once; every later Finish() snapshot reuses
    // it instead of re-deriving scaling from the latest frame.
    width_ = frame.width();
    height_ = frame.height();
  }
  const int index = push_count_++;

  if (params_.pool == nullptr) {
    if (!workspace_) {
      workspace_ = std::make_unique<segment::SegmenterWorkspace>();
    }
    auto t0 = Clock::now();
    segment::SegmentFrameInto(frame, params_.segmenter, workspace_.get(),
                              &scratch_seg_);
    graph::Rag rag = graph::BuildRag(scratch_seg_);
    stats_.segment_us += MicrosSince(t0);
    auto t1 = Clock::now();
    strg_.AppendFrame(std::move(rag));
    stats_.track_us += MicrosSince(t1);
    ++stats_.frames_segmented;
    return index;
  }

  if (!stage_) {
    const size_t capacity = params_.queue_capacity != 0
                                ? params_.queue_capacity
                                : 2 * params_.pool->NumThreads();
    stage_ = std::make_unique<OrderedStage<StageOut>>(
        params_.pool, capacity,
        [this](StageOut&& out) { AppendStageOut(std::move(out)); });
  }
  // The frame is copied into the task: callers may hand us transient
  // render buffers. Each worker thread keeps one warmed-up workspace.
  stage_->Submit(
      [frame_copy = frame, seg_params = params_.segmenter]() -> StageOut {
        thread_local segment::SegmenterWorkspace tls_workspace;
        thread_local segment::Segmentation tls_segmentation;
        auto t0 = Clock::now();
        segment::SegmentFrameInto(frame_copy, seg_params, &tls_workspace,
                                  &tls_segmentation);
        StageOut out;
        out.rag = graph::BuildRag(tls_segmentation);
        out.segment_us = MicrosSince(t0);
        return out;
      });
  return index;
}

void VideoPipeline::AppendStageOut(StageOut&& out) {
  stats_.segment_us += out.segment_us;
  auto t0 = Clock::now();
  strg_.AppendFrame(std::move(out.rag));
  stats_.track_us += MicrosSince(t0);
  ++stats_.frames_segmented;
}

SegmentResult VideoPipeline::Finish() {
  if (stage_) {
    stage_->Drain();
    stats_.queue_full_stalls += stage_->stalls() - drained_stalls_;
    drained_stalls_ = stage_->stalls();
  }
  SegmentResult result;
  result.num_frames = strg_.NumFrames();
  result.frame_width = width_;
  result.frame_height = height_;
  result.cached_scaling = DeriveScaling(width_, height_);
  result.has_cached_scaling = true;
  auto t0 = Clock::now();
  result.decomposition = core::Decompose(strg_, params_.decompose);
  stats_.decompose_us += MicrosSince(t0);
  result.strg_size_bytes = strg_.SizeBytes();
  return result;
}

dist::FeatureScaling SegmentResult::Scaling() const {
  if (has_cached_scaling) return cached_scaling;
  return DeriveScaling(frame_width, frame_height);
}

std::vector<dist::Sequence> SegmentResult::ObjectSequences() const {
  std::vector<dist::Sequence> out;
  const dist::FeatureScaling s = Scaling();
  out.reserve(decomposition.object_graphs.size());
  for (const core::Og& og : decomposition.object_graphs) {
    out.push_back(dist::OgToSequence(og, s));
  }
  return out;
}

SegmentResult ProcessScene(const video::SceneSpec& scene,
                           const PipelineParams& params) {
  VideoPipeline pipeline(params);
  for (int t = 0; t < scene.num_frames; ++t) {
    pipeline.PushFrame(video::RenderFrame(scene, t));
  }
  return pipeline.Finish();
}

std::vector<SegmentResult> ProcessFrames(
    const std::vector<video::Frame>& frames, const PipelineParams& params,
    const segment::ShotDetectorParams& shot_params, IngestStats* stats) {
  const auto shots = segment::DetectShots(frames, shot_params);
  std::vector<SegmentResult> results(shots.size());
  std::vector<IngestStats> shot_stats(shots.size());

  // Shots are independent after detection. With enough of them to occupy
  // the pool, each shot's whole back half (tracking + decomposition) runs
  // concurrently with serial insides; with few shots, they run in sequence
  // and the per-frame stage provides the parallelism instead. Results are
  // written by shot index, so stream order — and content — never depends
  // on the schedule.
  const bool shot_parallel = params.pool != nullptr && shots.size() > 1 &&
                             shots.size() >= params.pool->NumThreads();
  auto run_shot = [&](const PipelineParams& shot_params_in, size_t i) {
    VideoPipeline pipeline(shot_params_in);
    for (int t = shots[i].first; t < shots[i].second; ++t) {
      pipeline.PushFrame(frames[static_cast<size_t>(t)]);
    }
    results[i] = pipeline.Finish();
    shot_stats[i] = pipeline.stats();
  };

  if (shot_parallel) {
    PipelineParams inner = params;
    inner.pool = nullptr;
    params.pool->ParallelFor(0, shots.size(),
                             [&](size_t i) { run_shot(inner, i); });
  } else {
    for (size_t i = 0; i < shots.size(); ++i) run_shot(params, i);
  }

  if (stats != nullptr) {
    for (const IngestStats& s : shot_stats) *stats += s;
    stats->shots_processed += shots.size();
  }
  return results;
}

}  // namespace strg::api
