#include "core/pipeline.h"

#include "graph/rag.h"

namespace strg::api {

VideoPipeline::VideoPipeline(PipelineParams params)
    : params_(params), strg_(params.tracking) {}

int VideoPipeline::PushFrame(const video::Frame& frame) {
  width_ = frame.width();
  height_ = frame.height();
  segment::Segmentation seg = segment::SegmentFrame(frame, params_.segmenter);
  return strg_.AppendFrame(graph::BuildRag(seg));
}

SegmentResult VideoPipeline::Finish() const {
  SegmentResult result;
  result.num_frames = strg_.NumFrames();
  result.frame_width = width_;
  result.frame_height = height_;
  result.decomposition = core::Decompose(strg_, params_.decompose);
  result.strg_size_bytes = strg_.SizeBytes();
  return result;
}

dist::FeatureScaling SegmentResult::Scaling() const {
  dist::FeatureScaling s;
  s.frame_width = frame_width > 0 ? frame_width : 1;
  s.frame_height = frame_height > 0 ? frame_height : 1;
  return s;
}

std::vector<dist::Sequence> SegmentResult::ObjectSequences() const {
  std::vector<dist::Sequence> out;
  const dist::FeatureScaling s = Scaling();
  out.reserve(decomposition.object_graphs.size());
  for (const core::Og& og : decomposition.object_graphs) {
    out.push_back(dist::OgToSequence(og, s));
  }
  return out;
}

SegmentResult ProcessScene(const video::SceneSpec& scene,
                           const PipelineParams& params) {
  VideoPipeline pipeline(params);
  for (int t = 0; t < scene.num_frames; ++t) {
    pipeline.PushFrame(video::RenderFrame(scene, t));
  }
  return pipeline.Finish();
}

std::vector<SegmentResult> ProcessFrames(
    const std::vector<video::Frame>& frames, const PipelineParams& params,
    const segment::ShotDetectorParams& shot_params) {
  std::vector<SegmentResult> results;
  for (auto [start, end] : segment::DetectShots(frames, shot_params)) {
    VideoPipeline pipeline(params);
    for (int t = start; t < end; ++t) {
      pipeline.PushFrame(frames[static_cast<size_t>(t)]);
    }
    results.push_back(pipeline.Finish());
  }
  return results;
}

}  // namespace strg::api
