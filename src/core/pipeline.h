#ifndef STRG_CORE_PIPELINE_H_
#define STRG_CORE_PIPELINE_H_

#include <memory>
#include <vector>

#include "core/ingest_stats.h"
#include "distance/sequence.h"
#include "segment/segmenter.h"
#include "segment/shot_detector.h"
#include "segment/workspace.h"
#include "strg/decompose.h"
#include "strg/strg.h"
#include "util/ordered_stage.h"
#include "util/thread_pool.h"
#include "video/renderer.h"
#include "video/scene.h"

namespace strg::api {

/// End-to-end pipeline configuration: segmentation -> RAG -> tracking ->
/// decomposition (Sections 2.1-2.3).
struct PipelineParams {
  segment::SegmenterParams segmenter;
  core::TrackingParams tracking;
  core::DecomposeParams decompose;

  /// Optional worker pool (not owned). When set, the per-frame stage
  /// (segmentation + RAG construction) fans out over the pool behind a
  /// bounded queue and is merged back in frame order, so the
  /// order-dependent tracking step (Algorithm 1) sees RAGs exactly as the
  /// serial path would — results are bit-identical either way (tested).
  /// ProcessFrames additionally processes whole shots concurrently when
  /// the stream has enough of them. Null = the serial path.
  ThreadPool* pool = nullptr;

  /// Max frames in flight in the pooled stage (submitted, not yet merged).
  /// 0 = 2x the pool's thread count. A full queue stalls PushFrame until
  /// the oldest frame finishes (counted in IngestStats::queue_full_stalls).
  size_t queue_capacity = 0;
};

/// Everything extracted from one video segment.
struct SegmentResult {
  size_t num_frames = 0;
  int frame_width = 0;
  int frame_height = 0;
  core::Decomposition decomposition;  ///< OGs + compressed BG
  size_t strg_size_bytes = 0;         ///< raw STRG footprint (Eq. 9 input)

  /// Scaling stamped by VideoPipeline::Finish() from the pipeline's cached
  /// frame geometry (set once, on the first frame). Hand-built results
  /// (catalog reconstitution) leave this unset and derive on demand.
  dist::FeatureScaling cached_scaling{};
  bool has_cached_scaling = false;

  /// Feature scaling matched to this segment's frame geometry.
  dist::FeatureScaling Scaling() const;

  /// Feature-sequence views of the extracted object graphs.
  std::vector<dist::Sequence> ObjectSequences() const;
};

/// Streaming STRG construction: push frames as they arrive, then Finish()
/// to decompose. This is the paper's front half — from raw frames to the
/// indexed artifacts (OGs and one BG).
///
/// With PipelineParams::pool set, PushFrame enqueues the frame for the
/// pooled segmentation stage and returns immediately (its index is
/// assigned up front); tracking lags behind and is caught up by the
/// in-order merge during later pushes and Finish(). Without a pool every
/// push runs the full front half inline. Both modes produce bit-identical
/// results.
///
/// Concurrency: single-owner, like the OrderedStage it builds on — one
/// thread calls PushFrame/Finish, and the only shared state is inside the
/// ThreadPool/OrderedStage machinery, whose locking the static-analysis
/// layer proves. No field here needs STRG_GUARDED_BY.
class VideoPipeline {
 public:
  explicit VideoPipeline(PipelineParams params = {});

  /// Segments the frame, builds its RAG, and extends the STRG's temporal
  /// edges (Algorithm 1). Returns the frame index.
  int PushFrame(const video::Frame& frame);

  /// Decomposes the accumulated STRG (Section 2.3) and returns the result,
  /// draining any frames still in the pooled stage first. The pipeline can
  /// keep receiving frames afterwards; Finish() may be called repeatedly
  /// to snapshot mid-stream.
  SegmentResult Finish();

  const core::Strg& strg() const { return strg_; }

  /// Ingest counters accumulated so far (stalls are folded in lazily on
  /// Finish(); mid-stream reads may lag by the in-flight queue).
  const IngestStats& stats() const { return stats_; }

 private:
  struct StageOut {
    graph::Rag rag;
    uint64_t segment_us = 0;
  };

  void AppendStageOut(StageOut&& out);

  PipelineParams params_;
  core::Strg strg_;
  int width_ = 0;   ///< cached frame geometry, set by the first frame
  int height_ = 0;
  int push_count_ = 0;
  IngestStats stats_;
  uint64_t drained_stalls_ = 0;
  segment::Segmentation scratch_seg_;                       ///< serial path
  std::unique_ptr<segment::SegmenterWorkspace> workspace_;  ///< serial path
  std::unique_ptr<OrderedStage<StageOut>> stage_;           ///< pooled path
};

/// Renders and processes a whole synthetic scene in one call.
SegmentResult ProcessScene(const video::SceneSpec& scene,
                           const PipelineParams& params = {});

/// Processes a frame stream that may span several shots: shot boundaries
/// are detected first (the paper's "parse a long video into meaningful
/// smaller units" issue), then each shot runs through its own pipeline and
/// yields its own SegmentResult — hence its own background graph / root
/// record when indexed.
///
/// With PipelineParams::pool set, shots are independent after detection:
/// a stream with at least as many shots as pool threads processes whole
/// shots concurrently (tracking + decomposition included, each shot's
/// pipeline serial inside); otherwise shots run in sequence with the
/// pooled per-frame stage. Either way results match the serial path
/// bit-for-bit and arrive in stream order. `stats`, when non-null, is
/// incremented by the run's ingest counters (merged in shot order).
std::vector<SegmentResult> ProcessFrames(
    const std::vector<video::Frame>& frames,
    const PipelineParams& params = {},
    const segment::ShotDetectorParams& shot_params = {},
    IngestStats* stats = nullptr);

}  // namespace strg::api

#endif  // STRG_CORE_PIPELINE_H_
