#ifndef STRG_CORE_PIPELINE_H_
#define STRG_CORE_PIPELINE_H_

#include <vector>

#include "distance/sequence.h"
#include "segment/segmenter.h"
#include "segment/shot_detector.h"
#include "strg/decompose.h"
#include "strg/strg.h"
#include "video/renderer.h"
#include "video/scene.h"

namespace strg::api {

/// End-to-end pipeline configuration: segmentation -> RAG -> tracking ->
/// decomposition (Sections 2.1-2.3).
struct PipelineParams {
  segment::SegmenterParams segmenter;
  core::TrackingParams tracking;
  core::DecomposeParams decompose;
};

/// Everything extracted from one video segment.
struct SegmentResult {
  size_t num_frames = 0;
  int frame_width = 0;
  int frame_height = 0;
  core::Decomposition decomposition;  ///< OGs + compressed BG
  size_t strg_size_bytes = 0;         ///< raw STRG footprint (Eq. 9 input)

  /// Feature scaling matched to this segment's frame geometry.
  dist::FeatureScaling Scaling() const;

  /// Feature-sequence views of the extracted object graphs.
  std::vector<dist::Sequence> ObjectSequences() const;
};

/// Streaming STRG construction: push frames as they arrive, then Finish()
/// to decompose. This is the paper's front half — from raw frames to the
/// indexed artifacts (OGs and one BG).
class VideoPipeline {
 public:
  explicit VideoPipeline(PipelineParams params = {});

  /// Segments the frame, builds its RAG, and extends the STRG's temporal
  /// edges (Algorithm 1). Returns the frame index.
  int PushFrame(const video::Frame& frame);

  /// Decomposes the accumulated STRG (Section 2.3) and returns the result.
  /// The pipeline can keep receiving frames afterwards; Finish() may be
  /// called repeatedly to snapshot.
  SegmentResult Finish() const;

  const core::Strg& strg() const { return strg_; }

 private:
  PipelineParams params_;
  core::Strg strg_;
  int width_ = 0;
  int height_ = 0;
};

/// Renders and processes a whole synthetic scene in one call.
SegmentResult ProcessScene(const video::SceneSpec& scene,
                           const PipelineParams& params = {});

/// Processes a frame stream that may span several shots: shot boundaries
/// are detected first (the paper's "parse a long video into meaningful
/// smaller units" issue), then each shot runs through its own pipeline and
/// yields its own SegmentResult — hence its own background graph / root
/// record when indexed.
std::vector<SegmentResult> ProcessFrames(
    const std::vector<video::Frame>& frames,
    const PipelineParams& params = {},
    const segment::ShotDetectorParams& shot_params = {});

}  // namespace strg::api

#endif  // STRG_CORE_PIPELINE_H_
