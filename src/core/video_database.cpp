#include "core/video_database.h"

namespace strg::api {

VideoDatabase::VideoDatabase(index::StrgIndexParams params)
    : index_(params) {}

int VideoDatabase::AddVideo(const std::string& name,
                            const SegmentResult& segment) {
  std::vector<dist::Sequence> sequences = segment.ObjectSequences();
  std::vector<size_t> ids;
  ids.reserve(sequences.size());
  for (const core::Og& og : segment.decomposition.object_graphs) {
    ids.push_back(records_.size());
    records_.push_back({name, og.start_frame, og.Length()});
  }
  ++num_videos_;
  return index_.AddSegment(segment.decomposition.background,
                           std::move(sequences), std::move(ids));
}

void VideoDatabase::AddObjectGraph(int segment_id,
                                   const std::string& video_name,
                                   const core::Og& og,
                                   const dist::FeatureScaling& scaling) {
  size_t id = records_.size();
  records_.push_back({video_name, og.start_frame, og.Length()});
  index_.Insert(segment_id, dist::OgToSequence(og, scaling), id);
}

std::vector<VideoDatabase::QueryHit> VideoDatabase::FindSimilar(
    const core::Og& query, size_t k,
    const dist::FeatureScaling& scaling) const {
  return FindSimilar(dist::OgToSequence(query, scaling), k);
}

std::vector<VideoDatabase::QueryHit> VideoDatabase::FindSimilar(
    const dist::Sequence& query, size_t k) const {
  return Resolve(index_.Knn(query, k));
}

std::vector<VideoDatabase::QueryHit> VideoDatabase::FindWithinRadius(
    const dist::Sequence& query, double radius) const {
  return Resolve(index_.RangeSearch(query, radius));
}

std::vector<VideoDatabase::QueryHit> VideoDatabase::FindActive(
    const std::string& video, int first_frame, int last_frame) const {
  std::vector<QueryHit> hits;
  for (size_t id = 0; id < records_.size(); ++id) {
    const OgRecord& rec = records_[id];
    if (rec.video != video) continue;
    int end = rec.start_frame + static_cast<int>(rec.length) - 1;
    if (end < first_frame || rec.start_frame > last_frame) continue;
    hits.push_back({rec.video, id, rec.start_frame, rec.length, 0.0});
  }
  return hits;
}

std::vector<VideoDatabase::QueryHit> VideoDatabase::Resolve(
    const index::KnnResult& knn) const {
  std::vector<QueryHit> hits;
  hits.reserve(knn.hits.size());
  for (const index::KnnHit& h : knn.hits) {
    const OgRecord& rec = records_[h.og_id];
    hits.push_back({rec.video, h.og_id, rec.start_frame, rec.length,
                    h.distance});
  }
  return hits;
}

}  // namespace strg::api
