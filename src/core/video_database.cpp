#include "core/video_database.h"

namespace strg::api {

VideoDatabase::VideoDatabase(index::StrgIndexParams params)
    : index_(params) {}

VideoDatabase::VideoDatabase(const storage::Catalog& catalog,
                             index::StrgIndexParams params)
    : index_(params) {
  for (const storage::CatalogSegment& s : catalog.segments()) {
    // Reconstitute the minimal SegmentResult the database needs.
    SegmentResult segment;
    segment.num_frames = s.num_frames;
    segment.frame_width = s.frame_width;
    segment.frame_height = s.frame_height;
    segment.decomposition.background = s.background;
    segment.decomposition.object_graphs = s.ogs;
    AddVideo(s.video_name, segment);
  }
}

int VideoDatabase::AddVideo(const std::string& name,
                            const SegmentResult& segment) {
  std::vector<dist::Sequence> sequences = segment.ObjectSequences();
  std::vector<size_t> ids;
  ids.reserve(sequences.size());
  for (const core::Og& og : segment.decomposition.object_graphs) {
    ids.push_back(records_.size());
    records_.push_back({name, og.start_frame, og.Length()});
  }
  ++num_videos_;
  return index_.AddSegment(segment.decomposition.background,
                           std::move(sequences), std::move(ids));
}

void VideoDatabase::AddObjectGraph(int segment_id,
                                   const std::string& video_name,
                                   const core::Og& og,
                                   const dist::FeatureScaling& scaling) {
  size_t id = records_.size();
  records_.push_back({video_name, og.start_frame, og.Length()});
  index_.Insert(segment_id, dist::OgToSequence(og, scaling), id);
}

std::vector<VideoDatabase::QueryHit> VideoDatabase::Query(
    const QuerySpec& spec, QueryStats* stats, double initial_tau) const {
  auto with_stats = [&](const index::KnnResult& knn) {
    if (stats != nullptr) {
      stats->distance_computations = knn.distance_computations;
      stats->lb_prunes = knn.lb_prunes;
      stats->early_abandons = knn.early_abandons;
    }
    return Resolve(knn);
  };
  switch (spec.kind) {
    case QuerySpec::Kind::kSimilar:
      return with_stats(index_.Knn(spec.sequence, spec.k,
                                   /*query_bg=*/nullptr,
                                   /*max_distance_computations=*/0,
                                   initial_tau));
    case QuerySpec::Kind::kRange:
      return with_stats(index_.RangeSearch(spec.sequence, spec.radius));
    case QuerySpec::Kind::kActive: {
      std::vector<QueryHit> hits;
      for (size_t id = 0; id < records_.size(); ++id) {
        const OgRecord& rec = records_[id];
        if (rec.video != spec.video) continue;
        int end = rec.start_frame + static_cast<int>(rec.length) - 1;
        if (end < spec.first_frame || rec.start_frame > spec.last_frame) {
          continue;
        }
        hits.push_back({rec.video, id, rec.start_frame, rec.length, 0.0});
      }
      return hits;
    }
  }
  return {};
}

std::vector<VideoDatabase::QueryHit> VideoDatabase::Submit(
    const QuerySpec& spec, const SubmitOptions& /*opts*/,
    const std::function<void(const std::vector<QueryHit>&)>& on_complete,
    QueryStats* stats) const {
  std::vector<QueryHit> hits = Query(spec, stats);
  if (on_complete) on_complete(hits);
  return hits;
}

std::vector<VideoDatabase::QueryHit> VideoDatabase::FindSimilar(
    const core::Og& query, size_t k,
    const dist::FeatureScaling& scaling) const {
  return Query(QuerySpec::Similar(dist::OgToSequence(query, scaling), k));
}

std::vector<VideoDatabase::QueryHit> VideoDatabase::Resolve(
    const index::KnnResult& knn) const {
  std::vector<QueryHit> hits;
  hits.reserve(knn.hits.size());
  for (const index::KnnHit& h : knn.hits) {
    const OgRecord& rec = records_[h.og_id];
    hits.push_back({rec.video, h.og_id, rec.start_frame, rec.length,
                    h.distance});
  }
  return hits;
}

}  // namespace strg::api
