#ifndef STRG_CORE_VIDEO_DATABASE_H_
#define STRG_CORE_VIDEO_DATABASE_H_

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "api/query_spec.h"
#include "core/pipeline.h"
#include "index/strg_index.h"
#include "storage/catalog.h"

namespace strg::api {

/// High-level content-based video retrieval store: the paper's full system
/// behind one API. Feed it processed video segments (SegmentResult); it
/// maintains the STRG-Index and answers similarity queries over object
/// graphs ("find clips where something moved like this").
class VideoDatabase {
 public:
  explicit VideoDatabase(index::StrgIndexParams params = {});

  /// Rebuild-from-catalog: re-registers every stored segment. The index
  /// build is deterministic for fixed parameters, so this reproduces the
  /// pre-shutdown database — the constructor crash recovery replays
  /// snapshots through.
  explicit VideoDatabase(const storage::Catalog& catalog,
                         index::StrgIndexParams params = {});

  /// Value-copy snapshot hook for the serving layer (`server::QueryEngine`):
  /// copy-on-write generations are built by cloning the current database,
  /// mutating the clone, and atomically publishing it. The query methods
  /// below are const and touch no mutable state besides the index's atomic
  /// distance counter, so any number of threads may query one published
  /// (immutable) clone concurrently without locks.
  VideoDatabase Clone() const { return *this; }

  /// Registers a processed video segment under a name: its BG becomes a
  /// root record, its OGs are clustered and indexed (Algorithm 2). Returns
  /// the root/segment id.
  int AddVideo(const std::string& name, const SegmentResult& segment);

  /// Inserts one more OG into an existing video's segment.
  void AddObjectGraph(int segment_id, const std::string& video_name,
                      const core::Og& og, const dist::FeatureScaling& scaling);

  /// One retrieval answer, resolved back to the source video.
  struct QueryHit {
    std::string video;
    size_t og_id = 0;        ///< global OG id inside the database
    int start_frame = 0;     ///< where the matching OG begins
    size_t length = 0;       ///< OG duration in frames
    double distance = 0.0;   ///< EGED_M to the query
  };

  /// Per-query cost counters (the paper's Figure 7b metric plus the fast
  /// kernel's pruning breakdown). Counted locally per query — exact under
  /// concurrent load; zero for kActive queries, which compute no distances.
  struct QueryStats {
    size_t distance_computations = 0;  ///< EGED DP evaluations
    size_t lb_prunes = 0;              ///< answered by the O(m+n) cascade
    size_t early_abandons = 0;         ///< DPs truncated by the tau radius
  };

  /// The one retrieval entry point: dispatches on spec.kind (k-NN /
  /// range / temporal window). Every layer above — the serving engine, the
  /// cache digest, the tools — speaks QuerySpec; the Find* methods below
  /// are legacy spellings of the same calls. When `stats` is non-null the
  /// query's cost counters are written there.
  ///
  /// `initial_tau` (kSimilar only; default +inf = unbounded) seeds the kNN
  /// worst-of-heap pruning radius — the scatter-gather hook a sharded
  /// serving layer uses to hand a shard leg the running global worst-of-k
  /// from already-completed shards (see index::StrgIndex::Knn for the
  /// exactness contract). Range and active queries ignore it.
  std::vector<QueryHit> Query(
      const QuerySpec& spec, QueryStats* stats = nullptr,
      double initial_tau = std::numeric_limits<double>::infinity()) const;

  /// The submit/complete surface at the database layer — the degenerate
  /// synchronous implementation of the API the serving engines
  /// (server::QueryEngine / ShardedQueryEngine) expose. There is no queue
  /// and no worker pool here, so the request executes inline on the
  /// calling thread and `on_complete` (when given) fires with the answer
  /// before Submit returns; the answer is also returned directly.
  /// opts.timeout / use_cache / shard_hint are accepted for vocabulary
  /// uniformity and ignored — a bare database has no admission control, no
  /// cache, and no shards.
  std::vector<QueryHit> Submit(
      const QuerySpec& spec, const SubmitOptions& opts,
      const std::function<void(const std::vector<QueryHit>&)>& on_complete =
          nullptr,
      QueryStats* stats = nullptr) const;

  // ---- Legacy entry points: one-line wrappers over Query(QuerySpec),
  // ---- kept for source compatibility and slated for eventual removal.

  /// k-NN with the query given as an OG, converted with `scaling` (use the
  /// producing segment's Scaling()).
  std::vector<QueryHit> FindSimilar(const core::Og& query, size_t k,
                                    const dist::FeatureScaling& scaling) const;
  std::vector<QueryHit> FindSimilar(const dist::Sequence& query,
                                    size_t k) const {
    return Query(QuerySpec::Similar(query, k));
  }
  std::vector<QueryHit> FindWithinRadius(const dist::Sequence& query,
                                         double radius) const {
    return Query(QuerySpec::WithinRadius(query, radius));
  }
  std::vector<QueryHit> FindActive(const std::string& video, int first_frame,
                                   int last_frame) const {
    return Query(QuerySpec::Active(video, first_frame, last_frame));
  }

  size_t NumVideos() const { return num_videos_; }
  size_t NumObjectGraphs() const { return records_.size(); }
  size_t IndexSizeBytes() const { return index_.SizeBytes(); }
  size_t DistanceComputations() const {
    return index_.TotalDistanceComputations();
  }

  const index::StrgIndex& index() const { return index_; }
  index::StrgIndex& index() { return index_; }

 private:
  struct OgRecord {
    std::string video;
    int start_frame = 0;
    size_t length = 0;
  };

  std::vector<QueryHit> Resolve(const index::KnnResult& knn) const;

  index::StrgIndex index_;
  std::vector<OgRecord> records_;
  size_t num_videos_ = 0;
};

}  // namespace strg::api

#endif  // STRG_CORE_VIDEO_DATABASE_H_
