#ifndef STRG_DISTANCE_DISTANCE_H_
#define STRG_DISTANCE_DISTANCE_H_

#include <atomic>
#include <string>

#include "distance/sequence.h"

namespace strg::dist {

/// Abstract (dis)similarity between two OG feature sequences.
///
/// Clustering, the STRG-Index, and the M-tree baseline all consume this
/// interface, so every experiment can swap distance functions (EGED vs DTW
/// vs LCS) without touching the algorithms.
class SequenceDistance {
 public:
  virtual ~SequenceDistance() = default;

  /// Distance between two sequences (>= 0; semantics depend on the measure).
  virtual double operator()(const Sequence& a, const Sequence& b) const = 0;

  /// Bounded evaluation for callers that only need distances at or below
  /// `tau` (running-minimum assignment loops, kNN radii). Contract: the
  /// exact distance d is returned whenever d <= tau; otherwise the measure
  /// may stop early and return any v with tau < v <= d. The default is the
  /// exact distance (always a valid answer); measures with cheap lower
  /// bounds (metric EGED) override it.
  virtual double Bounded(const Sequence& a, const Sequence& b,
                         double tau) const {
    (void)tau;
    return (*this)(a, b);
  }

  /// Whether the measure satisfies the triangle inequality. Metric measures
  /// admit triangle-inequality pruning (Elkan/Hamerly bounds in
  /// src/cluster/bounds.h, M-tree covering radii); callers must treat the
  /// default `false` as "not proven", not "known non-metric".
  virtual bool IsMetric() const { return false; }

  /// Human-readable name used in benchmark reports (e.g. "EGED").
  virtual std::string Name() const = 0;
};

/// Decorator that counts invocations of an underlying distance. The paper
/// evaluates k-NN cost as the number of distance computations (Section 6.3,
/// Figure 7b); both indexes are measured through this wrapper.
class CountingDistance final : public SequenceDistance {
 public:
  explicit CountingDistance(const SequenceDistance* inner) : inner_(inner) {}

  double operator()(const Sequence& a, const Sequence& b) const override {
    count_.fetch_add(1, std::memory_order_relaxed);
    return (*inner_)(a, b);
  }
  std::string Name() const override { return inner_->Name(); }
  /// Metricity is a property of the wrapped measure. Bounded() is *not*
  /// forwarded: the wrapper's evaluations stay exact so the count keeps its
  /// paper meaning (number of full distance computations).
  bool IsMetric() const override { return inner_->IsMetric(); }

  size_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset() { count_.store(0, std::memory_order_relaxed); }

 private:
  const SequenceDistance* inner_;
  /// Atomic so counted distances can be evaluated from a ThreadPool.
  mutable std::atomic<size_t> count_{0};
};

}  // namespace strg::dist

#endif  // STRG_DISTANCE_DISTANCE_H_
