#include "distance/dtw.h"

#include <limits>
#include <stdexcept>
#include <utility>

#include "distance/eged_fast.h"
#include "distance/simd/dispatch.h"

namespace strg::dist {

// Two-pass DTW over the dispatched row kernel. Phase 1 (vectorizable, no
// loop-carried dependency) stashes per-column costs and min(prev[j-1],
// prev[j]); phase 2 folds the loop-carried cur[j-1] and adds the cost.
// min({p1, p2, c}) is reassociation-exact, so the result is bit-identical
// to the classic single-pass loop at every dispatch tier.
double Dtw(const Sequence& a, const Sequence& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("Dtw: empty sequence");
  }
  const size_t m = a.size(), n = b.size();
  const double kInf = std::numeric_limits<double>::infinity();
  const simd::KernelOps& ops = simd::ActiveOps();

  static thread_local FlatSequence flat_b;
  flat_b.Assign(b, FeatureVec{});
  const double* bt = flat_b.transposed();
  const size_t bstride = flat_b.t_stride();

  double* prev = nullptr;
  double* cur = nullptr;
  double* cost = nullptr;
  ThreadLocalEgedWorkspace().Rows3(n + 1, &prev, &cur, &cost);
  prev[0] = 0.0;
  for (size_t j = 1; j <= n; ++j) prev[j] = kInf;
  for (size_t i = 1; i <= m; ++i) {
    cur[0] = kInf;
    ops.dtw_row(a[i - 1].data(), bt, bstride, prev, n, cur, cost);
    double left = kInf;
    for (size_t j = 1; j <= n; ++j) {
      double md = cur[j];
      if (left < md) md = left;
      const double v = cost[j] + md;
      cur[j] = v;
      left = v;
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

}  // namespace strg::dist
