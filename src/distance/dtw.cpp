#include "distance/dtw.h"

#include <limits>
#include <stdexcept>
#include <vector>

namespace strg::dist {

double Dtw(const Sequence& a, const Sequence& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("Dtw: empty sequence");
  }
  const size_t m = a.size(), n = b.size();
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> prev(n + 1, kInf), cur(n + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= m; ++i) {
    cur[0] = kInf;
    for (size_t j = 1; j <= n; ++j) {
      double cost = PointDistance(a[i - 1], b[j - 1]);
      cur[j] = cost + std::min({prev[j - 1], prev[j], cur[j - 1]});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

}  // namespace strg::dist
