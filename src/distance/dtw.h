#ifndef STRG_DISTANCE_DTW_H_
#define STRG_DISTANCE_DTW_H_

#include "distance/distance.h"

namespace strg::dist {

/// Dynamic Time Warping [11]: classic O(mn) warping-path distance, one of
/// the baselines Figures 5 and 6 compare EGED against. Non-metric (fails
/// the triangle inequality).
double Dtw(const Sequence& a, const Sequence& b);

class DtwDistance final : public SequenceDistance {
 public:
  double operator()(const Sequence& a, const Sequence& b) const override {
    return Dtw(a, b);
  }
  std::string Name() const override { return "DTW"; }
};

}  // namespace strg::dist

#endif  // STRG_DISTANCE_DTW_H_
