#include "distance/edr.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "distance/eged_fast.h"
#include "distance/simd/dispatch.h"

namespace strg::dist {

// Two-pass EDR over the dispatched row kernel, same decomposition as Dtw.
// The kernels compare the sqrt'd point distance against epsilon — exactly
// like the classic loop — because comparing squared forms differs at
// boundary ULPs.
double Edr(const Sequence& a, const Sequence& b, double epsilon) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("Edr: empty sequence");
  }
  const size_t m = a.size(), n = b.size();
  const simd::KernelOps& ops = simd::ActiveOps();

  static thread_local FlatSequence flat_b;
  flat_b.Assign(b, FeatureVec{});
  const double* bt = flat_b.transposed();
  const size_t bstride = flat_b.t_stride();

  double* prev = nullptr;
  double* cur = nullptr;
  ThreadLocalEgedWorkspace().Rows(n + 1, &prev, &cur);
  for (size_t j = 0; j <= n; ++j) prev[j] = static_cast<double>(j);
  for (size_t i = 1; i <= m; ++i) {
    cur[0] = static_cast<double>(i);
    ops.edr_row(a[i - 1].data(), bt, bstride, prev, epsilon, n, cur);
    double left = cur[0];
    for (size_t j = 1; j <= n; ++j) {
      const double horiz = left + 1.0;
      double v = cur[j];
      if (horiz < v) v = horiz;
      cur[j] = v;
      left = v;
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

double EdrNormalized(const Sequence& a, const Sequence& b, double epsilon) {
  return Edr(a, b, epsilon) / static_cast<double>(std::max(a.size(), b.size()));
}

}  // namespace strg::dist
