#include "distance/edr.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace strg::dist {

double Edr(const Sequence& a, const Sequence& b, double epsilon) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("Edr: empty sequence");
  }
  const size_t m = a.size(), n = b.size();
  std::vector<double> prev(n + 1), cur(n + 1);
  for (size_t j = 0; j <= n; ++j) prev[j] = static_cast<double>(j);
  for (size_t i = 1; i <= m; ++i) {
    cur[0] = static_cast<double>(i);
    for (size_t j = 1; j <= n; ++j) {
      double subcost =
          PointDistance(a[i - 1], b[j - 1]) <= epsilon ? 0.0 : 1.0;
      cur[j] = std::min({prev[j - 1] + subcost, prev[j] + 1.0,
                         cur[j - 1] + 1.0});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

double EdrNormalized(const Sequence& a, const Sequence& b, double epsilon) {
  return Edr(a, b, epsilon) / static_cast<double>(std::max(a.size(), b.size()));
}

}  // namespace strg::dist
