#ifndef STRG_DISTANCE_EDR_H_
#define STRG_DISTANCE_EDR_H_

#include "distance/distance.h"

namespace strg::dist {

/// Edit Distance on Real sequences (Chen, Özsu & Oria — the trajectory
/// edit distance the paper cites as [4]): two points "match" at cost 0 when
/// within epsilon, otherwise substitution/insertion/deletion each cost 1.
/// Robust to outliers (a corrupted point costs at most 1) but quantizes all
/// structure to unit costs. Non-metric under subadditive epsilon-matching.
double Edr(const Sequence& a, const Sequence& b, double epsilon);

/// Length-normalized EDR in [0, 1]: Edr / max(m, n).
double EdrNormalized(const Sequence& a, const Sequence& b, double epsilon);

class EdrDistance final : public SequenceDistance {
 public:
  explicit EdrDistance(double epsilon = 1.0) : epsilon_(epsilon) {}
  double operator()(const Sequence& a, const Sequence& b) const override {
    return Edr(a, b, epsilon_);
  }
  std::string Name() const override { return "EDR"; }

 private:
  double epsilon_;
};

}  // namespace strg::dist

#endif  // STRG_DISTANCE_EDR_H_
