#include "distance/eged.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace strg::dist {

double EgedNonMetric(const Sequence& a, const Sequence& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument(
        "EgedNonMetric: the non-metric EGED is defined for m,n >= 1 "
        "(Definition 9); use EgedMetric for empty sequences");
  }
  const size_t m = a.size(), n = b.size();

  // Definition 9 with the gap value taken from the *opposite* sequence:
  // consuming a_i against a gap costs |a_i - g|, where g interpolates the
  // other sequence at the current alignment position (the midpoint of its
  // neighboring node values). This is the reading that makes the paper's
  // remark "when g_i = v_{i-1} the cost function is the same as the one in
  // DTW" literally true — DTW's repeat-match cost |a_i - b_j| — and it
  // reproduces the worked example of Section 3.1 exactly:
  //   EGED({0},{2,2,3}) = 7, EGED({0},{1,1}) = 2, EGED({1,1},{2,2,3}) = 4,
  // hence the triangle violation 7 > 2 + 4. The midpoint gap handles local
  // time shifting: a node that falls "between" two nodes of the other
  // sequence is consumed at the cost of that interpolated position.
  //
  // GapValue(s, i) = midpoint(s_i, s_{i+1}) clamped to the ends: the gap
  // inserted after i consumed nodes of s sits between s_i and s_{i+1}.
  auto gap_values = [](const Sequence& s) {
    std::vector<FeatureVec> gaps(s.size() + 1);
    gaps[0] = s.front();
    for (size_t i = 1; i < s.size(); ++i) gaps[i] = Midpoint(s[i - 1], s[i]);
    gaps[s.size()] = s.back();
    return gaps;
  };
  const std::vector<FeatureVec> gap_a = gap_values(a);
  const std::vector<FeatureVec> gap_b = gap_values(b);

  std::vector<double> prev(n + 1, 0.0), cur(n + 1, 0.0);
  for (size_t j = 1; j <= n; ++j) {
    prev[j] = prev[j - 1] + PointDistance(b[j - 1], gap_a[0]);
  }
  for (size_t i = 1; i <= m; ++i) {
    const FeatureVec& ai = a[i - 1];
    const FeatureVec& gai = gap_a[i];
    cur[0] = prev[0] + PointDistance(ai, gap_b[0]);
    for (size_t j = 1; j <= n; ++j) {
      double subst = prev[j - 1] + PointDistance(ai, b[j - 1]);
      double del_a = prev[j] + PointDistance(ai, gap_b[j]);
      double del_b = cur[j - 1] + PointDistance(b[j - 1], gai);
      cur[j] = std::min({subst, del_a, del_b});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

double EgedMetric(const Sequence& a, const Sequence& b, const FeatureVec& g) {
  const size_t m = a.size(), n = b.size();
  // ERP-style DP with the n=0 / m=0 cases included (Theorem 2 discussion):
  // every sequence is measured from the fixed point g. Gap costs against
  // the fixed constant depend on one element only, so they are precomputed
  // and the inner loop pays a single point distance per cell.
  std::vector<double> gap_cost_a(m), gap_cost_b(n);
  for (size_t i = 0; i < m; ++i) gap_cost_a[i] = PointDistance(a[i], g);
  for (size_t j = 0; j < n; ++j) gap_cost_b[j] = PointDistance(b[j], g);

  std::vector<double> prev(n + 1, 0.0), cur(n + 1, 0.0);
  for (size_t j = 1; j <= n; ++j) prev[j] = prev[j - 1] + gap_cost_b[j - 1];
  for (size_t i = 1; i <= m; ++i) {
    const FeatureVec& ai = a[i - 1];
    const double gai = gap_cost_a[i - 1];
    cur[0] = prev[0] + gai;
    for (size_t j = 1; j <= n; ++j) {
      double subst = prev[j - 1] + PointDistance(ai, b[j - 1]);
      double del_a = prev[j] + gai;
      double del_b = cur[j - 1] + gap_cost_b[j - 1];
      cur[j] = std::min({subst, del_a, del_b});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

}  // namespace strg::dist
