#ifndef STRG_DISTANCE_EGED_H_
#define STRG_DISTANCE_EGED_H_

#include "distance/distance.h"
#include "distance/eged_fast.h"

namespace strg::dist {

/// Non-metric Extended Graph Edit Distance (Definition 9).
///
/// Edit distance over the node sequences of two OGs where the cost of
/// editing against a gap uses g_i = (v_{i-1} + v_i) / 2 — the choice the
/// paper makes to handle local time shifting (Section 3.1). Because the gap
/// replicates neighboring values, the triangle inequality does not hold;
/// this variant is used for matching/clustering, not for index keys.
double EgedNonMetric(const Sequence& a, const Sequence& b);

/// Metric EGED (Theorem 2): the gap is a fixed constant vector g, making
/// the measure a true metric (it coincides with Chen's ERP). Used to compute
/// index keys in the STRG-Index and as the M-tree's metric.
///
/// This is the reference implementation (heap-allocating, always fills the
/// full DP matrix); the hot paths run the numerically identical flat kernel
/// in eged_fast.h, and the randomized equivalence tests pin the two
/// together.
double EgedMetric(const Sequence& a, const Sequence& b,
                  const FeatureVec& g = FeatureVec{});

class EgedDistance final : public SequenceDistance {
 public:
  double operator()(const Sequence& a, const Sequence& b) const override {
    return EgedNonMetric(a, b);
  }
  std::string Name() const override { return "EGED"; }
};

class EgedMetricDistance final : public SequenceDistance {
 public:
  explicit EgedMetricDistance(FeatureVec g = FeatureVec{}) : g_(g) {}
  /// Flat fast path: bit-identical values to EgedMetric(a, b, g) without
  /// its per-call heap allocations (thread-local scratch).
  double operator()(const Sequence& a, const Sequence& b) const override {
    return EgedMetricFast(a, b, g_);
  }
  /// Lower-bound cascade + early-abandoning DP; exact whenever the true
  /// distance is <= tau (see SequenceDistance::Bounded contract).
  double Bounded(const Sequence& a, const Sequence& b,
                 double tau) const override {
    return EgedMetricBoundedSeq(a, b, tau, g_);
  }
  std::string Name() const override { return "EGED_M"; }
  /// True metric by Theorem 2 (coincides with Chen's ERP), so triangle-
  /// inequality bounds are admissible.
  bool IsMetric() const override { return true; }

  const FeatureVec& gap() const { return g_; }

 private:
  FeatureVec g_{};
};

}  // namespace strg::dist

#endif  // STRG_DISTANCE_EGED_H_
