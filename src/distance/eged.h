#ifndef STRG_DISTANCE_EGED_H_
#define STRG_DISTANCE_EGED_H_

#include "distance/distance.h"

namespace strg::dist {

/// Non-metric Extended Graph Edit Distance (Definition 9).
///
/// Edit distance over the node sequences of two OGs where the cost of
/// editing against a gap uses g_i = (v_{i-1} + v_i) / 2 — the choice the
/// paper makes to handle local time shifting (Section 3.1). Because the gap
/// replicates neighboring values, the triangle inequality does not hold;
/// this variant is used for matching/clustering, not for index keys.
double EgedNonMetric(const Sequence& a, const Sequence& b);

/// Metric EGED (Theorem 2): the gap is a fixed constant vector g, making
/// the measure a true metric (it coincides with Chen's ERP). Used to compute
/// index keys in the STRG-Index and as the M-tree's metric.
double EgedMetric(const Sequence& a, const Sequence& b,
                  const FeatureVec& g = FeatureVec{});

class EgedDistance final : public SequenceDistance {
 public:
  double operator()(const Sequence& a, const Sequence& b) const override {
    return EgedNonMetric(a, b);
  }
  std::string Name() const override { return "EGED"; }
};

class EgedMetricDistance final : public SequenceDistance {
 public:
  explicit EgedMetricDistance(FeatureVec g = FeatureVec{}) : g_(g) {}
  double operator()(const Sequence& a, const Sequence& b) const override {
    return EgedMetric(a, b, g_);
  }
  std::string Name() const override { return "EGED_M"; }

 private:
  FeatureVec g_{};
};

}  // namespace strg::dist

#endif  // STRG_DISTANCE_EGED_H_
