#include "distance/eged_fast.h"

#include <algorithm>
#include <cmath>

namespace strg::dist {

namespace {

/// Relative safety margin applied to every analytic lower bound. The bounds
/// are admissible in exact arithmetic; the DP accumulates with ~1e-16
/// relative rounding per step, so shaving ~1e-12 keeps them admissible in
/// floating point with margin to spare while costing nothing measurable in
/// pruning power.
inline double Shave(double lb) {
  return lb <= 0.0 ? 0.0 : lb * (1.0 - 1e-12);
}

inline double Min3(double x, double y, double z) {
  double v = x;
  if (y < v) v = y;
  if (z < v) v = z;
  return v;
}

struct TlsFlatScratch {
  FlatSequence a, b;
};

TlsFlatScratch& ThreadLocalFlats() {
  static thread_local TlsFlatScratch scratch;
  return scratch;
}

}  // namespace

void FlatSequence::Assign(const Sequence& seq, const FeatureVec& g) {
  size_ = seq.size();
  values_.resize(kFeatureDim * size_);
  gap_costs_.resize(size_);
  for (size_t i = 0; i < size_; ++i) {
    for (size_t k = 0; k < kFeatureDim; ++k) {
      values_[i * kFeatureDim + k] = seq[i][k];
    }
  }
  // Left-to-right accumulation, matching the DP's first row exactly, so
  // gap_mass() is bit-identical to EgedMetric(seq, {}).
  gap_mass_ = 0.0;
  for (size_t i = 0; i < size_; ++i) {
    gap_costs_[i] = PointDistance(seq[i], g);
    gap_mass_ += gap_costs_[i];
  }
  front_ = size_ > 0 ? seq.front() : FeatureVec{};
  back_ = size_ > 0 ? seq.back() : FeatureVec{};
}

EgedWorkspace& ThreadLocalEgedWorkspace() {
  static thread_local EgedWorkspace ws;
  return ws;
}

double EgedLowerBound(const FlatSequence& a, const FlatSequence& b) {
  // Gap-mass bound: EGED_M is a metric (Theorem 2) and EGED_M(x, {}) is the
  // gap mass, so |gap_mass(a) - gap_mass(b)| <= EGED_M(a, b) by the
  // triangle inequality through the empty sequence.
  double lb = std::fabs(a.gap_mass() - b.gap_mass());
  if (!a.empty() && !b.empty()) {
    // Endpoint bound: the first edit op of any alignment consumes a_1 or
    // b_1 (or both), costing at least min(d(a1,b1), d(a1,g), d(b1,g)); when
    // max(m, n) >= 2 the alignment has at least two ops and its distinct
    // last op likewise pays for a_m or b_n.
    const double first = Min3(PointDistance(a.front(), b.front()),
                              a.gap_cost(0), b.gap_cost(0));
    double endpoint = first;
    if (a.size() >= 2 || b.size() >= 2) {
      const double last =
          Min3(PointDistance(a.back(), b.back()),
               a.gap_cost(a.size() - 1), b.gap_cost(b.size() - 1));
      endpoint = first + last;
    }
    lb = std::max(lb, endpoint);
  }
  return Shave(lb);
}

namespace {

/// Shared DP body with band pruning (the pruned-DTW idea of Silva &
/// Batista, adapted to the EGED/ERP recurrence). Identical arithmetic, in
/// identical order, to the reference EgedMetric (eged.cpp) for every cell
/// whose true value is <= tau — which is what makes a completed run return
/// the reference result bit-for-bit whenever the true distance is <= tau.
///
/// Band invariant: [pb, pe] spans every column of the previous row whose
/// computed value is <= tau; columns outside behave as +infinity. A cell
/// with true value <= tau draws its optimal predecessor from a cell with
/// value <= tau (edit costs are non-negative), which by induction lies
/// inside the band and is exact; the remaining candidates are >= their true
/// values, which are >= the optimal one, so the three-way min — and hence
/// the cell — is computed exactly (ties share the same value, so this holds
/// bitwise). Each row is scanned from pb and stops once it is both past
/// pe + 1 (no finite vertical/diagonal candidates remain) and above tau
/// (the horizontal chain only accumulates non-negative gap costs).
///
/// When a row ends with no cell <= tau, or the final cell falls outside the
/// last band, every path to (m, n) costs more than tau: the DP abandons and
/// returns nextafter(tau) — the smallest value that is both > tau and <= d
/// for any true distance d > tau.
double BoundedDp(const FlatSequence& a, const FlatSequence& b, double tau,
                 EgedWorkspace* ws, bool* abandoned) {
  const size_t m = a.size(), n = b.size();
  const double* agap = a.gap_costs();
  const double* bgap = b.gap_costs();
  const double* av = a.points();
  const double* bv = b.points();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  double* prev = nullptr;
  double* cur = nullptr;
  ws->Rows(n + 1, &prev, &cur);

  // First row accumulates non-negative gap costs, so its band is a prefix.
  prev[0] = 0.0;
  size_t pb = 0, pe = n;
  for (size_t j = 1; j <= n; ++j) {
    prev[j] = prev[j - 1] + bgap[j - 1];
    if (prev[j] > tau) {
      pe = j - 1;
      break;
    }
  }

  for (size_t i = 1; i <= m; ++i) {
    const double ga_i = agap[i - 1];
    const double* ai = av + (i - 1) * kFeatureDim;
    size_t cb = n + 1;  // first column of this row's band
    size_t ce = 0;      // last column of this row's band
    double left;        // cur[j - 1], tracked in a register
    size_t j;
    auto note = [&](double v) {
      if (v <= tau) {
        if (cb > j) cb = j;
        ce = j;
      }
    };
    if (pb == 0) {
      left = prev[0] + ga_i;
      cur[0] = left;
      j = 0;
      note(left);
      j = 1;
    } else {
      // Columns left of pb have only +inf predecessors. At j = pb the
      // diagonal (prev[pb-1]) and horizontal (cur[pb-1]) candidates are
      // both +inf, so the cell reduces to the vertical deletion — no point
      // distance needed.
      j = pb;
      left = prev[pb] + ga_i;
      cur[pb] = left;
      note(left);
      j = pb + 1;
    }
    // In-band phase: all three predecessors lie inside the previous band.
    // Interior band cells can still individually exceed tau; when every
    // candidate already does, the cell can never re-enter the band — its
    // value is only ever read as "+inf by a successor", so the point
    // distance (and its sqrt) is skipped outright.
    for (; j <= pe; ++j) {
      const double diag = prev[j - 1];
      const double del_a = prev[j] + ga_i;
      const double del_b = left + bgap[j - 1];
      if (diag > tau && del_a > tau && del_b > tau) {
        cur[j] = kInf;
        left = kInf;
        continue;
      }
      const double* bj = bv + (j - 1) * kFeatureDim;
      double s = 0.0;
      for (size_t k = 0; k < kFeatureDim; ++k) {
        const double dk = ai[k] - bj[k];
        s += dk * dk;
      }
      const double subst = diag + std::sqrt(s);
      double v = subst;
      if (del_a < v) v = del_a;
      if (del_b < v) v = del_b;
      cur[j] = v;
      left = v;
      note(v);
    }
    // Boundary column pe + 1: the vertical candidate (prev[pe+1]) is
    // outside the band, so the cell is min(subst, horizontal).
    if (j == pe + 1 && j <= n) {
      const double* bj = bv + (j - 1) * kFeatureDim;
      double s = 0.0;
      for (size_t k = 0; k < kFeatureDim; ++k) {
        const double dk = ai[k] - bj[k];
        s += dk * dk;
      }
      const double subst = prev[j - 1] + std::sqrt(s);
      const double del_b = left + bgap[j - 1];
      double v = subst < del_b ? subst : del_b;
      cur[j] = v;
      left = v;
      note(v);
      ++j;
      // Horizontal tail: beyond pe + 1 every diagonal/vertical candidate is
      // +inf, so cells are just left + gap — no point distance, and the
      // chain only grows, so it stops at the first value above tau.
      for (; j <= n && left <= tau; ++j) {
        left += bgap[j - 1];
        cur[j] = left;
        note(left);
      }
    }
    if (cb > n) {
      *abandoned = true;
      return std::nextafter(tau, kInf);
    }
    pb = cb;
    pe = ce;
    std::swap(prev, cur);
  }
  if (pe == n) {
    *abandoned = false;
    return prev[n];
  }
  // The corner cell exceeded tau (or was never reached).
  *abandoned = true;
  return std::nextafter(tau, kInf);
}

}  // namespace

double EgedMetricFlat(const FlatSequence& a, const FlatSequence& b,
                      EgedWorkspace* ws) {
  if (a.empty()) return b.gap_mass();
  if (b.empty()) return a.gap_mass();
  bool abandoned = false;
  return BoundedDp(a, b, std::numeric_limits<double>::infinity(), ws,
                   &abandoned);
}

double EgedMetricBounded(const FlatSequence& a, const FlatSequence& b,
                         double tau, EgedWorkspace* ws,
                         EgedKernelStats* stats) {
  if (a.empty() || b.empty()) {
    if (stats != nullptr) ++stats->dp_evals;
    return a.empty() ? b.gap_mass() : a.gap_mass();
  }
  if (tau < std::numeric_limits<double>::infinity()) {
    const double lb = EgedLowerBound(a, b);
    if (lb > tau) {
      if (stats != nullptr) ++stats->lb_prunes;
      return lb;
    }
  }
  if (stats != nullptr) ++stats->dp_evals;
  bool abandoned = false;
  const double v = BoundedDp(a, b, tau, ws, &abandoned);
  if (abandoned && stats != nullptr) ++stats->early_abandons;
  return v;
}

double EgedMetricFast(const Sequence& a, const Sequence& b,
                      const FeatureVec& g) {
  TlsFlatScratch& scratch = ThreadLocalFlats();
  scratch.a.Assign(a, g);
  scratch.b.Assign(b, g);
  return EgedMetricFlat(scratch.a, scratch.b, &ThreadLocalEgedWorkspace());
}

double EgedMetricBoundedSeq(const Sequence& a, const Sequence& b, double tau,
                            const FeatureVec& g) {
  TlsFlatScratch& scratch = ThreadLocalFlats();
  scratch.a.Assign(a, g);
  scratch.b.Assign(b, g);
  return EgedMetricBounded(scratch.a, scratch.b, tau,
                           &ThreadLocalEgedWorkspace());
}

}  // namespace strg::dist
