#include "distance/eged_fast.h"

#include <algorithm>
#include <cmath>

#include "distance/simd/cells.h"

namespace strg::dist {

static_assert(kFeatureDim == simd::kCellDim,
              "simd cell helpers must agree on the feature dimension");
static_assert(kFeatureDim <= simd::kPaddedDim,
              "padded stride must fit a feature point");

namespace {

/// Relative safety margin applied to every analytic lower bound. The bounds
/// are admissible in exact arithmetic; the DP accumulates with ~1e-16
/// relative rounding per step, so shaving ~1e-12 keeps them admissible in
/// floating point with margin to spare while costing nothing measurable in
/// pruning power.
inline double Shave(double lb) {
  return lb <= 0.0 ? 0.0 : lb * (1.0 - 1e-12);
}

inline double Min3(double x, double y, double z) {
  double v = x;
  if (y < v) v = y;
  if (z < v) v = z;
  return v;
}

struct TlsFlatScratch {
  FlatSequence a, b;
};

TlsFlatScratch& ThreadLocalFlats() {
  static thread_local TlsFlatScratch scratch;
  return scratch;
}

}  // namespace

void FlatSequence::Assign(const Sequence& seq, const FeatureVec& g) {
  size_ = seq.size();
  values_.resize(kStride * size_);
  transposed_.resize(kFeatureDim * size_);
  gap_costs_.resize(size_);
  for (size_t i = 0; i < size_; ++i) {
    double* p = values_.data() + i * kStride;
    for (size_t k = 0; k < kFeatureDim; ++k) {
      p[k] = seq[i][k];
      transposed_[k * size_ + i] = seq[i][k];
    }
    for (size_t k = kFeatureDim; k < kStride; ++k) p[k] = 0.0;
  }
  // Per-point gap costs through the dispatched batch kernel: the per-lane
  // dim order matches PointDistance, and (q - p)^2 == (p - q)^2 exactly, so
  // the values are bit-identical to the former scalar loop at every tier.
  simd::ActiveOps().point_distance_batch(g.data(), values_.data(), size_,
                                         gap_costs_.data());
  // Left-to-right accumulation, matching the DP's first row exactly, so
  // gap_mass() is bit-identical to EgedMetric(seq, {}).
  gap_mass_ = 0.0;
  for (size_t i = 0; i < size_; ++i) gap_mass_ += gap_costs_[i];
  front_ = size_ > 0 ? seq.front() : FeatureVec{};
  back_ = size_ > 0 ? seq.back() : FeatureVec{};
}

void ReversedQuery::Assign(const FlatSequence& a) {
  size_ = a.size();
  t_.resize(kFeatureDim * size_);
  gaps_.resize(size_);
  const double* at = a.transposed();
  const size_t stride = a.t_stride();
  for (size_t k = 0; k < kFeatureDim; ++k) {
    const double* src = at + k * stride;
    double* dst = t_.data() + k * size_;
    for (size_t c = 0; c < size_; ++c) dst[c] = src[size_ - 1 - c];
  }
  const double* g = a.gap_costs();
  for (size_t c = 0; c < size_; ++c) gaps_[c] = g[size_ - 1 - c];
}

EgedWorkspace& ThreadLocalEgedWorkspace() {
  static thread_local EgedWorkspace ws;
  return ws;
}

double EgedLowerBound(const FlatSequence& a, const FlatSequence& b) {
  // Gap-mass bound: EGED_M is a metric (Theorem 2) and EGED_M(x, {}) is the
  // gap mass, so |gap_mass(a) - gap_mass(b)| <= EGED_M(a, b) by the
  // triangle inequality through the empty sequence.
  double lb = std::fabs(a.gap_mass() - b.gap_mass());
  if (!a.empty() && !b.empty()) {
    // Endpoint bound: the first edit op of any alignment consumes a_1 or
    // b_1 (or both), costing at least min(d(a1,b1), d(a1,g), d(b1,g)); when
    // max(m, n) >= 2 the alignment has at least two ops and its distinct
    // last op likewise pays for a_m or b_n.
    const double first = Min3(PointDistance(a.front(), b.front()),
                              a.gap_cost(0), b.gap_cost(0));
    double endpoint = first;
    if (a.size() >= 2 || b.size() >= 2) {
      const double last =
          Min3(PointDistance(a.back(), b.back()),
               a.gap_cost(a.size() - 1), b.gap_cost(b.size() - 1));
      endpoint = first + last;
    }
    lb = std::max(lb, endpoint);
  }
  return Shave(lb);
}

namespace {

/// Shared DP body with band pruning (the pruned-DTW idea of Silva &
/// Batista, adapted to the EGED/ERP recurrence). Identical arithmetic, in
/// identical order, to the reference EgedMetric (eged.cpp) for every cell
/// whose true value is <= tau — which is what makes a completed run return
/// the reference result bit-for-bit whenever the true distance is <= tau.
///
/// Band invariant: [pb, pe] spans every column of the previous row whose
/// computed value is <= tau; columns outside behave as +infinity. A cell
/// with true value <= tau draws its optimal predecessor from a cell with
/// value <= tau (edit costs are non-negative), which by induction lies
/// inside the band and is exact; the remaining candidates are >= their true
/// values, which are >= the optimal one, so the three-way min — and hence
/// the cell — is computed exactly (ties share the same value, so this holds
/// bitwise). Each row is scanned from pb and stops once it is both past
/// pe + 1 (no finite vertical/diagonal candidates remain) and above tau
/// (the horizontal chain only accumulates non-negative gap costs).
///
/// When a row ends with no cell <= tau, or the final cell falls outside the
/// last band, every path to (m, n) costs more than tau: the DP abandons and
/// returns nextafter(tau) — the smallest value that is both > tau and <= d
/// for any true distance d > tau.
double BoundedDp(const FlatSequence& a, const FlatSequence& b, double tau,
                 EgedWorkspace* ws, bool* abandoned) {
  const size_t m = a.size(), n = b.size();
  const double* agap = a.gap_costs();
  const double* bgap = b.gap_costs();
  const double* av = a.points();
  const double* bv = b.points();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  double* prev = nullptr;
  double* cur = nullptr;
  ws->Rows(n + 1, &prev, &cur);

  // First row accumulates non-negative gap costs, so its band is a prefix.
  prev[0] = 0.0;
  size_t pb = 0, pe = n;
  for (size_t j = 1; j <= n; ++j) {
    prev[j] = prev[j - 1] + bgap[j - 1];
    if (prev[j] > tau) {
      pe = j - 1;
      break;
    }
  }

  for (size_t i = 1; i <= m; ++i) {
    const double ga_i = agap[i - 1];
    const double* ai = av + (i - 1) * FlatSequence::kStride;
    size_t cb = n + 1;  // first column of this row's band
    size_t ce = 0;      // last column of this row's band
    double left;        // cur[j - 1], tracked in a register
    size_t j;
    auto note = [&](double v) {
      if (v <= tau) {
        if (cb > j) cb = j;
        ce = j;
      }
    };
    if (pb == 0) {
      left = prev[0] + ga_i;
      cur[0] = left;
      j = 0;
      note(left);
      j = 1;
    } else {
      // Columns left of pb have only +inf predecessors. At j = pb the
      // diagonal (prev[pb-1]) and horizontal (cur[pb-1]) candidates are
      // both +inf, so the cell reduces to the vertical deletion — no point
      // distance needed.
      j = pb;
      left = prev[pb] + ga_i;
      cur[pb] = left;
      note(left);
      j = pb + 1;
    }
    // In-band phase: all three predecessors lie inside the previous band.
    // Interior band cells can still individually exceed tau; when every
    // candidate already does, the cell can never re-enter the band — its
    // value is only ever read as "+inf by a successor", so the point
    // distance (and its sqrt) is skipped outright.
    for (; j <= pe; ++j) {
      const double diag = prev[j - 1];
      const double del_a = prev[j] + ga_i;
      const double del_b = left + bgap[j - 1];
      if (diag > tau && del_a > tau && del_b > tau) {
        cur[j] = kInf;
        left = kInf;
        continue;
      }
      const double* bj = bv + (j - 1) * FlatSequence::kStride;
      double s = 0.0;
      for (size_t k = 0; k < kFeatureDim; ++k) {
        const double dk = ai[k] - bj[k];
        s += dk * dk;
      }
      const double subst = diag + std::sqrt(s);
      double v = subst;
      if (del_a < v) v = del_a;
      if (del_b < v) v = del_b;
      cur[j] = v;
      left = v;
      note(v);
    }
    // Boundary column pe + 1: the vertical candidate (prev[pe+1]) is
    // outside the band, so the cell is min(subst, horizontal).
    if (j == pe + 1 && j <= n) {
      const double* bj = bv + (j - 1) * FlatSequence::kStride;
      double s = 0.0;
      for (size_t k = 0; k < kFeatureDim; ++k) {
        const double dk = ai[k] - bj[k];
        s += dk * dk;
      }
      const double subst = prev[j - 1] + std::sqrt(s);
      const double del_b = left + bgap[j - 1];
      double v = subst < del_b ? subst : del_b;
      cur[j] = v;
      left = v;
      note(v);
      ++j;
      // Horizontal tail: beyond pe + 1 every diagonal/vertical candidate is
      // +inf, so cells are just left + gap — no point distance, and the
      // chain only grows, so it stops at the first value above tau.
      for (; j <= n && left <= tau; ++j) {
        left += bgap[j - 1];
        cur[j] = left;
        note(left);
      }
    }
    if (cb > n) {
      *abandoned = true;
      return std::nextafter(tau, kInf);
    }
    pb = cb;
    pe = ce;
    std::swap(prev, cur);
  }
  if (pe == n) {
    *abandoned = false;
    return prev[n];
  }
  // The corner cell exceeded tau (or was never reached).
  *abandoned = true;
  return std::nextafter(tau, kInf);
}

/// Vector-tier twin of BoundedDp. Same band bookkeeping, but each row's
/// in-band region runs in two passes: a vectorized phase 1 computing
///   cur[j] = min(prev[j-1] + dist(a_i, b_j), prev[j] + ga)
/// through ops.eged_row (per-lane arithmetic in the scalar order, so phase-1
/// values are bitwise identical to the scalar candidates), then a scalar
/// phase 2 folding the loop-carried horizontal deletion
///   cur[j] = min(cur[j], cur[j-1] + bgap[j-1]).
/// min-reassociation is value-exact, so every in-band cell matches the
/// scalar min3 bitwise.
///
/// The one intentional divergence: the scalar loop skips the point distance
/// (writing +inf) when all three candidates already exceed tau, while the
/// vector path computes every in-band cell. Affected cells are > tau under
/// both schemes, so they are never `note`d — the band evolution, abandon
/// decisions, and every value the next row actually reads (indices
/// [pb, pe], all <= tau) stay identical, and so does the result.
double BoundedDpVec(const FlatSequence& a, const FlatSequence& b, double tau,
                    EgedWorkspace* ws, bool* abandoned,
                    const simd::KernelOps& ops) {
  const size_t m = a.size(), n = b.size();
  const double* agap = a.gap_costs();
  const double* bgap = b.gap_costs();
  const double* av = a.points();
  const double* bv = b.points();
  const double* bt = b.transposed();
  const size_t bstride = b.t_stride();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  double* prev = nullptr;
  double* cur = nullptr;
  ws->Rows(n + 1, &prev, &cur);

  prev[0] = 0.0;
  size_t pb = 0, pe = n;
  for (size_t j = 1; j <= n; ++j) {
    prev[j] = prev[j - 1] + bgap[j - 1];
    if (prev[j] > tau) {
      pe = j - 1;
      break;
    }
  }

  for (size_t i = 1; i <= m; ++i) {
    const double ga_i = agap[i - 1];
    const double* ai = av + (i - 1) * FlatSequence::kStride;
    size_t cb = n + 1;
    size_t ce = 0;
    double left;
    size_t j;
    auto note = [&](double v) {
      if (v <= tau) {
        if (cb > j) cb = j;
        ce = j;
      }
    };
    if (pb == 0) {
      left = prev[0] + ga_i;
      cur[0] = left;
      j = 0;
      note(left);
      j = 1;
    } else {
      j = pb;
      left = prev[pb] + ga_i;
      cur[pb] = left;
      note(left);
      j = pb + 1;
    }
    // Narrow rows are not worth the two-pass overhead (vector ramp-up plus
    // a second sweep): run the scalar single-pass body — including its
    // >tau cell-skip — below the width threshold. Both bodies produce
    // identical band evolution and identical noted values, so the adaptive
    // choice is invisible in the results.
    constexpr size_t kMinVecWidth = 12;
    if (j <= pe && pe - j + 1 >= kMinVecWidth) {
      // Phase 1 (vectorized), in place: cur[j] = min(subst, vertical).
      ops.eged_row(ai, bt, bstride, prev, ga_i, j, pe, cur);
      // Phase 2 (scalar): fold the horizontal chain.
      for (; j <= pe; ++j) {
        double v = cur[j];
        const double del_b = left + bgap[j - 1];
        if (del_b < v) v = del_b;
        cur[j] = v;
        left = v;
        note(v);
      }
    } else {
      for (; j <= pe; ++j) {
        const double diag = prev[j - 1];
        const double del_a = prev[j] + ga_i;
        const double del_b = left + bgap[j - 1];
        if (diag > tau && del_a > tau && del_b > tau) {
          cur[j] = kInf;
          left = kInf;
          continue;
        }
        const double* bj = bv + (j - 1) * FlatSequence::kStride;
        double s = 0.0;
        for (size_t k = 0; k < kFeatureDim; ++k) {
          const double dk = ai[k] - bj[k];
          s += dk * dk;
        }
        const double subst = diag + std::sqrt(s);
        double v = subst;
        if (del_a < v) v = del_a;
        if (del_b < v) v = del_b;
        cur[j] = v;
        left = v;
        note(v);
      }
    }
    if (j == pe + 1 && j <= n) {
      const double* bj = bv + (j - 1) * FlatSequence::kStride;
      double s = 0.0;
      for (size_t k = 0; k < kFeatureDim; ++k) {
        const double dk = ai[k] - bj[k];
        s += dk * dk;
      }
      const double subst = prev[j - 1] + std::sqrt(s);
      const double del_b = left + bgap[j - 1];
      double v = subst < del_b ? subst : del_b;
      cur[j] = v;
      left = v;
      note(v);
      ++j;
      for (; j <= n && left <= tau; ++j) {
        left += bgap[j - 1];
        cur[j] = left;
        note(left);
      }
    }
    if (cb > n) {
      *abandoned = true;
      return std::nextafter(tau, kInf);
    }
    pb = cb;
    pe = ce;
    std::swap(prev, cur);
  }
  if (pe == n) {
    *abandoned = false;
    return prev[n];
  }
  *abandoned = true;
  return std::nextafter(tau, kInf);
}

/// Wavefront twin of BoundedDp for the wide-band regime. Sweeps the DP
/// matrix by anti-diagonals: every cell of one diagonal depends only on the
/// previous two diagonals, so the eged_diag kernel evaluates whole cells —
/// distance, sqrt, and the three-way min — with NO loop-carried chain (the
/// chain that limits the row-split form to the latency of one add+min per
/// column). Each cell's expression tree is exactly the reference one, so
/// every cell value — evaluation order notwithstanding — is bitwise
/// identical to the full reference DP, and the final corner IS the exact
/// distance d.
///
/// Bounded-contract harmonization with BoundedDp: the scalar twin returns
/// the exact d whenever d <= tau (the corner is then computed exactly and
/// noted) and nextafter(tau) whenever d > tau (every computed cell is >=
/// its true value, so the corner can never be noted). Returning
/// d <= tau ? d : nextafter(tau) here therefore matches BoundedDp bitwise —
/// including the abandoned flag and hence the stats — at every tau.
double BoundedDpWavefront(const FlatSequence& a, const FlatSequence& b,
                          double tau, EgedWorkspace* ws, bool* abandoned,
                          const simd::KernelOps& ops,
                          const ReversedQuery& ra) {
  const size_t m = a.size(), n = b.size();
  const double* agap = a.gap_costs();
  const double* bgap = b.gap_costs();
  const double* bt = b.transposed();
  const size_t bstride = b.t_stride();
  const double* art = ra.t();
  const size_t astride = ra.stride();
  const double* argap = ra.gaps();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Three rolling anti-diagonals, indexed by column j.
  double* dm2 = nullptr;
  double* dm1 = nullptr;
  double* dd = nullptr;
  ws->Rows3(n + 1, &dm2, &dm1, &dd);

  // Diagonals 0 and 1 are pure boundary cells; the prefix accumulators run
  // in the same left-to-right order as the reference first row and column
  // (0.0 + x == x exactly, so seeding with the first gap is identical).
  dm2[0] = 0.0;              // cell (0, 0)
  double col_acc = agap[0];  // cell (1, 0)
  double row_acc = bgap[0];  // cell (0, 1)
  dm1[0] = col_acc;
  dm1[1] = row_acc;

  for (size_t d = 2; d <= m + n; ++d) {
    if (d <= m) {
      col_acc += agap[d - 1];
      dd[0] = col_acc;  // cell (d, 0)
    }
    if (d <= n) {
      row_acc += bgap[d - 1];
      dd[d] = row_acc;  // cell (0, d)
    }
    // Interior cells (i = d - j, j) for j in [jb, je]. Cell c of the kernel
    // is column j = jb + c; its a-side point a_{d-j} sits at column
    // m - (d - j) of the reversed mirror, which ascends with c.
    const size_t jb = d > m ? d - m : 1;
    const size_t je = std::min(n, d - 1);
    if (jb <= je) {
      const size_t t0 = jb + m - d;
      ops.eged_diag(art + t0, astride, bt + (jb - 1), bstride, argap + t0,
                    bgap + (jb - 1), dm2 + (jb - 1), dm1 + jb,
                    dm1 + (jb - 1), je - jb + 1, dd + jb);
    }
    double* tmp = dm2;
    dm2 = dm1;
    dm1 = dd;
    dd = tmp;
  }
  const double v = dm1[n];
  if (v <= tau) {
    *abandoned = false;
    return v;
  }
  *abandoned = true;
  return std::nextafter(tau, kInf);
}

/// Wavefront pays for all m*n cells, so it wins exactly when band pruning
/// cannot bite: tau at least both gap masses means the entire first row and
/// column start inside the band (their prefix sums are bounded by the
/// masses), the signature of the wide-band regime. tau = +inf (the exact
/// kernel) always qualifies. Tiny sequences stay on the row path, whose
/// per-row overhead is lower.
inline bool WavefrontProfitable(const FlatSequence& a, const FlatSequence& b,
                                double tau) {
  if (a.size() < 4 || b.size() < 4) return false;
  return a.gap_mass() <= tau && b.gap_mass() <= tau;
}

/// Routes one bounded DP through the active tier's kernel. The scalar tier
/// keeps the original single-pass loop (its >tau cell-skip saves sqrts that
/// the two-pass form cannot); vector tiers take the chain-free wavefront in
/// the wide-band regime and the banded two-pass twin otherwise. All three
/// produce bitwise-identical results at every tau, so routing is purely a
/// speed decision.
inline double BoundedDpDispatch(const FlatSequence& a, const FlatSequence& b,
                                double tau, EgedWorkspace* ws,
                                bool* abandoned, const simd::KernelOps& ops,
                                const ReversedQuery* rev = nullptr) {
  if (ops.tier == simd::Tier::kScalar) {
    return BoundedDp(a, b, tau, ws, abandoned);
  }
  if (WavefrontProfitable(a, b, tau)) {
    if (rev == nullptr) {
      ws->ReversedScratch().Assign(a);
      rev = &ws->ReversedScratch();
    }
    return BoundedDpWavefront(a, b, tau, ws, abandoned, ops, *rev);
  }
  return BoundedDpVec(a, b, tau, ws, abandoned, ops);
}

}  // namespace

double EgedMetricFlat(const FlatSequence& a, const FlatSequence& b,
                      EgedWorkspace* ws) {
  if (a.empty()) return b.gap_mass();
  if (b.empty()) return a.gap_mass();
  bool abandoned = false;
  return BoundedDpDispatch(a, b, std::numeric_limits<double>::infinity(), ws,
                           &abandoned, simd::ActiveOps());
}

double EgedMetricBounded(const FlatSequence& a, const FlatSequence& b,
                         double tau, EgedWorkspace* ws,
                         EgedKernelStats* stats) {
  if (a.empty() || b.empty()) {
    if (stats != nullptr) ++stats->dp_evals;
    return a.empty() ? b.gap_mass() : a.gap_mass();
  }
  if (tau < std::numeric_limits<double>::infinity()) {
    const double lb = EgedLowerBound(a, b);
    if (lb > tau) {
      if (stats != nullptr) ++stats->lb_prunes;
      return lb;
    }
  }
  if (stats != nullptr) ++stats->dp_evals;
  bool abandoned = false;
  const double v =
      BoundedDpDispatch(a, b, tau, ws, &abandoned, simd::ActiveOps());
  if (abandoned && stats != nullptr) ++stats->early_abandons;
  return v;
}

void EgedBatchBounded(const FlatSequence& query,
                      const FlatSequence* const* candidates,
                      const double* taus, size_t n, double* out,
                      EgedWorkspace* ws, EgedKernelStats* stats) {
  // The dispatch table and the query's flat rows are resolved/touched once;
  // each iteration is then the exact EgedMetricBounded body, so values and
  // stats match the one-at-a-time path bitwise. The reversed-query mirror
  // the wavefront route needs is likewise built once for the whole batch.
  const simd::KernelOps& ops = simd::ActiveOps();
  constexpr double kInfinity = std::numeric_limits<double>::infinity();
  const ReversedQuery* rev = nullptr;
  if (ops.tier != simd::Tier::kScalar && !query.empty()) {
    ws->ReversedScratch().Assign(query);
    rev = &ws->ReversedScratch();
  }
  for (size_t i = 0; i < n; ++i) {
    const FlatSequence& b = *candidates[i];
    const double tau = taus[i];
    if (query.empty() || b.empty()) {
      if (stats != nullptr) ++stats->dp_evals;
      out[i] = query.empty() ? b.gap_mass() : query.gap_mass();
      continue;
    }
    if (tau < kInfinity) {
      const double lb = EgedLowerBound(query, b);
      if (lb > tau) {
        if (stats != nullptr) ++stats->lb_prunes;
        out[i] = lb;
        continue;
      }
    }
    if (stats != nullptr) ++stats->dp_evals;
    bool abandoned = false;
    out[i] = BoundedDpDispatch(query, b, tau, ws, &abandoned, ops, rev);
    if (abandoned && stats != nullptr) ++stats->early_abandons;
  }
}

void EgedLowerBoundBatch(const FlatSequence& query,
                         const FlatSequence* const* candidates, size_t n,
                         double* out) {
  // Query-side terms hoisted; per candidate the operations replicate
  // EgedLowerBound in the same order, so out[i] matches it bitwise.
  const double q_mass = query.gap_mass();
  const bool q_empty = query.empty();
  const FeatureVec& q_front = query.front();
  const FeatureVec& q_back = query.back();
  const double q_gap_first = q_empty ? 0.0 : query.gap_cost(0);
  const double q_gap_last = q_empty ? 0.0 : query.gap_cost(query.size() - 1);
  const bool q_long = query.size() >= 2;
  for (size_t i = 0; i < n; ++i) {
    const FlatSequence& b = *candidates[i];
    double lb = std::fabs(q_mass - b.gap_mass());
    if (!q_empty && !b.empty()) {
      const double first =
          Min3(PointDistance(q_front, b.front()), q_gap_first, b.gap_cost(0));
      double endpoint = first;
      if (q_long || b.size() >= 2) {
        const double last = Min3(PointDistance(q_back, b.back()), q_gap_last,
                                 b.gap_cost(b.size() - 1));
        endpoint = first + last;
      }
      lb = std::max(lb, endpoint);
    }
    out[i] = Shave(lb);
  }
}

double EgedMetricFast(const Sequence& a, const Sequence& b,
                      const FeatureVec& g) {
  TlsFlatScratch& scratch = ThreadLocalFlats();
  scratch.a.Assign(a, g);
  scratch.b.Assign(b, g);
  return EgedMetricFlat(scratch.a, scratch.b, &ThreadLocalEgedWorkspace());
}

double EgedMetricBoundedSeq(const Sequence& a, const Sequence& b, double tau,
                            const FeatureVec& g) {
  TlsFlatScratch& scratch = ThreadLocalFlats();
  scratch.a.Assign(a, g);
  scratch.b.Assign(b, g);
  return EgedMetricBounded(scratch.a, scratch.b, tau,
                           &ThreadLocalEgedWorkspace());
}

}  // namespace strg::dist
