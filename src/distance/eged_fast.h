#ifndef STRG_DISTANCE_EGED_FAST_H_
#define STRG_DISTANCE_EGED_FAST_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "distance/sequence.h"
#include "distance/simd/dispatch.h"

namespace strg::dist {

/// Flat structure-of-arrays form of a Sequence, prepared once against a
/// fixed gap point `g` so the metric EGED DP (Theorem 2 / ERP) pays one
/// PointDistance per cell and zero allocations per call.
///
/// Layout: `point(i)` is the contiguous coordinate block of point i, padded
/// from kFeatureDim (= 6) to simd::kPaddedDim (= 8) doubles with zeros so a
/// vector tier loads whole points without masking; `transposed()` is a
/// dim-major mirror (kFeatureDim rows of size() columns) that gives the DP
/// row kernels contiguous loads across consecutive columns. Alongside the
/// coordinates the flat form precomputes what the O(m+n) lower-bound
/// cascade needs: per-point gap costs d(x_i, g) (computed through the
/// dispatched point_distance_batch kernel — bit-identical at every tier),
/// their running total (the "gap mass" EGED_M(x, {})), and the endpoint
/// vectors.
class FlatSequence {
 public:
  /// Point-major stride in doubles (pads are zero-filled).
  static constexpr size_t kStride = simd::kPaddedDim;

  FlatSequence() = default;
  FlatSequence(const Sequence& seq, const FeatureVec& g) { Assign(seq, g); }

  /// Rebuilds the flat form in place, reusing capacity (the per-call
  /// flattening path of EgedMetricDistance runs on thread-local instances).
  void Assign(const Sequence& seq, const FeatureVec& g);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const double* points() const { return values_.data(); }
  const double* point(size_t i) const { return values_.data() + i * kStride; }
  /// Dim-major mirror: row k holds coordinate k of every point, so
  /// transposed()[k * t_stride() + j] == point(j)[k].
  const double* transposed() const { return transposed_.data(); }
  size_t t_stride() const { return size_; }
  const double* gap_costs() const { return gap_costs_.data(); }
  double gap_cost(size_t i) const { return gap_costs_[i]; }
  /// EGED_M(x, {}) — the cost of deleting the whole sequence against g,
  /// accumulated left-to-right exactly like the DP's first row/column.
  double gap_mass() const { return gap_mass_; }
  const FeatureVec& front() const { return front_; }
  const FeatureVec& back() const { return back_; }

 private:
  size_t size_ = 0;
  std::vector<double> values_;      ///< kStride * size_, point-major, padded
  std::vector<double> transposed_;  ///< kFeatureDim * size_, dim-major
  std::vector<double> gap_costs_;   ///< d(x_i, g) per point
  double gap_mass_ = 0.0;
  FeatureVec front_{};
  FeatureVec back_{};
};

/// Reversed dim-major mirror of a query sequence, built once per query (or
/// per batch) for the wavefront DP: row k column c holds coordinate k of
/// point size-1-c, and gaps()[c] is that point's gap cost. Reversing the
/// QUERY side is what makes both operand streams of an anti-diagonal load
/// contiguously ascending (the b side ascends in j, the a side descends —
/// which is ascending in the reversed mirror).
class ReversedQuery {
 public:
  void Assign(const FlatSequence& a);
  const double* t() const { return t_.data(); }
  size_t stride() const { return size_; }
  const double* gaps() const { return gaps_.data(); }
  size_t size() const { return size_; }

 private:
  size_t size_ = 0;
  std::vector<double> t_;     ///< kFeatureDim rows of size_ reversed columns
  std::vector<double> gaps_;  ///< gaps_[c] = gap cost of point size_-1-c
};

/// Reusable DP rows for the metric EGED kernel. One per thread (see
/// ThreadLocalEgedWorkspace) makes every kernel call allocation-free once
/// the high-water column count has been reached.
class EgedWorkspace {
 public:
  /// Returns two row buffers of at least `cols` doubles each.
  void Rows(size_t cols, double** prev, double** cur) {
    if (row0_.size() < cols) {
      row0_.resize(cols);
      row1_.resize(cols);
      row2_.resize(cols);
    }
    *prev = row0_.data();
    *cur = row1_.data();
  }

  /// Rows plus the phase-1 staging buffer the vector DP uses for
  /// t[j] = min(diag + dist, vertical) before the scalar horizontal fold.
  /// The wavefront DP reuses the same three buffers as its rolling
  /// anti-diagonals.
  void Rows3(size_t cols, double** prev, double** cur, double** stage) {
    Rows(cols, prev, cur);
    *stage = row2_.data();
  }

  /// Per-workspace reversed-query scratch for the wavefront DP (built
  /// lazily by single-shot calls; batch callers assign it once up front).
  ReversedQuery& ReversedScratch() { return rev_; }

 private:
  std::vector<double> row0_, row1_, row2_;
  ReversedQuery rev_;
};

/// Per-thread workspace (and flat scratch) used by the Sequence-interface
/// fast paths; safe because kernels never call back into user code.
EgedWorkspace& ThreadLocalEgedWorkspace();

/// Outcome counters for the bounded kernel, accumulated across calls.
/// `dp_evals` counts kernels that entered the DP (full or abandoned) — the
/// quantity the paper reports as "distance computations"; `lb_prunes`
/// counts calls answered by the O(m+n) cascade without any DP;
/// `early_abandons` counts DPs truncated once every cell of a row exceeded
/// tau.
struct EgedKernelStats {
  uint64_t dp_evals = 0;
  uint64_t lb_prunes = 0;
  uint64_t early_abandons = 0;
};

/// O(m+n) lower bound on EgedMetric(a, b) for flat forms built against the
/// same gap point. Max of
///  - the gap-mass bound |EGED_M(a, {}) - EGED_M(b, {})| (triangle
///    inequality of the metric against the empty sequence), and
///  - the endpoint bound: any alignment's first edit op consumes a_1 or b_1
///    (cost >= min(d(a1, b1), d(a1, g), d(b1, g))) and, when max(m, n) >= 2,
///    its distinct last op likewise pays for a_m or b_n.
/// Shaved by a ~1e-12 relative margin so floating-point rounding can never
/// push the bound above the exact DP value.
double EgedLowerBound(const FlatSequence& a, const FlatSequence& b);

/// Exact metric EGED over flat forms: numerically identical (same
/// operations in the same order) to EgedMetric on the originating
/// sequences, with zero allocations beyond the workspace.
double EgedMetricFlat(const FlatSequence& a, const FlatSequence& b,
                      EgedWorkspace* ws);

/// Bounded metric EGED. Contract:
///  - whenever the true distance d satisfies d <= tau, returns exactly the
///    value EgedMetric would return;
///  - otherwise it may stop early (lower-bound cascade, or abandoning the
///    DP once a whole row exceeds tau) and return some v with
///    tau < v <= d — still a valid lower bound, and proof the candidate
///    cannot beat tau.
/// tau = +infinity degenerates to the exact kernel. `stats` (optional)
/// accrues prune/abandon accounting.
double EgedMetricBounded(const FlatSequence& a, const FlatSequence& b,
                         double tau, EgedWorkspace* ws,
                         EgedKernelStats* stats = nullptr);

/// Batched one-query-vs-many-candidates bounded kernel. For each i,
/// out[i] is bitwise identical — and `stats` accrues identically — to
/// EgedMetricBounded(query, *candidates[i], taus[i], ws, stats); the win is
/// amortization: the query's rows/gap-costs stay hot in cache and the
/// dispatch/workspace lookups happen once. Allocation-free after the
/// workspace high-water mark (proven by bench_distance's operator-new
/// harness).
void EgedBatchBounded(const FlatSequence& query,
                      const FlatSequence* const* candidates,
                      const double* taus, size_t n, double* out,
                      EgedWorkspace* ws, EgedKernelStats* stats = nullptr);

/// Batched lower-bound cascade: out[i] is bitwise identical to
/// EgedLowerBound(query, *candidates[i]), with the query-side terms hoisted
/// out of the loop (the k-NN cluster-queue seeding path).
void EgedLowerBoundBatch(const FlatSequence& query,
                         const FlatSequence* const* candidates, size_t n,
                         double* out);

/// Sequence-interface conveniences: flatten into thread-local scratch and
/// run the flat kernels. Exact-same values as EgedMetric(a, b, g), without
/// its four heap allocations per call.
double EgedMetricFast(const Sequence& a, const Sequence& b,
                      const FeatureVec& g = FeatureVec{});
double EgedMetricBoundedSeq(const Sequence& a, const Sequence& b, double tau,
                            const FeatureVec& g = FeatureVec{});

}  // namespace strg::dist

#endif  // STRG_DISTANCE_EGED_FAST_H_
