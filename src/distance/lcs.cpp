#include "distance/lcs.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace strg::dist {

size_t LcsLength(const Sequence& a, const Sequence& b, double epsilon) {
  const size_t m = a.size(), n = b.size();
  std::vector<size_t> prev(n + 1, 0), cur(n + 1, 0);
  for (size_t i = 1; i <= m; ++i) {
    for (size_t j = 1; j <= n; ++j) {
      if (PointDistance(a[i - 1], b[j - 1]) <= epsilon) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

double LcsDistanceValue(const Sequence& a, const Sequence& b, double epsilon) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("Lcs: empty sequence");
  }
  size_t lcs = LcsLength(a, b, epsilon);
  size_t denom = std::min(a.size(), b.size());
  return 1.0 - static_cast<double>(lcs) / static_cast<double>(denom);
}

}  // namespace strg::dist
