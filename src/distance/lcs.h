#ifndef STRG_DISTANCE_LCS_H_
#define STRG_DISTANCE_LCS_H_

#include "distance/distance.h"

namespace strg::dist {

/// Longest Common Subsequence length for real-valued sequences [7, 28]:
/// two points "match" when their distance is at most epsilon.
size_t LcsLength(const Sequence& a, const Sequence& b, double epsilon);

/// LCS dissimilarity: 1 - LCS / min(m, n), in [0, 1]. One of the baselines
/// of Figures 5 and 6. Non-metric.
double LcsDistanceValue(const Sequence& a, const Sequence& b, double epsilon);

class LcsDistance final : public SequenceDistance {
 public:
  explicit LcsDistance(double epsilon = 1.0) : epsilon_(epsilon) {}
  double operator()(const Sequence& a, const Sequence& b) const override {
    return LcsDistanceValue(a, b, epsilon_);
  }
  std::string Name() const override { return "LCS"; }

 private:
  double epsilon_;
};

}  // namespace strg::dist

#endif  // STRG_DISTANCE_LCS_H_
