#include "distance/lp.h"

#include <cmath>
#include <stdexcept>

namespace strg::dist {

double LpDistanceValue(const Sequence& a, const Sequence& b, double p) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("Lp: empty sequence");
  }
  if (p < 1.0) throw std::invalid_argument("Lp: p must be >= 1");
  const Sequence* pa = &a;
  const Sequence* pb = &b;
  Sequence ra, rb;
  if (a.size() != b.size()) {
    size_t len = std::min(a.size(), b.size());
    ra = Resample(a, len);
    rb = Resample(b, len);
    pa = &ra;
    pb = &rb;
  }
  double sum = 0.0;
  for (size_t i = 0; i < pa->size(); ++i) {
    for (size_t k = 0; k < kFeatureDim; ++k) {
      sum += std::pow(std::fabs((*pa)[i][k] - (*pb)[i][k]), p);
    }
  }
  return std::pow(sum, 1.0 / p);
}

}  // namespace strg::dist
