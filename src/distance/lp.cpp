#include "distance/lp.h"

#include <cmath>
#include <stdexcept>

namespace strg::dist {

double LpDistanceValue(const Sequence& a, const Sequence& b, double p) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("Lp: empty sequence");
  }
  if (p < 1.0) throw std::invalid_argument("Lp: p must be >= 1");
  const Sequence* pa = &a;
  const Sequence* pb = &b;
  Sequence ra, rb;
  if (a.size() != b.size()) {
    size_t len = std::min(a.size(), b.size());
    ra = Resample(a, len);
    rb = Resample(b, len);
    pa = &ra;
    pb = &rb;
  }
  // Deliberately pinned to the scalar kernel at every dispatch tier: the
  // single running accumulator spans all points and dims, so any lane split
  // would reassociate the adds and change low-order bits, and std::pow has
  // no correctly-rounded vector form. The tier-equivalence tests cover Lp
  // as a guard that this stays true.
  double sum = 0.0;
  for (size_t i = 0; i < pa->size(); ++i) {
    for (size_t k = 0; k < kFeatureDim; ++k) {
      sum += std::pow(std::fabs((*pa)[i][k] - (*pb)[i][k]), p);
    }
  }
  return std::pow(sum, 1.0 / p);
}

}  // namespace strg::dist
