#ifndef STRG_DISTANCE_LP_H_
#define STRG_DISTANCE_LP_H_

#include "distance/distance.h"

namespace strg::dist {

/// L_p norm between two sequences. Traditional distance functions require
/// equal lengths; unequal-length inputs are linearly resampled to the
/// shorter length first (the standard workaround the paper alludes to when
/// calling L_p-norms "not optimal" for video units).
///
/// p >= 1; p = 2 is Euclidean. Metric for aligned lengths.
double LpDistanceValue(const Sequence& a, const Sequence& b, double p);

class LpDistance final : public SequenceDistance {
 public:
  explicit LpDistance(double p = 2.0) : p_(p) {}
  double operator()(const Sequence& a, const Sequence& b) const override {
    return LpDistanceValue(a, b, p_);
  }
  std::string Name() const override { return p_ == 2.0 ? "L2" : "Lp"; }

 private:
  double p_;
};

}  // namespace strg::dist

#endif  // STRG_DISTANCE_LP_H_
