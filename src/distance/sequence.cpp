#include "distance/sequence.h"

#include <algorithm>
#include <stdexcept>

namespace strg::dist {

FeatureVec FeatureScaling::Map(const graph::NodeAttr& attr) const {
  FeatureVec v;
  double area = frame_width * frame_height;
  v[0] = size_weight * 10.0 * std::sqrt(std::max(attr.size, 0.0) / area);
  for (size_t c = 0; c < 3; ++c) {
    v[1 + c] = color_weight * 10.0 * (attr.color[c] / 255.0);
  }
  v[4] = position_weight * 10.0 * (attr.cx / frame_width);
  v[5] = position_weight * 10.0 * (attr.cy / frame_height);
  return v;
}

Sequence OgToSequence(const core::Og& og, const FeatureScaling& scaling) {
  Sequence seq;
  seq.reserve(og.sequence.size());
  for (const graph::NodeAttr& attr : og.sequence) {
    seq.push_back(scaling.Map(attr));
  }
  return seq;
}

Sequence Resample(const Sequence& seq, size_t length) {
  if (seq.empty()) throw std::invalid_argument("Resample: empty sequence");
  if (length == 0) throw std::invalid_argument("Resample: zero length");
  Sequence out(length);
  if (seq.size() == 1) {
    for (auto& v : out) v = seq[0];
    return out;
  }
  if (length == 1) {
    out[0] = seq[seq.size() / 2];
    return out;
  }
  double step = static_cast<double>(seq.size() - 1) /
                static_cast<double>(length - 1);
  for (size_t i = 0; i < length; ++i) {
    double pos = step * static_cast<double>(i);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, seq.size() - 1);
    double frac = pos - static_cast<double>(lo);
    for (size_t k = 0; k < kFeatureDim; ++k) {
      out[i][k] = seq[lo][k] * (1.0 - frac) + seq[hi][k] * frac;
    }
  }
  return out;
}

}  // namespace strg::dist
