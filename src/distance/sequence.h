#ifndef STRG_DISTANCE_SEQUENCE_H_
#define STRG_DISTANCE_SEQUENCE_H_

#include <array>
#include <cmath>
#include <cstddef>
#include <vector>

#include "strg/object_graph.h"

namespace strg::dist {

/// Per-node feature vector an OG contributes at each frame. Definition 9
/// writes |v_i - v_j| for node attribute values; we realize the attribute
/// value nu(v) as this fixed-dimension vector and |.| as the Euclidean norm.
///
/// Layout: [0] normalized sqrt-size, [1..3] scaled RGB, [4] scaled centroid
/// x, [5] scaled centroid y.
constexpr size_t kFeatureDim = 6;
using FeatureVec = std::array<double, kFeatureDim>;

/// An OG as a time series of feature vectors — the representation consumed
/// by every distance function, the clustering layer, and both indexes.
using Sequence = std::vector<FeatureVec>;

/// Euclidean norm of a feature vector.
inline double Norm(const FeatureVec& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

/// Euclidean distance between two feature vectors (the |v_i - v_j| of
/// Definition 9).
inline double PointDistance(const FeatureVec& a, const FeatureVec& b) {
  double s = 0.0;
  for (size_t k = 0; k < kFeatureDim; ++k) {
    double d = a[k] - b[k];
    s += d * d;
  }
  return std::sqrt(s);
}

inline FeatureVec Midpoint(const FeatureVec& a, const FeatureVec& b) {
  FeatureVec m;
  for (size_t k = 0; k < kFeatureDim; ++k) m[k] = 0.5 * (a[k] + b[k]);
  return m;
}

/// Maps raw region attributes (pixels, 0-255 colors) into comparable
/// feature scales. Position dominates by default because the paper's
/// synthetic clusters are moving *patterns*; weights are configurable for
/// ablations.
struct FeatureScaling {
  double frame_width = 80.0;
  double frame_height = 60.0;
  double position_weight = 1.0;  ///< centroid mapped to [0, 10] * weight
  double size_weight = 1.0;      ///< sqrt(area ratio) mapped to [0, 10] * w
  /// Color is deliberately down-weighted: two objects following the same
  /// moving pattern usually have unrelated colors (a red and a blue car in
  /// the same lane), so color acts as nuisance variance for pattern-level
  /// clustering while still breaking ties between co-located patterns.
  double color_weight = 0.02;

  FeatureVec Map(const graph::NodeAttr& attr) const;
};

/// Converts an OG into its feature sequence.
Sequence OgToSequence(const core::Og& og, const FeatureScaling& scaling);

/// Linearly resamples a sequence to `length` points (length >= 1). Used for
/// centroid-OG synthesis where member sequences have different durations.
Sequence Resample(const Sequence& seq, size_t length);

}  // namespace strg::dist

#endif  // STRG_DISTANCE_SEQUENCE_H_
