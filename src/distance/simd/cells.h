#ifndef STRG_DISTANCE_SIMD_CELLS_H_
#define STRG_DISTANCE_SIMD_CELLS_H_

// Shared scalar cell helpers. The scalar tier is built from these, and the
// vector tiers use them for remainder columns, so every tier's tail lanes
// are literally the same code — one place to audit the operation order.

#include <cmath>
#include <cstddef>

#include "distance/simd/dispatch.h"

namespace strg::dist::simd {

// Must equal strg::dist::kFeatureDim; asserted in eged_fast.cpp. Duplicated
// here so the simd layer stays free of the graph headers.
inline constexpr std::size_t kCellDim = 6;

// Euclidean distance between two point rows. Accumulates the 6 dims in
// ascending order — this IS the canonical order every tier must reproduce
// per vector lane (matches dist::PointDistance in sequence.h).
inline double PointDistCell(const double* a, const double* b) {
  double s = 0.0;
  for (std::size_t k = 0; k < kCellDim; ++k) {
    const double d = a[k] - b[k];
    s += d * d;
  }
  return std::sqrt(s);
}

// Same, reading point `col` of a dim-major transposed mirror.
inline double TransposedDistCell(const double* ai, const double* bt,
                                 std::size_t stride, std::size_t col) {
  double s = 0.0;
  for (std::size_t k = 0; k < kCellDim; ++k) {
    const double d = ai[k] - bt[k * stride + col];
    s += d * d;
  }
  return std::sqrt(s);
}

// EGED phase-1 cell: min(substitution, delete-from-a). The horizontal
// delete-from-b chain is folded by the caller.
inline double EgedCell(const double* ai, const double* bt, std::size_t stride,
                       const double* prev, double ga, std::size_t j) {
  const double subst = prev[j - 1] + TransposedDistCell(ai, bt, stride, j - 1);
  const double del_a = prev[j] + ga;
  return del_a < subst ? del_a : subst;
}

// EGED anti-diagonal cell: the full three-way min in the scalar candidate
// order (substitution, delete-from-a, delete-from-b). Both mirrors are
// pre-offset by the caller; see KernelOps::eged_diag.
inline double EgedDiagCell(const double* at, std::size_t at_stride,
                           const double* bt, std::size_t bt_stride,
                           const double* ga, const double* bg,
                           const double* diag, const double* up,
                           const double* left, std::size_t c) {
  double s = 0.0;
  for (std::size_t k = 0; k < kCellDim; ++k) {
    const double d = at[k * at_stride + c] - bt[k * bt_stride + c];
    s += d * d;
  }
  const double subst = diag[c] + std::sqrt(s);
  const double del_a = up[c] + ga[c];
  const double del_b = left[c] + bg[c];
  double v = subst;
  if (del_a < v) v = del_a;
  if (del_b < v) v = del_b;
  return v;
}

// DTW phase-1 cell: stash the cost and the vertical/diagonal min.
inline void DtwCell(const double* ai, const double* bt, std::size_t stride,
                    const double* prev, std::size_t j, double* t, double* d) {
  d[j] = TransposedDistCell(ai, bt, stride, j - 1);
  const double p1 = prev[j - 1];
  const double p2 = prev[j];
  t[j] = p2 < p1 ? p2 : p1;
}

// EDR phase-1 cell. Compares the sqrt'd distance against epsilon — the
// squared-form comparison differs at boundary ULPs and is forbidden.
inline double EdrCell(const double* ai, const double* bt, std::size_t stride,
                      const double* prev, double eps, std::size_t j) {
  const double sub =
      TransposedDistCell(ai, bt, stride, j - 1) <= eps ? 0.0 : 1.0;
  const double diag = prev[j - 1] + sub;
  const double up = prev[j] + 1.0;
  return up < diag ? up : diag;
}

}  // namespace strg::dist::simd

#endif  // STRG_DISTANCE_SIMD_CELLS_H_
