#include "distance/simd/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "distance/simd/kernels.h"

namespace strg::dist::simd {
namespace {

bool HostSupports(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
#if defined(STRG_SIMD_HAVE_AVX2) && (defined(__x86_64__) || defined(_M_X64))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Tier::kNeon:
#if defined(STRG_SIMD_HAVE_NEON)
      return true;  // NEON is aarch64 baseline.
#else
      return false;
#endif
  }
  return false;
}

// Resolves the startup tier: detected best, unless the environment pins one.
const KernelOps* InitialOps() {
  Tier tier = DetectedTier();
  const char* force_scalar = std::getenv("STRG_FORCE_SCALAR");
  if (force_scalar != nullptr && std::strcmp(force_scalar, "1") == 0) {
    tier = Tier::kScalar;
  } else if (const char* name = std::getenv("STRG_SIMD_TIER")) {
    Tier want = tier;
    bool known = true;
    if (std::strcmp(name, "scalar") == 0) {
      want = Tier::kScalar;
    } else if (std::strcmp(name, "avx2") == 0) {
      want = Tier::kAvx2;
    } else if (std::strcmp(name, "neon") == 0) {
      want = Tier::kNeon;
    } else {
      known = false;
    }
    if (known && HostSupports(want)) {
      tier = want;
    } else {
      std::fprintf(stderr,
                   "strg: STRG_SIMD_TIER=%s unavailable on this host/build; "
                   "using %s\n",
                   name, TierName(tier));
    }
  }
  return OpsForTier(tier);
}

std::atomic<const KernelOps*> g_active{nullptr};

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kNeon:
      return "neon";
  }
  return "unknown";
}

Tier DetectedTier() {
  if (HostSupports(Tier::kAvx2)) return Tier::kAvx2;
  if (HostSupports(Tier::kNeon)) return Tier::kNeon;
  return Tier::kScalar;
}

const KernelOps* OpsForTier(Tier tier) {
  if (!HostSupports(tier)) return nullptr;
  switch (tier) {
    case Tier::kScalar:
      return &ScalarOps();
    case Tier::kAvx2:
#if defined(STRG_SIMD_HAVE_AVX2)
      return &Avx2Ops();
#else
      return nullptr;
#endif
    case Tier::kNeon:
#if defined(STRG_SIMD_HAVE_NEON)
      return &NeonOps();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const KernelOps& ActiveOps() {
  const KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // Benign race: concurrent first calls compute the same pointer.
    ops = InitialOps();
    const KernelOps* expected = nullptr;
    if (!g_active.compare_exchange_strong(expected, ops,
                                          std::memory_order_acq_rel)) {
      ops = expected;
    }
  }
  return *ops;
}

Tier ActiveTier() { return ActiveOps().tier; }

bool ForceTier(Tier tier) {
  const KernelOps* ops = OpsForTier(tier);
  if (ops == nullptr) return false;
  g_active.store(ops, std::memory_order_release);
  return true;
}

}  // namespace strg::dist::simd
