#ifndef STRG_DISTANCE_SIMD_DISPATCH_H_
#define STRG_DISTANCE_SIMD_DISPATCH_H_

// Runtime-dispatched vector kernels for the distance layer.
//
// Design contract: every tier produces BIT-IDENTICAL results to the scalar
// reference on the exact paths. This works because the kernels only
// vectorize ACROSS independent DP columns (lanes), while each lane performs
// the per-cell arithmetic in exactly the scalar operation order; min() is
// reassociation-exact for non-NaN doubles and vector sqrt is IEEE correctly
// rounded, so no rounding ever differs. FP contraction (FMA) would break
// this, which is why the build pins -ffp-contract=off on this library and
// -mno-fma on the AVX2 translation unit (see src/distance/CMakeLists.txt).
//
// This header is dependency-free on purpose: it is included by bench and
// tooling code that must not drag in the graph types.

#include <cstddef>

namespace strg::dist::simd {

// Feature points are kFeatureDim (= 6) doubles; flat sequence forms pad each
// point to this stride so vector tiers can load whole points (and 4-column
// slabs of the transposed mirror) without masking. Pad lanes are zero.
inline constexpr std::size_t kPaddedDim = 8;

enum class Tier : int {
  kScalar = 0,  // portable reference, always available
  kAvx2 = 1,    // x86-64, 4 doubles/lane group, requires AVX2 (FMA unused)
  kNeon = 2,    // aarch64 baseline, 2 doubles/lane group
};

const char* TierName(Tier tier);

// Function-pointer table for one dispatch tier. All row kernels read the
// second sequence through its dim-major transposed mirror (`bt`, row stride
// `bt_stride` = sequence length) so column loads are contiguous, and read
// the current first-sequence point `ai` as >= 6 contiguous doubles.
struct KernelOps {
  Tier tier;

  // out[i] = EuclideanPointDistance(q, pts + i*kPaddedDim) for i in [0, n).
  // `q` is >= 6 contiguous doubles; `pts` is point-major with kPaddedDim
  // stride and zeroed pads.
  void (*point_distance_batch)(const double* q, const double* pts,
                               std::size_t n, double* out);

  // EGED/ERP row fragment, phase 1 of the two-pass recurrence:
  //   t[j] = min(prev[j-1] + dist(ai, b_{j-1}), prev[j] + ga)
  // for j in [jb, je] (inclusive). The loop-carried horizontal deletion
  // (cur[j-1] + bgap) is folded by the caller in a scalar pass; the split
  // is value-exact because min is associative on the candidate set.
  void (*eged_row)(const double* ai, const double* bt, std::size_t bt_stride,
                   const double* prev, double ga, std::size_t jb,
                   std::size_t je, double* t);

  // DTW row, phase 1: d[j] = dist(ai, b_{j-1}); t[j] = min(prev[j-1],
  // prev[j]) for j in [1, n]. Caller folds cur[j-1] and adds d[j].
  void (*dtw_row)(const double* ai, const double* bt, std::size_t bt_stride,
                  const double* prev, std::size_t n, double* t, double* d);

  // EDR row, phase 1:
  //   t[j] = min(prev[j-1] + (dist(ai, b_{j-1}) <= eps ? 0 : 1),
  //              prev[j] + 1)
  // for j in [1, n]. The epsilon test compares the sqrt'd distance (not the
  // squared form) so boundary ULPs match the scalar reference exactly.
  void (*edr_row)(const double* ai, const double* bt, std::size_t bt_stride,
                  const double* prev, double eps, std::size_t n, double* t);

  // EGED anti-diagonal fragment (the wavefront DP): for c in [0, count),
  //   out[c] = min3(diag[c] + dist(a-col c, b-col c),
  //                 up[c]   + ga[c],
  //                 left[c] + bg[c])
  // with the min taken in the scalar candidate order (substitution, then
  // delete-from-a, then delete-from-b). Cells on one anti-diagonal have NO
  // dependency on each other — this is the kernel that removes the
  // loop-carried horizontal chain entirely. `at` and `bt` are dim-major
  // mirrors pre-offset by the caller so column c of each addresses the
  // (a_i, b_j) pair of diagonal cell c (the a-side mirror is reversed, which
  // is what makes its columns ascend along the diagonal); every other
  // pointer is likewise pre-offset.
  void (*eged_diag)(const double* at, std::size_t at_stride, const double* bt,
                    std::size_t bt_stride, const double* ga, const double* bg,
                    const double* diag, const double* up, const double* left,
                    std::size_t count, double* out);
};

// The table selected at first use: best host tier, unless overridden by
// STRG_FORCE_SCALAR=1 or STRG_SIMD_TIER=scalar|avx2|neon (unavailable
// requests warn on stderr and fall back to the detected tier).
const KernelOps& ActiveOps();
Tier ActiveTier();

// Best tier the host + build supports, ignoring env overrides.
Tier DetectedTier();

// Table for an explicit tier; nullptr when that tier is not compiled in or
// the host cannot execute it.
const KernelOps* OpsForTier(Tier tier);

// Swaps the active table (tests, strgtool simd). Returns false and leaves
// the active tier unchanged when the tier is unavailable. Not meant to race
// with in-flight kernels outside test/tooling contexts.
bool ForceTier(Tier tier);

}  // namespace strg::dist::simd

#endif  // STRG_DISTANCE_SIMD_DISPATCH_H_
