// AVX2 tier: 4 doubles per lane group. Compiled with
//   -mavx2 -mno-fma -ffp-contract=off
// (per-file, see src/distance/CMakeLists.txt) — FMA contraction would fuse
// the per-dim mul+add with a single rounding and break bit-identity with
// the scalar reference, so it is disabled even though the host may have it.
//
// Bit-identity argument, per lane (= DP column):
//   * the 6 feature dims accumulate in ascending order, exactly like
//     PointDistCell: acc += (a_k - b_k)^2 for k = 0..5;
//   * _mm256_sqrt_pd is IEEE-754 correctly rounded, matching std::sqrt;
//   * _mm256_min_pd(x, y) returns the value-min, and no -0.0 can arise in
//     these kernels (all inputs are sums of non-negative values), so the
//     result is bitwise identical to the scalar ternary;
//   * remainder columns call the shared scalar cell helpers.

#if !defined(__AVX2__)
#error "kernel_avx2.cpp must be compiled with -mavx2 (see distance CMakeLists)"
#endif
#if defined(__FMA__)
#error "kernel_avx2.cpp must be compiled with -mno-fma to stay bit-identical"
#endif

#include <immintrin.h>

#include "distance/simd/cells.h"
#include "distance/simd/kernels.h"

namespace strg::dist::simd {
namespace {

// Hoisted per-row operands: the broadcast query point and the six
// transposed row base pointers. Computing these once per row call (rather
// than per column group) matters because the output stores would otherwise
// force the compiler to re-load them — double* arguments may alias.
struct RowCtx {
  __m256d av[kCellDim];
  const double* btk[kCellDim];
};

inline RowCtx MakeRowCtx(const double* ai, const double* bt,
                         std::size_t stride) {
  RowCtx ctx;
  for (std::size_t k = 0; k < kCellDim; ++k) {
    ctx.av[k] = _mm256_set1_pd(ai[k]);
    ctx.btk[k] = bt + k * stride;
  }
  return ctx;
}

// dist(ai, b_{c..c+3}) for four consecutive transposed columns, per-lane in
// the canonical dim order.
inline __m256d Dist4(const RowCtx& ctx, std::size_t c) {
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t k = 0; k < kCellDim; ++k) {
    const __m256d bv = _mm256_loadu_pd(ctx.btk[k] + c);
    const __m256d dv = _mm256_sub_pd(ctx.av[k], bv);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(dv, dv));
  }
  return _mm256_sqrt_pd(acc);
}

void PointDistanceBatchAvx2(const double* q, const double* pts, std::size_t n,
                            double* out) {
  __m256d qk[kCellDim];
  for (std::size_t k = 0; k < kCellDim; ++k) qk[k] = _mm256_set1_pd(q[k]);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* p = pts + i * kPaddedDim;
    // Transpose four padded points (stride 8) into six dim vectors. Dims
    // 0..3 come from the first 4 doubles of each point, dims 4..5 from the
    // second half; the zero pads are never touched.
    __m256d r0 = _mm256_loadu_pd(p + 0 * kPaddedDim);
    __m256d r1 = _mm256_loadu_pd(p + 1 * kPaddedDim);
    __m256d r2 = _mm256_loadu_pd(p + 2 * kPaddedDim);
    __m256d r3 = _mm256_loadu_pd(p + 3 * kPaddedDim);
    __m256d t0 = _mm256_unpacklo_pd(r0, r1);
    __m256d t1 = _mm256_unpackhi_pd(r0, r1);
    __m256d t2 = _mm256_unpacklo_pd(r2, r3);
    __m256d t3 = _mm256_unpackhi_pd(r2, r3);
    __m256d dim0 = _mm256_permute2f128_pd(t0, t2, 0x20);
    __m256d dim1 = _mm256_permute2f128_pd(t1, t3, 0x20);
    __m256d dim2 = _mm256_permute2f128_pd(t0, t2, 0x31);
    __m256d dim3 = _mm256_permute2f128_pd(t1, t3, 0x31);
    r0 = _mm256_loadu_pd(p + 0 * kPaddedDim + 4);
    r1 = _mm256_loadu_pd(p + 1 * kPaddedDim + 4);
    r2 = _mm256_loadu_pd(p + 2 * kPaddedDim + 4);
    r3 = _mm256_loadu_pd(p + 3 * kPaddedDim + 4);
    t0 = _mm256_unpacklo_pd(r0, r1);
    t1 = _mm256_unpackhi_pd(r0, r1);
    t2 = _mm256_unpacklo_pd(r2, r3);
    t3 = _mm256_unpackhi_pd(r2, r3);
    __m256d dim4 = _mm256_permute2f128_pd(t0, t2, 0x20);
    __m256d dim5 = _mm256_permute2f128_pd(t1, t3, 0x20);
    const __m256d dims[kCellDim] = {dim0, dim1, dim2, dim3, dim4, dim5};
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t k = 0; k < kCellDim; ++k) {
      const __m256d dv = _mm256_sub_pd(qk[k], dims[k]);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(dv, dv));
    }
    _mm256_storeu_pd(out + i, _mm256_sqrt_pd(acc));
  }
  for (; i < n; ++i) out[i] = PointDistCell(q, pts + i * kPaddedDim);
}

void EgedRowAvx2(const double* ai, const double* bt, std::size_t bt_stride,
                 const double* prev, double ga, std::size_t jb, std::size_t je,
                 double* t) {
  const RowCtx ctx = MakeRowCtx(ai, bt, bt_stride);
  const __m256d ga_v = _mm256_set1_pd(ga);
  std::size_t j = jb;
  for (; j + 3 <= je; j += 4) {
    const __m256d dist = Dist4(ctx, j - 1);
    const __m256d subst = _mm256_add_pd(_mm256_loadu_pd(prev + j - 1), dist);
    const __m256d del_a = _mm256_add_pd(_mm256_loadu_pd(prev + j), ga_v);
    _mm256_storeu_pd(t + j, _mm256_min_pd(del_a, subst));
  }
  for (; j <= je; ++j) t[j] = EgedCell(ai, bt, bt_stride, prev, ga, j);
}

void DtwRowAvx2(const double* ai, const double* bt, std::size_t bt_stride,
                const double* prev, std::size_t n, double* t, double* d) {
  const RowCtx ctx = MakeRowCtx(ai, bt, bt_stride);
  std::size_t j = 1;
  for (; j + 3 <= n; j += 4) {
    _mm256_storeu_pd(d + j, Dist4(ctx, j - 1));
    const __m256d diag = _mm256_loadu_pd(prev + j - 1);
    const __m256d up = _mm256_loadu_pd(prev + j);
    _mm256_storeu_pd(t + j, _mm256_min_pd(up, diag));
  }
  for (; j <= n; ++j) DtwCell(ai, bt, bt_stride, prev, j, t, d);
}

void EdrRowAvx2(const double* ai, const double* bt, std::size_t bt_stride,
                const double* prev, double eps, std::size_t n, double* t) {
  const RowCtx ctx = MakeRowCtx(ai, bt, bt_stride);
  const __m256d eps_v = _mm256_set1_pd(eps);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t j = 1;
  for (; j + 3 <= n; j += 4) {
    const __m256d dist = Dist4(ctx, j - 1);
    // sub = dist <= eps ? 0 : 1 — mask AND 1.0 keeps the lane order exact.
    const __m256d sub =
        _mm256_and_pd(_mm256_cmp_pd(dist, eps_v, _CMP_GT_OQ), one);
    const __m256d diag = _mm256_add_pd(_mm256_loadu_pd(prev + j - 1), sub);
    const __m256d up = _mm256_add_pd(_mm256_loadu_pd(prev + j), one);
    _mm256_storeu_pd(t + j, _mm256_min_pd(up, diag));
  }
  for (; j <= n; ++j) t[j] = EdrCell(ai, bt, bt_stride, prev, eps, j);
}

// Anti-diagonal EGED cells. All lanes are independent, so the whole cell —
// distance, sqrt, and the three-way min — vectorizes with no loop-carried
// chain. _mm256_min_pd(x, y) is `x < y ? x : y`, so min(del_a, subst) then
// min(del_b, ·) reproduces the scalar "replace on strictly less" order.
void EgedDiagAvx2(const double* at, std::size_t at_stride, const double* bt,
                  std::size_t bt_stride, const double* ga, const double* bg,
                  const double* diag, const double* up, const double* left,
                  std::size_t count, double* out) {
  std::size_t c = 0;
  for (; c + 4 <= count; c += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t k = 0; k < kCellDim; ++k) {
      const __m256d av = _mm256_loadu_pd(at + k * at_stride + c);
      const __m256d bv = _mm256_loadu_pd(bt + k * bt_stride + c);
      const __m256d dv = _mm256_sub_pd(av, bv);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(dv, dv));
    }
    const __m256d dist = _mm256_sqrt_pd(acc);
    const __m256d subst = _mm256_add_pd(_mm256_loadu_pd(diag + c), dist);
    const __m256d del_a =
        _mm256_add_pd(_mm256_loadu_pd(up + c), _mm256_loadu_pd(ga + c));
    const __m256d del_b =
        _mm256_add_pd(_mm256_loadu_pd(left + c), _mm256_loadu_pd(bg + c));
    __m256d v = _mm256_min_pd(del_a, subst);
    v = _mm256_min_pd(del_b, v);
    _mm256_storeu_pd(out + c, v);
  }
  for (; c < count; ++c) {
    out[c] = EgedDiagCell(at, at_stride, bt, bt_stride, ga, bg, diag, up,
                          left, c);
  }
}

}  // namespace

const KernelOps& Avx2Ops() {
  static const KernelOps ops = {
      Tier::kAvx2,  PointDistanceBatchAvx2, EgedRowAvx2,
      DtwRowAvx2,   EdrRowAvx2,             EgedDiagAvx2,
  };
  return ops;
}

}  // namespace strg::dist::simd
