// NEON tier: 2 doubles per lane group (aarch64 baseline — no host check
// needed beyond the architecture). Compiled with -ffp-contract=off so the
// compiler cannot contract the per-dim mul+add into vfma and change the
// rounding; vsqrtq_f64 and vminq_f64 are IEEE-exact, and each lane follows
// the canonical scalar dim order, so results match the scalar tier bitwise
// (same argument as kernel_avx2.cpp).

#if !defined(__aarch64__) && !defined(__ARM_NEON)
#error "kernel_neon.cpp is aarch64-only (see distance CMakeLists)"
#endif

#include <arm_neon.h>

#include "distance/simd/cells.h"
#include "distance/simd/kernels.h"

namespace strg::dist::simd {
namespace {

inline float64x2_t Dist2(const double* ai, const double* bt,
                         std::size_t stride, std::size_t c) {
  float64x2_t acc = vdupq_n_f64(0.0);
  for (std::size_t k = 0; k < kCellDim; ++k) {
    const float64x2_t av = vdupq_n_f64(ai[k]);
    const float64x2_t bv = vld1q_f64(bt + k * stride + c);
    const float64x2_t dv = vsubq_f64(av, bv);
    acc = vaddq_f64(acc, vmulq_f64(dv, dv));
  }
  return vsqrtq_f64(acc);
}

void PointDistanceBatchNeon(const double* q, const double* pts, std::size_t n,
                            double* out) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const double* p0 = pts + i * kPaddedDim;
    const double* p1 = p0 + kPaddedDim;
    float64x2_t acc = vdupq_n_f64(0.0);
    for (std::size_t k = 0; k < kCellDim; ++k) {
      const float64x2_t qv = vdupq_n_f64(q[k]);
      const float64x2_t pv = {p0[k], p1[k]};
      const float64x2_t dv = vsubq_f64(qv, pv);
      acc = vaddq_f64(acc, vmulq_f64(dv, dv));
    }
    vst1q_f64(out + i, vsqrtq_f64(acc));
  }
  for (; i < n; ++i) out[i] = PointDistCell(q, pts + i * kPaddedDim);
}

void EgedRowNeon(const double* ai, const double* bt, std::size_t bt_stride,
                 const double* prev, double ga, std::size_t jb, std::size_t je,
                 double* t) {
  const float64x2_t ga_v = vdupq_n_f64(ga);
  std::size_t j = jb;
  for (; j + 1 <= je; j += 2) {
    const float64x2_t dist = Dist2(ai, bt, bt_stride, j - 1);
    const float64x2_t subst = vaddq_f64(vld1q_f64(prev + j - 1), dist);
    const float64x2_t del_a = vaddq_f64(vld1q_f64(prev + j), ga_v);
    vst1q_f64(t + j, vminq_f64(del_a, subst));
  }
  for (; j <= je; ++j) t[j] = EgedCell(ai, bt, bt_stride, prev, ga, j);
}

void DtwRowNeon(const double* ai, const double* bt, std::size_t bt_stride,
                const double* prev, std::size_t n, double* t, double* d) {
  std::size_t j = 1;
  for (; j + 1 <= n; j += 2) {
    vst1q_f64(d + j, Dist2(ai, bt, bt_stride, j - 1));
    const float64x2_t diag = vld1q_f64(prev + j - 1);
    const float64x2_t up = vld1q_f64(prev + j);
    vst1q_f64(t + j, vminq_f64(up, diag));
  }
  for (; j <= n; ++j) DtwCell(ai, bt, bt_stride, prev, j, t, d);
}

void EdrRowNeon(const double* ai, const double* bt, std::size_t bt_stride,
                const double* prev, double eps, std::size_t n, double* t) {
  const float64x2_t eps_v = vdupq_n_f64(eps);
  const float64x2_t one = vdupq_n_f64(1.0);
  std::size_t j = 1;
  for (; j + 1 <= n; j += 2) {
    const float64x2_t dist = Dist2(ai, bt, bt_stride, j - 1);
    const uint64x2_t gt = vcgtq_f64(dist, eps_v);
    const float64x2_t sub = vreinterpretq_f64_u64(
        vandq_u64(gt, vreinterpretq_u64_f64(one)));
    const float64x2_t diag = vaddq_f64(vld1q_f64(prev + j - 1), sub);
    const float64x2_t up = vaddq_f64(vld1q_f64(prev + j), one);
    vst1q_f64(t + j, vminq_f64(up, diag));
  }
  for (; j <= n; ++j) t[j] = EdrCell(ai, bt, bt_stride, prev, eps, j);
}

// Anti-diagonal EGED cells; see kernel_avx2.cpp for the lane-independence
// argument. vminq_f64 is the IEEE value-min (no -0.0 arises here), so the
// two-step min reproduces the scalar candidate order exactly.
void EgedDiagNeon(const double* at, std::size_t at_stride, const double* bt,
                  std::size_t bt_stride, const double* ga, const double* bg,
                  const double* diag, const double* up, const double* left,
                  std::size_t count, double* out) {
  std::size_t c = 0;
  for (; c + 2 <= count; c += 2) {
    float64x2_t acc = vdupq_n_f64(0.0);
    for (std::size_t k = 0; k < kCellDim; ++k) {
      const float64x2_t av = vld1q_f64(at + k * at_stride + c);
      const float64x2_t bv = vld1q_f64(bt + k * bt_stride + c);
      const float64x2_t dv = vsubq_f64(av, bv);
      acc = vaddq_f64(acc, vmulq_f64(dv, dv));
    }
    const float64x2_t dist = vsqrtq_f64(acc);
    const float64x2_t subst = vaddq_f64(vld1q_f64(diag + c), dist);
    const float64x2_t del_a = vaddq_f64(vld1q_f64(up + c), vld1q_f64(ga + c));
    const float64x2_t del_b =
        vaddq_f64(vld1q_f64(left + c), vld1q_f64(bg + c));
    float64x2_t v = vminq_f64(del_a, subst);
    v = vminq_f64(del_b, v);
    vst1q_f64(out + c, v);
  }
  for (; c < count; ++c) {
    out[c] = EgedDiagCell(at, at_stride, bt, bt_stride, ga, bg, diag, up,
                          left, c);
  }
}

}  // namespace

const KernelOps& NeonOps() {
  static const KernelOps ops = {
      Tier::kNeon,  PointDistanceBatchNeon, EgedRowNeon,
      DtwRowNeon,   EdrRowNeon,             EgedDiagNeon,
  };
  return ops;
}

}  // namespace strg::dist::simd
