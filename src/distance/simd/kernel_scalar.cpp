// Scalar tier: the portable reference every vector tier must match bitwise.
// Built verbatim from the shared cell helpers so vector-tier remainder
// columns run the identical code path.

#include "distance/simd/cells.h"
#include "distance/simd/kernels.h"

namespace strg::dist::simd {
namespace {

void PointDistanceBatchScalar(const double* q, const double* pts,
                              std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = PointDistCell(q, pts + i * kPaddedDim);
  }
}

void EgedRowScalar(const double* ai, const double* bt, std::size_t bt_stride,
                   const double* prev, double ga, std::size_t jb,
                   std::size_t je, double* t) {
  for (std::size_t j = jb; j <= je; ++j) {
    t[j] = EgedCell(ai, bt, bt_stride, prev, ga, j);
  }
}

void DtwRowScalar(const double* ai, const double* bt, std::size_t bt_stride,
                  const double* prev, std::size_t n, double* t, double* d) {
  for (std::size_t j = 1; j <= n; ++j) {
    DtwCell(ai, bt, bt_stride, prev, j, t, d);
  }
}

void EdrRowScalar(const double* ai, const double* bt, std::size_t bt_stride,
                  const double* prev, double eps, std::size_t n, double* t) {
  for (std::size_t j = 1; j <= n; ++j) {
    t[j] = EdrCell(ai, bt, bt_stride, prev, eps, j);
  }
}

void EgedDiagScalar(const double* at, std::size_t at_stride, const double* bt,
                    std::size_t bt_stride, const double* ga, const double* bg,
                    const double* diag, const double* up, const double* left,
                    std::size_t count, double* out) {
  for (std::size_t c = 0; c < count; ++c) {
    out[c] = EgedDiagCell(at, at_stride, bt, bt_stride, ga, bg, diag, up,
                          left, c);
  }
}

}  // namespace

const KernelOps& ScalarOps() {
  static const KernelOps ops = {
      Tier::kScalar,          PointDistanceBatchScalar, EgedRowScalar,
      DtwRowScalar,           EdrRowScalar,             EgedDiagScalar,
  };
  return ops;
}

}  // namespace strg::dist::simd
