#ifndef STRG_DISTANCE_SIMD_KERNELS_H_
#define STRG_DISTANCE_SIMD_KERNELS_H_

// Internal: per-tier kernel tables, linked only when the matching TU is
// compiled in (src/distance/CMakeLists.txt sets STRG_SIMD_HAVE_* alongside
// the per-file arch flags). Host support is still checked at runtime by the
// dispatcher before a table is handed out.

#include "distance/simd/dispatch.h"

namespace strg::dist::simd {

const KernelOps& ScalarOps();

#if defined(STRG_SIMD_HAVE_AVX2)
const KernelOps& Avx2Ops();
#endif

#if defined(STRG_SIMD_HAVE_NEON)
const KernelOps& NeonOps();
#endif

}  // namespace strg::dist::simd

#endif  // STRG_DISTANCE_SIMD_KERNELS_H_
