#include "eval/retrieval_metrics.h"

#include <algorithm>
#include <stdexcept>

namespace strg::eval {

double PrecisionAtK(const std::vector<bool>& relevance, size_t k) {
  if (k == 0) return 0.0;
  size_t upto = std::min(k, relevance.size());
  size_t hits = 0;
  for (size_t i = 0; i < upto; ++i) {
    if (relevance[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double RecallAtK(const std::vector<bool>& relevance, size_t k,
                 size_t total_relevant) {
  if (total_relevant == 0) return 0.0;
  size_t upto = std::min(k, relevance.size());
  size_t hits = 0;
  for (size_t i = 0; i < upto; ++i) {
    if (relevance[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(total_relevant);
}

double AveragePrecision(const std::vector<bool>& relevance,
                        size_t total_relevant) {
  if (total_relevant == 0) return 0.0;
  double acc = 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < relevance.size(); ++i) {
    if (relevance[i]) {
      ++hits;
      acc += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return acc / static_cast<double>(total_relevant);
}

double MeanAveragePrecision(const std::vector<std::vector<bool>>& relevances,
                            const std::vector<size_t>& total_relevant) {
  if (relevances.size() != total_relevant.size()) {
    throw std::invalid_argument("MeanAveragePrecision: size mismatch");
  }
  if (relevances.empty()) return 0.0;
  double acc = 0.0;
  for (size_t q = 0; q < relevances.size(); ++q) {
    acc += AveragePrecision(relevances[q], total_relevant[q]);
  }
  return acc / static_cast<double>(relevances.size());
}

std::vector<bool> RelevanceMask(const std::vector<int>& result_labels,
                                int query_label) {
  std::vector<bool> mask(result_labels.size());
  for (size_t i = 0; i < result_labels.size(); ++i) {
    mask[i] = result_labels[i] == query_label;
  }
  return mask;
}

}  // namespace strg::eval
