#ifndef STRG_EVAL_RETRIEVAL_METRICS_H_
#define STRG_EVAL_RETRIEVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace strg::eval {

/// Retrieval-quality metrics over ranked result lists, shared by the
/// Figure 7(c) harness and the ablations. A result is "relevant" when its
/// label matches the query's label (the paper verifies k-NN answers "by
/// their cluster memberships", Section 6.3).

/// Precision@k: relevant results among the first k (list may be shorter).
double PrecisionAtK(const std::vector<bool>& relevance, size_t k);

/// Recall@k: relevant results among the first k over all relevant items.
double RecallAtK(const std::vector<bool>& relevance, size_t k,
                 size_t total_relevant);

/// Average precision of one ranked list (AP): mean of precision@i over the
/// ranks i holding relevant results, normalized by total_relevant.
double AveragePrecision(const std::vector<bool>& relevance,
                        size_t total_relevant);

/// Mean average precision across queries.
double MeanAveragePrecision(const std::vector<std::vector<bool>>& relevances,
                            const std::vector<size_t>& total_relevant);

/// Convenience: relevance mask from result labels vs the query label.
std::vector<bool> RelevanceMask(const std::vector<int>& result_labels,
                                int query_label);

}  // namespace strg::eval

#endif  // STRG_EVAL_RETRIEVAL_METRICS_H_
