#ifndef STRG_GRAPH_ATTRIBUTES_H_
#define STRG_GRAPH_ATTRIBUTES_H_

#include <array>
#include <cmath>

namespace strg::graph {

/// RAG node attributes (Definition 1): size, color, and location of the
/// segmented region the node stands for.
struct NodeAttr {
  double size = 0.0;                     ///< region area in pixels
  std::array<double, 3> color{0, 0, 0};  ///< mean RGB
  double cx = 0.0;                       ///< centroid x (pixels)
  double cy = 0.0;                       ///< centroid y (pixels)
};

/// Spatial edge attributes (Definition 1): distance and orientation between
/// the centroids of two adjacent regions.
struct SpatialEdgeAttr {
  double distance = 0.0;
  double orientation = 0.0;  ///< radians in (-pi, pi]
};

/// Temporal edge attributes (Definition 2): velocity magnitude and moving
/// direction of a region between two consecutive frames.
struct TemporalEdgeAttr {
  double velocity = 0.0;   ///< centroid displacement per frame (pixels)
  double direction = 0.0;  ///< radians in (-pi, pi]
};

/// Tolerances used when deciding whether two attributed nodes/edges "match".
///
/// The paper's definitions require exact attribute equality (Def. 4), which
/// never holds between real frames; every practical matcher compares within
/// tolerances. These defaults suit the synthetic camera streams.
struct AttrTolerance {
  double size_ratio = 0.6;        ///< relative size difference allowed
  double color = 40.0;            ///< RGB-space distance allowed
  double position = 14.0;         ///< centroid displacement allowed (pixels)
  double edge_distance = 8.0;     ///< spatial-edge length difference
  double edge_orientation = 0.8;  ///< spatial-edge orientation diff (rad)
};

inline double ColorDist(const std::array<double, 3>& a,
                        const std::array<double, 3>& b) {
  double dr = a[0] - b[0], dg = a[1] - b[1], db = a[2] - b[2];
  return std::sqrt(dr * dr + dg * dg + db * db);
}

/// Smallest absolute difference between two angles (radians, <= pi).
inline double AngleDiff(double a, double b) {
  double d = std::fabs(a - b);
  while (d > 2 * M_PI) d -= 2 * M_PI;
  return d > M_PI ? 2 * M_PI - d : d;
}

/// Node compatibility: similar size, color, and position.
inline bool NodesCompatible(const NodeAttr& a, const NodeAttr& b,
                            const AttrTolerance& tol) {
  double max_size = std::max(a.size, b.size);
  if (max_size > 0.0 &&
      std::fabs(a.size - b.size) > tol.size_ratio * max_size) {
    return false;
  }
  if (ColorDist(a.color, b.color) > tol.color) return false;
  double dx = a.cx - b.cx, dy = a.cy - b.cy;
  return std::sqrt(dx * dx + dy * dy) <= tol.position;
}

/// Spatial-edge compatibility: similar length and orientation.
inline bool EdgesCompatible(const SpatialEdgeAttr& a, const SpatialEdgeAttr& b,
                            const AttrTolerance& tol) {
  if (std::fabs(a.distance - b.distance) > tol.edge_distance) return false;
  return AngleDiff(a.orientation, b.orientation) <= tol.edge_orientation;
}

}  // namespace strg::graph

#endif  // STRG_GRAPH_ATTRIBUTES_H_
