#include "graph/common_subgraph.h"

#include <algorithm>
#include <vector>

#include "graph/isomorphism.h"

namespace strg::graph {

namespace {

/// Bron-Kerbosch with pivoting over an adjacency-matrix graph; tracks only
/// the maximum clique size.
class MaxClique {
 public:
  explicit MaxClique(std::vector<std::vector<char>> adj)
      : adj_(std::move(adj)), n_(adj_.size()) {}

  size_t Solve() {
    std::vector<size_t> p(n_), x;
    for (size_t i = 0; i < n_; ++i) p[i] = i;
    Expand(0, p, x);
    return best_;
  }

 private:
  void Expand(size_t r_size, std::vector<size_t> p, std::vector<size_t> x) {
    if (p.empty() && x.empty()) {
      best_ = std::max(best_, r_size);
      return;
    }
    if (r_size + p.size() <= best_) return;  // bound
    // Pivot: vertex in P ∪ X with most neighbors in P.
    size_t pivot = 0, pivot_deg = 0;
    bool have = false;
    auto consider = [&](size_t u) {
      size_t deg = 0;
      for (size_t v : p) {
        if (adj_[u][v]) ++deg;
      }
      if (!have || deg > pivot_deg) {
        have = true;
        pivot = u;
        pivot_deg = deg;
      }
    };
    for (size_t u : p) consider(u);
    for (size_t u : x) consider(u);

    std::vector<size_t> candidates;
    for (size_t u : p) {
      if (!adj_[pivot][u]) candidates.push_back(u);
    }
    for (size_t u : candidates) {
      std::vector<size_t> np, nx;
      for (size_t v : p) {
        if (adj_[u][v]) np.push_back(v);
      }
      for (size_t v : x) {
        if (adj_[u][v]) nx.push_back(v);
      }
      Expand(r_size + 1, std::move(np), std::move(nx));
      p.erase(std::find(p.begin(), p.end(), u));
      x.push_back(u);
    }
  }

  std::vector<std::vector<char>> adj_;
  size_t n_;
  size_t best_ = 0;
};

}  // namespace

size_t MostCommonSubgraphSize(const Rag& a, const Rag& b,
                              const AttrTolerance& tol,
                              size_t max_assoc_vertices) {
  // Build association-graph vertices: compatible (u, v) pairs.
  std::vector<std::pair<int, int>> vertices;
  for (size_t u = 0; u < a.NumNodes(); ++u) {
    for (size_t v = 0; v < b.NumNodes(); ++v) {
      if (NodesCompatible(a.node(static_cast<int>(u)),
                          b.node(static_cast<int>(v)), tol)) {
        vertices.emplace_back(static_cast<int>(u), static_cast<int>(v));
        if (max_assoc_vertices > 0 && vertices.size() > max_assoc_vertices) {
          // Too large to solve exactly; fall back to the trivial bound of
          // independent node matches via a greedy estimate.
          return std::min(a.NumNodes(), b.NumNodes());
        }
      }
    }
  }
  if (vertices.empty()) return 0;

  const size_t n = vertices.size();
  std::vector<std::vector<char>> adj(n, std::vector<char>(n, 0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const auto& [u1, v1] = vertices[i];
      const auto& [u2, v2] = vertices[j];
      if (u1 == u2 || v1 == v2) continue;
      const SpatialEdgeAttr* ea = a.EdgeAttr(u1, u2);
      const SpatialEdgeAttr* eb = b.EdgeAttr(v1, v2);
      bool consistent;
      if (ea != nullptr && eb != nullptr) {
        consistent = EdgesCompatible(*ea, *eb, tol);
      } else {
        consistent = (ea == nullptr && eb == nullptr);
      }
      if (consistent) {
        adj[i][j] = adj[j][i] = 1;
      }
    }
  }
  return MaxClique(std::move(adj)).Solve();
}

double SimGraph(const NeighborhoodGraph& a, const NeighborhoodGraph& b,
                const AttrTolerance& tol) {
  // Case 1: common subgraph contains both centers.
  size_t with_centers = 0;
  if (NodesCompatible(a.center_attr, b.center_attr, tol)) {
    with_centers =
        1 + MaxNeighborMatching(a, b, tol, /*require_edge_compat=*/true);
  }
  // Case 2: centers unmatched -> matched neighbors carry no common edges,
  // so only node compatibility constrains the matching.
  size_t without_centers =
      MaxNeighborMatching(a, b, tol, /*require_edge_compat=*/false);

  size_t common = std::max(with_centers, without_centers);
  size_t denom = std::min(a.NumNodes(), b.NumNodes());
  if (denom == 0) return 0.0;
  return static_cast<double>(common) / static_cast<double>(denom);
}

Rag NeighborhoodToRag(const NeighborhoodGraph& ng) {
  Rag rag;
  int center = rag.AddNode(ng.center_attr);
  for (size_t i = 0; i < ng.neighbor_attrs.size(); ++i) {
    int v = rag.AddNode(ng.neighbor_attrs[i]);
    rag.AddEdge(center, v, ng.edge_attrs[i]);
  }
  return rag;
}

}  // namespace strg::graph
