#ifndef STRG_GRAPH_COMMON_SUBGRAPH_H_
#define STRG_GRAPH_COMMON_SUBGRAPH_H_

#include <cstddef>

#include "graph/neighborhood.h"
#include "graph/rag.h"

namespace strg::graph {

/// Size (node count) of the most common subgraph G_C of two attributed
/// graphs (Definition 6), computed by maximal-clique detection on the
/// association graph — the classic Levi reduction the paper cites [16].
///
/// A vertex of the association graph is a compatible node pair (u in a,
/// v in b); two vertices are adjacent when the pairs are mutually consistent
/// (distinct endpoints, and the edge between the u's matches the edge
/// between the v's — both present with compatible attributes, or both
/// absent). The maximum clique is then the largest common subgraph.
///
/// `max_assoc_vertices` caps the association-graph size as a safety valve
/// (clique detection is exponential in the worst case); 0 means no cap.
/// Returns the clique size, or the best found within the cap.
size_t MostCommonSubgraphSize(const Rag& a, const Rag& b,
                              const AttrTolerance& tol,
                              size_t max_assoc_vertices = 0);

/// SimGraph (Equation 1): |G_C| / min(|G_N(v)|, |G_N(v')|) for two
/// neighborhood graphs. Uses the star structure for a polynomial-time exact
/// answer: the best common subgraph either contains both centers (center
/// compatibility + edge-constrained neighbor matching) or no center
/// (unconstrained neighbor matching).
double SimGraph(const NeighborhoodGraph& a, const NeighborhoodGraph& b,
                const AttrTolerance& tol);

/// Converts a neighborhood graph back into a standalone RAG (center is node
/// 0). Lets tests cross-check SimGraph against the generic clique-based MCS.
Rag NeighborhoodToRag(const NeighborhoodGraph& ng);

}  // namespace strg::graph

#endif  // STRG_GRAPH_COMMON_SUBGRAPH_H_
