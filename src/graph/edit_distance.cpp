#include "graph/edit_distance.h"

#include <algorithm>
#include <cmath>

#include "util/hungarian.h"

namespace strg::graph {

double NodeSubstitutionCost(const NodeAttr& a, const NodeAttr& b,
                            const GedCosts& costs) {
  // Each term is folded to roughly [0, 1]; the sum is averaged.
  double size_term = 0.0;
  double max_size = std::max(a.size, b.size);
  if (max_size > 0.0) size_term = std::fabs(a.size - b.size) / max_size;
  double color_term = ColorDist(a.color, b.color) / 441.7;  // max RGB dist
  double dx = a.cx - b.cx, dy = a.cy - b.cy;
  double pos_term = std::sqrt(dx * dx + dy * dy) / 100.0;  // ~frame scale
  double raw = costs.substitution_scale * (size_term + color_term + pos_term) /
               3.0;
  return std::min(raw, 2.0 * costs.node_insert_delete);
}

double ApproxGraphEditDistance(const Rag& a, const Rag& b,
                               const GedCosts& costs) {
  const size_t n = a.NumNodes(), m = b.NumNodes();
  if (n == 0 && m == 0) return 0.0;
  const size_t dim = n + m;
  const double kBig = 1e18;

  // Riesen-Bunke cost matrix:
  //   [ substitutions (n x m) | deletions (n x n, diagonal) ]
  //   [ insertions (m x m, diagonal) | zeros (m x n)        ]
  std::vector<std::vector<double>> cost(dim, std::vector<double>(dim, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      double c = NodeSubstitutionCost(a.node(static_cast<int>(i)),
                                      b.node(static_cast<int>(j)), costs);
      // Local structure: unmatched incident edges cost extra.
      double deg_gap = std::fabs(static_cast<double>(a.Degree(static_cast<int>(i))) -
                                 static_cast<double>(b.Degree(static_cast<int>(j))));
      cost[i][j] = c + costs.edge_mismatch * deg_gap;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      cost[i][m + j] =
          i == j ? costs.node_insert_delete +
                       costs.edge_mismatch *
                           static_cast<double>(a.Degree(static_cast<int>(i)))
                 : kBig;
    }
  }
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      cost[n + i][j] =
          i == j ? costs.node_insert_delete +
                       costs.edge_mismatch *
                           static_cast<double>(b.Degree(static_cast<int>(i)))
                 : kBig;
    }
  }
  // Bottom-right block stays zero (dummy-to-dummy).

  std::vector<int> match = SolveAssignment(cost);
  double total = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    if (match[i] >= 0) total += cost[i][static_cast<size_t>(match[i])];
  }
  return total;
}

}  // namespace strg::graph
