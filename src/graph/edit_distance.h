#ifndef STRG_GRAPH_EDIT_DISTANCE_H_
#define STRG_GRAPH_EDIT_DISTANCE_H_

#include "graph/rag.h"

namespace strg::graph {

/// Cost model for attributed graph edit operations.
struct GedCosts {
  double node_insert_delete = 1.0;  ///< base cost of adding/removing a node
  /// Scale on the attribute distance for a node substitution; substitution
  /// costs scale * normalized attribute distance, capped at 2x the
  /// insert/delete cost so substitution never costs more than delete+insert.
  double substitution_scale = 1.0;
  /// Per-edge cost contribution when matched nodes have different incident
  /// edge structure (degree mismatch surrogate, as in Riesen & Bunke).
  double edge_mismatch = 0.25;
};

/// Normalized attribute distance between two nodes (size/color/position
/// folded to a [0, ~1] scale used by the substitution cost).
double NodeSubstitutionCost(const NodeAttr& a, const NodeAttr& b,
                            const GedCosts& costs);

/// Approximate graph edit distance between two attributed RAGs via the
/// bipartite (assignment) bound of Riesen & Bunke: build the
/// (n+m) x (n+m) cost matrix of node substitutions / insertions /
/// deletions with local edge-structure penalties, and solve it with the
/// Hungarian algorithm. Runs in O((n+m)^3); an upper bound on the exact
/// GED (which is NP-hard — Section 3.1's motivation for EGED).
///
/// Used as a principled whole-graph similarity for background graphs and
/// as a reference point for graph-matching tests.
double ApproxGraphEditDistance(const Rag& a, const Rag& b,
                               const GedCosts& costs = {});

}  // namespace strg::graph

#endif  // STRG_GRAPH_EDIT_DISTANCE_H_
