#include "graph/isomorphism.h"

#include <vector>

namespace strg::graph {

namespace {

/// Backtracking mapper shared by the isomorphism and subgraph-isomorphism
/// tests. Maps pattern nodes 0..n-1 to distinct target nodes; `exact` also
/// forbids extra target edges between mapped nodes (full isomorphism).
class Matcher {
 public:
  Matcher(const Rag& pattern, const Rag& target, const AttrTolerance& tol,
          bool exact)
      : pattern_(pattern), target_(target), tol_(tol), exact_(exact),
        mapping_(pattern.NumNodes(), -1),
        used_(target.NumNodes(), false) {}

  bool Search() { return Extend(0); }

 private:
  bool Extend(size_t depth) {
    if (depth == pattern_.NumNodes()) return true;
    int u = static_cast<int>(depth);
    for (size_t cand = 0; cand < target_.NumNodes(); ++cand) {
      int v = static_cast<int>(cand);
      if (used_[cand]) continue;
      if (!NodesCompatible(pattern_.node(u), target_.node(v), tol_)) continue;
      if (!Consistent(u, v)) continue;
      mapping_[depth] = v;
      used_[cand] = true;
      if (Extend(depth + 1)) return true;
      mapping_[depth] = -1;
      used_[cand] = false;
    }
    return false;
  }

  // Checks edges between u and all previously mapped pattern nodes.
  bool Consistent(int u, int v) const {
    for (size_t prev = 0; prev < static_cast<size_t>(u); ++prev) {
      int pu = static_cast<int>(prev);
      int pv = mapping_[prev];
      const SpatialEdgeAttr* pe = pattern_.EdgeAttr(pu, u);
      const SpatialEdgeAttr* te = target_.EdgeAttr(pv, v);
      if (pe != nullptr) {
        if (te == nullptr || !EdgesCompatible(*pe, *te, tol_)) return false;
      } else if (exact_ && te != nullptr) {
        return false;
      }
    }
    return true;
  }

  const Rag& pattern_;
  const Rag& target_;
  const AttrTolerance& tol_;
  const bool exact_;
  std::vector<int> mapping_;
  std::vector<char> used_;
};

/// Kuhn's augmenting path search.
bool TryAugment(size_t u, const std::vector<std::vector<size_t>>& adj,
                std::vector<int>* match_b, std::vector<char>* visited) {
  for (size_t v : adj[u]) {
    if ((*visited)[v]) continue;
    (*visited)[v] = true;
    if ((*match_b)[v] < 0 ||
        TryAugment(static_cast<size_t>((*match_b)[v]), adj, match_b,
                   visited)) {
      (*match_b)[v] = static_cast<int>(u);
      return true;
    }
  }
  return false;
}

}  // namespace

bool AreIsomorphic(const Rag& a, const Rag& b, const AttrTolerance& tol) {
  if (a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  return Matcher(a, b, tol, /*exact=*/true).Search();
}

bool IsSubgraphIsomorphic(const Rag& pattern, const Rag& target,
                          const AttrTolerance& tol) {
  if (pattern.NumNodes() > target.NumNodes()) return false;
  return Matcher(pattern, target, tol, /*exact=*/false).Search();
}

size_t MaxNeighborMatching(const NeighborhoodGraph& a,
                           const NeighborhoodGraph& b,
                           const AttrTolerance& tol,
                           bool require_edge_compat) {
  const size_t na = a.neighbor_ids.size(), nb = b.neighbor_ids.size();
  std::vector<std::vector<size_t>> adj(na);
  for (size_t i = 0; i < na; ++i) {
    for (size_t j = 0; j < nb; ++j) {
      if (!NodesCompatible(a.neighbor_attrs[i], b.neighbor_attrs[j], tol)) {
        continue;
      }
      if (require_edge_compat &&
          !EdgesCompatible(a.edge_attrs[i], b.edge_attrs[j], tol)) {
        continue;
      }
      adj[i].push_back(j);
    }
  }
  std::vector<int> match_b(nb, -1);
  size_t matched = 0;
  for (size_t u = 0; u < na; ++u) {
    std::vector<char> visited(nb, false);
    if (TryAugment(u, adj, &match_b, &visited)) ++matched;
  }
  return matched;
}

bool NeighborhoodGraphsIsomorphic(const NeighborhoodGraph& a,
                                  const NeighborhoodGraph& b,
                                  const AttrTolerance& tol) {
  if (a.neighbor_ids.size() != b.neighbor_ids.size()) return false;
  if (!NodesCompatible(a.center_attr, b.center_attr, tol)) return false;
  return MaxNeighborMatching(a, b, tol, /*require_edge_compat=*/true) ==
         a.neighbor_ids.size();
}

}  // namespace strg::graph
