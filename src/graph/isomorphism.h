#ifndef STRG_GRAPH_ISOMORPHISM_H_
#define STRG_GRAPH_ISOMORPHISM_H_

#include "graph/neighborhood.h"
#include "graph/rag.h"

namespace strg::graph {

/// Attributed graph isomorphism (Definition 4), with attribute equality
/// relaxed to tolerance-based compatibility. Exponential backtracking —
/// intended for the small graphs that arise in this pipeline (neighborhood
/// graphs, object subgraphs), not whole-frame RAGs.
bool AreIsomorphic(const Rag& a, const Rag& b, const AttrTolerance& tol);

/// Attributed subgraph isomorphism (Definition 5): is `pattern` isomorphic
/// to some subgraph of `target`? Injective backtracking search; every
/// pattern edge must exist in the target image with a compatible attribute.
bool IsSubgraphIsomorphic(const Rag& pattern, const Rag& target,
                          const AttrTolerance& tol);

/// Specialized isomorphism test for neighborhood graphs (stars): the centers
/// must be compatible and a perfect matching must exist between the neighbor
/// sets under node + incident-edge compatibility. Equivalent to Definition 4
/// restricted to stars, but runs in polynomial time.
bool NeighborhoodGraphsIsomorphic(const NeighborhoodGraph& a,
                                  const NeighborhoodGraph& b,
                                  const AttrTolerance& tol);

/// Maximum bipartite matching size between the neighbor sets of two
/// neighborhood graphs. When `require_edge_compat` is set, a neighbor pair
/// can only be matched if the incident center->neighbor edges are also
/// compatible. (Kuhn's augmenting-path algorithm.)
size_t MaxNeighborMatching(const NeighborhoodGraph& a,
                           const NeighborhoodGraph& b,
                           const AttrTolerance& tol,
                           bool require_edge_compat);

}  // namespace strg::graph

#endif  // STRG_GRAPH_ISOMORPHISM_H_
