#include "graph/neighborhood.h"

namespace strg::graph {

NeighborhoodGraph MakeNeighborhoodGraph(const Rag& rag, int v) {
  NeighborhoodGraph ng;
  ng.center = v;
  ng.center_attr = rag.node(v);
  for (const Rag::Edge& e : rag.Neighbors(v)) {
    ng.neighbor_ids.push_back(e.to);
    ng.neighbor_attrs.push_back(rag.node(e.to));
    ng.edge_attrs.push_back(e.attr);
  }
  return ng;
}

std::vector<NeighborhoodGraph> AllNeighborhoodGraphs(const Rag& rag) {
  std::vector<NeighborhoodGraph> out;
  out.reserve(rag.NumNodes());
  for (size_t v = 0; v < rag.NumNodes(); ++v) {
    out.push_back(MakeNeighborhoodGraph(rag, static_cast<int>(v)));
  }
  return out;
}

}  // namespace strg::graph
