#ifndef STRG_GRAPH_NEIGHBORHOOD_H_
#define STRG_GRAPH_NEIGHBORHOOD_H_

#include <vector>

#include "graph/rag.h"

namespace strg::graph {

/// Neighborhood graph G_N(v) (Definition 7): the star consisting of a center
/// node v and every node adjacent to it, each connected to v by one spatial
/// edge. This is the unit of comparison in the paper's graph-based tracking
/// (Algorithm 1).
struct NeighborhoodGraph {
  int center = -1;  ///< node id in the source RAG
  NodeAttr center_attr;
  std::vector<int> neighbor_ids;             ///< node ids in the source RAG
  std::vector<NodeAttr> neighbor_attrs;      ///< parallel to neighbor_ids
  std::vector<SpatialEdgeAttr> edge_attrs;   ///< center->neighbor, parallel

  /// |G_N(v)| — number of nodes (center + neighbors).
  size_t NumNodes() const { return 1 + neighbor_ids.size(); }
};

/// Extracts the neighborhood graph of node v from a RAG.
NeighborhoodGraph MakeNeighborhoodGraph(const Rag& rag, int v);

/// Extracts all neighborhood graphs of a RAG (one per node).
std::vector<NeighborhoodGraph> AllNeighborhoodGraphs(const Rag& rag);

}  // namespace strg::graph

#endif  // STRG_GRAPH_NEIGHBORHOOD_H_
