#include "graph/rag.h"

#include <cmath>
#include <stdexcept>

namespace strg::graph {

int Rag::AddNode(const NodeAttr& attr) {
  nodes_.push_back(attr);
  adjacency_.emplace_back();
  return static_cast<int>(nodes_.size()) - 1;
}

void Rag::AddEdge(int a, int b) {
  AddEdge(a, b, MakeSpatialEdgeAttr(node(a), node(b)));
}

void Rag::AddEdge(int a, int b, const SpatialEdgeAttr& attr) {
  if (a == b) throw std::invalid_argument("Rag::AddEdge: self loop");
  if (a < 0 || b < 0 || static_cast<size_t>(a) >= nodes_.size() ||
      static_cast<size_t>(b) >= nodes_.size()) {
    throw std::out_of_range("Rag::AddEdge: bad node id");
  }
  if (HasEdge(a, b)) return;
  adjacency_[static_cast<size_t>(a)].push_back({b, attr});
  // Store the reversed orientation on the back edge so each endpoint sees
  // the direction toward the other.
  SpatialEdgeAttr back = attr;
  back.orientation = std::atan2(std::sin(attr.orientation + M_PI),
                                std::cos(attr.orientation + M_PI));
  adjacency_[static_cast<size_t>(b)].push_back({a, back});
  ++num_edges_;
}

bool Rag::HasEdge(int a, int b) const {
  for (const Edge& e : adjacency_[static_cast<size_t>(a)]) {
    if (e.to == b) return true;
  }
  return false;
}

const SpatialEdgeAttr* Rag::EdgeAttr(int a, int b) const {
  for (const Edge& e : adjacency_[static_cast<size_t>(a)]) {
    if (e.to == b) return &e.attr;
  }
  return nullptr;
}

SpatialEdgeAttr MakeSpatialEdgeAttr(const NodeAttr& a, const NodeAttr& b) {
  SpatialEdgeAttr attr;
  double dx = b.cx - a.cx, dy = b.cy - a.cy;
  attr.distance = std::sqrt(dx * dx + dy * dy);
  attr.orientation = std::atan2(dy, dx);
  return attr;
}

Rag BuildRag(const segment::Segmentation& seg) {
  Rag rag;
  for (const segment::Region& region : seg.regions) {
    NodeAttr attr;
    attr.size = static_cast<double>(region.size);
    attr.color = {static_cast<double>(region.mean_color.r),
                  static_cast<double>(region.mean_color.g),
                  static_cast<double>(region.mean_color.b)};
    attr.cx = region.centroid_x;
    attr.cy = region.centroid_y;
    rag.AddNode(attr);
  }
  for (const auto& [a, b] : seg.adjacency) {
    rag.AddEdge(a, b);
  }
  return rag;
}

}  // namespace strg::graph
