#ifndef STRG_GRAPH_RAG_H_
#define STRG_GRAPH_RAG_H_

#include <cstddef>
#include <vector>

#include "graph/attributes.h"
#include "segment/region.h"

namespace strg::graph {

/// Region Adjacency Graph G_r(f_n) = {V, E_S, nu, xi} (Definition 1).
///
/// Nodes are segmented regions with attributes (size, color, centroid);
/// undirected spatial edges connect adjacent regions and carry centroid
/// distance + orientation. Stored as an adjacency list; node ids are dense
/// indices 0..NumNodes()-1.
class Rag {
 public:
  struct Edge {
    int to = -1;
    SpatialEdgeAttr attr;
  };

  /// Adds a node and returns its id.
  int AddNode(const NodeAttr& attr);

  /// Adds an undirected spatial edge between existing nodes a and b.
  /// The attribute is computed from the node centroids if not supplied.
  void AddEdge(int a, int b);
  void AddEdge(int a, int b, const SpatialEdgeAttr& attr);

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return num_edges_; }

  const NodeAttr& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  NodeAttr& node(int id) { return nodes_[static_cast<size_t>(id)]; }

  const std::vector<Edge>& Neighbors(int id) const {
    return adjacency_[static_cast<size_t>(id)];
  }

  bool HasEdge(int a, int b) const;

  /// Returns the edge attribute for (a, b), or nullptr if absent.
  const SpatialEdgeAttr* EdgeAttr(int a, int b) const;

  /// Degree of node `id`.
  size_t Degree(int id) const { return adjacency_[static_cast<size_t>(id)].size(); }

 private:
  std::vector<NodeAttr> nodes_;
  std::vector<std::vector<Edge>> adjacency_;
  size_t num_edges_ = 0;
};

/// Computes the spatial-edge attribute (centroid distance, orientation)
/// between two node attributes.
SpatialEdgeAttr MakeSpatialEdgeAttr(const NodeAttr& a, const NodeAttr& b);

/// Builds the RAG of a segmented frame (Definition 1): one node per region,
/// one spatial edge per adjacent region pair.
Rag BuildRag(const segment::Segmentation& seg);

}  // namespace strg::graph

#endif  // STRG_GRAPH_RAG_H_
