#include "index/strg_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "cluster/bic.h"
#include "cluster/em.h"
#include "util/hungarian.h"

namespace strg::index {

namespace {

/// Similarity in [0, 1] between two background graphs: optimal node
/// matching (Hungarian on attribute distances thresholded by tolerance)
/// normalized by the smaller node count — the root-level analogue of
/// SimGraph used by Algorithm 3's step 2.
double BackgroundSimilarity(const core::BackgroundGraph& a,
                            const core::BackgroundGraph& b,
                            const graph::AttrTolerance& tol) {
  size_t na = a.rag.NumNodes(), nb = b.rag.NumNodes();
  if (na == 0 || nb == 0) return na == nb ? 1.0 : 0.0;
  std::vector<std::vector<double>> cost(na, std::vector<double>(nb, 1.0));
  for (size_t i = 0; i < na; ++i) {
    for (size_t j = 0; j < nb; ++j) {
      if (graph::NodesCompatible(a.rag.node(static_cast<int>(i)),
                                 b.rag.node(static_cast<int>(j)), tol)) {
        cost[i][j] = 0.0;
      }
    }
  }
  std::vector<int> match = SolveAssignment(cost);
  size_t matched = 0;
  for (size_t i = 0; i < na; ++i) {
    if (match[i] >= 0 && cost[i][static_cast<size_t>(match[i])] == 0.0) {
      ++matched;
    }
  }
  return static_cast<double>(matched) /
         static_cast<double>(std::min(na, nb));
}

size_t SequenceBytes(size_t length) {
  if (length == 0) return 0;
  return length * core::kNodeBytes + (length - 1) * core::kTemporalEdgeBytes;
}

constexpr size_t kKeyBytes = sizeof(double);
constexpr size_t kPtrBytes = sizeof(void*);
constexpr size_t kIdBytes = sizeof(int);

}  // namespace

StrgIndex::StrgIndex(StrgIndexParams params)
    : params_(params), metric_(params.metric_gap) {}

StrgIndex::StrgIndex(const StrgIndex& other)
    : params_(other.params_),
      metric_(other.metric_),
      nonmetric_(other.nonmetric_),
      distance_count_(
          other.distance_count_.load(std::memory_order_relaxed)),
      roots_(other.roots_),
      next_cluster_id_(other.next_cluster_id_) {}

StrgIndex& StrgIndex::operator=(const StrgIndex& other) {
  if (this == &other) return *this;
  params_ = other.params_;
  metric_ = other.metric_;
  nonmetric_ = other.nonmetric_;
  distance_count_.store(other.distance_count_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  roots_ = other.roots_;
  next_cluster_id_ = other.next_cluster_id_;
  return *this;
}

double StrgIndex::Metric(const dist::Sequence& a,
                         const dist::Sequence& b) const {
  distance_count_.fetch_add(1, std::memory_order_relaxed);
  return metric_(a, b);
}

int StrgIndex::AddSegment(core::BackgroundGraph bg,
                          std::vector<dist::Sequence> og_sequences,
                          std::vector<size_t> og_ids) {
  if (og_ids.empty()) {
    og_ids.resize(og_sequences.size());
    for (size_t i = 0; i < og_ids.size(); ++i) og_ids[i] = i;
  }
  if (og_ids.size() != og_sequences.size()) {
    throw std::invalid_argument("StrgIndex::AddSegment: id count mismatch");
  }

  RootRecord root;
  root.id = static_cast<int>(roots_.size());
  root.bg = std::move(bg);

  if (!og_sequences.empty()) {
    // Cluster the OGs with EM + non-metric EGED (Section 4).
    cluster::Clustering model;
    if (params_.num_clusters > 0) {
      model = cluster::EmCluster(og_sequences,
                                 std::min(params_.num_clusters,
                                          og_sequences.size()),
                                 nonmetric_, params_.cluster_params);
    } else {
      size_t k_max = std::min(params_.k_max, og_sequences.size());
      size_t k_min = std::min(params_.k_min, k_max);
      auto sweep = cluster::FindOptimalK(og_sequences, k_min, k_max,
                                         nonmetric_, params_.cluster_params);
      model = std::move(sweep.models[sweep.best_k - k_min]);
    }

    root.clusters.resize(model.NumClusters());
    for (size_t c = 0; c < model.NumClusters(); ++c) {
      root.clusters[c].id = next_cluster_id_++;
      root.clusters[c].centroid = model.centroids[c];
    }
    for (size_t j = 0; j < og_sequences.size(); ++j) {
      // Place each OG under the centroid nearest in *metric* EGED — the
      // space its leaf key and the covering radii live in. EM's posterior
      // assignment (non-metric EGED) usually agrees, but when it does not,
      // following it would inflate a cluster's covering radius and weaken
      // the triangle-inequality pruning of Algorithm 3.
      size_t best = static_cast<size_t>(model.assignment[j]);
      double best_key = Metric(og_sequences[j], root.clusters[best].centroid);
      for (size_t c = 0; c < root.clusters.size(); ++c) {
        if (c == best) continue;
        double key = Metric(og_sequences[j], root.clusters[c].centroid);
        if (key < best_key) {
          best_key = key;
          best = c;
        }
      }
      LeafEntry entry;
      entry.sequence = std::move(og_sequences[j]);
      entry.og_id = og_ids[j];
      entry.key = best_key;
      root.clusters[best].leaf.push_back(std::move(entry));
    }
    // Drop clusters EM left empty, sort leaves by key (Algorithm 2 line 12).
    std::erase_if(root.clusters,
                  [](const ClusterRecord& c) { return c.leaf.empty(); });
    for (ClusterRecord& cluster : root.clusters) {
      std::sort(cluster.leaf.begin(), cluster.leaf.end(),
                [](const LeafEntry& a, const LeafEntry& b) {
                  return a.key < b.key;
                });
      cluster.covering_radius = cluster.leaf.back().key;
    }
  }

  roots_.push_back(std::move(root));
  return roots_.back().id;
}

void StrgIndex::InsertIntoCluster(ClusterRecord* cluster, dist::Sequence seq,
                                  size_t og_id) {
  LeafEntry entry;
  entry.key = Metric(seq, cluster->centroid);
  entry.og_id = og_id;
  entry.sequence = std::move(seq);
  auto pos = std::lower_bound(cluster->leaf.begin(), cluster->leaf.end(),
                              entry.key,
                              [](const LeafEntry& e, double k) {
                                return e.key < k;
                              });
  cluster->covering_radius = std::max(cluster->covering_radius, entry.key);
  cluster->leaf.insert(pos, std::move(entry));
}

void StrgIndex::Insert(int root_id, dist::Sequence og_sequence,
                       size_t og_id) {
  if (root_id < 0 || static_cast<size_t>(root_id) >= roots_.size()) {
    throw std::out_of_range("StrgIndex::Insert: bad root id");
  }
  RootRecord& root = roots_[static_cast<size_t>(root_id)];
  if (root.clusters.empty()) {
    // First OG of the segment becomes its own cluster.
    ClusterRecord cluster;
    cluster.id = next_cluster_id_++;
    cluster.centroid = og_sequence;
    root.clusters.push_back(std::move(cluster));
    InsertIntoCluster(&root.clusters.back(), std::move(og_sequence), og_id);
    return;
  }
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < root.clusters.size(); ++c) {
    double d = Metric(og_sequence, root.clusters[c].centroid);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  InsertIntoCluster(&root.clusters[best], std::move(og_sequence), og_id);
  MaybeSplit(&root, best);
}

size_t StrgIndex::Remove(size_t og_id) {
  size_t removed = 0;
  for (RootRecord& root : roots_) {
    for (ClusterRecord& cluster : root.clusters) {
      size_t before = cluster.leaf.size();
      std::erase_if(cluster.leaf, [og_id](const LeafEntry& e) {
        return e.og_id == og_id;
      });
      if (cluster.leaf.size() != before) {
        removed += before - cluster.leaf.size();
        cluster.covering_radius =
            cluster.leaf.empty() ? 0.0 : cluster.leaf.back().key;
      }
    }
    std::erase_if(root.clusters,
                  [](const ClusterRecord& c) { return c.leaf.empty(); });
  }
  return removed;
}

void StrgIndex::MaybeSplit(RootRecord* root, size_t cluster_pos) {
  ClusterRecord& cluster = root->clusters[cluster_pos];
  if (cluster.leaf.size() <= params_.leaf_split_threshold) return;

  std::vector<dist::Sequence> members;
  members.reserve(cluster.leaf.size());
  for (const LeafEntry& e : cluster.leaf) members.push_back(e.sequence);

  // Section 5.3: split only when BIC prefers the 2-component model. The
  // split is decided in the *metric* EGED space — the space the leaf keys
  // and covering radii live in — because that is where a split must create
  // tight sub-clusters for pruning to benefit. (The non-metric EGED's
  // replicating gaps let whole sequences delete cheaply, which compresses
  // between-cluster contrast and would mask genuine bimodality.)
  cluster::Clustering one =
      cluster::EmCluster(members, 1, metric_, params_.cluster_params);
  cluster::Clustering two =
      cluster::EmCluster(members, 2, metric_, params_.cluster_params);
  double bic1 = cluster::Bic(one.classification_log_likelihood, 1,
                             members.size());
  double bic2 = cluster::Bic(two.classification_log_likelihood, 2,
                             members.size());
  if (bic2 <= bic1 || two.NumClusters() < 2) return;

  ClusterRecord a, b;
  a.id = next_cluster_id_++;
  b.id = next_cluster_id_++;
  a.centroid = two.centroids[0];
  b.centroid = two.centroids[1];
  std::vector<LeafEntry> old = std::move(cluster.leaf);
  for (size_t j = 0; j < old.size(); ++j) {
    ClusterRecord* target = two.assignment[j] == 0 ? &a : &b;
    InsertIntoCluster(target, std::move(old[j].sequence), old[j].og_id);
  }
  if (a.leaf.empty() || b.leaf.empty()) {
    // Degenerate split; keep the original cluster.
    ClusterRecord* keep = a.leaf.empty() ? &b : &a;
    root->clusters[cluster_pos] = std::move(*keep);
    return;
  }
  root->clusters[cluster_pos] = std::move(a);
  root->clusters.push_back(std::move(b));
}

void StrgIndex::SearchClusters(const RootRecord& root,
                               const dist::Sequence& query, size_t k,
                               size_t budget_limit, KnnResult* result) const {
  auto budget_spent = [&]() {
    return distance_count_.load(std::memory_order_relaxed) >= budget_limit;
  };
  if (budget_spent()) return;

  // Per-cluster scan frontier. Leaf entries are sorted by key
  // = EGED_M(member, centroid); with key_q = EGED_M(query, centroid) the
  // triangle inequality gives d(query, e) >= |key(e) - key_q|, so scanning
  // outward from the key_q position visits a cluster's entries in
  // increasing lower-bound order.
  struct Frontier {
    size_t cluster = 0;
    double key_q = 0.0;
    size_t lo = 0;   // next candidate below (exclusive upper index)
    size_t hi = 0;   // next candidate at/above
  };

  // Max-heap semantics over the current k best via sorted vector (k small).
  auto& hits = result->hits;
  auto worst = [&]() {
    return hits.size() < k ? std::numeric_limits<double>::infinity()
                           : hits.back().distance;
  };
  auto offer = [&](size_t og_id, double d) {
    if (d >= worst()) return;
    KnnHit hit{og_id, d};
    auto pos = std::lower_bound(hits.begin(), hits.end(), d,
                                [](const KnnHit& h, double v) {
                                  return h.distance < v;
                                });
    hits.insert(pos, hit);
    if (hits.size() > k) hits.pop_back();
  };

  std::vector<Frontier> frontiers(root.clusters.size());
  auto frontier_bound = [&](const Frontier& f) {
    const auto& leaf = root.clusters[f.cluster].leaf;
    double lb = std::numeric_limits<double>::infinity();
    if (f.lo > 0) lb = std::min(lb, f.key_q - leaf[f.lo - 1].key);
    if (f.hi < leaf.size()) lb = std::min(lb, leaf[f.hi].key - f.key_q);
    return lb;
  };

  // Global best-first scan: always evaluate the entry with the smallest
  // lower bound across ALL clusters, so the worst-of-k radius tightens as
  // fast as possible and whole clusters fall away without being touched.
  using Queued = std::pair<double, size_t>;  // (lower bound, cluster)
  std::priority_queue<Queued, std::vector<Queued>, std::greater<>> queue;

  for (size_t c = 0; c < root.clusters.size(); ++c) {
    if (budget_spent()) return;
    Frontier& f = frontiers[c];
    f.cluster = c;
    f.key_q = Metric(query, root.clusters[c].centroid);
    const auto& leaf = root.clusters[c].leaf;
    f.hi = static_cast<size_t>(
        std::lower_bound(leaf.begin(), leaf.end(), f.key_q,
                         [](const LeafEntry& e, double v) {
                           return e.key < v;
                         }) -
        leaf.begin());
    f.lo = f.hi;
    double lb = frontier_bound(f);
    if (lb != std::numeric_limits<double>::infinity()) queue.push({lb, c});
  }

  while (!queue.empty()) {
    if (budget_spent()) return;
    auto [lb, c] = queue.top();
    queue.pop();
    if (lb >= worst()) break;  // every remaining entry anywhere is >= lb
    Frontier& f = frontiers[c];
    const auto& leaf = root.clusters[c].leaf;

    // Evaluate the nearer of the two scan directions.
    double lb_lo = f.lo > 0 ? f.key_q - leaf[f.lo - 1].key
                            : std::numeric_limits<double>::infinity();
    double lb_hi = f.hi < leaf.size()
                       ? leaf[f.hi].key - f.key_q
                       : std::numeric_limits<double>::infinity();
    if (lb_lo <= lb_hi) {
      --f.lo;
      offer(leaf[f.lo].og_id, Metric(query, leaf[f.lo].sequence));
    } else {
      offer(leaf[f.hi].og_id, Metric(query, leaf[f.hi].sequence));
      ++f.hi;
    }
    double next = frontier_bound(f);
    if (next != std::numeric_limits<double>::infinity()) {
      queue.push({next, c});
    }
  }
}

KnnResult StrgIndex::Knn(const dist::Sequence& query, size_t k,
                         const core::BackgroundGraph* query_bg,
                         size_t max_distance_computations) const {
  KnnResult result;
  if (k == 0 || roots_.empty()) return result;
  size_t before = distance_count_.load(std::memory_order_relaxed);
  size_t budget_limit = max_distance_computations == 0
                            ? std::numeric_limits<size_t>::max()
                            : before + max_distance_computations;

  if (query_bg != nullptr) {
    // Algorithm 3 step 2: route to the best-matching background.
    double best_sim = -1.0;
    size_t best_root = 0;
    for (size_t r = 0; r < roots_.size(); ++r) {
      double sim =
          BackgroundSimilarity(roots_[r].bg, *query_bg, params_.bg_tolerance);
      if (sim > best_sim) {
        best_sim = sim;
        best_root = r;
      }
    }
    SearchClusters(roots_[best_root], query, k, budget_limit, &result);
  } else {
    for (const RootRecord& root : roots_) {
      SearchClusters(root, query, k, budget_limit, &result);
    }
  }
  result.distance_computations =
      distance_count_.load(std::memory_order_relaxed) - before;
  return result;
}

size_t StrgIndex::SizeBytes() const {
  size_t bytes = 0;
  for (const RootRecord& root : roots_) {
    bytes += kIdBytes + kPtrBytes + root.bg.SizeBytes();
    for (const ClusterRecord& cluster : root.clusters) {
      bytes += kIdBytes + kPtrBytes + SequenceBytes(cluster.centroid.size());
      for (const LeafEntry& e : cluster.leaf) {
        bytes += kKeyBytes + kPtrBytes + SequenceBytes(e.sequence.size());
      }
    }
  }
  return bytes;
}

KnnResult StrgIndex::RangeSearch(const dist::Sequence& query, double radius,
                                 const core::BackgroundGraph* query_bg) const {
  KnnResult result;
  if (roots_.empty() || radius < 0.0) return result;
  size_t before = distance_count_.load(std::memory_order_relaxed);

  auto search_root = [&](const RootRecord& root) {
    for (const ClusterRecord& cluster : root.clusters) {
      double key_q = Metric(query, cluster.centroid);
      // No member can be within radius when even the closest possible key
      // band misses: d(q, e) >= key_q - covering_radius.
      if (key_q - cluster.covering_radius > radius) continue;
      const auto& leaf = cluster.leaf;
      auto lo = std::lower_bound(
          leaf.begin(), leaf.end(), key_q - radius,
          [](const LeafEntry& e, double v) { return e.key < v; });
      for (auto it = lo; it != leaf.end() && it->key <= key_q + radius;
           ++it) {
        double d = Metric(query, it->sequence);
        if (d <= radius) result.hits.push_back({it->og_id, d});
      }
    }
  };

  if (query_bg != nullptr) {
    double best_sim = -1.0;
    size_t best_root = 0;
    for (size_t r = 0; r < roots_.size(); ++r) {
      double sim =
          BackgroundSimilarity(roots_[r].bg, *query_bg, params_.bg_tolerance);
      if (sim > best_sim) {
        best_sim = sim;
        best_root = r;
      }
    }
    search_root(roots_[best_root]);
  } else {
    for (const RootRecord& root : roots_) search_root(root);
  }
  std::sort(result.hits.begin(), result.hits.end(),
            [](const KnnHit& a, const KnnHit& b) {
              return a.distance < b.distance;
            });
  result.distance_computations =
      distance_count_.load(std::memory_order_relaxed) - before;
  return result;
}

size_t StrgIndex::NumClusters() const {
  size_t n = 0;
  for (const RootRecord& r : roots_) n += r.clusters.size();
  return n;
}

size_t StrgIndex::NumIndexedOgs() const {
  size_t n = 0;
  for (const RootRecord& r : roots_) {
    for (const ClusterRecord& c : r.clusters) n += c.leaf.size();
  }
  return n;
}

std::vector<double> StrgIndex::LeafKeys(int root_id,
                                        size_t cluster_pos) const {
  const RootRecord& root = roots_.at(static_cast<size_t>(root_id));
  const ClusterRecord& cluster = root.clusters.at(cluster_pos);
  std::vector<double> keys;
  keys.reserve(cluster.leaf.size());
  for (const LeafEntry& e : cluster.leaf) keys.push_back(e.key);
  return keys;
}

StrgIndex::Stats StrgIndex::ComputeStats() const {
  Stats stats;
  stats.segments = roots_.size();
  double radius_acc = 0.0;
  bool first = true;
  for (const RootRecord& root : roots_) {
    for (const ClusterRecord& cluster : root.clusters) {
      ++stats.clusters;
      stats.ogs += cluster.leaf.size();
      if (first || cluster.leaf.size() < stats.min_leaf) {
        stats.min_leaf = cluster.leaf.size();
      }
      stats.max_leaf = std::max(stats.max_leaf, cluster.leaf.size());
      radius_acc += cluster.covering_radius;
      stats.max_covering_radius =
          std::max(stats.max_covering_radius, cluster.covering_radius);
      first = false;
    }
  }
  if (stats.clusters > 0) {
    stats.mean_leaf =
        static_cast<double>(stats.ogs) / static_cast<double>(stats.clusters);
    stats.mean_covering_radius =
        radius_acc / static_cast<double>(stats.clusters);
  }
  return stats;
}

size_t PaperIndexSizeBytes(const core::Decomposition& decomposition,
                           size_t num_clusters) {
  size_t bytes = 0;
  size_t total_len = 0;
  for (const core::Og& og : decomposition.object_graphs) {
    bytes += og.SizeBytes();
    total_len += og.Length();
  }
  // Centroid OGs: estimated at the mean member length (Equation 10's
  // sum_k size(OG_clus_k)).
  if (!decomposition.object_graphs.empty() && num_clusters > 0) {
    size_t mean_len = std::max<size_t>(
        1, total_len / decomposition.object_graphs.size());
    bytes += num_clusters * SequenceBytes(mean_len);
  }
  bytes += decomposition.background.SizeBytes();
  return bytes;
}

}  // namespace strg::index
