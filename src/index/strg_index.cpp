#include "index/strg_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "cluster/bic.h"
#include "cluster/em.h"
#include "storage/pager/paged_record_store.h"
#include "storage/serializer.h"
#include "util/hungarian.h"

namespace strg::index {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Similarity in [0, 1] between two background graphs: optimal node
/// matching (Hungarian on attribute distances thresholded by tolerance)
/// normalized by the smaller node count — the root-level analogue of
/// SimGraph used by Algorithm 3's step 2.
double BackgroundSimilarity(const core::BackgroundGraph& a,
                            const core::BackgroundGraph& b,
                            const graph::AttrTolerance& tol) {
  size_t na = a.rag.NumNodes(), nb = b.rag.NumNodes();
  if (na == 0 || nb == 0) return na == nb ? 1.0 : 0.0;
  std::vector<std::vector<double>> cost(na, std::vector<double>(nb, 1.0));
  for (size_t i = 0; i < na; ++i) {
    for (size_t j = 0; j < nb; ++j) {
      if (graph::NodesCompatible(a.rag.node(static_cast<int>(i)),
                                 b.rag.node(static_cast<int>(j)), tol)) {
        cost[i][j] = 0.0;
      }
    }
  }
  std::vector<int> match = SolveAssignment(cost);
  size_t matched = 0;
  for (size_t i = 0; i < na; ++i) {
    if (match[i] >= 0 && cost[i][static_cast<size_t>(match[i])] == 0.0) {
      ++matched;
    }
  }
  return static_cast<double>(matched) /
         static_cast<double>(std::min(na, nb));
}

size_t SequenceBytes(size_t length) {
  if (length == 0) return 0;
  return length * core::kNodeBytes + (length - 1) * core::kTemporalEdgeBytes;
}

constexpr size_t kKeyBytes = sizeof(double);
constexpr size_t kPtrBytes = sizeof(void*);
constexpr size_t kIdBytes = sizeof(int);

}  // namespace

/// Per-query search state. Counters live here (not in the global atomic)
/// so concurrent queries report exact values; the aggregate atomic receives
/// one fetch_add of `stats.dp_evals` when the query finishes.
struct StrgIndex::SearchCtx {
  const dist::Sequence* query_seq = nullptr;  ///< for the reference kernel
  dist::FlatSequence query_flat;              ///< for the fast kernel
  bool use_fast = true;
  size_t budget = std::numeric_limits<size_t>::max();  ///< max DP evals
  /// Seed pruning radius: the heap's "worst" before it holds k hits.
  /// +inf = unbounded (the single-index behavior); finite = a sharded
  /// caller's running global worst-of-k (see Knn's contract).
  double tau0 = std::numeric_limits<double>::infinity();
  dist::EgedKernelStats stats;

  bool Exhausted() const { return stats.dp_evals >= budget; }
};

StrgIndex::StrgIndex(StrgIndexParams params)
    : params_(params), metric_(params.metric_gap) {}

StrgIndex::StrgIndex(const StrgIndex& other)
    : params_(other.params_),
      metric_(other.metric_),
      nonmetric_(other.nonmetric_),
      distance_count_(
          other.distance_count_.load(std::memory_order_relaxed)),
      roots_(other.roots_),
      next_cluster_id_(other.next_cluster_id_) {}

StrgIndex& StrgIndex::operator=(const StrgIndex& other) {
  if (this == &other) return *this;
  params_ = other.params_;
  metric_ = other.metric_;
  nonmetric_ = other.nonmetric_;
  distance_count_.store(other.distance_count_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  roots_ = other.roots_;
  next_cluster_id_ = other.next_cluster_id_;
  return *this;
}

double StrgIndex::Metric(const dist::Sequence& a,
                         const dist::Sequence& b) const {
  distance_count_.fetch_add(1, std::memory_order_relaxed);
  return metric_(a, b);
}

double StrgIndex::MetricFlat(const dist::FlatSequence& a,
                             const dist::FlatSequence& b) const {
  distance_count_.fetch_add(1, std::memory_order_relaxed);
  return dist::EgedMetricFlat(a, b, &dist::ThreadLocalEgedWorkspace());
}

double StrgIndex::MetricFlatBounded(const dist::FlatSequence& a,
                                    const dist::FlatSequence& b,
                                    double tau) const {
  dist::EgedKernelStats stats;
  double v = dist::EgedMetricBounded(a, b, tau,
                                     &dist::ThreadLocalEgedWorkspace(),
                                     &stats);
  distance_count_.fetch_add(stats.dp_evals, std::memory_order_relaxed);
  return v;
}

void StrgIndex::OffloadEntry(LeafEntry* entry) {
  if (params_.paged_store == nullptr) return;
  storage::Writer w;
  storage::EncodeSequence(entry->sequence, &w);
  entry->record = params_.paged_store
                      ->Append(storage::kRecIndexNode, w.bytes())
                      .value();  // throws std::runtime_error on store failure
  entry->seq_len = static_cast<uint32_t>(entry->sequence.size());
  entry->sequence = dist::Sequence();
  entry->flat = dist::FlatSequence();
}

dist::Sequence StrgIndex::FetchSequence(const LeafEntry& entry) const {
  // .value() throws std::runtime_error on a store failure — the index's
  // documented error contract for the paged query path.
  storage::PagedRecordStore::RecordRef ref =
      params_.paged_store->Read(entry.record).value();
  storage::Reader r(ref.bytes());
  return storage::DecodeSequence(&r);
}

double StrgIndex::SearchMetricLeaf(SearchCtx* ctx, const LeafEntry& entry,
                                   double tau) const {
  if (entry.record != kNoLeafRecord) {
    // Paged: fetch + decode + re-flatten on demand. Deterministic decode
    // (fixed-width doubles), so the distance is bit-identical to the
    // in-RAM entry's.
    dist::Sequence seq = FetchSequence(entry);
    if (!ctx->use_fast) {
      ++ctx->stats.dp_evals;
      return dist::EgedMetric(*ctx->query_seq, seq, params_.metric_gap);
    }
    dist::FlatSequence flat(seq, params_.metric_gap);
    return dist::EgedMetricBounded(ctx->query_flat, flat, tau,
                                   &dist::ThreadLocalEgedWorkspace(),
                                   &ctx->stats);
  }
  if (!ctx->use_fast) {
    ++ctx->stats.dp_evals;
    return dist::EgedMetric(*ctx->query_seq, entry.sequence,
                            params_.metric_gap);
  }
  return dist::EgedMetricBounded(ctx->query_flat, entry.flat, tau,
                                 &dist::ThreadLocalEgedWorkspace(),
                                 &ctx->stats);
}

double StrgIndex::SearchMetricCentroid(SearchCtx* ctx,
                                       const ClusterRecord& cluster,
                                       double tau) const {
  if (!ctx->use_fast) {
    ++ctx->stats.dp_evals;
    return dist::EgedMetric(*ctx->query_seq, cluster.centroid,
                            params_.metric_gap);
  }
  return dist::EgedMetricBounded(ctx->query_flat, cluster.centroid_flat, tau,
                                 &dist::ThreadLocalEgedWorkspace(),
                                 &ctx->stats);
}

int StrgIndex::AddSegment(core::BackgroundGraph bg,
                          std::vector<dist::Sequence> og_sequences,
                          std::vector<size_t> og_ids) {
  if (og_ids.empty()) {
    og_ids.resize(og_sequences.size());
    for (size_t i = 0; i < og_ids.size(); ++i) og_ids[i] = i;
  }
  if (og_ids.size() != og_sequences.size()) {
    throw std::invalid_argument("StrgIndex::AddSegment: id count mismatch");
  }

  RootRecord root;
  root.id = static_cast<int>(roots_.size());
  root.bg = std::move(bg);

  if (!og_sequences.empty()) {
    // Cluster the OGs with EM + non-metric EGED (Section 4). The E-step
    // keeps exact distances to every component (soft posteriors need the
    // full matrix); the pool — when the caller also wires it into
    // cluster_params — parallelizes the K x M matrix and EM restarts.
    cluster::Clustering model;
    cluster::ClusterParams build_params = params_.cluster_params;
    build_params.stats = &cluster_stats_;
    if (params_.num_clusters > 0) {
      model = cluster::EmCluster(og_sequences,
                                 std::min(params_.num_clusters,
                                          og_sequences.size()),
                                 nonmetric_, build_params);
    } else {
      size_t k_max = std::min(params_.k_max, og_sequences.size());
      size_t k_min = std::min(params_.k_min, k_max);
      auto sweep = cluster::FindOptimalK(og_sequences, k_min, k_max,
                                         nonmetric_, build_params);
      model = std::move(sweep.models[sweep.best_k - k_min]);
    }

    root.clusters.resize(model.NumClusters());
    for (size_t c = 0; c < model.NumClusters(); ++c) {
      root.clusters[c].id = next_cluster_id_++;
      root.clusters[c].centroid = model.centroids[c];
      root.clusters[c].centroid_flat = MakeFlat(root.clusters[c].centroid);
    }

    // Place each OG under the centroid nearest in *metric* EGED — the
    // space its leaf key and the covering radii live in. EM's posterior
    // assignment (non-metric EGED) usually agrees, but when it does not,
    // following it would inflate a cluster's covering radius and weaken
    // the triangle-inequality pruning of Algorithm 3.
    //
    // Each OG is independent (disjoint output slots, atomic distance
    // counter), so the placement fans out over the pool; the EM hint is
    // evaluated exactly first, every other centroid only up to the running
    // best (bounded kernel) — the same argmin, usually without the DP.
    const size_t n = og_sequences.size();
    std::vector<dist::FlatSequence> flats(n);
    std::vector<size_t> best(n, 0);
    std::vector<double> best_key(n, 0.0);
    auto place_one = [&](size_t j) {
      flats[j].Assign(og_sequences[j], params_.metric_gap);
      size_t b = static_cast<size_t>(model.assignment[j]);
      double bk = MetricFlat(flats[j], root.clusters[b].centroid_flat);
      for (size_t c = 0; c < root.clusters.size(); ++c) {
        if (c == b) continue;
        double key = MetricFlatBounded(flats[j],
                                       root.clusters[c].centroid_flat, bk);
        if (key < bk) {
          bk = key;
          b = c;
        }
      }
      best[j] = b;
      best_key[j] = bk;
    };
    if (params_.pool != nullptr && n > 1) {
      params_.pool->ParallelFor(0, n, place_one);
    } else {
      for (size_t j = 0; j < n; ++j) place_one(j);
    }
    for (size_t j = 0; j < n; ++j) {
      LeafEntry entry;
      entry.key = best_key[j];
      entry.og_id = og_ids[j];
      entry.sequence = std::move(og_sequences[j]);
      entry.flat = std::move(flats[j]);
      OffloadEntry(&entry);
      root.clusters[best[j]].leaf.push_back(std::move(entry));
    }
    // Drop clusters EM left empty, sort leaves by key (Algorithm 2 line 12).
    std::erase_if(root.clusters,
                  [](const ClusterRecord& c) { return c.leaf.empty(); });
    for (ClusterRecord& cluster : root.clusters) {
      std::sort(cluster.leaf.begin(), cluster.leaf.end(),
                [](const LeafEntry& a, const LeafEntry& b) {
                  return a.key < b.key;
                });
      cluster.covering_radius = cluster.leaf.back().key;
    }
  }

  roots_.push_back(std::move(root));
  return roots_.back().id;
}

void StrgIndex::InsertIntoCluster(ClusterRecord* cluster, dist::Sequence seq,
                                  size_t og_id) {
  LeafEntry entry;
  entry.flat = MakeFlat(seq);
  entry.key = MetricFlat(entry.flat, cluster->centroid_flat);
  entry.og_id = og_id;
  entry.sequence = std::move(seq);
  OffloadEntry(&entry);
  auto pos = std::lower_bound(cluster->leaf.begin(), cluster->leaf.end(),
                              entry.key,
                              [](const LeafEntry& e, double k) {
                                return e.key < k;
                              });
  cluster->covering_radius = std::max(cluster->covering_radius, entry.key);
  cluster->leaf.insert(pos, std::move(entry));
}

void StrgIndex::Insert(int root_id, dist::Sequence og_sequence,
                       size_t og_id) {
  if (root_id < 0 || static_cast<size_t>(root_id) >= roots_.size()) {
    throw std::out_of_range("StrgIndex::Insert: bad root id");
  }
  RootRecord& root = roots_[static_cast<size_t>(root_id)];
  if (root.clusters.empty()) {
    // First OG of the segment becomes its own cluster.
    ClusterRecord cluster;
    cluster.id = next_cluster_id_++;
    cluster.centroid = og_sequence;
    cluster.centroid_flat = MakeFlat(cluster.centroid);
    root.clusters.push_back(std::move(cluster));
    InsertIntoCluster(&root.clusters.back(), std::move(og_sequence), og_id);
    return;
  }
  // Nearest-centroid routing with the running best as tau: identical argmin
  // to the exact scan, but far centroids fall to the lower-bound cascade.
  dist::FlatSequence flat = MakeFlat(og_sequence);
  size_t best = 0;
  double best_d = MetricFlat(flat, root.clusters[0].centroid_flat);
  for (size_t c = 1; c < root.clusters.size(); ++c) {
    double d = MetricFlatBounded(flat, root.clusters[c].centroid_flat,
                                 best_d);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  // Reuse the exact routing distance as the leaf key (it is the key).
  ClusterRecord* cluster = &root.clusters[best];
  LeafEntry entry;
  entry.key = best_d;
  entry.og_id = og_id;
  entry.sequence = std::move(og_sequence);
  entry.flat = std::move(flat);
  OffloadEntry(&entry);
  auto pos = std::lower_bound(cluster->leaf.begin(), cluster->leaf.end(),
                              entry.key,
                              [](const LeafEntry& e, double k) {
                                return e.key < k;
                              });
  cluster->covering_radius = std::max(cluster->covering_radius, entry.key);
  cluster->leaf.insert(pos, std::move(entry));
  MaybeSplit(&root, best);
}

size_t StrgIndex::Remove(size_t og_id) {
  size_t removed = 0;
  for (RootRecord& root : roots_) {
    for (ClusterRecord& cluster : root.clusters) {
      size_t before = cluster.leaf.size();
      std::erase_if(cluster.leaf, [og_id](const LeafEntry& e) {
        return e.og_id == og_id;
      });
      if (cluster.leaf.size() != before) {
        removed += before - cluster.leaf.size();
        cluster.covering_radius =
            cluster.leaf.empty() ? 0.0 : cluster.leaf.back().key;
      }
    }
    std::erase_if(root.clusters,
                  [](const ClusterRecord& c) { return c.leaf.empty(); });
  }
  return removed;
}

void StrgIndex::MaybeSplit(RootRecord* root, size_t cluster_pos) {
  ClusterRecord& cluster = root->clusters[cluster_pos];
  if (cluster.leaf.size() <= params_.leaf_split_threshold) return;

  // Move (not copy) the member sequences out for EM; the leaf entries keep
  // their keys, ids, and flat forms, so the no-split path restores them
  // without recomputing anything. In paged mode the sequences are fetched
  // from the store instead (the entries never held them), and there is
  // nothing to restore — the fetched copies are simply dropped.
  const bool paged = params_.paged_store != nullptr;
  const size_t n = cluster.leaf.size();
  std::vector<dist::Sequence> members(n);
  for (size_t j = 0; j < n; ++j) {
    members[j] = paged ? FetchSequence(cluster.leaf[j])
                       : std::move(cluster.leaf[j].sequence);
  }
  auto restore_members = [&]() {
    if (paged) return;
    for (size_t j = 0; j < n; ++j) {
      cluster.leaf[j].sequence = std::move(members[j]);
    }
  };

  // Section 5.3: split only when BIC prefers the 2-component model. The
  // split is decided in the *metric* EGED space — the space the leaf keys
  // and covering radii live in — because that is where a split must create
  // tight sub-clusters for pruning to benefit. (The non-metric EGED's
  // replicating gaps let whole sequences delete cheaply, which compresses
  // between-cluster contrast and would mask genuine bimodality.)
  // The split decision runs in metric space, so the bounded assignment path
  // (ClusterParams::use_bounds) engages here; the counters land in
  // cluster_stats_ alongside the AddSegment fits.
  cluster::ClusterParams split_params = params_.cluster_params;
  split_params.stats = &cluster_stats_;
  cluster::Clustering one = cluster::EmCluster(members, 1, metric_, split_params);
  cluster::Clustering two = cluster::EmCluster(members, 2, metric_, split_params);
  double bic1 = cluster::Bic(one.classification_log_likelihood, 1,
                             members.size());
  double bic2 = cluster::Bic(two.classification_log_likelihood, 2,
                             members.size());
  if (bic2 <= bic1 || two.NumClusters() < 2) {
    restore_members();
    return;
  }
  size_t side_a = 0;
  for (int a : two.assignment) side_a += a == 0 ? 1 : 0;
  if (side_a == 0 || side_a == n) {
    // Degenerate split: keep the original cluster as-is. Its centroid is
    // unchanged, so every leaf key is already correct — zero recomputation.
    restore_members();
    return;
  }

  ClusterRecord a, b;
  a.id = next_cluster_id_++;
  b.id = next_cluster_id_++;
  a.centroid = two.centroids[0];
  b.centroid = two.centroids[1];
  a.centroid_flat = MakeFlat(a.centroid);
  b.centroid_flat = MakeFlat(b.centroid);

  // New keys against the (new) target centroids, reusing each member's
  // cached flat form (paged mode re-flattens the fetched sequence instead);
  // independent per member, so the pool fans it out.
  std::vector<double> keys(n, 0.0);
  auto key_one = [&](size_t j) {
    const ClusterRecord& target = two.assignment[j] == 0 ? a : b;
    if (paged) {
      dist::FlatSequence flat(members[j], params_.metric_gap);
      keys[j] = MetricFlat(flat, target.centroid_flat);
    } else {
      keys[j] = MetricFlat(cluster.leaf[j].flat, target.centroid_flat);
    }
  };
  if (params_.pool != nullptr && n > 1) {
    params_.pool->ParallelFor(0, n, key_one);
  } else {
    for (size_t j = 0; j < n; ++j) key_one(j);
  }

  a.leaf.reserve(side_a);
  b.leaf.reserve(n - side_a);
  for (size_t j = 0; j < n; ++j) {
    LeafEntry entry;
    entry.key = keys[j];
    entry.og_id = cluster.leaf[j].og_id;
    if (paged) {
      // The record travels; the fetched sequence copy is dropped.
      entry.record = cluster.leaf[j].record;
      entry.seq_len = cluster.leaf[j].seq_len;
    } else {
      entry.sequence = std::move(members[j]);
      entry.flat = std::move(cluster.leaf[j].flat);
    }
    (two.assignment[j] == 0 ? a : b).leaf.push_back(std::move(entry));
  }
  for (ClusterRecord* side : {&a, &b}) {
    std::sort(side->leaf.begin(), side->leaf.end(),
              [](const LeafEntry& x, const LeafEntry& y) {
                return x.key < y.key;
              });
    side->covering_radius = side->leaf.back().key;
  }
  root->clusters[cluster_pos] = std::move(a);
  root->clusters.push_back(std::move(b));
}

void StrgIndex::SearchClusters(const RootRecord& root, SearchCtx* ctx,
                               size_t k, KnnResult* result) const {
  if (ctx->Exhausted()) return;

  // Per-cluster scan frontier. Leaf entries are sorted by key
  // = EGED_M(member, centroid); with key_q = EGED_M(query, centroid) the
  // triangle inequality gives d(query, e) >= |key(e) - key_q|, so scanning
  // outward from the key_q position visits a cluster's entries in
  // increasing lower-bound order.
  struct Frontier {
    double key_q = 0.0;
    size_t lo = 0;   // next candidate below (exclusive upper index)
    size_t hi = 0;   // next candidate at/above
    bool opened = false;  // centroid evaluated, lo/hi valid
  };

  // Max-heap semantics over the current k best via sorted vector (k small).
  // Until the heap is full the pruning radius is ctx->tau0 (normally +inf;
  // a sharded gatherer seeds it with the global worst-of-k). Once full,
  // hits.back() < tau0 by construction — offer() never admits d >= worst()
  // — so no min() against tau0 is needed.
  auto& hits = result->hits;
  auto worst = [&]() {
    return hits.size() < k ? ctx->tau0 : hits.back().distance;
  };
  auto offer = [&](size_t og_id, double d) {
    if (d >= worst()) return;
    KnnHit hit{og_id, d};
    auto pos = std::lower_bound(hits.begin(), hits.end(), d,
                                [](const KnnHit& h, double v) {
                                  return h.distance < v;
                                });
    hits.insert(pos, hit);
    if (hits.size() > k) hits.pop_back();
  };

  std::vector<Frontier> frontiers(root.clusters.size());
  auto frontier_bound = [&](const Frontier& f, size_t c) {
    const auto& leaf = root.clusters[c].leaf;
    double lb = kInf;
    if (f.lo > 0) lb = std::min(lb, f.key_q - leaf[f.lo - 1].key);
    if (f.hi < leaf.size()) lb = std::min(lb, leaf[f.hi].key - f.key_q);
    return lb;
  };
  // Opens a cluster: evaluates its centroid (bounded — if even a lower
  // bound on key_q exceeds worst + covering_radius, every member's triangle
  // bound key_q - covering_radius already beats worst and the cluster is
  // dead without an exact key_q) and positions the scan cursors. Returns
  // the first member lower bound, or kInf when the cluster cannot
  // contribute. (worst only shrinks as the scan proceeds, so skips stay
  // valid.)
  auto open_cluster = [&](size_t c) {
    const ClusterRecord& cluster = root.clusters[c];
    const double w = worst();
    const double tau_c =
        ctx->use_fast && w < kInf ? w + cluster.covering_radius : kInf;
    double key_q = SearchMetricCentroid(ctx, cluster, tau_c);
    if (key_q > tau_c) return kInf;
    Frontier& f = frontiers[c];
    f.opened = true;
    f.key_q = key_q;
    const auto& leaf = cluster.leaf;
    f.hi = static_cast<size_t>(
        std::lower_bound(leaf.begin(), leaf.end(), f.key_q,
                         [](const LeafEntry& e, double v) {
                           return e.key < v;
                         }) -
        leaf.begin());
    f.lo = f.hi;
    return frontier_bound(f, c);
  };

  // Global best-first scan: always advance the item with the smallest lower
  // bound across ALL clusters, so the worst-of-k radius tightens as fast as
  // possible and whole clusters fall away without being touched.
  using Queued = std::pair<double, size_t>;  // (lower bound, cluster)
  std::priority_queue<Queued, std::vector<Queued>, std::greater<>> queue;

  if (ctx->use_fast) {
    // Clusters enter the queue unopened, keyed by a member-distance lower
    // bound that needs no DP at all: d(q, e) >= d(q, centroid) - cov >=
    // LB(q, centroid) - cov. The centroid DP is deferred until the cluster
    // reaches the head of the queue — by which point worst is usually tight
    // enough that far clusters are popped, compared, and dropped with zero
    // distance work. The cascade runs as one batched sweep over all
    // centroid flats (query-side terms hoisted), bit-identical to the
    // per-cluster calls it replaced.
    const size_t nc = root.clusters.size();
    std::vector<const dist::FlatSequence*> cents(nc);
    std::vector<double> lbs(nc);
    for (size_t c = 0; c < nc; ++c) {
      cents[c] = &root.clusters[c].centroid_flat;
    }
    dist::EgedLowerBoundBatch(ctx->query_flat, cents.data(), nc, lbs.data());
    for (size_t c = 0; c < nc; ++c) {
      const double lb = lbs[c] - root.clusters[c].covering_radius;
      queue.push({std::max(lb, 0.0), c});
    }
  } else {
    // Reference path: eager centroid evaluation in index order — the
    // pre-optimization behavior, preserved for A/B comparison.
    for (size_t c = 0; c < root.clusters.size(); ++c) {
      if (ctx->Exhausted()) return;
      double lb = open_cluster(c);
      if (lb != kInf) queue.push({lb, c});
    }
  }

  while (!queue.empty()) {
    if (ctx->Exhausted()) return;
    auto [lb, c] = queue.top();
    queue.pop();
    if (lb >= worst()) break;  // every remaining entry anywhere is >= lb
    Frontier& f = frontiers[c];
    if (!f.opened) {
      double next = open_cluster(c);
      if (next != kInf) queue.push({next, c});
      continue;
    }
    const auto& leaf = root.clusters[c].leaf;

    // Evaluate the nearer of the two scan directions, with the current
    // worst-of-k radius as tau: a candidate that cannot make the top k is
    // answered by the lower-bound cascade or an abandoned DP.
    double lb_lo = f.lo > 0 ? f.key_q - leaf[f.lo - 1].key : kInf;
    double lb_hi = f.hi < leaf.size() ? leaf[f.hi].key - f.key_q : kInf;
    if (lb_lo <= lb_hi) {
      --f.lo;
      offer(leaf[f.lo].og_id,
            SearchMetricLeaf(ctx, leaf[f.lo], worst()));
    } else {
      offer(leaf[f.hi].og_id,
            SearchMetricLeaf(ctx, leaf[f.hi], worst()));
      ++f.hi;
    }
    double next = frontier_bound(f, c);
    if (next != kInf) {
      queue.push({next, c});
    }
  }
}

size_t StrgIndex::BestRoot(const core::BackgroundGraph& query_bg) const {
  // Algorithm 3 step 2: route to the best-matching background. The
  // similarity of each root is independent, so large multi-segment indexes
  // fan the Hungarian matchings out over the pool; the argmax reduction
  // stays serial in root order (deterministic, first max wins).
  std::vector<double> sims(roots_.size(), -1.0);
  auto sim_one = [&](size_t r) {
    sims[r] = BackgroundSimilarity(roots_[r].bg, query_bg,
                                   params_.bg_tolerance);
  };
  if (params_.pool != nullptr && roots_.size() >= 8) {
    params_.pool->ParallelFor(0, roots_.size(), sim_one);
  } else {
    for (size_t r = 0; r < roots_.size(); ++r) sim_one(r);
  }
  size_t best_root = 0;
  double best_sim = -1.0;
  for (size_t r = 0; r < roots_.size(); ++r) {
    if (sims[r] > best_sim) {
      best_sim = sims[r];
      best_root = r;
    }
  }
  return best_root;
}

KnnResult StrgIndex::Knn(const dist::Sequence& query, size_t k,
                         const core::BackgroundGraph* query_bg,
                         size_t max_distance_computations,
                         double initial_tau) const {
  KnnResult result;
  if (k == 0 || roots_.empty()) return result;

  SearchCtx ctx;
  ctx.query_seq = &query;
  ctx.use_fast = params_.use_fast_kernel;
  if (ctx.use_fast) ctx.query_flat.Assign(query, params_.metric_gap);
  if (max_distance_computations != 0) ctx.budget = max_distance_computations;
  ctx.tau0 = initial_tau;

  if (query_bg != nullptr) {
    SearchClusters(roots_[BestRoot(*query_bg)], &ctx, k, &result);
  } else {
    for (const RootRecord& root : roots_) {
      SearchClusters(root, &ctx, k, &result);
    }
  }
  result.distance_computations = ctx.stats.dp_evals;
  result.lb_prunes = ctx.stats.lb_prunes;
  result.early_abandons = ctx.stats.early_abandons;
  distance_count_.fetch_add(ctx.stats.dp_evals, std::memory_order_relaxed);
  return result;
}

size_t StrgIndex::SizeBytes() const {
  size_t bytes = 0;
  for (const RootRecord& root : roots_) {
    bytes += kIdBytes + kPtrBytes + root.bg.SizeBytes();
    for (const ClusterRecord& cluster : root.clusters) {
      bytes += kIdBytes + kPtrBytes + SequenceBytes(cluster.centroid.size());
      for (const LeafEntry& e : cluster.leaf) {
        bytes += kKeyBytes + kPtrBytes + SequenceBytes(EntryLength(e));
      }
    }
  }
  return bytes;
}

KnnResult StrgIndex::RangeSearch(const dist::Sequence& query, double radius,
                                 const core::BackgroundGraph* query_bg) const {
  KnnResult result;
  if (roots_.empty() || radius < 0.0) return result;

  SearchCtx ctx;
  ctx.query_seq = &query;
  ctx.use_fast = params_.use_fast_kernel;
  if (ctx.use_fast) ctx.query_flat.Assign(query, params_.metric_gap);

  // Batch scratch for the fast path, hoisted so per-cluster bands reuse
  // capacity across the scan.
  std::vector<const dist::FlatSequence*> cands;
  std::vector<const LeafEntry*> band;
  std::vector<dist::FlatSequence> paged_flats;
  std::vector<double> taus, dists;

  auto search_root = [&](const RootRecord& root) {
    for (const ClusterRecord& cluster : root.clusters) {
      // No member can be within radius when even the closest possible key
      // band misses: d(q, e) >= key_q - covering_radius. The centroid
      // evaluation is bounded by that same test, so hopeless clusters are
      // skipped from a lower bound alone.
      const double tau_c =
          ctx.use_fast ? radius + cluster.covering_radius : kInf;
      double key_q = SearchMetricCentroid(&ctx, cluster, tau_c);
      if (key_q - cluster.covering_radius > radius) continue;
      const auto& leaf = cluster.leaf;
      auto lo = std::lower_bound(
          leaf.begin(), leaf.end(), key_q - radius,
          [](const LeafEntry& e, double v) { return e.key < v; });
      if (!ctx.use_fast) {
        for (auto it = lo; it != leaf.end() && it->key <= key_q + radius;
             ++it) {
          double d = SearchMetricLeaf(&ctx, *it, radius);
          if (d <= radius) result.hits.push_back({it->og_id, d});
        }
        continue;
      }
      // Fast path: the whole key band goes through the batched bounded
      // kernel in one call (uniform tau = radius), identical per-candidate
      // arithmetic and stats to the former entry-at-a-time loop. Paged
      // entries are fetched and re-flattened up front; the reserve keeps
      // their flats stable while candidate pointers accumulate.
      band.clear();
      for (auto it = lo; it != leaf.end() && it->key <= key_q + radius;
           ++it) {
        band.push_back(&*it);
      }
      cands.clear();
      paged_flats.clear();
      paged_flats.reserve(band.size());
      for (const LeafEntry* e : band) {
        if (e->record != kNoLeafRecord) {
          paged_flats.emplace_back(FetchSequence(*e), params_.metric_gap);
          cands.push_back(&paged_flats.back());
        } else {
          cands.push_back(&e->flat);
        }
      }
      taus.assign(band.size(), radius);
      dists.resize(band.size());
      dist::EgedBatchBounded(ctx.query_flat, cands.data(), taus.data(),
                             band.size(), dists.data(),
                             &dist::ThreadLocalEgedWorkspace(), &ctx.stats);
      for (size_t i = 0; i < band.size(); ++i) {
        if (dists[i] <= radius) {
          result.hits.push_back({band[i]->og_id, dists[i]});
        }
      }
    }
  };

  if (query_bg != nullptr) {
    search_root(roots_[BestRoot(*query_bg)]);
  } else {
    for (const RootRecord& root : roots_) search_root(root);
  }
  std::sort(result.hits.begin(), result.hits.end(),
            [](const KnnHit& a, const KnnHit& b) {
              return a.distance < b.distance;
            });
  result.distance_computations = ctx.stats.dp_evals;
  result.lb_prunes = ctx.stats.lb_prunes;
  result.early_abandons = ctx.stats.early_abandons;
  distance_count_.fetch_add(ctx.stats.dp_evals, std::memory_order_relaxed);
  return result;
}

size_t StrgIndex::NumClusters() const {
  size_t n = 0;
  for (const RootRecord& r : roots_) n += r.clusters.size();
  return n;
}

size_t StrgIndex::NumIndexedOgs() const {
  size_t n = 0;
  for (const RootRecord& r : roots_) {
    for (const ClusterRecord& c : r.clusters) n += c.leaf.size();
  }
  return n;
}

std::vector<double> StrgIndex::LeafKeys(int root_id,
                                        size_t cluster_pos) const {
  const RootRecord& root = roots_.at(static_cast<size_t>(root_id));
  const ClusterRecord& cluster = root.clusters.at(cluster_pos);
  std::vector<double> keys;
  keys.reserve(cluster.leaf.size());
  for (const LeafEntry& e : cluster.leaf) keys.push_back(e.key);
  return keys;
}

StrgIndex::Stats StrgIndex::ComputeStats() const {
  Stats stats;
  stats.segments = roots_.size();
  double radius_acc = 0.0;
  bool first = true;
  for (const RootRecord& root : roots_) {
    for (const ClusterRecord& cluster : root.clusters) {
      ++stats.clusters;
      stats.ogs += cluster.leaf.size();
      if (first || cluster.leaf.size() < stats.min_leaf) {
        stats.min_leaf = cluster.leaf.size();
      }
      stats.max_leaf = std::max(stats.max_leaf, cluster.leaf.size());
      radius_acc += cluster.covering_radius;
      stats.max_covering_radius =
          std::max(stats.max_covering_radius, cluster.covering_radius);
      first = false;
    }
  }
  if (stats.clusters > 0) {
    stats.mean_leaf =
        static_cast<double>(stats.ogs) / static_cast<double>(stats.clusters);
    stats.mean_covering_radius =
        radius_acc / static_cast<double>(stats.clusters);
  }
  stats.clustering = cluster_stats_;
  return stats;
}

size_t PaperIndexSizeBytes(const core::Decomposition& decomposition,
                           size_t num_clusters) {
  size_t bytes = 0;
  size_t total_len = 0;
  for (const core::Og& og : decomposition.object_graphs) {
    bytes += og.SizeBytes();
    total_len += og.Length();
  }
  // Centroid OGs: estimated at the mean member length (Equation 10's
  // sum_k size(OG_clus_k)).
  if (!decomposition.object_graphs.empty() && num_clusters > 0) {
    size_t mean_len = std::max<size_t>(
        1, total_len / decomposition.object_graphs.size());
    bytes += num_clusters * SequenceBytes(mean_len);
  }
  bytes += decomposition.background.SizeBytes();
  return bytes;
}

}  // namespace strg::index
