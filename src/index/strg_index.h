#ifndef STRG_INDEX_STRG_INDEX_H_
#define STRG_INDEX_STRG_INDEX_H_

#include <atomic>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/clustering.h"
#include "distance/distance.h"
#include "distance/eged.h"
#include "distance/eged_fast.h"
#include "strg/decompose.h"
#include "strg/object_graph.h"
#include "util/thread_pool.h"

namespace strg::storage {
class PagedRecordStore;  // out-of-core leaf backing (storage/pager)
}

namespace strg::index {

/// Configuration of the STRG-Index (Section 5).
struct StrgIndexParams {
  /// Number of OG clusters per background segment. 0 = choose K by the BIC
  /// sweep over [k_min, k_max] (Section 4.2).
  size_t num_clusters = 0;
  size_t k_min = 2;
  size_t k_max = 12;

  /// A leaf holding more OGs than this triggers the Section 5.3 split test
  /// (EM with K = 2 vs K = 1, decided by BIC).
  size_t leaf_split_threshold = 48;

  cluster::ClusterParams cluster_params;

  /// Fixed gap constant g of the metric EGED used for index keys.
  dist::FeatureVec metric_gap{};

  /// Attribute tolerances for matching a query BG against root records.
  graph::AttrTolerance bg_tolerance;

  /// Optional worker pool (not owned). When set, AddSegment fans the leaf
  /// placement out with ParallelFor, EM restarts run concurrently (the pool
  /// is also handed to cluster_params when the caller sets it there), the
  /// split reassignment parallelizes, and BG-similarity root routing fans
  /// out for many-segment indexes. Build results are deterministic: every
  /// parallel loop writes disjoint slots and reductions run serially in
  /// index order. Queries never borrow this pool implicitly.
  ThreadPool* pool = nullptr;

  /// Query-path kernel selector. true (default) runs the flat bounded EGED
  /// kernel (lower-bound cascade + early abandoning, eged_fast.h) on
  /// Knn/RangeSearch; false runs the reference heap-allocating DP — kept as
  /// an A/B knob so tests and bench_distance can pin the fast path to the
  /// reference results and measure the speedup. Both return identical hits
  /// and distances; build paths always use the (numerically identical) flat
  /// exact kernel.
  bool use_fast_kernel = true;

  /// Out-of-core leaf backing (not owned; nullptr = everything in RAM, the
  /// pre-pager behavior). When set, each leaf entry's OG sequence is
  /// serialized into this store at insert and only its record id + length
  /// stay resident; queries fetch, decode, and re-flatten candidates on
  /// demand through the store's buffer cache. The decode is deterministic
  /// (fixed-width doubles), so hits and distances are bit-identical to the
  /// in-RAM mode — only residency changes. Centroids, keys, and covering
  /// radii always stay in RAM (they are what makes pruning cheap). Copies
  /// of the index (COW snapshot generations) share the store; Remove drops
  /// leaf entries without reclaiming their records, since older generations
  /// may still reference them (space returns when the store is rebuilt at
  /// the next engine open). Store errors on the query path surface as
  /// std::runtime_error, matching the index's existing throwing contract.
  storage::PagedRecordStore* paged_store = nullptr;
};

/// One answer of a k-NN search.
struct KnnHit {
  size_t og_id = 0;   ///< caller-supplied OG identifier ("pointer to clip")
  double distance = 0.0;
};

/// k-NN result plus the cost counters the paper reports (Figure 7b).
/// All three are counted in a per-query local context — NOT as a delta of
/// the global atomic — so concurrent queries over one shared index snapshot
/// report exact, non-interfering values.
struct KnnResult {
  std::vector<KnnHit> hits;             ///< ascending by distance
  /// EGED DP evaluations this query ran (full or early-abandoned) — the
  /// "distance computations" of Figure 7b.
  size_t distance_computations = 0;
  /// Candidates eliminated by the O(m+n) lower-bound cascade before any DP.
  size_t lb_prunes = 0;
  /// DPs truncated once a whole row exceeded the pruning radius tau.
  size_t early_abandons = 0;
};

/// STRG-Index (Section 5): a three-level tree.
///
///   root node     — one record per background graph (BG), each pointing to
///   cluster node  — one record per OG cluster: the synthesized centroid OG
///                   and a pointer to
///   leaf node     — member OGs keyed by EGED_M(OG_mem, OG_clus), sorted.
///
/// Keys live in the metric EGED space (Theorem 2), so the triangle
/// inequality |key(q) - key(e)| <= EGED_M(q, e) prunes leaf entries, and
/// cluster covering radii prune whole subtrees. Clusters are produced by
/// EM with the non-metric EGED (Section 4), which is what makes the
/// partitioning tighter than the M-tree's split-based partitioning.
class StrgIndex {
 public:
  explicit StrgIndex(StrgIndexParams params = {});

  /// Copyable so a serving layer can snapshot the whole index (copy-on-write
  /// generations). Hand-written because the atomic distance counter deletes
  /// the defaults; the copy carries the counter value over.
  StrgIndex(const StrgIndex& other);
  StrgIndex& operator=(const StrgIndex& other);

  /// Builds one index segment per Algorithm 2: stores the BG in the root
  /// node, clusters the OG sequences, fills cluster + leaf nodes. `og_ids`
  /// are the caller's identifiers (indices into its OG store); when empty,
  /// 0..n-1 is used. Returns the root record id.
  int AddSegment(core::BackgroundGraph bg,
                 std::vector<dist::Sequence> og_sequences,
                 std::vector<size_t> og_ids = {});

  /// Inserts one OG into an existing segment (nearest cluster; may trigger
  /// the Section 5.3 leaf split).
  void Insert(int root_id, dist::Sequence og_sequence, size_t og_id);

  /// Removes every leaf entry carrying `og_id` (the video clip was deleted).
  /// Covering radii shrink accordingly; empty clusters are dropped.
  /// Returns the number of entries removed.
  size_t Remove(size_t og_id);

  /// k-NN search (Algorithm 3). When `query_bg` is given, only the best
  /// matching root record is searched; otherwise all cluster nodes are
  /// visited (the paper's "query does not consider a background" case).
  ///
  /// `max_distance_computations` (0 = unlimited) caps this query's own DP
  /// evaluations (counted locally, so concurrent queries cannot consume
  /// each other's budget): once the budget is exhausted the current best
  /// candidates are returned. This
  /// cost-bounded mode is how Figure 7(c) compares retrieval accuracy — an
  /// exact k-NN would return identical answers from any correct index, so
  /// accuracy differences only show up at a fixed search budget, where a
  /// better-organized index reaches the true neighbors sooner.
  ///
  /// `initial_tau` (default +inf = unbounded) seeds the worst-of-heap
  /// pruning radius before any hit is found: candidates at distance
  /// >= initial_tau are never reported and are pruned exactly as if the
  /// heap already held k hits at that distance. This is the scatter-gather
  /// hook — a sharded search passes the running global worst-of-k from
  /// already-completed shards so later shard legs skip the work of proving
  /// what the gatherer already knows. Hits below initial_tau are exact and
  /// bit-identical to the unbounded search's (the bounded kernel is exact
  /// below tau); the caller must only pass a finite tau it can prove is an
  /// upper bound on the k-th global neighbor.
  KnnResult Knn(const dist::Sequence& query, size_t k,
                const core::BackgroundGraph* query_bg = nullptr,
                size_t max_distance_computations = 0,
                double initial_tau =
                    std::numeric_limits<double>::infinity()) const;

  /// Range (similarity) search: every indexed OG within `radius` of the
  /// query under the metric EGED, ascending by distance. Uses the same
  /// leaf-key band pruning as Knn: only entries with
  /// |key(e) - key(q)| <= radius can qualify.
  KnnResult RangeSearch(const dist::Sequence& query, double radius,
                        const core::BackgroundGraph* query_bg = nullptr) const;

  /// Total distance computations since construction (build + queries).
  /// Atomic (relaxed) so concurrent readers sharing one published index
  /// snapshot race-freely account their work — the counter is the only
  /// state the const query path (Knn / RangeSearch) touches. Queries count
  /// into a per-query local context and add their total here once at the
  /// end, so KnnResult::distance_computations is exact even under
  /// concurrent load and this aggregate stays monotone.
  size_t TotalDistanceComputations() const {
    return distance_count_.load(std::memory_order_relaxed);
  }
  void ResetDistanceCount() {
    distance_count_.store(0, std::memory_order_relaxed);
  }

  /// Index footprint per Equation 10: member OGs + centroid OGs + BGs,
  /// plus per-record key/pointer overhead.
  size_t SizeBytes() const;

  size_t NumSegments() const { return roots_.size(); }
  size_t NumClusters() const;
  size_t NumIndexedOgs() const;

  /// Keys of one cluster's leaf (ascending), for tests/inspection.
  std::vector<double> LeafKeys(int root_id, size_t cluster_pos) const;

  /// Structural health snapshot, for monitoring and the CLI's info view.
  struct Stats {
    size_t segments = 0;
    size_t clusters = 0;
    size_t ogs = 0;
    size_t min_leaf = 0;        ///< smallest leaf occupancy
    size_t max_leaf = 0;        ///< largest leaf occupancy
    double mean_leaf = 0.0;
    double mean_covering_radius = 0.0;
    double max_covering_radius = 0.0;
    /// Build-side clustering cost, accumulated across every AddSegment EM
    /// fit and split-key re-clustering (MaybeSplit); the bounded-assignment
    /// counters show what triangle-inequality pruning saved on this index.
    cluster::ClusterStats clustering;
  };
  Stats ComputeStats() const;

 private:
  /// Leaf entry with no paged record (its sequence is resident in RAM).
  static constexpr uint64_t kNoLeafRecord = ~0ull;

  struct LeafEntry {
    double key = 0.0;            ///< EGED_M(member, cluster centroid)
    size_t og_id = 0;            ///< "pointer" to the real video clip
    dist::Sequence sequence;     ///< the actual OG (kept in the leaf)
    /// Flat SoA form + precomputed gap costs of `sequence` against the
    /// index's metric gap — built once at insert, consumed by every query
    /// the entry is ever a candidate for. Travels with the entry across
    /// splits (it depends only on the sequence, not on the centroid).
    dist::FlatSequence flat;
    /// Paged mode: the record id of the serialized sequence in
    /// params_.paged_store, and its length (kept resident so SizeBytes and
    /// split bookkeeping need no fetch). sequence/flat above stay empty.
    uint64_t record = kNoLeafRecord;
    uint32_t seq_len = 0;
  };
  struct ClusterRecord {
    int id = 0;
    dist::Sequence centroid;           ///< OG_clus
    dist::FlatSequence centroid_flat;  ///< flat form of the centroid
    double covering_radius = 0.0;      ///< max leaf key
    std::vector<LeafEntry> leaf;       ///< sorted by key
  };
  struct RootRecord {
    int id = 0;
    core::BackgroundGraph bg;
    std::vector<ClusterRecord> clusters;
  };

  /// Per-query search state: the query's flat form, the distance budget,
  /// and local counters (the fix for the cross-query counter race — nothing
  /// here is shared between concurrent queries). This is the index's whole
  /// concurrency story, so it needs no STRG_GUARDED_BY fields: the const
  /// query path (Knn / RangeSearch) reads an immutable published snapshot,
  /// accumulates into this stack-local ctx, and its only shared write is
  /// one relaxed add to distance_count_ at the end; mutation (AddSegment /
  /// Insert / Remove) happens before publication, under the serving
  /// layer's writer_mu_ clone-mutate-publish protocol.
  struct SearchCtx;

  dist::FlatSequence MakeFlat(const dist::Sequence& seq) const {
    return dist::FlatSequence(seq, params_.metric_gap);
  }

  /// Build-path distance evaluations; both count into the global atomic.
  double Metric(const dist::Sequence& a, const dist::Sequence& b) const;
  double MetricFlat(const dist::FlatSequence& a,
                    const dist::FlatSequence& b) const;
  /// Bounded build-path evaluation (exact when the result is <= tau); only
  /// evaluations that ran the DP count toward the global atomic.
  double MetricFlatBounded(const dist::FlatSequence& a,
                           const dist::FlatSequence& b, double tau) const;

  /// Query-path evaluations: count into ctx, honor use_fast_kernel.
  double SearchMetricLeaf(SearchCtx* ctx, const LeafEntry& entry,
                          double tau) const;
  double SearchMetricCentroid(SearchCtx* ctx, const ClusterRecord& cluster,
                              double tau) const;

  /// Paged-mode helpers (no-ops / trivial when paged_store is unset).
  /// Offload serializes the entry's sequence into the store and drops the
  /// resident copies; Fetch reads it back (throwing std::runtime_error on a
  /// store failure, per the class contract). EntryLength works in both
  /// modes.
  void OffloadEntry(LeafEntry* entry);
  dist::Sequence FetchSequence(const LeafEntry& entry) const;
  size_t EntryLength(const LeafEntry& entry) const {
    return entry.record == kNoLeafRecord ? entry.sequence.size()
                                         : entry.seq_len;
  }

  void InsertIntoCluster(ClusterRecord* cluster, dist::Sequence seq,
                         size_t og_id);
  void MaybeSplit(RootRecord* root, size_t cluster_pos);
  void SearchClusters(const RootRecord& root, SearchCtx* ctx, size_t k,
                      KnnResult* result) const;
  size_t BestRoot(const core::BackgroundGraph& query_bg) const;

  StrgIndexParams params_;
  dist::EgedMetricDistance metric_;
  dist::EgedDistance nonmetric_;
  mutable std::atomic<size_t> distance_count_{0};
  /// Clustering cost counters, fed to every EmCluster call the index makes.
  /// Plain (non-atomic) because all writers — AddSegment and the
  /// Insert-driven MaybeSplit — run under the serving layer's single-writer
  /// protocol, and EmCluster itself merges restart-local counters serially
  /// before touching the sink.
  cluster::ClusterStats cluster_stats_;
  std::vector<RootRecord> roots_;
  int next_cluster_id_ = 0;
};

/// size(STRG-Index) per Equation 10, computed from a decomposition without
/// building the index — used by the Section 5.4 size analysis tests.
size_t PaperIndexSizeBytes(const core::Decomposition& decomposition,
                           size_t num_clusters);

}  // namespace strg::index

#endif  // STRG_INDEX_STRG_INDEX_H_
