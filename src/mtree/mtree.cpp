#include "mtree/mtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <stdexcept>

#include "util/random.h"

namespace strg::mtree {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

struct MTree::Entry {
  dist::Sequence object;
  size_t id = 0;                  // data entries only
  double parent_distance = 0.0;   // distance to the parent routing object
  double radius = 0.0;            // routing entries only
  std::unique_ptr<Node> child;    // routing entries only

  bool IsRouting() const { return child != nullptr; }
};

struct MTree::Node {
  bool is_leaf = true;
  std::vector<Entry> entries;
};

class MTree::Impl {
 public:
  Impl(const dist::SequenceDistance* metric, MTreeParams params)
      : counter_(metric), params_(params), rng_(params.seed) {
    root_ = std::make_unique<Node>();
    root_->is_leaf = true;
  }

  double Dist(const dist::Sequence& a, const dist::Sequence& b) const {
    return counter_(a, b);
  }

  void Insert(dist::Sequence object, size_t id) {
    Entry data;
    data.object = std::move(object);
    data.id = id;
    auto split = InsertRec(root_.get(), nullptr, std::move(data));
    if (split) {
      auto new_root = std::make_unique<Node>();
      new_root->is_leaf = false;
      split->first.parent_distance = 0.0;
      split->second.parent_distance = 0.0;
      new_root->entries.push_back(std::move(split->first));
      new_root->entries.push_back(std::move(split->second));
      root_ = std::move(new_root);
    }
  }

  MTreeKnnResult Knn(const dist::Sequence& query, size_t k,
                     size_t max_distance_computations) const {
    MTreeKnnResult result;
    if (k == 0) return result;
    size_t before = counter_.count();
    const size_t budget_limit =
        max_distance_computations == 0
            ? std::numeric_limits<size_t>::max()
            : before + max_distance_computations;

    // Pending subtrees ordered by lower bound (min-heap).
    struct Pending {
      double lower_bound;
      const Node* node;
      double d_parent;  // d(query, node's routing object)
      bool has_parent;
      bool operator>(const Pending& o) const {
        return lower_bound > o.lower_bound;
      }
    };
    std::priority_queue<Pending, std::vector<Pending>, std::greater<>> heap;
    heap.push({0.0, root_.get(), 0.0, false});

    auto& hits = result.hits;
    auto r_k = [&]() {
      return hits.size() < k ? kInf : hits.back().distance;
    };
    auto offer = [&](size_t id, double d) {
      if (d >= r_k()) return;
      auto pos = std::lower_bound(hits.begin(), hits.end(), d,
                                  [](const MTreeHit& h, double v) {
                                    return h.distance < v;
                                  });
      hits.insert(pos, MTreeHit{id, d});
      if (hits.size() > k) hits.pop_back();
    };

    while (!heap.empty()) {
      if (counter_.count() >= budget_limit) break;
      Pending top = heap.top();
      heap.pop();
      if (top.lower_bound >= r_k()) break;
      const Node* node = top.node;
      for (const Entry& e : node->entries) {
        if (counter_.count() >= budget_limit) break;
        // Parent-distance pruning avoids computing d(q, e.object) at all
        // when the triangle inequality already rules the entry out.
        if (top.has_parent) {
          double gap = std::fabs(top.d_parent - e.parent_distance);
          double slack = node->is_leaf ? 0.0 : e.radius;
          if (gap - slack >= r_k()) continue;
        }
        double d = Dist(query, e.object);
        if (node->is_leaf) {
          offer(e.id, d);
        } else {
          double lb = std::max(0.0, d - e.radius);
          if (lb < r_k()) {
            heap.push({lb, e.child.get(), d, true});
          }
        }
      }
    }
    result.distance_computations = counter_.count() - before;
    return result;
  }

  MTreeKnnResult RangeSearch(const dist::Sequence& query,
                             double radius) const {
    MTreeKnnResult result;
    size_t before = counter_.count();
    RangeRec(root_.get(), query, radius, 0.0, false, &result);
    std::sort(result.hits.begin(), result.hits.end(),
              [](const MTreeHit& a, const MTreeHit& b) {
                return a.distance < b.distance;
              });
    result.distance_computations = counter_.count() - before;
    return result;
  }

  size_t Height() const {
    size_t h = 1;
    const Node* n = root_.get();
    while (!n->is_leaf) {
      ++h;
      n = n->entries.front().child.get();
    }
    return h;
  }

  size_t TotalDistanceComputations() const { return counter_.count(); }

  void CheckInvariants() const { CheckRec(root_.get(), nullptr, 0.0); }

 private:
  using SplitPair = std::pair<Entry, Entry>;

  /// Inserts into the subtree; returns the two replacement routing entries
  /// if the node split, with parent_distance left for the caller to fix.
  std::optional<SplitPair> InsertRec(Node* node,
                                     const dist::Sequence* parent_obj,
                                     Entry data) {
    if (node->is_leaf) {
      data.parent_distance =
          parent_obj != nullptr ? Dist(data.object, *parent_obj) : 0.0;
      data.radius = 0.0;
      data.child = nullptr;
      node->entries.push_back(std::move(data));
      if (node->entries.size() > params_.node_capacity) {
        return Split(node);
      }
      return std::nullopt;
    }

    // Choose the subtree: minimal distance if the object already fits in a
    // covering radius, else minimal radius enlargement.
    size_t best = 0;
    double best_d = kInf;
    bool best_fits = false;
    std::vector<double> dists(node->entries.size());
    for (size_t i = 0; i < node->entries.size(); ++i) {
      dists[i] = Dist(data.object, node->entries[i].object);
      bool fits = dists[i] <= node->entries[i].radius;
      double score = fits ? dists[i] : dists[i] - node->entries[i].radius;
      if ((fits && !best_fits) ||
          (fits == best_fits && score < best_d)) {
        best = i;
        best_d = score;
        best_fits = fits;
      }
    }
    Entry& route = node->entries[best];
    route.radius = std::max(route.radius, dists[best]);

    auto split = InsertRec(route.child.get(), &route.object, std::move(data));
    if (!split) return std::nullopt;

    // Child split: replace the routing entry with the two promoted ones.
    Entry e1 = std::move(split->first);
    Entry e2 = std::move(split->second);
    e1.parent_distance =
        parent_obj != nullptr ? Dist(e1.object, *parent_obj) : 0.0;
    e2.parent_distance =
        parent_obj != nullptr ? Dist(e2.object, *parent_obj) : 0.0;
    node->entries[best] = std::move(e1);
    node->entries.push_back(std::move(e2));
    if (node->entries.size() > params_.node_capacity) {
      return Split(node);
    }
    return std::nullopt;
  }

  /// Splits an overflowing node: promote two objects, partition by
  /// generalized hyperplane, and return the two routing entries.
  SplitPair Split(Node* node) {
    std::vector<Entry>& entries = node->entries;
    const size_t n = entries.size();

    // Candidate promotion pairs.
    std::vector<std::pair<size_t, size_t>> candidates;
    if (params_.promotion == Promotion::kRandom || n < 3) {
      size_t a = rng_.Index(n);
      size_t b = rng_.Index(n - 1);
      if (b >= a) ++b;
      candidates.emplace_back(a, b);
    } else {
      for (size_t s = 0; s < params_.sample_pairs; ++s) {
        size_t a = rng_.Index(n);
        size_t b = rng_.Index(n - 1);
        if (b >= a) ++b;
        candidates.emplace_back(std::min(a, b), std::max(a, b));
      }
    }

    // Evaluate candidates by the larger of the two covering radii
    // (the mM_RAD criterion restricted to sampled pairs).
    std::vector<char> best_side(n, 0);
    size_t best_a = candidates[0].first, best_b = candidates[0].second;
    double best_score = kInf;
    std::vector<char> side(n, 0);
    for (const auto& [a, b] : candidates) {
      double ra = 0.0, rb = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double da = Dist(entries[i].object, entries[a].object);
        double db = Dist(entries[i].object, entries[b].object);
        double slack = entries[i].IsRouting() ? entries[i].radius : 0.0;
        if (da <= db) {
          side[i] = 0;
          ra = std::max(ra, da + slack);
        } else {
          side[i] = 1;
          rb = std::max(rb, db + slack);
        }
      }
      double score = std::max(ra, rb);
      if (score < best_score) {
        best_score = score;
        best_a = a;
        best_b = b;
        best_side = side;
      }
    }

    auto node_a = std::make_unique<Node>();
    auto node_b = std::make_unique<Node>();
    node_a->is_leaf = node->is_leaf;
    node_b->is_leaf = node->is_leaf;

    Entry ra, rb;
    ra.object = entries[best_a].object;  // copy: promoted object
    rb.object = entries[best_b].object;
    ra.radius = 0.0;
    rb.radius = 0.0;

    for (size_t i = 0; i < n; ++i) {
      Entry e = std::move(entries[i]);
      Entry& promoted = best_side[i] == 0 ? ra : rb;
      Node* target = best_side[i] == 0 ? node_a.get() : node_b.get();
      double d = Dist(e.object, promoted.object);
      double slack = e.IsRouting() ? e.radius : 0.0;
      promoted.radius = std::max(promoted.radius, d + slack);
      e.parent_distance = d;
      target->entries.push_back(std::move(e));
    }
    ra.child = std::move(node_a);
    rb.child = std::move(node_b);
    return {std::move(ra), std::move(rb)};
  }

  void RangeRec(const Node* node, const dist::Sequence& query, double radius,
                double d_parent, bool has_parent,
                MTreeKnnResult* result) const {
    for (const Entry& e : node->entries) {
      if (has_parent) {
        double gap = std::fabs(d_parent - e.parent_distance);
        double slack = node->is_leaf ? 0.0 : e.radius;
        if (gap - slack > radius) continue;
      }
      double d = Dist(query, e.object);
      if (node->is_leaf) {
        if (d <= radius) result->hits.push_back({e.id, d});
      } else if (d - e.radius <= radius) {
        RangeRec(e.child.get(), query, radius, d, true, result);
      }
    }
  }

  void CollectObjects(const Node* node,
                      std::vector<const dist::Sequence*>* out) const {
    for (const Entry& e : node->entries) {
      if (e.IsRouting()) {
        CollectObjects(e.child.get(), out);
      } else {
        out->push_back(&e.object);
      }
    }
  }

  void CheckRec(const Node* node, const dist::Sequence* parent_obj,
                double /*parent_radius*/) const {
    for (const Entry& e : node->entries) {
      if (parent_obj != nullptr) {
        double d = Dist(e.object, *parent_obj);
        if (std::fabs(d - e.parent_distance) > 1e-6) {
          throw std::logic_error("MTree: stale parent_distance");
        }
      }
      if (e.IsRouting()) {
        // Every data object under a routing entry must lie within its
        // covering radius.
        std::vector<const dist::Sequence*> objs;
        CollectObjects(e.child.get(), &objs);
        for (const dist::Sequence* o : objs) {
          if (Dist(*o, e.object) > e.radius + 1e-6) {
            throw std::logic_error("MTree: covering radius violated");
          }
        }
        CheckRec(e.child.get(), &e.object, e.radius);
      }
    }
  }

  dist::CountingDistance counter_;
  MTreeParams params_;
  mutable Rng rng_;
  std::unique_ptr<Node> root_;
};

MTree::MTree(const dist::SequenceDistance* metric, MTreeParams params)
    : impl_(std::make_unique<Impl>(metric, params)) {}
MTree::~MTree() = default;
MTree::MTree(MTree&&) noexcept = default;
MTree& MTree::operator=(MTree&&) noexcept = default;

void MTree::Insert(dist::Sequence object, size_t id) {
  impl_->Insert(std::move(object), id);
  ++size_;
}

MTreeKnnResult MTree::Knn(const dist::Sequence& query, size_t k,
                          size_t max_distance_computations) const {
  return impl_->Knn(query, k, max_distance_computations);
}

MTreeKnnResult MTree::RangeSearch(const dist::Sequence& query,
                                  double radius) const {
  return impl_->RangeSearch(query, radius);
}

size_t MTree::Height() const { return impl_->Height(); }

size_t MTree::TotalDistanceComputations() const {
  return impl_->TotalDistanceComputations();
}

void MTree::CheckInvariants() const { impl_->CheckInvariants(); }

}  // namespace strg::mtree
