#ifndef STRG_MTREE_MTREE_H_
#define STRG_MTREE_MTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "distance/distance.h"

namespace strg::mtree {

/// Promotion policy for node splits [5]: RANDOM (MT-RA) promotes a random
/// pair of entries; SAMPLING (MT-SA) samples candidate pairs and keeps the
/// one minimizing the larger covering radius (the paper's fastest and most
/// accurate variants respectively).
enum class Promotion { kRandom, kSampling };

struct MTreeParams {
  size_t node_capacity = 16;  ///< max entries per node before a split
  Promotion promotion = Promotion::kRandom;
  size_t sample_pairs = 10;   ///< candidate pairs tried by SAMPLING
  uint64_t seed = 99;
};

/// k-NN answer (mirrors the STRG-Index result shape).
struct MTreeHit {
  size_t id = 0;
  double distance = 0.0;
};
struct MTreeKnnResult {
  std::vector<MTreeHit> hits;
  size_t distance_computations = 0;
};

/// M-tree: a dynamic, balanced metric access method (Ciaccia, Patella &
/// Zezula, VLDB '97) — the baseline index of Section 6.3. Stores OG feature
/// sequences under any metric distance; this reproduction uses the metric
/// EGED so both indexes pay identical per-distance costs (Section 6.1's
/// fairness setup).
///
/// Implementation notes: single-way insert descending by minimal radius
/// enlargement; overflow handled by promotion (RANDOM / SAMPLING) and
/// generalized-hyperplane partitioning; search prunes with covering radii
/// and parent-distance lower bounds, counting every distance evaluation.
class MTree {
 public:
  MTree(const dist::SequenceDistance* metric, MTreeParams params = {});
  ~MTree();
  MTree(MTree&&) noexcept;
  MTree& operator=(MTree&&) noexcept;

  /// Inserts an object with a caller identifier.
  void Insert(dist::Sequence object, size_t id);

  /// k nearest neighbors of `query`, counting distance computations.
  /// `max_distance_computations` (0 = unlimited) caps the search cost and
  /// returns the best candidates found within the budget — the same
  /// cost-bounded mode the STRG-Index offers, used by the Figure 7(c)
  /// accuracy comparison.
  MTreeKnnResult Knn(const dist::Sequence& query, size_t k,
                     size_t max_distance_computations = 0) const;

  /// Range query: all objects within `radius` of `query`.
  MTreeKnnResult RangeSearch(const dist::Sequence& query,
                             double radius) const;

  size_t Size() const { return size_; }
  size_t Height() const;

  /// Distance computations accumulated since construction (insert+query).
  size_t TotalDistanceComputations() const;

  /// Sanity check of M-tree invariants (covering radii, parent distances);
  /// throws std::logic_error on violation. Test hook.
  void CheckInvariants() const;

 private:
  struct Node;
  struct Entry;
  class Impl;
  std::unique_ptr<Impl> impl_;
  size_t size_ = 0;
};

}  // namespace strg::mtree

#endif  // STRG_MTREE_MTREE_H_
