#include "rtree3d/rtree3d.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <stdexcept>

namespace strg::rtree3d {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Box3 Box3::OfOg(const core::Og& og) {
  Box3 box;
  box.min = {kInf, kInf, kInf};
  box.max = {-kInf, -kInf, -kInf};
  for (size_t i = 0; i < og.sequence.size(); ++i) {
    const graph::NodeAttr& a = og.sequence[i];
    double t = static_cast<double>(og.start_frame) + static_cast<double>(i);
    box.min = {std::min(box.min[0], a.cx), std::min(box.min[1], a.cy),
               std::min(box.min[2], t)};
    box.max = {std::max(box.max[0], a.cx), std::max(box.max[1], a.cy),
               std::max(box.max[2], t)};
  }
  return box;
}

double Box3::Volume() const {
  double v = 1.0;
  for (int d = 0; d < 3; ++d) v *= std::max(0.0, max[d] - min[d]);
  return v;
}

double Box3::Margin() const {
  double m = 0.0;
  for (int d = 0; d < 3; ++d) m += std::max(0.0, max[d] - min[d]);
  return m;
}

bool Box3::Intersects(const Box3& o) const {
  for (int d = 0; d < 3; ++d) {
    if (max[d] < o.min[d] || o.max[d] < min[d]) return false;
  }
  return true;
}

bool Box3::Contains(const Box3& o) const {
  for (int d = 0; d < 3; ++d) {
    if (o.min[d] < min[d] || o.max[d] > max[d]) return false;
  }
  return true;
}

void Box3::Expand(const Box3& o) {
  for (int d = 0; d < 3; ++d) {
    min[d] = std::min(min[d], o.min[d]);
    max[d] = std::max(max[d], o.max[d]);
  }
}

Box3 Box3::Union(const Box3& o) const {
  Box3 u = *this;
  u.Expand(o);
  return u;
}

double Box3::Enlargement(const Box3& o) const {
  return Union(o).Volume() - Volume();
}

double Box3::MinDist2(const Box3& o) const {
  double acc = 0.0;
  for (int d = 0; d < 3; ++d) {
    double gap = 0.0;
    if (o.max[d] < min[d]) {
      gap = min[d] - o.max[d];
    } else if (max[d] < o.min[d]) {
      gap = o.min[d] - max[d];
    }
    acc += gap * gap;
  }
  return acc;
}

struct RTree3D::Entry {
  Box3 box;
  size_t id = 0;                // leaf entries
  std::unique_ptr<Node> child;  // internal entries
  bool IsInternal() const { return child != nullptr; }
};

struct RTree3D::Node {
  bool is_leaf = true;
  std::vector<Entry> entries;
};

class RTree3D::Impl {
 public:
  explicit Impl(RTreeParams params) : params_(params) {
    if (params_.min_entries > params_.max_entries / 2) {
      throw std::invalid_argument("RTree3D: min_entries > max_entries / 2");
    }
    root_ = std::make_unique<Node>();
  }

  void Insert(const Box3& box, size_t id) {
    Entry entry;
    entry.box = box;
    entry.id = id;
    auto split = InsertRec(root_.get(), std::move(entry));
    if (split) {
      auto new_root = std::make_unique<Node>();
      new_root->is_leaf = false;
      new_root->entries.push_back(std::move(split->first));
      new_root->entries.push_back(std::move(split->second));
      root_ = std::move(new_root);
    }
  }

  void Window(const Node* node, const Box3& window,
              std::vector<size_t>* out) const {
    for (const Entry& e : node->entries) {
      if (!e.box.Intersects(window)) continue;
      if (node->is_leaf) {
        out->push_back(e.id);
      } else {
        Window(e.child.get(), window, out);
      }
    }
  }

  std::vector<RTreeHit> Knn(const Box3& query, size_t k) const {
    std::vector<RTreeHit> hits;
    if (k == 0) return hits;
    struct Pending {
      double dist2;
      const Node* node;
      bool operator>(const Pending& o) const { return dist2 > o.dist2; }
    };
    std::priority_queue<Pending, std::vector<Pending>, std::greater<>> heap;
    heap.push({0.0, root_.get()});
    auto worst2 = [&]() {
      if (hits.size() < k) return kInf;
      double d = hits.back().mbr_distance;
      return d * d;
    };
    while (!heap.empty()) {
      Pending top = heap.top();
      heap.pop();
      if (top.dist2 > worst2()) break;
      for (const Entry& e : top.node->entries) {
        double d2 = e.box.MinDist2(query);
        if (d2 > worst2()) continue;
        if (top.node->is_leaf) {
          RTreeHit hit{e.id, std::sqrt(d2)};
          auto pos = std::lower_bound(
              hits.begin(), hits.end(), hit.mbr_distance,
              [](const RTreeHit& h, double v) { return h.mbr_distance < v; });
          hits.insert(pos, hit);
          if (hits.size() > k) hits.pop_back();
        } else {
          heap.push({d2, e.child.get()});
        }
      }
    }
    return hits;
  }

  size_t Height() const {
    size_t h = 1;
    const Node* n = root_.get();
    while (!n->is_leaf) {
      ++h;
      n = n->entries.front().child.get();
    }
    return h;
  }

  const Node* root() const { return root_.get(); }

  void CheckRec(const Node* node) const {
    for (const Entry& e : node->entries) {
      if (!e.IsInternal()) continue;
      // The internal entry's box must tightly contain its child's boxes.
      for (const Entry& ce : e.child->entries) {
        if (!e.box.Contains(ce.box)) {
          throw std::logic_error("RTree3D: child box escapes parent MBR");
        }
      }
      CheckRec(e.child.get());
    }
  }

 private:
  using SplitPair = std::pair<Entry, Entry>;

  static Box3 NodeBox(const Node& node) {
    Box3 box = node.entries.front().box;
    for (const Entry& e : node.entries) box.Expand(e.box);
    return box;
  }

  std::optional<SplitPair> InsertRec(Node* node, Entry entry) {
    if (node->is_leaf) {
      node->entries.push_back(std::move(entry));
      if (node->entries.size() > params_.max_entries) return Split(node);
      return std::nullopt;
    }
    // Choose subtree: least enlargement, ties by smaller volume.
    size_t best = 0;
    double best_enlarge = kInf, best_vol = kInf;
    for (size_t i = 0; i < node->entries.size(); ++i) {
      double enlarge = node->entries[i].box.Enlargement(entry.box);
      double vol = node->entries[i].box.Volume();
      if (enlarge < best_enlarge ||
          (enlarge == best_enlarge && vol < best_vol)) {
        best = i;
        best_enlarge = enlarge;
        best_vol = vol;
      }
    }
    node->entries[best].box.Expand(entry.box);
    auto split = InsertRec(node->entries[best].child.get(), std::move(entry));
    if (!split) return std::nullopt;
    node->entries[best] = std::move(split->first);
    node->entries.push_back(std::move(split->second));
    if (node->entries.size() > params_.max_entries) return Split(node);
    return std::nullopt;
  }

  /// Guttman's quadratic split.
  SplitPair Split(Node* node) {
    std::vector<Entry>& entries = node->entries;
    const size_t n = entries.size();

    // Pick the pair of seeds wasting the most volume together.
    size_t seed_a = 0, seed_b = 1;
    double worst_waste = -kInf;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double waste = entries[i].box.Union(entries[j].box).Volume() -
                       entries[i].box.Volume() - entries[j].box.Volume();
        if (waste > worst_waste) {
          worst_waste = waste;
          seed_a = i;
          seed_b = j;
        }
      }
    }

    auto node_a = std::make_unique<Node>();
    auto node_b = std::make_unique<Node>();
    node_a->is_leaf = node->is_leaf;
    node_b->is_leaf = node->is_leaf;
    Box3 box_a = entries[seed_a].box;
    Box3 box_b = entries[seed_b].box;
    node_a->entries.push_back(std::move(entries[seed_a]));
    node_b->entries.push_back(std::move(entries[seed_b]));

    std::vector<Entry> rest;
    for (size_t i = 0; i < n; ++i) {
      if (i != seed_a && i != seed_b) rest.push_back(std::move(entries[i]));
    }

    // Distribute the rest: honor min_entries, otherwise least enlargement.
    for (size_t i = 0; i < rest.size(); ++i) {
      size_t remaining = rest.size() - i;
      Node* target;
      if (node_a->entries.size() + remaining <= params_.min_entries) {
        target = node_a.get();
      } else if (node_b->entries.size() + remaining <= params_.min_entries) {
        target = node_b.get();
      } else {
        double ea = box_a.Enlargement(rest[i].box);
        double eb = box_b.Enlargement(rest[i].box);
        target = ea <= eb ? node_a.get() : node_b.get();
      }
      (target == node_a.get() ? box_a : box_b).Expand(rest[i].box);
      target->entries.push_back(std::move(rest[i]));
    }

    Entry ea, eb;
    ea.box = NodeBox(*node_a);
    eb.box = NodeBox(*node_b);
    ea.child = std::move(node_a);
    eb.child = std::move(node_b);
    return SplitPair{std::move(ea), std::move(eb)};
  }

  RTreeParams params_;
  std::unique_ptr<Node> root_;
};

RTree3D::RTree3D(RTreeParams params)
    : impl_(std::make_unique<Impl>(params)) {}
RTree3D::~RTree3D() = default;
RTree3D::RTree3D(RTree3D&&) noexcept = default;
RTree3D& RTree3D::operator=(RTree3D&&) noexcept = default;

void RTree3D::Insert(const Box3& box, size_t id) {
  impl_->Insert(box, id);
  ++size_;
}

std::vector<size_t> RTree3D::WindowQuery(const Box3& window) const {
  std::vector<size_t> out;
  impl_->Window(impl_->root(), window, &out);
  return out;
}

std::vector<RTreeHit> RTree3D::Knn(const Box3& query, size_t k) const {
  return impl_->Knn(query, k);
}

size_t RTree3D::Height() const { return impl_->Height(); }

void RTree3D::CheckInvariants() const { impl_->CheckRec(impl_->root()); }

}  // namespace strg::rtree3d
