#ifndef STRG_RTREE3D_RTREE3D_H_
#define STRG_RTREE3D_RTREE3D_H_

#include <array>
#include <memory>
#include <vector>

#include "strg/object_graph.h"

namespace strg::rtree3d {

/// Axis-aligned box in (x, y, t) space.
///
/// The 3DR-tree (Theodoridis et al. [26], discussed in the paper's related
/// work) indexes a moving object by the minimum bounding box of its
/// trajectory with time treated as just another dimension. The paper's
/// criticism — which bench_ablation_3drtree demonstrates — is that spatial
/// and temporal extents are not comparable, so MBR proximity is a poor
/// surrogate for spatio-temporal similarity.
struct Box3 {
  std::array<double, 3> min{0, 0, 0};
  std::array<double, 3> max{0, 0, 0};

  static Box3 OfOg(const core::Og& og);

  double Volume() const;
  double Margin() const;
  bool Intersects(const Box3& o) const;
  bool Contains(const Box3& o) const;
  void Expand(const Box3& o);
  Box3 Union(const Box3& o) const;
  /// Volume increase if `o` were merged in.
  double Enlargement(const Box3& o) const;
  /// Minimum squared Euclidean distance between the two boxes (0 when they
  /// intersect). Used for best-first k-NN over MBRs.
  double MinDist2(const Box3& o) const;
};

struct RTreeParams {
  size_t max_entries = 8;
  size_t min_entries = 3;  ///< <= max_entries / 2
};

struct RTreeHit {
  size_t id = 0;
  double mbr_distance = 0.0;  ///< sqrt(MinDist2) to the query box
};

/// Guttman R-tree over 3-D boxes with quadratic split. Serves as the
/// "treat time as another dimension" baseline index for OGs; supports
/// window (range) queries and best-first k-NN on MBR distance.
class RTree3D {
 public:
  explicit RTree3D(RTreeParams params = {});
  ~RTree3D();
  RTree3D(RTree3D&&) noexcept;
  RTree3D& operator=(RTree3D&&) noexcept;

  void Insert(const Box3& box, size_t id);

  /// Ids of every entry whose box intersects the window.
  std::vector<size_t> WindowQuery(const Box3& window) const;

  /// k nearest entries by MBR distance to the query box.
  std::vector<RTreeHit> Knn(const Box3& query, size_t k) const;

  size_t Size() const { return size_; }
  size_t Height() const;

  /// Verifies bounding-box containment invariants; throws on violation.
  void CheckInvariants() const;

 private:
  struct Node;
  struct Entry;
  class Impl;
  std::unique_ptr<Impl> impl_;
  size_t size_ = 0;
};

}  // namespace strg::rtree3d

#endif  // STRG_RTREE3D_RTREE3D_H_
