#include "segment/connected_components.h"

#include <numeric>

namespace strg::segment {

namespace {

/// Union-find over pixel indices with path halving, operating on a
/// caller-owned parent vector so the state can be reused across frames.
class DisjointSet {
 public:
  explicit DisjointSet(std::vector<size_t>* parent) : parent_(*parent) {}

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<size_t>& parent_;
};

}  // namespace

void LabelConnectedComponentsInto(const video::Frame& frame,
                                  double color_tolerance,
                                  std::vector<size_t>* parent_scratch,
                                  std::vector<int>* root_scratch,
                                  std::vector<int>* labels,
                                  int* num_components) {
  const int w = frame.width(), h = frame.height();
  const size_t n = static_cast<size_t>(w) * h;
  parent_scratch->resize(n);
  std::iota(parent_scratch->begin(), parent_scratch->end(), 0);
  DisjointSet ds(parent_scratch);

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      size_t idx = static_cast<size_t>(y) * w + x;
      if (x + 1 < w && video::ColorDistance(frame.At(x, y),
                                            frame.At(x + 1, y)) <=
                           color_tolerance) {
        ds.Union(idx, idx + 1);
      }
      if (y + 1 < h && video::ColorDistance(frame.At(x, y),
                                            frame.At(x, y + 1)) <=
                           color_tolerance) {
        ds.Union(idx, idx + w);
      }
    }
  }

  // Compact root ids into dense labels.
  labels->assign(n, -1);
  root_scratch->assign(n, -1);
  int next = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t r = ds.Find(i);
    if ((*root_scratch)[r] < 0) (*root_scratch)[r] = next++;
    (*labels)[i] = (*root_scratch)[r];
  }
  if (num_components != nullptr) *num_components = next;
}

std::vector<int> LabelConnectedComponents(const video::Frame& frame,
                                          double color_tolerance,
                                          int* num_components) {
  std::vector<size_t> parent;
  std::vector<int> root_label;
  std::vector<int> labels;
  LabelConnectedComponentsInto(frame, color_tolerance, &parent, &root_label,
                               &labels, num_components);
  return labels;
}

}  // namespace strg::segment
