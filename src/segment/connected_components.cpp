#include "segment/connected_components.h"

#include <numeric>

namespace strg::segment {

namespace {

/// Union-find over pixel indices with path halving.
class DisjointSet {
 public:
  explicit DisjointSet(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::vector<int> LabelConnectedComponents(const video::Frame& frame,
                                          double color_tolerance,
                                          int* num_components) {
  const int w = frame.width(), h = frame.height();
  const size_t n = static_cast<size_t>(w) * h;
  DisjointSet ds(n);

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      size_t idx = static_cast<size_t>(y) * w + x;
      if (x + 1 < w && video::ColorDistance(frame.At(x, y),
                                            frame.At(x + 1, y)) <=
                           color_tolerance) {
        ds.Union(idx, idx + 1);
      }
      if (y + 1 < h && video::ColorDistance(frame.At(x, y),
                                            frame.At(x, y + 1)) <=
                           color_tolerance) {
        ds.Union(idx, idx + w);
      }
    }
  }

  // Compact root ids into dense labels.
  std::vector<int> labels(n, -1);
  std::vector<int> root_label(n, -1);
  int next = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t r = ds.Find(i);
    if (root_label[r] < 0) root_label[r] = next++;
    labels[i] = root_label[r];
  }
  if (num_components != nullptr) *num_components = next;
  return labels;
}

}  // namespace strg::segment
