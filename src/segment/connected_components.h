#ifndef STRG_SEGMENT_CONNECTED_COMPONENTS_H_
#define STRG_SEGMENT_CONNECTED_COMPONENTS_H_

#include <cstddef>
#include <vector>

#include "video/frame.h"

namespace strg::segment {

/// Labels 4-connected components of near-constant color.
///
/// Two neighboring pixels join the same component when their color distance
/// is at most `color_tolerance`. Returns the row-major label map (labels are
/// dense, starting at 0) and writes the number of components to
/// `*num_components`.
std::vector<int> LabelConnectedComponents(const video::Frame& frame,
                                          double color_tolerance,
                                          int* num_components);

/// Scratch-reusing variant: `parent_scratch` and `root_scratch` are
/// union-find state reused across frames (sized to the pixel count on each
/// call, capacity retained), and the label map is written into `*labels`.
/// Produces exactly the labels of LabelConnectedComponents.
void LabelConnectedComponentsInto(const video::Frame& frame,
                                  double color_tolerance,
                                  std::vector<size_t>* parent_scratch,
                                  std::vector<int>* root_scratch,
                                  std::vector<int>* labels,
                                  int* num_components);

}  // namespace strg::segment

#endif  // STRG_SEGMENT_CONNECTED_COMPONENTS_H_
