#ifndef STRG_SEGMENT_CONNECTED_COMPONENTS_H_
#define STRG_SEGMENT_CONNECTED_COMPONENTS_H_

#include <vector>

#include "video/frame.h"

namespace strg::segment {

/// Labels 4-connected components of near-constant color.
///
/// Two neighboring pixels join the same component when their color distance
/// is at most `color_tolerance`. Returns the row-major label map (labels are
/// dense, starting at 0) and writes the number of components to
/// `*num_components`.
std::vector<int> LabelConnectedComponents(const video::Frame& frame,
                                          double color_tolerance,
                                          int* num_components);

}  // namespace strg::segment

#endif  // STRG_SEGMENT_CONNECTED_COMPONENTS_H_
