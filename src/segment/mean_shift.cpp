#include "segment/mean_shift.h"

#include <algorithm>
#include <cmath>

namespace strg::segment {

video::Frame MeanShiftReference(const video::Frame& input,
                                const MeanShiftParams& params) {
  const int w = input.width(), h = input.height();
  video::Frame out(w, h);
  const double r2 = params.range_radius * params.range_radius;

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      // Current color mode estimate for this pixel.
      double cr = input.At(x, y).r;
      double cg = input.At(x, y).g;
      double cb = input.At(x, y).b;

      for (int iter = 0; iter < params.max_iterations; ++iter) {
        double sr = 0, sg = 0, sb = 0;
        int count = 0;
        for (int dy = -params.spatial_radius; dy <= params.spatial_radius;
             ++dy) {
          int ny = y + dy;
          if (ny < 0 || ny >= h) continue;
          for (int dx = -params.spatial_radius; dx <= params.spatial_radius;
               ++dx) {
            int nx = x + dx;
            if (nx < 0 || nx >= w) continue;
            const video::Rgb& q = input.At(nx, ny);
            double dr = q.r - cr, dg = q.g - cg, db = q.b - cb;
            if (dr * dr + dg * dg + db * db <= r2) {
              sr += q.r;
              sg += q.g;
              sb += q.b;
              ++count;
            }
          }
        }
        if (count == 0) break;
        double nr = sr / count, ng = sg / count, nb = sb / count;
        double shift = std::sqrt((nr - cr) * (nr - cr) +
                                 (ng - cg) * (ng - cg) +
                                 (nb - cb) * (nb - cb));
        cr = nr;
        cg = ng;
        cb = nb;
        if (shift < params.convergence) break;
      }
      out.At(x, y) = video::Rgb{video::ClampByte(cr), video::ClampByte(cg),
                                video::ClampByte(cb)};
    }
  }
  return out;
}

namespace {

/// Sliding-window min or max over the clamped range [x-rad, x+rad] per row,
/// then per column. Brute force over the window: O(n * (2*rad+1)) on bytes,
/// which vectorizes well and is a small fraction of the kernel's work.
template <typename Op>
void WindowExtremum(const uint8_t* plane, int w, int h, int rad, Op op,
                    uint8_t* row_tmp, uint8_t* out) {
  for (int y = 0; y < h; ++y) {
    const uint8_t* row = plane + static_cast<size_t>(y) * w;
    uint8_t* dst = row_tmp + static_cast<size_t>(y) * w;
    for (int x = 0; x < w; ++x) {
      int lo = std::max(0, x - rad), hi = std::min(w - 1, x + rad);
      uint8_t v = row[lo];
      for (int k = lo + 1; k <= hi; ++k) v = op(v, row[k]);
      dst[x] = v;
    }
  }
  for (int y = 0; y < h; ++y) {
    int lo = std::max(0, y - rad), hi = std::min(h - 1, y + rad);
    uint8_t* dst = out + static_cast<size_t>(y) * w;
    const uint8_t* src = row_tmp + static_cast<size_t>(lo) * w;
    for (int x = 0; x < w; ++x) dst[x] = src[x];
    for (int yy = lo + 1; yy <= hi; ++yy) {
      src = row_tmp + static_cast<size_t>(yy) * w;
      for (int x = 0; x < w; ++x) dst[x] = op(dst[x], src[x]);
    }
  }
}

void IntegralImage(const uint8_t* plane, int w, int h, uint64_t* sum) {
  const int w1 = w + 1;
  for (int x = 0; x <= w; ++x) sum[x] = 0;
  for (int y = 0; y < h; ++y) {
    uint64_t row_sum = 0;
    uint64_t* cur = sum + static_cast<size_t>(y + 1) * w1;
    const uint64_t* prev = sum + static_cast<size_t>(y) * w1;
    cur[0] = 0;
    const uint8_t* row = plane + static_cast<size_t>(y) * w;
    for (int x = 0; x < w; ++x) {
      row_sum += row[x];
      cur[x + 1] = prev[x + 1] + row_sum;
    }
  }
}

inline double WindowSum(const uint64_t* sum, int w1, int x0, int x1, int y0,
                        int y1) {
  const uint64_t* top = sum + static_cast<size_t>(y0) * w1;
  const uint64_t* bot = sum + static_cast<size_t>(y1 + 1) * w1;
  return static_cast<double>(bot[x1 + 1] - top[x1 + 1] - bot[x0] + top[x0]);
}

}  // namespace

void MeanShiftWorkspace::Prepare(const video::Frame& frame, int radius) {
  const int w = frame.width(), h = frame.height();
  const size_t n = static_cast<size_t>(w) * h;
  const video::Rgb* px = frame.pixels().data();
  const int rad = std::max(0, radius);

  r.resize(n);
  g.resize(n);
  b.resize(n);
  packed.resize(n);
  for (size_t i = 0; i < n; ++i) {
    r[i] = px[i].r;
    g[i] = px[i].g;
    b[i] = px[i].b;
    packed[i] = (static_cast<uint32_t>(px[i].r) << 16) |
                (static_cast<uint32_t>(px[i].g) << 8) | px[i].b;
  }

  const size_t ni = static_cast<size_t>(w + 1) * (h + 1);
  sum_r.resize(ni);
  sum_g.resize(ni);
  sum_b.resize(ni);
  plane_.resize(n);
  row_min_.resize(n);
  row_max_.resize(n);
  min_r.resize(n);
  max_r.resize(n);
  min_g.resize(n);
  max_g.resize(n);
  min_b.resize(n);
  max_b.resize(n);

  auto min_op = [](uint8_t a, uint8_t c) { return std::min(a, c); };
  auto max_op = [](uint8_t a, uint8_t c) { return std::max(a, c); };
  struct Chan {
    uint8_t video::Rgb::* field;
    std::vector<uint8_t>* mn;
    std::vector<uint8_t>* mx;
    std::vector<uint64_t>* s;
  };
  const Chan chans[3] = {{&video::Rgb::r, &min_r, &max_r, &sum_r},
                         {&video::Rgb::g, &min_g, &max_g, &sum_g},
                         {&video::Rgb::b, &min_b, &max_b, &sum_b}};
  for (const Chan& c : chans) {
    for (size_t i = 0; i < n; ++i) plane_[i] = px[i].*(c.field);
    IntegralImage(plane_.data(), w, h, c.s->data());
    WindowExtremum(plane_.data(), w, h, rad, min_op, row_min_.data(),
                   c.mn->data());
    WindowExtremum(plane_.data(), w, h, rad, max_op, row_max_.data(),
                   c.mx->data());
  }
}

// Exactness of the fast paths (the kernel is bit-identical to
// MeanShiftReference):
//  - Every accumulated quantity is a sum of uint8 values held in a double.
//    All partial sums are exact integers far below 2^53, so accumulation
//    order is irrelevant and the integral-image sums equal the reference's
//    running sums bit-for-bit.
//  - All-in-range shortcut: if the per-channel max deviation from the
//    current mode, squared and summed, is <= range_radius^2, then every
//    window pixel individually passes the range test, so the in-range mean
//    equals the full-window mean taken from the integral images.
//  - Convergence-point cache: the mode trajectory of a pixel is a
//    deterministic function of (start color, window color multiset) only —
//    membership and means depend on values, not positions. When a pixel's
//    start color equals its left neighbor's and the window column that
//    enters equals the one that leaves (elementwise, both windows fully
//    interior), the multisets coincide and the pixel lies on the same,
//    already-converged trajectory: it adopts that mode without iterating.
void MeanShiftFilter(const video::Frame& input, const MeanShiftParams& params,
                     MeanShiftWorkspace* workspace, video::Frame* out) {
  const int w = input.width(), h = input.height();
  if (out->width() != w || out->height() != h) {
    *out = video::Frame(w, h);
  }
  if (w == 0 || h == 0) return;
  if (params.spatial_radius < 0 || params.max_iterations <= 0) {
    // Degenerate windows: the reference never finds a neighbor (or never
    // iterates) and emits the clamped original color, i.e. the input.
    std::copy(input.pixels().begin(), input.pixels().end(),
              out->pixels().begin());
    return;
  }

  const int rad = params.spatial_radius;
  workspace->Prepare(input, rad);
  const double r2 = params.range_radius * params.range_radius;
  const int w1 = w + 1;

  const double* rp = workspace->r.data();
  const double* gp = workspace->g.data();
  const double* bp = workspace->b.data();
  const uint32_t* pk = workspace->packed.data();
  const uint8_t* mnr = workspace->min_r.data();
  const uint8_t* mxr = workspace->max_r.data();
  const uint8_t* mng = workspace->min_g.data();
  const uint8_t* mxg = workspace->max_g.data();
  const uint8_t* mnb = workspace->min_b.data();
  const uint8_t* mxb = workspace->max_b.data();
  const uint64_t* sr_img = workspace->sum_r.data();
  const uint64_t* sg_img = workspace->sum_g.data();
  const uint64_t* sb_img = workspace->sum_b.data();
  video::Rgb* outp = out->pixels().data();

  for (int y = 0; y < h; ++y) {
    const bool rows_interior = y >= rad && y + rad <= h - 1;
    for (int x = 0; x < w; ++x) {
      const size_t i = static_cast<size_t>(y) * w + x;

      // Convergence-point cache: adopt the left neighbor's converged mode
      // when this pixel provably shares its trajectory.
      if (rows_interior && x >= rad + 1 && x + rad <= w - 1 &&
          pk[i] == pk[i - 1]) {
        const int col_out = x - 1 - rad, col_in = x + rad;
        bool same_window = true;
        for (int yy = y - rad; yy <= y + rad; ++yy) {
          const size_t row_base = static_cast<size_t>(yy) * w;
          if (pk[row_base + col_out] != pk[row_base + col_in]) {
            same_window = false;
            break;
          }
        }
        if (same_window) {
          outp[i] = outp[i - 1];
          continue;
        }
      }

      double cr = rp[i], cg = gp[i], cb = bp[i];
      const int x0 = std::max(0, x - rad), x1 = std::min(w - 1, x + rad);
      const int y0 = std::max(0, y - rad), y1 = std::min(h - 1, y + rad);
      const double area = static_cast<double>(x1 - x0 + 1) * (y1 - y0 + 1);

      for (int iter = 0; iter < params.max_iterations; ++iter) {
        double sr, sg, sb, count;
        const double dev_r = std::max(mxr[i] - cr, cr - mnr[i]);
        const double dev_g = std::max(mxg[i] - cg, cg - mng[i]);
        const double dev_b = std::max(mxb[i] - cb, cb - mnb[i]);
        if (dev_r * dev_r + dev_g * dev_g + dev_b * dev_b <= r2) {
          // Every window pixel is within range of the mode: the in-range
          // mean is the plain window mean.
          sr = WindowSum(sr_img, w1, x0, x1, y0, y1);
          sg = WindowSum(sg_img, w1, x0, x1, y0, y1);
          sb = WindowSum(sb_img, w1, x0, x1, y0, y1);
          count = area;
        } else {
          sr = sg = sb = 0.0;
          int hits = 0;
          for (int yy = y0; yy <= y1; ++yy) {
            const size_t base = static_cast<size_t>(yy) * w;
            for (int xx = x0; xx <= x1; ++xx) {
              const double qr = rp[base + xx];
              const double qg = gp[base + xx];
              const double qb = bp[base + xx];
              const double dr = qr - cr, dg = qg - cg, db = qb - cb;
              if (dr * dr + dg * dg + db * db <= r2) {
                sr += qr;
                sg += qg;
                sb += qb;
                ++hits;
              }
            }
          }
          count = hits;
        }
        if (count == 0) break;
        const double nr = sr / count, ng = sg / count, nb = sb / count;
        const double shift = std::sqrt((nr - cr) * (nr - cr) +
                                       (ng - cg) * (ng - cg) +
                                       (nb - cb) * (nb - cb));
        cr = nr;
        cg = ng;
        cb = nb;
        if (shift < params.convergence) break;
      }
      outp[i] = video::Rgb{video::ClampByte(cr), video::ClampByte(cg),
                           video::ClampByte(cb)};
    }
  }
}

video::Frame MeanShiftFilter(const video::Frame& input,
                             const MeanShiftParams& params) {
  MeanShiftWorkspace workspace;
  video::Frame out;
  MeanShiftFilter(input, params, &workspace, &out);
  return out;
}

}  // namespace strg::segment
