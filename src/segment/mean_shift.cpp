#include "segment/mean_shift.h"

#include <cmath>

namespace strg::segment {

video::Frame MeanShiftFilter(const video::Frame& input,
                             const MeanShiftParams& params) {
  const int w = input.width(), h = input.height();
  video::Frame out(w, h);
  const double r2 = params.range_radius * params.range_radius;

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      // Current color mode estimate for this pixel.
      double cr = input.At(x, y).r;
      double cg = input.At(x, y).g;
      double cb = input.At(x, y).b;

      for (int iter = 0; iter < params.max_iterations; ++iter) {
        double sr = 0, sg = 0, sb = 0;
        int count = 0;
        for (int dy = -params.spatial_radius; dy <= params.spatial_radius;
             ++dy) {
          int ny = y + dy;
          if (ny < 0 || ny >= h) continue;
          for (int dx = -params.spatial_radius; dx <= params.spatial_radius;
               ++dx) {
            int nx = x + dx;
            if (nx < 0 || nx >= w) continue;
            const video::Rgb& q = input.At(nx, ny);
            double dr = q.r - cr, dg = q.g - cg, db = q.b - cb;
            if (dr * dr + dg * dg + db * db <= r2) {
              sr += q.r;
              sg += q.g;
              sb += q.b;
              ++count;
            }
          }
        }
        if (count == 0) break;
        double nr = sr / count, ng = sg / count, nb = sb / count;
        double shift = std::sqrt((nr - cr) * (nr - cr) +
                                 (ng - cg) * (ng - cg) +
                                 (nb - cb) * (nb - cb));
        cr = nr;
        cg = ng;
        cb = nb;
        if (shift < params.convergence) break;
      }
      out.At(x, y) = video::Rgb{video::ClampByte(cr), video::ClampByte(cg),
                                video::ClampByte(cb)};
    }
  }
  return out;
}

}  // namespace strg::segment
