#ifndef STRG_SEGMENT_MEAN_SHIFT_H_
#define STRG_SEGMENT_MEAN_SHIFT_H_

#include <cstdint>
#include <vector>

#include "video/frame.h"

namespace strg::segment {

/// Parameters for mean-shift color filtering.
struct MeanShiftParams {
  int spatial_radius = 2;     ///< half-width of the spatial window (pixels)
  double range_radius = 24.0; ///< RGB-space kernel radius
  int max_iterations = 4;     ///< mode-seeking iterations per pixel
  double convergence = 0.5;   ///< stop when the color shift falls below this
};

/// Reusable scratch for the optimized mean-shift kernel.
///
/// Holds the flat SoA pixel planes, per-channel sliding window min/max
/// planes, channel integral images, and the packed-color plane used by the
/// convergence-point cache. All buffers are sized on first use and reused
/// across frames, so a warmed-up workspace makes the kernel allocation-free
/// (the ingest bench asserts this).
class MeanShiftWorkspace {
 public:
  /// (Re)builds every derived plane for `frame` at spatial radius `radius`.
  void Prepare(const video::Frame& frame, int radius);

  // Flat planes, row-major, one entry per pixel.
  std::vector<double> r, g, b;        ///< SoA color planes (exact uint8 values)
  std::vector<uint32_t> packed;       ///< r<<16 | g<<8 | b, for equality tests
  std::vector<uint8_t> min_r, max_r;  ///< per-channel window min/max
  std::vector<uint8_t> min_g, max_g;
  std::vector<uint8_t> min_b, max_b;
  // Channel integral images, (w+1) x (h+1), S[y+1][x+1] = sum over [0..x][0..y].
  std::vector<uint64_t> sum_r, sum_g, sum_b;

 private:
  // Row-pass temporaries for the separable min/max windows.
  std::vector<uint8_t> row_min_, row_max_;
  std::vector<uint8_t> plane_;  ///< u8 staging plane for one channel
};

/// Naive mode-seeking reference: O(pixels * iterations * window) with no
/// caching. This is the seed implementation, kept verbatim as the ground
/// truth for the optimized kernel — `MeanShiftFilter` is tested to be
/// bit-identical to it — and as the benchmark baseline.
video::Frame MeanShiftReference(const video::Frame& input,
                                const MeanShiftParams& params);

/// Edge-preserving mean-shift color filter.
///
/// This is the repository's substitute for EDISON (mean-shift segmentation,
/// Comaniciu & Meer): each pixel's color is iteratively moved to the mean of
/// the colors within its joint spatial/range window, which smooths sensor
/// noise while keeping region boundaries sharp. The paper picked EDISON for
/// being "less sensitive to small changes over the frames"; the same
/// stability property holds here because the filter converges to local color
/// modes that are unaffected by small per-pixel noise.
///
/// The implementation is an EDISON-style optimized kernel that is
/// bit-identical to `MeanShiftReference` (every shortcut below is exact, not
/// approximate — see the proofs in mean_shift.cpp):
///  - flat SoA pixel planes instead of per-access struct loads;
///  - an "all-in-range" fast path: when the per-channel window min/max
///    proves every window pixel passes the range test, the window mean comes
///    from channel integral images in O(1) instead of O(window);
///  - per-pixel convergence-point caching: a pixel whose start color and
///    window multiset match its left neighbor's lies on the same (already
///    converged) mean-shift trajectory and adopts its mode without
///    iterating;
///  - early termination on sub-epsilon shift and empty windows, exactly as
///    the reference does.
void MeanShiftFilter(const video::Frame& input, const MeanShiftParams& params,
                     MeanShiftWorkspace* workspace, video::Frame* out);

/// Convenience overload allocating a transient workspace.
video::Frame MeanShiftFilter(const video::Frame& input,
                             const MeanShiftParams& params);

}  // namespace strg::segment

#endif  // STRG_SEGMENT_MEAN_SHIFT_H_
