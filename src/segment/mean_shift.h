#ifndef STRG_SEGMENT_MEAN_SHIFT_H_
#define STRG_SEGMENT_MEAN_SHIFT_H_

#include "video/frame.h"

namespace strg::segment {

/// Parameters for mean-shift color filtering.
struct MeanShiftParams {
  int spatial_radius = 2;     ///< half-width of the spatial window (pixels)
  double range_radius = 24.0; ///< RGB-space kernel radius
  int max_iterations = 4;     ///< mode-seeking iterations per pixel
  double convergence = 0.5;   ///< stop when the color shift falls below this
};

/// Edge-preserving mean-shift color filter.
///
/// This is the repository's substitute for EDISON (mean-shift segmentation,
/// Comaniciu & Meer): each pixel's color is iteratively moved to the mean of
/// the colors within its joint spatial/range window, which smooths sensor
/// noise while keeping region boundaries sharp. The paper picked EDISON for
/// being "less sensitive to small changes over the frames"; the same
/// stability property holds here because the filter converges to local color
/// modes that are unaffected by small per-pixel noise.
video::Frame MeanShiftFilter(const video::Frame& input,
                             const MeanShiftParams& params);

}  // namespace strg::segment

#endif  // STRG_SEGMENT_MEAN_SHIFT_H_
