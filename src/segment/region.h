#ifndef STRG_SEGMENT_REGION_H_
#define STRG_SEGMENT_REGION_H_

#include <utility>
#include <vector>

#include "video/color.h"

namespace strg::segment {

/// A homogeneous color region extracted from one frame.
///
/// Carries exactly the node attributes the paper uses for RAG nodes
/// (Definition 1): size (pixel count), color, and location (centroid).
struct Region {
  int id = -1;
  int size = 0;             ///< number of pixels
  video::Rgb mean_color;    ///< average color of member pixels
  double centroid_x = 0.0;  ///< centroid (pixels, sub-pixel precision)
  double centroid_y = 0.0;
  int min_x = 0, max_x = 0, min_y = 0, max_y = 0;  ///< bounding box
};

/// Result of segmenting one frame: regions, the per-pixel label map, and
/// the region adjacency relation (unordered id pairs, each listed once).
struct Segmentation {
  int width = 0;
  int height = 0;
  std::vector<Region> regions;
  std::vector<int> labels;  ///< row-major region id per pixel
  std::vector<std::pair<int, int>> adjacency;

  int LabelAt(int x, int y) const {
    return labels[static_cast<size_t>(y) * width + x];
  }
};

}  // namespace strg::segment

#endif  // STRG_SEGMENT_REGION_H_
