#include "segment/segmenter.h"

#include <algorithm>
#include <limits>
#include <set>

#include "segment/connected_components.h"

namespace strg::segment {

namespace {

struct Accum {
  long long size = 0;
  double r = 0, g = 0, b = 0;
  double sx = 0, sy = 0;
  int min_x = std::numeric_limits<int>::max();
  int max_x = std::numeric_limits<int>::min();
  int min_y = std::numeric_limits<int>::max();
  int max_y = std::numeric_limits<int>::min();
};

std::vector<Accum> ComputeStats(const video::Frame& frame,
                                const std::vector<int>& labels,
                                int num_labels) {
  std::vector<Accum> acc(static_cast<size_t>(num_labels));
  const int w = frame.width(), h = frame.height();
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int l = labels[static_cast<size_t>(y) * w + x];
      Accum& a = acc[static_cast<size_t>(l)];
      const video::Rgb& p = frame.At(x, y);
      a.size += 1;
      a.r += p.r;
      a.g += p.g;
      a.b += p.b;
      a.sx += x;
      a.sy += y;
      a.min_x = std::min(a.min_x, x);
      a.max_x = std::max(a.max_x, x);
      a.min_y = std::min(a.min_y, y);
      a.max_y = std::max(a.max_y, y);
    }
  }
  return acc;
}

video::Rgb MeanColor(const Accum& a) {
  double n = static_cast<double>(a.size);
  return video::Rgb{video::ClampByte(a.r / n), video::ClampByte(a.g / n),
                    video::ClampByte(a.b / n)};
}

std::set<std::pair<int, int>> AdjacentPairs(const std::vector<int>& labels,
                                            int w, int h) {
  std::set<std::pair<int, int>> pairs;
  auto add = [&](int a, int b) {
    if (a == b) return;
    pairs.insert({std::min(a, b), std::max(a, b)});
  };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int l = labels[static_cast<size_t>(y) * w + x];
      if (x + 1 < w) add(l, labels[static_cast<size_t>(y) * w + x + 1]);
      if (y + 1 < h) add(l, labels[static_cast<size_t>(y + 1) * w + x]);
    }
  }
  return pairs;
}

}  // namespace

Segmentation SegmentFrame(const video::Frame& input,
                          const SegmenterParams& params) {
  const video::Frame frame =
      params.use_mean_shift ? MeanShiftFilter(input, params.mean_shift)
                            : input;
  const int w = frame.width(), h = frame.height();

  int num_labels = 0;
  std::vector<int> labels =
      LabelConnectedComponents(frame, params.color_tolerance, &num_labels);

  // Small-region cleanup: fold every undersized region into its most
  // color-similar neighbor; a few rounds handle chains of tiny fragments.
  for (int round = 0; round < params.merge_rounds; ++round) {
    std::vector<Accum> acc = ComputeStats(frame, labels, num_labels);
    auto pairs = AdjacentPairs(labels, w, h);
    std::vector<std::vector<int>> neighbors(static_cast<size_t>(num_labels));
    for (const auto& [a, b] : pairs) {
      neighbors[static_cast<size_t>(a)].push_back(b);
      neighbors[static_cast<size_t>(b)].push_back(a);
    }

    std::vector<int> remap(static_cast<size_t>(num_labels));
    bool changed = false;
    for (int l = 0; l < num_labels; ++l) {
      remap[static_cast<size_t>(l)] = l;
      if (acc[static_cast<size_t>(l)].size >= params.min_region_size) continue;
      double best = std::numeric_limits<double>::max();
      int best_n = -1;
      video::Rgb my_color = MeanColor(acc[static_cast<size_t>(l)]);
      for (int nb : neighbors[static_cast<size_t>(l)]) {
        // Prefer merging into stable (large) neighbors.
        if (acc[static_cast<size_t>(nb)].size <
            acc[static_cast<size_t>(l)].size) {
          continue;
        }
        double d =
            video::ColorDistance(my_color, MeanColor(acc[static_cast<size_t>(nb)]));
        if (d < best) {
          best = d;
          best_n = nb;
        }
      }
      if (best_n >= 0) {
        remap[static_cast<size_t>(l)] = best_n;
        changed = true;
      }
    }
    if (!changed) break;
    // Resolve chains (a->b->c) before applying.
    for (int l = 0; l < num_labels; ++l) {
      int t = l;
      for (int hops = 0; hops < num_labels && remap[static_cast<size_t>(t)] != t;
           ++hops) {
        t = remap[static_cast<size_t>(t)];
      }
      remap[static_cast<size_t>(l)] = t;
    }
    for (int& l : labels) l = remap[static_cast<size_t>(l)];
  }

  // Densify labels.
  std::vector<int> dense(static_cast<size_t>(num_labels), -1);
  int next = 0;
  for (int& l : labels) {
    if (dense[static_cast<size_t>(l)] < 0) dense[static_cast<size_t>(l)] = next++;
    l = dense[static_cast<size_t>(l)];
  }

  Segmentation seg;
  seg.width = w;
  seg.height = h;
  seg.labels = std::move(labels);

  std::vector<Accum> acc = ComputeStats(frame, seg.labels, next);
  seg.regions.resize(static_cast<size_t>(next));
  for (int l = 0; l < next; ++l) {
    const Accum& a = acc[static_cast<size_t>(l)];
    Region& r = seg.regions[static_cast<size_t>(l)];
    r.id = l;
    r.size = static_cast<int>(a.size);
    r.mean_color = MeanColor(a);
    r.centroid_x = a.sx / static_cast<double>(a.size);
    r.centroid_y = a.sy / static_cast<double>(a.size);
    r.min_x = a.min_x;
    r.max_x = a.max_x;
    r.min_y = a.min_y;
    r.max_y = a.max_y;
  }

  auto pairs = AdjacentPairs(seg.labels, w, h);
  seg.adjacency.assign(pairs.begin(), pairs.end());
  return seg;
}

}  // namespace strg::segment
