#include "segment/segmenter.h"

#include <algorithm>
#include <limits>

#include "segment/connected_components.h"

namespace strg::segment {

namespace {

void ComputeStats(const video::Frame& frame, const std::vector<int>& labels,
                  int num_labels, std::vector<RegionAccum>* acc) {
  RegionAccum init;
  init.min_x = std::numeric_limits<int>::max();
  init.max_x = std::numeric_limits<int>::min();
  init.min_y = std::numeric_limits<int>::max();
  init.max_y = std::numeric_limits<int>::min();
  acc->assign(static_cast<size_t>(num_labels), init);
  const int w = frame.width(), h = frame.height();
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int l = labels[static_cast<size_t>(y) * w + x];
      RegionAccum& a = (*acc)[static_cast<size_t>(l)];
      const video::Rgb& p = frame.At(x, y);
      a.size += 1;
      a.r += p.r;
      a.g += p.g;
      a.b += p.b;
      a.sx += x;
      a.sy += y;
      a.min_x = std::min(a.min_x, x);
      a.max_x = std::max(a.max_x, x);
      a.min_y = std::min(a.min_y, y);
      a.max_y = std::max(a.max_y, y);
    }
  }
}

video::Rgb MeanColor(const RegionAccum& a) {
  double n = static_cast<double>(a.size);
  return video::Rgb{video::ClampByte(a.r / n), video::ClampByte(a.g / n),
                    video::ClampByte(a.b / n)};
}

/// Sorted unique adjacency pairs (min, max) of 4-neighboring labels —
/// the same sequence the seed's std::set produced, built allocation-free
/// into reused scratch.
void CollectAdjacentPairs(const std::vector<int>& labels, int w, int h,
                          std::vector<std::pair<int, int>>* pairs) {
  pairs->clear();
  auto add = [&](int a, int b) {
    if (a == b) return;
    pairs->emplace_back(std::min(a, b), std::max(a, b));
  };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int l = labels[static_cast<size_t>(y) * w + x];
      if (x + 1 < w) add(l, labels[static_cast<size_t>(y) * w + x + 1]);
      if (y + 1 < h) add(l, labels[static_cast<size_t>(y + 1) * w + x]);
    }
  }
  std::sort(pairs->begin(), pairs->end());
  pairs->erase(std::unique(pairs->begin(), pairs->end()), pairs->end());
}

/// Builds the neighbor lists of each label as a CSR over the sorted pair
/// list. Per-node neighbor order equals the seed's push order (pairs are
/// consumed in the same sorted sequence).
void BuildNeighborCsr(const std::vector<std::pair<int, int>>& pairs,
                      int num_labels, SegmenterWorkspace* ws) {
  ws->csr_offsets.assign(static_cast<size_t>(num_labels) + 1, 0);
  for (const auto& [a, b] : pairs) {
    ++ws->csr_offsets[static_cast<size_t>(a) + 1];
    ++ws->csr_offsets[static_cast<size_t>(b) + 1];
  }
  for (int l = 0; l < num_labels; ++l) {
    ws->csr_offsets[static_cast<size_t>(l) + 1] +=
        ws->csr_offsets[static_cast<size_t>(l)];
  }
  ws->csr_neighbors.resize(
      static_cast<size_t>(ws->csr_offsets[static_cast<size_t>(num_labels)]));
  ws->csr_cursor.assign(ws->csr_offsets.begin(),
                        ws->csr_offsets.end() - 1);
  for (const auto& [a, b] : pairs) {
    ws->csr_neighbors[static_cast<size_t>(ws->csr_cursor[static_cast<size_t>(a)]++)] = b;
    ws->csr_neighbors[static_cast<size_t>(ws->csr_cursor[static_cast<size_t>(b)]++)] = a;
  }
}

}  // namespace

void SegmentFrameInto(const video::Frame& input, const SegmenterParams& params,
                      SegmenterWorkspace* ws, Segmentation* out) {
  const video::Frame* frame = &input;
  if (params.use_mean_shift) {
    if (params.use_reference_kernel) {
      ws->filtered = MeanShiftReference(input, params.mean_shift);
    } else {
      MeanShiftFilter(input, params.mean_shift, &ws->mean_shift,
                      &ws->filtered);
    }
    frame = &ws->filtered;
  }
  const int w = frame->width(), h = frame->height();

  int num_labels = 0;
  std::vector<int>& labels = out->labels;
  LabelConnectedComponentsInto(*frame, params.color_tolerance, &ws->cc_parent,
                               &ws->cc_root_label, &labels, &num_labels);

  // Small-region cleanup: fold every undersized region into its most
  // color-similar neighbor; a few rounds handle chains of tiny fragments.
  for (int round = 0; round < params.merge_rounds; ++round) {
    ComputeStats(*frame, labels, num_labels, &ws->acc);
    CollectAdjacentPairs(labels, w, h, &ws->pairs);
    BuildNeighborCsr(ws->pairs, num_labels, ws);

    std::vector<int>& remap = ws->remap;
    remap.resize(static_cast<size_t>(num_labels));
    bool changed = false;
    for (int l = 0; l < num_labels; ++l) {
      remap[static_cast<size_t>(l)] = l;
      if (ws->acc[static_cast<size_t>(l)].size >= params.min_region_size) {
        continue;
      }
      double best = std::numeric_limits<double>::max();
      int best_n = -1;
      video::Rgb my_color = MeanColor(ws->acc[static_cast<size_t>(l)]);
      const int* nb_begin =
          ws->csr_neighbors.data() + ws->csr_offsets[static_cast<size_t>(l)];
      const int* nb_end = ws->csr_neighbors.data() +
                          ws->csr_offsets[static_cast<size_t>(l) + 1];
      for (const int* it = nb_begin; it != nb_end; ++it) {
        int nb = *it;
        // Prefer merging into stable (large) neighbors.
        if (ws->acc[static_cast<size_t>(nb)].size <
            ws->acc[static_cast<size_t>(l)].size) {
          continue;
        }
        double d = video::ColorDistance(
            my_color, MeanColor(ws->acc[static_cast<size_t>(nb)]));
        if (d < best) {
          best = d;
          best_n = nb;
        }
      }
      if (best_n >= 0) {
        remap[static_cast<size_t>(l)] = best_n;
        changed = true;
      }
    }
    if (!changed) break;
    // Resolve chains (a->b->c) before applying.
    for (int l = 0; l < num_labels; ++l) {
      int t = l;
      for (int hops = 0; hops < num_labels && remap[static_cast<size_t>(t)] != t;
           ++hops) {
        t = remap[static_cast<size_t>(t)];
      }
      remap[static_cast<size_t>(l)] = t;
    }
    for (int& l : labels) l = remap[static_cast<size_t>(l)];
  }

  // Densify labels.
  std::vector<int>& dense = ws->dense;
  dense.assign(static_cast<size_t>(num_labels), -1);
  int next = 0;
  for (int& l : labels) {
    if (dense[static_cast<size_t>(l)] < 0) dense[static_cast<size_t>(l)] = next++;
    l = dense[static_cast<size_t>(l)];
  }

  out->width = w;
  out->height = h;

  ComputeStats(*frame, labels, next, &ws->acc);
  out->regions.resize(static_cast<size_t>(next));
  for (int l = 0; l < next; ++l) {
    const RegionAccum& a = ws->acc[static_cast<size_t>(l)];
    Region& r = out->regions[static_cast<size_t>(l)];
    r.id = l;
    r.size = static_cast<int>(a.size);
    r.mean_color = MeanColor(a);
    r.centroid_x = a.sx / static_cast<double>(a.size);
    r.centroid_y = a.sy / static_cast<double>(a.size);
    r.min_x = a.min_x;
    r.max_x = a.max_x;
    r.min_y = a.min_y;
    r.max_y = a.max_y;
  }

  CollectAdjacentPairs(labels, w, h, &ws->pairs);
  out->adjacency.assign(ws->pairs.begin(), ws->pairs.end());
}

Segmentation SegmentFrame(const video::Frame& frame,
                          const SegmenterParams& params) {
  SegmenterWorkspace workspace;
  Segmentation out;
  SegmentFrameInto(frame, params, &workspace, &out);
  return out;
}

Segmentation SegmentFrame(const video::Frame& frame,
                          const SegmenterParams& params,
                          SegmenterWorkspace* workspace) {
  Segmentation out;
  SegmentFrameInto(frame, params, workspace, &out);
  return out;
}

}  // namespace strg::segment
