#ifndef STRG_SEGMENT_SEGMENTER_H_
#define STRG_SEGMENT_SEGMENTER_H_

#include "segment/mean_shift.h"
#include "segment/region.h"
#include "segment/workspace.h"
#include "video/frame.h"

namespace strg::segment {

/// Configuration of the region segmentation pipeline.
struct SegmenterParams {
  /// Run the mean-shift color filter before labeling. Turning it off gives
  /// a fast path for long low-noise synthetic streams (the filter is by far
  /// the most expensive stage); tests cover both paths.
  bool use_mean_shift = true;
  MeanShiftParams mean_shift;

  /// A/B knob for benchmarks: filter with the naive MeanShiftReference
  /// instead of the optimized kernel. Both produce bit-identical frames
  /// (tested), so this only changes speed — it exists so bench_ingest can
  /// measure the seed path without resurrecting old code.
  bool use_reference_kernel = false;

  /// Max color distance between 4-neighbors inside one region.
  double color_tolerance = 20.0;

  /// Regions smaller than this are merged into their most similar neighbor
  /// (cleans up anti-aliased edges and residual speckle).
  int min_region_size = 6;

  /// Merge rounds for the small-region cleanup.
  int merge_rounds = 3;
};

/// Segments one frame into homogeneous color regions, reusing `workspace`
/// scratch and `out`'s buffers. After warm-up on a fixed geometry this
/// performs no heap allocations (bench_ingest asserts it). Results are
/// identical to SegmentFrame's for any workspace state.
///
/// Pipeline: (optional) mean-shift filtering -> 4-connected component
/// labeling by color tolerance -> small-region merging -> region statistics
/// and adjacency extraction. The output feeds RAG construction
/// (Definition 1 in the paper).
void SegmentFrameInto(const video::Frame& frame, const SegmenterParams& params,
                      SegmenterWorkspace* workspace, Segmentation* out);

/// Segments one frame, allocating a transient workspace.
Segmentation SegmentFrame(const video::Frame& frame,
                          const SegmenterParams& params);

/// Segments one frame reusing a caller-owned workspace.
Segmentation SegmentFrame(const video::Frame& frame,
                          const SegmenterParams& params,
                          SegmenterWorkspace* workspace);

}  // namespace strg::segment

#endif  // STRG_SEGMENT_SEGMENTER_H_
