#ifndef STRG_SEGMENT_SEGMENTER_H_
#define STRG_SEGMENT_SEGMENTER_H_

#include "segment/mean_shift.h"
#include "segment/region.h"
#include "video/frame.h"

namespace strg::segment {

/// Configuration of the region segmentation pipeline.
struct SegmenterParams {
  /// Run the mean-shift color filter before labeling. Turning it off gives
  /// a fast path for long low-noise synthetic streams (the filter is by far
  /// the most expensive stage); tests cover both paths.
  bool use_mean_shift = true;
  MeanShiftParams mean_shift;

  /// Max color distance between 4-neighbors inside one region.
  double color_tolerance = 20.0;

  /// Regions smaller than this are merged into their most similar neighbor
  /// (cleans up anti-aliased edges and residual speckle).
  int min_region_size = 6;

  /// Merge rounds for the small-region cleanup.
  int merge_rounds = 3;
};

/// Segments one frame into homogeneous color regions.
///
/// Pipeline: (optional) mean-shift filtering -> 4-connected component
/// labeling by color tolerance -> small-region merging -> region statistics
/// and adjacency extraction. The output feeds RAG construction
/// (Definition 1 in the paper).
Segmentation SegmentFrame(const video::Frame& frame,
                          const SegmenterParams& params);

}  // namespace strg::segment

#endif  // STRG_SEGMENT_SEGMENTER_H_
