#include "segment/shot_detector.h"

#include <cmath>
#include <cstdlib>

namespace strg::segment {

ShotDetector::ShotDetector(ShotDetectorParams params) : params_(params) {}

std::vector<double> ShotDetector::Histogram(const video::Frame& frame) const {
  const int b = params_.bins_per_channel;
  std::vector<double> hist(static_cast<size_t>(b) * b * b, 0.0);
  const double scale = b / 256.0;
  for (const video::Rgb& p : frame.pixels()) {
    int r = static_cast<int>(p.r * scale);
    int g = static_cast<int>(p.g * scale);
    int bl = static_cast<int>(p.b * scale);
    hist[static_cast<size_t>((r * b + g) * b + bl)] += 1.0;
  }
  double n = static_cast<double>(frame.size());
  for (double& h : hist) h /= n;
  return hist;
}

bool ShotDetector::PushFrame(const video::Frame& frame) {
  std::vector<double> hist = Histogram(frame);
  bool cut = false;
  if (frames_seen_ > 0) {
    double diff = 0.0;
    for (size_t i = 0; i < hist.size(); ++i) {
      diff += std::fabs(hist[i] - prev_histogram_[i]);
    }
    diff *= 0.5;  // L1/2 in [0, 1]
    if (diff > params_.threshold &&
        frames_seen_ - last_cut_ >= params_.min_shot_length) {
      boundaries_.push_back(frames_seen_);
      last_cut_ = frames_seen_;
      cut = true;
    }
  }
  prev_histogram_ = std::move(hist);
  ++frames_seen_;
  return cut;
}

std::vector<std::pair<int, int>> DetectShots(
    const std::vector<video::Frame>& frames,
    const ShotDetectorParams& params) {
  ShotDetector detector(params);
  for (const video::Frame& f : frames) detector.PushFrame(f);
  std::vector<std::pair<int, int>> shots;
  int start = 0;
  for (int cut : detector.boundaries()) {
    shots.emplace_back(start, cut);
    start = cut;
  }
  if (detector.frames_seen() > 0) {
    shots.emplace_back(start, detector.frames_seen());
  }
  return shots;
}

}  // namespace strg::segment
