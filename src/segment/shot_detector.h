#ifndef STRG_SEGMENT_SHOT_DETECTOR_H_
#define STRG_SEGMENT_SHOT_DETECTOR_H_

#include <utility>
#include <vector>

#include "video/frame.h"

namespace strg::segment {

/// Shot-boundary detection parameters.
struct ShotDetectorParams {
  int bins_per_channel = 8;     ///< color histogram resolution (bins^3 total)
  double threshold = 0.35;      ///< histogram distance that starts a new shot
  int min_shot_length = 8;      ///< frames; suppresses flicker double-cuts
};

/// Histogram-based shot boundary detector.
///
/// The paper's first issue — "how to efficiently parse a long video into
/// meaningful smaller units" — sits in front of STRG construction: each
/// shot becomes one video segment with its own background graph (root
/// record in the STRG-Index). This detector uses the classic normalized
/// color-histogram L1 difference between consecutive frames, the low-level
/// feature approach of [15, 22].
class ShotDetector {
 public:
  explicit ShotDetector(ShotDetectorParams params = {});

  /// Feeds the next frame; returns true when a new shot starts AT this
  /// frame (the first frame always starts shot 0 but returns false).
  bool PushFrame(const video::Frame& frame);

  /// Frame indices where shots start (excluding 0).
  const std::vector<int>& boundaries() const { return boundaries_; }

  int frames_seen() const { return frames_seen_; }

 private:
  std::vector<double> Histogram(const video::Frame& frame) const;

  ShotDetectorParams params_;
  std::vector<double> prev_histogram_;
  std::vector<int> boundaries_;
  int frames_seen_ = 0;
  int last_cut_ = 0;
};

/// Batch helper: [start, end) frame ranges of each detected shot.
std::vector<std::pair<int, int>> DetectShots(
    const std::vector<video::Frame>& frames,
    const ShotDetectorParams& params = {});

}  // namespace strg::segment

#endif  // STRG_SEGMENT_SHOT_DETECTOR_H_
