#ifndef STRG_SEGMENT_WORKSPACE_H_
#define STRG_SEGMENT_WORKSPACE_H_

#include <utility>
#include <vector>

#include "segment/mean_shift.h"
#include "video/frame.h"

namespace strg::segment {

/// Per-region accumulator used by the segmenter's statistics passes.
struct RegionAccum {
  long long size = 0;
  double r = 0, g = 0, b = 0;
  double sx = 0, sy = 0;
  int min_x = 0;
  int max_x = 0;
  int min_y = 0;
  int max_y = 0;
};

/// Reusable scratch for the whole per-frame segmentation pipeline:
/// mean-shift planes, the filtered-frame buffer, connected-components
/// union-find state, region accumulators, and the adjacency/merge scratch.
///
/// One workspace serves one thread; the staged ingest pipeline keeps one
/// per worker. After warm-up on a fixed frame geometry, SegmentFrameInto
/// performs no heap allocations (asserted by bench_ingest) — every buffer
/// below retains its capacity across frames.
struct SegmenterWorkspace {
  MeanShiftWorkspace mean_shift;
  video::Frame filtered;  ///< mean-shift output buffer

  // Connected-components scratch (union-find parents + root compaction).
  std::vector<size_t> cc_parent;
  std::vector<int> cc_root_label;

  // Segmenter scratch.
  std::vector<RegionAccum> acc;
  std::vector<std::pair<int, int>> pairs;  ///< sorted unique adjacency pairs
  std::vector<int> csr_offsets;            ///< neighbor-list CSR offsets
  std::vector<int> csr_cursor;
  std::vector<int> csr_neighbors;
  std::vector<int> remap;
  std::vector<int> dense;
};

}  // namespace strg::segment

#endif  // STRG_SEGMENT_WORKSPACE_H_
