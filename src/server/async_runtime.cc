#include "server/async_runtime.h"

#include <utility>

namespace strg::server {

AsyncRuntime::AsyncRuntime() : AsyncRuntime(Options()) {}

AsyncRuntime::AsyncRuntime(Options opts)
    : max_queue_(opts.max_queue == 0 ? 1 : opts.max_queue) {
  size_t n = opts.num_threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AsyncRuntime::~AsyncRuntime() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

bool AsyncRuntime::Post(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (stop_ || queue_.size() >= max_queue_) return false;
    queue_.push(std::move(task));
  }
  cv_.NotifyOne();
  return true;
}

size_t AsyncRuntime::QueueDepth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

void AsyncRuntime::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // Explicit predicate loop (not the lambda-predicate Wait): the
      // analysis proves guarded accesses in this function body, which a
      // closure would hide from it.
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace strg::server
