#ifndef STRG_SERVER_ASYNC_RUNTIME_H_
#define STRG_SERVER_ASYNC_RUNTIME_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace strg::server {

/// Event-loop request runtime: a bounded submission queue drained by a
/// fixed worker pool. This replaces the serving layer's old
/// thread-per-request std::future plumbing — requests are plain posted
/// tasks that signal their own completion state (see RequestState in
/// query_engine.h), so one runtime can be shared by every engine in the
/// process and a sharded engine can fan one request out into per-shard
/// tasks on the same workers.
///
/// The queue bound is the load-shedding backstop: Post never blocks and
/// never queues unboundedly — when the queue is full it refuses, and the
/// caller converts that refusal into a typed kOverloaded completion.
/// Engine-level admission (max_pending) normally rejects first; the
/// runtime bound matters when several engines (shards) share one runtime
/// and their combined admitted load exceeds what the workers can drain.
class AsyncRuntime {
 public:
  struct Options {
    /// Worker threads (0 = hardware concurrency, at least 1).
    size_t num_threads = 0;
    /// Max tasks accepted but not yet started. Posts beyond this shed.
    size_t max_queue = 4096;
  };

  AsyncRuntime();  ///< defaults (out-of-line: nested-NSDMI default-arg quirk)
  explicit AsyncRuntime(Options opts);
  /// Drains: tasks already accepted still run to completion before the
  /// workers join (completion states posted from them stay reachable).
  ~AsyncRuntime();

  AsyncRuntime(const AsyncRuntime&) = delete;
  AsyncRuntime& operator=(const AsyncRuntime&) = delete;

  /// Enqueues `task` for execution on the worker pool. Returns false iff
  /// the submission queue is at capacity (the caller sheds the request)
  /// or the runtime is shutting down. Never blocks beyond the queue mutex.
  bool Post(std::function<void()> task) STRG_EXCLUDES(mu_);

  size_t NumThreads() const { return workers_.size(); }
  /// Tasks accepted but not yet started (a point-in-time reading).
  size_t QueueDepth() const STRG_EXCLUDES(mu_);

 private:
  void WorkerLoop() STRG_EXCLUDES(mu_);

  const size_t max_queue_;
  mutable Mutex mu_{LockRank::kAsyncRuntime};
  CondVar cv_;
  std::queue<std::function<void()>> queue_ STRG_GUARDED_BY(mu_);
  bool stop_ STRG_GUARDED_BY(mu_) = false;
  /// Declared last: workers start after every field above is constructed
  /// and the destructor's join happens while they are all still alive.
  std::vector<std::thread> workers_;
};

}  // namespace strg::server

#endif  // STRG_SERVER_ASYNC_RUNTIME_H_
