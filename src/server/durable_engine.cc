#include "server/durable_engine.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "core/persistence.h"
#include "storage/file_io.h"
#include "storage/serializer.h"

namespace strg::server {

namespace {

namespace fs = std::filesystem;

// Snapshot file: [u32 magic][u32 version][u64 applied_seq][catalog bytes,
// length-prefixed]. applied_seq is the last WAL sequence number the
// snapshot covers — recovery skips log records at or below it, which is
// what makes "crash between snapshot rename and log reset" replay-safe.
constexpr uint32_t kSnapMagic = 0x534E5053;  // "SNPS"
constexpr uint32_t kSnapVersion = 1;

// WAL payload op tags.
constexpr uint8_t kOpAddVideo = 1;
constexpr uint8_t kOpAddObjectGraph = 2;

void EncodeScaling(const dist::FeatureScaling& s, storage::Writer* w) {
  w->PutDouble(s.frame_width);
  w->PutDouble(s.frame_height);
  w->PutDouble(s.position_weight);
  w->PutDouble(s.size_weight);
  w->PutDouble(s.color_weight);
}

dist::FeatureScaling DecodeScaling(storage::Reader* r) {
  dist::FeatureScaling s;
  s.frame_width = r->GetDouble();
  s.frame_height = r->GetDouble();
  s.position_weight = r->GetDouble();
  s.size_weight = r->GetDouble();
  s.color_weight = r->GetDouble();
  return s;
}

api::SegmentResult ReconstituteSegment(const storage::CatalogSegment& s) {
  api::SegmentResult segment;
  segment.num_frames = s.num_frames;
  segment.frame_width = s.frame_width;
  segment.frame_height = s.frame_height;
  segment.decomposition.background = s.background;
  segment.decomposition.object_graphs = s.ogs;
  return segment;
}

uint64_t PayloadSeq(std::string_view payload) {
  storage::Reader r(payload);
  return r.GetU64();
}

}  // namespace

std::string DurableQueryEngine::SnapshotPath(const std::string& wal_dir) {
  return wal_dir + "/catalog.snap";
}
std::string DurableQueryEngine::SnapshotTmpPath(const std::string& wal_dir) {
  return wal_dir + "/catalog.snap.tmp";
}
std::string DurableQueryEngine::LogPath(const std::string& wal_dir) {
  return wal_dir + "/wal.log";
}
std::string DurableQueryEngine::StorePath(const std::string& wal_dir) {
  return wal_dir + "/store.pages";
}
std::string DurableQueryEngine::PagedSnapshotPath(const std::string& wal_dir) {
  return wal_dir + "/catalog.pages";
}
std::string DurableQueryEngine::PagedSnapshotTmpPath(
    const std::string& wal_dir) {
  return wal_dir + "/catalog.pages.tmp";
}

DurableQueryEngine::DurableQueryEngine(
    std::string wal_dir, index::StrgIndexParams params,
    DurableEngineOptions opts,
    std::unique_ptr<storage::PagedRecordStore> og_store)
    : wal_dir_(std::move(wal_dir)),
      opts_(opts),
      og_store_(std::move(og_store)),
      engine_(params, opts.engine) {}

api::StatusOr<std::unique_ptr<DurableQueryEngine>> DurableQueryEngine::Open(
    const std::string& wal_dir, index::StrgIndexParams params,
    DurableEngineOptions opts) {
  std::unique_ptr<storage::PagedRecordStore> store;
  if (opts.storage.paged) {
    // The leaf store is derived data: recreated (truncated) at every open,
    // then refilled by the deterministic index rebuild during recovery.
    // Durability lives in the snapshot + WAL, never in store.pages — which
    // is also what reclaims space orphaned by Remove/compaction churn.
    std::error_code ec;
    fs::create_directories(wal_dir, ec);
    if (ec) {
      return api::Status::IoError("open: cannot create " + wal_dir + ": " +
                                  ec.message());
    }
    api::StatusOr<std::unique_ptr<storage::PagedRecordStore>> created =
        storage::PagedRecordStore::Create(StorePath(wal_dir), opts.storage);
    if (!created.ok()) return created.status();
    store = std::move(created).value();
    params.paged_store = store.get();
  }
  std::unique_ptr<DurableQueryEngine> engine(
      new DurableQueryEngine(wal_dir, params, opts, std::move(store)));
  api::Status st = engine->Recover();
  if (!st.ok()) return st;
  if (engine->og_store_ != nullptr) {
    // Flush the rebuilt leaf records so the on-disk file is self-describing
    // (strgtool stat audits it offline); correctness never depends on this
    // — the store is recreated at the next open regardless.
    st = engine->og_store_->Commit();
    if (!st.ok()) return st;
    // Wired once before the engine is shared; ToJson reads it lock-free.
    engine->engine_.mutable_metrics().storage_cache.store(
        engine->og_store_->cache(), std::memory_order_release);
  }
  return engine;
}

api::Status DurableQueryEngine::Recover() {
  // Uncontended at open (nothing else can reach the engine yet); holding
  // the ingest lock keeps the guarded-field proofs uniform.
  MutexLock lock(ingest_mu_);
  const auto start = std::chrono::steady_clock::now();
  std::error_code ec;
  fs::create_directories(wal_dir_, ec);
  if (ec) {
    return api::Status::IoError("recovery: cannot create " + wal_dir_ + ": " +
                                ec.message());
  }

  // 1. Leftover *.tmp files (flat or paged snapshot halves) mean a
  //    compaction died before publishing; the live snapshot is still the
  //    previous, complete one. Sweep them all — orphan tmps are pure
  //    garbage whatever wrote them.
  for (const fs::directory_entry& entry :
       fs::directory_iterator(wal_dir_, ec)) {
    if (ec) break;
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec)) continue;
    if (!entry.path().filename().string().ends_with(".tmp")) continue;
    fs::remove(entry.path(), entry_ec);
    if (entry_ec) {
      return api::Status::IoError("recovery: cannot remove orphan tmp " +
                                  entry.path().string() + ": " +
                                  entry_ec.message());
    }
    recovery_.removed_orphan_tmp = true;
  }

  // 2. Snapshot: the bulk of the state, loaded in one deterministic
  //    rebuild. Corruption here is fatal — the log alone cannot prove it
  //    holds the complete history.
  uint64_t applied_seq = 0;
  if (opts_.storage.paged) {
    api::StatusOr<storage::Catalog> loaded =
        storage::Catalog::TryLoadFromPagedFile(PagedSnapshotPath(wal_dir_),
                                               opts_.storage, &applied_seq);
    if (loaded.ok()) {
      catalog_ = std::move(loaded).value();
    } else if (loaded.status().code() != api::StatusCode::kNotFound) {
      return loaded.status();
    }
  } else {
    api::StatusOr<std::string> snap =
        storage::ReadFileToString(SnapshotPath(wal_dir_));
    if (!snap.ok() && snap.status().code() != api::StatusCode::kNotFound) {
      return snap.status();
    }
    if (snap.ok()) {
      const std::string bytes = std::move(snap).value();
      try {
        storage::Reader r(bytes);
        if (r.GetU32() != kSnapMagic) {
          return api::Status::Corruption("recovery: snapshot has bad magic");
        }
        if (r.GetU32() != kSnapVersion) {
          return api::Status::Corruption(
              "recovery: unsupported snapshot version");
        }
        applied_seq = r.GetU64();
        api::StatusOr<storage::Catalog> catalog =
            storage::Catalog::TryDeserialize(r.GetString());
        if (!catalog.ok()) return catalog.status();
        if (!r.AtEnd()) {
          return api::Status::Corruption(
              "recovery: trailing bytes after snapshot");
        }
        catalog_ = std::move(catalog).value();
      } catch (const std::out_of_range&) {
        return api::Status::Corruption("recovery: truncated snapshot");
      }
    }
  }
  for (const storage::CatalogSegment& s : catalog_.segments()) {
    engine_.AddVideo(s.video_name, ReconstituteSegment(s));
    recovery_.snapshot_ogs += s.ogs.size();
  }
  recovery_.snapshot_segments = catalog_.NumSegments();
  next_seq_ = applied_seq + 1;

  // 3+4. Log: CRC-validate (truncating any torn/corrupt tail), then replay
  //      records newer than the snapshot through the normal ingest path.
  api::StatusOr<storage::WalRecovery> scanned =
      storage::RecoverWal(LogPath(wal_dir_));
  if (!scanned.ok()) return scanned.status();
  recovery_.tail_truncated = scanned->tail_truncated;
  log_records_ = scanned->records.size();
  for (const std::string& payload : scanned->records) {
    uint64_t seq = 0;
    try {
      seq = PayloadSeq(payload);
    } catch (const std::out_of_range&) {
      return api::Status::Corruption("recovery: WAL record too short");
    }
    if (seq <= applied_seq) {
      // Already folded into the snapshot (crash between snapshot rename
      // and log reset): skip, never double-apply.
      ++recovery_.stale_records;
      continue;
    }
    api::Status st = ApplyRecord(payload, &seq);
    if (!st.ok()) return st;
    ++recovery_.replayed_records;
    if (seq >= next_seq_) next_seq_ = seq + 1;
  }

  // Generation tokens equal WAL sequence numbers in this engine, so after
  // a snapshot rebuild (which collapses many original publishes into a few)
  // the counter is fast-forwarded to the last applied sequence — an acked
  // generation from before the crash is never "in the future" after it.
  engine_.RestoreGeneration(next_seq_ - 1);

  api::StatusOr<storage::WalWriter> writer =
      storage::WalWriter::Open(LogPath(wal_dir_), opts_.wal);
  if (!writer.ok()) return writer.status();
  wal_ = std::move(writer).value();

  recovery_.replay_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return api::Status::Ok();
}

api::Status DurableQueryEngine::ApplyRecord(std::string_view payload,
                                            uint64_t* seq) {
  try {
    storage::Reader r(payload);
    *seq = r.GetU64();
    const uint8_t op = r.GetU8();
    if (op == kOpAddVideo) {
      storage::CatalogSegment seg = storage::DecodeCatalogSegment(&r);
      engine_.AddVideo(seg.video_name, ReconstituteSegment(seg));
      catalog_.AddSegment(std::move(seg));
      return api::Status::Ok();
    }
    if (op == kOpAddObjectGraph) {
      const size_t segment_id = static_cast<size_t>(r.GetVarint());
      std::string video = r.GetString();
      dist::FeatureScaling scaling = DecodeScaling(&r);
      core::Og og = storage::DecodeOg(&r);
      if (segment_id >= catalog_.NumSegments()) {
        return api::Status::Corruption(
            "recovery: WAL AddObjectGraph names unknown segment");
      }
      engine_.AddObjectGraph(static_cast<int>(segment_id), video, og,
                             scaling);
      catalog_.AppendOg(segment_id, std::move(og));
      return api::Status::Ok();
    }
    return api::Status::Corruption("recovery: unknown WAL op " +
                                   std::to_string(op));
  } catch (const std::out_of_range&) {
    return api::Status::Corruption("recovery: truncated WAL payload");
  }
}

api::StatusOr<uint64_t> DurableQueryEngine::AddVideo(
    const std::string& name, const api::SegmentResult& segment,
    int* segment_id) {
  MutexLock lock(ingest_mu_);
  storage::CatalogSegment seg = api::ToCatalogSegment(name, segment);

  storage::Writer w;
  w.PutU64(next_seq_);
  w.PutU8(kOpAddVideo);
  storage::EncodeCatalogSegment(seg, &w);
  api::Status st = wal_.Append(w.bytes());
  if (!st.ok()) return st;  // nothing published: the ack stays honest
  if (fail_point_ == FailPoint::kAfterWalAppend) {
    return api::Status::IoError("fail point: crashed after WAL append");
  }
  ++next_seq_;
  ++log_records_;

  catalog_.AddSegment(std::move(seg));
  uint64_t gen = engine_.AddVideo(name, segment, segment_id);

  ServerMetrics& m = engine_.mutable_metrics();
  m.wal_appends.store(wal_.records_appended(), std::memory_order_relaxed);
  m.wal_synced_bytes.store(wal_.bytes_appended(), std::memory_order_relaxed);
  m.wal_syncs.store(wal_.syncs(), std::memory_order_relaxed);

  if (opts_.compact_every != 0 && log_records_ >= opts_.compact_every) {
    st = CompactLocked();
    if (!st.ok()) return st;  // the ingest itself is durable; surfacing the
                              // failed compaction beats hiding it
  }
  return gen;
}

api::StatusOr<uint64_t> DurableQueryEngine::AddObjectGraph(
    int segment_id, const std::string& video, const core::Og& og,
    const dist::FeatureScaling& scaling) {
  if (segment_id < 0) {
    return api::Status::InvalidArgument("AddObjectGraph: negative segment id");
  }
  MutexLock lock(ingest_mu_);
  if (static_cast<size_t>(segment_id) >= catalog_.NumSegments()) {
    return api::Status::NotFound("AddObjectGraph: unknown segment " +
                                 std::to_string(segment_id));
  }

  storage::Writer w;
  w.PutU64(next_seq_);
  w.PutU8(kOpAddObjectGraph);
  w.PutVarint(static_cast<uint64_t>(segment_id));
  w.PutString(video);
  EncodeScaling(scaling, &w);
  storage::EncodeOg(og, &w);
  api::Status st = wal_.Append(w.bytes());
  if (!st.ok()) return st;
  if (fail_point_ == FailPoint::kAfterWalAppend) {
    return api::Status::IoError("fail point: crashed after WAL append");
  }
  ++next_seq_;
  ++log_records_;

  catalog_.AppendOg(static_cast<size_t>(segment_id), og);
  uint64_t gen = engine_.AddObjectGraph(segment_id, video, og, scaling);

  ServerMetrics& m = engine_.mutable_metrics();
  m.wal_appends.store(wal_.records_appended(), std::memory_order_relaxed);
  m.wal_synced_bytes.store(wal_.bytes_appended(), std::memory_order_relaxed);
  m.wal_syncs.store(wal_.syncs(), std::memory_order_relaxed);

  if (opts_.compact_every != 0 && log_records_ >= opts_.compact_every) {
    st = CompactLocked();
    if (!st.ok()) return st;
  }
  return gen;
}

api::Status DurableQueryEngine::CompactLocked() {
  // Publish protocol: tmp write + fsync, rename over the live snapshot,
  // directory fsync, then (and only then) reset the log. A crash at any
  // point leaves either the old snapshot + full log, or the new snapshot
  // + a log whose records are all <= applied_seq and thus skipped. The
  // paged mode writes the snapshot through a PagedRecordStore (per-page
  // CRCs) instead of one flat file; the publish protocol is identical.
  std::string tmp, live;
  api::Status st;
  if (opts_.storage.paged) {
    tmp = PagedSnapshotTmpPath(wal_dir_);
    live = PagedSnapshotPath(wal_dir_);
    st = catalog_.TrySaveToPagedFile(tmp, opts_.storage, next_seq_ - 1);
  } else {
    storage::Writer w;
    w.PutU32(kSnapMagic);
    w.PutU32(kSnapVersion);
    w.PutU64(next_seq_ - 1);
    w.PutString(catalog_.Serialize());
    tmp = SnapshotTmpPath(wal_dir_);
    live = SnapshotPath(wal_dir_);
    st = storage::WriteFileSync(tmp, w.bytes());
  }
  if (!st.ok()) return st;
  if (fail_point_ == FailPoint::kAfterSnapshotTmpWrite) {
    return api::Status::IoError(
        "fail point: crashed after tmp snapshot write");
  }
  if (std::rename(tmp.c_str(), live.c_str()) != 0) {
    return api::Status::IoError("snapshot: rename failed: " +
                                std::string(std::strerror(errno)));
  }
  st = storage::SyncDir(wal_dir_);
  if (!st.ok()) return st;
  if (fail_point_ == FailPoint::kAfterSnapshotRename) {
    return api::Status::IoError("fail point: crashed after snapshot rename");
  }

  st = wal_.Reset();
  if (!st.ok()) return st;
  log_records_ = 0;
  engine_.mutable_metrics().wal_compactions.fetch_add(
      1, std::memory_order_relaxed);
  if (og_store_ != nullptr) {
    // Each publish point also commits the leaf store: the page file on
    // disk then matches the snapshot just published, so offline audits
    // (strgtool stat) see real occupancy instead of a stale header.
    st = og_store_->Commit();
    if (!st.ok()) return st;
  }
  return api::Status::Ok();
}

api::Status DurableQueryEngine::Compact() {
  MutexLock lock(ingest_mu_);
  return CompactLocked();
}

api::Status DurableQueryEngine::Sync() {
  MutexLock lock(ingest_mu_);
  api::Status st = wal_.Sync();
  engine_.mutable_metrics().wal_syncs.store(wal_.syncs(),
                                            std::memory_order_relaxed);
  if (!st.ok()) return st;
  if (og_store_ != nullptr) {
    // Keep the on-disk page file self-describing (header page counts,
    // flushed frames) for offline audits; recovery never reads it.
    st = og_store_->Commit();
  }
  return st;
}

}  // namespace strg::server
