#ifndef STRG_SERVER_DURABLE_ENGINE_H_
#define STRG_SERVER_DURABLE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "api/query_spec.h"
#include "api/status.h"
#include "server/query_engine.h"
#include "storage/catalog.h"
#include "storage/pager/paged_record_store.h"
#include "storage/pager/storage_params.h"
#include "storage/wal.h"
#include "util/sync.h"

namespace strg::server {

struct DurableEngineOptions {
  /// WAL fsync policy (see storage::WalSyncPolicy for the durability
  /// window each choice buys).
  storage::WalOptions wal;
  /// Automatic compaction period: after this many WAL records, the catalog
  /// is snapshotted and the log reset so replay cost stays bounded.
  /// 0 disables automatic compaction (Compact() stays available).
  size_t compact_every = 1024;
  /// Serving-layer options forwarded to the wrapped QueryEngine.
  EngineOptions engine;
  /// Out-of-core storage engine (A/B knob, default off = all in RAM).
  /// With `storage.paged` set the engine keeps two page files under the
  /// durability directory: `store.pages`, an ephemeral leaf-record store
  /// the index writes through during rebuild/ingest (recreated at every
  /// Open — durability comes from the snapshot + WAL, never from it), and
  /// `catalog.pages`, the paged catalog snapshot compaction publishes via
  /// the same tmp + rename protocol as the flat snapshot.
  storage::StorageParams storage;
};

/// Named crash points for fault-injection tests: the engine abandons the
/// operation exactly there, leaving on-disk state as a real crash would.
/// After a fail point fires the engine must be discarded (like the process
/// it simulates).
enum class FailPoint {
  kNone,
  /// The WAL record was appended (and synced per policy) but the
  /// generation was never published or acked.
  kAfterWalAppend,
  /// Compaction wrote + fsynced the tmp snapshot but died before the
  /// rename — recovery must discard the orphan tmp and serve the old
  /// snapshot + full log.
  kAfterSnapshotTmpWrite,
  /// Compaction published the new snapshot (rename + dir fsync done) but
  /// died before resetting the log — every log record is now stale.
  kAfterSnapshotRename,
};

/// What recovery found and did when the engine opened its directory.
struct RecoveryStats {
  size_t snapshot_segments = 0;  ///< segments loaded from catalog.snap
  size_t snapshot_ogs = 0;
  size_t replayed_records = 0;   ///< log records applied after the snapshot
  size_t stale_records = 0;      ///< records already covered by the snapshot
  bool tail_truncated = false;   ///< a torn/corrupt log tail was cut
  bool removed_orphan_tmp = false;  ///< crash mid-compaction was cleaned up
  double replay_seconds = 0.0;   ///< snapshot load + log replay wall time
};

/// Crash-durable front over QueryEngine.
///
/// Write path — log, sync, then publish:
///   AddVideo / AddObjectGraph first frame the operation into the WAL
///   (CRC32C per record) and fsync per policy, and only then publish the
///   new in-memory generation. An acked call therefore implies the bytes
///   reached the log (and, under kEveryRecord, stable storage), so every
///   acked generation survives a crash.
///
/// Recovery (Open) — snapshot, then log:
///   1. Remove an orphaned catalog.snap.tmp (a compaction died mid-write;
///      the published snapshot is still the old, complete one).
///   2. Load catalog.snap if present; it records the last WAL sequence
///      number it covers.
///   3. Scan wal.log: CRC-validate records, truncate the first torn or
///      corrupt frame and everything after it.
///   4. Rebuild the VideoDatabase from the snapshot catalog (deterministic
///      index rebuild), then re-apply log records with seq > snapshot seq
///      through the normal ingest path. Records at or below the snapshot
///      seq are stale duplicates from a crash between snapshot publication
///      and log reset, and are skipped.
///
/// Compaction — bounded replay:
///   Every `compact_every` records the full catalog (segments + streamed
///   OGs folded in) is written to catalog.snap.tmp, fsynced, renamed over
///   catalog.snap (directory fsynced), and the log is reset. Compaction
///   folds streamed OGs into their segment, so replay-after-compaction maps
///   them with the segment's geometry-derived FeatureScaling — the
///   documented contract of AddObjectGraph (use the producing segment's
///   Scaling()).
///
/// Concurrency: reads go straight to the wrapped QueryEngine (snapshot
/// isolation, admission control, caching — unchanged). Ingest serializes
/// on one mutex covering the WAL append + publish + compaction decision.
class DurableQueryEngine {
 public:
  /// Opens (creating if needed) the durability directory and recovers
  /// state. kCorruption from the snapshot is an error (the log alone
  /// cannot prove completeness); log damage is self-healing by truncation.
  static api::StatusOr<std::unique_ptr<DurableQueryEngine>> Open(
      const std::string& wal_dir, index::StrgIndexParams params = {},
      DurableEngineOptions opts = {});

  // ---- Writers (durable: logged + synced before publication). ----

  api::StatusOr<uint64_t> AddVideo(const std::string& name,
                                   const api::SegmentResult& segment,
                                   int* segment_id = nullptr)
      STRG_EXCLUDES(ingest_mu_);
  api::StatusOr<uint64_t> AddObjectGraph(int segment_id,
                                         const std::string& video,
                                         const core::Og& og,
                                         const dist::FeatureScaling& scaling)
      STRG_EXCLUDES(ingest_mu_);

  // ---- Readers (delegate to the serving engine). ----

  /// Async submit/complete surface, same contract as QueryEngine::Submit.
  QueryHandle Submit(const api::QuerySpec& spec, const QueryOptions& opts = {},
                     CompletionFn on_complete = nullptr) {
    return engine_.Submit(spec, opts, std::move(on_complete));
  }

  QueryResult Query(const api::QuerySpec& spec, const QueryOptions& opts = {}) {
    return engine_.Query(spec, opts);
  }

  // ---- Durability controls. ----

  /// Publishes a catalog snapshot and resets the log now.
  api::Status Compact() STRG_EXCLUDES(ingest_mu_);
  /// Forces an fsync of pending log records (relevant under kEveryN /
  /// kOnPublish). In paged mode also commits the leaf store so the page
  /// file on disk is self-describing for offline audits (strgtool stat).
  api::Status Sync() STRG_EXCLUDES(ingest_mu_);

  // ---- Introspection. ----

  QueryEngine& engine() { return engine_; }
  const QueryEngine& engine() const { return engine_; }
  uint64_t Generation() const { return engine_.Generation(); }
  std::string MetricsJson() const { return engine_.MetricsJson(); }
  const RecoveryStats& recovery() const { return recovery_; }
  /// The durable mirror: exactly what a crash-now recovery would rebuild.
  /// Opted out of the analysis: the accessor hands out an unlocked
  /// reference for test/CLI inspection of a quiesced engine — callers must
  /// not hold it across concurrent AddVideo/AddObjectGraph calls.
  const storage::Catalog& catalog() const STRG_NO_THREAD_SAFETY_ANALYSIS {
    return catalog_;
  }

  static std::string SnapshotPath(const std::string& wal_dir);
  static std::string SnapshotTmpPath(const std::string& wal_dir);
  static std::string LogPath(const std::string& wal_dir);
  /// Paged-mode files (see DurableEngineOptions::storage).
  static std::string StorePath(const std::string& wal_dir);
  static std::string PagedSnapshotPath(const std::string& wal_dir);
  static std::string PagedSnapshotTmpPath(const std::string& wal_dir);

  /// The leaf-record store backing the index in paged mode (nullptr when
  /// storage.paged is off). Exposed for metrics/tests.
  storage::PagedRecordStore* paged_store() { return og_store_.get(); }

  /// Arms a crash point (fault-injection tests only).
  void set_fail_point(FailPoint point) { fail_point_ = point; }

 private:
  DurableQueryEngine(std::string wal_dir, index::StrgIndexParams params,
                     DurableEngineOptions opts,
                     std::unique_ptr<storage::PagedRecordStore> og_store);

  /// Runs in the constructor path, before the engine is shared; it takes
  /// ingest_mu_ anyway (uncontended) so the guarded-field proofs hold
  /// everywhere instead of carrying a "single-threaded here" exemption.
  api::Status Recover() STRG_EXCLUDES(ingest_mu_);
  api::Status CompactLocked() STRG_REQUIRES(ingest_mu_);
  /// Applies one decoded WAL payload to the engine + catalog mirror.
  api::Status ApplyRecord(std::string_view payload, uint64_t* seq)
      STRG_REQUIRES(ingest_mu_);

  const std::string wal_dir_;
  const DurableEngineOptions opts_;
  RecoveryStats recovery_;
  FailPoint fail_point_ = FailPoint::kNone;

  /// One lock covers the whole durable write protocol: WAL append + seq
  /// advance + catalog mirror + publish + compaction decision.
  Mutex ingest_mu_{LockRank::kIngestDurable};
  uint64_t next_seq_ STRG_GUARDED_BY(ingest_mu_) = 1;     ///< next WAL seq
  uint64_t log_records_ STRG_GUARDED_BY(ingest_mu_) = 0;  ///< live log size
  storage::Catalog catalog_ STRG_GUARDED_BY(ingest_mu_);
  storage::WalWriter wal_ STRG_GUARDED_BY(ingest_mu_);
  /// Declared before engine_ so it outlives it: every index generation the
  /// engine holds references leaf records in this store.
  std::unique_ptr<storage::PagedRecordStore> og_store_;
  QueryEngine engine_;
};

}  // namespace strg::server

#endif  // STRG_SERVER_DURABLE_ENGINE_H_
