#include "server/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace strg::server {

namespace {

/// Formats a double with bounded precision (JSON-safe, no locale).
void AppendNumber(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out->append(buf);
}

void AppendCount(std::string* out, uint64_t v) {
  out->append(std::to_string(v));
}

}  // namespace

double LatencyHistogram::BucketUpperMicros(size_t i) {
  // 2^(i/2): 1us, 1.41us, 2us, ... ~2.96e6 us for the last finite bucket.
  return std::pow(2.0, static_cast<double>(i) / 2.0);
}

void LatencyHistogram::Record(double micros) {
  if (micros < 0.0) micros = 0.0;
  // Inverse of BucketUpperMicros: first bucket whose upper bound >= micros.
  size_t b = 0;
  if (micros > 1.0) {
    b = static_cast<size_t>(std::ceil(2.0 * std::log2(micros)));
  }
  b = std::min(b, kNumBuckets - 1);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(static_cast<uint64_t>(micros),
                        std::memory_order_relaxed);
}

double LatencyHistogram::MeanMicros() const {
  uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

double LatencyHistogram::PercentileMicros(double p) const {
  uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 *
                                                  static_cast<double>(n)));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t cum = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    cum += buckets_[b].load(std::memory_order_relaxed);
    if (cum >= rank) return BucketUpperMicros(b);
  }
  return BucketUpperMicros(kNumBuckets - 1);
}

void LatencyHistogram::AppendJson(std::string* out) const {
  out->append("{\"count\":");
  AppendCount(out, Count());
  out->append(",\"mean_us\":");
  AppendNumber(out, MeanMicros());
  out->append(",\"p50_us\":");
  AppendNumber(out, PercentileMicros(50.0));
  out->append(",\"p95_us\":");
  AppendNumber(out, PercentileMicros(95.0));
  out->append(",\"p99_us\":");
  AppendNumber(out, PercentileMicros(99.0));
  out->append("}");
}

void ServerMetrics::NoteQueueDepth(int64_t depth) {
  int64_t seen = max_queue_depth.load(std::memory_order_relaxed);
  while (depth > seen &&
         !max_queue_depth.compare_exchange_weak(seen, depth,
                                                std::memory_order_relaxed)) {
  }
}

void ServerMetrics::AddIngestPipeline(const api::IngestStats& s) {
  frames_segmented.fetch_add(s.frames_segmented, std::memory_order_relaxed);
  shots_processed.fetch_add(s.shots_processed, std::memory_order_relaxed);
  ingest_queue_stalls.fetch_add(s.queue_full_stalls,
                                std::memory_order_relaxed);
  ingest_segment_us.fetch_add(s.segment_us, std::memory_order_relaxed);
  ingest_track_us.fetch_add(s.track_us, std::memory_order_relaxed);
  ingest_decompose_us.fetch_add(s.decompose_us, std::memory_order_relaxed);
}

double ServerMetrics::CacheHitRate() const {
  uint64_t h = cache_hits.load(std::memory_order_relaxed);
  uint64_t m = cache_misses.load(std::memory_order_relaxed);
  if (h + m == 0) return 0.0;
  return static_cast<double>(h) / static_cast<double>(h + m);
}

std::string ServerMetrics::ToJson(
    uint64_t generation, const std::vector<ShardScrape>& shards) const {
  std::string out;
  out.reserve(1024 + shards.size() * 64);
  out.append("{\"generation\":");
  AppendCount(&out, generation);

  // Per-shard breakdown; [] on an unsharded engine. Key order inside each
  // entry is part of the stable schema the regression test pins.
  out.append(",\"shards\":[");
  for (size_t s = 0; s < shards.size(); ++s) {
    if (s != 0) out.push_back(',');
    out.append("{\"queries\":");
    AppendCount(&out, shards[s].queries);
    out.append(",\"tau_prune_hits\":");
    AppendCount(&out, shards[s].tau_prune_hits);
    out.append(",\"queue_depth\":");
    out.append(std::to_string(shards[s].queue_depth));
    out.append("}");
  }
  out.append("]");

  out.append(",\"admission\":{\"admitted\":");
  AppendCount(&out, admitted.load(std::memory_order_relaxed));
  out.append(",\"rejected_overloaded\":");
  AppendCount(&out, rejected_overloaded.load(std::memory_order_relaxed));
  out.append(",\"expired_in_queue\":");
  AppendCount(&out, expired_in_queue.load(std::memory_order_relaxed));
  out.append(",\"deadline_exceeded\":");
  AppendCount(&out, deadline_exceeded.load(std::memory_order_relaxed));
  out.append(",\"queue_depth\":");
  out.append(std::to_string(queue_depth.load(std::memory_order_relaxed)));
  out.append(",\"max_queue_depth\":");
  out.append(std::to_string(max_queue_depth.load(std::memory_order_relaxed)));
  out.append("}");

  // Per-status-code request breakdown (one slot per api::StatusCode).
  out.append(",\"status_codes\":{");
  for (size_t i = 0; i < api::kNumStatusCodes; ++i) {
    if (i != 0) out.push_back(',');
    out.push_back('"');
    out.append(api::StatusCodeName(static_cast<api::StatusCode>(i)));
    out.append("\":");
    AppendCount(&out, status_counts[i].load(std::memory_order_relaxed));
  }
  out.append("}");

  out.append(",\"cache\":{\"hits\":");
  AppendCount(&out, cache_hits.load(std::memory_order_relaxed));
  out.append(",\"misses\":");
  AppendCount(&out, cache_misses.load(std::memory_order_relaxed));
  out.append(",\"hit_rate\":");
  AppendNumber(&out, CacheHitRate());
  out.append("}");

  out.append(",\"ingest\":{\"count\":");
  AppendCount(&out, ingests.load(std::memory_order_relaxed));
  out.append(",\"snapshots_published\":");
  AppendCount(&out, snapshots_published.load(std::memory_order_relaxed));
  out.append(",\"frames_segmented\":");
  AppendCount(&out, frames_segmented.load(std::memory_order_relaxed));
  out.append(",\"shots\":");
  AppendCount(&out, shots_processed.load(std::memory_order_relaxed));
  out.append(",\"queue_stalls\":");
  AppendCount(&out, ingest_queue_stalls.load(std::memory_order_relaxed));
  out.append(",\"stage_us\":{\"segment\":");
  AppendCount(&out, ingest_segment_us.load(std::memory_order_relaxed));
  out.append(",\"track\":");
  AppendCount(&out, ingest_track_us.load(std::memory_order_relaxed));
  out.append(",\"decompose\":");
  AppendCount(&out, ingest_decompose_us.load(std::memory_order_relaxed));
  out.append("}");
  out.append(",\"latency\":");
  ingest_latency.AppendJson(&out);
  out.append("}");

  out.append(",\"wal\":{\"appends\":");
  AppendCount(&out, wal_appends.load(std::memory_order_relaxed));
  out.append(",\"bytes\":");
  AppendCount(&out, wal_synced_bytes.load(std::memory_order_relaxed));
  out.append(",\"syncs\":");
  AppendCount(&out, wal_syncs.load(std::memory_order_relaxed));
  out.append(",\"compactions\":");
  AppendCount(&out, wal_compactions.load(std::memory_order_relaxed));
  out.append("}");

  // Out-of-core storage engine (zeros + paged:false when the engine keeps
  // everything in RAM).
  const storage::BufferCache* cache =
      storage_cache.load(std::memory_order_acquire);
  const storage::BufferCacheStats cs =
      cache != nullptr ? cache->stats() : storage::BufferCacheStats{};
  out.append(",\"storage\":{\"paged\":");
  out.append(cache != nullptr ? "true" : "false");
  out.append(",\"hits\":");
  AppendCount(&out, cs.hits);
  out.append(",\"misses\":");
  AppendCount(&out, cs.misses);
  out.append(",\"evictions\":");
  AppendCount(&out, cs.evictions);
  out.append(",\"write_backs\":");
  AppendCount(&out, cs.write_backs);
  out.append(",\"pinned_pages\":");
  AppendCount(&out, cs.pinned_pages);
  out.append(",\"hit_rate\":");
  AppendNumber(&out, cs.HitRate());
  out.append(",\"resident_bytes\":");
  AppendCount(&out, cache != nullptr ? cache->resident_bytes() : 0);
  out.append("}");

  out.append(",\"distance\":{\"computations\":");
  AppendCount(&out, distance_computations.load(std::memory_order_relaxed));
  out.append(",\"lb_prunes\":");
  AppendCount(&out, lb_prunes.load(std::memory_order_relaxed));
  out.append(",\"early_abandons\":");
  AppendCount(&out, early_abandons.load(std::memory_order_relaxed));
  out.append("}");

  out.append(",\"queries\":{\"knn\":");
  knn_latency.AppendJson(&out);
  out.append(",\"range\":");
  range_latency.AppendJson(&out);
  out.append(",\"active\":");
  active_latency.AppendJson(&out);
  out.append("}}");
  return out;
}

}  // namespace strg::server
