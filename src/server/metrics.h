#ifndef STRG_SERVER_METRICS_H_
#define STRG_SERVER_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "api/status.h"
#include "core/ingest_stats.h"
#include "storage/pager/buffer_cache.h"
#include "util/sync.h"

namespace strg::server {

/// Lock-free fixed-bucket latency histogram (microseconds).
///
/// Buckets grow geometrically by sqrt(2) from 1 us to ~3 s plus one
/// overflow bucket, so Record is a single relaxed fetch_add and percentile
/// estimates carry at most ~19% relative bucket error — plenty for p50/p95/
/// p99 serving dashboards. All methods are safe to call concurrently;
/// readers see a (possibly slightly stale) consistent-enough view, which is
/// the usual contract for scrape-style metrics.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 45;  ///< 44 finite + overflow

  void Record(double micros);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double MeanMicros() const;
  /// p in [0, 100]; returns the upper bound of the bucket containing the
  /// p-th percentile observation (0 when empty).
  double PercentileMicros(double p) const;

  /// Appends {"count":..,"mean_us":..,"p50_us":..,"p95_us":..,"p99_us":..}.
  /// STRG_LOCK_FREE: reads relaxed atomics only; see ServerMetrics::ToJson.
  STRG_LOCK_FREE void AppendJson(std::string* out) const;

  /// Upper bound (us) of bucket i — exposed for tests.
  static double BucketUpperMicros(size_t i);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
};

/// Central registry of the serving layer's observability surface: atomic
/// counters + per-operation latency histograms, dumpable as JSON. Owned by
/// the QueryEngine; all fields may be read while the engine is serving.
///
/// Memory-order policy: every counter access in this registry — reads and
/// writes alike — uses std::memory_order_relaxed, uniformly. Counters are
/// monotone statistics, never used to publish other data or to synchronize
/// control flow, so no access needs acquire/release pairing; relaxed keeps
/// Record/NoteStatus to a single uncontended RMW on the hot path, and a
/// scrape observing counters mid-update is within the scrape contract
/// (slightly stale, never torn). Any future field that *does* publish data
/// must not live here — it belongs behind a strg::Mutex.
class ServerMetrics {
 public:
  // Admission control.
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> rejected_overloaded{0};
  std::atomic<uint64_t> expired_in_queue{0};    ///< deadline hit before run
  std::atomic<uint64_t> deadline_exceeded{0};   ///< caller gave up waiting
  std::atomic<int64_t> queue_depth{0};          ///< admitted, not finished
  std::atomic<int64_t> max_queue_depth{0};

  // Result cache.
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};

  // Ingest / snapshot publication.
  std::atomic<uint64_t> ingests{0};
  std::atomic<uint64_t> snapshots_published{0};

  // Frames -> OGs ingest pipeline (api::VideoPipeline / ProcessFrames).
  // The pipeline counts locally on the ingesting thread and callers fold
  // whole runs in via AddIngestPipeline, mirroring how the PR 3 distance
  // counters reach this registry.
  std::atomic<uint64_t> frames_segmented{0};
  std::atomic<uint64_t> shots_processed{0};
  std::atomic<uint64_t> ingest_queue_stalls{0};  ///< queue-full backpressure
  std::atomic<uint64_t> ingest_segment_us{0};    ///< segmentation + RAG build
  std::atomic<uint64_t> ingest_track_us{0};      ///< serial tracking merge
  std::atomic<uint64_t> ingest_decompose_us{0};  ///< Finish() decomposition

  // Request outcomes by api::StatusCode — every QueryResult the engine
  // hands back increments exactly one slot, so the dashboard shows the
  // full ok/overloaded/deadline/io/corruption breakdown directly instead
  // of it being derivable only from bench output.
  std::array<std::atomic<uint64_t>, api::kNumStatusCodes> status_counts{};

  // Distance-kernel work across all executed (non-cached) queries: DP
  // evaluations actually run, candidates answered by the O(m+n) lower-bound
  // cascade, and DPs truncated by early abandoning. Each query counts these
  // locally (api::VideoDatabase::QueryStats) and the engine adds them here
  // once per compute, so the aggregates are exact under concurrent load.
  std::atomic<uint64_t> distance_computations{0};
  std::atomic<uint64_t> lb_prunes{0};
  std::atomic<uint64_t> early_abandons{0};

  // Durability layer (written by DurableQueryEngine; zero on a
  // memory-only engine).
  std::atomic<uint64_t> wal_appends{0};
  std::atomic<uint64_t> wal_synced_bytes{0};  ///< bytes framed into the log
  std::atomic<uint64_t> wal_syncs{0};         ///< fsync calls issued
  std::atomic<uint64_t> wal_compactions{0};   ///< snapshot publications

  // Out-of-core storage engine: the buffer cache under the paged leaf
  // store, when the engine runs with StorageParams::paged (nullptr = all
  // in RAM). Set once by DurableQueryEngine::Open before the engine is
  // shared; ToJson reads the cache's own relaxed counters through it, so
  // the scrape stays lock-free. The pointee outlives this registry (the
  // store is destroyed after the engine that owns the metrics).
  std::atomic<const storage::BufferCache*> storage_cache{nullptr};

  // Latency per operation type (admission-to-completion for queries).
  LatencyHistogram knn_latency;
  LatencyHistogram range_latency;
  LatencyHistogram active_latency;
  LatencyHistogram ingest_latency;

  /// Tracks the high-water mark after a queue_depth update.
  void NoteQueueDepth(int64_t depth);

  /// Attributes one finished request to its status code.
  void NoteStatus(api::StatusCode code) {
    status_counts[static_cast<size_t>(code)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Folds one ingest run's pipeline counters into the registry.
  void AddIngestPipeline(const api::IngestStats& s);

  double CacheHitRate() const;

  /// One shard's point-in-time scrape for the "shards" array below. The
  /// sharded engine reads its per-shard relaxed counters into these plain
  /// values right before the dump, so ToJson itself stays lock-free.
  struct ShardScrape {
    uint64_t queries = 0;         ///< scatter-gather legs executed
    uint64_t tau_prune_hits = 0;  ///< legs that started with a finite tau
    int64_t queue_depth = 0;      ///< legs posted but not finished
  };

  /// Whole registry as one JSON object; `generation` is the currently
  /// published snapshot generation (the engine supplies it) and `shards`
  /// the per-shard breakdown (empty on an unsharded engine — the "shards"
  /// key is always present so the JSON schema is stable).
  ///
  /// STRG_LOCK_FREE: deliberately holds no mutex. Every field it reads is a
  /// relaxed atomic, so the dump is a per-counter-consistent (not
  /// cross-counter-atomic) scrape — pausing the serving path to get a fully
  /// coherent dump would invert the priority of the two.
  STRG_LOCK_FREE std::string ToJson(
      uint64_t generation,
      const std::vector<ShardScrape>& shards = {}) const;
};

}  // namespace strg::server

#endif  // STRG_SERVER_METRICS_H_
