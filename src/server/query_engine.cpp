#include "server/query_engine.h"

#include <future>
#include <utility>

namespace strg::server {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

std::shared_ptr<const Snapshot> GenesisSnapshot(index::StrgIndexParams params) {
  auto genesis = std::make_shared<Snapshot>();
  genesis->generation = 0;
  genesis->db = api::VideoDatabase(params);
  return genesis;
}

}  // namespace

QueryEngine::QueryEngine(index::StrgIndexParams params, EngineOptions opts)
    : opts_(opts),
      cache_(opts.cache_capacity, opts.cache_shards),
      head_(GenesisSnapshot(params)),
      pool_(opts.num_threads) {}

template <typename MutateFn>
uint64_t QueryEngine::Publish(MutateFn&& mutate) {
  const auto start = Clock::now();
  MutexLock lock(writer_mu_);
  std::shared_ptr<const Snapshot> cur = head_.load();
  auto next = std::make_shared<Snapshot>();
  next->generation = cur->generation + 1;
  next->db = cur->db.Clone();
  mutate(&next->db);
  head_.store(std::shared_ptr<const Snapshot>(std::move(next)));
  metrics_.ingests.fetch_add(1, std::memory_order_relaxed);
  metrics_.snapshots_published.fetch_add(1, std::memory_order_relaxed);
  metrics_.ingest_latency.Record(MicrosSince(start));
  return head_.load()->generation;
}

uint64_t QueryEngine::AddVideo(const std::string& name,
                               const api::SegmentResult& segment,
                               int* segment_id) {
  return Publish([&](api::VideoDatabase* db) {
    int id = db->AddVideo(name, segment);
    if (segment_id != nullptr) *segment_id = id;
  });
}

uint64_t QueryEngine::AddObjectGraph(int segment_id, const std::string& video,
                                     const core::Og& og,
                                     const dist::FeatureScaling& scaling) {
  return Publish([&](api::VideoDatabase* db) {
    db->AddObjectGraph(segment_id, video, og, scaling);
  });
}

void QueryEngine::RestoreGeneration(uint64_t generation) {
  MutexLock lock(writer_mu_);
  std::shared_ptr<const Snapshot> cur = head_.load();
  if (generation <= cur->generation) return;
  auto next = std::make_shared<Snapshot>();
  next->generation = generation;
  next->db = cur->db.Clone();
  head_.store(std::shared_ptr<const Snapshot>(std::move(next)));
}

QueryResult QueryEngine::Execute(uint64_t digest, LatencyHistogram* histogram,
                                 const QueryOptions& opts, ComputeFn compute) {
  const auto start = Clock::now();

  // Fast path: serve repeated queries from the result cache on the calling
  // thread — one shard mutex, no admission slot, no pool round-trip.
  if (opts.use_cache) {
    std::shared_ptr<const Snapshot> snap = head_.load();
    QueryResult result;
    if (cache_.Get({digest, snap->generation}, &result.hits)) {
      metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      result.status = StatusCode::kOk;
      result.generation = snap->generation;
      result.from_cache = true;
      result.latency_micros = MicrosSince(start);
      histogram->Record(result.latency_micros);
      metrics_.NoteStatus(result.status);
      return result;
    }
  }

  // Bounded admission: the queue-depth gauge doubles as the token counter.
  int64_t depth =
      metrics_.queue_depth.fetch_add(1, std::memory_order_relaxed) + 1;
  metrics_.NoteQueueDepth(depth);
  if (depth > static_cast<int64_t>(opts_.max_pending)) {
    metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    metrics_.rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
    QueryResult rejected;
    rejected.status = StatusCode::kOverloaded;
    rejected.latency_micros = MicrosSince(start);
    metrics_.NoteStatus(rejected.status);
    return rejected;
  }
  metrics_.admitted.fetch_add(1, std::memory_order_relaxed);

  const bool has_deadline = opts.timeout.count() != 0;
  const auto deadline = start + opts.timeout;

  std::future<QueryResult> pending = pool_.Submit(
      [this, digest, histogram, start, deadline, has_deadline,
       use_cache = opts.use_cache, compute = std::move(compute)] {
        QueryResult result;
        // Expired while queued: release the slot without doing the work.
        if (has_deadline && Clock::now() >= deadline) {
          metrics_.expired_in_queue.fetch_add(1, std::memory_order_relaxed);
          metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
          result.status = StatusCode::kDeadlineExceeded;
          result.latency_micros = MicrosSince(start);
          return result;
        }
        std::shared_ptr<const Snapshot> snap = head_.load();
        CacheKey key{digest, snap->generation};
        bool hit = use_cache && cache_.Get(key, &result.hits);
        if (hit) {
          // Another request filled it between our fast-path miss and now.
          metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          result.hits = compute(snap->db);
          if (use_cache) {
            metrics_.cache_misses.fetch_add(1, std::memory_order_relaxed);
            cache_.Put(key, result.hits);
          }
        }
        metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
        result.status = StatusCode::kOk;
        result.generation = snap->generation;
        result.from_cache = hit;
        result.latency_micros = MicrosSince(start);
        histogram->Record(result.latency_micros);
        return result;
      });

  if (!has_deadline) {
    QueryResult done = pending.get();
    metrics_.NoteStatus(done.status);
    return done;
  }
  if (pending.wait_until(deadline) == std::future_status::ready) {
    QueryResult done = pending.get();
    metrics_.NoteStatus(done.status);
    return done;
  }
  // The task will still run (and notice the expired deadline if it has not
  // started); the caller stops waiting now. The admission slot is released
  // by the task itself.
  metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
  QueryResult expired;
  expired.status = StatusCode::kDeadlineExceeded;
  expired.latency_micros = MicrosSince(start);
  metrics_.NoteStatus(expired.status);
  return expired;
}

QueryResult QueryEngine::Query(const api::QuerySpec& spec,
                               const QueryOptions& opts) {
  // One digest computation at the API edge serves cache keying for every
  // kind; per-kind histograms keep the latency attribution of the old
  // dedicated entry points.
  const uint64_t digest = spec.Digest();
  LatencyHistogram* histogram = nullptr;
  switch (spec.kind) {
    case api::QuerySpec::Kind::kSimilar:
      histogram = &metrics_.knn_latency;
      break;
    case api::QuerySpec::Kind::kRange:
      histogram = &metrics_.range_latency;
      break;
    case api::QuerySpec::Kind::kActive:
      histogram = &metrics_.active_latency;
      break;
  }
  return Execute(digest, histogram, opts,
                 [this, spec](const api::VideoDatabase& db) {
                   api::VideoDatabase::QueryStats stats;
                   auto hits = db.Query(spec, &stats);
                   // Cache hits never reach this lambda, so the aggregates
                   // count exactly the distance work actually performed.
                   metrics_.distance_computations.fetch_add(
                       stats.distance_computations, std::memory_order_relaxed);
                   metrics_.lb_prunes.fetch_add(stats.lb_prunes,
                                                std::memory_order_relaxed);
                   metrics_.early_abandons.fetch_add(
                       stats.early_abandons, std::memory_order_relaxed);
                   return hits;
                 });
}

}  // namespace strg::server
