#include "server/query_engine.h"

#include <future>
#include <utility>

namespace strg::server {

namespace {

using Clock = std::chrono::steady_clock;

// Per-kind digest seeds so "kNN k=3" and "range r=3" never collide.
constexpr uint64_t kKnnSeed = 0x6b6e6e5f71756572ULL;
constexpr uint64_t kRangeSeed = 0x72616e67655f7175ULL;
constexpr uint64_t kActiveSeed = 0x6163746976655f71ULL;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

}  // namespace

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

namespace {

std::shared_ptr<const Snapshot> GenesisSnapshot(index::StrgIndexParams params) {
  auto genesis = std::make_shared<Snapshot>();
  genesis->generation = 0;
  genesis->db = api::VideoDatabase(params);
  return genesis;
}

}  // namespace

QueryEngine::QueryEngine(index::StrgIndexParams params, EngineOptions opts)
    : opts_(opts),
      cache_(opts.cache_capacity, opts.cache_shards),
      head_(GenesisSnapshot(params)),
      pool_(opts.num_threads) {}

template <typename MutateFn>
uint64_t QueryEngine::Publish(MutateFn&& mutate) {
  const auto start = Clock::now();
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::shared_ptr<const Snapshot> cur = head_.load();
  auto next = std::make_shared<Snapshot>();
  next->generation = cur->generation + 1;
  next->db = cur->db.Clone();
  mutate(&next->db);
  head_.store(std::shared_ptr<const Snapshot>(std::move(next)));
  metrics_.ingests.fetch_add(1, std::memory_order_relaxed);
  metrics_.snapshots_published.fetch_add(1, std::memory_order_relaxed);
  metrics_.ingest_latency.Record(MicrosSince(start));
  return head_.load()->generation;
}

uint64_t QueryEngine::AddVideo(const std::string& name,
                               const api::SegmentResult& segment,
                               int* segment_id) {
  return Publish([&](api::VideoDatabase* db) {
    int id = db->AddVideo(name, segment);
    if (segment_id != nullptr) *segment_id = id;
  });
}

uint64_t QueryEngine::AddObjectGraph(int segment_id, const std::string& video,
                                     const core::Og& og,
                                     const dist::FeatureScaling& scaling) {
  return Publish([&](api::VideoDatabase* db) {
    db->AddObjectGraph(segment_id, video, og, scaling);
  });
}

QueryResult QueryEngine::Execute(uint64_t digest, LatencyHistogram* histogram,
                                 const QueryOptions& opts, ComputeFn compute) {
  const auto start = Clock::now();

  // Fast path: serve repeated queries from the result cache on the calling
  // thread — one shard mutex, no admission slot, no pool round-trip.
  if (opts.use_cache) {
    std::shared_ptr<const Snapshot> snap = head_.load();
    QueryResult result;
    if (cache_.Get({digest, snap->generation}, &result.hits)) {
      metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      result.status = StatusCode::kOk;
      result.generation = snap->generation;
      result.from_cache = true;
      result.latency_micros = MicrosSince(start);
      histogram->Record(result.latency_micros);
      return result;
    }
  }

  // Bounded admission: the queue-depth gauge doubles as the token counter.
  int64_t depth =
      metrics_.queue_depth.fetch_add(1, std::memory_order_relaxed) + 1;
  metrics_.NoteQueueDepth(depth);
  if (depth > static_cast<int64_t>(opts_.max_pending)) {
    metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    metrics_.rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
    QueryResult rejected;
    rejected.status = StatusCode::kOverloaded;
    rejected.latency_micros = MicrosSince(start);
    return rejected;
  }
  metrics_.admitted.fetch_add(1, std::memory_order_relaxed);

  const bool has_deadline = opts.timeout.count() != 0;
  const auto deadline = start + opts.timeout;

  std::future<QueryResult> pending = pool_.Submit(
      [this, digest, histogram, start, deadline, has_deadline,
       use_cache = opts.use_cache, compute = std::move(compute)] {
        QueryResult result;
        // Expired while queued: release the slot without doing the work.
        if (has_deadline && Clock::now() >= deadline) {
          metrics_.expired_in_queue.fetch_add(1, std::memory_order_relaxed);
          metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
          result.status = StatusCode::kDeadlineExceeded;
          result.latency_micros = MicrosSince(start);
          return result;
        }
        std::shared_ptr<const Snapshot> snap = head_.load();
        CacheKey key{digest, snap->generation};
        bool hit = use_cache && cache_.Get(key, &result.hits);
        if (hit) {
          // Another request filled it between our fast-path miss and now.
          metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          result.hits = compute(snap->db);
          if (use_cache) {
            metrics_.cache_misses.fetch_add(1, std::memory_order_relaxed);
            cache_.Put(key, result.hits);
          }
        }
        metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
        result.status = StatusCode::kOk;
        result.generation = snap->generation;
        result.from_cache = hit;
        result.latency_micros = MicrosSince(start);
        histogram->Record(result.latency_micros);
        return result;
      });

  if (!has_deadline) return pending.get();
  if (pending.wait_until(deadline) == std::future_status::ready) {
    return pending.get();
  }
  // The task will still run (and notice the expired deadline if it has not
  // started); the caller stops waiting now. The admission slot is released
  // by the task itself.
  metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
  QueryResult expired;
  expired.status = StatusCode::kDeadlineExceeded;
  expired.latency_micros = MicrosSince(start);
  return expired;
}

QueryResult QueryEngine::FindSimilar(const dist::Sequence& query, size_t k,
                                     const QueryOptions& opts) {
  uint64_t digest = HashSequence(query, kKnnSeed);
  digest = HashBytes(&k, sizeof(k), digest);
  return Execute(digest, &metrics_.knn_latency, opts,
                 [query, k](const api::VideoDatabase& db) {
                   return db.FindSimilar(query, k);
                 });
}

QueryResult QueryEngine::FindWithinRadius(const dist::Sequence& query,
                                          double radius,
                                          const QueryOptions& opts) {
  uint64_t digest = HashSequence(query, kRangeSeed);
  digest = HashBytes(&radius, sizeof(radius), digest);
  return Execute(digest, &metrics_.range_latency, opts,
                 [query, radius](const api::VideoDatabase& db) {
                   return db.FindWithinRadius(query, radius);
                 });
}

QueryResult QueryEngine::FindActive(const std::string& video, int first_frame,
                                    int last_frame,
                                    const QueryOptions& opts) {
  uint64_t digest = HashBytes(video.data(), video.size(), kActiveSeed);
  const int window[2] = {first_frame, last_frame};
  digest = HashBytes(window, sizeof(window), digest);
  return Execute(digest, &metrics_.active_latency, opts,
                 [video, first_frame, last_frame](
                     const api::VideoDatabase& db) {
                   return db.FindActive(video, first_frame, last_frame);
                 });
}

}  // namespace strg::server
