#include "server/query_engine.h"

#include <exception>
#include <utility>

namespace strg::server {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

std::shared_ptr<const Snapshot> GenesisSnapshot(index::StrgIndexParams params) {
  auto genesis = std::make_shared<Snapshot>();
  genesis->generation = 0;
  genesis->db = api::VideoDatabase(params);
  return genesis;
}

}  // namespace

bool RequestState::TryFinalize(QueryResult r) {
  bool expected = false;
  // acq_rel: the winner's writes to `result` (under mu) must be visible to
  // a loser that observes finalized == true and then reads via WaitDone.
  if (!finalized.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return false;
  }
  if (metrics != nullptr) metrics->NoteStatus(r.status);
  // Callback strictly before waiters are released: when Wait()/Query()
  // returns, the completion callback has already run (callers can tear
  // down whatever the callback touches as soon as Wait returns).
  if (on_complete) on_complete(r);
  {
    MutexLock lock(mu);
    result = std::move(r);
    done = true;
  }
  cv.NotifyAll();
  return true;
}

bool RequestState::Done() const {
  MutexLock lock(mu);
  return done;
}

QueryResult RequestState::WaitDone() {
  MutexLock lock(mu);
  while (!done) cv.Wait(mu);
  return result;
}

void QueryHandle::Cancel() {
  if (state_ == nullptr) return;
  state_->cancel_requested.store(true, std::memory_order_relaxed);
  // Finalize now so waiters/callbacks see kCancelled immediately; a task
  // already running keeps going, loses the CAS, and releases its admission
  // slot itself.
  QueryResult cancelled;
  cancelled.status = StatusCode::kCancelled;
  cancelled.latency_micros = MicrosSince(state_->start);
  state_->TryFinalize(std::move(cancelled));
}

QueryResult QueryHandle::Wait() {
  if (state_ == nullptr) return {};
  RequestState& st = *state_;
  if (!st.has_deadline) return st.WaitDone();

  {
    MutexLock lock(st.mu);
    while (!st.done) {
      if (!st.cv.WaitUntil(st.mu, st.deadline)) break;
    }
    if (st.done) return st.result;
  }
  // Deadline passed while the task is still queued or running. The task
  // keeps its admission slot until it runs; finalize the caller-visible
  // outcome here (first finalizer wins — the worker may race us with the
  // real result, in which case we return that instead).
  QueryResult expired;
  expired.status = StatusCode::kDeadlineExceeded;
  expired.latency_micros = MicrosSince(st.start);
  if (st.TryFinalize(std::move(expired)) && st.metrics != nullptr) {
    st.metrics->deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
  }
  return st.WaitDone();
}

QueryEngine::QueryEngine(index::StrgIndexParams params, EngineOptions opts)
    : opts_(opts),
      cache_(opts.cache_capacity, opts.cache_shards),
      head_(GenesisSnapshot(params)) {
  if (opts.runtime != nullptr) {
    runtime_ = opts.runtime;
  } else {
    AsyncRuntime::Options ro;
    ro.num_threads = opts.num_threads;
    // The engine's own admission (max_pending) is the intended bound; give
    // the private runtime headroom so it never second-guesses it.
    ro.max_queue = opts.max_pending < 1024 ? 2048 : opts.max_pending * 2;
    owned_runtime_ = std::make_unique<AsyncRuntime>(ro);
    runtime_ = owned_runtime_.get();
  }
}

template <typename MutateFn>
uint64_t QueryEngine::Publish(MutateFn&& mutate) {
  const auto start = Clock::now();
  MutexLock lock(writer_mu_);
  std::shared_ptr<const Snapshot> cur = head_.load();
  auto next = std::make_shared<Snapshot>();
  next->generation = cur->generation + 1;
  next->db = cur->db.Clone();
  mutate(&next->db);
  head_.store(std::shared_ptr<const Snapshot>(std::move(next)));
  metrics_.ingests.fetch_add(1, std::memory_order_relaxed);
  metrics_.snapshots_published.fetch_add(1, std::memory_order_relaxed);
  metrics_.ingest_latency.Record(MicrosSince(start));
  return head_.load()->generation;
}

uint64_t QueryEngine::AddVideo(const std::string& name,
                               const api::SegmentResult& segment,
                               int* segment_id) {
  return Publish([&](api::VideoDatabase* db) {
    int id = db->AddVideo(name, segment);
    if (segment_id != nullptr) *segment_id = id;
  });
}

uint64_t QueryEngine::AddObjectGraph(int segment_id, const std::string& video,
                                     const core::Og& og,
                                     const dist::FeatureScaling& scaling) {
  return Publish([&](api::VideoDatabase* db) {
    db->AddObjectGraph(segment_id, video, og, scaling);
  });
}

void QueryEngine::RestoreGeneration(uint64_t generation) {
  MutexLock lock(writer_mu_);
  std::shared_ptr<const Snapshot> cur = head_.load();
  if (generation <= cur->generation) return;
  auto next = std::make_shared<Snapshot>();
  next->generation = generation;
  next->db = cur->db.Clone();
  head_.store(std::shared_ptr<const Snapshot>(std::move(next)));
}

LatencyHistogram* QueryEngine::HistogramFor(api::QuerySpec::Kind kind) {
  switch (kind) {
    case api::QuerySpec::Kind::kSimilar:
      return &metrics_.knn_latency;
    case api::QuerySpec::Kind::kRange:
      return &metrics_.range_latency;
    case api::QuerySpec::Kind::kActive:
      return &metrics_.active_latency;
  }
  return &metrics_.knn_latency;
}

void QueryEngine::RunTask(const std::shared_ptr<RequestState>& state,
                          const api::QuerySpec& spec, uint64_t digest,
                          LatencyHistogram* histogram, bool use_cache) {
  RequestState& st = *state;

  // Cancelled while queued: skip the work. (A deadline-abandoned request,
  // by contrast, still executes — it fills the cache for the retry, which
  // is the pre-redesign behavior.)
  if (st.cancel_requested.load(std::memory_order_relaxed)) {
    metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    QueryResult cancelled;
    cancelled.status = StatusCode::kCancelled;
    cancelled.latency_micros = MicrosSince(st.start);
    st.TryFinalize(std::move(cancelled));
    return;
  }

  // Expired while queued: release the slot without doing the work.
  if (st.has_deadline && Clock::now() >= st.deadline) {
    metrics_.expired_in_queue.fetch_add(1, std::memory_order_relaxed);
    metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    QueryResult expired;
    expired.status = StatusCode::kDeadlineExceeded;
    expired.latency_micros = MicrosSince(st.start);
    st.TryFinalize(std::move(expired));
    return;
  }

  QueryResult result;
  std::shared_ptr<const Snapshot> snap = head_.load();
  CacheKey key{digest, snap->generation};
  bool hit = use_cache && cache_.Get(key, &result.hits);
  if (hit) {
    // Another request filled it between the fast-path miss and now.
    metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    try {
      api::VideoDatabase::QueryStats stats;
      result.hits = snap->db.Query(spec, &stats);
      // Cache hits never reach this branch, so the aggregates count
      // exactly the distance work actually performed.
      metrics_.distance_computations.fetch_add(stats.distance_computations,
                                               std::memory_order_relaxed);
      metrics_.lb_prunes.fetch_add(stats.lb_prunes,
                                   std::memory_order_relaxed);
      metrics_.early_abandons.fetch_add(stats.early_abandons,
                                        std::memory_order_relaxed);
    } catch (const std::exception&) {
      // Typed failure instead of an exception escaping a runtime worker
      // (the paged store's query path throws on I/O errors). Part of the
      // submit/complete contract: every request finalizes.
      metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
      QueryResult failed;
      failed.status = StatusCode::kIoError;
      failed.latency_micros = MicrosSince(st.start);
      st.TryFinalize(std::move(failed));
      return;
    }
    if (use_cache) {
      metrics_.cache_misses.fetch_add(1, std::memory_order_relaxed);
      cache_.Put(key, result.hits);
    }
  }
  metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
  result.status = StatusCode::kOk;
  result.generation = snap->generation;
  result.from_cache = hit;
  result.latency_micros = MicrosSince(st.start);
  histogram->Record(result.latency_micros);

  // Completed after the deadline with nobody having finalized yet (an
  // async submitter that never called Wait): deliver the same outcome a
  // waiter would have seen.
  if (st.has_deadline && Clock::now() >= st.deadline) {
    QueryResult expired;
    expired.status = StatusCode::kDeadlineExceeded;
    expired.latency_micros = result.latency_micros;
    if (st.TryFinalize(std::move(expired))) {
      metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  st.TryFinalize(std::move(result));
}

QueryHandle QueryEngine::Submit(const api::QuerySpec& spec,
                                const QueryOptions& opts,
                                CompletionFn on_complete) {
  const auto start = Clock::now();
  // One digest computation at the API edge serves cache keying for every
  // kind; per-kind histograms keep the latency attribution of the old
  // dedicated entry points.
  const uint64_t digest = spec.Digest();
  LatencyHistogram* histogram = HistogramFor(spec.kind);

  auto state = std::make_shared<RequestState>();
  state->start = start;
  state->has_deadline = opts.timeout.count() != 0;
  state->deadline = start + opts.timeout;
  state->on_complete = std::move(on_complete);
  state->metrics = &metrics_;
  QueryHandle handle(state);

  // Fast path: serve repeated queries from the result cache on the calling
  // thread — one shard mutex, no admission slot, no runtime round-trip.
  if (opts.use_cache) {
    std::shared_ptr<const Snapshot> snap = head_.load();
    QueryResult result;
    if (cache_.Get({digest, snap->generation}, &result.hits)) {
      metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      result.status = StatusCode::kOk;
      result.generation = snap->generation;
      result.from_cache = true;
      result.latency_micros = MicrosSince(start);
      histogram->Record(result.latency_micros);
      state->TryFinalize(std::move(result));
      return handle;
    }
  }

  // Bounded admission: the queue-depth gauge doubles as the token counter.
  int64_t depth =
      metrics_.queue_depth.fetch_add(1, std::memory_order_relaxed) + 1;
  metrics_.NoteQueueDepth(depth);
  if (depth > static_cast<int64_t>(opts_.max_pending)) {
    metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    metrics_.rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
    QueryResult rejected;
    rejected.status = StatusCode::kOverloaded;
    rejected.latency_micros = MicrosSince(start);
    state->TryFinalize(std::move(rejected));
    return handle;
  }
  metrics_.admitted.fetch_add(1, std::memory_order_relaxed);

  bool posted = runtime_->Post(
      [this, state, spec, digest, histogram, use_cache = opts.use_cache] {
        RunTask(state, spec, digest, histogram, use_cache);
      });
  if (!posted) {
    // The shared runtime's submission queue is full — shed here too,
    // releasing the admission slot the task will now never release.
    metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    metrics_.rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
    QueryResult rejected;
    rejected.status = StatusCode::kOverloaded;
    rejected.latency_micros = MicrosSince(start);
    state->TryFinalize(std::move(rejected));
  }
  return handle;
}

std::vector<api::VideoDatabase::QueryHit> QueryEngine::ExecuteShardLeg(
    const api::QuerySpec& spec, double initial_tau,
    api::VideoDatabase::QueryStats* stats, uint64_t* generation) const {
  std::shared_ptr<const Snapshot> snap = head_.load();
  if (generation != nullptr) *generation = snap->generation;
  return snap->db.Query(spec, stats, initial_tau);
}

}  // namespace strg::server
