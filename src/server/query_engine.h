#ifndef STRG_SERVER_QUERY_ENGINE_H_
#define STRG_SERVER_QUERY_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/query_spec.h"
#include "api/status.h"
#include "core/video_database.h"
#include "server/async_runtime.h"
#include "server/metrics.h"
#include "server/result_cache.h"
#include "util/sync.h"

namespace strg::server {

/// Typed request outcome — the system-wide api::StatusCode vocabulary
/// (this used to be a server-local enum; it folded into api so the storage
/// and serving layers speak one set of codes). The engine degrades
/// predictably instead of collapsing: saturation yields kOverloaded, slow
/// queries against a deadline yield kDeadlineExceeded, a cancelled handle
/// yields kCancelled — all cheap, all counted.
using StatusCode = api::StatusCode;
using api::StatusCodeName;

struct EngineOptions {
  /// Worker threads executing queries (0 = hardware concurrency). Ignored
  /// when `runtime` is set (the shared runtime sizes its own pool).
  size_t num_threads = 2;
  /// Max requests admitted but not yet finished (queued + running). The
  /// bound is what turns overload into fast typed rejections instead of an
  /// unbounded queue whose latency grows without limit.
  size_t max_pending = 256;
  /// Total cached query results across all cache shards.
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
  /// External request runtime to execute on (not owned; must outlive the
  /// engine). nullptr = the engine owns a private runtime sized by
  /// num_threads. A ShardedQueryEngine injects one shared runtime into all
  /// of its shard engines so per-shard fan-out tasks share one worker pool
  /// and one bounded submission queue.
  AsyncRuntime* runtime = nullptr;
};

/// Per-request options. The historical server-local spelling is now an
/// alias of the api-wide submit vocabulary so QueryEngine,
/// ShardedQueryEngine, and api::VideoDatabase all take the same struct.
using QueryOptions = api::SubmitOptions;

struct QueryResult {
  StatusCode status = StatusCode::kOk;
  std::vector<api::VideoDatabase::QueryHit> hits;
  /// Index generation the answer was computed against (0 when the request
  /// never reached a snapshot: overload / expiry / cancellation).
  uint64_t generation = 0;
  bool from_cache = false;
  double latency_micros = 0.0;
};

/// Completion callback of the submit/complete surface. Invoked exactly
/// once per submitted request, with the final QueryResult, by whichever
/// thread finalizes the request: a runtime worker (normal completion), the
/// submitting thread (cache fast path / admission rejection), a waiter
/// whose deadline passed, or a canceller. Runs before any Wait() on the
/// handle returns, so a caller may tear down callback-captured state as
/// soon as Wait comes back. Must not block (waiting on the same handle
/// inside the callback deadlocks) and must not re-enter the engine's
/// write path.
using CompletionFn = std::function<void(const QueryResult&)>;

/// Shared mutable state of one submitted request — the rendezvous between
/// the submitting thread (via QueryHandle), the runtime worker executing
/// the task, and the completion callback. Exactly one finalization wins
/// (TryFinalize's CAS), so late losers — a worker finishing after the
/// waiter's deadline fired, a cancel racing normal completion — are
/// silently dropped and every per-request metric is counted once.
struct RequestState {
  using Clock = std::chrono::steady_clock;

  // Immutable after Submit.
  Clock::time_point start;
  Clock::time_point deadline;
  bool has_deadline = false;
  CompletionFn on_complete;
  ServerMetrics* metrics = nullptr;  ///< NoteStatus sink (not owned)

  /// Set by QueryHandle::Cancel. A task that has not started yet converts
  /// this into a kCancelled completion without doing the work; a task
  /// already executing finishes (its result is dropped by the CAS).
  std::atomic<bool> cancel_requested{false};
  /// The exactly-once completion guard.
  std::atomic<bool> finalized{false};

  mutable Mutex mu{LockRank::kRequestState};
  CondVar cv;
  bool done STRG_GUARDED_BY(mu) = false;
  QueryResult result STRG_GUARDED_BY(mu);

  /// First caller wins: records the outcome (NoteStatus exactly once),
  /// publishes it to waiters, and invokes the completion callback. Returns
  /// false when someone else already finalized (the result is dropped).
  bool TryFinalize(QueryResult r) STRG_EXCLUDES(mu);
  bool Done() const STRG_EXCLUDES(mu);
  /// Blocks until finalized; no deadline handling (the handle layers the
  /// request deadline on top).
  QueryResult WaitDone() STRG_EXCLUDES(mu);
};

/// Caller's view of one in-flight request: poll, wait (honouring the
/// request deadline), or cancel. Copyable and cheap (one shared_ptr); a
/// default-constructed handle is empty. The blocking Query() entry points
/// are Submit(...).Wait() — the handle is the whole synchronous story.
class QueryHandle {
 public:
  QueryHandle() = default;

  bool valid() const { return state_ != nullptr; }
  /// Non-blocking: has the request finalized?
  bool Done() const { return state_ != nullptr && state_->Done(); }

  /// Requests cancellation. A request still queued completes kCancelled
  /// without executing; one already running completes normally (first
  /// finalizer wins). Idempotent; safe from any thread.
  void Cancel();

  /// Blocks until the request finalizes — or, when it was submitted with a
  /// deadline, until that deadline passes, in which case the request is
  /// finalized kDeadlineExceeded right here (the task may still run later;
  /// its result is dropped and its admission slot is released by itself).
  /// Returns the final result. Calling Wait on an empty handle returns a
  /// default (kOk, empty) result.
  QueryResult Wait() STRG_EXCLUDES_DYNAMIC(RequestState::mu);

 private:
  friend class QueryEngine;
  friend class ShardedQueryEngine;
  explicit QueryHandle(std::shared_ptr<RequestState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<RequestState> state_;
};

/// One immutable published index generation. Readers hold it via
/// shared_ptr, so a generation stays alive until the last in-flight query
/// over it finishes, no matter how many newer generations exist.
struct Snapshot {
  uint64_t generation = 0;
  api::VideoDatabase db;
};

/// Epoch pointer to the published Snapshot. store/load are a constant-time
/// shared_ptr copy under a mutex — deliberately NOT std::atomic<shared_ptr>:
/// libstdc++ 12's lock-bit protocol for it is opaque to ThreadSanitizer and
/// drowns real races in false reports. The critical section is a refcount
/// bump (~ns); queries (~us..ms) never execute under it. Swapping in a
/// lock-free scheme (hazard pointers / RCU) later only touches this class.
class SnapshotHolder {
 public:
  explicit SnapshotHolder(std::shared_ptr<const Snapshot> initial)
      : ptr_(std::move(initial)) {}

  std::shared_ptr<const Snapshot> load() const STRG_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return ptr_;
  }
  void store(std::shared_ptr<const Snapshot> next) STRG_EXCLUDES(mu_) {
    // Swap under the lock, destroy outside it: dropping the last reference
    // to a displaced generation tears down whole index trees, and kSnapshot
    // is a leaf rank — teardown must not run while it is held.
    std::shared_ptr<const Snapshot> displaced;
    {
      MutexLock lock(mu_);
      displaced = std::move(ptr_);
      ptr_ = std::move(next);
    }
  }

 private:
  mutable Mutex mu_{LockRank::kSnapshot};
  std::shared_ptr<const Snapshot> ptr_ STRG_GUARDED_BY(mu_);
};

/// Concurrent query-serving front-end over api::VideoDatabase.
///
/// Concurrency model — snapshot isolation via copy-on-write epochs:
///  - Writers (AddVideo / AddObjectGraph) serialize on a mutex, clone the
///    current generation, mutate the clone, and atomically publish it.
///    A writer never touches a published Snapshot.
///  - Readers grab the current Snapshot (a constant-time epoch-pointer
///    copy) and run the whole query against that immutable generation: no
///    lock is held during query execution, so there are no torn reads and
///    no half-inserted trees — at the cost of ingest copying the database
///    (fine for this workload; the sharded engine bounds the copy to 1/N).
///
/// Request path — submit/complete over the async runtime:
///   Submit runs the result-cache fast path on the calling thread (a cache
///   hit costs one shard mutex, no admission), then bounded admission, then
///   posts the execution task to the runtime and returns a QueryHandle.
///   Completion flows through RequestState: the worker finalizes the
///   result, waiters are notified, and the completion callback fires
///   exactly once. The blocking Query(spec) is Submit(...).Wait() — the
///   old thread-per-request future plumbing is gone, and all pre-redesign
///   call sites behave bit-identically.
class QueryEngine {
 public:
  explicit QueryEngine(index::StrgIndexParams params = {},
                       EngineOptions opts = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // ---- Writers (copy-on-write publish; serialized among themselves). ----

  /// Indexes a processed segment under `name`. Returns the new generation;
  /// `*segment_id` (optional) receives the root/segment id for later
  /// AddObjectGraph calls.
  uint64_t AddVideo(const std::string& name,
                    const api::SegmentResult& segment,
                    int* segment_id = nullptr) STRG_EXCLUDES(writer_mu_);

  /// Streams one more OG into an existing segment. Each call publishes
  /// exactly one new generation containing exactly one more OG — the
  /// invariant the concurrency stress test leans on.
  uint64_t AddObjectGraph(int segment_id, const std::string& video,
                          const core::Og& og,
                          const dist::FeatureScaling& scaling)
      STRG_EXCLUDES(writer_mu_);

  /// Fast-forwards the published generation number without changing data
  /// (only forward; lower targets are ignored). Recovery uses this to keep
  /// generation tokens continuous across restarts: a snapshot rebuild
  /// collapses many original publishes into a few, but clients holding
  /// pre-crash generation numbers must still see Generation() >= theirs.
  void RestoreGeneration(uint64_t generation) STRG_EXCLUDES(writer_mu_);

  // ---- Readers (admission-controlled, snapshot-isolated). ----

  /// The headline entry point: submits the request into the async runtime
  /// and returns a handle. `on_complete` (optional) fires exactly once
  /// with the final result. Overload and cache fast-path outcomes finalize
  /// before Submit returns (the callback then runs on the calling thread).
  /// opts.shard_hint is accepted for vocabulary uniformity and ignored —
  /// one engine is one shard.
  QueryHandle Submit(const api::QuerySpec& spec, const QueryOptions& opts = {},
                     CompletionFn on_complete = nullptr);

  /// Blocking spelling: Submit + Wait. Kept as the convenient synchronous
  /// API; every pre-redesign caller goes through here unchanged.
  QueryResult Query(const api::QuerySpec& spec, const QueryOptions& opts = {}) {
    return Submit(spec, opts).Wait();
  }

  // Legacy spellings — one-line wrappers over Query(QuerySpec), kept for
  // source compatibility and slated for eventual removal.
  QueryResult FindSimilar(const dist::Sequence& query, size_t k,
                          const QueryOptions& opts = {}) {
    return Query(api::QuerySpec::Similar(query, k), opts);
  }
  QueryResult FindWithinRadius(const dist::Sequence& query, double radius,
                               const QueryOptions& opts = {}) {
    return Query(api::QuerySpec::WithinRadius(query, radius), opts);
  }
  QueryResult FindActive(const std::string& video, int first_frame,
                         int last_frame, const QueryOptions& opts = {}) {
    return Query(api::QuerySpec::Active(video, first_frame, last_frame),
                 opts);
  }

  // ---- Introspection. ----

  /// Currently published generation (constant-time epoch read). Tests query
  /// the returned snapshot's db directly to validate immutability.
  std::shared_ptr<const Snapshot> snapshot() const { return head_.load(); }
  uint64_t Generation() const { return snapshot()->generation; }

  const ServerMetrics& metrics() const { return metrics_; }
  /// Mutable registry access for layers that wrap the engine and account
  /// their own work here (the durable engine's WAL counters).
  ServerMetrics& mutable_metrics() { return metrics_; }
  std::string MetricsJson() const {
    return metrics_.ToJson(Generation());
  }

  AsyncRuntime& runtime() { return *runtime_; }

 private:
  friend class ShardedQueryEngine;

  /// Picks the per-kind latency histogram (attribution parity with the old
  /// dedicated entry points).
  LatencyHistogram* HistogramFor(api::QuerySpec::Kind kind);

  /// The worker-side execution: deadline/cancel checks, snapshot query,
  /// cache fill, metrics, finalization. Runs on a runtime worker.
  void RunTask(const std::shared_ptr<RequestState>& state,
               const api::QuerySpec& spec, uint64_t digest,
               LatencyHistogram* histogram, bool use_cache);

  /// Scatter-gather hook for ShardedQueryEngine: one shard leg executed
  /// synchronously on the caller's (worker) thread against the current
  /// snapshot. `initial_tau` seeds kNN pruning with the gatherer's running
  /// global worst-of-k; tau-bounded answers are intentionally NOT entered
  /// into the result cache (they are truncated views keyed by the same
  /// digest, so caching them would poison exact lookups).
  std::vector<api::VideoDatabase::QueryHit> ExecuteShardLeg(
      const api::QuerySpec& spec, double initial_tau,
      api::VideoDatabase::QueryStats* stats, uint64_t* generation) const;

  /// Clone-mutate-publish under writer_mu_; the published Snapshot itself
  /// is immutable, so readers never take this lock.
  template <typename MutateFn>
  uint64_t Publish(MutateFn&& mutate) STRG_EXCLUDES(writer_mu_);

  EngineOptions opts_;
  ServerMetrics metrics_;
  ShardedResultCache cache_;
  /// Serializes writers (the clone-mutate-publish window). It guards the
  /// *protocol*, not a field: the data being built is the local `next`
  /// snapshot, and publication goes through head_'s own mutex.
  Mutex writer_mu_{LockRank::kEngineWriter};
  SnapshotHolder head_;
  /// Declared last: destroyed first, so accepted tasks drain while the
  /// members they reference are still alive. Null when an external runtime
  /// was injected (runtime_ then points at it and outlives us by contract).
  std::unique_ptr<AsyncRuntime> owned_runtime_;
  AsyncRuntime* runtime_ = nullptr;
};

}  // namespace strg::server

#endif  // STRG_SERVER_QUERY_ENGINE_H_
