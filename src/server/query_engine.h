#ifndef STRG_SERVER_QUERY_ENGINE_H_
#define STRG_SERVER_QUERY_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/query_spec.h"
#include "api/status.h"
#include "core/video_database.h"
#include "server/metrics.h"
#include "server/result_cache.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace strg::server {

/// Typed request outcome — the system-wide api::StatusCode vocabulary
/// (this used to be a server-local enum; it folded into api so the storage
/// and serving layers speak one set of codes). The engine degrades
/// predictably instead of collapsing: saturation yields kOverloaded, slow
/// queries against a deadline yield kDeadlineExceeded — both cheap, both
/// counted.
using StatusCode = api::StatusCode;
using api::StatusCodeName;

struct EngineOptions {
  /// Worker threads executing queries (0 = hardware concurrency).
  size_t num_threads = 2;
  /// Max requests admitted but not yet finished (queued + running). The
  /// bound is what turns overload into fast typed rejections instead of an
  /// unbounded queue whose latency grows without limit.
  size_t max_pending = 256;
  /// Total cached query results across all cache shards.
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
};

struct QueryOptions {
  /// Per-request deadline measured from submission. 0 = none. Negative =
  /// already expired (deterministic deadline handling, used by tests).
  std::chrono::microseconds timeout{0};
  bool use_cache = true;
};

struct QueryResult {
  StatusCode status = StatusCode::kOk;
  std::vector<api::VideoDatabase::QueryHit> hits;
  /// Index generation the answer was computed against (0 when the request
  /// never reached a snapshot: overload / expiry).
  uint64_t generation = 0;
  bool from_cache = false;
  double latency_micros = 0.0;
};

/// One immutable published index generation. Readers hold it via
/// shared_ptr, so a generation stays alive until the last in-flight query
/// over it finishes, no matter how many newer generations exist.
struct Snapshot {
  uint64_t generation = 0;
  api::VideoDatabase db;
};

/// Epoch pointer to the published Snapshot. store/load are a constant-time
/// shared_ptr copy under a mutex — deliberately NOT std::atomic<shared_ptr>:
/// libstdc++ 12's lock-bit protocol for it is opaque to ThreadSanitizer and
/// drowns real races in false reports. The critical section is a refcount
/// bump (~ns); queries (~us..ms) never execute under it. Swapping in a
/// lock-free scheme (hazard pointers / RCU) later only touches this class.
class SnapshotHolder {
 public:
  explicit SnapshotHolder(std::shared_ptr<const Snapshot> initial)
      : ptr_(std::move(initial)) {}

  std::shared_ptr<const Snapshot> load() const STRG_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return ptr_;
  }
  void store(std::shared_ptr<const Snapshot> next) STRG_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ptr_ = std::move(next);
  }

 private:
  mutable Mutex mu_;
  std::shared_ptr<const Snapshot> ptr_ STRG_GUARDED_BY(mu_);
};

/// Concurrent query-serving front-end over api::VideoDatabase.
///
/// Concurrency model — snapshot isolation via copy-on-write epochs:
///  - Writers (AddVideo / AddObjectGraph) serialize on a mutex, clone the
///    current generation, mutate the clone, and atomically publish it.
///    A writer never touches a published Snapshot.
///  - Readers grab the current Snapshot (a constant-time epoch-pointer
///    copy) and run the whole query against that immutable generation: no
///    lock is held during query execution, so there are no torn reads and
///    no half-inserted trees — at the cost of ingest copying the database
///    (fine for this workload; later PRs can shard or delta-copy).
///
/// Request path: result-cache fast path on the calling thread (a cache hit
/// costs one shard mutex, no admission), then bounded admission, then
/// execution on the worker pool while the caller waits on the task future —
/// with `future::wait_until` when a deadline is set, so nothing busy-waits.
class QueryEngine {
 public:
  explicit QueryEngine(index::StrgIndexParams params = {},
                       EngineOptions opts = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // ---- Writers (copy-on-write publish; serialized among themselves). ----

  /// Indexes a processed segment under `name`. Returns the new generation;
  /// `*segment_id` (optional) receives the root/segment id for later
  /// AddObjectGraph calls.
  uint64_t AddVideo(const std::string& name,
                    const api::SegmentResult& segment,
                    int* segment_id = nullptr);

  /// Streams one more OG into an existing segment. Each call publishes
  /// exactly one new generation containing exactly one more OG — the
  /// invariant the concurrency stress test leans on.
  uint64_t AddObjectGraph(int segment_id, const std::string& video,
                          const core::Og& og,
                          const dist::FeatureScaling& scaling);

  /// Fast-forwards the published generation number without changing data
  /// (only forward; lower targets are ignored). Recovery uses this to keep
  /// generation tokens continuous across restarts: a snapshot rebuild
  /// collapses many original publishes into a few, but clients holding
  /// pre-crash generation numbers must still see Generation() >= theirs.
  void RestoreGeneration(uint64_t generation) STRG_EXCLUDES(writer_mu_);

  // ---- Readers (admission-controlled, snapshot-isolated). ----

  /// The one read entry point: the digest is computed once from the spec
  /// (cache key + metrics attribution), then the request flows through the
  /// cache / admission / deadline machinery regardless of kind.
  QueryResult Query(const api::QuerySpec& spec, const QueryOptions& opts = {});

  // Legacy spellings — one-line wrappers over Query(QuerySpec), kept for
  // source compatibility and slated for eventual removal.
  QueryResult FindSimilar(const dist::Sequence& query, size_t k,
                          const QueryOptions& opts = {}) {
    return Query(api::QuerySpec::Similar(query, k), opts);
  }
  QueryResult FindWithinRadius(const dist::Sequence& query, double radius,
                               const QueryOptions& opts = {}) {
    return Query(api::QuerySpec::WithinRadius(query, radius), opts);
  }
  QueryResult FindActive(const std::string& video, int first_frame,
                         int last_frame, const QueryOptions& opts = {}) {
    return Query(api::QuerySpec::Active(video, first_frame, last_frame),
                 opts);
  }

  // ---- Introspection. ----

  /// Currently published generation (constant-time epoch read). Tests query
  /// the returned snapshot's db directly to validate immutability.
  std::shared_ptr<const Snapshot> snapshot() const { return head_.load(); }
  uint64_t Generation() const { return snapshot()->generation; }

  const ServerMetrics& metrics() const { return metrics_; }
  /// Mutable registry access for layers that wrap the engine and account
  /// their own work here (the durable engine's WAL counters).
  ServerMetrics& mutable_metrics() { return metrics_; }
  std::string MetricsJson() const {
    return metrics_.ToJson(Generation());
  }

 private:
  using ComputeFn =
      std::function<ShardedResultCache::Value(const api::VideoDatabase&)>;

  QueryResult Execute(uint64_t digest, LatencyHistogram* histogram,
                      const QueryOptions& opts, ComputeFn compute);

  /// Clone-mutate-publish under writer_mu_; the published Snapshot itself
  /// is immutable, so readers never take this lock.
  template <typename MutateFn>
  uint64_t Publish(MutateFn&& mutate) STRG_EXCLUDES(writer_mu_);

  EngineOptions opts_;
  ServerMetrics metrics_;
  ShardedResultCache cache_;
  /// Serializes writers (the clone-mutate-publish window). It guards the
  /// *protocol*, not a field: the data being built is the local `next`
  /// snapshot, and publication goes through head_'s own mutex.
  Mutex writer_mu_;
  SnapshotHolder head_;
  /// Declared last: destroyed first, so queued tasks drain while the
  /// members they reference are still alive.
  ThreadPool pool_;
};

}  // namespace strg::server

#endif  // STRG_SERVER_QUERY_ENGINE_H_
