#include "server/result_cache.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace strg::server {

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  // FNV-1a, 64-bit.
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t HashSequence(const dist::Sequence& seq, uint64_t seed) {
  uint64_t h = HashBytes(&seed, sizeof(seed), seq.size());
  for (const dist::FeatureVec& v : seq) {
    h = HashBytes(v.data(), sizeof(double) * v.size(), h);
  }
  return h;
}

ShardedResultCache::ShardedResultCache(size_t capacity, size_t num_shards) {
  num_shards = std::bit_ceil(std::max<size_t>(num_shards, 1));
  capacity = std::max(capacity, num_shards);
  per_shard_capacity_ = capacity / num_shards;
  shard_mask_ = num_shards - 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool ShardedResultCache::Get(const CacheKey& key, Value* out) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->second;
  return true;
}

void ShardedResultCache::Put(const CacheKey& key, Value value) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.map[key] = shard.lru.begin();
  if (shard.lru.size() > per_shard_capacity_) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
  }
}

size_t ShardedResultCache::Size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    n += shard->lru.size();
  }
  return n;
}

}  // namespace strg::server
