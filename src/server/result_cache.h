#ifndef STRG_SERVER_RESULT_CACHE_H_
#define STRG_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/video_database.h"
#include "distance/sequence.h"
#include "util/sync.h"

namespace strg::server {

/// Cache key: a digest of the full request (query sequence bytes + query
/// type + k/radius/frame-window parameters) plus the index generation the
/// answer was computed against. Publishing a new generation changes every
/// key, so ingest invalidates the cache *naturally* — stale entries simply
/// stop being addressable and age out of the LRU lists.
struct CacheKey {
  uint64_t digest = 0;
  uint64_t generation = 0;

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const {
    // Digest is already well-mixed FNV; fold the generation in.
    return static_cast<size_t>(k.digest ^ (k.generation * 0x9e3779b97f4a7c15ULL));
  }
};

/// FNV-1a over arbitrary bytes, seedable for chaining.
uint64_t HashBytes(const void* data, size_t len, uint64_t seed);

/// Digest of a query sequence (its raw feature doubles).
uint64_t HashSequence(const dist::Sequence& seq, uint64_t seed);

/// Sharded LRU cache of resolved query results.
///
/// Shard = independent (mutex, LRU list, hash map); the shard index is
/// derived from the key digest, so concurrent queries for different keys
/// rarely contend on the same lock. Capacity is divided evenly across
/// shards; per-shard LRU eviction approximates global LRU, which is the
/// standard serving-cache trade-off.
class ShardedResultCache {
 public:
  using Value = std::vector<api::VideoDatabase::QueryHit>;

  /// `capacity` = total cached results across all shards (>= num_shards).
  /// `num_shards` is rounded up to a power of two.
  ShardedResultCache(size_t capacity, size_t num_shards);

  /// On hit, copies the cached hits into `*out`, refreshes LRU recency, and
  /// returns true.
  bool Get(const CacheKey& key, Value* out) STRG_EXCLUDES_DYNAMIC(Shard::mu);

  /// Inserts or refreshes `key`, evicting the shard's LRU tail when full.
  void Put(const CacheKey& key, Value value) STRG_EXCLUDES_DYNAMIC(Shard::mu);

  size_t Size() const STRG_EXCLUDES_DYNAMIC(Shard::mu);
  size_t NumShards() const { return shards_.size(); }

 private:
  struct Shard {
    mutable Mutex mu{LockRank::kResultCache};
    std::list<std::pair<CacheKey, Value>> lru
        STRG_GUARDED_BY(mu);  ///< front = most recent
    std::unordered_map<CacheKey, std::list<std::pair<CacheKey, Value>>::iterator,
                       CacheKeyHash>
        map STRG_GUARDED_BY(mu);
  };

  Shard& ShardFor(const CacheKey& key) {
    return *shards_[key.digest & shard_mask_];
  }

  size_t per_shard_capacity_;
  size_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace strg::server

#endif  // STRG_SERVER_RESULT_CACHE_H_
