#include "server/serve_options.h"

#include <cstdlib>
#include <string>

namespace strg::server {

namespace {

/// "--name=value" -> value as size_t; 0 on malformed input.
size_t FlagValue(std::string_view arg, std::string_view prefix) {
  std::string v(arg.substr(prefix.size()));
  long long n = std::atoll(v.c_str());
  return n > 0 ? static_cast<size_t>(n) : 0;
}

}  // namespace

bool ServeOptions::ParseFlag(std::string_view arg) {
  if (arg == "--paged") {
    paged = true;
    return true;
  }
  if (arg.rfind("--cache-mb=", 0) == 0) {
    paged = true;  // a cache budget implies paged mode
    size_t v = FlagValue(arg, "--cache-mb=");
    if (v > 0) cache_mb = v;
    return true;
  }
  if (arg.rfind("--shards=", 0) == 0) {
    size_t v = FlagValue(arg, "--shards=");
    if (v > 0) shards = v;
    return true;
  }
  return false;
}

DurableEngineOptions ServeOptions::ToDurableOptions() const {
  DurableEngineOptions opts;
  opts.storage.paged = paged;
  if (paged) opts.storage.cache_bytes = static_cast<uint64_t>(cache_mb) << 20;
  return opts;
}

ShardedEngineOptions ServeOptions::ToShardedOptions() const {
  ShardedEngineOptions opts;
  opts.num_shards = shards == 0 ? 1 : shards;
  return opts;
}

}  // namespace strg::server
