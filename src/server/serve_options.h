#ifndef STRG_SERVER_SERVE_OPTIONS_H_
#define STRG_SERVER_SERVE_OPTIONS_H_

#include <cstddef>
#include <string_view>

#include "server/durable_engine.h"
#include "server/sharded_engine.h"

namespace strg::server {

/// Serving configuration shared by `strgtool serve` and embedders: one
/// struct owns the flag vocabulary (--shards=N, --paged, --cache-mb=N)
/// and its mapping onto the engine option structs, so the CLI and library
/// callers cannot drift apart on defaults or spelling.
struct ServeOptions {
  /// Catalog partitions. 1 = a single durable engine; >1 additionally
  /// serves reads through a ShardedQueryEngine (scatter-gather kNN).
  size_t shards = 1;
  /// Route bulk records through the out-of-core page store.
  bool paged = false;
  /// Buffer-cache budget for the page store, in MiB.
  size_t cache_mb = 8;

  /// Parses one command-line token. Recognized: --shards=N, --paged,
  /// --cache-mb=N (which implies --paged). Returns false when the token is
  /// not a serve flag (the caller treats it as positional).
  bool ParseFlag(std::string_view arg);

  /// The durability layer's view of these options.
  DurableEngineOptions ToDurableOptions() const;
  /// The scatter-gather layer's view (meaningful when shards > 1).
  ShardedEngineOptions ToShardedOptions() const;
};

}  // namespace strg::server

#endif  // STRG_SERVER_SERVE_OPTIONS_H_
