#include "server/sharded_engine.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <limits>
#include <utility>

namespace strg::server {

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Routing hash seed — distinct from the cache's digest seed so video
/// placement and result keying are independent hash families.
constexpr uint64_t kShardSeed = 0x5354524753484152ULL;  // "STRGSHAR"

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

LatencyHistogram* HistogramFor(ServerMetrics* m, api::QuerySpec::Kind kind) {
  switch (kind) {
    case api::QuerySpec::Kind::kSimilar:
      return &m->knn_latency;
    case api::QuerySpec::Kind::kRange:
      return &m->range_latency;
    case api::QuerySpec::Kind::kActive:
      return &m->active_latency;
  }
  return &m->knn_latency;
}

/// Global result order: distance, then global og id. Matches both the
/// single-engine kNN resolve order and (trivially, all distances equal)
/// the ascending-id order of range ties and kActive scans.
bool HitBefore(const api::VideoDatabase::QueryHit& a,
               const api::VideoDatabase::QueryHit& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.og_id < b.og_id;
}

}  // namespace

/// One request's scatter-gather rendezvous, shared by its leg tasks.
struct ShardedQueryEngine::Gather {
  std::shared_ptr<RequestState> state;
  api::QuerySpec spec;
  uint64_t digest = 0;
  bool use_cache = true;
  uint64_t generation = 0;  ///< global generation the answer is keyed by
  LatencyHistogram* histogram = nullptr;

  /// Legs not yet finished; the leg that drops this to zero completes the
  /// request (and releases the global admission token).
  std::atomic<int> legs_remaining{0};
  /// Running worst-of-k distance (bit pattern of a double), readable
  /// without the merge lock. Starts +inf; only ever tightens, and only
  /// once `merged` holds k hits — so it is always an upper bound on the
  /// true global k-th distance and pruning with it stays exact.
  std::atomic<uint64_t> tau_bits{std::bit_cast<uint64_t>(kInf)};

  Mutex merge_mu{LockRank::kGatherMerge};
  /// kSimilar: kept sorted by HitBefore and truncated to k on every merge.
  /// kRange/kActive: appended, sorted once at completion.
  std::vector<api::VideoDatabase::QueryHit> merged STRG_GUARDED_BY(merge_mu);
};

ShardedQueryEngine::ShardedQueryEngine(index::StrgIndexParams params,
                                       ShardedEngineOptions opts)
    : ShardedQueryEngine(
          std::vector<index::StrgIndexParams>(
              opts.num_shards == 0 ? 1 : opts.num_shards, params),
          opts) {}

ShardedQueryEngine::ShardedQueryEngine(
    std::vector<index::StrgIndexParams> per_shard_params,
    ShardedEngineOptions opts)
    : opts_(opts),
      cache_(opts.cache_capacity, opts.cache_shards),
      runtime_([&] {
        AsyncRuntime::Options ro;
        ro.num_threads = opts.num_threads;
        ro.max_queue = opts.runtime_max_queue;
        return ro;
      }()) {
  if (per_shard_params.empty()) per_shard_params.emplace_back();
  const size_t n = per_shard_params.size();
  local_to_global_.resize(n);
  shard_stats_.reserve(n);
  shards_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    shard_stats_.push_back(std::make_unique<ShardStats>());
    EngineOptions eo;
    // Legs bypass per-shard admission and caching (see Submit), so shard
    // engines run as thin snapshot holders on the shared runtime.
    eo.runtime = &runtime_;
    eo.cache_capacity = 64;
    eo.cache_shards = 1;
    shards_.push_back(
        std::make_unique<QueryEngine>(per_shard_params[s], eo));
  }
}

ShardedQueryEngine::~ShardedQueryEngine() = default;

size_t ShardedQueryEngine::ShardFor(std::string_view video,
                                    size_t num_shards) {
  if (num_shards <= 1) return 0;
  return HashBytes(video.data(), video.size(), kShardSeed) % num_shards;
}

uint64_t ShardedQueryEngine::AddVideo(const std::string& name,
                                      const api::SegmentResult& segment,
                                      int* segment_id, size_t* shard_out) {
  const auto start = Clock::now();
  const size_t s = RouteShard(name);
  if (shard_out != nullptr) *shard_out = s;
  MutexLock lock(ingest_mu_);
  {
    // Map this segment's OGs (appended by the shard in local-id order) to
    // the ids an unsharded engine would have assigned.
    WriterLock map_lock(map_mu_);
    std::vector<size_t>& map = local_to_global_[s];
    const size_t count = segment.decomposition.object_graphs.size();
    for (size_t i = 0; i < count; ++i) map.push_back(next_global_id_++);
  }
  shards_[s]->AddVideo(name, segment, segment_id);
  metrics_.ingests.fetch_add(1, std::memory_order_relaxed);
  metrics_.snapshots_published.fetch_add(1, std::memory_order_relaxed);
  metrics_.ingest_latency.Record(MicrosSince(start));
  return generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

uint64_t ShardedQueryEngine::AddObjectGraph(
    int segment_id, const std::string& video, const core::Og& og,
    const dist::FeatureScaling& scaling) {
  const auto start = Clock::now();
  const size_t s = RouteShard(video);
  MutexLock lock(ingest_mu_);
  {
    WriterLock map_lock(map_mu_);
    local_to_global_[s].push_back(next_global_id_++);
  }
  shards_[s]->AddObjectGraph(segment_id, video, og, scaling);
  metrics_.ingests.fetch_add(1, std::memory_order_relaxed);
  metrics_.snapshots_published.fetch_add(1, std::memory_order_relaxed);
  metrics_.ingest_latency.Record(MicrosSince(start));
  return generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

QueryHandle ShardedQueryEngine::Submit(const api::QuerySpec& spec,
                                       const QueryOptions& opts,
                                       CompletionFn on_complete) {
  const auto start = Clock::now();
  const uint64_t digest = spec.Digest();
  LatencyHistogram* histogram = HistogramFor(&metrics_, spec.kind);

  auto state = std::make_shared<RequestState>();
  state->start = start;
  state->has_deadline = opts.timeout.count() != 0;
  state->deadline = start + opts.timeout;
  state->on_complete = std::move(on_complete);
  state->metrics = &metrics_;
  QueryHandle handle(state);

  const uint64_t generation = Generation();

  // Top-level cache fast path: whole merged answers, keyed by (digest,
  // global generation). Per-shard caches are useless to the scatter path —
  // tau-bounded legs produce truncated views — so this is the only cache
  // consulted.
  if (opts.use_cache) {
    QueryResult result;
    if (cache_.Get({digest, generation}, &result.hits)) {
      metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      result.status = StatusCode::kOk;
      result.generation = generation;
      result.from_cache = true;
      result.latency_micros = MicrosSince(start);
      histogram->Record(result.latency_micros);
      state->TryFinalize(std::move(result));
      return handle;
    }
  }

  // One global admission token per request, however many legs it fans into.
  int64_t depth =
      metrics_.queue_depth.fetch_add(1, std::memory_order_relaxed) + 1;
  metrics_.NoteQueueDepth(depth);
  if (depth > static_cast<int64_t>(opts_.max_pending)) {
    metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    metrics_.rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
    QueryResult rejected;
    rejected.status = StatusCode::kOverloaded;
    rejected.latency_micros = MicrosSince(start);
    state->TryFinalize(std::move(rejected));
    return handle;
  }
  metrics_.admitted.fetch_add(1, std::memory_order_relaxed);

  auto g = std::make_shared<Gather>();
  g->state = state;
  g->spec = spec;
  g->digest = digest;
  g->use_cache = opts.use_cache;
  g->generation = generation;
  g->histogram = histogram;

  // Routing: kActive touches exactly the shard owning the video; a
  // shard_hint restricts any kind to that shard; everything else fans out.
  std::vector<size_t> targets;
  if (opts.shard_hint >= 0 &&
      static_cast<size_t>(opts.shard_hint) < shards_.size()) {
    targets.push_back(static_cast<size_t>(opts.shard_hint));
  } else if (spec.kind == api::QuerySpec::Kind::kActive) {
    targets.push_back(RouteShard(spec.video));
  } else {
    targets.reserve(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) targets.push_back(s);
  }
  g->legs_remaining.store(static_cast<int>(targets.size()),
                          std::memory_order_relaxed);

  for (size_t s : targets) {
    shard_stats_[s]->queue_depth.fetch_add(1, std::memory_order_relaxed);
    bool posted = runtime_.Post([this, g, s] { RunLeg(g, s); });
    if (!posted) {
      // The shared submission queue is full. Shed the whole request (first
      // finalize wins; already-posted legs see `finalized` and skip their
      // compute) and retire this leg inline — if it was the last one, the
      // inline retirement also releases the admission token.
      shard_stats_[s]->queue_depth.fetch_sub(1, std::memory_order_relaxed);
      QueryResult rejected;
      rejected.status = StatusCode::kOverloaded;
      rejected.latency_micros = MicrosSince(start);
      if (state->TryFinalize(std::move(rejected))) {
        metrics_.rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
      }
      if (g->legs_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }
  return handle;
}

void ShardedQueryEngine::RunLeg(const std::shared_ptr<Gather>& g,
                                size_t shard) {
  RequestState& st = *g->state;
  ShardStats& ss = *shard_stats_[shard];

  bool do_work = true;
  if (st.cancel_requested.load(std::memory_order_relaxed)) {
    QueryResult cancelled;
    cancelled.status = StatusCode::kCancelled;
    cancelled.latency_micros = MicrosSince(st.start);
    st.TryFinalize(std::move(cancelled));
    do_work = false;
  } else if (st.has_deadline && Clock::now() >= st.deadline) {
    QueryResult expired;
    expired.status = StatusCode::kDeadlineExceeded;
    expired.latency_micros = MicrosSince(st.start);
    if (st.TryFinalize(std::move(expired))) {
      metrics_.expired_in_queue.fetch_add(1, std::memory_order_relaxed);
    }
    do_work = false;
  } else if (st.finalized.load(std::memory_order_acquire)) {
    // Waiter gave up / cancel / overload-shed already delivered an
    // outcome; don't burn a worker on an answer nobody will read.
    do_work = false;
  }

  if (do_work) {
    double tau = kInf;
    if (g->spec.kind == api::QuerySpec::Kind::kSimilar) {
      tau = std::bit_cast<double>(g->tau_bits.load(std::memory_order_acquire));
      if (tau < kInf) {
        ss.tau_prune_hits.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ss.queries.fetch_add(1, std::memory_order_relaxed);

    bool failed = false;
    std::vector<api::VideoDatabase::QueryHit> local;
    api::VideoDatabase::QueryStats stats;
    try {
      local = shards_[shard]->ExecuteShardLeg(g->spec, tau, &stats, nullptr);
    } catch (const std::exception&) {
      failed = true;  // typed failure below; no exception leaves the worker
    }

    if (failed) {
      QueryResult io;
      io.status = StatusCode::kIoError;
      io.latency_micros = MicrosSince(st.start);
      st.TryFinalize(std::move(io));
    } else {
      metrics_.distance_computations.fetch_add(stats.distance_computations,
                                               std::memory_order_relaxed);
      metrics_.lb_prunes.fetch_add(stats.lb_prunes,
                                   std::memory_order_relaxed);
      metrics_.early_abandons.fetch_add(stats.early_abandons,
                                        std::memory_order_relaxed);
      {
        // Restore the single-engine id space. Safe under the read lock:
        // the tables are append-only and every local id this snapshot can
        // produce was mapped before the shard insert published.
        ReaderLock map_lock(map_mu_);
        const std::vector<size_t>& map = local_to_global_[shard];
        for (api::VideoDatabase::QueryHit& h : local) h.og_id = map[h.og_id];
      }
      MutexLock merge_lock(g->merge_mu);
      if (g->spec.kind == api::QuerySpec::Kind::kSimilar) {
        for (api::VideoDatabase::QueryHit& h : local) {
          auto pos = std::lower_bound(g->merged.begin(), g->merged.end(), h,
                                      HitBefore);
          g->merged.insert(pos, std::move(h));
        }
        if (g->merged.size() > g->spec.k) g->merged.resize(g->spec.k);
        if (g->merged.size() == g->spec.k) {
          // Publish the tightened bound for legs that start after us.
          g->tau_bits.store(
              std::bit_cast<uint64_t>(g->merged.back().distance),
              std::memory_order_release);
        }
      } else {
        g->merged.insert(g->merged.end(),
                         std::make_move_iterator(local.begin()),
                         std::make_move_iterator(local.end()));
      }
    }
  }

  if (g->legs_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    FinishGather(g);
  }
  ss.queue_depth.fetch_sub(1, std::memory_order_relaxed);
}

void ShardedQueryEngine::FinishGather(const std::shared_ptr<Gather>& g) {
  RequestState& st = *g->state;
  // The request's one admission token, whatever the outcome.
  metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);

  // An early finalize (cancel / deadline / overload-shed / leg failure)
  // means `merged` may be partial: deliver nothing and poison no cache.
  if (st.finalized.load(std::memory_order_acquire)) return;

  QueryResult result;
  {
    MutexLock merge_lock(g->merge_mu);
    if (g->spec.kind != api::QuerySpec::Kind::kSimilar) {
      // kSimilar is kept sorted incrementally; concatenated range/active
      // legs get the global order here.
      std::sort(g->merged.begin(), g->merged.end(), HitBefore);
    }
    result.hits = std::move(g->merged);
  }
  result.status = StatusCode::kOk;
  result.generation = g->generation;
  result.from_cache = false;
  result.latency_micros = MicrosSince(st.start);
  g->histogram->Record(result.latency_micros);
  if (g->use_cache) {
    metrics_.cache_misses.fetch_add(1, std::memory_order_relaxed);
    cache_.Put({g->digest, g->generation}, result.hits);
  }

  if (st.has_deadline && Clock::now() >= st.deadline) {
    QueryResult expired;
    expired.status = StatusCode::kDeadlineExceeded;
    expired.latency_micros = result.latency_micros;
    if (st.TryFinalize(std::move(expired))) {
      metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  st.TryFinalize(std::move(result));
}

std::string ShardedQueryEngine::MetricsJson() const {
  std::vector<ServerMetrics::ShardScrape> scrape;
  scrape.reserve(shard_stats_.size());
  for (const std::unique_ptr<ShardStats>& ss : shard_stats_) {
    ServerMetrics::ShardScrape one;
    one.queries = ss->queries.load(std::memory_order_relaxed);
    one.tau_prune_hits = ss->tau_prune_hits.load(std::memory_order_relaxed);
    one.queue_depth = ss->queue_depth.load(std::memory_order_relaxed);
    scrape.push_back(one);
  }
  return metrics_.ToJson(Generation(), scrape);
}

}  // namespace strg::server
