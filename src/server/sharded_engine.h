#ifndef STRG_SERVER_SHARDED_ENGINE_H_
#define STRG_SERVER_SHARDED_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/query_spec.h"
#include "server/async_runtime.h"
#include "server/metrics.h"
#include "server/query_engine.h"
#include "server/result_cache.h"
#include "util/sync.h"

namespace strg::server {

struct ShardedEngineOptions {
  /// Catalog partitions. 1 reproduces a single QueryEngine exactly.
  size_t num_shards = 4;
  /// Workers in the shared runtime (0 = hardware concurrency).
  size_t num_threads = 0;
  /// Max *requests* (not legs) admitted but not finished, across all
  /// shards — the global admission bound that turns overload into typed
  /// kOverloaded rejections.
  size_t max_pending = 256;
  /// Shared submission-queue bound for the per-shard leg tasks.
  size_t runtime_max_queue = 4096;
  /// Top-level result cache (whole merged answers; shard caches are
  /// bypassed by scatter legs — see Submit).
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
};

/// Scatter-gather serving over a hash-partitioned catalog.
///
/// Partitioning: videos hash by name onto N shards (ShardFor), each shard
/// a full QueryEngine with its own copy-on-write snapshot chain. Ingest
/// routes each write to its video's shard, so a publish clones 1/N of the
/// catalog instead of all of it, and a temporal (kActive) query scans 1/N
/// of the records.
///
/// Query path: Submit checks the top-level result cache, takes one global
/// admission token, then fans the request out as per-shard leg tasks on
/// the shared AsyncRuntime. kNN legs read the gather's running worst-of-k
/// distance (tau) before executing and seed the shard search with it, so
/// shards that start after others have finished prune against the best
/// global answer so far — the scatter-gather counterpart of the paper's
/// single-index branch-and-bound. The last leg to finish merges by
/// (distance, global og id), fills the cache, and finalizes the request.
///
/// Answers are bit-identical to an unsharded engine fed the same writes in
/// the same order (assuming distinct distances; exact ties order by global
/// og id on both sides): tau only ever tightens below the true k-th
/// distance, so no global top-k member is ever pruned, and the per-shard
/// local->global id remap restores the single-engine id space.
class ShardedQueryEngine {
 public:
  explicit ShardedQueryEngine(index::StrgIndexParams params = {},
                              ShardedEngineOptions opts = {});
  /// Per-shard index parameters (size() becomes the shard count) — lets
  /// tests give each shard its own paged leaf store.
  ShardedQueryEngine(std::vector<index::StrgIndexParams> per_shard_params,
                     ShardedEngineOptions opts);

  ShardedQueryEngine(const ShardedQueryEngine&) = delete;
  ShardedQueryEngine& operator=(const ShardedQueryEngine&) = delete;

  /// Drains in-flight legs (the runtime is destroyed first), then the
  /// shard engines.
  ~ShardedQueryEngine();

  /// Stable video -> shard routing (seeded FNV over the name). Exposed so
  /// tools and tests can predict placement.
  static size_t ShardFor(std::string_view video, size_t num_shards);

  // ---- Writers (routed to the owning shard; serialized globally). ----

  /// Indexes a segment on video `name`'s shard. Returns the new *global*
  /// generation; `*segment_id` (optional) is the shard-local segment id —
  /// valid for AddObjectGraph together with the same video name;
  /// `*shard_out` (optional) receives the owning shard.
  uint64_t AddVideo(const std::string& name, const api::SegmentResult& segment,
                    int* segment_id = nullptr, size_t* shard_out = nullptr)
      STRG_EXCLUDES(ingest_mu_);

  /// Streams one more OG into an existing segment on `video`'s shard.
  uint64_t AddObjectGraph(int segment_id, const std::string& video,
                          const core::Og& og,
                          const dist::FeatureScaling& scaling)
      STRG_EXCLUDES(ingest_mu_);

  // ---- Readers (global admission, scatter-gather execution). ----

  /// Submits the request: top-level cache fast path, one global admission
  /// token, then one leg task per participating shard (all shards for
  /// kSimilar/kRange; the owning shard for kActive; exactly
  /// opts.shard_hint when set — the hint restricts the scatter, so the
  /// answer covers only that shard). Same handle/callback contract as
  /// QueryEngine::Submit.
  QueryHandle Submit(const api::QuerySpec& spec, const QueryOptions& opts = {},
                     CompletionFn on_complete = nullptr);

  QueryResult Query(const api::QuerySpec& spec, const QueryOptions& opts = {}) {
    return Submit(spec, opts).Wait();
  }

  // ---- Introspection. ----

  uint64_t Generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  size_t NumShards() const { return shards_.size(); }
  /// Direct access to one shard engine (tests; read-only use).
  const QueryEngine& shard(size_t s) const { return *shards_[s]; }

  const ServerMetrics& metrics() const { return metrics_; }
  /// Global registry + per-shard breakdown ("shards" array).
  std::string MetricsJson() const;

  AsyncRuntime& runtime() { return runtime_; }

 private:
  /// Per-shard serving counters (relaxed; scraped into
  /// ServerMetrics::ShardScrape by MetricsJson). unique_ptr elements
  /// because atomics are not movable.
  struct ShardStats {
    std::atomic<uint64_t> queries{0};         ///< legs executed
    std::atomic<uint64_t> tau_prune_hits{0};  ///< legs seeded with finite tau
    std::atomic<int64_t> queue_depth{0};      ///< legs posted, not finished
  };

  /// Scatter-gather rendezvous of one request (defined in the .cc).
  struct Gather;

  size_t RouteShard(std::string_view video) const {
    return ShardFor(video, shards_.size());
  }
  /// One shard leg, on a runtime worker: skip checks, tau read, shard
  /// search, id remap, merge; the last leg finalizes the request.
  void RunLeg(const std::shared_ptr<Gather>& g, size_t shard);
  /// Completion by the last leg: sort/truncate, cache fill, finalize.
  void FinishGather(const std::shared_ptr<Gather>& g);

  ShardedEngineOptions opts_;
  ServerMetrics metrics_;
  ShardedResultCache cache_;
  /// Global publish counter: every routed write bumps it by one, so it
  /// matches the generation an unsharded engine fed the same write
  /// sequence would report.
  std::atomic<uint64_t> generation_{0};

  /// Serializes writers across shards: global og ids are assigned in call
  /// order (the single-engine id space), which requires the id-assign +
  /// shard-insert window to be atomic. Queries never take this.
  Mutex ingest_mu_{LockRank::kIngestSharded};
  /// Guards the id remap tables. Writers append under ingest_mu_ + write
  /// lock; gather legs remap under read lock. Tables are append-only and a
  /// shard snapshot's local ids are always < the table length at remap
  /// time (the mapping is appended before the shard insert publishes).
  mutable SharedMutex map_mu_{LockRank::kShardMap};
  /// local_to_global_[s][local_og_id] == global og id.
  std::vector<std::vector<size_t>> local_to_global_ STRG_GUARDED_BY(map_mu_);
  size_t next_global_id_ STRG_GUARDED_BY(map_mu_) = 0;

  std::vector<std::unique_ptr<ShardStats>> shard_stats_;
  std::vector<std::unique_ptr<QueryEngine>> shards_;
  /// Declared last: destroyed first, draining posted legs while the shard
  /// engines, maps, and metrics they touch are all still alive. Shard
  /// engines execute on this runtime (EngineOptions::runtime).
  AsyncRuntime runtime_;
};

}  // namespace strg::server

#endif  // STRG_SERVER_SHARDED_ENGINE_H_
