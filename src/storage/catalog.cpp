#include "storage/catalog.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "storage/pager/paged_record_store.h"

namespace strg::storage {

void Catalog::AddSegment(CatalogSegment segment) {
  segments_.push_back(std::move(segment));
}

void Catalog::AppendOg(size_t segment_index, core::Og og) {
  segments_.at(segment_index).ogs.push_back(std::move(og));
}

size_t Catalog::TotalOgs() const {
  size_t n = 0;
  for (const CatalogSegment& s : segments_) n += s.ogs.size();
  return n;
}

void EncodeCatalogSegment(const CatalogSegment& s, Writer* w) {
  w->PutString(s.video_name);
  w->PutU32(static_cast<uint32_t>(s.frame_width));
  w->PutU32(static_cast<uint32_t>(s.frame_height));
  w->PutU64(s.num_frames);
  EncodeBackgroundGraph(s.background, w);
  w->PutVarint(s.ogs.size());
  for (const core::Og& og : s.ogs) EncodeOg(og, w);
}

CatalogSegment DecodeCatalogSegment(Reader* r) {
  CatalogSegment s;
  s.video_name = r->GetString();
  s.frame_width = static_cast<int>(r->GetU32());
  s.frame_height = static_cast<int>(r->GetU32());
  s.num_frames = r->GetU64();
  s.background = DecodeBackgroundGraph(r);
  size_t ogs = static_cast<size_t>(r->GetVarint());
  s.ogs.reserve(ogs);
  for (size_t j = 0; j < ogs; ++j) s.ogs.push_back(DecodeOg(r));
  return s;
}

std::string Catalog::Serialize() const {
  Writer w;
  w.PutU32(kMagic);
  w.PutU32(kVersion);
  w.PutVarint(segments_.size());
  for (const CatalogSegment& s : segments_) EncodeCatalogSegment(s, &w);
  return w.Take();
}

api::StatusOr<Catalog> Catalog::TryDeserialize(std::string_view bytes) {
  // The Reader throws std::out_of_range on truncation; translate every
  // parse-level failure into one typed kCorruption outcome so truncated
  // files and bad magic surface identically to callers.
  try {
    Reader r(bytes);
    if (r.GetU32() != kMagic) {
      return api::Status::Corruption("Catalog: bad magic (not a STRG catalog)");
    }
    uint32_t version = r.GetU32();
    if (version != kVersion) {
      return api::Status::Corruption("Catalog: unsupported version " +
                                     std::to_string(version));
    }
    Catalog catalog;
    size_t segments = static_cast<size_t>(r.GetVarint());
    for (size_t i = 0; i < segments; ++i) {
      catalog.AddSegment(DecodeCatalogSegment(&r));
    }
    if (!r.AtEnd()) {
      return api::Status::Corruption(
          "Catalog: trailing bytes after last segment");
    }
    return catalog;
  } catch (const std::out_of_range&) {
    return api::Status::Corruption("Catalog: truncated input");
  } catch (const std::length_error&) {
    return api::Status::Corruption("Catalog: implausible length field");
  }
}

api::Status Catalog::TrySaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return api::Status::IoError("Catalog: cannot open " + path);
  std::string bytes = Serialize();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return api::Status::IoError("Catalog: short write to " + path);
  return api::Status::Ok();
}

api::StatusOr<Catalog> Catalog::TryLoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return api::Status::NotFound("Catalog: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return TryDeserialize(buf.str());
}

api::Status Catalog::TrySaveToPagedFile(const std::string& path,
                                        const StorageParams& params,
                                        uint64_t user_data) const {
  api::StatusOr<std::unique_ptr<PagedRecordStore>> created =
      PagedRecordStore::Create(path, params);
  if (!created.ok()) return created.status();
  std::unique_ptr<PagedRecordStore> store = std::move(created).value();

  std::vector<uint64_t> segment_ids;
  segment_ids.reserve(segments_.size());
  for (const CatalogSegment& s : segments_) {
    Writer bg;
    EncodeBackgroundGraph(s.background, &bg);
    api::StatusOr<uint64_t> bg_id = store->Append(kRecBackground, bg.bytes());
    if (!bg_id.ok()) return bg_id.status();

    std::vector<uint64_t> og_ids;
    og_ids.reserve(s.ogs.size());
    for (const core::Og& og : s.ogs) {
      Writer wo;
      EncodeOg(og, &wo);
      api::StatusOr<uint64_t> og_id = store->Append(kRecOgSequence,
                                                    wo.bytes());
      if (!og_id.ok()) return og_id.status();
      og_ids.push_back(og_id.value());
    }

    Writer meta;
    meta.PutString(s.video_name);
    meta.PutU32(static_cast<uint32_t>(s.frame_width));
    meta.PutU32(static_cast<uint32_t>(s.frame_height));
    meta.PutU64(s.num_frames);
    meta.PutU64(bg_id.value());
    meta.PutVarint(og_ids.size());
    for (uint64_t id : og_ids) meta.PutU64(id);
    api::StatusOr<uint64_t> seg_id = store->Append(kRecCatalogMeta,
                                                   meta.bytes());
    if (!seg_id.ok()) return seg_id.status();
    segment_ids.push_back(seg_id.value());
  }

  Writer manifest;
  manifest.PutU32(kMagic);
  manifest.PutU32(kVersion);
  manifest.PutU64(user_data);
  manifest.PutVarint(segment_ids.size());
  for (uint64_t id : segment_ids) manifest.PutU64(id);
  api::StatusOr<uint64_t> root = store->Append(kRecCatalogMeta,
                                               manifest.bytes());
  if (!root.ok()) return root.status();
  store->SetRoot(root.value());
  return store->Commit();
}

api::StatusOr<Catalog> Catalog::TryLoadFromPagedFile(
    const std::string& path, const StorageParams& params,
    uint64_t* user_data) {
  api::StatusOr<std::unique_ptr<PagedRecordStore>> opened =
      PagedRecordStore::Open(path, params);
  if (!opened.ok()) return opened.status();
  std::unique_ptr<PagedRecordStore> store = std::move(opened).value();
  if (store->Root() == PagedRecordStore::kNoRecord) {
    return api::Status::Corruption("Catalog: paged file has no manifest: " +
                                   path);
  }

  // Reads a record and hands its bytes to `decode`; any Reader truncation
  // inside surfaces as one typed kCorruption (same policy as
  // TryDeserialize).
  auto read_record =
      [&](uint64_t id, uint8_t want_type,
          auto&& decode) -> api::Status {
    api::StatusOr<PagedRecordStore::RecordRef> ref = store->Read(id);
    if (!ref.ok()) return ref.status();
    if (ref.value().record_type() != want_type) {
      return api::Status::Corruption(
          "Catalog: record " + std::to_string(id) + " has type " +
          std::to_string(ref.value().record_type()) + ", expected " +
          std::to_string(want_type));
    }
    try {
      Reader r(ref.value().bytes());
      decode(&r);
      if (!r.AtEnd()) {
        return api::Status::Corruption("Catalog: trailing bytes in record " +
                                       std::to_string(id));
      }
      return api::Status::Ok();
    } catch (const std::out_of_range&) {
      return api::Status::Corruption("Catalog: truncated record " +
                                     std::to_string(id));
    } catch (const std::length_error&) {
      return api::Status::Corruption("Catalog: implausible length in record " +
                                     std::to_string(id));
    }
  };

  std::vector<uint64_t> segment_ids;
  bool header_ok = true;
  api::Status st = read_record(
      store->Root(), kRecCatalogMeta, [&](Reader* r) {
        header_ok = r->GetU32() == kMagic && r->GetU32() == kVersion;
        if (!header_ok) return;  // surfaced as kCorruption below
        const uint64_t data = r->GetU64();
        if (user_data != nullptr) *user_data = data;
        const size_t n = static_cast<size_t>(r->GetVarint());
        for (size_t i = 0; i < n; ++i) segment_ids.push_back(r->GetU64());
      });
  if (!header_ok) {
    return api::Status::Corruption(
        "Catalog: paged manifest has bad magic or version: " + path);
  }
  if (!st.ok()) return st;

  Catalog catalog;
  for (uint64_t seg_id : segment_ids) {
    CatalogSegment s;
    uint64_t bg_id = 0;
    std::vector<uint64_t> og_ids;
    st = read_record(seg_id, kRecCatalogMeta, [&](Reader* r) {
      s.video_name = r->GetString();
      s.frame_width = static_cast<int>(r->GetU32());
      s.frame_height = static_cast<int>(r->GetU32());
      s.num_frames = r->GetU64();
      bg_id = r->GetU64();
      const size_t n = static_cast<size_t>(r->GetVarint());
      for (size_t i = 0; i < n; ++i) og_ids.push_back(r->GetU64());
    });
    if (!st.ok()) return st;
    st = read_record(bg_id, kRecBackground, [&](Reader* r) {
      s.background = DecodeBackgroundGraph(r);
    });
    if (!st.ok()) return st;
    s.ogs.reserve(og_ids.size());
    for (uint64_t og_id : og_ids) {
      st = read_record(og_id, kRecOgSequence, [&](Reader* r) {
        s.ogs.push_back(DecodeOg(r));
      });
      if (!st.ok()) return st;
    }
    catalog.AddSegment(std::move(s));
  }
  return catalog;
}

}  // namespace strg::storage
