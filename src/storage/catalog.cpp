#include "storage/catalog.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace strg::storage {

void Catalog::AddSegment(CatalogSegment segment) {
  segments_.push_back(std::move(segment));
}

size_t Catalog::TotalOgs() const {
  size_t n = 0;
  for (const CatalogSegment& s : segments_) n += s.ogs.size();
  return n;
}

std::string Catalog::Serialize() const {
  Writer w;
  w.PutU32(kMagic);
  w.PutU32(kVersion);
  w.PutVarint(segments_.size());
  for (const CatalogSegment& s : segments_) {
    w.PutString(s.video_name);
    w.PutU32(static_cast<uint32_t>(s.frame_width));
    w.PutU32(static_cast<uint32_t>(s.frame_height));
    w.PutU64(s.num_frames);
    EncodeBackgroundGraph(s.background, &w);
    w.PutVarint(s.ogs.size());
    for (const core::Og& og : s.ogs) EncodeOg(og, &w);
  }
  return w.Take();
}

Catalog Catalog::Deserialize(std::string_view bytes) {
  Reader r(bytes);
  if (r.GetU32() != kMagic) {
    throw std::runtime_error("Catalog: bad magic (not a STRG catalog)");
  }
  uint32_t version = r.GetU32();
  if (version != kVersion) {
    throw std::runtime_error("Catalog: unsupported version " +
                             std::to_string(version));
  }
  Catalog catalog;
  size_t segments = static_cast<size_t>(r.GetVarint());
  for (size_t i = 0; i < segments; ++i) {
    CatalogSegment s;
    s.video_name = r.GetString();
    s.frame_width = static_cast<int>(r.GetU32());
    s.frame_height = static_cast<int>(r.GetU32());
    s.num_frames = r.GetU64();
    s.background = DecodeBackgroundGraph(&r);
    size_t ogs = static_cast<size_t>(r.GetVarint());
    s.ogs.reserve(ogs);
    for (size_t j = 0; j < ogs; ++j) s.ogs.push_back(DecodeOg(&r));
    catalog.AddSegment(std::move(s));
  }
  if (!r.AtEnd()) {
    throw std::runtime_error("Catalog: trailing bytes after last segment");
  }
  return catalog;
}

void Catalog::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("Catalog: cannot open " + path);
  std::string bytes = Serialize();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("Catalog: short write to " + path);
}

Catalog Catalog::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("Catalog: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Deserialize(buf.str());
}

}  // namespace strg::storage
