#include "storage/catalog.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace strg::storage {

void Catalog::AddSegment(CatalogSegment segment) {
  segments_.push_back(std::move(segment));
}

void Catalog::AppendOg(size_t segment_index, core::Og og) {
  segments_.at(segment_index).ogs.push_back(std::move(og));
}

size_t Catalog::TotalOgs() const {
  size_t n = 0;
  for (const CatalogSegment& s : segments_) n += s.ogs.size();
  return n;
}

void EncodeCatalogSegment(const CatalogSegment& s, Writer* w) {
  w->PutString(s.video_name);
  w->PutU32(static_cast<uint32_t>(s.frame_width));
  w->PutU32(static_cast<uint32_t>(s.frame_height));
  w->PutU64(s.num_frames);
  EncodeBackgroundGraph(s.background, w);
  w->PutVarint(s.ogs.size());
  for (const core::Og& og : s.ogs) EncodeOg(og, w);
}

CatalogSegment DecodeCatalogSegment(Reader* r) {
  CatalogSegment s;
  s.video_name = r->GetString();
  s.frame_width = static_cast<int>(r->GetU32());
  s.frame_height = static_cast<int>(r->GetU32());
  s.num_frames = r->GetU64();
  s.background = DecodeBackgroundGraph(r);
  size_t ogs = static_cast<size_t>(r->GetVarint());
  s.ogs.reserve(ogs);
  for (size_t j = 0; j < ogs; ++j) s.ogs.push_back(DecodeOg(r));
  return s;
}

std::string Catalog::Serialize() const {
  Writer w;
  w.PutU32(kMagic);
  w.PutU32(kVersion);
  w.PutVarint(segments_.size());
  for (const CatalogSegment& s : segments_) EncodeCatalogSegment(s, &w);
  return w.Take();
}

api::StatusOr<Catalog> Catalog::TryDeserialize(std::string_view bytes) {
  // The Reader throws std::out_of_range on truncation; translate every
  // parse-level failure into one typed kCorruption outcome so truncated
  // files and bad magic surface identically to callers.
  try {
    Reader r(bytes);
    if (r.GetU32() != kMagic) {
      return api::Status::Corruption("Catalog: bad magic (not a STRG catalog)");
    }
    uint32_t version = r.GetU32();
    if (version != kVersion) {
      return api::Status::Corruption("Catalog: unsupported version " +
                                     std::to_string(version));
    }
    Catalog catalog;
    size_t segments = static_cast<size_t>(r.GetVarint());
    for (size_t i = 0; i < segments; ++i) {
      catalog.AddSegment(DecodeCatalogSegment(&r));
    }
    if (!r.AtEnd()) {
      return api::Status::Corruption(
          "Catalog: trailing bytes after last segment");
    }
    return catalog;
  } catch (const std::out_of_range&) {
    return api::Status::Corruption("Catalog: truncated input");
  } catch (const std::length_error&) {
    return api::Status::Corruption("Catalog: implausible length field");
  }
}

api::Status Catalog::TrySaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return api::Status::IoError("Catalog: cannot open " + path);
  std::string bytes = Serialize();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return api::Status::IoError("Catalog: short write to " + path);
  return api::Status::Ok();
}

api::StatusOr<Catalog> Catalog::TryLoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return api::Status::NotFound("Catalog: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return TryDeserialize(buf.str());
}

}  // namespace strg::storage
