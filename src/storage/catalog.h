#ifndef STRG_STORAGE_CATALOG_H_
#define STRG_STORAGE_CATALOG_H_

#include <string>
#include <vector>

#include "api/status.h"
#include "storage/pager/storage_params.h"
#include "storage/serializer.h"
#include "strg/object_graph.h"

namespace strg::storage {

/// Everything worth persisting about one processed video segment: the
/// compressed background graph, the extracted object graphs, and the frame
/// geometry needed to rebuild feature scalings.
struct CatalogSegment {
  std::string video_name;
  int frame_width = 0;
  int frame_height = 0;
  uint64_t num_frames = 0;
  core::BackgroundGraph background;
  std::vector<core::Og> ogs;
};

/// Segment codec, shared by the catalog body and the WAL's AddVideo record
/// payloads (one wire format, two containers).
void EncodeCatalogSegment(const CatalogSegment& s, Writer* w);
CatalogSegment DecodeCatalogSegment(Reader* r);

/// On-disk catalog of processed video segments.
///
/// The catalog stores the pipeline's *artifacts* (OGs and BGs), not the
/// index: the STRG-Index build is deterministic given its parameters, so a
/// reload rebuilds an identical index from the catalog — the same policy
/// the paper's size analysis assumes (the index is small and lives in
/// memory; the OG payloads are the durable data).
///
/// Error surface: the Try* methods are the primary API and return
/// api::Status / api::StatusOr — a bad magic, an unsupported version, and a
/// truncated buffer all surface uniformly as kCorruption (missing files as
/// kNotFound, OS failures as kIoError). The historical throwing methods
/// remain as thin wrappers over them and will eventually be removed.
class Catalog {
 public:
  static constexpr uint32_t kMagic = 0x53545247;  // "STRG"
  static constexpr uint32_t kVersion = 1;

  void AddSegment(CatalogSegment segment);

  /// Appends one more OG to an existing segment (the durable mirror of
  /// api::VideoDatabase::AddObjectGraph; used by WAL compaction).
  void AppendOg(size_t segment_index, core::Og og);

  const std::vector<CatalogSegment>& segments() const { return segments_; }
  size_t NumSegments() const { return segments_.size(); }
  size_t TotalOgs() const;

  /// Serializes to a byte string (magic + version header, then segments).
  std::string Serialize() const;

  /// Parses a serialized catalog. Any malformed input — bad magic,
  /// unsupported version, truncation, trailing bytes — is kCorruption.
  static api::StatusOr<Catalog> TryDeserialize(std::string_view bytes);

  /// File persistence. Missing file on load is kNotFound; OS-level
  /// failures are kIoError; malformed contents are kCorruption.
  api::Status TrySaveToFile(const std::string& path) const;
  static api::StatusOr<Catalog> TryLoadFromFile(const std::string& path);

  /// Paged persistence: writes the catalog through a PagedRecordStore —
  /// each background graph, each OG, and each segment's metadata becomes
  /// its own typed, CRC-protected record (OGs larger than a page overflow-
  /// chain automatically), with a manifest record as the store root. The
  /// same torn-write detection the WAL gives its records now covers the
  /// snapshot, page by page, and `strgtool stat` can audit the file without
  /// this class. `user_data` is one caller-owned u64 carried in the
  /// manifest (the durable engine stores its applied WAL sequence there).
  /// Error surface matches the flat-file forms: kNotFound for a missing
  /// file, kCorruption for any malformed record.
  api::Status TrySaveToPagedFile(const std::string& path,
                                 const StorageParams& params,
                                 uint64_t user_data = 0) const;
  static api::StatusOr<Catalog> TryLoadFromPagedFile(
      const std::string& path, const StorageParams& params,
      uint64_t* user_data = nullptr);

  // The throwing wrappers (Deserialize / SaveToFile / LoadFromFile) spent
  // one release deprecated and are now REMOVED: this class speaks
  // Status/StatusOr only. scripts/strg_lint.py's strg-deprecated-catalog
  // rule rejects any reintroduction, in this header included.

 private:
  std::vector<CatalogSegment> segments_;
};

}  // namespace strg::storage

#endif  // STRG_STORAGE_CATALOG_H_
