#ifndef STRG_STORAGE_CATALOG_H_
#define STRG_STORAGE_CATALOG_H_

#include <string>
#include <vector>

#include "storage/serializer.h"
#include "strg/object_graph.h"

namespace strg::storage {

/// Everything worth persisting about one processed video segment: the
/// compressed background graph, the extracted object graphs, and the frame
/// geometry needed to rebuild feature scalings.
struct CatalogSegment {
  std::string video_name;
  int frame_width = 0;
  int frame_height = 0;
  uint64_t num_frames = 0;
  core::BackgroundGraph background;
  std::vector<core::Og> ogs;
};

/// On-disk catalog of processed video segments.
///
/// The catalog stores the pipeline's *artifacts* (OGs and BGs), not the
/// index: the STRG-Index build is deterministic given its parameters, so a
/// reload rebuilds an identical index from the catalog — the same policy
/// the paper's size analysis assumes (the index is small and lives in
/// memory; the OG payloads are the durable data).
class Catalog {
 public:
  static constexpr uint32_t kMagic = 0x53545247;  // "STRG"
  static constexpr uint32_t kVersion = 1;

  void AddSegment(CatalogSegment segment);

  const std::vector<CatalogSegment>& segments() const { return segments_; }
  size_t NumSegments() const { return segments_.size(); }
  size_t TotalOgs() const;

  /// Serializes to a byte string (magic + version header, then segments).
  std::string Serialize() const;

  /// Parses a serialized catalog; throws std::runtime_error on a bad
  /// magic/version and std::out_of_range on truncation.
  static Catalog Deserialize(std::string_view bytes);

  /// File convenience wrappers; throw std::runtime_error on I/O failure.
  void SaveToFile(const std::string& path) const;
  static Catalog LoadFromFile(const std::string& path);

 private:
  std::vector<CatalogSegment> segments_;
};

}  // namespace strg::storage

#endif  // STRG_STORAGE_CATALOG_H_
