#include "storage/crc32c.h"

#include <array>

namespace strg::storage {

namespace {

constexpr uint32_t kCrc32cPoly = 0x82F63B78u;  // reflected Castagnoli

constexpr std::array<uint32_t, 256> MakeCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kCrc32cPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrc32cTable = MakeCrc32cTable();

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = kCrc32cTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace strg::storage
