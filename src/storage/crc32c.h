#ifndef STRG_STORAGE_CRC32C_H_
#define STRG_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace strg::storage {

/// CRC32C (Castagnoli polynomial, the one with hardware support on modern
/// CPUs and strong burst-error detection for storage framing). Software
/// table implementation; `seed` chains partial computations. Shared by the
/// WAL record framing and the pager's per-page checksums — one checksum
/// vocabulary for every torn-write detector in the tree.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

/// Little-endian fixed-width framing helpers used by every on-disk format
/// (WAL record headers, page headers). The serializer's Writer/Reader wrap
/// these for variable-length payloads; raw headers use them directly.
inline void PutLe32(char* out, uint32_t v) {
  out[0] = static_cast<char>(v & 0xFF);
  out[1] = static_cast<char>((v >> 8) & 0xFF);
  out[2] = static_cast<char>((v >> 16) & 0xFF);
  out[3] = static_cast<char>((v >> 24) & 0xFF);
}

inline uint32_t GetLe32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace strg::storage

#endif  // STRG_STORAGE_CRC32C_H_
