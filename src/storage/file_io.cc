#include "storage/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace strg::storage {

api::StatusOr<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return api::Status::NotFound("read of " + path + ": no such file");
    }
    return api::Status::IoError("read: open of " + path + ": " +
                                std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      api::Status st = api::Status::IoError("read of " + path + ": " +
                                            std::strerror(errno));
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

api::Status WriteFileSync(const std::string& path, std::string_view bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return api::Status::IoError("write: open of " + path + ": " +
                                std::strerror(errno));
  }
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      api::Status st = api::Status::IoError("write to " + path + ": " +
                                            std::strerror(errno));
      ::close(fd);
      return st;
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    api::Status st = api::Status::IoError("fsync of " + path + ": " +
                                          std::strerror(errno));
    ::close(fd);
    return st;
  }
  ::close(fd);
  return api::Status::Ok();
}

}  // namespace strg::storage
