#ifndef STRG_STORAGE_FILE_IO_H_
#define STRG_STORAGE_FILE_IO_H_

#include <string>
#include <string_view>

#include "api/status.h"

namespace strg::storage {

/// Whole-file read into memory. A missing file is kNotFound (callers that
/// treat absence as "empty state" branch on the code); OS-level failures
/// are kIoError.
api::StatusOr<std::string> ReadFileToString(const std::string& path);

/// Durable whole-file write: open(O_TRUNC), write everything, fsync, close.
/// This is the tmp half of the tmp-write + rename publication protocol —
/// callers rename the result over the live file and SyncDir the directory.
api::Status WriteFileSync(const std::string& path, std::string_view bytes);

}  // namespace strg::storage

#endif  // STRG_STORAGE_FILE_IO_H_
