#include "storage/pager/buffer_cache.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace strg::storage {

BufferCache::BufferCache(PageFile* file, uint64_t capacity_bytes,
                         size_t shards)
    : file_(file) {
  const size_t n_shards = std::max<size_t>(1, shards);
  size_t frames = static_cast<size_t>(capacity_bytes / file->page_size());
  frames = std::max(frames, n_shards);  // at least one frame per shard
  num_frames_ = frames;

  shards_ = std::vector<Shard>(n_shards);
  for (size_t s = 0; s < n_shards; ++s) {
    // Round-robin split of the frame budget; every frame's payload buffer
    // is allocated once here and never resized, so the data pointers a
    // PageRef aliases stay stable for the cache's whole lifetime.
    const size_t count = frames / n_shards + (s < frames % n_shards ? 1 : 0);
    MutexLock lock(shards_[s].mu);
    shards_[s].frames.resize(count);
    for (size_t f = 0; f < count; ++f) {
      shards_[s].frames[f].data.resize(file->payload_capacity());
      shards_[s].free_frames.push_back(count - 1 - f);  // pop ascending
    }
  }
}

BufferCache::PageRef& BufferCache::PageRef::operator=(
    PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = std::exchange(other.cache_, nullptr);
    shard_ = other.shard_;
    frame_ = other.frame_;
    payload_ = other.payload_;
    type_ = other.type_;
    next_page_ = other.next_page_;
    other.payload_ = {};
  }
  return *this;
}

void BufferCache::PageRef::Release() {
  if (cache_ != nullptr) {
    cache_->Unpin(shard_, frame_);
    cache_ = nullptr;
    payload_ = {};
  }
}

void BufferCache::TouchLocked(Shard& s, size_t frame) {
  auto it = s.lru_pos.find(frame);
  if (it != s.lru_pos.end()) s.lru.erase(it->second);
  s.lru.push_front(frame);
  s.lru_pos[frame] = s.lru.begin();
}

void BufferCache::UnlinkLruLocked(Shard& s, size_t frame) {
  auto it = s.lru_pos.find(frame);
  if (it != s.lru_pos.end()) {
    s.lru.erase(it->second);
    s.lru_pos.erase(it);
  }
}

api::Status BufferCache::WriteBackLocked(Shard& s, size_t frame) {
  Frame& f = s.frames[frame];
  if (!f.dirty) return api::Status::Ok();
  api::Status st = file_->WritePage(
      f.page, f.type, f.next_page,
      std::string_view(f.data.data(), f.payload_len));
  if (!st.ok()) return st;
  f.dirty = false;
  write_backs_.fetch_add(1, std::memory_order_relaxed);
  return api::Status::Ok();
}

api::StatusOr<size_t> BufferCache::ClaimFrameLocked(Shard& s) {
  if (!s.free_frames.empty()) {
    const size_t frame = s.free_frames.back();
    s.free_frames.pop_back();
    return frame;
  }
  // Evict the least-recently-used unpinned resident frame. Pins don't
  // unlink from the LRU list, so walk from the tail skipping pinned ones.
  for (auto it = s.lru.rbegin(); it != s.lru.rend(); ++it) {
    const size_t frame = *it;
    Frame& f = s.frames[frame];
    if (f.pins != 0) continue;
    api::Status st = WriteBackLocked(s, frame);
    if (!st.ok()) return st;
    s.map.erase(f.page);
    f.mapped = false;
    f.page = PageFile::kNoPage;
    UnlinkLruLocked(s, frame);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return frame;
  }
  return api::Status(api::StatusCode::kOverloaded,
                     "buffer cache: every frame is pinned "
                     "(cache budget exhausted)");
}

api::StatusOr<BufferCache::PageRef> BufferCache::Pin(uint32_t page_id) {
  Shard& s = shard_of(page_id);
  const size_t shard_idx = static_cast<size_t>(&s - shards_.data());

  MutexLock lock(s.mu);
  size_t frame;
  auto it = s.map.find(page_id);
  if (it != s.map.end()) {
    frame = it->second;
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    api::StatusOr<size_t> claimed = ClaimFrameLocked(s);
    if (!claimed.ok()) return claimed.status();
    frame = claimed.value();
    Frame& f = s.frames[frame];

    // Fault the page in while holding the shard lock. Single-threaded
    // misses serialize behind this read; acceptable for the shard counts
    // we run (misses are the slow path by definition).
    PageFile::PageView view;
    api::Status st = file_->ReadPage(page_id, &view);
    if (!st.ok()) {
      s.free_frames.push_back(frame);
      return st;
    }
    f.page = page_id;
    f.type = view.type;
    f.next_page = view.next_page;
    f.payload_len = static_cast<uint32_t>(view.payload.size());
    std::memcpy(f.data.data(), view.payload.data(), view.payload.size());
    f.dirty = false;
    f.mapped = true;
    s.map[page_id] = frame;
  }

  Frame& f = s.frames[frame];
  ++f.pins;
  pinned_.fetch_add(1, std::memory_order_relaxed);
  TouchLocked(s, frame);

  PageRef ref;
  ref.cache_ = this;
  ref.shard_ = shard_idx;
  ref.frame_ = frame;
  ref.payload_ = std::string_view(f.data.data(), f.payload_len);
  ref.type_ = f.type;
  ref.next_page_ = f.next_page;
  return ref;
}

void BufferCache::Unpin(size_t shard, size_t frame) {
  Shard& s = shards_[shard];
  MutexLock lock(s.mu);
  Frame& f = s.frames[frame];
  --f.pins;
  pinned_.fetch_sub(1, std::memory_order_relaxed);
  if (f.pins == 0 && !f.mapped) {
    // Last pin on an orphaned frame (its page was rewritten or invalidated
    // while we held it): the frame returns to the free pool.
    f.page = PageFile::kNoPage;
    f.dirty = false;
    s.free_frames.push_back(frame);
  }
}

api::Status BufferCache::Write(uint32_t page_id, uint8_t type,
                               uint32_t next_page, std::string_view payload) {
  if (payload.size() > file_->payload_capacity()) {
    return api::Status::InvalidArgument(
        "buffer cache: payload exceeds page capacity");
  }
  Shard& s = shard_of(page_id);
  MutexLock lock(s.mu);

  auto it = s.map.find(page_id);
  if (it != s.map.end() && s.frames[it->second].pins == 0) {
    // In place: nobody can observe the bytes mid-update (readers must pin
    // under this same lock first).
    Frame& f = s.frames[it->second];
    f.type = type;
    f.next_page = next_page;
    f.payload_len = static_cast<uint32_t>(payload.size());
    std::memcpy(f.data.data(), payload.data(), payload.size());
    f.dirty = true;
    TouchLocked(s, it->second);
    return api::Status::Ok();
  }

  // Copy-on-write: the resident frame is pinned (live readers hold views of
  // its bytes), so fill a fresh frame and remap the page. The old frame is
  // orphaned — off the map and the LRU — and is reclaimed at last Unpin.
  api::StatusOr<size_t> claimed = ClaimFrameLocked(s);
  if (!claimed.ok()) return claimed.status();
  const size_t frame = claimed.value();

  if (it != s.map.end()) {
    Frame& old = s.frames[it->second];
    old.mapped = false;
    old.dirty = false;  // superseded; its bytes must never be written back
    UnlinkLruLocked(s, it->second);
    s.map.erase(it);
  }

  Frame& f = s.frames[frame];
  f.page = page_id;
  f.type = type;
  f.next_page = next_page;
  f.payload_len = static_cast<uint32_t>(payload.size());
  std::memcpy(f.data.data(), payload.data(), payload.size());
  f.dirty = true;
  f.mapped = true;
  s.map[page_id] = frame;
  TouchLocked(s, frame);
  return api::Status::Ok();
}

api::Status BufferCache::FlushAll() {
  for (Shard& s : shards_) {
    MutexLock lock(s.mu);
    for (size_t frame = 0; frame < s.frames.size(); ++frame) {
      if (!s.frames[frame].mapped) continue;
      api::Status st = WriteBackLocked(s, frame);
      if (!st.ok()) return st;
    }
  }
  return api::Status::Ok();
}

void BufferCache::Invalidate(uint32_t page_id) {
  Shard& s = shard_of(page_id);
  MutexLock lock(s.mu);
  auto it = s.map.find(page_id);
  if (it == s.map.end()) return;
  const size_t frame = it->second;
  Frame& f = s.frames[frame];
  f.mapped = false;
  f.dirty = false;  // freed page: its contents are dead, never write back
  UnlinkLruLocked(s, frame);
  s.map.erase(it);
  if (f.pins == 0) {
    f.page = PageFile::kNoPage;
    s.free_frames.push_back(frame);
  }
  // else: orphaned; the last Unpin returns it to the free pool.
}

BufferCacheStats BufferCache::stats() const {
  BufferCacheStats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  st.write_backs = write_backs_.load(std::memory_order_relaxed);
  st.pinned_pages = pinned_.load(std::memory_order_relaxed);
  return st;
}

}  // namespace strg::storage
