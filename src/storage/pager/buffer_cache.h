#ifndef STRG_STORAGE_PAGER_BUFFER_CACHE_H_
#define STRG_STORAGE_PAGER_BUFFER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "api/status.h"
#include "storage/pager/page_file.h"
#include "util/sync.h"

namespace strg::storage {

/// Scrape-style counters (all relaxed atomics; see ServerMetrics for the
/// memory-order policy they follow). `pinned_pages` is a gauge — the number
/// of outstanding pins right now; everything else is monotone.
struct BufferCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t write_backs = 0;
  uint64_t pinned_pages = 0;

  double HitRate() const {
    return hits + misses == 0
               ? 0.0
               : static_cast<double>(hits) /
                     static_cast<double>(hits + misses);
  }
};

/// Sharded LRU buffer cache over page frames — the RAM half of the
/// out-of-core engine.
///
/// Budget: the cache allocates max(shards, capacity_bytes / page_size)
/// fixed frames at construction and never grows, so resident page memory is
/// bounded by the configured budget no matter how large the backing file
/// gets. A page id hashes to one shard; each shard owns its frames, its
/// page->frame map, and its LRU list under one strg::Mutex.
///
/// Pin protocol: Pin() returns an RAII PageRef whose view stays valid until
/// it is destroyed; a pinned frame is never evicted and never mutated.
/// Writes to a page whose frame is currently pinned go to a *fresh* frame
/// and remap the page (frame-granularity copy-on-write): live readers keep
/// their old, immutable view, new readers see the new bytes. The old frame
/// is orphaned — unmapped but pinned — and returns to the free pool when
/// its last pin drops. This is what makes concurrent query reads race-free
/// against writer appends without a reader-writer lock on the bytes.
///
/// Eviction: strict LRU over unpinned resident frames; a dirty victim is
/// written back to the PageFile first (write_backs counter). When every
/// frame is pinned, Pin fails with kOverloaded — the cache budget is a hard
/// bound, so the caller sheds load instead of silently growing.
///
/// Validity mask: Invalidate(page) unmaps a freed page's frame (without
/// write-back — the page's contents are dead); a pinned frame is orphaned
/// exactly as in the copy-on-write path.
class BufferCache {
 public:
  BufferCache(PageFile* file, uint64_t capacity_bytes, size_t shards);

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  class PageRef {
   public:
    PageRef() = default;
    ~PageRef() { Release(); }
    PageRef(PageRef&& other) noexcept { *this = std::move(other); }
    PageRef& operator=(PageRef&& other) noexcept;
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;

    /// The page's used payload bytes, valid while this ref lives. No copy:
    /// the view aliases the resident frame.
    std::string_view payload() const { return payload_; }
    uint8_t type() const { return type_; }
    uint32_t next_page() const { return next_page_; }
    bool valid() const { return cache_ != nullptr; }

   private:
    friend class BufferCache;
    void Release();

    BufferCache* cache_ = nullptr;
    size_t shard_ = 0;
    size_t frame_ = 0;
    std::string_view payload_;
    uint8_t type_ = 0;
    uint32_t next_page_ = PageFile::kNoPage;
  };

  /// Pins `page_id` resident (reading it from the PageFile on a miss) and
  /// returns a stable view. kOverloaded when every frame in the page's
  /// shard is pinned (cache budget exhausted); I/O and CRC failures pass
  /// through from PageFile::ReadPage.
  api::StatusOr<PageRef> Pin(uint32_t page_id) STRG_EXCLUDES_DYNAMIC(Shard::mu);

  /// Writes a page *through the cache*: the frame is updated (or COW-swapped
  /// if pinned) and marked dirty; bytes reach the PageFile at eviction or
  /// FlushAll. The caller must serialize writes to the same page (the
  /// record store's writer mutex does).
  api::Status Write(uint32_t page_id, uint8_t type, uint32_t next_page,
                    std::string_view payload) STRG_EXCLUDES_DYNAMIC(Shard::mu);

  /// Write-back of every dirty resident frame (fsync is the PageFile
  /// owner's job — Sync there after flushing here).
  api::Status FlushAll() STRG_EXCLUDES_DYNAMIC(Shard::mu);

  /// Drops `page_id` from the cache without write-back (the page was
  /// freed); live pins keep their orphaned frame until released.
  void Invalidate(uint32_t page_id) STRG_EXCLUDES_DYNAMIC(Shard::mu);

  BufferCacheStats stats() const STRG_EXCLUDES_DYNAMIC(Shard::mu);

  size_t num_frames() const { return num_frames_; }
  /// Hard bound on resident page payload memory, by construction.
  size_t resident_bytes() const { return num_frames_ * file_->page_size(); }

 private:
  struct Frame {
    uint32_t page = PageFile::kNoPage;  ///< kNoPage: free slot
    uint32_t pins = 0;
    bool dirty = false;
    bool mapped = false;  ///< in the shard map (false: free or orphaned)
    uint8_t type = 0;
    uint32_t next_page = PageFile::kNoPage;
    uint32_t payload_len = 0;
    std::string data;  ///< payload_capacity bytes, allocated once
  };

  struct Shard {
    Mutex mu{LockRank::kBufferCache};
    std::unordered_map<uint32_t, size_t> map STRG_GUARDED_BY(mu);
    std::vector<Frame> frames STRG_GUARDED_BY(mu);
    /// Free frame indices (never resident) + LRU list of resident frames,
    /// most-recent first. Orphaned frames appear in neither.
    std::vector<size_t> free_frames STRG_GUARDED_BY(mu);
    std::list<size_t> lru STRG_GUARDED_BY(mu);
    std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos
        STRG_GUARDED_BY(mu);
  };

  Shard& shard_of(uint32_t page_id) {
    return shards_[page_id % shards_.size()];
  }

  /// Claims a writable frame: a free slot, else the LRU unpinned resident
  /// frame (written back if dirty, then unmapped). Returns the frame index
  /// or an error when all frames are pinned.
  api::StatusOr<size_t> ClaimFrameLocked(Shard& s) STRG_REQUIRES(s.mu);
  void TouchLocked(Shard& s, size_t frame) STRG_REQUIRES(s.mu);
  void UnlinkLruLocked(Shard& s, size_t frame) STRG_REQUIRES(s.mu);
  api::Status WriteBackLocked(Shard& s, size_t frame) STRG_REQUIRES(s.mu);
  void Unpin(size_t shard, size_t frame);

  PageFile* const file_;
  size_t num_frames_ = 0;
  std::vector<Shard> shards_;

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> evictions_{0};
  mutable std::atomic<uint64_t> write_backs_{0};
  mutable std::atomic<uint64_t> pinned_{0};
};

}  // namespace strg::storage

#endif  // STRG_STORAGE_PAGER_BUFFER_CACHE_H_
