#include "storage/pager/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "storage/crc32c.h"
#include "storage/serializer.h"

namespace strg::storage {

namespace {

api::Status Errno(const std::string& what, const std::string& path) {
  return api::Status::IoError(what + " " + path + ": " +
                              std::strerror(errno));
}

// Page header field offsets (see the layout comment in page_file.h).
constexpr size_t kCrcOff = 0;
constexpr size_t kTypeOff = 4;
constexpr size_t kNextOff = 8;
constexpr size_t kLenOff = 12;

}  // namespace

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

api::StatusOr<std::unique_ptr<PageFile>> PageFile::Create(
    const std::string& path, size_t page_size) {
  if (page_size < kMinPageSize || page_size > (64u << 20)) {
    return api::Status::InvalidArgument(
        "page file: page_size out of range: " + std::to_string(page_size));
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("page file: create of", path);

  std::unique_ptr<PageFile> file(new PageFile());
  file->path_ = path;
  file->fd_ = fd;
  file->page_size_ = page_size;
  file->num_pages_.store(1, std::memory_order_relaxed);  // header page
  api::Status st = file->WriteHeader();
  if (!st.ok()) return st;
  return file;
}

api::StatusOr<std::unique_ptr<PageFile>> PageFile::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    if (errno == ENOENT) {
      return api::Status::NotFound("page file: no such file: " + path);
    }
    return Errno("page file: open of", path);
  }
  std::unique_ptr<PageFile> file(new PageFile());
  file->path_ = path;
  file->fd_ = fd;

  // The header page must be read before page_size_ is known: peek at the
  // fixed-width prefix, validate, then re-check the CRC over the real size.
  char prefix[kPageHeaderBytes + 32];
  ssize_t n = ::pread(fd, prefix, sizeof(prefix), 0);
  if (n < static_cast<ssize_t>(kPageHeaderBytes + 12)) {
    return api::Status::Corruption("page file: truncated header page: " +
                                   path);
  }
  const char* body = prefix + kPageHeaderBytes;
  if (GetLe32(body) != kMagic) {
    return api::Status::Corruption("page file: bad magic: " + path);
  }
  if (GetLe32(body + 4) != kVersion) {
    return api::Status::Corruption("page file: unsupported version: " + path);
  }
  const uint32_t page_size = GetLe32(body + 8);
  if (page_size < kMinPageSize || page_size > (64u << 20)) {
    return api::Status::Corruption("page file: absurd page size: " + path);
  }
  file->page_size_ = page_size;
  file->num_pages_.store(1, std::memory_order_relaxed);

  PageView header;
  api::Status st = file->ReadPage(0, &header);
  if (!st.ok()) return st;
  if (header.type != kHeaderPage) {
    return api::Status::Corruption("page file: page 0 is not a header: " +
                                   path);
  }
  // The Reader signals truncation by exception; the payload already passed
  // its CRC, so a decode failure here is real corruption, not a torn write.
  try {
    Reader r(header.payload);
    r.GetU32();  // magic (validated above)
    r.GetU32();  // version
    r.GetU32();  // page_size
    file->num_pages_.store(r.GetU64(), std::memory_order_relaxed);
    file->free_head_ = r.GetU32();
    file->free_count_ = r.GetU64();
    file->root_ = r.GetU64();
  } catch (const std::out_of_range&) {
    return api::Status::Corruption("page file: truncated header payload: " +
                                   path);
  }
  if (file->num_pages() == 0) {
    return api::Status::Corruption("page file: header claims zero pages: " +
                                   path);
  }
  return file;
}

api::Status PageFile::WriteRaw(uint32_t page_id, const char* data) const {
  size_t done = 0;
  const off_t base = static_cast<off_t>(page_id) *
                     static_cast<off_t>(page_size_);
  while (done < page_size_) {
    ssize_t n = ::pwrite(fd_, data + done, page_size_ - done,
                         base + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("page file: write to", path_);
    }
    done += static_cast<size_t>(n);
  }
  return api::Status::Ok();
}

api::Status PageFile::WritePage(uint32_t page_id, uint8_t type,
                                uint32_t next_page,
                                std::string_view payload) {
  if (payload.size() > payload_capacity()) {
    return api::Status::InvalidArgument("page file: payload exceeds capacity");
  }
  if (page_id >= num_pages()) {
    return api::Status::InvalidArgument("page file: write past allocation");
  }
  std::string frame(page_size_, '\0');
  frame[kTypeOff] = static_cast<char>(type);
  PutLe32(frame.data() + kNextOff, next_page);
  PutLe32(frame.data() + kLenOff, static_cast<uint32_t>(payload.size()));
  std::memcpy(frame.data() + kPageHeaderBytes, payload.data(),
              payload.size());
  PutLe32(frame.data() + kCrcOff,
          Crc32c(frame.data() + kTypeOff, page_size_ - kTypeOff));
  return WriteRaw(page_id, frame.data());
}

api::Status PageFile::ReadPage(uint32_t page_id, PageView* out) const {
  if (page_id >= num_pages()) {
    return api::Status::InvalidArgument(
        "page file: read past allocation: page " + std::to_string(page_id));
  }
  std::string frame(page_size_, '\0');
  size_t done = 0;
  const off_t base = static_cast<off_t>(page_id) *
                     static_cast<off_t>(page_size_);
  while (done < page_size_) {
    ssize_t n = ::pread(fd_, frame.data() + done, page_size_ - done,
                        base + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("page file: read of", path_);
    }
    if (n == 0) {
      return api::Status::IoError("page file: short read (page " +
                                  std::to_string(page_id) + " of " + path_ +
                                  ")");
    }
    done += static_cast<size_t>(n);
  }
  const uint32_t want = GetLe32(frame.data() + kCrcOff);
  const uint32_t got = Crc32c(frame.data() + kTypeOff,
                              page_size_ - kTypeOff);
  if (want != got) {
    return api::Status::Corruption("page file: CRC mismatch on page " +
                                   std::to_string(page_id) + " of " + path_);
  }
  const uint32_t len = GetLe32(frame.data() + kLenOff);
  if (len > payload_capacity()) {
    return api::Status::Corruption("page file: absurd payload length on "
                                   "page " + std::to_string(page_id));
  }
  out->type = static_cast<uint8_t>(frame[kTypeOff]);
  out->next_page = GetLe32(frame.data() + kNextOff);
  out->payload.assign(frame.data() + kPageHeaderBytes, len);
  return api::Status::Ok();
}

api::StatusOr<uint32_t> PageFile::Allocate() {
  if (free_head_ != kNoPage) {
    const uint32_t page = free_head_;
    PageView view;
    api::Status st = ReadPage(page, &view);
    if (!st.ok()) return st;
    if (view.type != kFreePage) {
      return api::Status::Corruption("page file: free list points at a "
                                     "non-free page " + std::to_string(page));
    }
    free_head_ = view.next_page;
    --free_count_;
    return page;
  }
  const uint64_t page = num_pages_.fetch_add(1, std::memory_order_relaxed);
  if (page > kNoPage - 2) {
    return api::Status::InvalidArgument("page file: page id space exhausted");
  }
  // Materialize the page now so a torn crash leaves a CRC-valid (empty)
  // page rather than a hole.
  api::Status st = WritePage(static_cast<uint32_t>(page), kFreePage, kNoPage,
                             {});
  if (!st.ok()) return st;
  return static_cast<uint32_t>(page);
}

api::Status PageFile::Free(uint32_t page_id) {
  if (page_id == 0 || page_id >= num_pages()) {
    return api::Status::InvalidArgument("page file: cannot free page " +
                                        std::to_string(page_id));
  }
  api::Status st = WritePage(page_id, kFreePage, free_head_, {});
  if (!st.ok()) return st;
  free_head_ = page_id;
  ++free_count_;
  return api::Status::Ok();
}

api::Status PageFile::WriteHeader() {
  Writer w;
  w.PutU32(kMagic);
  w.PutU32(kVersion);
  w.PutU32(static_cast<uint32_t>(page_size_));
  w.PutU64(num_pages());
  w.PutU32(free_head_);
  w.PutU64(free_count_);
  w.PutU64(root_);
  return WritePage(0, kHeaderPage, kNoPage, w.bytes());
}

api::Status PageFile::Sync() {
  api::Status st = WriteHeader();
  if (!st.ok()) return st;
  if (::fsync(fd_) != 0) return Errno("page file: fsync of", path_);
  return api::Status::Ok();
}

}  // namespace strg::storage
