#ifndef STRG_STORAGE_PAGER_PAGE_FILE_H_
#define STRG_STORAGE_PAGER_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "api/status.h"

namespace strg::storage {

/// Fixed-size-page file — the on-disk half of the out-of-core engine.
///
/// File layout: page 0 is the header page; pages 1..num_pages-1 are data,
/// overflow, or free pages. Every page carries the same 16-byte header:
///
///     [u32 crc32c over bytes 4..page_size)   -- torn-write detection
///     [u8  page type][u8 x 3 reserved]
///     [u32 next_page]    -- overflow chain / free list link (kNoPage: none)
///     [u32 payload_len]  -- used payload bytes
///     [payload ... zero-padded to page_size]
///
/// The CRC covers type, link, length, and the whole padded payload, so a
/// page that was half-written at crash time (or hit by a bit flip) fails
/// validation as kCorruption instead of parsing garbage — the same contract
/// the WAL gives its records, via the same storage::Crc32c.
///
/// The header page's payload records magic/version/page_size, the allocator
/// state (num_pages, free list head + count), and one caller-owned root
/// locator (the record id of the PagedRecordStore's root record).
///
/// Concurrency: ReadPage is safe from any thread (positional pread; the
/// bounds check reads an atomic page count). All mutation — Allocate, Free,
/// WritePage, WriteHeader, set_root, Sync — must be externally serialized
/// by the owner (PagedRecordStore holds them under its mutex), mirroring
/// how WalWriter is owned by one writer protocol.
class PageFile {
 public:
  static constexpr uint32_t kMagic = 0x53545047;  // "STPG"
  static constexpr uint32_t kVersion = 1;
  static constexpr uint32_t kNoPage = 0xFFFFFFFFu;
  static constexpr size_t kPageHeaderBytes = 16;
  static constexpr size_t kMinPageSize = 64;
  static constexpr uint64_t kNoRoot = ~0ull;

  enum PageType : uint8_t {
    kHeaderPage = 1,
    kDataPage = 2,
    kOverflowPage = 3,
    kFreePage = 4,
  };

  /// One decoded page: type, chain link, and the used payload bytes.
  struct PageView {
    uint8_t type = 0;
    uint32_t next_page = kNoPage;
    std::string payload;
  };

  ~PageFile();
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Creates (truncating any existing file) a fresh page file holding only
  /// its header page.
  static api::StatusOr<std::unique_ptr<PageFile>> Create(
      const std::string& path, size_t page_size);

  /// Opens an existing page file, validating the header page's CRC, magic,
  /// and version (kCorruption on any mismatch).
  static api::StatusOr<std::unique_ptr<PageFile>> Open(
      const std::string& path);

  size_t page_size() const { return page_size_; }
  size_t payload_capacity() const { return page_size_ - kPageHeaderBytes; }
  const std::string& path() const { return path_; }

  uint64_t num_pages() const {
    return num_pages_.load(std::memory_order_relaxed);
  }
  uint32_t free_head() const { return free_head_; }
  uint64_t free_count() const { return free_count_; }

  /// Caller-owned root locator, persisted in the header page on Sync().
  uint64_t root() const { return root_; }
  void set_root(uint64_t root) { root_ = root; }

  /// Hands out a page id: pops the free list if possible, otherwise extends
  /// the file. The caller must WritePage it before it is readable.
  api::StatusOr<uint32_t> Allocate();

  /// Returns a page to the free list (writes it as a kFreePage linking to
  /// the previous head).
  api::Status Free(uint32_t page_id);

  /// Frames `payload` into a full page image (type + link + CRC, zero
  /// padding) and writes it at `page_id`.
  api::Status WritePage(uint32_t page_id, uint8_t type, uint32_t next_page,
                        std::string_view payload);

  /// Reads + validates one page. CRC mismatch (a torn write, a bit flip) is
  /// kCorruption; a short read past the allocated range is kIoError.
  api::Status ReadPage(uint32_t page_id, PageView* out) const;

  /// Persists the header page (allocator state + root locator).
  api::Status WriteHeader();

  /// WriteHeader + fsync: everything written so far is on stable storage.
  api::Status Sync();

 private:
  PageFile() = default;

  api::Status WriteRaw(uint32_t page_id, const char* data) const;

  std::string path_;
  int fd_ = -1;
  size_t page_size_ = 0;
  /// Atomic so concurrent readers can bounds-check while the (serialized)
  /// writer extends the file; monotone, relaxed is enough.
  std::atomic<uint64_t> num_pages_{0};
  uint32_t free_head_ = kNoPage;
  uint64_t free_count_ = 0;
  uint64_t root_ = kNoRoot;
};

}  // namespace strg::storage

#endif  // STRG_STORAGE_PAGER_PAGE_FILE_H_
