#include "storage/pager/paged_record_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "storage/crc32c.h"

namespace strg::storage {

namespace {

// Slot header: [u8 record_type][u8 flags][u32 len], then len bytes.
constexpr size_t kSlotHeaderBytes = 6;
constexpr uint8_t kInline = 0;
constexpr uint8_t kChained = 1;
constexpr uint8_t kDead = 2;

// Chained-slot stub payload: [u32 overflow head page][u64 total length].
constexpr size_t kChainStubBytes = 12;

constexpr uint64_t kMaxSlot = 0xFFFF;

uint32_t PageOf(uint64_t record_id) {
  return static_cast<uint32_t>(record_id >> 16);
}
uint32_t SlotOf(uint64_t record_id) {
  return static_cast<uint32_t>(record_id & kMaxSlot);
}

/// Walks the slot sequence in `payload` to slot `slot`. Returns the byte
/// offset of its header, or SIZE_MAX when the page has fewer slots.
size_t FindSlot(std::string_view payload, uint32_t slot) {
  size_t off = 0;
  for (uint32_t i = 0; i < slot; ++i) {
    if (off + kSlotHeaderBytes > payload.size()) return SIZE_MAX;
    off += kSlotHeaderBytes + GetLe32(payload.data() + off + 2);
  }
  if (off + kSlotHeaderBytes > payload.size()) return SIZE_MAX;
  return off;
}

}  // namespace

api::StatusOr<std::unique_ptr<PagedRecordStore>> PagedRecordStore::Wrap(
    api::StatusOr<std::unique_ptr<PageFile>> file,
    const StorageParams& params) {
  if (!file.ok()) return file.status();
  std::unique_ptr<PagedRecordStore> store(new PagedRecordStore());
  store->file_ = std::move(file).value();
  store->cache_ = std::make_unique<BufferCache>(
      store->file_.get(), params.cache_bytes, params.cache_shards);
  return store;
}

api::StatusOr<std::unique_ptr<PagedRecordStore>> PagedRecordStore::Create(
    const std::string& path, const StorageParams& params) {
  return Wrap(PageFile::Create(path, params.page_size), params);
}

api::StatusOr<std::unique_ptr<PagedRecordStore>> PagedRecordStore::Open(
    const std::string& path, const StorageParams& params) {
  return Wrap(PageFile::Open(path), params);
}

api::Status PagedRecordStore::RollTailLocked() {
  api::StatusOr<uint32_t> page = file_->Allocate();
  if (!page.ok()) return page.status();
  tail_page_ = page.value();
  tail_slots_ = 0;
  tail_buf_.clear();
  return api::Status::Ok();
}

api::StatusOr<uint32_t> PagedRecordStore::WriteOverflowChainLocked(
    std::string_view bytes) {
  const size_t cap = file_->payload_capacity();
  const size_t n_pages = (bytes.size() + cap - 1) / cap;

  // Allocate the whole chain up front so each page can link forward.
  std::vector<uint32_t> pages(n_pages);
  for (size_t i = 0; i < n_pages; ++i) {
    api::StatusOr<uint32_t> page = file_->Allocate();
    if (!page.ok()) return page.status();
    pages[i] = page.value();
  }
  for (size_t i = 0; i < n_pages; ++i) {
    const size_t off = i * cap;
    const size_t len = std::min(cap, bytes.size() - off);
    const uint32_t next =
        i + 1 < n_pages ? pages[i + 1] : PageFile::kNoPage;
    api::Status st = cache_->Write(pages[i], PageFile::kOverflowPage, next,
                                   bytes.substr(off, len));
    if (!st.ok()) return st;
  }
  return pages[0];
}

api::StatusOr<uint64_t> PagedRecordStore::Append(uint8_t record_type,
                                                 std::string_view bytes) {
  MutexLock lock(mu_);
  const size_t cap = file_->payload_capacity();

  const bool inlined = kSlotHeaderBytes + bytes.size() <= cap;
  const size_t slot_payload =
      inlined ? bytes.size() : kChainStubBytes;

  if (tail_page_ == PageFile::kNoPage ||
      tail_buf_.size() + kSlotHeaderBytes + slot_payload > cap ||
      tail_slots_ > kMaxSlot) {
    api::Status st = RollTailLocked();
    if (!st.ok()) return st;
  }

  std::string stub;
  std::string_view slot_bytes = bytes;
  if (!inlined) {
    api::StatusOr<uint32_t> head = WriteOverflowChainLocked(bytes);
    if (!head.ok()) return head.status();
    stub.resize(kChainStubBytes);
    PutLe32(stub.data(), head.value());
    // Total length, little-endian u64 (two u32 halves keeps the helper set
    // small).
    PutLe32(stub.data() + 4, static_cast<uint32_t>(bytes.size()));
    PutLe32(stub.data() + 8, static_cast<uint32_t>(bytes.size() >> 32));
    slot_bytes = stub;
  }

  const uint32_t slot = tail_slots_;
  const size_t off = tail_buf_.size();
  tail_buf_.resize(off + kSlotHeaderBytes + slot_bytes.size());
  tail_buf_[off] = static_cast<char>(record_type);
  tail_buf_[off + 1] = static_cast<char>(inlined ? kInline : kChained);
  PutLe32(tail_buf_.data() + off + 2,
          static_cast<uint32_t>(slot_bytes.size()));
  std::memcpy(tail_buf_.data() + off + kSlotHeaderBytes, slot_bytes.data(),
              slot_bytes.size());
  ++tail_slots_;

  api::Status st = cache_->Write(tail_page_, PageFile::kDataPage,
                                 PageFile::kNoPage, tail_buf_);
  if (!st.ok()) return st;
  return (static_cast<uint64_t>(tail_page_) << 16) | slot;
}

api::StatusOr<PagedRecordStore::RecordRef> PagedRecordStore::Read(
    uint64_t record_id) {
  if (record_id == kNoRecord) {
    return api::Status::InvalidArgument("record store: read of kNoRecord");
  }
  const uint32_t page = PageOf(record_id);
  const uint32_t slot = SlotOf(record_id);

  api::StatusOr<BufferCache::PageRef> pin = cache_->Pin(page);
  if (!pin.ok()) return pin.status();
  BufferCache::PageRef ref = std::move(pin).value();
  if (ref.type() != PageFile::kDataPage) {
    return api::Status::NotFound("record store: page " + std::to_string(page) +
                                 " holds no records");
  }
  const std::string_view payload = ref.payload();
  const size_t off = FindSlot(payload, slot);
  if (off == SIZE_MAX) {
    return api::Status::NotFound("record store: no slot " +
                                 std::to_string(slot) + " on page " +
                                 std::to_string(page));
  }
  const uint8_t type = static_cast<uint8_t>(payload[off]);
  const uint8_t flags = static_cast<uint8_t>(payload[off + 1]);
  const uint32_t len = GetLe32(payload.data() + off + 2);
  if (off + kSlotHeaderBytes + len > payload.size()) {
    return api::Status::Corruption("record store: slot overruns page " +
                                   std::to_string(page));
  }
  if (flags == kDead) {
    return api::Status::NotFound("record store: record " +
                                 std::to_string(record_id) + " was deleted");
  }

  RecordRef out;
  out.type_ = type;
  if (flags == kInline) {
    out.pin_ = std::move(ref);
    out.offset_ = off + kSlotHeaderBytes;
    out.len_ = len;
    return out;
  }
  if (flags != kChained || len != kChainStubBytes) {
    return api::Status::Corruption("record store: bad slot flags on page " +
                                   std::to_string(page));
  }

  // Chained: assemble the overflow pages into an owned buffer, releasing
  // each pin as soon as its chunk is copied.
  const char* stub = payload.data() + off + kSlotHeaderBytes;
  uint32_t next = GetLe32(stub);
  const uint64_t total = static_cast<uint64_t>(GetLe32(stub + 4)) |
                         (static_cast<uint64_t>(GetLe32(stub + 8)) << 32);
  ref = BufferCache::PageRef();  // drop the data-page pin before chasing

  out.owned_.reserve(total);
  while (next != PageFile::kNoPage && out.owned_.size() < total) {
    api::StatusOr<BufferCache::PageRef> chunk = cache_->Pin(next);
    if (!chunk.ok()) return chunk.status();
    if (chunk.value().type() != PageFile::kOverflowPage) {
      return api::Status::Corruption(
          "record store: overflow chain hit a non-overflow page " +
          std::to_string(next));
    }
    out.owned_.append(chunk.value().payload());
    next = chunk.value().next_page();
  }
  if (out.owned_.size() != total) {
    return api::Status::Corruption("record store: overflow chain for record " +
                                   std::to_string(record_id) +
                                   " is short: got " +
                                   std::to_string(out.owned_.size()) +
                                   " of " + std::to_string(total) + " bytes");
  }
  out.offset_ = 0;
  out.len_ = out.owned_.size();
  return out;
}

api::Status PagedRecordStore::FreeOverflowChainLocked(uint32_t head) {
  uint32_t next = head;
  while (next != PageFile::kNoPage) {
    uint32_t following;
    {
      api::StatusOr<BufferCache::PageRef> pin = cache_->Pin(next);
      if (!pin.ok()) return pin.status();
      following = pin.value().next_page();
    }  // unpin before invalidating
    cache_->Invalidate(next);
    api::Status st = file_->Free(next);
    if (!st.ok()) return st;
    next = following;
  }
  return api::Status::Ok();
}

api::Status PagedRecordStore::Delete(uint64_t record_id) {
  MutexLock lock(mu_);
  const uint32_t page = PageOf(record_id);
  const uint32_t slot = SlotOf(record_id);

  // Snapshot the page bytes (the tail page's truth is tail_buf_; any other
  // page's is the cache/file).
  std::string payload;
  if (page == tail_page_) {
    payload = tail_buf_;
  } else {
    api::StatusOr<BufferCache::PageRef> pin = cache_->Pin(page);
    if (!pin.ok()) return pin.status();
    if (pin.value().type() != PageFile::kDataPage) {
      return api::Status::NotFound("record store: page " +
                                   std::to_string(page) +
                                   " holds no records");
    }
    payload = std::string(pin.value().payload());
  }

  const size_t off = FindSlot(payload, slot);
  if (off == SIZE_MAX) {
    return api::Status::NotFound("record store: no slot " +
                                 std::to_string(slot) + " on page " +
                                 std::to_string(page));
  }
  const uint8_t flags = static_cast<uint8_t>(payload[off + 1]);
  if (flags == kDead) return api::Status::Ok();  // idempotent
  if (flags == kChained) {
    const char* stub = payload.data() + off + kSlotHeaderBytes;
    api::Status st = FreeOverflowChainLocked(GetLe32(stub));
    if (!st.ok()) return st;
  }
  payload[off + 1] = static_cast<char>(kDead);

  // A page with nothing live left (and not still being appended to) goes
  // back to the allocator.
  bool any_live = false;
  for (size_t p = 0; p + kSlotHeaderBytes <= payload.size();
       p += kSlotHeaderBytes + GetLe32(payload.data() + p + 2)) {
    if (static_cast<uint8_t>(payload[p + 1]) != kDead) {
      any_live = true;
      break;
    }
  }
  if (!any_live && page != tail_page_) {
    cache_->Invalidate(page);
    return file_->Free(page);
  }

  if (page == tail_page_) tail_buf_ = payload;
  return cache_->Write(page, PageFile::kDataPage, PageFile::kNoPage, payload);
}

api::Status PagedRecordStore::Commit() {
  MutexLock lock(mu_);
  api::Status st = cache_->FlushAll();
  if (!st.ok()) return st;
  return file_->Sync();
}

void PagedRecordStore::SetRoot(uint64_t record_id) {
  MutexLock lock(mu_);
  file_->set_root(record_id);
}

uint64_t PagedRecordStore::Root() const { return file_->root(); }

api::StatusOr<PageFileStats> ComputePageFileStats(const std::string& path) {
  api::StatusOr<std::unique_ptr<PageFile>> open = PageFile::Open(path);
  if (!open.ok()) return open.status();
  std::unique_ptr<PageFile> file = std::move(open).value();

  PageFileStats stats;
  stats.page_size = file->page_size();
  stats.num_pages = file->num_pages();
  stats.free_count = file->free_count();
  stats.root = file->root();

  // live_bytes for chained records is credited when the stub is seen (the
  // stub's total length covers the overflow pages).
  uint64_t occupancy[256][2] = {};  // [record_type] -> {count, bytes}

  for (uint64_t p = 1; p < stats.num_pages; ++p) {
    PageFile::PageView view;
    api::Status st = file->ReadPage(static_cast<uint32_t>(p), &view);
    if (!st.ok()) return st;
    switch (view.type) {
      case PageFile::kOverflowPage:
        ++stats.overflow_pages;
        break;
      case PageFile::kFreePage:
        ++stats.free_pages;
        break;
      case PageFile::kDataPage: {
        ++stats.data_pages;
        const std::string& pl = view.payload;
        for (size_t off = 0; off + kSlotHeaderBytes <= pl.size();
             off += kSlotHeaderBytes + GetLe32(pl.data() + off + 2)) {
          const uint8_t type = static_cast<uint8_t>(pl[off]);
          const uint8_t flags = static_cast<uint8_t>(pl[off + 1]);
          const uint32_t len = GetLe32(pl.data() + off + 2);
          if (flags == kDead) {
            ++stats.dead_slots;
          } else if (flags == kChained && len == kChainStubBytes) {
            const char* stub = pl.data() + off + kSlotHeaderBytes;
            ++occupancy[type][0];
            occupancy[type][1] +=
                static_cast<uint64_t>(GetLe32(stub + 4)) |
                (static_cast<uint64_t>(GetLe32(stub + 8)) << 32);
          } else {
            ++occupancy[type][0];
            occupancy[type][1] += len;
          }
        }
        break;
      }
      default:
        return api::Status::Corruption("page file: unexpected page type " +
                                       std::to_string(view.type) +
                                       " at page " + std::to_string(p));
    }
  }

  // Walk the free list to cross-check the header's count.
  uint32_t next = file->free_head();
  while (next != PageFile::kNoPage &&
         stats.free_list_len <= stats.num_pages) {
    PageFile::PageView view;
    api::Status st = file->ReadPage(next, &view);
    if (!st.ok()) return st;
    if (view.type != PageFile::kFreePage) {
      return api::Status::Corruption(
          "page file: free list points at a non-free page " +
          std::to_string(next));
    }
    ++stats.free_list_len;
    next = view.next_page;
  }

  for (int t = 0; t < 256; ++t) {
    if (occupancy[t][0] == 0) continue;
    stats.by_type.push_back({static_cast<uint8_t>(t), occupancy[t][0],
                             occupancy[t][1]});
  }
  return stats;
}

}  // namespace strg::storage
