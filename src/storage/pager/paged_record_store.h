#ifndef STRG_STORAGE_PAGER_PAGED_RECORD_STORE_H_
#define STRG_STORAGE_PAGER_PAGED_RECORD_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/status.h"
#include "storage/pager/buffer_cache.h"
#include "storage/pager/page_file.h"
#include "storage/pager/storage_params.h"
#include "util/sync.h"

namespace strg::storage {

/// Tags identifying what a stored record holds; written into each slot
/// header so a page file can be audited (strgtool stat) without its owner.
enum RecordType : uint8_t {
  kRecOgSequence = 1,   ///< a catalog OG payload
  kRecBackground = 2,   ///< a background-graph payload
  kRecCatalogMeta = 3,  ///< catalog metadata (segment meta, manifest root)
  kRecIndexNode = 4,    ///< an index leaf-entry record (OG distance sequence)
};

/// Record layer over PageFile + BufferCache: append a byte record, get a
/// stable 64-bit id back, read it later with a pin-style zero-copy ref.
///
/// Record id packing: (page_id << 16) | slot_index. Slots live inside data
/// pages as a walk-forward sequence of
///
///     [u8 record_type][u8 flags][u32 len][len bytes]
///
/// entries. A record whose bytes fit in one page is stored inline
/// (flags=kInline). A larger record stores a 12-byte chain stub instead
/// (flags=kChained: u32 overflow head page + u64 total length) and its bytes
/// fill a chain of overflow pages linked through the page-header next_page
/// field. Deleted slots stay in place flagged kDead (ids are never reused
/// within a page); a fully dead non-tail page is returned to the free list.
///
/// Concurrency: Append/Delete/Commit/SetRoot serialize on the store mutex.
/// Read is safe from any thread concurrently with Append — the tail page a
/// writer is extending reaches readers only through BufferCache::Write,
/// whose copy-on-write frames keep every pinned view immutable. Delete is
/// NOT safe concurrently with a reader of the *same* record (the engine
/// deletes only records already unreachable from any live generation).
class PagedRecordStore {
 public:
  static constexpr uint64_t kNoRecord = ~0ull;

  /// A read record. Inline records alias the pinned page frame (zero copy:
  /// the bytes stay valid while this ref lives and pin the frame resident);
  /// chained records are assembled into an owned buffer.
  class RecordRef {
   public:
    std::string_view bytes() const {
      return pin_.valid() ? pin_.payload().substr(offset_, len_)
                          : std::string_view(owned_);
    }
    uint8_t record_type() const { return type_; }

   private:
    friend class PagedRecordStore;
    BufferCache::PageRef pin_;
    std::string owned_;
    size_t offset_ = 0;
    size_t len_ = 0;
    uint8_t type_ = 0;
  };

  /// Creates a fresh store (truncating any existing file at `path`).
  static api::StatusOr<std::unique_ptr<PagedRecordStore>> Create(
      const std::string& path, const StorageParams& params);

  /// Opens an existing store. The old tail page is sealed: the next Append
  /// starts a fresh page (its slack is the cost of not trusting a tail that
  /// may have been mid-append at crash time).
  static api::StatusOr<std::unique_ptr<PagedRecordStore>> Open(
      const std::string& path, const StorageParams& params);

  PagedRecordStore(const PagedRecordStore&) = delete;
  PagedRecordStore& operator=(const PagedRecordStore&) = delete;

  /// Appends a record, returning its id. Durable only after Commit().
  api::StatusOr<uint64_t> Append(uint8_t record_type, std::string_view bytes)
      STRG_EXCLUDES(mu_);

  /// Reads a record by id (kNotFound for dead/never-written slots). Safe
  /// concurrently with Append; see the class comment for the Delete caveat.
  api::StatusOr<RecordRef> Read(uint64_t record_id);

  /// Marks the record dead and frees its overflow chain (and its whole page
  /// once every slot on it is dead).
  api::Status Delete(uint64_t record_id) STRG_EXCLUDES(mu_);

  /// Flushes every dirty cached page and fsyncs the file (header included):
  /// everything appended so far is on stable storage.
  api::Status Commit() STRG_EXCLUDES(mu_);

  /// Caller-owned root record id, persisted in the page-file header at
  /// Commit(). kNoRecord when unset.
  void SetRoot(uint64_t record_id) STRG_EXCLUDES(mu_);
  uint64_t Root() const STRG_EXCLUDES(mu_);

  BufferCacheStats cache_stats() const { return cache_->stats(); }
  BufferCache* cache() { return cache_.get(); }
  const PageFile& file() const { return *file_; }

 private:
  PagedRecordStore() = default;

  static api::StatusOr<std::unique_ptr<PagedRecordStore>> Wrap(
      api::StatusOr<std::unique_ptr<PageFile>> file,
      const StorageParams& params);

  /// Starts a fresh tail data page.
  api::Status RollTailLocked() STRG_REQUIRES(mu_);
  /// Writes `bytes` into a freshly allocated overflow chain; returns its
  /// head page id.
  api::StatusOr<uint32_t> WriteOverflowChainLocked(std::string_view bytes)
      STRG_REQUIRES(mu_);
  api::Status FreeOverflowChainLocked(uint32_t head) STRG_REQUIRES(mu_);

  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferCache> cache_;

  Mutex mu_{LockRank::kRecordStore};
  /// Shadow of the tail data page being appended to. Appends extend this
  /// buffer and write it through the cache, so no append ever needs to pin
  /// (and the COW frame logic keeps concurrent readers safe).
  std::string tail_buf_ STRG_GUARDED_BY(mu_);
  uint32_t tail_page_ STRG_GUARDED_BY(mu_) = PageFile::kNoPage;
  uint32_t tail_slots_ STRG_GUARDED_BY(mu_) = 0;
};

/// Offline audit of a page file (strgtool stat): header fields, page-type
/// counts, free-list length, and live/dead occupancy per record type.
struct PageFileStats {
  size_t page_size = 0;
  uint64_t num_pages = 0;
  uint64_t free_count = 0;     ///< header's free-list length claim
  uint64_t free_list_len = 0;  ///< length found by walking the list
  uint64_t root = PageFile::kNoRoot;
  uint64_t data_pages = 0;
  uint64_t overflow_pages = 0;
  uint64_t free_pages = 0;

  struct TypeOccupancy {
    uint8_t record_type = 0;
    uint64_t live_records = 0;
    uint64_t live_bytes = 0;  ///< payload bytes, overflow included
  };
  std::vector<TypeOccupancy> by_type;
  uint64_t dead_slots = 0;
};

/// Opens `path` read-only and scans every page. kCorruption surfaces the
/// first CRC-invalid page encountered.
api::StatusOr<PageFileStats> ComputePageFileStats(const std::string& path);

}  // namespace strg::storage

#endif  // STRG_STORAGE_PAGER_PAGED_RECORD_STORE_H_
