#ifndef STRG_STORAGE_PAGER_STORAGE_PARAMS_H_
#define STRG_STORAGE_PAGER_STORAGE_PARAMS_H_

#include <cstddef>
#include <cstdint>

namespace strg::storage {

/// A/B knob for the out-of-core storage engine.
///
/// `paged` off (the default) keeps every byte in RAM — bit-identical to the
/// pre-pager behavior. `paged` on routes bulk records (leaf OG sequences,
/// catalog OG/BG payloads) through a PagedRecordStore: a fixed-size-page
/// file on disk fronted by a pinned LRU BufferCache whose resident memory
/// is bounded by `cache_bytes`. Query and ingest results are bit-identical
/// in both modes; only the residency of the bytes changes.
struct StorageParams {
  bool paged = false;

  /// Fixed page size of the store's page files. Small pages make tiny-cache
  /// tests meaningful; 4 KiB matches the filesystem block for production.
  size_t page_size = 4096;

  /// Buffer-cache budget in bytes. The cache allocates
  /// max(cache_shards, cache_bytes / page_size) frames up front and never
  /// grows, so this is a hard bound on resident page memory.
  uint64_t cache_bytes = 8ull << 20;

  /// LRU shard count (locking granularity under concurrent queries).
  size_t cache_shards = 4;
};

}  // namespace strg::storage

#endif  // STRG_STORAGE_PAGER_STORAGE_PARAMS_H_
