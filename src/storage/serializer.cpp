#include "storage/serializer.h"

#include <cstring>
#include <stdexcept>

namespace strg::storage {

void Writer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void Writer::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Writer::PutString(const std::string& s) {
  PutVarint(s.size());
  bytes_.append(s);
}

void Reader::Need(size_t n) const {
  if (pos_ + n > bytes_.size()) {
    throw std::out_of_range("storage::Reader: truncated input");  // NOLINT(strg-no-throw): Reader contract; Catalog translates to kCorruption
  }
}

uint8_t Reader::GetU8() {
  Need(1);
  return static_cast<uint8_t>(bytes_[pos_++]);
}

uint32_t Reader::GetU32() {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(GetU8()) << (8 * i);
  return v;
}

uint64_t Reader::GetU64() {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(GetU8()) << (8 * i);
  return v;
}

uint64_t Reader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (shift > 63) {
      throw std::out_of_range("storage::Reader: varint overflow");  // NOLINT(strg-no-throw): Reader contract; Catalog translates to kCorruption
    }
    uint8_t byte = GetU8();
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

double Reader::GetDouble() {
  uint64_t bits = GetU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::GetString() {
  size_t n = static_cast<size_t>(GetVarint());
  Need(n);
  std::string s(bytes_.substr(pos_, n));
  pos_ += n;
  return s;
}

// ---- Domain-type codecs -------------------------------------------------

void EncodeNodeAttr(const graph::NodeAttr& attr, Writer* w) {
  w->PutDouble(attr.size);
  for (double c : attr.color) w->PutDouble(c);
  w->PutDouble(attr.cx);
  w->PutDouble(attr.cy);
}

graph::NodeAttr DecodeNodeAttr(Reader* r) {
  graph::NodeAttr attr;
  attr.size = r->GetDouble();
  for (double& c : attr.color) c = r->GetDouble();
  attr.cx = r->GetDouble();
  attr.cy = r->GetDouble();
  return attr;
}

void EncodeSequence(const dist::Sequence& seq, Writer* w) {
  w->PutVarint(seq.size());
  for (const dist::FeatureVec& v : seq) {
    for (double x : v) w->PutDouble(x);
  }
}

dist::Sequence DecodeSequence(Reader* r) {
  size_t n = static_cast<size_t>(r->GetVarint());
  if (n > r->remaining() / (8 * dist::kFeatureDim)) {
    throw std::out_of_range("DecodeSequence: length exceeds buffer");  // NOLINT(strg-no-throw): Reader contract; Catalog translates to kCorruption
  }
  dist::Sequence seq(n);
  for (auto& v : seq) {
    for (double& x : v) x = r->GetDouble();
  }
  return seq;
}

void EncodeOg(const core::Og& og, Writer* w) {
  w->PutU32(static_cast<uint32_t>(og.id));
  w->PutU32(static_cast<uint32_t>(og.start_frame));
  w->PutVarint(og.sequence.size());
  for (const graph::NodeAttr& a : og.sequence) EncodeNodeAttr(a, w);
  w->PutVarint(og.member_orgs.size());
  for (size_t m : og.member_orgs) w->PutVarint(m);
}

core::Og DecodeOg(Reader* r) {
  core::Og og;
  og.id = static_cast<int>(r->GetU32());
  og.start_frame = static_cast<int>(r->GetU32());
  size_t n = static_cast<size_t>(r->GetVarint());
  if (n > r->remaining() / 8) {
    throw std::out_of_range("DecodeOg: length exceeds buffer");  // NOLINT(strg-no-throw): Reader contract; Catalog translates to kCorruption
  }
  og.sequence.reserve(n);
  for (size_t i = 0; i < n; ++i) og.sequence.push_back(DecodeNodeAttr(r));
  size_t members = static_cast<size_t>(r->GetVarint());
  if (members > r->remaining() + 1) {
    throw std::out_of_range("DecodeOg: member count exceeds buffer");  // NOLINT(strg-no-throw): Reader contract; Catalog translates to kCorruption
  }
  og.member_orgs.reserve(members);
  for (size_t i = 0; i < members; ++i) {
    og.member_orgs.push_back(static_cast<size_t>(r->GetVarint()));
  }
  return og;
}

void EncodeRag(const graph::Rag& rag, Writer* w) {
  w->PutVarint(rag.NumNodes());
  for (size_t v = 0; v < rag.NumNodes(); ++v) {
    EncodeNodeAttr(rag.node(static_cast<int>(v)), w);
  }
  w->PutVarint(rag.NumEdges());
  for (size_t v = 0; v < rag.NumNodes(); ++v) {
    for (const graph::Rag::Edge& e : rag.Neighbors(static_cast<int>(v))) {
      if (e.to <= static_cast<int>(v)) continue;  // store each edge once
      w->PutVarint(v);
      w->PutVarint(static_cast<uint64_t>(e.to));
      w->PutDouble(e.attr.distance);
      w->PutDouble(e.attr.orientation);
    }
  }
}

graph::Rag DecodeRag(Reader* r) {
  graph::Rag rag;
  size_t nodes = static_cast<size_t>(r->GetVarint());
  if (nodes > r->remaining() / 8) {
    throw std::out_of_range("DecodeRag: node count exceeds buffer");  // NOLINT(strg-no-throw): Reader contract; Catalog translates to kCorruption
  }
  for (size_t v = 0; v < nodes; ++v) rag.AddNode(DecodeNodeAttr(r));
  size_t edges = static_cast<size_t>(r->GetVarint());
  for (size_t e = 0; e < edges; ++e) {
    int a = static_cast<int>(r->GetVarint());
    int b = static_cast<int>(r->GetVarint());
    graph::SpatialEdgeAttr attr;
    attr.distance = r->GetDouble();
    attr.orientation = r->GetDouble();
    rag.AddEdge(a, b, attr);
  }
  return rag;
}

void EncodeBackgroundGraph(const core::BackgroundGraph& bg, Writer* w) {
  EncodeRag(bg.rag, w);
}

core::BackgroundGraph DecodeBackgroundGraph(Reader* r) {
  core::BackgroundGraph bg;
  bg.rag = DecodeRag(r);
  return bg;
}

}  // namespace strg::storage
