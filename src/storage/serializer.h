#ifndef STRG_STORAGE_SERIALIZER_H_
#define STRG_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "distance/sequence.h"
#include "graph/rag.h"
#include "strg/object_graph.h"

namespace strg::storage {

/// Little binary writer: fixed-width little-endian primitives plus
/// varint-length containers. The format is deliberately simple — a video
/// database's OG payloads are append-mostly and read back wholesale.
class Writer {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutVarint(uint64_t v);
  void PutDouble(double v);
  void PutString(const std::string& s);

  const std::string& bytes() const { return bytes_; }
  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Reader over a byte buffer; every getter throws std::out_of_range on
/// truncated input (corrupt files fail loudly, never silently).
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  uint64_t GetVarint();
  double GetDouble();
  std::string GetString();

  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void Need(size_t n) const;
  std::string_view bytes_;
  size_t pos_ = 0;
};

// ---- Domain-type codecs -------------------------------------------------

void EncodeNodeAttr(const graph::NodeAttr& attr, Writer* w);
graph::NodeAttr DecodeNodeAttr(Reader* r);

void EncodeSequence(const dist::Sequence& seq, Writer* w);
dist::Sequence DecodeSequence(Reader* r);

void EncodeOg(const core::Og& og, Writer* w);
core::Og DecodeOg(Reader* r);

void EncodeRag(const graph::Rag& rag, Writer* w);
graph::Rag DecodeRag(Reader* r);

void EncodeBackgroundGraph(const core::BackgroundGraph& bg, Writer* w);
core::BackgroundGraph DecodeBackgroundGraph(Reader* r);

}  // namespace strg::storage

#endif  // STRG_STORAGE_SERIALIZER_H_
