#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "storage/file_io.h"

namespace strg::storage {

namespace {

api::Status Errno(const std::string& what, const std::string& path) {
  return api::Status::IoError(what + " " + path + ": " +
                              std::strerror(errno));
}

/// Full write: retries short writes (regular files rarely short-write, but
/// the loop costs nothing and removes the assumption).
api::Status WriteAll(int fd, const char* data, size_t len,
                     const std::string& path) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("WAL: write to", path);
    }
    done += static_cast<size_t>(n);
  }
  return api::Status::Ok();
}

}  // namespace

api::StatusOr<WalRecovery> RecoverWal(const std::string& path) {
  WalRecovery out;

  api::StatusOr<std::string> read = ReadFileToString(path);
  if (!read.ok()) {
    if (read.status().code() == api::StatusCode::kNotFound) {
      return out;  // no log yet: empty recovery
    }
    return read.status();
  }
  const std::string bytes = std::move(read).value();

  size_t pos = 0;
  while (true) {
    if (bytes.size() - pos < WalWriter::kHeaderBytes) break;  // torn header
    const uint32_t len = GetLe32(bytes.data() + pos);
    const uint32_t crc = GetLe32(bytes.data() + pos + 4);
    if (len > WalWriter::kMaxRecordBytes) break;             // mangled length
    if (bytes.size() - pos - WalWriter::kHeaderBytes < len) break;  // torn
    const char* payload = bytes.data() + pos + WalWriter::kHeaderBytes;
    if (Crc32c(payload, len) != crc) break;  // bit flip / stale frame
    out.records.emplace_back(payload, len);
    pos += WalWriter::kHeaderBytes + len;
  }
  out.valid_bytes = pos;
  out.tail_truncated = pos != bytes.size();

  if (out.tail_truncated) {
    if (::truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
      return Errno("WAL: truncate of", path);
    }
  }
  return out;
}

WalWriter::~WalWriter() { CloseNoSync(); }

WalWriter::WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    CloseNoSync();
    fd_ = std::exchange(other.fd_, -1);
    opts_ = other.opts_;
    records_appended_ = other.records_appended_;
    bytes_appended_ = other.bytes_appended_;
    syncs_ = other.syncs_;
    unsynced_records_ = other.unsynced_records_;
  }
  return *this;
}

void WalWriter::CloseNoSync() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

api::StatusOr<WalWriter> WalWriter::Open(const std::string& path,
                                         WalOptions opts) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("WAL: open of", path);
  WalWriter w;
  w.fd_ = fd;
  w.opts_ = opts;
  return w;
}

api::Status WalWriter::Append(std::string_view payload) {
  if (fd_ < 0) return api::Status::IoError("WAL: writer is closed");
  if (payload.size() > kMaxRecordBytes) {
    return api::Status::InvalidArgument("WAL: record exceeds kMaxRecordBytes");
  }
  // One write per record (header + payload in a single buffer): the kernel
  // appends atomically with respect to our own later reads, and a crash
  // mid-write leaves at most one torn record at the tail.
  std::string frame;
  frame.resize(kHeaderBytes + payload.size());
  PutLe32(frame.data(), static_cast<uint32_t>(payload.size()));
  PutLe32(frame.data() + 4, Crc32c(payload.data(), payload.size()));
  std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());

  api::Status st = WriteAll(fd_, frame.data(), frame.size(), "log");
  if (!st.ok()) return st;
  ++records_appended_;
  ++unsynced_records_;
  bytes_appended_ += frame.size();

  switch (opts_.sync_policy) {
    case WalSyncPolicy::kEveryRecord:
      return Sync();
    case WalSyncPolicy::kEveryN:
      if (unsynced_records_ >= opts_.sync_every_n) return Sync();
      return api::Status::Ok();
    case WalSyncPolicy::kOnPublish:
      return api::Status::Ok();
  }
  return api::Status::Ok();
}

api::Status WalWriter::Sync() {
  if (fd_ < 0) return api::Status::IoError("WAL: writer is closed");
  if (unsynced_records_ == 0) return api::Status::Ok();
  if (::fsync(fd_) != 0) return Errno("WAL: fsync of", "log");
  ++syncs_;
  unsynced_records_ = 0;
  return api::Status::Ok();
}

api::Status WalWriter::Reset() {
  if (fd_ < 0) return api::Status::IoError("WAL: writer is closed");
  if (::ftruncate(fd_, 0) != 0) return Errno("WAL: ftruncate of", "log");
  if (::fsync(fd_) != 0) return Errno("WAL: fsync of", "log");
  unsynced_records_ = 0;
  return api::Status::Ok();
}

api::Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("WAL: open of dir", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("WAL: fsync of dir", dir);
  return api::Status::Ok();
}

}  // namespace strg::storage
