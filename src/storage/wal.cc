#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

namespace strg::storage {

namespace {

constexpr uint32_t kCrc32cPoly = 0x82F63B78u;  // reflected Castagnoli

constexpr std::array<uint32_t, 256> MakeCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kCrc32cPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrc32cTable = MakeCrc32cTable();

void PutLe32(char* out, uint32_t v) {
  out[0] = static_cast<char>(v & 0xFF);
  out[1] = static_cast<char>((v >> 8) & 0xFF);
  out[2] = static_cast<char>((v >> 16) & 0xFF);
  out[3] = static_cast<char>((v >> 24) & 0xFF);
}

uint32_t GetLe32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

api::Status Errno(const std::string& what, const std::string& path) {
  return api::Status::IoError(what + " " + path + ": " +
                              std::strerror(errno));
}

/// Full write: retries short writes (regular files rarely short-write, but
/// the loop costs nothing and removes the assumption).
api::Status WriteAll(int fd, const char* data, size_t len,
                     const std::string& path) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("WAL: write to", path);
    }
    done += static_cast<size_t>(n);
  }
  return api::Status::Ok();
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = kCrc32cTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

api::StatusOr<WalRecovery> RecoverWal(const std::string& path) {
  WalRecovery out;

  std::ifstream in(path, std::ios::binary);
  if (!in) return out;  // no log yet: empty recovery
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Errno("WAL: read of", path);
  const std::string bytes = buf.str();

  size_t pos = 0;
  while (true) {
    if (bytes.size() - pos < WalWriter::kHeaderBytes) break;  // torn header
    const uint32_t len = GetLe32(bytes.data() + pos);
    const uint32_t crc = GetLe32(bytes.data() + pos + 4);
    if (len > WalWriter::kMaxRecordBytes) break;             // mangled length
    if (bytes.size() - pos - WalWriter::kHeaderBytes < len) break;  // torn
    const char* payload = bytes.data() + pos + WalWriter::kHeaderBytes;
    if (Crc32c(payload, len) != crc) break;  // bit flip / stale frame
    out.records.emplace_back(payload, len);
    pos += WalWriter::kHeaderBytes + len;
  }
  out.valid_bytes = pos;
  out.tail_truncated = pos != bytes.size();

  if (out.tail_truncated) {
    if (::truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
      return Errno("WAL: truncate of", path);
    }
  }
  return out;
}

WalWriter::~WalWriter() { CloseNoSync(); }

WalWriter::WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    CloseNoSync();
    fd_ = std::exchange(other.fd_, -1);
    opts_ = other.opts_;
    records_appended_ = other.records_appended_;
    bytes_appended_ = other.bytes_appended_;
    syncs_ = other.syncs_;
    unsynced_records_ = other.unsynced_records_;
  }
  return *this;
}

void WalWriter::CloseNoSync() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

api::StatusOr<WalWriter> WalWriter::Open(const std::string& path,
                                         WalOptions opts) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("WAL: open of", path);
  WalWriter w;
  w.fd_ = fd;
  w.opts_ = opts;
  return w;
}

api::Status WalWriter::Append(std::string_view payload) {
  if (fd_ < 0) return api::Status::IoError("WAL: writer is closed");
  if (payload.size() > kMaxRecordBytes) {
    return api::Status::InvalidArgument("WAL: record exceeds kMaxRecordBytes");
  }
  // One write per record (header + payload in a single buffer): the kernel
  // appends atomically with respect to our own later reads, and a crash
  // mid-write leaves at most one torn record at the tail.
  std::string frame;
  frame.resize(kHeaderBytes + payload.size());
  PutLe32(frame.data(), static_cast<uint32_t>(payload.size()));
  PutLe32(frame.data() + 4, Crc32c(payload.data(), payload.size()));
  std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());

  api::Status st = WriteAll(fd_, frame.data(), frame.size(), "log");
  if (!st.ok()) return st;
  ++records_appended_;
  ++unsynced_records_;
  bytes_appended_ += frame.size();

  switch (opts_.sync_policy) {
    case WalSyncPolicy::kEveryRecord:
      return Sync();
    case WalSyncPolicy::kEveryN:
      if (unsynced_records_ >= opts_.sync_every_n) return Sync();
      return api::Status::Ok();
    case WalSyncPolicy::kOnPublish:
      return api::Status::Ok();
  }
  return api::Status::Ok();
}

api::Status WalWriter::Sync() {
  if (fd_ < 0) return api::Status::IoError("WAL: writer is closed");
  if (unsynced_records_ == 0) return api::Status::Ok();
  if (::fsync(fd_) != 0) return Errno("WAL: fsync of", "log");
  ++syncs_;
  unsynced_records_ = 0;
  return api::Status::Ok();
}

api::Status WalWriter::Reset() {
  if (fd_ < 0) return api::Status::IoError("WAL: writer is closed");
  if (::ftruncate(fd_, 0) != 0) return Errno("WAL: ftruncate of", "log");
  if (::fsync(fd_) != 0) return Errno("WAL: fsync of", "log");
  unsynced_records_ = 0;
  return api::Status::Ok();
}

api::Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("WAL: open of dir", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("WAL: fsync of dir", dir);
  return api::Status::Ok();
}

}  // namespace strg::storage
