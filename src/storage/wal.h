#ifndef STRG_STORAGE_WAL_H_
#define STRG_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/status.h"
#include "storage/crc32c.h"  // record checksums (shared with the pager)

namespace strg::storage {

/// When the writer pays for an fsync. The policy trades the durability
/// window against append throughput; every policy keeps the *ordering*
/// guarantee (a record is fully framed before the next begins), so a crash
/// can only cost a suffix of recent records, never corrupt the prefix.
enum class WalSyncPolicy {
  /// fsync after every record: an acked write survives OS + power failure.
  kEveryRecord,
  /// Group commit: fsync once per `sync_every_n` records. Acked writes in
  /// the open group survive process death (page cache) but not OS death.
  kEveryN,
  /// Defer to snapshot publication (compaction) or an explicit Sync().
  /// Fastest; the durability window is the whole log since the last
  /// publish. Still torn-tail-safe on recovery.
  kOnPublish,
};

struct WalOptions {
  WalSyncPolicy sync_policy = WalSyncPolicy::kEveryRecord;
  size_t sync_every_n = 32;  ///< group size under kEveryN
};

/// Result of scanning a log at open: the payloads of the clean prefix plus
/// what (if anything) was cut from the tail.
struct WalRecovery {
  std::vector<std::string> records;  ///< validated payloads, log order
  uint64_t valid_bytes = 0;          ///< length of the clean prefix
  bool tail_truncated = false;       ///< a torn/corrupt tail was dropped
};

/// Scans `path`, validating each record's length frame and CRC32C. The
/// first anomaly — a header shorter than 8 bytes, a length running past
/// EOF, or a checksum mismatch — ends the clean prefix; the file is
/// truncated there so the next append starts from a well-formed tail.
/// A missing file is an empty (OK) recovery, not an error.
api::StatusOr<WalRecovery> RecoverWal(const std::string& path);

/// Append-only writer over one log file.
///
/// Record framing (little-endian):
///     [u32 payload_len][u32 crc32c(payload)][payload bytes]
/// The CRC covers the payload only; a mangled length field is caught by the
/// resulting CRC window mismatch (or by running past EOF), so both framing
/// fields are effectively validated on recovery.
///
/// Concurrency: externally serialized, by design. A WalWriter is owned by
/// exactly one writer protocol (DurableQueryEngine holds it as a field
/// STRG_GUARDED_BY(ingest_mu_)), so the guard lives at the owner where the
/// append + seq-advance + publish steps must be atomic *together* — a lock
/// inside this class could only protect the append, not the protocol.
class WalWriter {
 public:
  static constexpr size_t kHeaderBytes = 8;
  /// Upper bound on one record; a recovered length above this is treated
  /// as corruption rather than a 4 GiB allocation.
  static constexpr uint32_t kMaxRecordBytes = 1u << 30;

  WalWriter() = default;  ///< closed; assign from Open()
  ~WalWriter();
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending (creating it if absent). The caller is
  /// expected to have run RecoverWal first so the tail is clean.
  static api::StatusOr<WalWriter> Open(const std::string& path,
                                       WalOptions opts = {});

  /// Frames + appends one payload, then fsyncs according to the policy.
  /// When Append returns OK under kEveryRecord, the record is on stable
  /// storage.
  api::Status Append(std::string_view payload);

  /// Forces an fsync regardless of policy (no-op when nothing is pending).
  api::Status Sync();

  /// Truncates the log to empty (after its contents were compacted into a
  /// durable snapshot) and fsyncs the truncation.
  api::Status Reset();

  bool is_open() const { return fd_ >= 0; }
  uint64_t records_appended() const { return records_appended_; }
  uint64_t bytes_appended() const { return bytes_appended_; }
  uint64_t syncs() const { return syncs_; }
  uint64_t unsynced_records() const { return unsynced_records_; }

 private:
  void CloseNoSync();

  int fd_ = -1;
  WalOptions opts_;
  uint64_t records_appended_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t syncs_ = 0;
  uint64_t unsynced_records_ = 0;
};

/// fsyncs a directory so a rename inside it is durable (the tmp-write +
/// rename snapshot publication protocol needs this on POSIX).
api::Status SyncDir(const std::string& dir);

}  // namespace strg::storage

#endif  // STRG_STORAGE_WAL_H_
