#include "strg/decompose.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace strg::core {

namespace {

/// Union-find over ORG indices for the merge step.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<size_t> parent_;
};

/// Checks the Section 2.3.2 merge criterion over the temporal overlap of
/// two ORGs: same motion (velocity vectors agree) and spatial proximity.
bool OrgsBelongTogether(const Org& a, const Org& b,
                        const DecomposeParams& p) {
  int lo = std::max(a.StartFrame(), b.StartFrame());
  int hi = std::min(a.EndFrame(), b.EndFrame());
  // Overlap in transitions is [lo, hi); need at least min_overlap of them.
  if (hi - lo < static_cast<int>(p.min_overlap)) return false;

  double vel_diff_sum = 0.0, dist_sum = 0.0;
  int transitions = 0, samples = 0;
  for (int f = lo; f <= hi; ++f) {
    size_t ia = static_cast<size_t>(f - a.StartFrame());
    size_t ib = static_cast<size_t>(f - b.StartFrame());
    double dxc = a.attrs[ia].cx - b.attrs[ib].cx;
    double dyc = a.attrs[ia].cy - b.attrs[ib].cy;
    dist_sum += std::sqrt(dxc * dxc + dyc * dyc);
    ++samples;
    if (f < hi) {
      double ax, ay, bx, by;
      a.VelocityAt(ia, &ax, &ay);
      b.VelocityAt(ib, &bx, &by);
      vel_diff_sum += std::sqrt((ax - bx) * (ax - bx) + (ay - by) * (ay - by));
      ++transitions;
    }
  }
  if (transitions == 0 || samples == 0) return false;
  if (vel_diff_sum / transitions > p.merge_velocity_tol) return false;
  return dist_sum / samples <= p.merge_centroid_radius;
}

}  // namespace

std::vector<Org> ExtractOrgs(const Strg& strg) {
  std::vector<Org> orgs;
  const size_t num_frames = strg.NumFrames();
  if (num_frames == 0) return orgs;

  // successor[t][v] = (node in t+1, attr) or -1. Algorithm 1 gives each
  // node at most one outgoing temporal edge; if several exist (shouldn't),
  // the first wins.
  std::vector<std::vector<int>> successor(num_frames);
  std::vector<std::vector<graph::TemporalEdgeAttr>> succ_attr(num_frames);
  std::vector<std::vector<char>> has_pred(num_frames);
  for (size_t t = 0; t < num_frames; ++t) {
    successor[t].assign(strg.Frame(t).NumNodes(), -1);
    succ_attr[t].resize(strg.Frame(t).NumNodes());
    has_pred[t].assign(strg.Frame(t).NumNodes(), 0);
  }
  for (size_t t = 0; t + 1 < num_frames; ++t) {
    for (const TemporalEdge& e : strg.TemporalEdges(t)) {
      if (successor[t][static_cast<size_t>(e.from_node)] < 0) {
        successor[t][static_cast<size_t>(e.from_node)] = e.to_node;
        succ_attr[t][static_cast<size_t>(e.from_node)] = e.attr;
      }
      has_pred[t + 1][static_cast<size_t>(e.to_node)] = 1;
    }
  }

  // Claim nodes into chains. Start from nodes without predecessors; a chain
  // ends when there is no successor or the successor is already claimed by
  // an earlier chain (temporal edges can converge).
  std::vector<std::vector<char>> claimed(num_frames);
  for (size_t t = 0; t < num_frames; ++t) {
    claimed[t].assign(strg.Frame(t).NumNodes(), 0);
  }
  for (size_t t = 0; t < num_frames; ++t) {
    for (size_t v = 0; v < strg.Frame(t).NumNodes(); ++v) {
      if (claimed[t][v] || has_pred[t][v]) continue;
      Org org;
      size_t ct = t;
      int cv = static_cast<int>(v);
      while (true) {
        claimed[ct][static_cast<size_t>(cv)] = 1;
        org.nodes.push_back({static_cast<int>(ct), cv});
        org.attrs.push_back(strg.Frame(ct).node(cv));
        int next = ct + 1 < num_frames ? successor[ct][static_cast<size_t>(cv)]
                                       : -1;
        if (next < 0 || claimed[ct + 1][static_cast<size_t>(next)]) break;
        org.motion.push_back(succ_attr[ct][static_cast<size_t>(cv)]);
        ++ct;
        cv = next;
      }
      orgs.push_back(std::move(org));
    }
  }
  // Any node still unclaimed (predecessor existed but the chain through it
  // got cut by a converge) becomes its own chain start.
  for (size_t t = 0; t < num_frames; ++t) {
    for (size_t v = 0; v < strg.Frame(t).NumNodes(); ++v) {
      if (claimed[t][v]) continue;
      Org org;
      size_t ct = t;
      int cv = static_cast<int>(v);
      while (true) {
        claimed[ct][static_cast<size_t>(cv)] = 1;
        org.nodes.push_back({static_cast<int>(ct), cv});
        org.attrs.push_back(strg.Frame(ct).node(cv));
        int next = ct + 1 < num_frames ? successor[ct][static_cast<size_t>(cv)]
                                       : -1;
        if (next < 0 || claimed[ct + 1][static_cast<size_t>(next)]) break;
        org.motion.push_back(succ_attr[ct][static_cast<size_t>(cv)]);
        ++ct;
        cv = next;
      }
      orgs.push_back(std::move(org));
    }
  }
  return orgs;
}

bool IsObjectOrg(const Org& org, const DecomposeParams& params) {
  if (org.Length() < params.min_org_length) return false;
  // Max (not net) displacement: an out-and-back mover (U-turn) ends where
  // it started but is still a foreground object.
  return org.MeanVelocity() > params.min_object_velocity &&
         org.MaxDisplacement() > params.min_displacement;
}

std::vector<Og> MergeOrgsIntoOgs(const std::vector<Org>& orgs,
                                 const std::vector<size_t>& object_orgs,
                                 const DecomposeParams& params) {
  UnionFind uf(object_orgs.size());
  for (size_t i = 0; i < object_orgs.size(); ++i) {
    for (size_t j = i + 1; j < object_orgs.size(); ++j) {
      if (OrgsBelongTogether(orgs[object_orgs[i]], orgs[object_orgs[j]],
                             params)) {
        uf.Union(i, j);
      }
    }
  }

  // Group member ORG indices by union-find root.
  std::vector<std::vector<size_t>> groups;
  std::vector<int> root_group(object_orgs.size(), -1);
  for (size_t i = 0; i < object_orgs.size(); ++i) {
    size_t r = uf.Find(i);
    if (root_group[r] < 0) {
      root_group[r] = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<size_t>(root_group[r])].push_back(object_orgs[i]);
  }

  std::vector<Og> ogs;
  for (const std::vector<size_t>& group : groups) {
    int lo = orgs[group[0]].StartFrame();
    int hi = orgs[group[0]].EndFrame();
    for (size_t idx : group) {
      lo = std::min(lo, orgs[idx].StartFrame());
      hi = std::max(hi, orgs[idx].EndFrame());
    }
    Og og;
    og.id = static_cast<int>(ogs.size());
    og.start_frame = lo;
    og.member_orgs.assign(group.begin(), group.end());
    for (int f = lo; f <= hi; ++f) {
      double size = 0, r = 0, g = 0, b = 0, cx = 0, cy = 0;
      for (size_t idx : group) {
        const Org& org = orgs[idx];
        if (f < org.StartFrame() || f > org.EndFrame()) continue;
        const graph::NodeAttr& a =
            org.attrs[static_cast<size_t>(f - org.StartFrame())];
        size += a.size;
        r += a.color[0] * a.size;
        g += a.color[1] * a.size;
        b += a.color[2] * a.size;
        cx += a.cx * a.size;
        cy += a.cy * a.size;
      }
      if (size <= 0) continue;  // gap frame: no member visible
      graph::NodeAttr agg;
      agg.size = size;
      agg.color = {r / size, g / size, b / size};
      agg.cx = cx / size;
      agg.cy = cy / size;
      og.sequence.push_back(agg);
    }
    if (!og.sequence.empty()) ogs.push_back(std::move(og));
  }
  return ogs;
}

BackgroundGraph BuildBackgroundGraph(
    const Strg& strg, const std::vector<Org>& orgs,
    const std::vector<size_t>& background_orgs) {
  BackgroundGraph bg;
  if (strg.NumFrames() == 0) return bg;

  // Mark background membership per (frame, node).
  std::vector<std::set<int>> bg_nodes(strg.NumFrames());
  for (size_t idx : background_orgs) {
    for (const OrgNode& n : orgs[idx].nodes) {
      bg_nodes[static_cast<size_t>(n.frame)].insert(n.node);
    }
  }

  // Representative frame: the one with the most background nodes. All the
  // per-frame copies of the background collapse into this single graph
  // (redundant-BG elimination, Section 2.3.3).
  size_t best_frame = 0, best_count = 0;
  for (size_t t = 0; t < strg.NumFrames(); ++t) {
    if (bg_nodes[t].size() > best_count) {
      best_count = bg_nodes[t].size();
      best_frame = t;
    }
  }

  const graph::Rag& frame = strg.Frame(best_frame);
  const std::set<int>& keep = bg_nodes[best_frame];
  std::vector<int> remap(frame.NumNodes(), -1);
  for (int v : keep) {
    remap[static_cast<size_t>(v)] = bg.rag.AddNode(frame.node(v));
  }
  for (int v : keep) {
    for (const graph::Rag::Edge& e : frame.Neighbors(v)) {
      if (e.to > v && remap[static_cast<size_t>(e.to)] >= 0) {
        bg.rag.AddEdge(remap[static_cast<size_t>(v)],
                       remap[static_cast<size_t>(e.to)], e.attr);
      }
    }
  }
  return bg;
}

Decomposition Decompose(const Strg& strg, const DecomposeParams& params) {
  Decomposition d;
  d.orgs = ExtractOrgs(strg);
  for (size_t i = 0; i < d.orgs.size(); ++i) {
    if (IsObjectOrg(d.orgs[i], params)) {
      d.object_orgs.push_back(i);
    } else {
      d.background_orgs.push_back(i);
    }
  }
  d.object_graphs = MergeOrgsIntoOgs(d.orgs, d.object_orgs, params);
  d.background = BuildBackgroundGraph(strg, d.orgs, d.background_orgs);
  return d;
}

size_t PaperStrgSizeBytes(const Decomposition& decomposition,
                          size_t num_frames) {
  size_t bytes = 0;
  for (const Og& og : decomposition.object_graphs) bytes += og.SizeBytes();
  bytes += num_frames * decomposition.background.SizeBytes();
  return bytes;
}

}  // namespace strg::core
