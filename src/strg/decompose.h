#ifndef STRG_STRG_DECOMPOSE_H_
#define STRG_STRG_DECOMPOSE_H_

#include <vector>

#include "strg/object_graph.h"
#include "strg/strg.h"

namespace strg::core {

/// Parameters of the STRG decomposition (Section 2.3).
struct DecomposeParams {
  /// An ORG counts as a moving object when its mean speed exceeds this
  /// (pixels/frame) AND its net displacement exceeds `min_displacement`.
  double min_object_velocity = 0.35;
  double min_displacement = 4.0;

  /// ORGs shorter than this many frames are treated as background/noise.
  size_t min_org_length = 4;

  /// ORG merging (Section 2.3.2): two ORGs join one OG when, over their
  /// temporal overlap, their velocity vectors agree within this tolerance
  /// (pixels/frame, Euclidean) ...
  double merge_velocity_tol = 1.5;
  /// ... their centroids stay within this radius (pixels) ...
  double merge_centroid_radius = 14.0;
  /// ... and the overlap spans at least this many transitions.
  size_t min_overlap = 2;
};

/// Result of decomposing an STRG into foreground object graphs and one
/// compressed background graph.
struct Decomposition {
  std::vector<Org> orgs;             ///< every extracted ORG
  std::vector<size_t> object_orgs;   ///< indices of moving-object ORGs
  std::vector<size_t> background_orgs;  ///< the rest
  std::vector<Og> object_graphs;     ///< merged OGs (foreground)
  BackgroundGraph background;        ///< single BG for the segment
};

/// Extracts all ORGs of an STRG by following temporal-edge chains
/// (Section 2.3.1). Every STRG node belongs to exactly one ORG; nodes with
/// no temporal continuation form length-1 ORGs.
std::vector<Org> ExtractOrgs(const Strg& strg);

/// True when the ORG moves enough to be a foreground object.
bool IsObjectOrg(const Org& org, const DecomposeParams& params);

/// Merges object ORGs that share velocity/direction and stay spatially
/// close into OGs (Section 2.3.2 / Theorem 1).
std::vector<Og> MergeOrgsIntoOgs(const std::vector<Org>& orgs,
                                 const std::vector<size_t>& object_orgs,
                                 const DecomposeParams& params);

/// Builds the single compressed background graph: the induced subgraph of
/// the frame with the most background nodes, restricted to background
/// regions (Section 2.3.3).
BackgroundGraph BuildBackgroundGraph(const Strg& strg,
                                     const std::vector<Org>& orgs,
                                     const std::vector<size_t>& background_orgs);

/// Full decomposition pipeline.
Decomposition Decompose(const Strg& strg, const DecomposeParams& params = {});

/// size(STRG) per Equation 9: sum of OG sizes + N * size(BG), where N is
/// the number of frames of the segment.
size_t PaperStrgSizeBytes(const Decomposition& decomposition,
                          size_t num_frames);

}  // namespace strg::core

#endif  // STRG_STRG_DECOMPOSE_H_
