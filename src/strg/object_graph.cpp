#include "strg/object_graph.h"

#include <cmath>

namespace strg::core {

double Org::MeanVelocity() const {
  if (motion.empty()) return 0.0;
  double s = 0.0;
  for (const auto& m : motion) s += m.velocity;
  return s / static_cast<double>(motion.size());
}

double Org::NetDisplacement() const {
  if (attrs.size() < 2) return 0.0;
  double dx = attrs.back().cx - attrs.front().cx;
  double dy = attrs.back().cy - attrs.front().cy;
  return std::sqrt(dx * dx + dy * dy);
}

double Org::MaxDisplacement() const {
  double best = 0.0;
  for (size_t i = 1; i < attrs.size(); ++i) {
    double dx = attrs[i].cx - attrs[0].cx;
    double dy = attrs[i].cy - attrs[0].cy;
    best = std::max(best, std::sqrt(dx * dx + dy * dy));
  }
  return best;
}

void Org::VelocityAt(size_t i, double* dx, double* dy) const {
  *dx = attrs[i + 1].cx - attrs[i].cx;
  *dy = attrs[i + 1].cy - attrs[i].cy;
}

}  // namespace strg::core
