#ifndef STRG_STRG_OBJECT_GRAPH_H_
#define STRG_STRG_OBJECT_GRAPH_H_

#include <cstddef>
#include <vector>

#include "graph/rag.h"
#include "strg/strg.h"

namespace strg::core {

/// Reference to one STRG node: frame index + node id within that frame.
struct OrgNode {
  int frame = -1;
  int node = -1;
};

/// Object Region Graph (Section 2.3.1): the trajectory of one tracked
/// region — a temporal subgraph with an empty spatial edge set (Def. 8).
/// A linear graph: node i connects to node i+1 by a temporal edge.
struct Org {
  std::vector<OrgNode> nodes;              ///< consecutive frames
  std::vector<graph::NodeAttr> attrs;      ///< region attributes per frame
  std::vector<graph::TemporalEdgeAttr> motion;  ///< per-transition, size-1

  int StartFrame() const { return nodes.empty() ? -1 : nodes.front().frame; }
  int EndFrame() const { return nodes.empty() ? -1 : nodes.back().frame; }
  size_t Length() const { return nodes.size(); }

  /// Mean per-frame speed over the trajectory (pixels/frame).
  double MeanVelocity() const;

  /// Net displacement between the first and last centroid (pixels).
  double NetDisplacement() const;

  /// Maximum displacement from the starting centroid over the whole
  /// trajectory (pixels). Distinguishes genuine movers from jittering
  /// static regions even for out-and-back (U-turn) motion, whose *net*
  /// displacement is small.
  double MaxDisplacement() const;

  /// Velocity vector (dx, dy) at transition i, derived from centroids.
  void VelocityAt(size_t i, double* dx, double* dy) const;
};

/// Object Graph (Section 2.3.2): ORGs belonging to one physical object,
/// merged. Carries one aggregated region-attribute vector per frame
/// (size = sum of parts, color/centroid = size-weighted means) — the
/// time-series view consumed by EGED, clustering, and indexing.
struct Og {
  int id = -1;
  int start_frame = 0;
  std::vector<graph::NodeAttr> sequence;  ///< one aggregate per frame
  std::vector<size_t> member_orgs;        ///< indices into the ORG list

  size_t Length() const { return sequence.size(); }

  /// Byte footprint under the Section 5.4 accounting: nodes plus the
  /// linear chain of temporal edges.
  size_t SizeBytes() const {
    if (sequence.empty()) return 0;
    return sequence.size() * kNodeBytes +
           (sequence.size() - 1) * kTemporalEdgeBytes;
  }
};

/// Background Graph (Section 2.3.3): one RAG representing the static
/// background of a whole video segment after redundant per-frame copies are
/// eliminated.
struct BackgroundGraph {
  graph::Rag rag;

  size_t SizeBytes() const { return RagSizeBytes(rag); }
};

}  // namespace strg::core

#endif  // STRG_STRG_OBJECT_GRAPH_H_
