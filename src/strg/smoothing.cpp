#include "strg/smoothing.h"

#include <algorithm>

#include "strg/decompose.h"

namespace strg::core {

Og SmoothOg(const Og& og, const SmoothingParams& params) {
  Og out = og;
  if (params.window <= 0 || og.sequence.size() < 3 ||
      params.strength <= 0.0) {
    return out;
  }
  const int n = static_cast<int>(og.sequence.size());
  const double s = std::min(1.0, params.strength);
  for (int i = 0; i < n; ++i) {
    int lo = std::max(0, i - params.window);
    int hi = std::min(n - 1, i + params.window);
    double cx = 0.0, cy = 0.0, size = 0.0;
    for (int j = lo; j <= hi; ++j) {
      cx += og.sequence[static_cast<size_t>(j)].cx;
      cy += og.sequence[static_cast<size_t>(j)].cy;
      size += og.sequence[static_cast<size_t>(j)].size;
    }
    double count = static_cast<double>(hi - lo + 1);
    graph::NodeAttr& attr = out.sequence[static_cast<size_t>(i)];
    attr.cx = (1.0 - s) * attr.cx + s * (cx / count);
    attr.cy = (1.0 - s) * attr.cy + s * (cy / count);
    attr.size = (1.0 - s) * attr.size + s * (size / count);
  }
  return out;
}

void SmoothDecomposition(Decomposition* decomposition,
                         const SmoothingParams& params) {
  for (Og& og : decomposition->object_graphs) {
    og = SmoothOg(og, params);
  }
}

}  // namespace strg::core
