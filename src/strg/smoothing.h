#ifndef STRG_STRG_SMOOTHING_H_
#define STRG_STRG_SMOOTHING_H_

#include "strg/decompose.h"
#include "strg/object_graph.h"

namespace strg::core {

/// Trajectory smoothing parameters.
struct SmoothingParams {
  /// Half-width of the centered moving-average window (0 disables).
  int window = 1;
  /// Exponential blend toward the moving average, in (0, 1]; 1 replaces the
  /// value entirely, smaller values only damp the noise.
  double strength = 1.0;
};

/// Returns a copy of the OG with its centroid trajectory (and size series)
/// smoothed by a centered moving average.
///
/// Segmentation jitter adds high-frequency noise to OG trajectories that
/// none of the alignment distances can fully discount; smoothing before
/// indexing is the standard video-analytics mitigation, ablated by the
/// smoothing tests. Colors are left untouched (region mean colors are
/// already spatial averages).
Og SmoothOg(const Og& og, const SmoothingParams& params = {});

/// In-place smoothing of every OG in a decomposition.
void SmoothDecomposition(Decomposition* decomposition,
                         const SmoothingParams& params = {});

}  // namespace strg::core

#endif  // STRG_STRG_SMOOTHING_H_
