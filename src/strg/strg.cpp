#include "strg/strg.h"

#include "strg/tracking.h"

namespace strg::core {

int Strg::AppendFrame(graph::Rag rag) {
  if (!frames_.empty()) {
    temporal_.push_back(BuildTemporalEdges(frames_.back(), rag, params_));
  }
  frames_.push_back(std::move(rag));
  return static_cast<int>(frames_.size()) - 1;
}

size_t Strg::TotalNodes() const {
  size_t n = 0;
  for (const auto& f : frames_) n += f.NumNodes();
  return n;
}

size_t Strg::TotalTemporalEdges() const {
  size_t n = 0;
  for (const auto& t : temporal_) n += t.size();
  return n;
}

size_t RagSizeBytes(const graph::Rag& rag) {
  return rag.NumNodes() * kNodeBytes + rag.NumEdges() * kSpatialEdgeBytes;
}

size_t Strg::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& f : frames_) bytes += RagSizeBytes(f);
  bytes += TotalTemporalEdges() * kTemporalEdgeBytes;
  return bytes;
}

}  // namespace strg::core
