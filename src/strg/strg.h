#ifndef STRG_STRG_STRG_H_
#define STRG_STRG_STRG_H_

#include <cstddef>
#include <vector>

#include "graph/rag.h"

namespace strg::core {

/// A temporal edge e_T (Definition 2): connects node `from_node` in frame t
/// to node `to_node` in frame t+1, carrying velocity and moving direction.
struct TemporalEdge {
  int from_node = -1;
  int to_node = -1;
  graph::TemporalEdgeAttr attr;
};

/// Parameters of the graph-based tracking step (Algorithm 1).
struct TrackingParams {
  /// Similarity threshold T_sim: a non-isomorphic best match must exceed
  /// this SimGraph value to produce a temporal edge.
  double t_sim = 0.5;

  /// Gating radius in pixels: candidate nodes in the next frame whose
  /// centroids are farther than this are not considered. Objects cannot
  /// teleport between consecutive frames; the gate also stops occlusion
  /// artifacts (a background region split in two by a passing object) from
  /// chaining into phantom movers via their jumping centroids.
  double gate_distance = 16.0;

  /// Attribute tolerances used for isomorphism / SimGraph decisions.
  graph::AttrTolerance tolerance;
};

/// Spatio-Temporal Region Graph G_st(S) = {V, E_S, E_T, nu, xi, tau}
/// (Definition 2): the RAGs of consecutive frames, temporally connected.
///
/// Frames are appended in order; `AppendFrame` runs the graph-based tracking
/// of Algorithm 1 against the previously appended frame to construct the
/// temporal edge set.
class Strg {
 public:
  explicit Strg(TrackingParams params = {}) : params_(params) {}

  /// Appends a frame's RAG and builds temporal edges from the previous
  /// frame. Returns the frame index.
  int AppendFrame(graph::Rag rag);

  size_t NumFrames() const { return frames_.size(); }
  const graph::Rag& Frame(size_t t) const { return frames_[t]; }

  /// Temporal edges from frame t to frame t+1 (t in [0, NumFrames()-1)).
  const std::vector<TemporalEdge>& TemporalEdges(size_t t) const {
    return temporal_[t];
  }

  size_t TotalNodes() const;
  size_t TotalTemporalEdges() const;

  /// Approximate in-memory footprint of the raw STRG in bytes; the
  /// Section 5.4 size analysis (Eq. 9) compares this against the index.
  size_t SizeBytes() const;

  const TrackingParams& params() const { return params_; }

 private:
  TrackingParams params_;
  std::vector<graph::Rag> frames_;
  std::vector<std::vector<TemporalEdge>> temporal_;  // [t] : t -> t+1
};

/// Approximate per-node / per-edge byte costs used by the size analysis.
/// Kept explicit (not sizeof-based) so reported sizes are stable across
/// compilers; they mirror the attribute payloads of Definition 2.
constexpr size_t kNodeBytes = sizeof(graph::NodeAttr);
constexpr size_t kSpatialEdgeBytes = sizeof(graph::SpatialEdgeAttr) + 2 * sizeof(int);
constexpr size_t kTemporalEdgeBytes = sizeof(graph::TemporalEdgeAttr) + 2 * sizeof(int);

/// Byte size of one RAG under the accounting above.
size_t RagSizeBytes(const graph::Rag& rag);

}  // namespace strg::core

#endif  // STRG_STRG_STRG_H_
