#include "strg/tracking.h"

#include <cmath>

#include "graph/common_subgraph.h"
#include "graph/isomorphism.h"
#include "graph/neighborhood.h"

namespace strg::core {

namespace {

graph::TemporalEdgeAttr MakeTemporalAttr(const graph::NodeAttr& a,
                                         const graph::NodeAttr& b) {
  graph::TemporalEdgeAttr attr;
  double dx = b.cx - a.cx, dy = b.cy - a.cy;
  attr.velocity = std::sqrt(dx * dx + dy * dy);
  attr.direction = std::atan2(dy, dx);
  return attr;
}

}  // namespace

std::vector<TemporalEdge> BuildTemporalEdges(const graph::Rag& from,
                                             const graph::Rag& to,
                                             const TrackingParams& params) {
  std::vector<TemporalEdge> edges;
  const auto ng_from = graph::AllNeighborhoodGraphs(from);
  const auto ng_to = graph::AllNeighborhoodGraphs(to);
  const double gate2 = params.gate_distance * params.gate_distance;

  for (size_t v = 0; v < from.NumNodes(); ++v) {
    const graph::NeighborhoodGraph& g = ng_from[v];
    double max_sim = 0.0;
    int max_node = -1;
    bool linked_isomorphic = false;

    for (size_t vp = 0; vp < to.NumNodes(); ++vp) {
      // Gate: consecutive-frame displacement is bounded.
      double dx = to.node(static_cast<int>(vp)).cx - g.center_attr.cx;
      double dy = to.node(static_cast<int>(vp)).cy - g.center_attr.cy;
      if (dx * dx + dy * dy > gate2) continue;

      const graph::NeighborhoodGraph& gp = ng_to[vp];
      if (graph::NeighborhoodGraphsIsomorphic(g, gp, params.tolerance)) {
        edges.push_back({static_cast<int>(v), static_cast<int>(vp),
                         MakeTemporalAttr(g.center_attr, gp.center_attr)});
        linked_isomorphic = true;
        break;
      }
      // The center must still be a plausible continuation of v — SimGraph
      // alone scores the neighborhoods, not the node itself.
      if (!graph::NodesCompatible(g.center_attr, gp.center_attr,
                                  params.tolerance)) {
        continue;
      }
      double sim = graph::SimGraph(g, gp, params.tolerance);
      if (sim > max_sim) {
        max_sim = sim;
        max_node = static_cast<int>(vp);
      }
    }

    if (!linked_isomorphic && max_node >= 0 && max_sim > params.t_sim) {
      edges.push_back(
          {static_cast<int>(v), max_node,
           MakeTemporalAttr(g.center_attr, to.node(max_node))});
    }
  }
  return edges;
}

}  // namespace strg::core
