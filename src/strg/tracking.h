#ifndef STRG_STRG_TRACKING_H_
#define STRG_STRG_TRACKING_H_

#include <vector>

#include "graph/rag.h"
#include "strg/strg.h"

namespace strg::core {

/// Graph-based tracking (Algorithm 1): builds the temporal edge set between
/// two consecutive frames' RAGs.
///
/// For each node v in frame m, its neighborhood graph is compared with the
/// neighborhood graphs of candidate nodes v' in frame m+1 (gated by centroid
/// distance). An isomorphic neighborhood graph wins immediately; otherwise
/// the candidate with the highest SimGraph (Eq. 1) above T_sim is linked.
/// The temporal edge carries velocity (centroid displacement) and moving
/// direction (Definition 2).
std::vector<TemporalEdge> BuildTemporalEdges(const graph::Rag& from,
                                             const graph::Rag& to,
                                             const TrackingParams& params);

}  // namespace strg::core

#endif  // STRG_STRG_TRACKING_H_
