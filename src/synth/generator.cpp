#include "synth/generator.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace strg::synth {

namespace {

// All synthetic OGs share one neutral color so clustering is driven by the
// moving pattern (the paper's synthetic data is pure trajectory data).
constexpr double kSynthColor = 128.0;

std::vector<video::Point> SamplePath(const video::Path& path, size_t length) {
  std::vector<video::Point> pts(length);
  for (size_t i = 0; i < length; ++i) {
    double t = length == 1 ? 0.0
                           : static_cast<double>(i) /
                                 static_cast<double>(length - 1);
    pts[i] = path.At(t);
  }
  return pts;
}

}  // namespace

core::Og TrajectoryToOg(const std::vector<video::Point>& points,
                        double object_size, int start_frame) {
  core::Og og;
  og.start_frame = start_frame;
  og.sequence.reserve(points.size());
  for (const video::Point& p : points) {
    graph::NodeAttr attr;
    attr.size = object_size;
    attr.color = {kSynthColor, kSynthColor, kSynthColor};
    attr.cx = p.x;
    attr.cy = p.y;
    og.sequence.push_back(attr);
  }
  return og;
}

dist::FeatureScaling SynthScaling(double field) {
  dist::FeatureScaling s;
  s.frame_width = field;
  s.frame_height = field;
  return s;
}

SynthDataset GenerateSyntheticOgs(const SynthParams& params) {
  SynthDataset ds;
  Rng rng(params.seed);
  const std::vector<PatternSpec> patterns = MakePatterns(params.field);
  const double noise_sigma = params.noise_pct / 100.0 * params.field;

  for (const PatternSpec& pattern : patterns) {
    ds.true_ogs.push_back(TrajectoryToOg(
        SamplePath(pattern.path, pattern.base_length), pattern.object_size));
  }

  for (const PatternSpec& pattern : patterns) {
    for (size_t item = 0; item < params.items_per_cluster; ++item) {
      double jitter =
          rng.Uniform(1.0 - params.length_jitter, 1.0 + params.length_jitter);
      size_t length = std::max<size_t>(
          4, static_cast<size_t>(std::lround(pattern.base_length * jitter)));
      std::vector<video::Point> pts = SamplePath(pattern.path, length);

      // Cluster spread: one Gaussian offset for the whole trajectory.
      video::Point offset{rng.Gaussian(0.0, params.cluster_sigma),
                          rng.Gaussian(0.0, params.cluster_sigma)};
      for (video::Point& p : pts) p = p + offset;

      // Vlachos-style per-point noise.
      if (noise_sigma > 0.0) {
        for (video::Point& p : pts) {
          if (rng.Bernoulli(params.outlier_prob)) {
            p.x += rng.Gaussian(0.0, noise_sigma);
            p.y += rng.Gaussian(0.0, noise_sigma);
          }
        }
      }

      double size = pattern.object_size *
                    rng.Uniform(0.85, 1.15);  // mild per-item size variation
      ds.ogs.push_back(TrajectoryToOg(pts, size));
      ds.ogs.back().id = static_cast<int>(ds.ogs.size()) - 1;
      ds.labels.push_back(pattern.id);
    }
  }
  return ds;
}

std::vector<dist::Sequence> SynthDataset::Sequences(
    const dist::FeatureScaling& s) const {
  std::vector<dist::Sequence> out;
  out.reserve(ogs.size());
  for (const core::Og& og : ogs) out.push_back(dist::OgToSequence(og, s));
  return out;
}

std::vector<dist::Sequence> SynthDataset::TrueSequences(
    const dist::FeatureScaling& s) const {
  std::vector<dist::Sequence> out;
  out.reserve(true_ogs.size());
  for (const core::Og& og : true_ogs) out.push_back(dist::OgToSequence(og, s));
  return out;
}

}  // namespace strg::synth
