#ifndef STRG_SYNTH_GENERATOR_H_
#define STRG_SYNTH_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "distance/sequence.h"
#include "strg/object_graph.h"
#include "synth/patterns.h"

namespace strg::synth {

/// Parameters of the Section 6.1 synthetic OG generator.
struct SynthParams {
  double field = 100.0;           ///< square field side in pixels
  size_t items_per_cluster = 10;  ///< OGs drawn from each of the 48 patterns
  /// Per-point trajectory noise, as a percentage of the field side (the
  /// x-axis of Figures 5 and 6: 5%..30%). Applied Vlachos-style: each point
  /// is perturbed with probability `outlier_prob`.
  double noise_pct = 10.0;
  double outlier_prob = 0.5;
  /// Pelleg-style Gaussian cluster spread: the whole trajectory of an item
  /// is offset by N(0, cluster_sigma) ("distributed by Gaussian with
  /// sigma = 5").
  double cluster_sigma = 5.0;
  /// Time-length jitter: item length = base_length * U(1-x, 1+x).
  double length_jitter = 0.25;
  uint64_t seed = 42;
};

/// A labeled synthetic data set of OGs.
struct SynthDataset {
  std::vector<core::Og> ogs;         ///< one OG per item
  std::vector<int> labels;           ///< true pattern/cluster id per item
  std::vector<core::Og> true_ogs;    ///< noise-free pattern OGs (48)

  size_t NumClusters() const { return true_ogs.size(); }

  /// Feature-sequence views for the distance layer.
  std::vector<dist::Sequence> Sequences(const dist::FeatureScaling& s) const;
  std::vector<dist::Sequence> TrueSequences(
      const dist::FeatureScaling& s) const;
};

/// The feature scaling matching the generator's field geometry.
dist::FeatureScaling SynthScaling(double field = 100.0);

/// Generates the synthetic workload: for each of the 48 moving patterns,
/// `items_per_cluster` OGs with Gaussian cluster spread, per-point noise,
/// and varying time lengths, converted to OG (temporal-subgraph) format.
SynthDataset GenerateSyntheticOgs(const SynthParams& params = {});

/// Builds an OG directly from a centroid trajectory + constant region
/// attributes. Exposed for tests and custom workloads.
core::Og TrajectoryToOg(const std::vector<video::Point>& points,
                        double object_size, int start_frame = 0);

}  // namespace strg::synth

#endif  // STRG_SYNTH_GENERATOR_H_
