#include "synth/patterns.h"

namespace strg::synth {

namespace {

using video::Path;
using video::Point;

constexpr double kSizes[] = {16.0, 36.0, 64.0};
constexpr size_t kLengths[] = {16, 24, 32};

void Add(std::vector<PatternSpec>* out, const std::string& family,
         Path path) {
  PatternSpec p;
  p.id = static_cast<int>(out->size());
  p.family = family;
  p.path = std::move(path);
  // Cycle object sizes and time lengths so every family mixes both, per
  // Section 6.1 ("different sizes of objects and various time lengths").
  p.object_size = kSizes[out->size() % std::size(kSizes)];
  p.base_length = kLengths[(out->size() / 2) % std::size(kLengths)];
  out->push_back(std::move(p));
}

}  // namespace

std::vector<PatternSpec> MakePatterns(double field) {
  std::vector<PatternSpec> out;
  out.reserve(48);
  const double lo = 0.08 * field, hi = 0.92 * field;

  // 12 vertical: 6 lanes x 2 directions.
  for (int lane = 0; lane < 6; ++lane) {
    double x = field * (0.12 + 0.15 * lane);
    Add(&out, "vertical", Path::Line({x, lo}, {x, hi}));
    Add(&out, "vertical", Path::Line({x, hi}, {x, lo}));
  }
  // 12 horizontal: 6 lanes x 2 directions.
  for (int lane = 0; lane < 6; ++lane) {
    double y = field * (0.12 + 0.15 * lane);
    Add(&out, "horizontal", Path::Line({lo, y}, {hi, y}));
    Add(&out, "horizontal", Path::Line({hi, y}, {lo, y}));
  }
  // 8 diagonal: 4 lines x 2 directions.
  {
    const Point corners[4][2] = {
        {{lo, lo}, {hi, hi}},
        {{lo, hi}, {hi, lo}},
        {{lo, 0.5 * field}, {hi, hi}},
        {{0.5 * field, lo}, {hi, hi}},
    };
    for (const auto& c : corners) {
      Add(&out, "diagonal", Path::Line(c[0], c[1]));
      Add(&out, "diagonal", Path::Line(c[1], c[0]));
    }
  }
  // 16 U-turn: 8 shapes x 2 directions.
  for (int i = 0; i < 4; ++i) {
    double x = field * (0.15 + 0.22 * i);
    // Vertical out-and-back with a sideways offset on return.
    Point a{x, lo}, turn{x, hi}, b{x + 0.08 * field, lo};
    Add(&out, "uturn", Path::UTurn(a, turn, b));
    Add(&out, "uturn", Path::UTurn(b, turn, a));
  }
  for (int i = 0; i < 4; ++i) {
    double y = field * (0.15 + 0.22 * i);
    Point a{lo, y}, turn{hi, y}, b{lo, y + 0.08 * field};
    Add(&out, "uturn", Path::UTurn(a, turn, b));
    Add(&out, "uturn", Path::UTurn(b, turn, a));
  }
  return out;
}

}  // namespace strg::synth
