#ifndef STRG_SYNTH_PATTERNS_H_
#define STRG_SYNTH_PATTERNS_H_

#include <string>
#include <vector>

#include "video/motion.h"

namespace strg::synth {

/// One of the 48 moving patterns of Section 6.1. Each pattern is a motion
/// path plus an object size and a base time length; items drawn from the
/// pattern jitter around these.
struct PatternSpec {
  int id = -1;
  std::string family;  ///< "vertical" | "horizontal" | "diagonal" | "uturn"
  video::Path path;
  double object_size = 24.0;  ///< region area in pixels
  size_t base_length = 24;    ///< frames
};

/// Builds the paper's 48 moving patterns on a square field of the given
/// side: 12 vertical, 12 horizontal, 8 diagonal, and 16 U-turn patterns,
/// each family covering both directions, different object sizes, and
/// various time lengths.
std::vector<PatternSpec> MakePatterns(double field);

}  // namespace strg::synth

#endif  // STRG_SYNTH_PATTERNS_H_
